package glign

import (
	"testing"

	"github.com/glign/glign/internal/telemetry"
)

// telemetryTestBuffer is evaluated on the paper's Figure 3 example graph in
// the consistency tests below: enough queries for two batches of two.
func telemetryTestBuffer() []Query {
	return []Query{
		{Kernel: SSSP, Source: 0},
		{Kernel: SSSP, Source: 1},
		{Kernel: SSSP, Source: 2},
		{Kernel: SSSP, Source: 4},
	}
}

// TestMetricsMatchEngineCounters cross-checks the telemetry timeline
// against the engines' own aggregate counters on the Figure 3 toy graph:
// summing edges_processed / lane_relaxations / value_writes over every
// recorded iteration must reproduce the run's EdgesProcessed /
// LaneRelaxations / ValueWrites exactly, for every method that records
// per-iteration telemetry.
func TestMetricsMatchEngineCounters(t *testing.T) {
	g := PaperExampleGraph()

	// Batch engines record one IterationStat per global iteration, so the
	// iteration count must match the report too. Per-query engines
	// (Ligra-S, Congra) record one stat per lane iteration while the
	// report counts max-over-lanes global iterations, so for them only
	// the edge/relaxation/write sums are exact.
	batchMethods := []string{
		MethodGlign, MethodGlignIntra, MethodGlignInter, MethodGlignBatch,
		MethodLigraC, MethodKrill, MethodGraphM, MethodIBFS,
	}
	laneMethods := []string{MethodLigraS, MethodCongra}

	for _, method := range append(append([]string{}, batchMethods...), laneMethods...) {
		t.Run(method, func(t *testing.T) {
			tel := NewTelemetry()
			rt, err := NewRuntime(g,
				WithMethod(method),
				WithBatchSize(2),
				WithWorkers(2),
				WithTelemetry(tel))
			if err != nil {
				t.Fatal(err)
			}
			rep, err := rt.Run(telemetryTestBuffer())
			if err != nil {
				t.Fatal(err)
			}
			m := rep.Metrics()
			if m == nil {
				t.Fatal("Metrics() = nil with telemetry enabled")
			}
			if got, want := m.TotalEdgesProcessed(), rep.res.EdgesProcessed; got != want {
				t.Errorf("edges_processed sum = %d, engine counter = %d", got, want)
			}
			if got, want := m.TotalLaneRelaxations(), rep.res.LaneRelaxations; got != want {
				t.Errorf("lane_relaxations sum = %d, engine counter = %d", got, want)
			}
			if got, want := m.TotalValueWrites(), rep.res.ValueWrites; got != want {
				t.Errorf("value_writes sum = %d, engine counter = %d", got, want)
			}
			isLane := false
			for _, lm := range laneMethods {
				if method == lm {
					isLane = true
				}
			}
			if isLane {
				if m.TotalIterations() < rep.TotalIterations() {
					t.Errorf("iteration records = %d, want >= %d global iterations",
						m.TotalIterations(), rep.TotalIterations())
				}
			} else if got, want := m.TotalIterations(), rep.TotalIterations(); got != want {
				t.Errorf("iteration records = %d, global iterations = %d", got, want)
			}
			if len(m.Batches) != len(rep.Batches()) {
				t.Errorf("traced batches = %d, report batches = %d",
					len(m.Batches), len(rep.Batches()))
			}
			// The timeline itself must be well-formed: iterations numbered,
			// frontier sizes positive (a batch iteration with an empty
			// frontier would not have run), modes valid.
			for _, b := range m.Batches {
				for _, it := range b.Iterations {
					if it.FrontierSize <= 0 {
						t.Errorf("batch %d iter %d: frontier_size = %d",
							b.Index, it.Iter, it.FrontierSize)
					}
					if it.Mode != telemetry.ModePush && it.Mode != telemetry.ModePull {
						t.Errorf("batch %d iter %d: mode %q", b.Index, it.Iter, it.Mode)
					}
					if it.EdgesProcessed < 0 || it.ValueWrites < 0 {
						t.Errorf("batch %d iter %d: negative counters %+v",
							b.Index, it.Iter, it)
					}
				}
			}
		})
	}
}

// TestMetricsNilWithoutTelemetry: without WithTelemetry the report carries
// no trace and Metrics() reports that as nil rather than an empty object.
func TestMetricsNilWithoutTelemetry(t *testing.T) {
	rt, err := NewRuntime(PaperExampleGraph(), WithBatchSize(2))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run(telemetryTestBuffer())
	if err != nil {
		t.Fatal(err)
	}
	if m := rep.Metrics(); m != nil {
		t.Fatalf("Metrics() = %+v, want nil without WithTelemetry", m)
	}
}

// TestTelemetrySharedAcrossRuns: one collector can observe several runtime
// runs (the cmd/glign-bench usage); global counters accumulate.
func TestTelemetrySharedAcrossRuns(t *testing.T) {
	g := PaperExampleGraph()
	tel := NewTelemetry()
	for _, method := range []string{MethodGlign, MethodLigraC} {
		rt, err := NewRuntime(g, WithMethod(method), WithBatchSize(2), WithTelemetry(tel))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Run(telemetryTestBuffer()); err != nil {
			t.Fatal(err)
		}
	}
	snap := tel.Snapshot()
	if snap.Counters.Runs != 2 {
		t.Fatalf("runs = %d, want 2", snap.Counters.Runs)
	}
	if len(snap.Runs) != 2 {
		t.Fatalf("run traces = %d, want 2", len(snap.Runs))
	}
	if snap.Counters.Iterations == 0 || snap.Counters.EdgesProcessed == 0 {
		t.Fatalf("global counters empty: %+v", snap.Counters)
	}
}
