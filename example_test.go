package glign_test

import (
	"fmt"

	glign "github.com/glign/glign"
)

// Evaluate two concurrent shortest-path queries on the paper's running
// example and read back per-vertex distances.
func ExampleRuntime_Run() {
	g := glign.PaperExampleGraph()
	rt, _ := glign.NewRuntime(g, glign.WithBatchSize(2))
	report, _ := rt.Run([]glign.Query{
		{Kernel: glign.SSSP, Source: 0}, // sssp(v1), paper Table 1
		{Kernel: glign.BFS, Source: 0},
	})
	fmt.Println("dist(v9) =", report.Value(0, 8))
	fmt.Println("level(v8) =", report.Value(1, 7))
	// Output:
	// dist(v9) = 10
	// level(v8) = 4
}

// The affinity metric of paper Definition 3.4, evaluated on the §3.3
// worked example: the batch [sssp(v2), sssp(v8)] has affinity 1/9 when both
// queries start together and 1/3 under the delayed start I=[2,0].
func ExampleAffinity() {
	g := glign.PaperExampleGraph()
	batch := []glign.Query{
		{Kernel: glign.SSSP, Source: 1},
		{Kernel: glign.SSSP, Source: 7},
	}
	fmt.Printf("%.4f\n", glign.Affinity(g, batch, nil))
	fmt.Printf("%.4f\n", glign.Affinity(g, batch, []int{2, 0}))
	// Output:
	// 0.1111
	// 0.3333
}

// Compare an evaluation method against the default (full Glign).
func ExampleWithMethod() {
	g := glign.PaperExampleGraph()
	rt, _ := glign.NewRuntime(g, glign.WithMethod(glign.MethodLigraC))
	fmt.Println(rt.Method())
	// Output:
	// Ligra-C
}

// Every report can be checked against an independent serial reference.
func ExampleReport_Verify() {
	g := glign.PaperExampleGraph()
	rt, _ := glign.NewRuntime(g)
	report, _ := rt.Run([]glign.Query{{Kernel: glign.SSWP, Source: 2}})
	fmt.Println(report.Verify(0) == nil)
	// Output:
	// true
}
