// Command glign-perfgate runs the measured-performance tier: it executes the
// benchmark matrix of internal/perf (methods x kernels x graphs x workers,
// warmup + repetitions, median-of-reps) and diffs the resulting
// glign.bench/v1 report against a committed baseline, exactly as the lint
// baseline pins the suppression counts. verify.sh runs `glign-perfgate
// -check`; a hot-path regression beyond the noise tolerance fails the build.
//
// Modes:
//
//	glign-perfgate                                  # run matrix, print report summary
//	glign-perfgate -out results/bench-report.json   # run and archive the report
//	glign-perfgate -write-baseline results/bench-baseline.json
//	glign-perfgate -check                           # run + diff against -baseline, exit 1 on regression
//	glign-perfgate -check -bench BENCH_PR10.json    # also pin the committed artifact's schema+shape
//	glign-perfgate -diff old.json new.json          # offline diff of two reports
//
// Environment knobs (CI overrides without editing verify.sh):
//
//	GLIGN_PERF_TOLERANCE   relative noise tolerance (e.g. 0.75)
//	GLIGN_PERF_SKIP=1      skip the gate entirely (exit 0)
//
// Gating guards: cells with workers > 1 are advisory on a 1-CPU box
// (scheduling overhead, not parallel speedup), and all time comparisons are
// advisory when the environment fingerprints differ; schema version and
// matrix shape are enforced unconditionally. Regressed cells are re-measured
// once with more repetitions before the gate fails, so a background-noise
// spike on a shared box does not fail CI.
//
// Exit codes: 0 pass (or skipped), 1 regression/shape/schema failure,
// 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/glign/glign/internal/perf"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		check         = flag.Bool("check", false, "run the matrix and diff against -baseline; exit 1 on regression")
		baselinePath  = flag.String("baseline", "results/bench-baseline.json", "committed baseline report")
		writeBaseline = flag.String("write-baseline", "", "run the matrix and write the baseline to this path")
		out           = flag.String("out", "", "archive the fresh report to this path")
		benchArtifact = flag.String("bench", "", "also pin this committed artifact's schema and matrix shape against the baseline")
		diffMode      = flag.Bool("diff", false, "offline mode: diff two report files (args: baseline current)")
		tolerance     = flag.Float64("tolerance", -1, "relative noise tolerance (default 0.75, or GLIGN_PERF_TOLERANCE)")
		remeasure     = flag.Int("remeasure", 5, "re-measure regressed cells with this many reps before failing (0 disables)")
		warmup        = flag.Int("warmup", -1, "warmup runs per cell (default from matrix config)")
		reps          = flag.Int("reps", -1, "measured runs per cell (default from matrix config)")
		size          = flag.String("size", "", "graph size class: tiny, small, medium")
		batch         = flag.Int("batch", 0, "queries per buffer")
		seed          = flag.Int64("seed", 0, "source-sampler seed")
		methodsCSV    = flag.String("methods", "", "restrict matrix methods (comma-separated)")
		kernelsCSV    = flag.String("kernels", "", "restrict matrix kernels (comma-separated)")
		graphsCSV     = flag.String("graphs", "", "restrict matrix graphs (comma-separated)")
		workersCSV    = flag.String("workers", "", "restrict matrix worker counts (comma-separated)")
	)
	flag.Parse()

	if os.Getenv("GLIGN_PERF_SKIP") == "1" {
		fmt.Println("glign-perfgate: skipped (GLIGN_PERF_SKIP=1)")
		return 0
	}

	if *diffMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "glign-perfgate: -diff needs exactly two report paths")
			return 2
		}
		return diffFiles(flag.Arg(0), flag.Arg(1), *tolerance)
	}

	cfg := perf.DefaultConfig()
	if *size != "" {
		cfg.Size = *size
	}
	if *batch > 0 {
		cfg.BatchSize = *batch
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *warmup >= 0 {
		cfg.Warmup = *warmup
	}
	if *reps > 0 {
		cfg.Reps = *reps
	}
	if *methodsCSV != "" {
		cfg.Methods = splitCSV(*methodsCSV)
	}
	if *kernelsCSV != "" {
		cfg.Kernels = splitCSV(*kernelsCSV)
	}
	if *graphsCSV != "" {
		cfg.Graphs = splitCSV(*graphsCSV)
	}
	if *workersCSV != "" {
		ws, err := splitInts(*workersCSV)
		if err != nil {
			fmt.Fprintln(os.Stderr, "glign-perfgate:", err)
			return 2
		}
		cfg.Workers = ws
	}

	runner, err := perf.NewRunner(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "glign-perfgate:", err)
		return 2
	}
	fmt.Printf("glign-perfgate: measuring %d cells (%s graphs, warmup %d, reps %d)\n",
		len(runner.Keys()), cfg.Size, cfg.Warmup, cfg.Reps)
	report, err := runner.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "glign-perfgate:", err)
		return 2
	}

	if *out != "" {
		if err := report.WriteReport(*out); err != nil {
			fmt.Fprintln(os.Stderr, "glign-perfgate:", err)
			return 2
		}
		fmt.Printf("glign-perfgate: report -> %s\n", *out)
	}
	if *writeBaseline != "" {
		if err := report.WriteReport(*writeBaseline); err != nil {
			fmt.Fprintln(os.Stderr, "glign-perfgate:", err)
			return 2
		}
		fmt.Printf("glign-perfgate: baseline -> %s (%d cells)\n", *writeBaseline, len(report.Cells))
	}

	if !*check {
		if *writeBaseline == "" && *out == "" {
			fmt.Print(summarize(report))
		}
		return 0
	}

	baseline, err := perf.ReadReport(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "glign-perfgate:", err)
		fmt.Fprintln(os.Stderr, "glign-perfgate: regenerate with: go run ./cmd/glign-perfgate -write-baseline", *baselinePath)
		return 2
	}
	opt := gateOptions(report.Env, *tolerance)
	diff := perf.Compare(baseline, report, opt)

	// A regression on a live run gets one re-measurement with more reps:
	// medians over 3 runs on a busy CI box still admit the occasional noise
	// spike, and a genuine slowdown reproduces under 5.
	if regs := diff.Regressions(); len(regs) > 0 && *remeasure > 0 {
		fmt.Printf("glign-perfgate: %d cell(s) regressed; re-measuring with %d reps\n", len(regs), *remeasure)
		cells := report.CellMap()
		for _, key := range regs {
			cell, err := runner.MeasureCell(key, *remeasure)
			if err != nil {
				fmt.Fprintln(os.Stderr, "glign-perfgate:", err)
				return 2
			}
			*cells[key] = cell
		}
		diff = perf.Compare(baseline, report, opt)
		if *out != "" {
			if err := report.WriteReport(*out); err != nil {
				fmt.Fprintln(os.Stderr, "glign-perfgate:", err)
				return 2
			}
		}
	}
	fmt.Print(diff.Table())

	if *benchArtifact != "" {
		if msg := pinArtifact(*benchArtifact, baseline); msg != "" {
			fmt.Fprintln(os.Stderr, "glign-perfgate:", msg)
			return 1
		}
		fmt.Printf("glign-perfgate: %s schema+shape pinned against baseline\n", *benchArtifact)
	}
	if !diff.Pass {
		fmt.Fprintln(os.Stderr, "glign-perfgate: FAIL — see the delta table above")
		fmt.Fprintln(os.Stderr, "glign-perfgate: to accept a deliberate change, refresh the baseline:")
		fmt.Fprintln(os.Stderr, "  go run ./cmd/glign-perfgate -write-baseline", *baselinePath)
		return 1
	}
	fmt.Println("glign-perfgate: PASS")
	return 0
}

// diffFiles is the offline mode: load two reports and print their delta
// table. The current report's fingerprint drives the gating defaults.
func diffFiles(basePath, curPath string, tolFlag float64) int {
	base, err := perf.ReadReport(basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "glign-perfgate:", err)
		return 2
	}
	cur, err := perf.ReadReport(curPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "glign-perfgate:", err)
		return 2
	}
	diff := perf.Compare(base, cur, gateOptions(cur.Env, tolFlag))
	fmt.Print(diff.Table())
	if !diff.Pass {
		return 1
	}
	return 0
}

// gateOptions resolves the diff options from the flag and environment.
func gateOptions(env perf.Env, tolFlag float64) perf.DiffOptions {
	opt := perf.DefaultDiffOptions(env)
	if s := os.Getenv("GLIGN_PERF_TOLERANCE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			opt.Tolerance = v
		} else {
			fmt.Fprintf(os.Stderr, "glign-perfgate: ignoring bad GLIGN_PERF_TOLERANCE=%q\n", s)
		}
	}
	if tolFlag > 0 {
		opt.Tolerance = tolFlag
	}
	return opt
}

// pinArtifact checks the committed benchmark artifact (BENCH_PRn.json)
// against the baseline: schema version and matrix shape must match exactly.
// Returns "" when the artifact holds, else the failure message.
func pinArtifact(path string, baseline *perf.Report) string {
	artifact, err := perf.ReadReport(path)
	if err != nil {
		return err.Error()
	}
	// Shape-only comparison: advisory times, strict key set.
	opt := perf.DiffOptions{Tolerance: 1e9, MinDeltaNs: 1 << 62, GateParallel: false}
	d := perf.Compare(baseline, artifact, opt)
	if d.SchemaMismatch != "" {
		return fmt.Sprintf("%s: %s", path, d.SchemaMismatch)
	}
	if d.Missing > 0 || d.New > 0 {
		return fmt.Sprintf("%s: matrix shape drifted from the baseline (%d missing, %d new cells); regenerate the artifact alongside the baseline",
			path, d.Missing, d.New)
	}
	return ""
}

// summarize prints a short per-cell table for a bare run.
func summarize(r *perf.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s  %12s  %8s  %8s\n", "cell", "median", "steals", "imbal")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-40s  %9.3fms  %8d  %8.2f\n",
			c.CellKey.String(), float64(c.NsPerOp)/1e6, c.Sched.Steals, c.Sched.ImbalanceRatio)
	}
	return b.String()
}

func splitCSV(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitCSV(s) {
		v, err := strconv.Atoi(f)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad worker count %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}
