// Command glign-profile inspects the alignment structure of a graph: the
// high-degree hubs, the closestHV (heavy-iteration arrival estimate)
// distribution, per-query frontier traces, and the affinity between
// concrete queries under chosen or optimal alignments.
//
// Examples:
//
//	glign-profile -dataset LJ -size small                  # hubs + histogram
//	glign-profile -dataset LJ -trace SSSP:17               # frontier sizes
//	glign-profile -dataset LJ -affinity SSSP:17,SSSP:99    # pairwise affinity
//	glign-profile -dataset LJ -affinity SSSP:17,SSSP:99 -optimal
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	glign "github.com/glign/glign"
	"github.com/glign/glign/internal/align"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/queries"
	"github.com/glign/glign/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "glign-profile:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		graphPath = flag.String("graph", "", "graph file to load (.bin or edge list)")
		directed  = flag.Bool("directed", true, "treat -graph edge list as directed")
		dataset   = flag.String("dataset", "", "synthetic dataset to generate")
		size      = flag.String("size", "small", "size class (tiny, small, medium)")
		hubs      = flag.Int("hubs", align.DefaultHubCount, "number of high-degree hubs K")
		traceSpec = flag.String("trace", "", "trace one query, e.g. SSSP:17")
		affSpec   = flag.String("affinity", "", "comma-separated queries to compare, e.g. SSSP:17,SSSP:99")
		alignCSV  = flag.String("align", "", "explicit alignment vector for -affinity, e.g. 2,0")
		optimal   = flag.Bool("optimal", false, "exhaustively search the optimal alignment for -affinity")
		maxShift  = flag.Int("maxshift", 8, "shift bound of the optimal search")
		workers   = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	)
	flag.Parse()

	var g *glign.Graph
	var err error
	switch {
	case *graphPath != "":
		g, err = glign.LoadGraph(*graphPath, *directed)
	case *dataset != "":
		g, err = glign.Generate(*dataset, *size)
	default:
		return fmt.Errorf("one of -graph or -dataset is required")
	}
	if err != nil {
		return err
	}
	fmt.Println(g)

	prof := align.NewProfile(g, *hubs, *workers)
	fmt.Printf("profile built in %s (%s resident)\n",
		stats.FormatDuration(prof.PrepTime.Seconds()),
		stats.FormatCount(float64(prof.MemoryBytes())))

	switch {
	case *traceSpec != "":
		return runTrace(g, prof, *traceSpec, *workers)
	case *affSpec != "":
		return runAffinity(g, prof, *affSpec, *alignCSV, *optimal, *maxShift, *workers)
	default:
		return printOverview(g, prof)
	}
}

// printOverview reports the hubs and the closestHV histogram.
func printOverview(g *glign.Graph, prof *align.Profile) error {
	tb := &stats.Table{Title: "High-degree hubs", Header: []string{"hub", "out-degree"}}
	for _, h := range prof.Hubs {
		tb.AddRow(fmt.Sprintf("v%d", h), fmt.Sprint(g.OutDegree(h)))
	}
	fmt.Print(tb.String())

	hist := map[int32]int{}
	maxD := int32(0)
	unreachable := 0
	for _, d := range prof.ClosestHV {
		if d < 0 {
			unreachable++
			continue
		}
		hist[d]++
		if d > maxD {
			maxD = d
		}
	}
	tb = &stats.Table{
		Title:  "closestHV histogram (estimated heavy-iteration arrival of a query per source)",
		Header: []string{"hops to nearest hub", "sources", "share"},
	}
	n := float64(g.NumVertices())
	for d := int32(0); d <= maxD; d++ {
		if hist[d] == 0 {
			continue
		}
		tb.AddRow(fmt.Sprint(d), fmt.Sprint(hist[d]), fmt.Sprintf("%.1f%%", 100*float64(hist[d])/n))
	}
	if unreachable > 0 {
		tb.AddRow("unreachable", fmt.Sprint(unreachable), fmt.Sprintf("%.1f%%", 100*float64(unreachable)/n))
	}
	fmt.Print(tb.String())
	return nil
}

// parseQuery parses "KERNEL:src".
func parseQuery(spec string, n int) (queries.Query, error) {
	parts := strings.SplitN(strings.TrimSpace(spec), ":", 2)
	if len(parts) != 2 {
		return queries.Query{}, fmt.Errorf("bad query spec %q (want KERNEL:src)", spec)
	}
	k, err := queries.ByName(parts[0])
	if err != nil {
		return queries.Query{}, err
	}
	src, err := strconv.ParseUint(parts[1], 10, 32)
	if err != nil || int(src) >= n {
		return queries.Query{}, fmt.Errorf("bad source in %q", spec)
	}
	return queries.Query{Kernel: k, Source: graph.VertexID(src)}, nil
}

func runTrace(g *glign.Graph, prof *align.Profile, spec string, workers int) error {
	q, err := parseQuery(spec, g.NumVertices())
	if err != nil {
		return err
	}
	tr := align.TraceQuery(g, q, workers)
	arrival := align.HeavyArrivalFromTrace(tr, prof.Hubs)
	fmt.Printf("%s: %d iterations, heavy-iteration arrival at %d (estimate %d)\n",
		q, len(tr.Sizes), arrival, prof.ArrivalEstimate(q.Source))
	fmt.Println("iteration,frontier_vertices,frontier_out_edges")
	for j, s := range tr.Sizes {
		fmt.Printf("%d,%d,%d\n", j, s, tr.EdgeSizes[j])
	}
	return nil
}

func runAffinity(g *glign.Graph, prof *align.Profile, spec, alignCSV string, optimal bool, maxShift, workers int) error {
	var batch []queries.Query
	for _, s := range strings.Split(spec, ",") {
		q, err := parseQuery(s, g.NumVertices())
		if err != nil {
			return err
		}
		batch = append(batch, q)
	}
	if len(batch) < 2 {
		return fmt.Errorf("-affinity needs at least two queries")
	}
	traces := align.TraceBatch(g, batch, workers)

	report := func(label string, I []int) {
		fmt.Printf("%-22s I=%v  affinity=%.4f  edge-affinity=%.4f\n",
			label, I, align.Affinity(traces, I), align.AffinityEdges(traces, I, g))
	}
	report("zero alignment", make([]int, len(batch)))
	report("heuristic (closestHV)", prof.AlignmentVector(batch))
	if alignCSV != "" {
		var I []int
		for _, f := range strings.Split(alignCSV, ",") {
			x, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return fmt.Errorf("bad -align: %v", err)
			}
			I = append(I, x)
		}
		if len(I) != len(batch) {
			return fmt.Errorf("-align length %d != %d queries", len(I), len(batch))
		}
		report("explicit", I)
	}
	if optimal {
		best, aff := align.OptimalAlignment(traces, maxShift)
		fmt.Printf("%-22s I=%v  affinity=%.4f (exhaustive, shifts <= %d)\n",
			"optimal", best, aff, maxShift)
	}
	return nil
}
