// Package serve (cancelpath fixture) exercises the release-on-every-path
// check for context.CancelFuncs, timers, and tickers: deferred releases and
// ownership transfers are clean, early returns and straight-line leaks are
// findings, and a process-lifetime ticker carries a justified suppression.
package serve

import (
	"context"
	"errors"
	"time"
)

func work(ctx context.Context) {
	<-ctx.Done()
}

// leakCancel skips cancel() on the early-return path: the derived context —
// and WithCancel's slot in the parent's cancellation tree — is never freed.
func leakCancel(parent context.Context, cond bool) error {
	ctx, cancel := context.WithCancel(parent) // want: not called on every exit path
	if cond {
		return errors.New("early")
	}
	work(ctx)
	cancel()
	return nil
}

// deferCancel releases on every termination via the defer postlude: clean.
func deferCancel(parent context.Context) {
	ctx, cancel := context.WithTimeout(parent, time.Second)
	defer cancel()
	work(ctx)
}

// leakTicker never stops the ticker; its goroutine outlives the loop.
func leakTicker(n int) {
	tk := time.NewTicker(time.Second) // want: not stopped on every exit path
	for i := 0; i < n; i++ {
		<-tk.C
	}
}

// stopTimer drains and stops through a defer: clean.
func stopTimer(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	<-t.C
}

// handTimer transfers ownership to the caller, which must stop it: clean
// here (the escape ends local responsibility).
func handTimer(d time.Duration) *time.Timer {
	t := time.NewTimer(d)
	return t
}

// discardCancel throws the CancelFunc away; the context can never be
// released.
func discardCancel(parent context.Context) context.Context {
	ctx, _ := context.WithCancel(parent) // want: CancelFunc discarded
	return ctx
}

// heartbeat runs for the process lifetime by design; the ticker is never
// stopped on purpose.
func heartbeat(beats chan<- time.Time) {
	//lint:ignore glignlint/cancelpath fixture: process-lifetime heartbeat ticker is never stopped by design
	tk := time.NewTicker(time.Minute)
	for t := range tk.C {
		beats <- t
	}
}
