// Package atomixfix exercises the atomicmix analyzer: a struct whose fields
// are CASed/added atomically in some functions and touched plainly in others.
package atomixfix

import "sync/atomic"

type stats struct {
	hits  int64
	plain int64
	words []uint64
}

// record is the atomic writer that puts hits on the analyzer's radar.
func record(s *stats) { atomic.AddInt64(&s.hits, 1) }

// casWord is the atomic writer that puts words on the radar.
func casWord(s *stats, i int) { atomic.CompareAndSwapUint64(&s.words[i], 0, 1) }

// report reads hits plainly: true positive.
func report(s *stats) int64 { return s.hits }

// resetWords stores into words elements plainly: true positive.
func resetWords(s *stats) {
	for i := range s.words {
		s.words[i] = 0
	}
}

// bumpPlain touches a field no atomic op ever sees: true negative.
func bumpPlain(s *stats) { s.plain++ }

// headerUses exercises benign slice-header operations on an atomic slice
// (len, passing the header) — true negatives.
func headerUses(s *stats) int { return len(s.words) }

// quiescedReport reads hits plainly under a suppression: finding emitted but
// suppressed.
func quiescedReport(s *stats) int64 {
	//lint:ignore glignlint/atomicmix fixture: all workers joined before this read
	return s.hits
}

// bumpVia is a wrapper whose pointer parameter reaches an atomic op; the
// interprocedural summary propagates the fact to its call sites.
func bumpVia(p *int64) { atomic.AddInt64(p, 1) }

type wrapped struct{ n int64 }

// useWrapper routes w.n into the atomic add through the wrapper.
func useWrapper(w *wrapped) { bumpVia(&w.n) }

// readWrapped reads n plainly: true positive only with the wrapper-aware
// interprocedural tier.
func readWrapped(w *wrapped) int64 { return w.n }

// snapshotWords bulk-reads the CAS-protected bitmap with copy: true positive
// only with the whole-slice tier (copy loads every element plainly).
func snapshotWords(s *stats) []uint64 {
	out := make([]uint64, len(s.words))
	copy(out, s.words)
	return out
}

// spreadWords bulk-reads words via append spread: true positive with the
// whole-slice tier.
func spreadWords(s *stats) []uint64 { return append([]uint64(nil), s.words...) }
