// Package telemetry is a nilrecv fixture mirroring the real telemetry
// package's nil-safe collector contract (the package name is what puts its
// Collector/RunTrace/BatchTrace types in the analyzer's scope).
package telemetry

// Collector mimics the real nil-safe collector.
type Collector struct{ n int }

// Observe starts with the required nil-receiver guard: true negative.
func (c *Collector) Observe(v int) {
	if c == nil {
		return
	}
	c.n += v
}

// Count is missing the guard: true positive.
func (c *Collector) Count() int { return c.n }

// RunTrace mimics the real per-run trace type.
type RunTrace struct{ n int }

// Note has a value receiver, which cannot be nil-checked: true positive.
func (r RunTrace) Note() { _ = r.n }

// BatchTrace mimics the real per-batch trace type.
type BatchTrace struct{ n int }

// Record is unguarded but carries a suppression: finding emitted but
// suppressed.
//
//lint:ignore glignlint/nilrecv fixture: documented always-non-nil usage
func (b *BatchTrace) Record(v int) { b.n += v }

// helper is unexported, so the contract does not apply: true negative.
func (c *Collector) helper() int { return c.n }
