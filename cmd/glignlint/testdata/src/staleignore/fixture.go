// Package par (staleignore fixture) exercises unused-suppression detection:
// a directive that matches a live waitjoin finding is in use (clean), a
// directive whose finding was fixed long ago is stale (reported), and a
// stale directive kept deliberately is itself suppressed via
// glignlint/staleignore.
package par

import "sync"

// detach launches without a join; the directive below matches the live
// finding, so it is used and staleignore stays quiet about it.
func detach(work func()) {
	//lint:ignore glignlint/waitjoin fixture: fire-and-forget launch kept to exercise directive matching
	go work()
}

// joined was fixed to wait on its worker, but the directive rotted in place:
// it matches nothing now and staleignore reports it.
//
//lint:ignore glignlint/waitjoin fixture: stale — the launch below was given a WaitGroup join
func joined(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// alsoJoined keeps its retired directive on purpose (say, for an imminent
// revert); the staleignore directive above it silences the stale report.
func alsoJoined(work func()) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	//lint:ignore glignlint/staleignore fixture: retired suppression kept for an imminent revert
	//lint:ignore glignlint/waitjoin fixture: stale on purpose — the launch is channel-joined
	<-done
}

// subsetOnly carries a directive naming an analyzer (lockorder) that the
// staleignore fixture test deliberately leaves unselected: a subset run
// cannot judge such a directive, so it must never be reported stale there —
// only a run that actually selects lockorder may decide.
func subsetOnly(mu *sync.Mutex) {
	//lint:ignore glignlint/lockorder fixture: judged only when lockorder itself is selected
	mu.Lock()
	mu.Unlock()
}
