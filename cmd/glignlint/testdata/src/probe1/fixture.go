// Package probe1 probes go-statement named-callee spawns under a held lock.
package probe1

import "sync"

type left struct {
	mu sync.Mutex
	n  int
}

type right struct {
	mu sync.Mutex
	n  int
}

// spawnUnderLock holds l.mu only while spawning worker; the goroutine itself
// never runs with l.mu held, so no l.mu -> r.mu ordering exists at runtime.
func spawnUnderLock(l *left, r *right) {
	l.mu.Lock()
	go worker(r)
	l.mu.Unlock()
}

// worker takes only the right lock.
func worker(r *right) {
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
}

// other takes r.mu then l.mu; combined with the spurious edge above this
// would close a false cycle.
func other(l *left, r *right) {
	r.mu.Lock()
	defer r.mu.Unlock()
	l.mu.Lock()
	l.n++
	l.mu.Unlock()
}
