// Package engine is a hotalloc fixture: iteration loops driving internal/par
// with per-iteration allocations (true positives), properly reserved scratch
// buffers (true negatives), and one justified diagnostic allocation (the
// suppressed case). The package name is what puts it in the analyzer's scope.
package engine

import "github.com/glign/glign/internal/par"

// badLoop allocates on the hot path every iteration: a fresh buffer (make),
// and an append into a never-reserved slice — both true positives.
func badLoop(n, iters int) []int {
	var trace []int
	for iter := 0; iter < iters; iter++ {
		buf := make([]int, n) // true positive: per-iteration make
		par.For(n, 0, 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				buf[i] = i
			}
		})
		trace = append(trace, len(buf)) // true positive: unreserved append
	}
	return trace
}

// badClosure allocates inside the worker closure itself (once per chunk per
// iteration): a map literal — true positive.
func badClosure(n int) {
	par.For(n, 0, 0, func(lo, hi int) {
		seen := map[int]bool{} // true positive: per-chunk map literal
		for i := lo; i < hi; i++ {
			seen[i] = true
		}
	})
}

// goodLoop is the prescribed shape: the per-iteration record is reserved with
// a capacity hint before the loop, and per-worker scratch uses the zero-length
// make idiom — all true negatives.
func goodLoop(n, iters int) []int {
	sizes := make([]int, 0, iters) // reservation with an iteration-cap hint
	for iter := 0; iter < iters; iter++ {
		par.For(n, 0, 0, func(lo, hi int) {
			lanes := make([]int, 0, hi-lo) // scratch make: exempt by idiom
			for i := lo; i < hi; i++ {
				lanes = append(lanes, i) // reserved on every path: exempt
			}
			_ = lanes
		})
		sizes = append(sizes, n) // reserved on every path: exempt
	}
	return sizes
}

// badPoolLoop drives the persistent pool through its method entry point; a
// loop around pool.For is as hot as one around par.For, and the
// per-iteration make must still be flagged: true positive (and the proof
// that method calls on par.Pool count as par calls).
func badPoolLoop(p *par.Pool, n, iters int) {
	for iter := 0; iter < iters; iter++ {
		buf := make([]int, n) // true positive: per-iteration make
		p.For(n, 0, 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				buf[i] = i
			}
		})
	}
}

// historyLoop captures opt-in diagnostics on the hot path under a
// suppression: finding emitted but suppressed.
func historyLoop(n, iters int) [][]int {
	history := make([][]int, 0, iters)
	for iter := 0; iter < iters; iter++ {
		par.For(n, 0, 0, func(lo, hi int) {})
		//lint:ignore glignlint/hotalloc fixture: history capture is opt-in diagnostics, off the steady-state path
		row := make([]int, n)
		history = append(history, row)
	}
	return history
}
