// Package lockorder is the lockorder analyzer fixture: a two-lock inversion
// whose closing edge hides inside a spawned goroutine, a consistent
// cross-function order that stays quiet, an RLock→Lock upgrade, and a second
// inversion acknowledged with a suppression.
package lockorder

import "sync"

type accounts struct {
	mu      sync.Mutex
	balance int
}

type audit struct {
	mu  sync.Mutex
	log []int
}

// transfer establishes accounts.mu → audit.mu: the audit lock is acquired
// while the balance lock is held (released by the defer postlude).
func transfer(a *accounts, l *audit, v int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.balance -= v
	l.mu.Lock()
	l.log = append(l.log, v)
	l.mu.Unlock()
}

// reconcile spawns a goroutine taking the same two locks in the opposite
// order: audit.mu → accounts.mu closes the cycle across goroutines.
func reconcile(a *accounts, l *audit) {
	go func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		a.mu.Lock()
		a.balance++
		a.mu.Unlock()
	}()
}

// withBoth takes the locks in the same order as transfer, through a callee:
// the call-site edge agrees with the global order and adds no cycle.
func withBoth(a *accounts, l *audit) {
	a.mu.Lock()
	defer a.mu.Unlock()
	record(l, a.balance)
}

// record appends under the audit lock.
func record(l *audit, v int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.log = append(l.log, v)
}

type gauge struct {
	rw sync.RWMutex
	v  int
}

// bump upgrades a read lock to a write lock on the same mutex: the writer
// waits for all readers to drain, including its own read side.
func (g *gauge) bump() {
	g.rw.RLock()
	defer g.rw.RUnlock()
	g.rw.Lock()
	g.v++
	g.rw.Unlock()
}

type intake struct {
	mu sync.Mutex
	q  []int
}

type flusher struct {
	mu   sync.Mutex
	last int
}

// stage establishes intake.mu → flusher.mu.
func stage(in *intake, f *flusher, v int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.q = append(in.q, v)
	f.mu.Lock()
	f.last = v
	f.mu.Unlock()
}

// drainStage inverts the stage/flush pair; the cycle is acknowledged and
// suppressed pending the flush-queue rework.
func drainStage(in *intake, f *flusher) {
	f.mu.Lock()
	defer f.mu.Unlock()
	//lint:ignore glignlint/lockorder fixture: second inversion kept to exercise suppression accounting
	in.mu.Lock()
	in.q = in.q[:0]
	in.mu.Unlock()
}
