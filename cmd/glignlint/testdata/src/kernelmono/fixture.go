// Package queries is a kernelmono fixture: a miniature Values array plus a
// Kernel interface with one pure and one impure implementation (the package
// name is what puts it in the analyzer's scope).
package queries

import "sync/atomic"

// Value mirrors the real query value type.
type Value = float64

// Values mirrors the real CAS-protected cell array.
type Values struct{ bits []uint64 }

// NewValues allocates n cells (approved constructor).
func NewValues(n int) *Values { return &Values{bits: make([]uint64, n)} }

// Get atomically reads cell i (approved accessor).
func (v *Values) Get(i int) Value { return Value(atomic.LoadUint64(&v.bits[i])) }

// Set atomically stores cell i (approved accessor).
func (v *Values) Set(i int, x Value) { atomic.StoreUint64(&v.bits[i], uint64(x)) }

// ImproveMin CASes cell i downward (approved helper).
func (v *Values) ImproveMin(i int, cand Value) bool {
	for {
		old := atomic.LoadUint64(&v.bits[i])
		if Value(old) <= cand {
			return false
		}
		if atomic.CompareAndSwapUint64(&v.bits[i], old, uint64(cand)) {
			return true
		}
	}
}

// Poke writes a cell outside the approved helper set: true positive.
func Poke(v *Values, i int) { v.bits[i] = 0 }

// Peek reads a cell directly under a suppression: finding emitted but
// suppressed.
func Peek(v *Values, i int) uint64 {
	//lint:ignore glignlint/kernelmono fixture: read-only debug helper on a quiesced array
	return v.bits[i]
}

// Kernel mirrors the real kernel interface shape.
type Kernel interface {
	Identity() Value
	Relax(src Value, w float64) Value
	Better(a, b Value) bool
}

// good is a pure kernel: true negative (local state only).
type good struct{}

func (good) Identity() Value { return 0 }

func (good) Relax(src Value, w float64) Value {
	acc := struct{ v Value }{v: src}
	acc.v += Value(w)
	return acc.v
}

func (good) Better(a, b Value) bool { return a < b }

// bad is an impure kernel: its Relax hits all three purity violations.
var relaxCount int64

type bad struct {
	last Value
	vals *Values
}

func (b *bad) Identity() Value { return 0 }

func (b *bad) Relax(src Value, w float64) Value {
	atomic.AddInt64(&relaxCount, 1) // true positive: sync/atomic in a kernel
	b.last = src                    // true positive: non-local write
	b.vals.Set(0, src)              // true positive: Values mutation
	return src + w
}

func (b *bad) Better(a, c Value) bool { return a < c }

// sneaky hides its impurity behind a local pointer alias: true positive only
// with the alias-aware tier.
type sneaky struct{ last Value }

func (s *sneaky) Identity() Value { return 0 }

func (s *sneaky) Relax(src Value, w float64) Value {
	p := &s.last
	*p = src // true positive: write through an alias of receiver state
	return src + w
}

func (s *sneaky) Better(a, b Value) bool { return a < b }

// indirect delegates its side effect to a helper: true positive only with the
// call-graph purity tier.
type indirect struct{}

var tally int64

func bumpTally() { tally++ }

func (indirect) Identity() Value { return 0 }

func (indirect) Relax(src Value, w float64) Value {
	bumpTally() // true positive: calls an impure helper
	return src + w
}

func (indirect) Better(a, b Value) bool { return a < b }

// ConvergenceKernel mirrors the real iterate-to-convergence interface; its
// presence (together with Monotone below) arms the paradigm-classification
// tier.
type ConvergenceKernel interface {
	Kernel
	InitialValue(n, v int) Value
	Step(n int, self Value, nbrs []Value) Value
	Residual(old, next Value) float64
	Epsilon() float64
	MaxRounds() int
}

// Good and NewSneaky exercise the registry resolver's ident and
// constructor-call paths.
var Good Kernel = good{}

// NewSneaky constructs the alias-impure kernel.
func NewSneaky() Kernel { return &sneaky{} }

// Monotone mirrors the real monotone registry: every concrete Kernel type
// must resolve from here or implement ConvergenceKernel.
func Monotone() []Kernel {
	return []Kernel{
		Good,        // resolved through the var initializer
		&bad{},      // address-taken composite literal
		NewSneaky(), // resolved through the constructor's return
		indirect{},  // plain composite literal
		confused{},  // true positive: a ConvergenceKernel in the monotone registry
	}
}

// smooth is a pure convergence kernel: true negative for both the purity and
// the classification tiers.
type smooth struct{}

func (smooth) Identity() Value                  { return 0 }
func (smooth) Relax(src Value, w float64) Value { return src + w }
func (smooth) Better(a, b Value) bool           { return a < b }
func (smooth) InitialValue(n, v int) Value      { return Value(v) }
func (smooth) Residual(old, next Value) float64 { return next - old }
func (smooth) Epsilon() float64                 { return 0.5 }
func (smooth) MaxRounds() int                   { return 8 }

func (smooth) Step(n int, self Value, nbrs []Value) Value {
	s := self
	for _, x := range nbrs {
		if x < s {
			s = x
		}
	}
	return s
}

// rough is a convergence kernel whose Step mutates package state: true
// positive for the convergence-method purity tier.
var stepCount int64

type rough struct{}

func (rough) Identity() Value                  { return 0 }
func (rough) Relax(src Value, w float64) Value { return src + w }
func (rough) Better(a, b Value) bool           { return a < b }
func (rough) InitialValue(n, v int) Value      { return Value(v) }
func (rough) Residual(old, next Value) float64 { return next - old }
func (rough) Epsilon() float64                 { return 0.5 }
func (rough) MaxRounds() int                   { return 8 }

func (rough) Step(n int, self Value, nbrs []Value) Value {
	stepCount++ // true positive: non-local write inside a Jacobi step
	return self
}

// confused is a pure convergence kernel mislisted in Monotone(): the
// classification tier flags the registry entry, not the type.
type confused struct{}

func (confused) Identity() Value                         { return 0 }
func (confused) Relax(src Value, w float64) Value        { return src + w }
func (confused) Better(a, b Value) bool                  { return a < b }
func (confused) InitialValue(n, v int) Value             { return Value(v) }
func (confused) Step(n int, self Value, _ []Value) Value { return self }
func (confused) Residual(old, next Value) float64        { return next - old }
func (confused) Epsilon() float64                        { return 0.5 }
func (confused) MaxRounds() int                          { return 8 }

// stray implements Kernel but neither appears in Monotone() nor implements
// ConvergenceKernel: true positive for the classification tier.
type stray struct{}

func (stray) Identity() Value                  { return 0 }
func (stray) Relax(src Value, w float64) Value { return src + w }
func (stray) Better(a, b Value) bool           { return a < b }
