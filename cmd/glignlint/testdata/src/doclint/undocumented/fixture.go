package undocumented

// Undocumented is an exported symbol so the package is non-trivial.
const Undocumented = true
