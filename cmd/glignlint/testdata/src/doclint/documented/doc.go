// Package documented carries a package comment: true negative for doclint.
package documented

// Documented is an exported symbol so the package is non-trivial.
const Documented = true
