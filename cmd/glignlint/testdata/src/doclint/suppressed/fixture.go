package suppressed //lint:ignore glignlint/doclint fixture: intentionally undocumented test-only package

// Suppressed is an exported symbol so the package is non-trivial.
const Suppressed = true
