// Package parfix exercises the parcapture analyzer: closures handed to the
// internal/par helpers that write variables captured by reference.
package parfix

import (
	"sync/atomic"

	"github.com/glign/glign/internal/par"
)

// sumRace accumulates into a captured local from every worker: true positive.
func sumRace(xs []int) int {
	total := 0
	par.For(len(xs), 0, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			total += xs[i]
		}
	})
	return total
}

// fieldRace increments a field through a captured pointer: true positive.
type counter struct{ n int }

func fieldRace(c *counter, items []int) {
	par.ForEach(items, 0, func(int) {
		c.n++
	})
}

// sumAtomic publishes per-worker partials with sync/atomic: true negative
// (the accumulate-locally, publish-atomically convention).
func sumAtomic(xs []int) int64 {
	var total int64
	par.For(len(xs), 0, 0, func(lo, hi int) {
		local := int64(0)
		for i := lo; i < hi; i++ {
			local += int64(xs[i])
		}
		atomic.AddInt64(&total, local)
	})
	return total
}

// fillDisjoint stores to disjoint slice elements: true negative (element
// stores are the intended output channel of a parallel for).
func fillDisjoint(dst []int) {
	par.For(len(dst), 0, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = i
		}
	})
}

// poolRace accumulates into a captured local through the persistent pool's
// method entry point — method calls on par.Pool are par calls too: true
// positive.
func poolRace(p *par.Pool, xs []int) int {
	total := 0
	p.For(len(xs), 0, 0, func(lo, hi int) {
		total += hi - lo
	})
	return total
}

// reduceClean folds through par.ForReduce with chunk-local accumulators and
// no capture writes — the shape ForReduce exists to replace captures with:
// true negative.
func reduceClean(p *par.Pool, xs []int) int64 {
	return par.ForReduce(p, len(xs), 0, 0, int64(0),
		func(lo, hi int, acc int64) int64 {
			for i := lo; i < hi; i++ {
				acc += int64(xs[i])
			}
			return acc
		},
		func(a, b int64) int64 { return a + b })
}

// reduceRace writes a captured variable from the fold closure of an
// explicitly instantiated par.ForReduce[int] — the generic wrapper must not
// hide the call: true positive.
func reduceRace(p *par.Pool, xs []int) int {
	seen := 0
	par.ForReduce[int](p, len(xs), 0, 0, 0,
		func(lo, hi int, acc int) int {
			seen = hi // races across workers
			return acc + hi - lo
		},
		func(a, b int) int { return a + b })
	return seen
}

// suppressedSum writes a captured local under a suppression: finding emitted
// but suppressed.
func suppressedSum(xs []int) int {
	total := 0
	par.For(len(xs), 0, 1<<30, func(lo, hi int) {
		//lint:ignore glignlint/parcapture fixture: the grain forces a single chunk, so one worker runs
		total += hi - lo
	})
	return total
}
