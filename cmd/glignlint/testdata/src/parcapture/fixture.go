// Package parfix exercises the parcapture analyzer: closures handed to the
// internal/par helpers that write variables captured by reference.
package parfix

import (
	"sync/atomic"

	"github.com/glign/glign/internal/par"
)

// sumRace accumulates into a captured local from every worker: true positive.
func sumRace(xs []int) int {
	total := 0
	par.For(len(xs), 0, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			total += xs[i]
		}
	})
	return total
}

// fieldRace increments a field through a captured pointer: true positive.
type counter struct{ n int }

func fieldRace(c *counter, items []int) {
	par.ForEach(items, 0, func(int) {
		c.n++
	})
}

// sumAtomic publishes per-worker partials with sync/atomic: true negative
// (the accumulate-locally, publish-atomically convention).
func sumAtomic(xs []int) int64 {
	var total int64
	par.For(len(xs), 0, 0, func(lo, hi int) {
		local := int64(0)
		for i := lo; i < hi; i++ {
			local += int64(xs[i])
		}
		atomic.AddInt64(&total, local)
	})
	return total
}

// fillDisjoint stores to disjoint slice elements: true negative (element
// stores are the intended output channel of a parallel for).
func fillDisjoint(dst []int) {
	par.For(len(dst), 0, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = i
		}
	})
}

// suppressedSum writes a captured local under a suppression: finding emitted
// but suppressed.
func suppressedSum(xs []int) int {
	total := 0
	par.For(len(xs), 0, 1<<30, func(lo, hi int) {
		//lint:ignore glignlint/parcapture fixture: the grain forces a single chunk, so one worker runs
		total += hi - lo
	})
	return total
}
