// Package lockguard is the lockguard fixture: a mutex-guarded counter box
// and an RWMutex-guarded table exercising guard inference (majority vote),
// the "...Locked" suffix convention, call-site entry-lock propagation,
// constructor freshness, double-locks, RLock writes, and exit/panic paths
// that leave a lock held.
package lockguard

import "sync"

// counterBox: mu guards n and hits — the majority of their accesses run
// under b.mu, so inference locks the discipline in and the stragglers below
// become findings.
type counterBox struct {
	mu   sync.Mutex
	n    int
	hits int
}

// newCounterBox writes fields on a fresh, unpublished object: no findings.
func newCounterBox() *counterBox {
	b := &counterBox{}
	b.n = 1
	return b
}

func (b *counterBox) incr() {
	b.mu.Lock()
	b.n++
	b.hits++
	b.mu.Unlock()
}

// get holds the lock via the defer postlude; the same b.n access that peek
// performs outside the lock is clean here.
func (b *counterBox) get() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

func (b *counterBox) reset() {
	b.mu.Lock()
	b.n = 0
	b.mu.Unlock()
}

// peek is get with the access moved outside the mutex: the verdict flips.
func (b *counterBox) peek() int {
	return b.n // want: unguarded read
}

// bumpLocked relies on the suffix convention: entry-held, no finding.
func (b *counterBox) bumpLocked() {
	b.n++
	b.hits++
}

// flush drives drain under the lock; drain itself has no suffix and no lock.
func (b *counterBox) flush() {
	b.mu.Lock()
	b.drain()
	b.mu.Unlock()
}

// drain is entry-held by call-site propagation: its only caller (flush)
// holds b.mu at the call. No finding.
func (b *counterBox) drain() {
	b.n = 0
	b.hits = 0
}

// doubleLock re-locks a held mutex: guaranteed self-deadlock.
func (b *counterBox) doubleLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.mu.Lock() // want: double lock
	b.n++
	b.mu.Unlock()
}

// leakyExit returns with the mutex held on the early-return path.
func (b *counterBox) leakyExit(flag bool) int {
	b.mu.Lock() // want: may be held at return
	if flag {
		return 0
	}
	v := b.n
	b.mu.Unlock()
	return v
}

// panicky leaves the mutex held when the panic path unwinds.
func (b *counterBox) panicky(v int) {
	b.mu.Lock() // want: panic path leaves lock held
	if v < 0 {
		panic("negative count")
	}
	b.n = v
	b.mu.Unlock()
}

// racyPeek documents an intentionally racy monitoring read.
func (b *counterBox) racyPeek() int {
	//lint:ignore glignlint/lockguard fixture: monitoring read tolerates staleness by design
	return b.n
}

// table: rw guards m; reads take RLock, writes must take the full Lock.
type table struct {
	rw sync.RWMutex
	m  map[string]int
}

func (t *table) load(k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.m[k]
}

func (t *table) store(k string, v int) {
	t.rw.Lock()
	defer t.rw.Unlock()
	t.m[k] = v
}

func (t *table) size() int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return len(t.m)
}

// badStore writes the map under the shared lock.
func (t *table) badStore(k string, v int) {
	t.rw.RLock()
	defer t.rw.RUnlock()
	t.m[k] = v // want: write under RLock
}
