// Package serve is a waitjoin fixture pinning the live-server lifecycle:
// the package name puts it in the analyzer's scope, the server type models
// the real internal/serve pattern (batcher and executor goroutines launched
// in the constructor against a WaitGroup field that Close waits on — a true
// negative under the pool-structured model), and one detached launch proves
// the package is actually checked.
package serve

import "sync"

// server mirrors the real Server lifecycle: two long-lived goroutines
// started in the constructor, joined at Close. The WaitGroup is a FIELD, so
// the cross-function join is reachable and the pool-structured model must
// accept it without a suppression.
type server struct {
	wg      sync.WaitGroup
	batches chan int
}

func newServer() *server {
	s := &server{batches: make(chan int)}
	s.wg.Add(2)
	go s.batchLoop()
	go s.execLoop()
	return s
}

func (s *server) batchLoop() {
	defer s.wg.Done()
	close(s.batches)
}

func (s *server) execLoop() {
	defer s.wg.Done()
	for range s.batches {
	}
}

// Close joins both serving goroutines — the Wait that licenses newServer's
// launches.
func (s *server) Close() { s.wg.Wait() }

// submitAsync leaks a completion goroutine past return with no join
// anywhere in the package: true positive, proving serve is in scope.
func submitAsync(done chan struct{}) {
	go func() { close(done) }()
}

// waitReply launches a worker and joins it by receiving the reply on every
// path: true negative.
func waitReply() int {
	ch := make(chan int, 1)
	go func() { ch <- 1 }()
	return <-ch
}
