// Package par is a waitjoin fixture: goroutine launches with and without a
// join on every exit path (the package name is what puts it in the analyzer's
// scope). True positives leak workers past return; true negatives join via
// WaitGroup.Wait, defer, or a channel receive; one deliberate fire-and-forget
// launch is suppressed.
package par

import "sync"

// leakyFor launches workers and returns without any join: true positive.
func leakyFor(n int) {
	for w := 0; w < n; w++ {
		go func() {}()
	}
}

// earlyReturn joins on the fall-through path but leaks on the early return —
// a true positive only a path-sensitive analysis can see.
func earlyReturn(n int, skip bool) {
	var wg sync.WaitGroup
	wg.Add(n)
	for w := 0; w < n; w++ {
		go func() { wg.Done() }()
	}
	if skip {
		return // leaks the workers on this path
	}
	wg.Wait()
}

// fanOut joins every worker before returning: true negative.
func fanOut(n int) {
	var wg sync.WaitGroup
	wg.Add(n)
	for w := 0; w < n; w++ {
		go worker(&wg)
	}
	wg.Wait()
}

// deferred joins through a deferred Wait, which runs on every exit
// (including panics): true negative.
func deferred(n int, early bool) {
	var wg sync.WaitGroup
	defer wg.Wait()
	wg.Add(n)
	for w := 0; w < n; w++ {
		go worker(&wg)
	}
	if early {
		return
	}
}

// collect joins by draining the producer's channel: true negative.
func collect(n int) int {
	ch := make(chan int)
	go produce(ch, n)
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

// detach launches a deliberately process-lifetime goroutine under a
// suppression: finding emitted but suppressed.
func detach() {
	//lint:ignore glignlint/waitjoin fixture: monitor goroutine is process-lifetime by design
	go monitor()
}

// pool models the persistent-pool lifetime the analyzer understands without
// a suppression: newPool Adds to a WaitGroup FIELD before launching, and
// Close — a different function — Waits on the same field. The launch is
// joined at pool shutdown, not at launcher return: true negative.
type pool struct {
	wg sync.WaitGroup
}

func newPool(n int) *pool {
	p := &pool{}
	p.wg.Add(n)
	for w := 0; w < n; w++ {
		go p.work()
	}
	return p
}

func (p *pool) work() { p.wg.Done() }

// Close joins the workers launched by newPool.
func (p *pool) Close() { p.wg.Wait() }

// leakyPool Adds to a WaitGroup field but NO function in the package ever
// Waits on it — the pool model must not excuse the launch: true positive.
type leakyPool struct {
	wg sync.WaitGroup
}

func newLeakyPool(n int) *leakyPool {
	p := &leakyPool{}
	p.wg.Add(n)
	for w := 0; w < n; w++ {
		go func() { p.wg.Done() }()
	}
	return p
}

func worker(wg *sync.WaitGroup) { wg.Done() }

func produce(ch chan int, n int) {
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
}

func monitor() {}
