// Package serve is the chanlife analyzer fixture: double close, send after
// close (directly and through a closing helper's summary), close of a
// possibly-nil channel, a non-owner close in a spawned goroutine, the
// lock-channel hybrid deadlock, and the ownership-transfer / defer-postlude
// true negatives.
package serve

import "sync"

// doubleClose closes the same channel twice: the second close panics.
func doubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch)
}

// sendAfterClose sends on a channel it has already closed.
func sendAfterClose(vs []int) chan int {
	out := make(chan int, 8)
	close(out)
	for _, v := range vs {
		out <- v
	}
	return out
}

// retire closes through a helper, then sends: the callee's close summary
// reaches the send site.
func retire(ch chan int) {
	shutdown(ch)
	ch <- 0
}

// shutdown closes its parameter on behalf of its callers.
func shutdown(ch chan int) {
	close(ch)
}

// nilClose closes a channel that was never made on the false branch.
func nilClose(cond bool) {
	var ch chan int
	if cond {
		ch = make(chan int)
	}
	close(ch)
}

// mailbox pairs a lock with an unbuffered hand-off channel.
type mailbox struct {
	mu sync.Mutex
	q  chan int
	n  int
}

// newMailbox builds the unbuffered mailbox.
func newMailbox() *mailbox {
	return &mailbox{q: make(chan int)}
}

// post sends on the unbuffered channel while still holding the lock: a
// receiver that needs m.mu to drain deadlocks both sides.
func (m *mailbox) post(v int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.n++
	m.q <- v
}

// take is the mailbox receiver.
func (m *mailbox) take() int {
	return <-m.q
}

// drainAndClose primes the channel, then spawns a consumer that closes it
// out from under the sender: the goroutine neither creates nor sends.
func drainAndClose(intake chan int, sink func(int)) {
	intake <- 0
	go func() {
		for v := range intake {
			sink(v)
		}
		close(intake)
	}()
}

// producer transfers ownership into the spawned sender, which closes after
// its last send: the owner closing its own channel is the protocol.
func producer(vs []int) <-chan int {
	ch := make(chan int)
	go func() {
		defer close(ch)
		for _, v := range vs {
			ch <- v
		}
	}()
	return ch
}

// deferClose sends and then closes exactly once via the defer postlude.
func deferClose(vs []int) {
	ch := make(chan int, len(vs))
	defer close(ch)
	for _, v := range vs {
		ch <- v
	}
}

// shutdownTwice keeps an acknowledged double close to exercise suppression
// accounting.
func shutdownTwice(ch chan int) {
	close(ch)
	//lint:ignore glignlint/chanlife fixture: double close retained to exercise suppression accounting
	close(ch)
}
