// Package clockdet is the clockdet fixture: a package that declares an
// injectable Clock interface (so it has promised deterministic time to its
// tests) with the one legitimate adapter (realClock), clean injected-clock
// consumers, and direct time-package calls that break the promise.
package clockdet

import "time"

// Clock is the package's injectable time source.
type Clock interface {
	Now() time.Time
	NewTimer(d time.Duration) Timer
}

// Timer is a one-shot timer armed by a Clock.
type Timer interface {
	C() <-chan time.Time
	Stop() bool
}

// realClock is the wall-clock adapter: its direct time calls are the
// injection boundary and are exempt.
type realClock struct{}

func (realClock) Now() time.Time                 { return time.Now() }
func (realClock) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

type realTimer struct{ t *time.Timer }

func (t realTimer) C() <-chan time.Time { return t.t.C }
func (t realTimer) Stop() bool          { return t.t.Stop() }

// loop consumes time only through the injected clock: clean.
type loop struct {
	clk Clock
}

func (l *loop) waitInjected(d time.Duration) {
	t := l.clk.NewTimer(d)
	<-t.C()
}

// deadlineDirect reads the wall clock behind the injection's back.
func (l *loop) deadlineDirect(d time.Duration) time.Time {
	return time.Now().Add(d) // want: direct time.Now
}

// sleepDirect blocks on real time; a FakeClock test cannot advance it.
func (l *loop) sleepDirect() {
	time.Sleep(time.Millisecond) // want: direct time.Sleep
}

// pollDirect arms a real timer inside a closure; literals are not exempt.
func (l *loop) pollDirect(stop chan struct{}) func() bool {
	return func() bool {
		select {
		case <-time.After(time.Second): // want: direct time.After
			return true
		case <-stop:
			return false
		}
	}
}

// startupDelay is a justified escape hatch: process start jitter happens
// before any clock is injected.
func startupDelay() {
	//lint:ignore glignlint/clockdet fixture: pre-injection startup jitter is real-time by definition
	time.Sleep(10 * time.Millisecond)
}
