// Command glignlint is the project's static-analysis suite: a stdlib-only
// multi-analyzer driver (go/parser + go/ast + go/types) that machine-checks
// the concurrency and engine invariants the Glign reproduction depends on.
//
// Analyzers (see LINTING.md for the invariant each one encodes):
//
//	atomicmix  — sync/atomic updates mixed with plain loads/stores
//	doclint    — every package carries a package comment
//	kernelmono — relaxation only through the approved CAS helpers; pure kernels
//	nilrecv    — nil-receiver guards on the nil-safe telemetry types
//	parcapture — par.For closures writing captured variables
//
// Usage:
//
//	glignlint [flags] [package-pattern ...]
//
// Patterns default to ./... and follow go-tool conventions ("dir",
// "dir/..."). Findings print as file:line:col: analyzer: message; the exit
// status is 1 when any unsuppressed finding remains, 2 on driver errors.
//
// Flags:
//
//	-json                 emit findings and counts as JSON
//	-analyzers a,b        run a subset of analyzers
//	-show-suppressed      also print suppressed findings (text mode)
//	-write-baseline file  write a per-analyzer count snapshot (lint baseline)
//	-help-analyzers       print the analyzer catalogue and exit
//
// Suppress a finding with a justified directive on the offending line, the
// line above it, or in the enclosing function's doc comment:
//
//	//lint:ignore glignlint/<analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/glign/glign/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonReport is the -json output document.
type jsonReport struct {
	Schema   string         `json:"schema"`
	Findings []lint.Finding `json:"findings"`
	Counts   *lint.Baseline `json:"counts"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("glignlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		asJSON         = fs.Bool("json", false, "emit findings as JSON")
		analyzerList   = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		showSuppressed = fs.Bool("show-suppressed", false, "also print suppressed findings")
		baselinePath   = fs.String("write-baseline", "", "write per-analyzer finding counts to this file")
		helpAnalyzers  = fs.Bool("help-analyzers", false, "print the analyzer catalogue and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *helpAnalyzers {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := lint.Select(*analyzerList)
	if err != nil {
		fmt.Fprintln(stderr, "glignlint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint.Run(analyzers, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "glignlint:", err)
		return 2
	}
	if *baselinePath != "" {
		if err := lint.WriteBaseline(*baselinePath, lint.MakeBaseline(analyzers, findings)); err != nil {
			fmt.Fprintln(stderr, "glignlint:", err)
			return 2
		}
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		rep := jsonReport{
			Schema:   "glign.lint/v1",
			Findings: findings,
			Counts:   lint.MakeBaseline(analyzers, findings),
		}
		if rep.Findings == nil {
			rep.Findings = []lint.Finding{}
		}
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "glignlint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			if f.Suppressed && !*showSuppressed {
				continue
			}
			fmt.Fprintln(stdout, f)
		}
	}
	if lint.ActiveCount(findings) > 0 {
		if !*asJSON {
			fmt.Fprintf(stderr, "glignlint: %d finding(s)\n", lint.ActiveCount(findings))
		}
		return 1
	}
	return 0
}
