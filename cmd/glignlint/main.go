// Command glignlint is the project's static-analysis suite: a stdlib-only
// multi-analyzer driver (go/parser + go/ast + go/types) that machine-checks
// the concurrency and engine invariants the Glign reproduction depends on.
//
// Analyzers (see LINTING.md for the invariant each one encodes):
//
//	atomicmix   — sync/atomic updates mixed with plain loads/stores
//	              (interprocedural: wrapper-aware, whole-slice reads included)
//	cancelpath  — CancelFuncs, timers, and tickers created in serve/core/par
//	              and mains are released on every exit path
//	chanlife    — channel lifecycle in serve/core/par/mains: double close,
//	              send after close, nil/non-owner closes, unbuffered sends
//	              while holding a lock
//	clockdet    — no direct time.Now/Sleep/After/... in packages declaring an
//	              injectable Clock (the adapters implementing it are exempt)
//	doclint     — every package carries a package comment
//	hotalloc    — per-iteration allocations in traversal loops and par closures
//	kernelmono  — relaxation only through the approved CAS helpers; pure kernels
//	              (alias-aware, call-graph purity summaries)
//	lockguard   — inferred mutex-guards-field discipline: unguarded accesses,
//	              writes under RLock, double-locks, exit/panic paths that
//	              leave a lock held
//	lockorder   — module-wide lock-ordering graph across calls and goroutine
//	              spawns; cycles report their full witness chain, plus
//	              RLock→Lock upgrades
//	nilrecv     — nil-receiver guards on the nil-safe telemetry types
//	parcapture  — par.For closures writing captured variables
//	staleignore — //lint:ignore directives matching no finding of the run
//	waitjoin    — goroutines in internal/par, internal/core, internal/serve,
//	              and internal/telemetry join on every exit path
//
// Usage:
//
//	glignlint [flags] [package-pattern ...]
//
// Patterns default to ./... and follow go-tool conventions ("dir",
// "dir/..."). Findings print as file:line:col: analyzer: message; the exit
// status is 1 when any unsuppressed finding remains, 2 on driver errors.
//
// Flags:
//
//	-json                 emit findings and counts as JSON
//	-analyzers a,b        run a subset of analyzers
//	-show-suppressed      also print suppressed findings (text mode)
//	-write-baseline file  write a per-analyzer count snapshot (lint baseline)
//	-help-analyzers       print the analyzer catalogue and exit
//
// Suppress a finding with a justified directive on the offending line, the
// line above it, or in the enclosing function's doc comment:
//
//	//lint:ignore glignlint/<analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/glign/glign/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run parses flags and delegates to the shared lint.CLI driver (cmd/doclint
// rides the same helper, so the two binaries cannot drift on semantics).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("glignlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cli := lint.CLI{Tool: "glignlint", Stdout: stdout, Stderr: stderr}
	fs.BoolVar(&cli.JSON, "json", false, "emit findings as JSON")
	fs.StringVar(&cli.Analyzers, "analyzers", "", "comma-separated analyzer subset (default: all)")
	fs.BoolVar(&cli.ShowSuppressed, "show-suppressed", false, "also print suppressed findings")
	fs.StringVar(&cli.BaselinePath, "write-baseline", "", "write per-analyzer finding counts to this file")
	helpAnalyzers := fs.Bool("help-analyzers", false, "print the analyzer catalogue and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *helpAnalyzers {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	cli.Patterns = fs.Args()
	return cli.Main()
}
