package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"github.com/glign/glign/internal/lint"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// runAnalyzer runs exactly one analyzer over the given fixture patterns
// (relative to this package directory, which is the test working directory).
func runAnalyzer(t *testing.T, name string, patterns ...string) []lint.Finding {
	t.Helper()
	as, err := lint.Select(name)
	if err != nil {
		t.Fatalf("Select(%q): %v", name, err)
	}
	findings, err := lint.Run(as, patterns)
	if err != nil {
		t.Fatalf("Run(%q, %v): %v", name, patterns, err)
	}
	return findings
}

// formatFindings renders findings with file paths relative to testdata/src.
// Finding paths are already module-relative (lint.Run rewrites them), so this
// only strips the fixture-tree prefix to keep the goldens short.
func formatFindings(t *testing.T, findings []lint.Finding) string {
	t.Helper()
	var b strings.Builder
	for _, f := range findings {
		f.File = strings.TrimPrefix(f.File, "cmd/glignlint/testdata/src/")
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// checkGolden compares got against testdata/golden/<name>.txt, rewriting the
// golden when the test runs with -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".txt")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (rerun with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("findings mismatch for %s\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// counts tallies active vs suppressed findings.
func counts(findings []lint.Finding) (active, suppressed int) {
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
		} else {
			active++
		}
	}
	return
}

func TestAtomicMixFixture(t *testing.T) {
	findings := runAnalyzer(t, "atomicmix", "testdata/src/atomicmix")
	got := formatFindings(t, findings)
	checkGolden(t, "atomicmix", got)
	if active, suppressed := counts(findings); active < 2 || suppressed != 1 {
		t.Errorf("want >=2 active and exactly 1 suppressed, got %d/%d:\n%s", active, suppressed, got)
	}
	for _, clean := range []string{"bumpPlain", "headerUses", "record", "casWord"} {
		if strings.Contains(got, clean) {
			t.Errorf("false positive in %s:\n%s", clean, got)
		}
	}
}

func TestParCaptureFixture(t *testing.T) {
	findings := runAnalyzer(t, "parcapture", "testdata/src/parcapture")
	got := formatFindings(t, findings)
	checkGolden(t, "parcapture", got)
	if active, suppressed := counts(findings); active < 2 || suppressed != 1 {
		t.Errorf("want >=2 active and exactly 1 suppressed, got %d/%d:\n%s", active, suppressed, got)
	}
	for _, clean := range []string{"sumAtomic", "fillDisjoint", "reduceClean"} {
		if strings.Contains(got, clean) {
			t.Errorf("false positive in %s:\n%s", clean, got)
		}
	}
}

func TestNilRecvFixture(t *testing.T) {
	findings := runAnalyzer(t, "nilrecv", "testdata/src/nilrecv")
	got := formatFindings(t, findings)
	checkGolden(t, "nilrecv", got)
	if active, suppressed := counts(findings); active < 2 || suppressed != 1 {
		t.Errorf("want >=2 active and exactly 1 suppressed, got %d/%d:\n%s", active, suppressed, got)
	}
	for _, clean := range []string{"Observe", "helper"} {
		if strings.Contains(got, clean) {
			t.Errorf("false positive in %s:\n%s", clean, got)
		}
	}
}

func TestKernelMonoFixture(t *testing.T) {
	findings := runAnalyzer(t, "kernelmono", "testdata/src/kernelmono")
	got := formatFindings(t, findings)
	checkGolden(t, "kernelmono", got)
	if active, suppressed := counts(findings); active < 2 || suppressed != 1 {
		t.Errorf("want >=2 active and exactly 1 suppressed, got %d/%d:\n%s", active, suppressed, got)
	}
	if strings.Contains(got, "good") {
		t.Errorf("false positive on the pure kernel:\n%s", got)
	}
}

func TestHotAllocFixture(t *testing.T) {
	findings := runAnalyzer(t, "hotalloc", "testdata/src/hotalloc")
	got := formatFindings(t, findings)
	checkGolden(t, "hotalloc", got)
	if active, suppressed := counts(findings); active < 3 || suppressed != 1 {
		t.Errorf("want >=3 active and exactly 1 suppressed, got %d/%d:\n%s", active, suppressed, got)
	}
	for _, clean := range []string{"sizes", "lanes", "history"} {
		if strings.Contains(got, "append to "+clean) {
			t.Errorf("false positive on reserved slice %s:\n%s", clean, got)
		}
	}
}

func TestWaitJoinFixture(t *testing.T) {
	findings := runAnalyzer(t, "waitjoin", "testdata/src/waitjoin")
	got := formatFindings(t, findings)
	checkGolden(t, "waitjoin", got)
	if active, suppressed := counts(findings); active < 2 || suppressed != 1 {
		t.Errorf("want >=2 active and exactly 1 suppressed, got %d/%d:\n%s", active, suppressed, got)
	}
	for _, clean := range []string{"fanOut", "deferred", "collect", "in newPool "} {
		if strings.Contains(got, clean) {
			t.Errorf("false positive in %s:\n%s", clean, got)
		}
	}
}

// TestWaitJoinServeFixture pins the analyzer's serve-package scope: the live
// server's two-goroutine lifecycle (wg field Add in the constructor, Wait in
// Close) must pass the pool-structured model with no suppression, and a
// detached launch in the same package must still fire.
func TestWaitJoinServeFixture(t *testing.T) {
	findings := runAnalyzer(t, "waitjoin", "testdata/src/waitjoin/serve")
	got := formatFindings(t, findings)
	checkGolden(t, "waitjoin-serve", got)
	if active, suppressed := counts(findings); active != 1 || suppressed != 0 {
		t.Errorf("want exactly 1 active and 0 suppressed, got %d/%d:\n%s", active, suppressed, got)
	}
	for _, clean := range []string{"newServer", "waitReply"} {
		if strings.Contains(got, clean) {
			t.Errorf("false positive in %s:\n%s", clean, got)
		}
	}
}

// TestLockGuardFixture pins guard inference end to end: the majority-vote
// guard map, the "...Locked" suffix convention, call-site entry-lock
// propagation (drain via flush), constructor freshness, and the defer
// postlude (get) must all stay quiet, while the access moved outside the
// mutex (peek), the double lock, the leaky exits, and the RLock write fire.
func TestLockGuardFixture(t *testing.T) {
	findings := runAnalyzer(t, "lockguard", "testdata/src/lockguard")
	got := formatFindings(t, findings)
	checkGolden(t, "lockguard", got)
	if active, suppressed := counts(findings); active != 5 || suppressed != 1 {
		t.Errorf("want exactly 5 active and 1 suppressed, got %d/%d:\n%s", active, suppressed, got)
	}
	// peek is get with the b.n access moved outside b.mu; the verdict must
	// flip between the two.
	if !strings.Contains(got, "fixture.go:49:") {
		t.Errorf("missing the unguarded read in peek:\n%s", got)
	}
	if strings.Contains(got, "fixture.go:38:") {
		t.Errorf("false positive on the defer-guarded read in get:\n%s", got)
	}
	for _, clean := range []string{"fixture.go:22:", "fixture.go:54:", "fixture.go:68:"} {
		if strings.Contains(got, clean) {
			t.Errorf("false positive at %s (fresh write / Locked suffix / call-site propagation):\n%s", clean, got)
		}
	}
}

func TestClockDetFixture(t *testing.T) {
	findings := runAnalyzer(t, "clockdet", "testdata/src/clockdet")
	got := formatFindings(t, findings)
	checkGolden(t, "clockdet", got)
	if active, suppressed := counts(findings); active != 3 || suppressed != 1 {
		t.Errorf("want exactly 3 active and 1 suppressed, got %d/%d:\n%s", active, suppressed, got)
	}
	// The realClock/realTimer adapters are the injection boundary, and
	// waitInjected consumes time only through the Clock: all exempt.
	for _, clean := range []string{"fixture.go:25:", "fixture.go:26:", "fixture.go:30:", "fixture.go:31:", "fixture.go:39:"} {
		if strings.Contains(got, clean) {
			t.Errorf("false positive at %s (adapter or injected consumer):\n%s", clean, got)
		}
	}
}

func TestCancelPathFixture(t *testing.T) {
	findings := runAnalyzer(t, "cancelpath", "testdata/src/cancelpath")
	got := formatFindings(t, findings)
	checkGolden(t, "cancelpath", got)
	if active, suppressed := counts(findings); active != 3 || suppressed != 1 {
		t.Errorf("want exactly 3 active and 1 suppressed, got %d/%d:\n%s", active, suppressed, got)
	}
	for _, clean := range []string{"deferCancel", "stopTimer", "handTimer"} {
		if strings.Contains(got, clean) {
			t.Errorf("false positive in %s:\n%s", clean, got)
		}
	}
}

// TestStaleIgnoreFixture runs waitjoin together with staleignore: the
// directive matching a live finding stays quiet, the rotted directive is
// reported, and a stale report can itself be suppressed.
func TestStaleIgnoreFixture(t *testing.T) {
	findings := runAnalyzer(t, "waitjoin,staleignore", "testdata/src/staleignore")
	got := formatFindings(t, findings)
	checkGolden(t, "staleignore", got)
	if active, suppressed := counts(findings); active != 1 || suppressed != 2 {
		t.Errorf("want exactly 1 active and 2 suppressed, got %d/%d:\n%s", active, suppressed, got)
	}
	if !strings.Contains(got, "fixture.go:20:") {
		t.Errorf("missing the stale-directive report in joined:\n%s", got)
	}
	if strings.Contains(got, "fixture.go:13:") {
		t.Errorf("false positive on the used directive in detach:\n%s", got)
	}
}

// TestLockOrderFixture pins the cross-goroutine deadlock tier: the
// accounts/audit inversion (one edge inside a spawned goroutine) reports the
// full witness chain, the RLock→Lock upgrade fires, the consistent
// call-site order in withBoth/record stays quiet, and the second inversion
// is suppressed at its anchor.
func TestLockOrderFixture(t *testing.T) {
	findings := runAnalyzer(t, "lockorder", "testdata/src/lockorder")
	got := formatFindings(t, findings)
	checkGolden(t, "lockorder", got)
	if active, suppressed := counts(findings); active != 2 || suppressed != 1 {
		t.Errorf("want exactly 2 active and 1 suppressed, got %d/%d:\n%s", active, suppressed, got)
	}
	if !strings.Contains(got, "accounts.mu → audit.mu → accounts.mu") {
		t.Errorf("missing the witness chain for the accounts/audit cycle:\n%s", got)
	}
	if !strings.Contains(got, "goroutine in reconcile") {
		t.Errorf("cycle witness does not attribute the inverted edge to the spawned goroutine:\n%s", got)
	}
	if !strings.Contains(got, "RLock→Lock upgrade") {
		t.Errorf("missing the RWMutex upgrade self-deadlock:\n%s", got)
	}
	for _, clean := range []string{"withBoth", "in record "} {
		if strings.Contains(got, clean) {
			t.Errorf("false positive on the consistent-order path %s:\n%s", clean, got)
		}
	}
}

// TestChanLifeFixture pins the channel-lifecycle tier: double close, send
// after close (direct and via the shutdown helper's summary), the
// possibly-nil close, the non-owner close in the spawned consumer, and the
// lock-channel hybrid deadlock all fire; the producer hand-off and the defer
// postlude close stay quiet; one double close is suppressed.
func TestChanLifeFixture(t *testing.T) {
	findings := runAnalyzer(t, "chanlife", "testdata/src/chanlife")
	got := formatFindings(t, findings)
	checkGolden(t, "chanlife", got)
	if active, suppressed := counts(findings); active != 6 || suppressed != 1 {
		t.Errorf("want exactly 6 active and 1 suppressed, got %d/%d:\n%s", active, suppressed, got)
	}
	for _, want := range []string{"double close", "send on out after close", "send on ch after close",
		"possibly-nil", "closes intake without owning it", "while holding m.mu"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing finding %q:\n%s", want, got)
		}
	}
	for _, clean := range []string{"fixture.go:91:", "fixture.go:93:", "fixture.go:102:", "fixture.go:104:"} {
		if strings.Contains(got, clean) {
			t.Errorf("false positive at %s (producer hand-off / defer postlude):\n%s", clean, got)
		}
	}
}

// TestStaleIgnoreSubset pins the subset semantics: a directive naming only
// lockorder is skipped when lockorder is deselected (a subset run cannot
// judge it) and reported stale only by a run that selects lockorder.
func TestStaleIgnoreSubset(t *testing.T) {
	findings := runAnalyzer(t, "waitjoin,staleignore", "testdata/src/staleignore")
	for _, f := range findings {
		if strings.Contains(f.Message, "lockorder") {
			t.Errorf("directive naming unselected lockorder reported stale: %s", f.String())
		}
	}
	findings = runAnalyzer(t, "lockorder,staleignore", "testdata/src/staleignore")
	active, suppressed := counts(findings)
	if active != 1 || suppressed != 0 {
		t.Fatalf("lockorder,staleignore: want exactly 1 active and 0 suppressed, got %d/%d:\n%s",
			active, suppressed, formatFindings(t, findings))
	}
	if !strings.Contains(findings[0].Message, "glignlint/lockorder") {
		t.Errorf("the stale report should name the lockorder directive: %s", findings[0].String())
	}
}

func TestDocLintFixture(t *testing.T) {
	findings := runAnalyzer(t, "doclint", "testdata/src/doclint/...")
	got := formatFindings(t, findings)
	checkGolden(t, "doclint", got)
	if active, suppressed := counts(findings); active != 1 || suppressed != 1 {
		t.Errorf("want exactly 1 active and 1 suppressed, got %d/%d:\n%s", active, suppressed, got)
	}
	if strings.Contains(got, "doclint/documented/") {
		t.Errorf("false positive on the documented package:\n%s", got)
	}
}

// TestCLI exercises the command wrapper: exit codes, -json output shape, and
// the real repository staying lint-clean.
func TestCLI(t *testing.T) {
	var out, errb bytes.Buffer

	// A fixture with active findings exits 1 and emits schema'd JSON.
	if code := run([]string{"-json", "testdata/src/atomicmix"}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	var rep struct {
		Schema   string         `json:"schema"`
		Findings []lint.Finding `json:"findings"`
		Counts   *lint.Baseline `json:"counts"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if rep.Schema != "glign.lint/v1" {
		t.Errorf("schema = %q, want glign.lint/v1", rep.Schema)
	}
	if len(rep.Findings) == 0 {
		t.Error("JSON report has no findings for the atomicmix fixture")
	}

	// A clean fixture exits 0.
	out.Reset()
	errb.Reset()
	if code := run([]string{"testdata/src/doclint/documented"}, &out, &errb); code != 0 {
		t.Fatalf("clean fixture exit = %d, want 0; stderr: %s", code, errb.String())
	}

	// An unknown analyzer is a usage error (exit 2).
	if code := run([]string{"-analyzers", "nosuch", "testdata/src/atomicmix"}, &out, &errb); code != 2 {
		t.Fatalf("unknown analyzer exit = %d, want 2", code)
	}

	// A pattern that loads nothing is a driver error (exit 2), distinct from
	// the findings exit (1) above.
	out.Reset()
	errb.Reset()
	if code := run([]string{"testdata/src/nosuchfixture"}, &out, &errb); code != 2 {
		t.Fatalf("load error exit = %d, want 2; stderr: %s", code, errb.String())
	}
}

// TestHelpAnalyzersSorted pins the catalogue output: deterministically
// sorted, one analyzer per line, with the cross-goroutine tier present —
// verify.sh's fixture-coverage loop parses this output.
func TestHelpAnalyzersSorted(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-help-analyzers"}, &out, &errb); code != 0 {
		t.Fatalf("-help-analyzers exit = %d, want 0; stderr: %s", code, errb.String())
	}
	var names []string
	for _, line := range strings.Split(strings.TrimRight(out.String(), "\n"), "\n") {
		names = append(names, strings.Fields(line)[0])
	}
	if len(names) != 13 {
		t.Fatalf("catalogue lists %d analyzers, want 13:\n%s", len(names), out.String())
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("catalogue is not sorted: %v", names)
	}
	for _, want := range []string{"chanlife", "lockorder"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("catalogue is missing %q: %v", want, names)
		}
	}
}
