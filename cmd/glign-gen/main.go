// Command glign-gen synthesizes the deterministic stand-in datasets used by
// this reproduction (see DESIGN.md §3) and writes them to disk, or prints
// their structural statistics.
//
// Examples:
//
//	glign-gen -dataset TW -size medium -out tw.bin
//	glign-gen -dataset RD-CA -size small -stats
//	glign-gen -all -size tiny -stats          # Table 7 analogue
package main

import (
	"flag"
	"fmt"
	"os"

	glign "github.com/glign/glign"
	"github.com/glign/glign/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "glign-gen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dataset  = flag.String("dataset", "", "dataset name (LJ, WP, UK2, TW, FR, RD-CA, RD-US)")
		all      = flag.Bool("all", false, "process every dataset")
		size     = flag.String("size", "small", "size class (tiny, small, medium)")
		out      = flag.String("out", "", "output path (.bin for binary CSR, anything else for text)")
		printSts = flag.Bool("stats", false, "print structural statistics (Table 7 analogue)")
	)
	flag.Parse()

	var names []string
	if *all {
		names = glign.Datasets()
	} else if *dataset != "" {
		names = []string{*dataset}
	} else {
		return fmt.Errorf("one of -dataset or -all is required")
	}
	if *out != "" && len(names) != 1 {
		return fmt.Errorf("-out requires a single -dataset")
	}

	tb := &stats.Table{
		Title:  fmt.Sprintf("Synthetic datasets (%s) — cf. paper Table 7", *size),
		Header: []string{"graph", "directed", "|V|", "|E|", "avg deg", "max deg", "approx dia"},
	}
	for _, name := range names {
		g, err := glign.Generate(name, *size)
		if err != nil {
			return err
		}
		if *out != "" {
			if err := glign.SaveGraph(*out, g); err != nil {
				return err
			}
			fmt.Printf("wrote %s to %s\n", g, *out)
		}
		if *printSts {
			s := glign.ComputeStats(g)
			tb.AddRow(s.Name, fmt.Sprint(s.Directed), fmt.Sprint(s.Vertices),
				fmt.Sprint(s.Edges), fmt.Sprintf("%.2f", s.AvgDegree),
				fmt.Sprint(s.MaxDegree), fmt.Sprint(s.ApproxDia))
		}
	}
	if *printSts {
		fmt.Print(tb.String())
	}
	return nil
}
