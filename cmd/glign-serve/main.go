// Command glign-serve runs the live query-serving loop over HTTP: it loads
// or generates a graph, starts a glign.Server (bounded admission, windowed
// batching, result cache with epoch invalidation, in-flight dedup, tiered
// load-shedding, engine execution on the shared pool), and answers JSON
// query submissions until interrupted, then drains in-flight batches and
// exits. SERVING.md documents the serving contract end to end, including a
// worked curl session against this command.
//
// Examples:
//
//	# serve full-Glign batches on a synthetic LiveJournal stand-in
//	glign-serve -dataset LJ -size small -addr :8080
//
//	# submit a query and read the result (repeat it to hit the cache)
//	curl -s localhost:8080/query -d '{"kernel":"SSSP","source":42,"targets":[0,7]}'
//
//	# a high-priority query that may shed queued low-priority ones
//	curl -s localhost:8080/query -d '{"kernel":"BFS","source":7,"priority":"high"}'
//
//	# invalidate cached results after a graph data change
//	curl -s -X POST localhost:8080/epoch
//
//	# expvar + pprof observability endpoint alongside the query port
//	glign-serve -dataset LJ -size small -addr :8080 -listen :6060
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -listen endpoint
	"os"
	"os/signal"
	"syscall"
	"time"

	glign "github.com/glign/glign"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/queries"
	"github.com/glign/glign/internal/serve"
	"github.com/glign/glign/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "glign-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		graphPath = flag.String("graph", "", "graph file to load (.bin or edge list); exclusive with -dataset")
		directed  = flag.Bool("directed", true, "treat -graph edge list as directed")
		dataset   = flag.String("dataset", "", "synthetic dataset to generate (LJ, WP, UK2, TW, FR, RD-CA, RD-US)")
		size      = flag.String("size", "small", "synthetic size class (tiny, small, medium)")
		method    = flag.String("method", glign.MethodGlign, "evaluation method")
		batch     = flag.Int("batch", 64, "batch size cap |B|")
		window    = flag.Duration("window", 5*time.Millisecond, "batching window: max wait before flushing a partial batch")
		queueCap  = flag.Int("queue", 1024, "admission queue capacity (submits beyond it shed lower tiers or are rejected)")
		cacheCap  = flag.Int("cache", 1024, "result cache capacity in entries (0 disables caching)")
		admission = flag.String("admission", "", "admission ordering: fcfs, affinity, or empty to follow the method")
		workers   = flag.Int("workers", 0, "worker goroutines per batch (0 = GOMAXPROCS)")
		deadline  = flag.Duration("deadline", 0, "default per-query deadline (0 = none; requests can override with timeout_ms)")
		addr      = flag.String("addr", ":8080", "query endpoint address (POST /query, GET|POST /epoch, GET /healthz, GET /stats)")
		listen    = flag.String("listen", "", "serve live telemetry (expvar at /debug/vars) and pprof (/debug/pprof) on this address, e.g. :6060")
	)
	flag.Parse()

	tel := glign.NewTelemetry()
	if *listen != "" {
		telemetry.Publish("glign", tel)
		go func() {
			if err := http.ListenAndServe(*listen, nil); err != nil {
				fmt.Fprintln(os.Stderr, "glign-serve: -listen:", err)
			}
		}()
		fmt.Printf("serving telemetry on http://%s/debug/vars (pprof at /debug/pprof)\n", *listen)
	}

	g, err := loadGraph(*graphPath, *directed, *dataset, *size)
	if err != nil {
		return err
	}
	fmt.Println(g)

	// The flag's 0 means "no caching"; the library's 0 means "default
	// capacity" with negative disabling, so translate here at the edge.
	cacheCapacity := *cacheCap
	if cacheCapacity == 0 {
		cacheCapacity = -1
	}
	srv, err := glign.Serve(g, glign.ServeConfig{
		Method:          *method,
		BatchSize:       *batch,
		Window:          *window,
		QueueCapacity:   *queueCap,
		CacheCapacity:   cacheCapacity,
		AdmissionPolicy: *admission,
		Workers:         *workers,
		Telemetry:       tel,
	})
	if err != nil {
		return err
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/query", queryHandler(g, srv, *deadline))
	mux.HandleFunc("/epoch", epochHandler(srv))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintf(w, "ok %s\n", srv.Method())
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(srv.Stats())
	})
	httpSrv := &http.Server{Addr: *addr, Handler: mux}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("%s method serving queries on http://%s/query (batch %d, window %v, queue %d, cache %d, admission %q)\n",
		*method, *addr, *batch, *window, *queueCap, *cacheCap, *admission)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		srv.Close()
		return err
	case sig := <-sigc:
		fmt.Printf("\n%v: draining in-flight batches...\n", sig)
	}

	// Stop accepting HTTP first so no new submits race the drain, then
	// drain the admission queue and join the serving goroutines.
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "glign-serve: http shutdown:", err)
	}
	if err := srv.Close(); err != nil {
		return err
	}
	st := srv.Stats()
	fmt.Printf("served %d of %d admitted queries in %d batches (%d window / %d size / %d drain flushes; %d rejected full, %d deadline misses)\n",
		st.Completed, st.Admitted, st.Batches, st.WindowFlushes, st.SizeFlushes, st.DrainFlushes,
		st.RejectedFull, st.DeadlineMisses)
	fmt.Printf("traffic shaping: %d cache hits / %d misses (%d invalidated, %d evicted), %d coalesced, %d reordered, %d shed, epoch %d\n",
		st.CacheHits, st.CacheMisses, st.CacheInvalidations, st.CacheEvictions,
		st.DedupCoalesced, st.AdmissionReorders, st.Shed, st.Epoch)
	return nil
}

// queryRequest is the POST /query body.
type queryRequest struct {
	Kernel    string           `json:"kernel"`
	Source    uint32           `json:"source"`
	TimeoutMS int64            `json:"timeout_ms,omitempty"`
	Priority  string           `json:"priority,omitempty"` // low | normal | high (default normal)
	Targets   []graph.VertexID `json:"targets,omitempty"`
}

// queryResponse is the reply: the reach count and the data epoch the result
// was computed at always, plus the value at each requested target (null when
// the target was not reached).
type queryResponse struct {
	Kernel  string              `json:"kernel"`
	Source  graph.VertexID      `json:"source"`
	Reached int                 `json:"reached"`
	Epoch   int64               `json:"epoch"`
	Values  map[string]*float64 `json:"values,omitempty"`
}

func queryHandler(g *glign.Graph, srv *glign.Server, defaultDeadline time.Duration) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req queryRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		k, err := queries.ByName(req.Kernel)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if int(req.Source) >= g.NumVertices() {
			http.Error(w, fmt.Sprintf("source %d out of range (n=%d)", req.Source, g.NumVertices()), http.StatusBadRequest)
			return
		}
		tier, err := serve.TierByName(req.Priority)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		timeout := defaultDeadline
		if req.TimeoutMS > 0 {
			timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		}
		q := glign.Query{Kernel: k, Source: graph.VertexID(req.Source)}
		ticket, err := srv.SubmitWith(r.Context(), q, glign.SubmitOptions{Timeout: timeout, Tier: tier})
		if err != nil {
			http.Error(w, err.Error(), rejectStatus(err))
			return
		}
		vals, err := ticket.Wait(r.Context())
		if err != nil {
			http.Error(w, err.Error(), rejectStatus(err))
			return
		}
		resp := queryResponse{Kernel: req.Kernel, Source: q.Source, Reached: reached(k, vals), Epoch: ticket.ResultEpoch()}
		if len(req.Targets) > 0 {
			resp.Values = make(map[string]*float64, len(req.Targets))
			for _, tgt := range req.Targets {
				key := fmt.Sprintf("%d", tgt)
				if int(tgt) >= len(vals) || math.IsInf(vals[tgt], 0) || vals[tgt] == k.Identity() {
					resp.Values[key] = nil
					continue
				}
				v := vals[tgt]
				resp.Values[key] = &v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	}
}

// epochHandler reads (GET) or bumps (POST) the server's data epoch. Bumping
// is the cache-invalidation hook for external graph data changes: every
// result cached at an older epoch stops being served immediately.
func epochHandler(srv *glign.Server) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var epoch int64
		switch r.Method {
		case http.MethodGet:
			epoch = srv.Epoch()
		case http.MethodPost:
			epoch = srv.BumpEpoch()
		default:
			http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]int64{"epoch": epoch})
	}
}

// rejectStatus maps the server's typed errors onto HTTP status codes.
func rejectStatus(err error) int {
	switch {
	case errors.Is(err, glign.ErrQueueFull), errors.Is(err, glign.ErrQueryShed):
		return http.StatusTooManyRequests
	case errors.Is(err, glign.ErrServerClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, glign.ErrQueryDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusRequestTimeout
	default:
		return http.StatusInternalServerError
	}
}

// reached counts the vertices the query converged on (value moved off the
// kernel's identity element).
func reached(k queries.Kernel, vals []queries.Value) int {
	id := k.Identity()
	count := 0
	for _, v := range vals {
		if v != id {
			count++
		}
	}
	return count
}

func loadGraph(path string, directed bool, dataset, size string) (*glign.Graph, error) {
	switch {
	case path != "" && dataset != "":
		return nil, fmt.Errorf("use either -graph or -dataset, not both")
	case path != "":
		return glign.LoadGraph(path, directed)
	case dataset != "":
		return glign.Generate(dataset, size)
	default:
		return nil, fmt.Errorf("one of -graph or -dataset is required")
	}
}
