// Command doclint checks that every Go package in the repository carries a
// package comment (the doc.go convention), so `go doc` always gives an
// orientation paragraph.
//
// It is a thin compatibility wrapper over the glignlint driver's doclint
// analyzer (see internal/lint and cmd/glignlint): each argument is walked
// recursively, test files are excluded, and //lint:ignore glignlint/doclint
// suppressions apply. Prefer `glignlint ./...`, which runs this check
// alongside the concurrency analyzers.
//
// Usage:
//
//	doclint [dir ...]
package main

import (
	"os"

	"github.com/glign/glign/internal/lint"
)

func main() {
	cli := lint.CLI{
		Tool:      "doclint",
		Analyzers: "doclint",
		Patterns:  lint.RecursivePatterns(os.Args[1:]),
		Stdout:    os.Stdout,
		Stderr:    os.Stderr,
	}
	os.Exit(cli.Main())
}
