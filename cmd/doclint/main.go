// Command doclint checks that every Go package in the repository carries a
// package comment (the doc.go convention), so `go doc` always gives an
// orientation paragraph. It walks the given roots (default: the current
// module), parses package clauses and their doc comments with go/parser,
// and exits non-zero listing every package that has none.
//
// Usage:
//
//	doclint [dir ...]
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var offenders []string
	for _, root := range roots {
		off, err := lint(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(2)
		}
		offenders = append(offenders, off...)
	}
	sort.Strings(offenders)
	if len(offenders) > 0 {
		for _, p := range offenders {
			fmt.Printf("%s: package has no package comment\n", p)
		}
		os.Exit(1)
	}
}

// lint walks root and returns the directories whose package (test files and
// generated files excluded) lacks a doc comment on every file.
func lint(root string) ([]string, error) {
	// pkgs maps directory -> package name -> has a doc comment somewhere.
	type pkg struct {
		name    string
		hasDoc  bool
		nonTest bool
	}
	pkgs := map[string]*pkg{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
		dir := filepath.Dir(path)
		p := pkgs[dir]
		if p == nil {
			p = &pkg{name: f.Name.Name}
			pkgs[dir] = p
		}
		p.nonTest = true
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			p.hasDoc = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var offenders []string
	for dir, p := range pkgs {
		if p.nonTest && !p.hasDoc {
			offenders = append(offenders, fmt.Sprintf("%s (package %s)", dir, p.name))
		}
	}
	return offenders, nil
}
