// Command doclint checks that every Go package in the repository carries a
// package comment (the doc.go convention), so `go doc` always gives an
// orientation paragraph.
//
// It is a thin compatibility wrapper over the glignlint driver's doclint
// analyzer (see internal/lint and cmd/glignlint): each argument is walked
// recursively, test files are excluded, and //lint:ignore glignlint/doclint
// suppressions apply. Prefer `glignlint ./...`, which runs this check
// alongside the concurrency analyzers.
//
// Usage:
//
//	doclint [dir ...]
package main

import (
	"fmt"
	"os"
	"strings"

	"github.com/glign/glign/internal/lint"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	patterns := make([]string, 0, len(roots))
	for _, r := range roots {
		if !strings.HasSuffix(r, "/...") {
			r += "/..."
		}
		patterns = append(patterns, r)
	}
	analyzers, err := lint.Select("doclint")
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		os.Exit(2)
	}
	findings, err := lint.Run(analyzers, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		os.Exit(2)
	}
	active := 0
	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		active++
		fmt.Println(f.String())
	}
	if active > 0 {
		os.Exit(1)
	}
}
