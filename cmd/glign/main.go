// Command glign evaluates a buffer of concurrent graph queries on a graph,
// with any of the evaluation methods of the paper (Glign variants and
// baselines), and prints timing and result summaries.
//
// Examples:
//
//	# 64 SSSP queries on a synthetic LiveJournal stand-in, full Glign
//	glign -dataset LJ -size small -kernel SSSP -n 64
//
//	# compare methods on the same buffer
//	glign -dataset TW -size small -kernel BFS -n 128 -method Ligra-C
//	glign -dataset TW -size small -kernel BFS -n 128 -method Glign
//
//	# explicit sources on a graph loaded from disk
//	glign -graph web.txt -directed -kernel SSWP -sources 3,17,99
//
//	# observe the run: expvar + pprof endpoint and a JSON metrics snapshot
//	glign -dataset LJ -size small -kernel SSSP -n 64 -listen :6060 -metrics-out metrics.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -listen endpoint
	"os"
	"strconv"
	"strings"

	glign "github.com/glign/glign"
	"github.com/glign/glign/internal/align"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/telemetry"
	"github.com/glign/glign/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "glign:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		graphPath = flag.String("graph", "", "graph file to load (.bin or edge list); exclusive with -dataset")
		directed  = flag.Bool("directed", true, "treat -graph edge list as directed")
		dataset   = flag.String("dataset", "", "synthetic dataset to generate (LJ, WP, UK2, TW, FR, RD-CA, RD-US)")
		size      = flag.String("size", "small", "synthetic size class (tiny, small, medium)")
		kernel    = flag.String("kernel", "SSSP", "query kernel (BFS, SSSP, SSWP, SSNP, Viterbi, PageRank, LabelProp, KHOP or KHOP<k>) or Heter")
		n         = flag.Int("n", 64, "number of queries (sources sampled with the paper's hop-bin strategy)")
		sources   = flag.String("sources", "", "comma-separated explicit source vertices (overrides -n)")
		queryFile = flag.String("queries", "", "load the query buffer from a file (overrides -kernel/-n/-sources)")
		saveQuery = flag.String("save-queries", "", "save the evaluated query buffer to a file for replay")
		method    = flag.String("method", glign.MethodGlign, "evaluation method: "+strings.Join(glign.Methods(), ", "))
		batch     = flag.Int("batch", 64, "batch size |B|")
		workers   = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		seed      = flag.Int64("seed", 1, "workload sampling seed")
		verbose   = flag.Bool("v", false, "print per-query summaries")
		verify    = flag.Int("verify", 0, "verify this many queries against an independent reference (0 = none, -1 = all)")
		listen    = flag.String("listen", "", "serve live telemetry (expvar at /debug/vars) and pprof (/debug/pprof) on this address during evaluation, e.g. :6060")
		hold      = flag.Bool("hold", false, "with -listen: keep serving after evaluation until interrupted")
		metricOut = flag.String("metrics-out", "", "write the telemetry snapshot as JSON to this file")
	)
	flag.Parse()

	var tel *glign.Telemetry
	if *listen != "" || *metricOut != "" {
		tel = glign.NewTelemetry()
		telemetry.Publish("glign", tel)
	}
	if *listen != "" {
		go func() {
			if err := http.ListenAndServe(*listen, nil); err != nil {
				fmt.Fprintln(os.Stderr, "glign: -listen:", err)
			}
		}()
		fmt.Printf("serving telemetry on http://%s/debug/vars (pprof at /debug/pprof)\n", *listen)
	}

	g, err := loadGraph(*graphPath, *directed, *dataset, *size)
	if err != nil {
		return err
	}
	fmt.Println(g)

	var buffer []glign.Query
	if *queryFile != "" {
		buffer, err = workload.LoadBuffer(*queryFile, g.NumVertices())
	} else {
		buffer, err = buildBuffer(g, *kernel, *n, *sources, *seed, *workers)
	}
	if err != nil {
		return err
	}
	if *saveQuery != "" {
		if err := workload.SaveBuffer(*saveQuery, buffer); err != nil {
			return err
		}
	}

	rt, err := glign.NewRuntime(g,
		glign.WithMethod(*method),
		glign.WithBatchSize(*batch),
		glign.WithWorkers(*workers),
		glign.WithTelemetry(tel))
	if err != nil {
		return err
	}
	rep, err := rt.Run(buffer)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d queries in %d batches, %d global iterations, %.3fs\n",
		*method, rep.NumQueries(), len(rep.Batches()), rep.TotalIterations(),
		rep.DurationSeconds())
	if *verify != 0 {
		n := *verify
		if n < 0 {
			n = len(buffer)
		}
		if err := rep.Verify(n); err != nil {
			return err
		}
		fmt.Printf("verified %d queries against the serial reference\n", min(n, len(buffer)))
	}
	if *verbose {
		for i, q := range buffer {
			fmt.Printf("  %-14s reached %d vertices\n", q.String(), rep.Reached(i))
		}
	}
	if tel != nil {
		c := tel.Counters.Snapshot()
		fmt.Printf("telemetry: %d iterations (%d pull), %d edges processed, %d lane relaxations, %d value writes, %d delayed starts\n",
			c.Iterations, c.PullIterations, c.EdgesProcessed, c.LaneRelaxations, c.ValueWrites, c.DelayedQueries)
	}
	if *metricOut != "" {
		if err := writeMetrics(*metricOut, tel); err != nil {
			return err
		}
		fmt.Printf("telemetry snapshot written to %s\n", *metricOut)
	}
	if *listen != "" && *hold {
		fmt.Printf("evaluation done; still serving on %s (interrupt to exit)\n", *listen)
		select {}
	}
	return nil
}

// writeMetrics serializes the collector snapshot as indented JSON.
func writeMetrics(path string, tel *glign.Telemetry) error {
	raw, err := json.MarshalIndent(tel.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

func loadGraph(path string, directed bool, dataset, size string) (*glign.Graph, error) {
	switch {
	case path != "" && dataset != "":
		return nil, fmt.Errorf("use either -graph or -dataset, not both")
	case path != "":
		return glign.LoadGraph(path, directed)
	case dataset != "":
		return glign.Generate(dataset, size)
	default:
		return nil, fmt.Errorf("one of -graph or -dataset is required")
	}
}

func buildBuffer(g *glign.Graph, kernel string, n int, sourcesCSV string, seed int64, workers int) ([]glign.Query, error) {
	var srcs []graph.VertexID
	if sourcesCSV != "" {
		for _, f := range strings.Split(sourcesCSV, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 32)
			if err != nil {
				return nil, fmt.Errorf("bad source %q: %v", f, err)
			}
			if int(v) >= g.NumVertices() {
				return nil, fmt.Errorf("source %d out of range (n=%d)", v, g.NumVertices())
			}
			srcs = append(srcs, graph.VertexID(v))
		}
	} else {
		prof := align.NewProfile(g, align.DefaultHubCount, workers)
		srcs = workload.Sources(g, prof, n, seed)
	}
	return workload.BufferFor(kernel, srcs, seed)
}
