// Command glign-bench regenerates the tables and figures of the paper's
// evaluation section on the synthetic stand-in graphs. Each experiment id
// maps to one paper artifact (see DESIGN.md's experiment index).
//
// Examples:
//
//	glign-bench -list
//	glign-bench -exp fig11                 # overall speedups
//	glign-bench -exp all -short            # everything, CI scale
//	glign-bench -exp tab9 -graphs LJ,TW -workloads BFS,SSSP -size small
//	glign-bench -exp fig11 -short -metrics-out m.json   # per-iteration telemetry
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/glign/glign/internal/bench"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/perf"
	"github.com/glign/glign/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "glign-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp       = flag.String("exp", "", "experiment id (fig1, fig7, tab8, ... or 'all')")
		list      = flag.Bool("list", false, "list experiments")
		short     = flag.Bool("short", false, "CI-scale configuration")
		size      = flag.String("size", "", "override size class (tiny, small, medium)")
		buffer    = flag.Int("buffer", 0, "override buffer size")
		batch     = flag.Int("batch", 0, "override batch size")
		workers   = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		seed      = flag.Int64("seed", 0, "override workload seed")
		llcBytes  = flag.Int64("llc", 0, "override simulated LLC size in bytes")
		graphsCSV = flag.String("graphs", "", "restrict to datasets (comma-separated)")
		wlCSV     = flag.String("workloads", "", "restrict to workloads (comma-separated)")
		csvOut    = flag.Bool("csv", false, "emit CSV instead of aligned text tables")
		metricOut = flag.String("metrics-out", "", "write a telemetry snapshot (per-iteration frontier sizes, edges relaxed, batch compositions) as JSON to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-6s  %-18s  %s\n", e.ID, e.Paper, e.Title)
		}
		return nil
	}
	if *exp == "" {
		return fmt.Errorf("-exp or -list is required")
	}

	cfg := bench.DefaultConfig(*short)
	cfg.Workers = *workers
	if *size != "" {
		switch *size {
		case "tiny":
			cfg.Size = graph.Tiny
		case "small":
			cfg.Size = graph.Small
		case "medium":
			cfg.Size = graph.Medium
		default:
			return fmt.Errorf("unknown size %q", *size)
		}
		cfg.LLC = bench.LLCFor(cfg.Size)
	}
	if *llcBytes > 0 {
		cfg.LLC.SizeBytes = *llcBytes
		if err := cfg.LLC.Validate(); err != nil {
			return err
		}
	}
	if *buffer > 0 {
		cfg.BufferSize = *buffer
	}
	if *batch > 0 {
		cfg.BatchSize = *batch
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *graphsCSV != "" {
		cfg.Graphs = nil
		for _, s := range strings.Split(*graphsCSV, ",") {
			cfg.Graphs = append(cfg.Graphs, graph.Dataset(strings.TrimSpace(s)))
		}
	}
	if *wlCSV != "" {
		cfg.Workloads = nil
		for _, s := range strings.Split(*wlCSV, ",") {
			cfg.Workloads = append(cfg.Workloads, strings.TrimSpace(s))
		}
	}
	cfg.CSV = *csvOut
	if *metricOut != "" {
		cfg.Telemetry = telemetry.NewCollector()
	}

	var exps []bench.Experiment
	if *exp == "all" {
		exps = bench.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := bench.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			exps = append(exps, e)
		}
	}
	for _, e := range exps {
		fmt.Printf("### %s (%s): %s\n", e.ID, e.Paper, e.Title)
		start := time.Now()
		if err := e.Run(cfg, os.Stdout); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Printf("[%s completed in %.1fs]\n\n", e.ID, time.Since(start).Seconds())
	}
	if *metricOut != "" {
		// Same temp-file+rename path the perf harness uses for its reports: a
		// run killed mid-write never leaves a truncated artifact where CI (or
		// a dashboard tailing the file) would read garbage.
		if err := perf.WriteJSONAtomic(*metricOut, cfg.Telemetry.Snapshot()); err != nil {
			return err
		}
		c := cfg.Telemetry.Counters.Snapshot()
		fmt.Printf("telemetry: %d method runs, %d batches, %d iterations -> %s\n",
			c.Runs, c.Batches, c.Iterations, *metricOut)
	}
	return nil
}
