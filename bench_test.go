package glign

// Benchmarks regenerating every table and figure of the paper's evaluation
// (§4) at benchmark-friendly scale, one testing.B target per artifact, plus
// engine microbenchmarks. The full-size harness (with printed tables) is
// cmd/glign-bench; the experiment-id mapping is DESIGN.md's index.
//
//	go test -bench=. -benchmem            # everything, small scale
//	go test -bench=BenchmarkFig11 -v      # one artifact

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"github.com/glign/glign/internal/align"
	"github.com/glign/glign/internal/bench"
	"github.com/glign/glign/internal/cachesim"
	"github.com/glign/glign/internal/core"
	"github.com/glign/glign/internal/engine"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/par"
	"github.com/glign/glign/internal/queries"
	"github.com/glign/glign/internal/telemetry"
	"github.com/glign/glign/internal/workload"
)

// benchCfg is the scale used by the per-artifact benchmarks: big enough for
// the alignment effects to be visible, small enough for -bench=. to finish
// in minutes.
func benchCfg() bench.Config {
	cfg := bench.DefaultConfig(true)
	cfg.BufferSize = 64
	cfg.BatchSize = 16
	cfg.Graphs = []graph.Dataset{graph.LJ, graph.TW}
	cfg.Workloads = []string{"BFS", "SSSP"}
	return cfg
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper artifact.

func BenchmarkFig1LLCMisses(b *testing.B)      { benchExperiment(b, "fig1") }
func BenchmarkFig7FrontierSizes(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkTable8LigraS(b *testing.B)       { benchExperiment(b, "tab8") }
func BenchmarkFig11Overall(b *testing.B)       { benchExperiment(b, "fig11") }
func BenchmarkTable9LLC(b *testing.B)          { benchExperiment(b, "tab9") }
func BenchmarkFig12Intra(b *testing.B)         { benchExperiment(b, "fig12") }
func BenchmarkTable10IntraLLC(b *testing.B)    { benchExperiment(b, "tab10") }
func BenchmarkTable11Footprint(b *testing.B)   { benchExperiment(b, "tab11") }
func BenchmarkFig13Inter(b *testing.B)         { benchExperiment(b, "fig13") }
func BenchmarkFig14Affinity(b *testing.B)      { benchExperiment(b, "fig14") }
func BenchmarkTable12InterLLC(b *testing.B)    { benchExperiment(b, "tab12") }
func BenchmarkTable13GroundTruth(b *testing.B) { benchExperiment(b, "tab13") }
func BenchmarkTable14Profiling(b *testing.B)   { benchExperiment(b, "tab14") }
func BenchmarkFig15Batch(b *testing.B)         { benchExperiment(b, "fig15") }
func BenchmarkFig16BatchSize(b *testing.B)     { benchExperiment(b, "fig16") }
func BenchmarkTable15Road(b *testing.B)        { benchExperiment(b, "tab15") }
func BenchmarkTable16IBFS(b *testing.B)        { benchExperiment(b, "tab16") }

// Engine microbenchmarks: one single-source query and one 16-query batch
// per engine, reporting relaxations/sec.

func benchGraph() (*graph.Graph, []queries.Query) {
	g := graph.MustGenerate(graph.LJ, graph.Small)
	srcs := workload.Sources(g, profileFor(g), 16, 3)
	return g, workload.Homogeneous(queries.SSSP, srcs)
}

func profileFor(g *graph.Graph) *align.Profile {
	return align.NewProfile(g, align.DefaultHubCount, 0)
}

func BenchmarkSingleQuerySSSP(b *testing.B) {
	g, batch := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := engine.Run(g, batch[i%len(batch)], engine.Options{})
		if res.Iterations == 0 {
			b.Fatal("no iterations")
		}
	}
}

func benchBatchEngine(b *testing.B, e core.Engine) {
	g, batch := benchGraph()
	b.ResetTimer()
	var relaxes int64
	for i := 0; i < b.N; i++ {
		res, err := e.Run(g, batch, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		relaxes += res.LaneRelaxations
	}
	b.ReportMetric(float64(relaxes)/b.Elapsed().Seconds(), "relax/s")
}

func BenchmarkBatchLigraC(b *testing.B)     { benchBatchEngine(b, core.LigraC) }
func BenchmarkBatchKrill(b *testing.B)      { benchBatchEngine(b, core.Krill) }
func BenchmarkBatchGlignIntra(b *testing.B) { benchBatchEngine(b, core.GlignIntra) }

// Telemetry overhead guard: the same Glign-Intra batch with telemetry
// absent (the nil fast path every production run without -metrics-out
// takes) versus attached to a live collector. Compare with
//
//	go test -bench=BenchmarkTelemetry -count=10 | benchstat
//
// OBSERVABILITY.md records the measured numbers; the budget is <= 3%
// for the disabled path.
func BenchmarkTelemetryOff(b *testing.B) { benchTelemetry(b, false) }
func BenchmarkTelemetryOn(b *testing.B)  { benchTelemetry(b, true) }

func benchTelemetry(b *testing.B, enabled bool) {
	g, batch := benchGraph()
	var col *telemetry.Collector
	if enabled {
		col = telemetry.NewCollector()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := core.Options{}
		if enabled {
			opt.Telemetry = col.StartRun("bench", "FCFS").StartBatch("Glign-Intra", nil, nil)
		}
		res, err := core.GlignIntra.Run(g, batch, opt)
		if err != nil {
			b.Fatal(err)
		}
		if res.GlobalIterations == 0 {
			b.Fatal("no iterations")
		}
	}
}

// Scheduler regression guard: the persistent work-stealing pool versus the
// old spawn-per-call scheduler (par.ForSpawn, retained exactly for this
// comparison) on a 1M-element loop. The acceptance bar is pool at
// parity-or-faster at workers >= 4; BENCH_PR4.json records the measured
// numbers and the README summarizes them. Compare with
//
//	go test -bench='BenchmarkParFor' -count=10 | benchstat

// parBenchN is >= 1M elements, per the guard's acceptance criterion.
const parBenchN = 1 << 20

func parBenchData() (data, out []float64) {
	data = make([]float64, parBenchN)
	for i := range data {
		data[i] = float64(i%97) + 0.5
	}
	return data, make([]float64, parBenchN)
}

func BenchmarkParFor(b *testing.B) {
	data, out := parBenchData()
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = data[i]*1.0001 + 1
		}
	}
	for _, w := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("pool/w%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				par.For(parBenchN, w, 0, body)
			}
		})
		b.Run(fmt.Sprintf("spawn/w%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				par.ForSpawn(parBenchN, w, 0, body)
			}
		})
	}
}

func BenchmarkParForReduce(b *testing.B) {
	data, _ := parBenchData()
	var sink float64
	for _, w := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("pool/w%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink = par.ForReduce(nil, parBenchN, w, 0, 0.0,
					func(lo, hi int, acc float64) float64 {
						for j := lo; j < hi; j++ {
							acc += data[j]
						}
						return acc
					},
					func(a, b float64) float64 { return a + b })
			}
		})
		// The pre-pool fold idiom: spawn-per-call For with a mutex-merged
		// accumulator.
		b.Run(fmt.Sprintf("spawn/w%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var mu sync.Mutex
				var total float64
				par.ForSpawn(parBenchN, w, 0, func(lo, hi int) {
					var acc float64
					for j := lo; j < hi; j++ {
						acc += data[j]
					}
					mu.Lock()
					total += acc
					mu.Unlock()
				})
				sink = total
			}
		})
	}
	if sink == 0 {
		b.Fatal("fold produced zero")
	}
}

// Cache-simulator microbenchmark: touches/sec on a streaming pattern.
func BenchmarkCacheSimStream(b *testing.B) {
	c := cachesim.New(cachesim.DefaultLLC())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(int64(i)*64, 8, i%4 == 0)
	}
	if c.Misses() == 0 {
		b.Fatal("no misses")
	}
}
