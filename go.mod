module github.com/glign/glign

go 1.22
