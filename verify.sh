#!/bin/sh
# Tier-1 verification: build, vet, glignlint, tests, race matrix.
# ROADMAP.md's quality bar is "./verify.sh passes at every commit".
set -eu
cd "$(dirname "$0")"

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== glignlint (concurrency + engine invariants) =="
# The thirteen project analyzers (atomicmix, cancelpath, chanlife, clockdet,
# doclint, hotalloc, kernelmono, lockguard, lockorder, nilrecv, parcapture,
# staleignore, waitjoin); LINTING.md documents each invariant. The driver first checks
# its own implementation and the command tree explicitly (the linter must
# hold itself to the invariants it enforces), then the whole module. The
# committed baseline pins the suppression counts so new suppressions show
# up in review, and the machine-readable report is archived under results/
# for downstream tooling.
go run ./cmd/glignlint ./internal/lint ./cmd/...
go run ./cmd/glignlint ./...
go run ./cmd/glignlint -json ./... > results/lint-report.json
go run ./cmd/glignlint -write-baseline /tmp/glign-lint-baseline.json ./...
if ! diff -u results/lint-baseline.json /tmp/glign-lint-baseline.json; then
    echo "verify: lint baseline drifted; regenerate with" >&2
    echo "  go run ./cmd/glignlint -write-baseline results/lint-baseline.json ./..." >&2
    exit 1
fi
# Every registered analyzer must ship a fixture tree and a golden file —
# an analyzer nothing exercises is an invariant nobody checks.
for a in $(go run ./cmd/glignlint -help-analyzers | awk '{print $1}'); do
    if [ ! -d "cmd/glignlint/testdata/src/$a" ]; then
        echo "verify: analyzer $a has no fixture under cmd/glignlint/testdata/src/" >&2
        exit 1
    fi
    if [ ! -s "cmd/glignlint/testdata/golden/$a.txt" ]; then
        echo "verify: analyzer $a has no non-empty golden under cmd/glignlint/testdata/golden/" >&2
        echo "  (an empty golden means the fixture exercises nothing)" >&2
        exit 1
    fi
done

echo "== doc links =="
# Every SOMETHING.md referenced from the entry-point docs must exist —
# stale pointers in README/ROADMAP are how contracts rot (SERVING.md,
# OBSERVABILITY.md, LINTING.md, DESIGN.md, EXPERIMENTS.md, ...).
for doc in $(grep -oh '[A-Z][A-Z_]*\.md' README.md ROADMAP.md | sort -u); do
    if [ ! -f "$doc" ]; then
        echo "verify: $doc is referenced from README.md/ROADMAP.md but does not exist" >&2
        exit 1
    fi
done

echo "== go test =="
# -shuffle=on randomizes test (and fixture) execution order each run, so
# any inter-test state dependence surfaces here instead of in CI roulette.
go test -shuffle=on ./...

echo "== serve e2e telemetry archive =="
# Re-run the deterministic serving session with its telemetry snapshot
# archived under results/ — the `serving` section SERVING.md §8 audits.
GLIGN_SERVE_TELEMETRY_OUT="$PWD/results/serve-telemetry.json" \
    go test ./internal/serve/ -run TestServeEndToEndSession -count=1
test -s results/serve-telemetry.json

echo "== benchmark-validity oracle =="
# Certify every kernel (monotone + convergence) x {Glign, Ligra-S} x both
# graph families against the first-principles invariants of internal/oracle
# and archive the certification report — EXPERIMENTS.md's validity section.
# The leg fails on any invariant violation or dataset sanity failure.
GLIGN_ORACLE_OUT="$PWD/results/oracle-report.json" \
    go test . -run TestOracleHarness -count=1
test -s results/oracle-report.json

echo "== measured-performance gate =="
# Run the benchmark matrix (methods x kernels x graphs x workers 1/2/4/8,
# warmup + reps, median-of-reps) and diff against the committed baseline —
# EXPERIMENTS.md's "Measured performance" section. The fresh report is
# archived under results/ and the committed BENCH_PR10.json artifact is
# pinned to the baseline's schema and matrix shape. GLIGN_PERF_SKIP=1 skips
# the leg (e.g. on a loaded box); GLIGN_PERF_TOLERANCE overrides the noise
# tolerance. Cells with workers > 1 are advisory on a 1-CPU machine, and
# regressed cells are re-measured with more reps before the gate fails.
if [ "${GLIGN_PERF_SKIP:-0}" = "1" ]; then
    echo "verify: perf gate skipped (GLIGN_PERF_SKIP=1)"
else
    go run ./cmd/glign-perfgate -check \
        -bench BENCH_PR10.json \
        -out results/bench-report.json
    test -s results/bench-report.json
fi

echo "== go test -race (concurrent packages) =="
# Every package with worker-pool or CAS concurrency, including the
# internal/core stress test (concurrent batches x GOMAXPROCS 1/2/8), the
# Jacobi convergence evaluators (internal/core, internal/engine,
# internal/queries), and the live serving loop's deterministic-clock suite
# (internal/serve, now including the convergence/KHop e2e).
go test -race \
    ./internal/core/ \
    ./internal/engine/ \
    ./internal/frontier/ \
    ./internal/par/ \
    ./internal/perf/ \
    ./internal/queries/ \
    ./internal/sched/ \
    ./internal/serve/ \
    ./internal/telemetry/

echo "verify: OK"
