#!/bin/sh
# Tier-1 verification: build, vet, doc-comment lint, tests.
# ROADMAP.md's quality bar is "./verify.sh passes at every commit".
set -eu
cd "$(dirname "$0")"

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== doclint (package comments) =="
go run ./cmd/doclint .

echo "== go test =="
go test ./...

echo "== go test -race internal/telemetry =="
go test -race ./internal/telemetry/

echo "verify: OK"
