#!/bin/sh
# Tier-1 verification: build, vet, glignlint, tests, race matrix.
# ROADMAP.md's quality bar is "./verify.sh passes at every commit".
set -eu
cd "$(dirname "$0")"

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== glignlint (concurrency + engine invariants) =="
# The seven project analyzers (atomicmix, doclint, hotalloc, kernelmono,
# nilrecv, parcapture, waitjoin); LINTING.md documents each invariant. The
# driver first checks its own implementation and the command tree
# explicitly (the linter must hold itself to the invariants it enforces),
# then the whole module. The committed baseline pins the suppression counts
# so new suppressions show up in review, and the machine-readable report is
# archived under results/ for downstream tooling.
go run ./cmd/glignlint ./internal/lint ./cmd/...
go run ./cmd/glignlint ./...
go run ./cmd/glignlint -json ./... > results/lint-report.json
go run ./cmd/glignlint -write-baseline /tmp/glign-lint-baseline.json ./...
if ! diff -u results/lint-baseline.json /tmp/glign-lint-baseline.json; then
    echo "verify: lint baseline drifted; regenerate with" >&2
    echo "  go run ./cmd/glignlint -write-baseline results/lint-baseline.json ./..." >&2
    exit 1
fi

echo "== go test =="
go test ./...

echo "== go test -race (concurrent packages) =="
# Every package with worker-pool or CAS concurrency, including the
# internal/core stress test (concurrent batches x GOMAXPROCS 1/2/8) and the
# live serving loop's deterministic-clock suite (internal/serve).
go test -race \
    ./internal/core/ \
    ./internal/engine/ \
    ./internal/frontier/ \
    ./internal/par/ \
    ./internal/queries/ \
    ./internal/sched/ \
    ./internal/serve/ \
    ./internal/telemetry/

echo "verify: OK"
