package glign

import (
	"math"
	"path/filepath"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	g := PaperExampleGraph()
	rt, err := NewRuntime(g, WithBatchSize(4), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run([]Query{
		{Kernel: SSSP, Source: 0},
		{Kernel: SSSP, Source: 1},
		{Kernel: BFS, Source: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumQueries() != 3 {
		t.Fatalf("queries = %d", rep.NumQueries())
	}
	// Paper Table 1 values for sssp(v1).
	want := []Value{0, 17, 4, 12, 5, 7, 6, 22, 10}
	got := rep.Values(0)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("sssp(v1) = %v, want %v", got, want)
		}
	}
	if rep.Value(2, 7) != 4 {
		t.Fatalf("bfs(v1) level of v8 = %v, want 4", rep.Value(2, 7))
	}
	if rep.Reached(0) != 9 {
		t.Fatalf("reached = %d, want 9", rep.Reached(0))
	}
	// sssp(v2) cannot reach v1.
	if !math.IsInf(rep.Value(1, 0), 1) {
		t.Fatal("unreachable vertex must stay at identity")
	}
	if rep.DurationSeconds() <= 0 || rep.TotalIterations() == 0 || len(rep.Batches()) == 0 {
		t.Fatal("report stats broken")
	}
}

func TestAllMethodsViaFacade(t *testing.T) {
	g, err := Generate("LJ", "tiny")
	if err != nil {
		t.Fatal(err)
	}
	buffer := []Query{
		{Kernel: SSSP, Source: 5},
		{Kernel: SSWP, Source: 9},
		{Kernel: SSNP, Source: 13},
		{Kernel: Viterbi, Source: 2},
	}
	var reference [][]Value
	for _, m := range Methods() {
		rt, err := NewRuntime(g, WithMethod(m), WithBatchSize(4), WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		if rt.Method() != m {
			t.Fatalf("method = %s", rt.Method())
		}
		rep, err := rt.Run(buffer)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if reference == nil {
			reference = make([][]Value, len(buffer))
			for i := range buffer {
				reference[i] = rep.Values(i)
			}
			continue
		}
		for i := range buffer {
			got := rep.Values(i)
			for v := range got {
				if got[v] != reference[i][v] {
					t.Fatalf("%s disagrees with %s on query %d vertex %d", m, Methods()[0], i, v)
				}
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate("LJ", "galactic"); err == nil {
		t.Fatal("bad size accepted")
	}
	if _, err := Generate("NOPE", "tiny"); err == nil {
		t.Fatal("bad dataset accepted")
	}
	if len(Datasets()) != 7 {
		t.Fatalf("datasets = %v", Datasets())
	}
}

func TestNewRuntimeValidation(t *testing.T) {
	if _, err := NewRuntime(nil); err == nil {
		t.Fatal("nil graph accepted")
	}
	var empty Graph
	if _, err := NewRuntime(&empty); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestKernelByName(t *testing.T) {
	k, err := KernelByName("Viterbi")
	if err != nil || k.Name() != "Viterbi" {
		t.Fatal("KernelByName broken")
	}
	if _, err := KernelByName("pagerank"); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestGraphIO(t *testing.T) {
	g := PaperExampleGraph()
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGraph(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != g.NumEdges() {
		t.Fatal("round trip lost edges")
	}
}

func TestGraphBuilderFacade(t *testing.T) {
	b := NewGraphBuilder(3, true, true)
	b.AddEdge(0, 1, 2)
	b.AddEdge(1, 2, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	st := ComputeStats(g)
	if st.Vertices != 3 || st.Edges != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestProfileLazyAndShared(t *testing.T) {
	g, _ := Generate("TW", "tiny")
	rt, err := NewRuntime(g, WithHubCount(2), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	p1 := rt.Profile()
	p2 := rt.Profile()
	if p1 != p2 {
		t.Fatal("profile rebuilt")
	}
	if len(p1.Hubs) != 2 {
		t.Fatalf("hubs = %d, want 2 (WithHubCount)", len(p1.Hubs))
	}
}

func TestReportVerify(t *testing.T) {
	g, _ := Generate("LJ", "tiny")
	rt, err := NewRuntime(g, WithBatchSize(4), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	buffer := []Query{
		{Kernel: SSSP, Source: 3},
		{Kernel: Viterbi, Source: 9},
		{Kernel: SSNP, Source: 21},
	}
	rep, err := rt.Run(buffer)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Verify(0); err != nil {
		t.Fatalf("full verify failed: %v", err)
	}
	if err := rep.Verify(2); err != nil {
		t.Fatalf("sampled verify failed: %v", err)
	}
}

// The public affinity API must reproduce the paper's §3.3 arithmetic.
func TestPublicAffinityPaperNumbers(t *testing.T) {
	g := PaperExampleGraph()
	batch := []Query{
		{Kernel: SSSP, Source: 1},
		{Kernel: SSSP, Source: 7},
	}
	if got := Affinity(g, batch, nil); math.Abs(got-1.0/9) > 1e-12 {
		t.Fatalf("Affinity(I=nil) = %v, want 1/9", got)
	}
	if got := Affinity(g, batch, []int{2, 0}); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("Affinity(I=[2,0]) = %v, want 1/3", got)
	}
	rt, _ := NewRuntime(g)
	I := rt.AlignmentVector(batch)
	if len(I) != 2 || I[1] != 0 {
		t.Fatalf("alignment vector = %v", I)
	}
}

func TestDirectionOptimizationOption(t *testing.T) {
	g, _ := Generate("TW", "tiny")
	plain, err := NewRuntime(g, WithMethod(MethodGlignIntra), WithBatchSize(8), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := NewRuntime(g, WithMethod(MethodGlignIntra), WithBatchSize(8), WithWorkers(2),
		WithDirectionOptimization())
	if err != nil {
		t.Fatal(err)
	}
	buffer := make([]Query, 8)
	for i := range buffer {
		buffer[i] = Query{Kernel: BFS, Source: VertexID(i * 11 % g.NumVertices())}
	}
	a, err := plain.Run(buffer)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hybrid.Run(buffer)
	if err != nil {
		t.Fatal(err)
	}
	for i := range buffer {
		av, bv := a.Values(i), b.Values(i)
		for v := range av {
			if av[v] != bv[v] {
				t.Fatalf("direction optimization changed results at query %d vertex %d", i, v)
			}
		}
	}
}

func TestLatencyAccounting(t *testing.T) {
	g, _ := Generate("LJ", "tiny")
	rt, err := NewRuntime(g, WithBatchSize(4), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	buffer := make([]Query, 12)
	for i := range buffer {
		buffer[i] = Query{Kernel: SSSP, Source: VertexID(i * 7 % g.NumVertices())}
	}
	rep, err := rt.Run(buffer)
	if err != nil {
		t.Fatal(err)
	}
	// Latency is positive and nondecreasing across batch order.
	batches := rep.Batches()
	var prev float64
	for _, batch := range batches {
		l := rep.LatencySeconds(batch[0])
		if l <= 0 {
			t.Fatalf("latency = %v", l)
		}
		if l < prev {
			t.Fatalf("latency decreased across batches: %v < %v", l, prev)
		}
		prev = l
		// All queries of a batch complete together.
		for _, qi := range batch {
			if rep.LatencySeconds(qi) != l {
				t.Fatal("queries of one batch must share completion latency")
			}
		}
	}
}

func TestBatchingWindowOption(t *testing.T) {
	g, _ := Generate("LJ", "tiny")
	rt, err := NewRuntime(g, WithMethod(MethodGlignBatch), WithBatchSize(4),
		WithBatchingWindow(8), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	buffer := make([]Query, 16)
	for i := range buffer {
		buffer[i] = Query{Kernel: BFS, Source: VertexID(i * 13 % g.NumVertices())}
	}
	rep, err := rt.Run(buffer)
	if err != nil {
		t.Fatal(err)
	}
	// Window 8, batch 4: query indices may move at most within their window.
	for _, batch := range rep.Batches() {
		for _, idx := range batch {
			_ = idx
		}
	}
	if len(rep.Batches()) != 4 {
		t.Fatalf("batches = %d, want 4", len(rep.Batches()))
	}
}
