package glign

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/glign/glign/internal/align"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/par"
	"github.com/glign/glign/internal/queries"
	"github.com/glign/glign/internal/serve"
	"github.com/glign/glign/internal/systems"
)

// Serve-vs-offline differential: streaming a seeded query sequence through
// the live server must yield, query for query, the values an offline
// systems.Run produces for the same buffer under the same method. The server
// runs on a fake clock with an effectively infinite window, so every batch
// forms by size flush or the Close drain — no wall-clock sleeps, no timing
// dependence. Seeds follow the GLIGN_DIFF_SEED convention of
// differential_test.go.

const serveDiffStream = 10 // queries per streamed case (2.5 size batches of 4)

func TestServeMatchesOffline(t *testing.T) {
	pool := par.NewPool(4)
	defer pool.Close()
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	prof := align.NewProfile(g, align.DefaultHubCount, 0)
	base := diffBaseSeed(t)

	for _, method := range []string{systems.Glign, systems.LigraC} {
		for _, k := range []queries.Kernel{queries.BFS, queries.SSSP} {
			name := fmt.Sprintf("%s/%s", method, k.Name())
			seed := caseSeed(base, "serve/"+name)
			t.Run(name, func(t *testing.T) {
				ctx := repro(base, "rmat-LJ", k.Name(), method, 4)
				srcs := sampleSources(seed, g.NumVertices(), serveDiffStream)
				// Keep the stream duplicate-free: in-flight dedup would
				// coalesce repeats into one admission slot, making the
				// trailing-partial geometry (which the replay phase's window
				// advance synchronizes on) seed-dependent. Dedup semantics
				// have their own tests in internal/serve.
				seen := make(map[graph.VertexID]bool, len(srcs))
				for i, s := range srcs {
					for seen[s] {
						s = graph.VertexID((int(s) + 1) % g.NumVertices())
					}
					seen[s] = true
					srcs[i] = s
				}
				buffer := make([]queries.Query, len(srcs))
				for i, s := range srcs {
					buffer[i] = queries.Query{Kernel: k, Source: s}
				}

				// Offline ground truth: one systems.Run over the whole
				// buffer with the serving batch size.
				res, err := systems.Run(method, g, buffer, systems.Config{
					BatchSize:  diffBatchSize,
					Workers:    4,
					Pool:       pool,
					Profile:    prof,
					KeepValues: true,
				})
				if err != nil {
					t.Fatalf("offline run: %v [case seed %d, %s]", err, seed, ctx)
				}

				// Online: stream the same queries through a live server.
				clk := serve.NewFakeClock(time.Unix(0, 0))
				srv, err := serve.New(g, serve.Config{
					Method:        method,
					BatchSize:     diffBatchSize,
					Window:        time.Hour, // never fires on the fake clock
					QueueCapacity: 2 * serveDiffStream,
					Workers:       4,
					Pool:          pool,
					Profile:       prof,
					Clock:         clk,
				})
				if err != nil {
					t.Fatalf("serve.New: %v [case seed %d, %s]", seed, base, err)
				}
				streamPass := func(label string) []*serve.Ticket {
					tickets := make([]*serve.Ticket, len(buffer))
					for i, q := range buffer {
						tk, err := srv.Submit(context.Background(), q)
						if err != nil {
							t.Fatalf("%s submit %d: %v [case seed %d, %s]", label, i, err, seed, ctx)
						}
						tickets[i] = tk
					}
					return tickets
				}
				checkPass := func(label string, tickets []*serve.Ticket) {
					for i, tk := range tickets {
						got, err := tk.Wait(context.Background())
						if err != nil {
							t.Fatalf("%s query %d (source v%d): %v [case seed %d, %s]",
								label, i, buffer[i].Source, err, seed, ctx)
						}
						want := res.Values[i]
						if len(got) != len(want) {
							t.Fatalf("%s query %d (source v%d): %d values, want %d [case seed %d, %s]",
								label, i, buffer[i].Source, len(got), len(want), seed, ctx)
						}
						for v := range want {
							if got[v] != want[v] {
								t.Fatalf("%s query %d (source v%d) served != offline at vertex %d: %v != %v [case seed %d, %s]",
									label, i, buffer[i].Source, v, got[v], want[v], seed, ctx)
							}
						}
					}
				}

				// Pass 1 — computed: 10 queries form two size batches plus a
				// window-flushed trailer (the fake clock advances past the
				// window once the timer is armed).
				pass1 := streamPass("pass 1")
				clk.BlockUntil(1)
				clk.Advance(2 * time.Hour)
				checkPass("pass 1", pass1)
				batchesComputed := srv.Stats().Batches

				// Pass 2 — cached replay: the identical stream must be served
				// from the result cache byte-for-byte identical to the
				// computed pass, with zero additional engine batches.
				pass2 := streamPass("cached pass")
				checkPass("cached pass", pass2)
				if err := srv.Close(); err != nil {
					t.Fatalf("close: %v [case seed %d, %s]", err, seed, ctx)
				}
				st := srv.Stats()
				if st.Batches != batchesComputed {
					t.Errorf("cached pass executed %d extra batches [case seed %d, %s]",
						st.Batches-batchesComputed, seed, ctx)
				}
				if st.CacheHits == 0 {
					t.Errorf("cached pass recorded no cache hits [case seed %d, %s]", seed, ctx)
				}
				for i, tk1 := range pass1 {
					v1, _ := tk1.Wait(context.Background())
					v2, _ := pass2[i].Wait(context.Background())
					for v := range v1 {
						if v1[v] != v2[v] {
							t.Fatalf("cached query %d differs from computed at vertex %d: %v != %v [case seed %d, %s]",
								i, v, v2[v], v1[v], seed, ctx)
						}
					}
				}
			})
		}
	}
}
