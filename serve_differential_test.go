package glign

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/glign/glign/internal/align"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/par"
	"github.com/glign/glign/internal/queries"
	"github.com/glign/glign/internal/serve"
	"github.com/glign/glign/internal/systems"
)

// Serve-vs-offline differential: streaming a seeded query sequence through
// the live server must yield, query for query, the values an offline
// systems.Run produces for the same buffer under the same method. The server
// runs on a fake clock with an effectively infinite window, so every batch
// forms by size flush or the Close drain — no wall-clock sleeps, no timing
// dependence. Seeds follow the GLIGN_DIFF_SEED convention of
// differential_test.go.

const serveDiffStream = 10 // queries per streamed case (2.5 size batches of 4)

func TestServeMatchesOffline(t *testing.T) {
	pool := par.NewPool(4)
	defer pool.Close()
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	prof := align.NewProfile(g, align.DefaultHubCount, 0)
	base := diffBaseSeed(t)

	for _, method := range []string{systems.Glign, systems.LigraC} {
		for _, k := range []queries.Kernel{queries.BFS, queries.SSSP} {
			name := fmt.Sprintf("%s/%s", method, k.Name())
			seed := caseSeed(base, "serve/"+name)
			t.Run(name, func(t *testing.T) {
				srcs := sampleSources(seed, g.NumVertices(), serveDiffStream)
				buffer := make([]queries.Query, len(srcs))
				for i, s := range srcs {
					buffer[i] = queries.Query{Kernel: k, Source: s}
				}

				// Offline ground truth: one systems.Run over the whole
				// buffer with the serving batch size.
				res, err := systems.Run(method, g, buffer, systems.Config{
					BatchSize:  diffBatchSize,
					Workers:    4,
					Pool:       pool,
					Profile:    prof,
					KeepValues: true,
				})
				if err != nil {
					t.Fatalf("offline run: %v [seed %d, GLIGN_DIFF_SEED=%d]", seed, base, err)
				}

				// Online: stream the same queries through a live server.
				clk := serve.NewFakeClock(time.Unix(0, 0))
				srv, err := serve.New(g, serve.Config{
					Method:        method,
					BatchSize:     diffBatchSize,
					Window:        time.Hour, // never fires on the fake clock
					QueueCapacity: 2 * serveDiffStream,
					Workers:       4,
					Pool:          pool,
					Profile:       prof,
					Clock:         clk,
				})
				if err != nil {
					t.Fatalf("serve.New: %v [seed %d, GLIGN_DIFF_SEED=%d]", seed, base, err)
				}
				tickets := make([]*serve.Ticket, len(buffer))
				for i, q := range buffer {
					tk, err := srv.Submit(context.Background(), q)
					if err != nil {
						t.Fatalf("submit %d: %v [seed %d, GLIGN_DIFF_SEED=%d]", i, err, seed, base)
					}
					tickets[i] = tk
				}
				// Close drains the trailing partial batch and joins the
				// server, so every ticket below has completed.
				if err := srv.Close(); err != nil {
					t.Fatalf("close: %v [seed %d, GLIGN_DIFF_SEED=%d]", err, seed, base)
				}

				for i, tk := range tickets {
					got, err := tk.Wait(context.Background())
					if err != nil {
						t.Fatalf("query %d (source v%d): %v [seed %d, GLIGN_DIFF_SEED=%d]",
							i, buffer[i].Source, err, seed, base)
					}
					want := res.Values[i]
					if len(got) != len(want) {
						t.Fatalf("query %d (source v%d): %d values, want %d [seed %d, GLIGN_DIFF_SEED=%d]",
							i, buffer[i].Source, len(got), len(want), seed, base)
					}
					for v := range want {
						if got[v] != want[v] {
							t.Fatalf("query %d (source v%d) served != offline at vertex %d: %v != %v [seed %d, GLIGN_DIFF_SEED=%d]",
								i, buffer[i].Source, v, got[v], want[v], seed, base)
						}
					}
				}
			})
		}
	}
}
