package glign

import (
	"os"
	"testing"

	"github.com/glign/glign/internal/align"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/oracle"
	"github.com/glign/glign/internal/par"
	"github.com/glign/glign/internal/queries"
	"github.com/glign/glign/internal/systems"
)

// TestOracleHarness is the benchmark-validity oracle leg of the top-level
// harness: before any performance number is trusted, every kernel's results
// on every graph family must satisfy the kernel's first-principles
// invariants (internal/oracle), and the generated datasets themselves must
// pass structural and distributional sanity checks. Unlike the differential
// tests, which compare two implementations that could share a bug, the
// oracle checks properties a correct result must have regardless of how it
// was computed.
//
// The sweep covers every kernel — monotone and iterate-to-convergence —
// through one aligned engine (Glign) and one sequential baseline (Ligra-S),
// and archives the full outcome as results/oracle-report.json when
// GLIGN_ORACLE_OUT is set (verify.sh fails the build on any violation).
func TestOracleHarness(t *testing.T) {
	pool := par.NewPool(4)
	defer pool.Close()
	rep := oracle.NewReport()
	base := diffBaseSeed(t)

	graphsUnderTest := []struct {
		name      string
		g         *graph.Graph
		smoke     func(*graph.Graph) error
		smokeName string
	}{
		{"rmat-LJ", graph.MustGenerate(graph.LJ, graph.Tiny), oracle.SmokeRMAT, "smoke-rmat"},
		{"road-CA", graph.MustGenerate(graph.RDCA, graph.Tiny), oracle.SmokeRoad, "smoke-road"},
	}

	// Dataset leg: structural CSR sanity plus the per-family distribution
	// smoke check.
	for _, gc := range graphsUnderTest {
		gr := oracle.GraphReport{Graph: gc.name, Checks: []string{"check-graph", gc.smokeName}}
		if err := oracle.CheckGraph(gc.g); err != nil {
			gr.Violations = append(gr.Violations, oracle.Violation{Invariant: "check-graph", Detail: err.Error()})
		}
		if err := gc.smoke(gc.g); err != nil {
			gr.Violations = append(gr.Violations, oracle.Violation{Invariant: gc.smokeName, Detail: err.Error()})
		}
		rep.Graphs = append(rep.Graphs, gr)
	}

	kernels := queries.Monotone()
	for _, ck := range queries.Convergent() {
		kernels = append(kernels, ck)
	}
	methods := []string{systems.Glign, systems.LigraS}

	for _, gc := range graphsUnderTest {
		prof := align.NewProfile(gc.g, align.DefaultHubCount, 0)
		for _, k := range kernels {
			for _, method := range methods {
				seed := caseSeed(base, "oracle/"+gc.name+"/"+k.Name()+"/"+method)
				srcs := sampleSources(seed, gc.g.NumVertices(), diffBatchSize)
				buffer := make([]queries.Query, len(srcs))
				for i, s := range srcs {
					buffer[i] = queries.Query{Kernel: k, Source: s}
				}
				res, err := systems.Run(method, gc.g, buffer, systems.Config{
					BatchSize:  diffBatchSize,
					Workers:    2,
					Pool:       pool,
					Profile:    prof,
					KeepValues: true,
				})
				if err != nil {
					t.Fatalf("run failed: %v [case seed %d, %s]",
						err, seed, repro(base, gc.name, k.Name(), method, 2))
				}
				invs := oracle.InvariantNames(oracle.ForKernel(k))
				for qi, q := range buffer {
					rep.Cases = append(rep.Cases, oracle.CaseReport{
						Graph:      gc.name,
						Method:     method,
						Query:      q.String(),
						Invariants: invs,
						Violations: oracle.CheckResult(gc.g, q, res.Values[qi]),
					})
				}
			}
		}
	}
	rep.Finalize()

	// Archive before asserting, so a violating run still leaves the report
	// behind for inspection.
	if out := os.Getenv("GLIGN_ORACLE_OUT"); out != "" {
		if err := rep.WriteFile(out); err != nil {
			t.Fatalf("write %s: %v", out, err)
		}
	}

	for _, gr := range rep.Graphs {
		for _, v := range gr.Violations {
			t.Errorf("dataset %s failed %s: %s", gr.Graph, v.Invariant, v.Detail)
		}
	}
	for _, cr := range rep.Cases {
		for _, v := range cr.Violations {
			t.Errorf("%s via %s on %s violates %s: %s [%s]",
				cr.Query, cr.Method, cr.Graph, v.Invariant, v.Detail,
				repro(base, cr.Graph, cr.Query, cr.Method, 2))
		}
	}
	if rep.TotalViolations != 0 {
		t.Fatalf("oracle harness recorded %d violations across %d cases", rep.TotalViolations, len(rep.Cases))
	}
}
