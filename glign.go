// Package glign is a from-scratch Go implementation of Glign (Yin, Zhao,
// Gupta — ASPLOS 2023): a runtime system for in-memory concurrent graph
// query processing that aligns the graph traversals of concurrent
// vertex-specific queries to maximize graph-access sharing in the memory
// hierarchy.
//
// Glign evaluates batches of monotone vertex-centric queries (BFS, SSSP,
// SSWP, SSNP, Viterbi, and mixtures) with three levels of alignment:
//
//   - intra-iteration: a single query-oblivious frontier replaces per-query
//     frontiers, so the shared accesses of all queries to an active vertex
//     and its out-edges are perfectly coalesced;
//   - inter-iteration: queries whose "heavy iterations" would arrive early
//     are given a delayed start so that all heavy iterations align;
//   - batching: queries with similar heavy-iteration arrival times are
//     grouped into the same evaluation batch.
//
// The quickest way in:
//
//	g, _ := glign.Generate("LJ", "small")
//	rt, _ := glign.NewRuntime(g)
//	report, _ := rt.Run([]glign.Query{
//		{Kernel: glign.SSSP, Source: 17},
//		{Kernel: glign.SSSP, Source: 42},
//	})
//	dist := report.Values(0) // per-vertex distances of the first query
//
// Alternative evaluation methods (the baselines of the paper's evaluation:
// Ligra-S, Ligra-C, Krill, GraphM, iBFS, ...) are available through
// WithMethod, and the full experiment harness regenerating every table and
// figure of the paper lives in cmd/glign-bench.
package glign

import (
	"fmt"

	"github.com/glign/glign/internal/align"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/oracle"
	"github.com/glign/glign/internal/par"
	"github.com/glign/glign/internal/queries"
	"github.com/glign/glign/internal/systems"
	"github.com/glign/glign/internal/telemetry"
	"github.com/glign/glign/internal/workload"
)

// Core graph and query types (re-exported from the internal substrate).
type (
	// Graph is an immutable CSR graph.
	Graph = graph.Graph
	// GraphBuilder accumulates edges and produces a Graph.
	GraphBuilder = graph.Builder
	// Edge is a directed weighted edge for bulk construction.
	Edge = graph.Edge
	// VertexID identifies a vertex (dense, from 0).
	VertexID = graph.VertexID
	// Weight is an edge weight.
	Weight = graph.Weight
	// Query pairs a kernel with a source vertex.
	Query = queries.Query
	// Kernel is a monotone vertex function (paper Table 6).
	Kernel = queries.Kernel
	// Value is a vertex property value.
	Value = queries.Value
	// GraphStats summarizes structural graph properties.
	GraphStats = graph.Stats
)

// The five monotone query kernels of the paper's evaluation, plus the
// iterate-to-convergence kernels (PageRank, LabelProp) this implementation
// adds beyond the paper. Convergence kernels run synchronous Jacobi rounds
// to a fixed point instead of monotone frontier relaxation; batches mixing
// the two paradigms are split automatically before dispatch.
var (
	BFS       = queries.BFS
	SSSP      = queries.SSSP
	SSWP      = queries.SSWP
	SSNP      = queries.SSNP
	Viterbi   = queries.Viterbi
	PageRank  = queries.PageRank
	LabelProp = queries.LabelProp
)

// KHop returns the monotone bounded-reachability kernel: hop distances up
// to k, +Inf beyond. Its name is "KHOP<k>".
func KHop(k int) Kernel { return queries.KHop(k) }

// KernelByName resolves a kernel by name: "BFS", "SSSP", "SSWP", "SSNP",
// "Viterbi", "PageRank", "LabelProp", "KHOP" (default depth) or "KHOP<k>".
func KernelByName(name string) (Kernel, error) { return queries.ByName(name) }

// Evaluation methods accepted by WithMethod, named as in the paper.
const (
	MethodGlign         = systems.Glign
	MethodGlignIntra    = systems.GlignIntra
	MethodGlignInter    = systems.GlignInter
	MethodGlignBatch    = systems.GlignBatch
	MethodLigraS        = systems.LigraS
	MethodLigraC        = systems.LigraC
	MethodKrill         = systems.Krill
	MethodGraphM        = systems.GraphM
	MethodIBFS          = systems.IBFS
	MethodQueryParallel = systems.QueryParallel
	MethodCongra        = systems.Congra
)

// Methods lists every evaluation method.
func Methods() []string {
	return append(systems.AllMethods(), systems.IBFS, systems.QueryParallel, systems.Congra)
}

// NewGraphBuilder starts building a graph with n vertices.
func NewGraphBuilder(n int, directed, weighted bool) *GraphBuilder {
	return graph.NewBuilder(n, directed, weighted)
}

// LoadGraph loads a graph file: ".bin" for the plain binary CSR format,
// ".cbin" for the delta-compressed format, anything else as a SNAP-style
// text edge list ("src dst [weight]" lines).
func LoadGraph(path string, directed bool) (*Graph, error) {
	return graph.LoadFile(path, directed)
}

// SaveGraph writes a graph in the format implied by the path's extension.
func SaveGraph(path string, g *Graph) error { return graph.SaveFile(path, g) }

// Generate synthesizes a deterministic stand-in for one of the paper's
// datasets ("LJ", "WP", "UK2", "TW", "FR", "RD-CA", "RD-US") at a size
// class ("tiny", "small", "medium"). See DESIGN.md for how the stand-ins
// map to the real datasets.
func Generate(dataset, size string) (*Graph, error) {
	var sc graph.SizeClass
	switch size {
	case "tiny":
		sc = graph.Tiny
	case "small":
		sc = graph.Small
	case "medium":
		sc = graph.Medium
	default:
		return nil, fmt.Errorf("glign: unknown size class %q (tiny/small/medium)", size)
	}
	return graph.Generate(graph.Dataset(dataset), sc)
}

// Datasets lists the names accepted by Generate.
func Datasets() []string {
	var out []string
	for _, d := range graph.AllDatasets() {
		out = append(out, string(d))
	}
	return out
}

// ComputeStats gathers structural statistics of a graph.
func ComputeStats(g *Graph) GraphStats { return graph.ComputeStats(g) }

// PaperExampleGraph returns the 9-vertex running example of the paper's
// Figure 3, useful for experimentation and tests.
func PaperExampleGraph() *Graph { return graph.PaperExample() }

// SampleSources draws n query source vertices from g with the paper's
// hop-bin sampling strategy (§4.1): vertices are binned by hop distance to
// the top high-degree hubs and bins are drawn from in rounds, spreading the
// sources across the whole graph structure. Deterministic in seed.
func SampleSources(g *Graph, n int, seed int64) []VertexID {
	prof := align.NewProfile(g, align.DefaultHubCount, 0)
	return workload.Sources(g, prof, n, seed)
}

// Option configures a Runtime.
type Option func(*Runtime)

// WithMethod selects the evaluation method (default MethodGlign).
func WithMethod(m string) Option { return func(r *Runtime) { r.method = m } }

// WithBatchSize sets the number of queries evaluated concurrently
// (default 64).
func WithBatchSize(b int) Option { return func(r *Runtime) { r.cfg.BatchSize = b } }

// WithWorkers bounds parallelism (default GOMAXPROCS).
func WithWorkers(w int) Option { return func(r *Runtime) { r.cfg.Workers = w } }

// Pool is the persistent work-stealing scheduler every parallel loop runs
// on: long-lived workers claim contiguous chunks from their own segment and
// steal from neighbors when it drains (see DESIGN.md). One process-wide
// pool is started lazily and shared by default.
type Pool = par.Pool

// NewPool starts a dedicated pool with n long-lived workers (n <= 0:
// GOMAXPROCS). Close it when done; the shared default pool needs neither.
func NewPool(n int) *Pool { return par.NewPool(n) }

// WithPool runs every parallel loop of the runtime on p instead of the
// shared process-wide pool, isolating the runtime's scheduling — and the
// steal/imbalance telemetry it produces — from other concurrent work. A nil
// p keeps the shared pool.
func WithPool(p *Pool) Option { return func(r *Runtime) { r.cfg.Pool = p } }

// WithBatchingWindow sets the affinity-batching window B_w (default: whole
// buffer).
func WithBatchingWindow(bw int) Option { return func(r *Runtime) { r.cfg.Window = bw } }

// WithHubCount sets K, the number of high-degree vertices probed by the
// alignment profile (default 4, as in the paper).
func WithHubCount(k int) Option { return func(r *Runtime) { r.hubCount = k } }

// Telemetry collects runtime metrics: global counters and histograms plus
// per-run, per-batch, per-iteration timelines (see internal/telemetry and
// OBSERVABILITY.md for the schema). One Telemetry may be shared by several
// Runtimes; Snapshot serializes its state to the machine-readable form.
type Telemetry = telemetry.Collector

// Metrics is the JSON-serializable snapshot of a Telemetry collector.
type Metrics = telemetry.Metrics

// RunMetrics is the per-iteration timeline of one Run call, returned by
// Report.Metrics.
type RunMetrics = telemetry.RunMetrics

// NewTelemetry returns an empty telemetry collector for WithTelemetry.
func NewTelemetry() *Telemetry { return telemetry.NewCollector() }

// WithTelemetry attaches a telemetry collector to the runtime: every Run
// records per-iteration engine metrics (frontier sizes, edges relaxed,
// value writes, delayed starts) and scheduler decisions into t, and
// Report.Metrics exposes the run's timeline. A nil t (or omitting the
// option) disables collection at near-zero cost.
func WithTelemetry(t *Telemetry) Option { return func(r *Runtime) { r.cfg.Telemetry = t } }

// WithDirectionOptimization enables push/pull hybrid global iterations in
// the Glign engines (an extension beyond the paper): dense iterations run
// in pull mode over the profile's reversed graph, trading CAS-free
// sequential lane writes for scanning all in-edges.
func WithDirectionOptimization() Option {
	return func(r *Runtime) { r.cfg.DirectionOptimized = true }
}

// Runtime evaluates buffers of concurrent queries on one graph. It owns the
// graph's alignment profile (the one-time reverse-BFS precompute of paper
// §3.3), which is built lazily on first use and shared across runs.
type Runtime struct {
	g        *Graph
	method   string
	hubCount int
	cfg      systems.Config
	profile  *align.Profile
}

// NewRuntime creates a runtime for g.
func NewRuntime(g *Graph, opts ...Option) (*Runtime, error) {
	if g == nil || g.NumVertices() == 0 {
		return nil, fmt.Errorf("glign: empty graph")
	}
	r := &Runtime{g: g, method: MethodGlign, hubCount: align.DefaultHubCount}
	for _, o := range opts {
		o(r)
	}
	if r.cfg.BatchSize <= 0 {
		r.cfg.BatchSize = 64
	}
	return r, nil
}

// Profile returns the runtime's alignment profile, building it on first
// call (ProfileCost reports the one-time cost afterwards).
func (r *Runtime) Profile() *AlignmentProfile {
	if r.profile == nil {
		r.profile = align.NewProfile(r.g, r.hubCount, r.cfg.Workers)
	}
	return r.profile
}

// AlignmentProfile is the per-graph precompute guiding inter-iteration
// alignment and affinity batching.
type AlignmentProfile = align.Profile

// AlignmentVector returns the delayed-start schedule (paper Definition 3.3)
// the runtime's heuristic would assign to a batch: AlignmentVector(b)[i] is
// the global iteration at which query i would start so that all heavy
// iterations align.
func (r *Runtime) AlignmentVector(batch []Query) []int {
	return r.Profile().AlignmentVector(batch)
}

// Affinity measures the graph-access sharing of a batch under an alignment
// vector (paper Definition 3.4): values approach 1-1/B when the frontiers
// perfectly overlap and 0 when they never do. It traces each query
// independently (one evaluation per query), so it is an analysis tool, not
// a runtime fast path. A nil alignment means all queries start together.
func Affinity(g *Graph, batch []Query, alignment []int) float64 {
	if alignment == nil {
		alignment = make([]int, len(batch))
	}
	traces := align.TraceBatch(g, batch, 0)
	return align.Affinity(traces, alignment)
}

// Report is the outcome of evaluating a buffer of queries.
type Report struct {
	res    *systems.Result
	buffer []Query
	g      *Graph
	n      int
}

// Run evaluates the buffer (any number of queries; they are batched
// according to the runtime's method and batch size) and returns a report
// with per-query results.
func (r *Runtime) Run(buffer []Query) (*Report, error) {
	cfg := r.cfg
	cfg.KeepValues = true
	if systems.NeedsProfile(r.method) || cfg.DirectionOptimized {
		cfg.Profile = r.Profile()
	}
	res, err := systems.Run(r.method, r.g, buffer, cfg)
	if err != nil {
		return nil, err
	}
	return &Report{res: res, buffer: buffer, g: r.g, n: r.g.NumVertices()}, nil
}

// Verify recomputes up to sample queries of the report (all, when sample
// <= 0 or exceeds the buffer) with an independent serial golden evaluator —
// label-correcting for monotone kernels, serial Jacobi for convergence
// kernels — and returns an error describing the first mismatch. All engines
// compute exact (and, for Jacobi, order-deterministic) fixed points, so any
// mismatch is a bug, not noise.
func (rep *Report) Verify(sample int) error {
	if sample <= 0 || sample > len(rep.buffer) {
		sample = len(rep.buffer)
	}
	stride := len(rep.buffer) / sample
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(rep.buffer); i += stride {
		want := oracle.GoldenValues(rep.g, rep.buffer[i])
		got := rep.Values(i)
		for v := range want {
			if got[v] != want[v] {
				return fmt.Errorf("glign: query %d (%s) disagrees with reference at vertex %d: %v != %v",
					i, rep.buffer[i], v, got[v], want[v])
			}
		}
	}
	return nil
}

// Method returns the runtime's evaluation method.
func (r *Runtime) Method() string { return r.method }

// Values returns the result vector of the i-th query of the buffer: one
// Value per vertex (the kernel's identity where unreached).
func (rep *Report) Values(i int) []Value { return rep.res.Values[i] }

// Value returns the result of query i at vertex v.
func (rep *Report) Value(i int, v VertexID) Value { return rep.res.Values[i][v] }

// NumQueries returns the buffer size.
func (rep *Report) NumQueries() int { return len(rep.buffer) }

// DurationSeconds is the wall-clock evaluation time (excluding the one-time
// profile precompute).
func (rep *Report) DurationSeconds() float64 { return rep.res.Duration.Seconds() }

// Batches returns the evaluation batches as buffer-index lists, in the
// order they ran (exposes what affinity-oriented batching decided).
func (rep *Report) Batches() [][]int { return rep.res.Batches }

// Metrics returns the run's telemetry timeline — per-batch, per-iteration
// frontier sizes, edges relaxed, value writes, alignment vectors, and the
// scheduler decisions that formed the batches. It returns nil unless the
// runtime was built WithTelemetry. The snapshot is an independent copy;
// it does not change as the collector observes further runs.
func (rep *Report) Metrics() *RunMetrics { return rep.res.Telemetry.Snapshot() }

// TotalIterations is the number of global iterations summed over batches.
func (rep *Report) TotalIterations() int { return rep.res.TotalIterations }

// LatencySeconds returns the completion latency of the i-th query of the
// buffer: time from the start of the run until its evaluation batch
// finished. Affinity-oriented batching may reorder queries within its
// window, which this metric makes observable.
func (rep *Report) LatencySeconds(i int) float64 {
	d, ok := rep.res.QueryLatency(i)
	if !ok {
		return 0
	}
	return d.Seconds()
}

// Reached reports how many vertices query i reached.
func (rep *Report) Reached(i int) int {
	vals := rep.res.Values[i]
	id := rep.buffer[i].Kernel.Identity()
	count := 0
	for _, v := range vals {
		if v != id {
			count++
		}
	}
	return count
}
