package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentPoolStress hammers one shared Pool with concurrent For and
// ForReduce loops from many goroutines across GOMAXPROCS 1, 2 and 8. Its job
// is to give the race detector (verify.sh runs this package under -race)
// real interleavings to bite on: concurrent job dispatch, segment-cursor
// claims, cross-job stealing by parked workers, and the completion protocol
// all overlap here. Every loop's result is checked exactly, so a lost or
// double-executed chunk is a failure even without -race.
func TestConcurrentPoolStress(t *testing.T) {
	for _, procs := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("gomaxprocs=%d", procs), func(t *testing.T) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)

			p := NewPool(4)
			defer p.Close()

			const submitters = 6
			const repeats = 25
			var wg sync.WaitGroup
			for s := 0; s < submitters; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					for rep := 0; rep < repeats; rep++ {
						// Vary geometry per submitter and repeat so jobs of
						// different shapes overlap in the pool.
						total := 1000 + 997*s + 13*rep
						workers := 1 + (s+rep)%5
						seen := make([]int32, total)
						p.For(total, workers, 0, func(lo, hi int) {
							for i := lo; i < hi; i++ {
								atomic.AddInt32(&seen[i], 1)
							}
						})
						for i, c := range seen {
							if c != 1 {
								t.Errorf("submitter %d rep %d: index %d visited %d times", s, rep, i, c)
								return
							}
						}
						got := ForReduce(p, total, workers, 0, int64(0),
							func(lo, hi int, acc int64) int64 {
								for i := lo; i < hi; i++ {
									acc += int64(i)
								}
								return acc
							},
							func(a, b int64) int64 { return a + b })
						if want := int64(total) * int64(total-1) / 2; got != want {
							t.Errorf("submitter %d rep %d: sum = %d, want %d", s, rep, got, want)
							return
						}
					}
				}(s)
			}
			wg.Wait()

			// The shared counters must be coherent after the storm.
			st := p.Stats()
			var perWorker int64
			for _, c := range st.ChunksPerWorker {
				perWorker += c
			}
			if perWorker != st.Chunks {
				t.Errorf("ChunksPerWorker sums to %d, want %d", perWorker, st.Chunks)
			}
			if st.Jobs+st.InlineRuns < submitters*repeats {
				t.Errorf("Jobs+InlineRuns = %d, want >= %d", st.Jobs+st.InlineRuns, submitters*repeats)
			}
		})
	}
}
