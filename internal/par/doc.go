// Package par provides the work-stealing parallel runtime the engines are
// built on. It stands in for the Cilk scheduler that Ligra (and therefore
// Krill and Glign) uses: dynamic chunk self-scheduling over an index space,
// which delivers the balanced vertex-level parallelism the paper relies on
// without any external dependency.
//
// The runtime is a persistent Pool: long-lived workers started once, woken
// by tokens when a loop is submitted, so the per-call cost of For is a few
// atomic operations instead of a goroutine spawn and WaitGroup per call —
// engines call For once per iteration per query, thousands of times per
// batch. The index space is split into one contiguous segment per
// participant (the submitter always participates); each participant drains
// its own segment first and then steals grain-sized chunks from the others,
// so skewed per-vertex work (power-law degree distributions) self-balances.
// ForReduce folds per-chunk partials and merges them in chunk order, making
// parallel reductions deterministic for a fixed geometry even under
// stealing. Engines aggregate telemetry counters per worker inside the loop
// body and publish them once per iteration, keeping the hot path free of
// shared-cacheline traffic; the pool's own scheduling counters (jobs,
// chunks, steals, parks) feed the telemetry scheduler section.
package par
