// Package par provides the small work-sharing parallel runtime the engines
// are built on. It stands in for the Cilk work-stealing scheduler that Ligra
// (and therefore Krill and Glign) uses: dynamic chunk self-scheduling over an
// index space, which delivers the balanced vertex-level parallelism the paper
// relies on without any external dependency.
//
// For loops hand out fixed-size chunks from an atomic cursor, so skewed
// per-vertex work (power-law degree distributions) self-balances without a
// task deque. Engines aggregate telemetry counters per worker inside the
// loop body and publish them once per iteration, keeping the hot path free
// of shared-cacheline traffic.
package par
