package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 0} {
		for _, total := range []int{0, 1, 63, 64, 65, 1000, 4097} {
			seen := make([]int32, total)
			For(total, workers, 0, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d total=%d: index %d visited %d times", workers, total, i, c)
				}
			}
		}
	}
}

func TestForZeroAndNegativeTotal(t *testing.T) {
	called := false
	For(0, 4, 0, func(lo, hi int) { called = true })
	For(-5, 4, 0, func(lo, hi int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForSingleWorkerRunsInline(t *testing.T) {
	// With one worker the callback must see the whole range in one call
	// (deterministic inline execution).
	var calls int
	For(10000, 1, 0, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10000 {
			t.Fatalf("inline run got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestForExplicitGrain(t *testing.T) {
	var chunks atomic.Int64
	For(1000, 4, 100, func(lo, hi int) {
		chunks.Add(1)
		if hi-lo > 100 {
			t.Errorf("chunk [%d,%d) exceeds grain", lo, hi)
		}
	})
	if got := chunks.Load(); got != 10 {
		t.Fatalf("chunks = %d, want 10", got)
	}
}

func TestForEach(t *testing.T) {
	items := make([]int, 500)
	for i := range items {
		items[i] = i
	}
	var sum atomic.Int64
	ForEach(items, 4, func(x int) { sum.Add(int64(x)) })
	if got, want := sum.Load(), int64(500*499/2); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

func TestQuickForPartitions(t *testing.T) {
	f := func(total uint16, workers uint8, grain uint16) bool {
		n := int(total) % 5000
		var count atomic.Int64
		For(n, int(workers)%8, int(grain)%300, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad range [%d,%d) for n=%d", lo, hi, n)
			}
			count.Add(int64(hi - lo))
		})
		return int(count.Load()) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers < 1")
	}
}
