package par

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 0} {
		for _, total := range []int{0, 1, 63, 64, 65, 1000, 4097} {
			seen := make([]int32, total)
			For(total, workers, 0, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d total=%d: index %d visited %d times", workers, total, i, c)
				}
			}
		}
	}
}

func TestForZeroAndNegativeTotal(t *testing.T) {
	called := false
	For(0, 4, 0, func(lo, hi int) { called = true })
	For(-5, 4, 0, func(lo, hi int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForSingleWorkerRunsInline(t *testing.T) {
	// With one worker the callback must see the whole range in one call
	// (deterministic inline execution).
	var calls int
	For(10000, 1, 0, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10000 {
			t.Fatalf("inline run got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestForExplicitGrain(t *testing.T) {
	var chunks atomic.Int64
	For(1000, 4, 100, func(lo, hi int) {
		chunks.Add(1)
		if hi-lo > 100 {
			t.Errorf("chunk [%d,%d) exceeds grain", lo, hi)
		}
	})
	if got := chunks.Load(); got != 10 {
		t.Fatalf("chunks = %d, want 10", got)
	}
}

func TestForEach(t *testing.T) {
	items := make([]int, 500)
	for i := range items {
		items[i] = i
	}
	var sum atomic.Int64
	ForEach(items, 4, func(x int) { sum.Add(int64(x)) })
	if got, want := sum.Load(), int64(500*499/2); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

func TestQuickForPartitions(t *testing.T) {
	f := func(total uint16, workers uint8, grain uint16) bool {
		n := int(total) % 5000
		var count atomic.Int64
		For(n, int(workers)%8, int(grain)%300, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad range [%d,%d) for n=%d", lo, hi, n)
			}
			count.Add(int64(hi - lo))
		})
		return int(count.Load()) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers < 1")
	}
}

// TestGrainDerivesChunkCountFirst pins the fixed heuristic: when total is
// just above minGrain*workers, the chunks must stay within one grain of each
// other instead of clamping to minGrain and leaving a ragged tail (the old
// total/(workers*8) rule produced 64,64,64,64,4 for total=260 — one worker
// ran double the work of the rest).
func TestGrainDerivesChunkCountFirst(t *testing.T) {
	cases := []struct {
		total, workers, grain int
		wantGrain, wantChunks int
	}{
		{260, 4, 0, 65, 4},      // just above minGrain*workers: 4 even chunks
		{256, 4, 0, 64, 4},      // exactly minGrain*workers
		{300, 4, 0, 75, 4},      // still floor-limited: 4 chunks of 75
		{1024, 4, 0, 64, 16},    // unconstrained: chunksPerWorker*workers chunks
		{4096, 4, 0, 256, 16},   // ditto, grain scales with total
		{63, 4, 0, 64, 1},       // sub-grain total collapses to one chunk
		{1000, 4, 100, 100, 10}, // explicit grain honored exactly
		{1000, 4, 7, 64, 16},    // explicit grain floors at minGrain
	}
	for _, c := range cases {
		g, n := grainFor(c.total, c.workers, c.grain)
		if g != c.wantGrain || n != c.wantChunks {
			t.Errorf("grainFor(%d,%d,%d) = (%d,%d), want (%d,%d)",
				c.total, c.workers, c.grain, g, n, c.wantGrain, c.wantChunks)
		}
	}
}

// TestGrainChunkBoundaries verifies the executed chunk boundaries match the
// derived geometry exactly: every chunk starts on a grain multiple and only
// the final chunk may be short.
func TestGrainChunkBoundaries(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, total := range []int{260, 300, 1000, 4097} {
		g, nChunks := grainFor(total, 4, 0)
		var mu sync.Mutex
		var got [][2]int
		p.For(total, 4, 0, func(lo, hi int) {
			mu.Lock()
			got = append(got, [2]int{lo, hi})
			mu.Unlock()
		})
		if len(got) != nChunks {
			t.Fatalf("total=%d: %d chunks, want %d", total, len(got), nChunks)
		}
		sort.Slice(got, func(i, j int) bool { return got[i][0] < got[j][0] })
		for i, c := range got {
			if c[0] != i*g {
				t.Fatalf("total=%d: chunk %d starts at %d, want %d", total, i, c[0], i*g)
			}
			want := c[0] + g
			if want > total {
				want = total
			}
			if c[1] != want {
				t.Fatalf("total=%d: chunk %d ends at %d, want %d", total, i, c[1], want)
			}
		}
	}
}

func TestPoolForCoversRangeExactlyOnce(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	for _, workers := range []int{1, 2, 4, 0} {
		for _, total := range []int{0, 1, 63, 64, 65, 1000, 4097, 100000} {
			seen := make([]int32, total)
			p.For(total, workers, 0, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d total=%d: index %d visited %d times", workers, total, i, c)
				}
			}
		}
	}
}

func TestPoolReuseAcrossCalls(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	for round := 0; round < 200; round++ {
		var sum atomic.Int64
		p.For(1000, 4, 0, func(lo, hi int) {
			var local int64
			for i := lo; i < hi; i++ {
				local += int64(i)
			}
			sum.Add(local)
		})
		if got, want := sum.Load(), int64(1000*999/2); got != want {
			t.Fatalf("round %d: sum = %d, want %d", round, got, want)
		}
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.For(500, 2, 0, func(lo, hi int) {})
	p.Close()
	p.Close() // second Close must not panic or deadlock
}

func TestForReduceSum(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, workers := range []int{1, 2, 4, 0} {
		for _, total := range []int{0, 1, 64, 1000, 4097, 250000} {
			got := ForReduce(p, total, workers, 0, int64(0),
				func(lo, hi int, acc int64) int64 {
					for i := lo; i < hi; i++ {
						acc += int64(i)
					}
					return acc
				},
				func(a, b int64) int64 { return a + b })
			want := int64(total) * int64(total-1) / 2
			if total == 0 {
				want = 0
			}
			if got != want {
				t.Fatalf("workers=%d total=%d: sum = %d, want %d", workers, total, got, want)
			}
		}
	}
}

func TestForReduceMax(t *testing.T) {
	// Non-commutative-looking fold with a non-zero identity: max over a
	// permuted slice.
	n := 10000
	xs := make([]int, n)
	for i := range xs {
		xs[i] = (i * 2654435761) % 999983
	}
	got := ForReduce(nil, n, 4, 0, -1,
		func(lo, hi int, acc int) int {
			for i := lo; i < hi; i++ {
				if xs[i] > acc {
					acc = xs[i]
				}
			}
			return acc
		},
		func(a, b int) int {
			if a > b {
				return a
			}
			return b
		})
	want := -1
	for _, x := range xs {
		if x > want {
			want = x
		}
	}
	if got != want {
		t.Fatalf("max = %d, want %d", got, want)
	}
}

// TestForReduceDeterministicFloat pins the schedule-independence contract:
// for a fixed geometry the float merge order is chunk order, so repeated
// parallel folds agree bit-for-bit with each other (and with a serial fold
// over the same chunk boundaries).
func TestForReduceDeterministicFloat(t *testing.T) {
	n := 100000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 1.0 / float64(i+1)
	}
	fold := func() float64 {
		return ForReduce(nil, n, 4, 0, 0.0,
			func(lo, hi int, acc float64) float64 {
				for i := lo; i < hi; i++ {
					acc += xs[i]
				}
				return acc
			},
			func(a, b float64) float64 { return a + b })
	}
	first := fold()
	for i := 0; i < 20; i++ {
		if got := fold(); got != first {
			t.Fatalf("fold %d = %v, want %v (schedule leaked into the merge order)", i, got, first)
		}
	}
}

func TestForReduceSingleWorkerInline(t *testing.T) {
	var calls int
	got := ForReduce(nil, 5000, 1, 0, 0,
		func(lo, hi int, acc int) int {
			calls++
			if lo != 0 || hi != 5000 {
				t.Fatalf("inline fold got [%d,%d)", lo, hi)
			}
			return acc + (hi - lo)
		},
		func(a, b int) int { return a + b })
	if calls != 1 || got != 5000 {
		t.Fatalf("calls=%d got=%d, want 1 call returning 5000", calls, got)
	}
}

func TestForSpawnCoversRange(t *testing.T) {
	seen := make([]int32, 4097)
	ForSpawn(len(seen), 4, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestPoolStats(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.For(100000, 3, 0, func(lo, hi int) {})
	p.For(10, 4, 0, func(lo, hi int) {}) // sub-grain: inline
	st := p.Stats()
	if st.Workers != 2 {
		t.Errorf("Workers = %d, want 2", st.Workers)
	}
	if st.Jobs != 1 {
		t.Errorf("Jobs = %d, want 1", st.Jobs)
	}
	if st.InlineRuns != 1 {
		t.Errorf("InlineRuns = %d, want 1", st.InlineRuns)
	}
	_, wantChunks := grainFor(100000, 3, 0)
	if st.Chunks != int64(wantChunks) {
		t.Errorf("Chunks = %d, want %d", st.Chunks, wantChunks)
	}
	var perWorker int64
	for _, c := range st.ChunksPerWorker {
		perWorker += c
	}
	if perWorker != st.Chunks {
		t.Errorf("ChunksPerWorker sums to %d, want %d", perWorker, st.Chunks)
	}
	if len(st.ChunksPerWorker) != 3 { // submitter cell + 2 workers
		t.Errorf("len(ChunksPerWorker) = %d, want 3", len(st.ChunksPerWorker))
	}
}
