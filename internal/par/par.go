package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the worker count used when a caller passes workers <= 0.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// minGrain is the smallest chunk handed to a worker; chunks below this are
// not worth the scheduling overhead.
const minGrain = 64

// chunksPerWorker is the adaptive-grain target: enough chunks per worker
// that stealing can rebalance skewed per-chunk work, few enough that the
// per-chunk claim (one atomic add) stays negligible.
const chunksPerWorker = 4

// grainFor derives the chunk geometry for a loop over [0,total). When the
// caller pins a grain it is honored (floored at minGrain, like the spawn
// scheduler always did). Otherwise the chunk COUNT is derived first —
// ~chunksPerWorker chunks per worker, capped so no chunk drops below
// minGrain — and the grain follows from it. Deriving grain first (the old
// total/(workers*8) rule) clamped to minGrain exactly when total is just
// above minGrain*workers, which handed one worker two chunks while the rest
// got one: a 2x tail. Dividing total by the chunk count keeps the chunks
// within one index of each other in that regime.
func grainFor(total, workers, grain int) (g, nChunks int) {
	if grain <= 0 {
		n := chunksPerWorker * workers
		if maxChunks := total / minGrain; n > maxChunks {
			n = maxChunks
		}
		if n < 1 {
			n = 1
		}
		grain = (total + n - 1) / n
	}
	if grain < minGrain {
		grain = minGrain
	}
	return grain, (total + grain - 1) / grain
}

// segCursor is one participant's claim cursor over its contiguous segment of
// the index space. next advances by the job's grain; claims past hi fail and
// send the claimant stealing. The struct is padded to a cache line so
// neighboring cursors do not false-share under concurrent claims.
type segCursor struct {
	next atomic.Int64
	hi   int64
	_    [48]byte
}

// job is one parallel loop in flight: the body, the chunk geometry, and the
// completion plumbing. Pool workers receive the job once per wake token and
// participate until no claimable chunk remains anywhere.
type job struct {
	fn    func(lo, hi, chunk int)
	grain int
	// slots hands each arriving participant a distinct cursor index; the
	// submitter takes slot 0 without going through the counter.
	slots atomic.Int64
	// cursors partition [0,total) into one contiguous segment per
	// participant, each starting on a grain boundary.
	cursors []segCursor
	// remaining counts indices not yet executed; the participant that drives
	// it to zero closes done.
	remaining atomic.Int64
	done      chan struct{}
}

// Pool is a persistent work-stealing scheduler: NewPool starts long-lived
// workers once, and every For/ForReduce afterwards only hands out chunk
// claims — no goroutine spawn, no WaitGroup churn on the hot path. The
// submitting goroutine always participates in its own loop, so a loop
// completes even when every pool worker is busy with other submitters
// (concurrent use from many goroutines is supported and race-tested).
//
// Scheduling: the index space is split into one contiguous segment per
// participant; each participant drains its own segment first (sequential
// locality, zero contention), then steals grain-sized chunks from the other
// segments in ring order. Segment cursors are cache-line padded atomics, so
// a steal costs one fetch-add on the victim's line and nothing else.
type Pool struct {
	workers int
	jobs    chan *job
	quit    chan struct{}
	// wg joins the long-lived workers; Close waits on it. The waitjoin
	// analyzer models exactly this pattern (Add before the launch here,
	// Wait in Close) as the persistent-pool lifetime contract.
	wg     sync.WaitGroup
	closed atomic.Bool

	// Monotone scheduling counters, exported via Stats for the telemetry
	// scheduler section.
	jobCount    atomic.Int64
	inlineCount atomic.Int64
	chunkCount  atomic.Int64
	stealCount  atomic.Int64
	parkCount   atomic.Int64
	// perWorker[0] aggregates chunks executed by submitting goroutines;
	// perWorker[i] for i >= 1 belongs to pool worker i. Padded cells keep
	// the per-chunk increments off each other's cache lines.
	perWorker []paddedInt64
}

// paddedInt64 is an atomic counter padded to a cache line.
type paddedInt64 struct {
	n atomic.Int64
	_ [56]byte
}

// NewPool starts a pool with the given number of long-lived background
// workers (<= 0 means DefaultWorkers). Callers own the pool's lifetime and
// should Close it when done; the package-level Default pool lives for the
// process and is never closed.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	p := &Pool{
		workers: workers,
		// The token buffer absorbs a burst of submissions; when it is full
		// the submitter simply skips waking more workers (sends are
		// non-blocking) and the active participants steal the slack.
		jobs:      make(chan *job, 4*workers),
		quit:      make(chan struct{}),
		perWorker: make([]paddedInt64, workers+1),
	}
	p.wg.Add(workers)
	for w := 1; w <= workers; w++ {
		go p.worker(w)
	}
	return p
}

// Workers returns the number of long-lived background workers.
func (p *Pool) Workers() int { return p.workers }

// Close stops the background workers and joins them. Loops already in
// flight finish normally (their submitters participate and steal any
// segment an exiting worker abandons mid-queue — workers never abandon a
// segment mid-chunk). For must not be called after Close.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	close(p.quit)
	p.wg.Wait()
}

// worker is the long-lived loop of pool worker id: wait for a wake token,
// claim a cursor slot, work until no claimable chunk remains, park again.
func (p *Pool) worker(id int) {
	defer p.wg.Done()
	for {
		select {
		case <-p.quit:
			return
		case j := <-p.jobs:
			slot := int(j.slots.Add(1))
			if slot < len(j.cursors) {
				p.drain(j, slot, id)
			}
			p.parkCount.Add(1)
		}
	}
}

// drain runs participant slot of job j to exhaustion: own segment first,
// then the other segments in ring order (the stealing phase). statIdx is
// the perWorker cell charged for executed chunks (0 for submitters).
func (p *Pool) drain(j *job, slot, statIdx int) {
	var executed, chunks, steals int64
	grain := int64(j.grain)
	nseg := len(j.cursors)
	for k := 0; k < nseg; k++ {
		ci := slot + k
		if ci >= nseg {
			ci -= nseg
		}
		c := &j.cursors[ci]
		for {
			lo := c.next.Add(grain) - grain
			if lo >= c.hi {
				break
			}
			hi := lo + grain
			if hi > c.hi {
				hi = c.hi
			}
			j.fn(int(lo), int(hi), int(lo)/j.grain)
			executed += hi - lo
			chunks++
			if k > 0 {
				steals++
			}
		}
	}
	if chunks > 0 {
		p.chunkCount.Add(chunks)
		p.perWorker[statIdx].n.Add(chunks)
	}
	if steals > 0 {
		p.stealCount.Add(steals)
	}
	if executed > 0 && j.remaining.Add(-executed) == 0 {
		close(j.done)
	}
}

// For runs fn over [0,total) split into dynamically scheduled chunks of
// roughly grain indices each, using the given number of workers (<= 0 means
// the pool's full parallelism: its background workers plus the submitter).
// fn must be safe for concurrent invocation on disjoint ranges. With
// workers == 1 (or a total at or below one grain) it runs inline as a
// single fn(0, total) call, which keeps single-threaded runs deterministic
// and cheap.
func (p *Pool) For(total, workers, grain int, fn func(lo, hi int)) {
	p.run(total, workers, grain, func(lo, hi, _ int) { fn(lo, hi) })
}

// run is the shared scheduling core behind For and ForReduce: it derives
// the chunk geometry, runs inline when parallelism cannot help, and
// otherwise dispatches a job. fn additionally receives the chunk index
// (lo/grain), which ForReduce uses for deterministic per-chunk slots.
func (p *Pool) run(total, workers, grain int, fn func(lo, hi, chunk int)) {
	if total <= 0 {
		return
	}
	if workers <= 0 {
		workers = p.workers + 1
	}
	g, nChunks := grainFor(total, workers, grain)
	if workers == 1 || total <= g {
		p.inlineCount.Add(1)
		fn(0, total, 0)
		return
	}
	parts := workers
	if parts > nChunks {
		parts = nChunks
	}
	j := &job{fn: fn, grain: g, done: make(chan struct{}), cursors: make([]segCursor, parts)}
	j.remaining.Store(int64(total))
	// Partition the chunks (not the raw indices) across segments so every
	// claim inside a segment is a full grain except possibly the last chunk
	// of the last segment — chunk boundaries stay grain-aligned, which is
	// what makes lo/grain a stable chunk index.
	base, extra := nChunks/parts, nChunks%parts
	lo := 0
	for i := 0; i < parts; i++ {
		cn := base
		if i < extra {
			cn++
		}
		hi := lo + cn*g
		if hi > total {
			hi = total
		}
		j.cursors[i].next.Store(int64(lo))
		j.cursors[i].hi = int64(hi)
		lo = hi
	}
	p.jobCount.Add(1)
	// Wake up to parts-1 workers. Sends are non-blocking: if the token
	// buffer is full (a submission burst), the participants already awake —
	// at minimum the submitter — steal the unclaimed segments, so the loop
	// completes regardless of how many tokens land.
	for i := 1; i < parts; i++ {
		select {
		case p.jobs <- j:
		default:
			i = parts // buffer full; stop waking
		}
	}
	p.drain(j, 0, 0)
	<-j.done
}

// Stats is a point-in-time snapshot of the pool's monotone scheduling
// counters (the raw material of the telemetry scheduler section).
type Stats struct {
	// Workers is the number of long-lived background workers.
	Workers int
	// Jobs counts dispatched parallel loops; InlineRuns counts loops that
	// ran inline instead (workers == 1 or a sub-grain total).
	Jobs       int64
	InlineRuns int64
	// Chunks counts executed chunks; Steals the subset claimed from another
	// participant's segment; Parks the number of times a worker went back
	// to waiting after draining a job.
	Chunks int64
	Steals int64
	Parks  int64
	// ChunksPerWorker breaks Chunks down by executor: index 0 aggregates
	// submitting goroutines, index i >= 1 is pool worker i. The spread of
	// these values is the scheduler's load-imbalance signal.
	ChunksPerWorker []int64
}

// Sub returns the counter deltas s - prev, attributing an interval of work
// (a benchmark cell, one run) on a shared pool: Workers is carried from s,
// and per-worker chunk counts subtract slot-wise. prev must be an earlier
// snapshot of the same pool.
func (s Stats) Sub(prev Stats) Stats {
	d := Stats{
		Workers:         s.Workers,
		Jobs:            s.Jobs - prev.Jobs,
		InlineRuns:      s.InlineRuns - prev.InlineRuns,
		Chunks:          s.Chunks - prev.Chunks,
		Steals:          s.Steals - prev.Steals,
		Parks:           s.Parks - prev.Parks,
		ChunksPerWorker: make([]int64, len(s.ChunksPerWorker)),
	}
	for i, n := range s.ChunksPerWorker {
		if i < len(prev.ChunksPerWorker) {
			n -= prev.ChunksPerWorker[i]
		}
		d.ChunksPerWorker[i] = n
	}
	return d
}

// ImbalanceRatio condenses ChunksPerWorker into one load-imbalance figure:
// the maximum over the mean of the participants that executed any chunks.
// 1.0 is perfectly level; large values mean stealing failed to spread the
// load. Returns 0 when no chunks were executed at all.
func (s Stats) ImbalanceRatio() float64 {
	var max, sum int64
	active := 0
	for _, n := range s.ChunksPerWorker {
		if n <= 0 {
			continue
		}
		active++
		sum += n
		if n > max {
			max = n
		}
	}
	if active == 0 {
		return 0
	}
	return float64(max) * float64(active) / float64(sum)
}

// Stats snapshots the pool's counters.
func (p *Pool) Stats() Stats {
	s := Stats{
		Workers:         p.workers,
		Jobs:            p.jobCount.Load(),
		InlineRuns:      p.inlineCount.Load(),
		Chunks:          p.chunkCount.Load(),
		Steals:          p.stealCount.Load(),
		Parks:           p.parkCount.Load(),
		ChunksPerWorker: make([]int64, len(p.perWorker)),
	}
	for i := range p.perWorker {
		s.ChunksPerWorker[i] = p.perWorker[i].n.Load()
	}
	return s
}

var (
	defaultOnce sync.Once
	defaultPool *Pool
)

// Default returns the shared package-level pool, starting it on first use
// with DefaultWorkers background workers. It lives for the process.
func Default() *Pool {
	defaultOnce.Do(func() { defaultPool = NewPool(0) })
	return defaultPool
}

// OrDefault resolves an injectable pool option: p itself when non-nil, the
// shared Default pool otherwise.
func OrDefault(p *Pool) *Pool {
	if p != nil {
		return p
	}
	return Default()
}

// For runs fn over [0,total) on the shared Default pool. See Pool.For.
func For(total, workers, grain int, fn func(lo, hi int)) {
	Default().For(total, workers, grain, fn)
}

// ForEach runs fn for every element of items using For's scheduling.
func ForEach[T any](items []T, workers int, fn func(item T)) {
	For(len(items), workers, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(items[i])
		}
	})
}

// ForReduce folds fn over [0,total) in parallel on p (nil means the Default
// pool) and merges the per-chunk partial results with merge. Each chunk
// folds from identity; merge combines partials in ascending chunk order, so
// for a fixed (total, workers, grain) geometry the result is deterministic
// even under work stealing — non-associative effects (float rounding) vary
// only with the geometry, never with the schedule. With workers == 1 the
// whole fold runs inline as fn(0, total, identity).
func ForReduce[R any](p *Pool, total, workers, grain int, identity R, fn func(lo, hi int, acc R) R, merge func(a, b R) R) R {
	if total <= 0 {
		return identity
	}
	p = OrDefault(p)
	if workers <= 0 {
		workers = p.workers + 1
	}
	g, nChunks := grainFor(total, workers, grain)
	if workers == 1 || total <= g {
		p.inlineCount.Add(1)
		return fn(0, total, identity)
	}
	accs := make([]R, nChunks)
	p.run(total, workers, g, func(lo, hi, chunk int) {
		accs[chunk] = fn(lo, hi, identity)
	})
	out := identity
	for i := range accs {
		out = merge(out, accs[i])
	}
	return out
}

// ForSpawn is the pre-pool scheduler — fresh goroutines and a WaitGroup per
// call, one shared claim cursor — retained as the regression baseline for
// BenchmarkParFor. New code should use a Pool (or the package-level For).
func ForSpawn(total, workers, grain int, fn func(lo, hi int)) {
	if total <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	grain, nChunks := grainFor(total, workers, grain)
	if workers == 1 || total <= grain {
		fn(0, total)
		return
	}
	if workers > nChunks {
		workers = nChunks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nChunks {
					return
				}
				lo := c * grain
				hi := lo + grain
				if hi > total {
					hi = total
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}
