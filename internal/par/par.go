package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the worker count used when a caller passes workers <= 0.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// minGrain is the smallest chunk handed to a worker; chunks below this are
// not worth the scheduling overhead.
const minGrain = 64

// For runs fn over [0,total) split into dynamically scheduled chunks of
// roughly grain indices each, using the given number of workers. fn must be
// safe for concurrent invocation on disjoint ranges. With workers == 1 (or a
// tiny total) it runs inline, which keeps single-threaded runs deterministic
// and cheap.
func For(total, workers, grain int, fn func(lo, hi int)) {
	if total <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if grain <= 0 {
		grain = total / (workers * 8)
	}
	if grain < minGrain {
		grain = minGrain
	}
	if workers == 1 || total <= grain {
		fn(0, total)
		return
	}
	nChunks := (total + grain - 1) / grain
	if workers > nChunks {
		workers = nChunks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nChunks {
					return
				}
				lo := c * grain
				hi := lo + grain
				if hi > total {
					hi = total
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// ForEach runs fn for every element of items using For's scheduling.
func ForEach[T any](items []T, workers int, fn func(item T)) {
	For(len(items), workers, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(items[i])
		}
	})
}
