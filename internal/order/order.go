package order

import (
	"fmt"
	"sort"

	"github.com/glign/glign/internal/graph"
)

// Permutation maps old vertex ids to new ones: newID = perm[oldID]. A valid
// permutation is a bijection on [0, n).
type Permutation []graph.VertexID

// Validate checks bijectivity.
func (p Permutation) Validate() error {
	seen := make([]bool, len(p))
	for old, newID := range p {
		if int(newID) >= len(p) {
			return fmt.Errorf("order: vertex %d mapped out of range (%d)", old, newID)
		}
		if seen[newID] {
			return fmt.Errorf("order: id %d assigned twice", newID)
		}
		seen[newID] = true
	}
	return nil
}

// Inverse returns the inverse permutation (new id -> old id).
func (p Permutation) Inverse() Permutation {
	inv := make(Permutation, len(p))
	for old, newID := range p {
		inv[newID] = graph.VertexID(old)
	}
	return inv
}

// Relabel applies the permutation to g, returning a structurally identical
// graph with renumbered vertices. Query results transfer through the
// permutation: value of old vertex v lives at perm[v] in the new graph.
func Relabel(g *graph.Graph, perm Permutation) (*graph.Graph, error) {
	n := g.NumVertices()
	if len(perm) != n {
		return nil, fmt.Errorf("order: permutation length %d != n %d", len(perm), n)
	}
	if err := perm.Validate(); err != nil {
		return nil, err
	}
	b := graph.NewBuilder(n, g.Directed, g.Weighted())
	for v := 0; v < n; v++ {
		nbrs, ws := g.OutEdges(graph.VertexID(v))
		for i, d := range nbrs {
			w := graph.Weight(1)
			if ws != nil {
				w = ws[i]
			}
			if !g.Directed && perm[d] < perm[v] {
				continue // undirected arcs are re-added symmetric by Build
			}
			b.AddEdge(perm[v], perm[d], w)
		}
	}
	out, err := b.Build()
	if err != nil {
		return nil, err
	}
	out.Name = g.Name + "-reordered"
	return out, nil
}

// DegreeOrder returns the hub-sorting permutation: descending out-degree,
// ties by old id.
func DegreeOrder(g *graph.Graph) Permutation {
	n := g.NumVertices()
	ids := make([]graph.VertexID, n)
	for i := range ids {
		ids[i] = graph.VertexID(i)
	}
	sort.SliceStable(ids, func(a, b int) bool {
		return g.OutDegree(ids[a]) > g.OutDegree(ids[b])
	})
	perm := make(Permutation, n)
	for newID, old := range ids {
		perm[old] = graph.VertexID(newID)
	}
	return perm
}

// BFSOrder returns a traversal-order permutation: ids assigned in BFS
// discovery order from the highest-degree vertex (treating edges as
// undirected so every component is reached; unreached vertices keep their
// relative order at the end).
func BFSOrder(g *graph.Graph) Permutation {
	return bfsFrom(g, func(hub graph.VertexID) []graph.VertexID {
		return []graph.VertexID{hub}
	})
}

// HubClusterOrder places the top-k hubs first (clustering their state), then
// the rest of the graph in BFS order seeded from those hubs.
func HubClusterOrder(g *graph.Graph, k int) Permutation {
	return bfsFrom(g, func(graph.VertexID) []graph.VertexID {
		return g.TopOutDegreeVertices(k)
	})
}

// bfsFrom builds a BFS-order permutation with the given seed selection.
func bfsFrom(g *graph.Graph, seeds func(hub graph.VertexID) []graph.VertexID) Permutation {
	n := g.NumVertices()
	rev := g.Reverse()
	perm := make(Permutation, n)
	assigned := make([]bool, n)
	next := graph.VertexID(0)
	hub, _ := g.MaxOutDegree()

	queue := make([]graph.VertexID, 0, n)
	enqueue := func(v graph.VertexID) {
		if !assigned[v] {
			assigned[v] = true
			perm[v] = next
			next++
			queue = append(queue, v)
		}
	}
	for _, s := range seeds(hub) {
		enqueue(s)
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, d := range g.OutNeighbors(v) {
			enqueue(d)
		}
		for _, d := range rev.OutNeighbors(v) {
			enqueue(d)
		}
		// Restart from the next unassigned vertex when a component is
		// exhausted and the queue drains.
		if head == len(queue)-1 {
			for v := graph.VertexID(0); int(v) < n; v++ {
				if !assigned[v] {
					enqueue(v)
					break
				}
			}
		}
	}
	// Any stragglers (empty graph edge cases).
	for v := 0; v < n; v++ {
		if !assigned[graph.VertexID(v)] {
			perm[v] = next
			next++
		}
	}
	return perm
}
