package order

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/glign/glign/internal/engine"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/queries"
)

func orderings(g *graph.Graph) map[string]Permutation {
	return map[string]Permutation{
		"degree":     DegreeOrder(g),
		"bfs":        BFSOrder(g),
		"hubcluster": HubClusterOrder(g, 4),
	}
}

func TestPermutationsAreBijections(t *testing.T) {
	for _, g := range []*graph.Graph{graph.PaperExample(), graph.MustGenerate(graph.TW, graph.Tiny), graph.MustGenerate(graph.RDCA, graph.Tiny)} {
		for name, p := range orderings(g) {
			if err := p.Validate(); err != nil {
				t.Fatalf("%s/%s: %v", g.Name, name, err)
			}
			inv := p.Inverse()
			for v := range p {
				if inv[p[v]] != graph.VertexID(v) {
					t.Fatalf("%s/%s: inverse broken at %d", g.Name, name, v)
				}
			}
		}
	}
}

func TestDegreeOrderPutsHubsFirst(t *testing.T) {
	g := graph.MustGenerate(graph.TW, graph.Tiny)
	p := DegreeOrder(g)
	inv := p.Inverse()
	for newID := 1; newID < g.NumVertices(); newID++ {
		if g.OutDegree(inv[newID]) > g.OutDegree(inv[newID-1]) {
			t.Fatalf("degrees not descending at new id %d", newID)
		}
	}
}

func TestHubClusterOrderPlacesHubsAtFront(t *testing.T) {
	g := graph.MustGenerate(graph.TW, graph.Tiny)
	p := HubClusterOrder(g, 4)
	for i, h := range g.TopOutDegreeVertices(4) {
		if p[h] != graph.VertexID(i) {
			t.Fatalf("hub %d mapped to %d, want %d", h, p[h], i)
		}
	}
}

// Relabeling must preserve query semantics: results on the reordered graph,
// mapped back through the permutation, equal results on the original.
func TestRelabelPreservesQueryResults(t *testing.T) {
	for _, g := range []*graph.Graph{graph.PaperExample(), graph.MustGenerate(graph.LJ, graph.Tiny)} {
		for name, p := range orderings(g) {
			rg, err := Relabel(g, p)
			if err != nil {
				t.Fatalf("%s/%s: %v", g.Name, name, err)
			}
			if rg.NumEdges() != g.NumEdges() || rg.NumVertices() != g.NumVertices() {
				t.Fatalf("%s/%s: size changed", g.Name, name)
			}
			src := graph.VertexID(0)
			for _, k := range []queries.Kernel{queries.BFS, queries.SSSP} {
				orig := engine.ReferenceRun(g, queries.Query{Kernel: k, Source: src})
				re := engine.ReferenceRun(rg, queries.Query{Kernel: k, Source: p[src]})
				for v := 0; v < g.NumVertices(); v++ {
					if orig[v] != re[p[v]] {
						t.Fatalf("%s/%s/%s: value of v%d changed: %v vs %v",
							g.Name, name, k.Name(), v, orig[v], re[p[v]])
					}
				}
			}
		}
	}
}

func TestRelabelValidation(t *testing.T) {
	g := graph.PaperExample()
	if _, err := Relabel(g, Permutation{0, 1}); err == nil {
		t.Fatal("short permutation accepted")
	}
	bad := make(Permutation, 9)
	for i := range bad {
		bad[i] = 0 // not a bijection
	}
	if _, err := Relabel(g, bad); err == nil {
		t.Fatal("non-bijection accepted")
	}
	oob := make(Permutation, 9)
	for i := range oob {
		oob[i] = graph.VertexID(i)
	}
	oob[3] = 99
	if _, err := Relabel(g, oob); err == nil {
		t.Fatal("out-of-range permutation accepted")
	}
}

func TestBFSOrderCoversDisconnectedGraphs(t *testing.T) {
	// Two components; BFS order must still assign every vertex exactly once.
	b := graph.NewBuilder(6, true, false)
	b.AddEdge(0, 1, 0)
	b.AddEdge(4, 5, 0)
	g := b.MustBuild()
	for name, p := range orderings(g) {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestQuickRelabelRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		b := graph.NewBuilder(n, rng.Intn(2) == 0, true)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)),
				graph.Weight(1+rng.Intn(9)))
		}
		g := b.MustBuild()
		p := BFSOrder(g)
		rg, err := Relabel(g, p)
		if err != nil {
			return false
		}
		// Relabel back with the inverse: must reproduce the original CSR.
		back, err := Relabel(rg, p.Inverse())
		if err != nil {
			return false
		}
		if back.NumEdges() != g.NumEdges() {
			return false
		}
		for v := 0; v < n; v++ {
			a, c := g.OutNeighbors(graph.VertexID(v)), back.OutNeighbors(graph.VertexID(v))
			if len(a) != len(c) {
				return false
			}
			for i := range a {
				if a[i] != c[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
