// Package order implements graph reordering (vertex relabeling), the
// classic single-query locality technique the paper's related-work section
// contrasts with Glign's approach ("works aimed at improving memory
// locality for a single query evaluation ... must be combined with an
// approach like Glign"). Three orderings are provided:
//
//   - DegreeOrder: hub sorting — vertices relabeled by descending
//     out-degree, packing the hubs' values and adjacency together;
//   - BFSOrder: traversal order from the largest hub, giving neighboring
//     vertices nearby ids (an RCM-flavored layout);
//   - HubClusterOrder: hubs first, then remaining vertices in BFS order.
//
// The abl-order experiment measures how reordering composes with Glign's
// alignments on the simulated LLC.
package order
