package serve

import (
	"sync"
	"testing"
	"time"
)

func TestFakeClockAdvanceFiresInDeadlineOrder(t *testing.T) {
	clk := NewFakeClock(time.Unix(100, 0))
	t1 := clk.NewTimer(30 * time.Millisecond)
	t2 := clk.NewTimer(10 * time.Millisecond)
	t3 := clk.NewTimer(90 * time.Millisecond)

	clk.Advance(40 * time.Millisecond)
	// t2 (earlier deadline) and t1 fired; t3 still armed.
	got2 := <-t2.C()
	got1 := <-t1.C()
	if !got2.Before(got1) {
		t.Errorf("fire times out of order: t2=%v t1=%v", got2, got1)
	}
	select {
	case <-t3.C():
		t.Error("t3 fired before its deadline")
	default:
	}
	if clk.Armed() != 1 {
		t.Errorf("armed = %d, want 1", clk.Armed())
	}
	clk.Advance(50 * time.Millisecond)
	<-t3.C()
	if got := clk.Now(); !got.Equal(time.Unix(100, 0).Add(90 * time.Millisecond)) {
		t.Errorf("now = %v after both advances", got)
	}
}

func TestFakeClockStop(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	tm := clk.NewTimer(time.Second)
	if !tm.Stop() {
		t.Error("Stop on an armed timer = false")
	}
	if tm.Stop() {
		t.Error("second Stop = true")
	}
	clk.Advance(2 * time.Second)
	select {
	case <-tm.C():
		t.Error("stopped timer fired")
	default:
	}
	// A non-positive duration fires immediately and is never armed.
	im := clk.NewTimer(0)
	<-im.C()
	if im.Stop() {
		t.Error("Stop on an immediate timer = true")
	}
}

func TestFakeClockBlockUntil(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	var wg sync.WaitGroup
	wg.Add(1)
	released := make(chan struct{})
	go func() {
		defer wg.Done()
		clk.BlockUntil(2)
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("BlockUntil(2) returned with no timers armed")
	default:
	}
	clk.NewTimer(time.Second)
	clk.NewTimer(2 * time.Second)
	<-released
	wg.Wait()
}

func TestRealClockBasics(t *testing.T) {
	clk := RealClock()
	if clk.Now().IsZero() {
		t.Error("real clock reads zero time")
	}
	tm := clk.NewTimer(time.Hour)
	if !tm.Stop() {
		t.Error("Stop on a fresh real timer = false")
	}
}
