package serve

import (
	"sync"

	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/queries"
)

// cacheKey identifies a query result: production traffic is skewed and
// repetitive, so two submissions with the same kernel and source vertex are
// the same computation — on a static graph snapshot their fixed points are
// identical by construction.
type cacheKey struct {
	kernel string
	source graph.VertexID
}

func keyOf(q queries.Query) cacheKey {
	return cacheKey{kernel: q.Kernel.Name(), source: q.Source}
}

// cacheEntry is one cached result vector plus the epoch it was computed at
// and its position in the LRU list.
type cacheEntry struct {
	key        cacheKey
	values     []queries.Value
	epoch      int64
	prev, next *cacheEntry
}

// resultCache is the server's source+kernel-keyed result cache: a
// mutex-guarded LRU map whose entries carry the data epoch they were
// computed at. Invalidation is epoch-based and lazy — a lookup whose entry
// epoch disagrees with the server's current epoch drops the entry and
// misses, so BumpEpoch costs O(1) and stale results can never be served
// (SERVING.md documents the full contract). Cached value slices are shared
// with every waiter and must be treated as immutable.
type resultCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[cacheKey]*cacheEntry
	// head is the most recently used entry, tail the eviction candidate.
	head, tail *cacheEntry
}

// newResultCache returns an empty cache bounded to capacity entries
// (capacity must be positive; a disabled cache is a nil *resultCache).
func newResultCache(capacity int) *resultCache {
	return &resultCache{capacity: capacity, entries: make(map[cacheKey]*cacheEntry)}
}

// get looks key up under the given current epoch. ok reports a serveable
// hit; stale reports that an entry existed but carried a mismatched epoch
// and was dropped. On a hit the entry is promoted to most-recently-used and
// its values plus the epoch they were computed at are returned.
func (c *resultCache) get(key cacheKey, epoch int64) (vals []queries.Value, entryEpoch int64, ok, stale bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil {
		return nil, 0, false, false
	}
	if e.epoch != epoch {
		c.unlink(e)
		delete(c.entries, key)
		return nil, 0, false, true
	}
	c.unlink(e)
	c.pushFront(e)
	return e.values, e.epoch, true, false
}

// put installs (or refreshes) key's result for the given epoch, reporting
// whether the capacity bound evicted the least-recently-used entry.
func (c *resultCache) put(key cacheKey, vals []queries.Value, epoch int64) (evicted bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.entries[key]; e != nil {
		e.values, e.epoch = vals, epoch
		c.unlink(e)
		c.pushFront(e)
		return false
	}
	e := &cacheEntry{key: key, values: vals, epoch: epoch}
	c.entries[key] = e
	c.pushFront(e)
	if len(c.entries) > c.capacity {
		victim := c.tail
		c.unlink(victim)
		delete(c.entries, victim.key)
		return true
	}
	return false
}

// len returns the entry count; nil-safe so a disabled cache reads as empty.
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// unlink removes e from the LRU list (no-op if already unlinked).
func (c *resultCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most-recently-used entry.
func (c *resultCache) pushFront(e *cacheEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}
