package serve

import (
	"github.com/glign/glign/internal/queries"
	"github.com/glign/glign/internal/sched"
)

// Admission orderings for Config.AdmissionPolicy. The default (empty
// string) follows the method: methods whose batching policy is
// affinity-oriented rank their pending queue, FCFS methods keep arrival
// order.
const (
	// AdmissionFCFS dispatches the pending queue in arrival order even for
	// affinity methods (the policy still ranks within each flushed window).
	AdmissionFCFS = "fcfs"
	// AdmissionAffinity ranks the whole pending queue by estimated
	// heavy-iteration arrival (closestHV) whenever it exceeds one batch, so
	// affine queries land in the same evaluation batch instead of whichever
	// batch their arrival position dictated. Forces a profile build when the
	// method alone would not need one.
	AdmissionAffinity = "affinity"
)

// rankPendingLocked reorders the server's pending queue in place with the
// batching policy's closestHV ranking (sched.Affinity.Rank) and counts the
// displaced queries into admission_reorders. Must be called with s.mu held;
// the batcher invokes it exactly when the queue holds more than one batch,
// which is the only time ordering changes batch composition (a queue of at
// most one batch flushes together and the policy ranks within it anyway).
//
// Ranking is re-applied over the whole pending population on every
// oversized drain, so a freshly arrived query with a closer affinity to the
// forming batch can overtake older queries. SERVING.md documents the
// fairness consequences (and the deadline/shed pressure valves that bound
// them).
func (s *Server) rankPendingLocked() {
	qs := make([]queries.Query, len(s.queue))
	for i, sl := range s.queue {
		qs[i] = sl.query
	}
	idx := sched.Affinity{Profile: s.prof, Workers: s.cfg.Workers, Pool: s.cfg.Pool}.Rank(qs)
	ranked := make([]*slot, len(idx))
	displaced := 0
	for i, bi := range idx {
		if bi != i {
			displaced++
		}
		ranked[i] = s.queue[bi]
	}
	s.queue = ranked
	if displaced > 0 {
		s.stats.admissionReorders.Add(int64(displaced))
	}
}
