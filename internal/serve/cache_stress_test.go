package serve

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/glign/glign/internal/engine"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/queries"
)

// TestCacheEpochBumpStress hammers the cache with concurrent submissions
// while a dedicated goroutine bumps the epoch continuously. The invariant
// under test is freshness: a ticket's result must carry an epoch at least as
// new as the epoch observed before its submission — a bump that lands while
// a batch is in flight must never let a pre-bump cache entry (or a pre-bump
// in-flight slot) answer a post-bump submission. Values are additionally
// checked against the serial reference on every completion, and the
// submission ledger must balance exactly at the end.
//
// The server runs with BatchSize 1 on a fake clock, so every admission
// flushes by size and the window timer never participates — no timing
// dependence, just raw interleaving for the race detector to explore.
func TestCacheEpochBumpStress(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	s := startServer(t, clk, func(c *Config) {
		c.BatchSize = 1
		c.Window = time.Hour
		c.QueueCapacity = 4096
	})
	g := testGraph()

	// Reference fixed points, precomputed once per (kernel, source).
	kernels := []queries.Kernel{queries.BFS, queries.SSSP}
	want := make(map[cacheKey][]queries.Value)
	for _, k := range kernels {
		for v := 0; v < g.NumVertices(); v++ {
			q := queries.Query{Kernel: k, Source: graph.VertexID(v)}
			want[keyOf(q)] = engine.ReferenceRun(g, q)
		}
	}

	const workers = 4
	const opsPerWorker = 64
	stopBumper := make(chan struct{})
	var bumper sync.WaitGroup
	bumper.Add(1)
	go func() {
		defer bumper.Done()
		for {
			select {
			case <-stopBumper:
				return
			default:
				s.BumpEpoch()
				runtime.Gosched()
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < opsPerWorker; i++ {
				q := queries.Query{
					Kernel: kernels[(w+i)%len(kernels)],
					Source: graph.VertexID((w*7 + i*3) % g.NumVertices()),
				}
				ePre := s.Epoch()
				tk, err := s.Submit(ctx, q)
				if err != nil {
					t.Errorf("worker %d op %d: submit: %v", w, i, err)
					return
				}
				vals, err := tk.Wait(ctx)
				if err != nil {
					t.Errorf("worker %d op %d: wait: %v", w, i, err)
					return
				}
				if e := tk.ResultEpoch(); e < ePre {
					t.Errorf("worker %d op %d: stale result: epoch %d < %d observed before submit", w, i, e, ePre)
					return
				}
				ref := want[keyOf(q)]
				for v := range ref {
					if vals[v] != ref[v] {
						t.Errorf("worker %d op %d: vertex %d = %v, want %v", w, i, v, vals[v], ref[v])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopBumper)
	bumper.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	const total = workers * opsPerWorker
	if st.Submitted != total {
		t.Errorf("submitted = %d, want %d", st.Submitted, total)
	}
	if st.Completed != total {
		t.Errorf("completed = %d, want %d (every ticket answered)", st.Completed, total)
	}
	accounted := st.Admitted + st.RejectedFull + st.RejectedClosed + st.CacheHits + st.DedupCoalesced
	if st.Submitted != accounted {
		t.Errorf("ledger: submitted=%d != admitted(%d)+rejected(%d+%d)+hits(%d)+coalesced(%d)",
			st.Submitted, st.Admitted, st.RejectedFull, st.RejectedClosed, st.CacheHits, st.DedupCoalesced)
	}
	if st.RejectedFull != 0 || st.RejectedClosed != 0 || st.Shed != 0 {
		t.Errorf("unexpected rejections under capacity 4096: %+v", st)
	}
}
