// Package serve is the live query-serving loop: a long-lived Server accepts
// vertex-specific queries onto a bounded admission queue, forms evaluation
// batches with a time-and-size window (size cap |B|, window timer), executes
// each batch on a configurable core engine over the shared work-stealing
// pool, and completes per-query tickets with the result vectors. It is the
// online counterpart of internal/systems, which replays pre-materialized
// buffers offline.
//
// Robustness semantics: admission is bounded (Submit returns ErrQueueFull
// when the admitted-but-undispatched population reaches the configured
// capacity), queued queries honor per-query deadlines and context
// cancellation (checked at batch-formation time), and Shutdown/Close stop
// admission immediately while draining everything already admitted —
// in-flight batches finish and queued queries are batched and executed, so
// an admitted query always gets an answer.
//
// Every time source flows through the Clock interface, so the test harness
// drives window expiry, deadline misses, and drain ordering deterministically
// with a FakeClock (Advance + BlockUntil) — no wall-clock sleeps anywhere in
// the serve test suite.
package serve
