// Package serve is the live query-serving loop: a long-lived Server accepts
// vertex-specific queries onto a bounded admission queue, forms evaluation
// batches with a time-and-size window (size cap |B|, window timer), executes
// each batch on a configurable core engine over the shared work-stealing
// pool, and completes per-query tickets with the result vectors. It is the
// online counterpart of internal/systems, which replays pre-materialized
// buffers offline. SERVING.md is the full serving contract.
//
// On top of the batching loop the Server is a traffic-shaping front end:
//
//   - a source+kernel-keyed result cache with epoch-based invalidation —
//     entries carry the data epoch they were computed at and are dropped on
//     lookup when the epoch has moved (BumpEpoch is the mutation hook), so a
//     repeated query is answered without touching the engine and a stale
//     result is never served;
//   - in-flight deduplication — identical pending queries coalesce onto one
//     batch slot and the single execution fans its result out to every
//     waiter;
//   - affinity-aware admission — when the pending queue exceeds one batch,
//     it is re-ranked with the batching policy's heavy-iteration-arrival
//     estimate (sched.Affinity.Rank) instead of arrival order, so affine
//     queries land in the same evaluation batch;
//   - load-shedding with priority tiers — at capacity an arriving query
//     sheds the newest queued query of a strictly lower tier (shed-low-first)
//     instead of being rejected outright.
//
// Robustness semantics: admission is bounded (Submit returns ErrQueueFull
// when the admitted-but-undispatched population reaches the configured
// capacity and nothing lower-tier is sheddable), queued queries honor
// per-query deadlines and context cancellation (checked per ticket at
// batch-formation time, so one coalesced waiter's cancel never suppresses
// the computation its peers are owed), and Shutdown/Close stop admission
// immediately while draining everything already admitted — in-flight
// batches finish and queued queries are batched and executed, so an
// admitted query always gets an answer.
//
// Every time source flows through the Clock interface, so the test harness
// drives window expiry, deadline misses, and drain ordering deterministically
// with a FakeClock (Advance + BlockUntil) — no wall-clock sleeps anywhere in
// the serve test suite.
package serve
