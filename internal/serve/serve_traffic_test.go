package serve

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/glign/glign/internal/align"
	"github.com/glign/glign/internal/core"
	"github.com/glign/glign/internal/engine"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/queries"
	"github.com/glign/glign/internal/systems"
	"github.com/glign/glign/internal/telemetry"
)

// The traffic-shaping suite pins the four PR-6 behaviors — result cache with
// epoch invalidation, in-flight dedup, affinity-aware admission, tiered
// load-shedding — on the same deterministic FakeClock harness as the base
// serving suite: every rendezvous is a channel wait, a BlockUntil handshake,
// or a spin on a monotone counter, never a sleep.

// srcGate blocks every batch at entry until it receives a release token,
// reporting the batch's source vertices in execution order — the fixture the
// admission and shedding tests use to read batch composition while holding
// the executor busy. Close release to let every remaining batch through.
type srcGate struct {
	entered chan []graph.VertexID
	release chan struct{}
	inner   core.Engine
}

func newSrcGate() *srcGate {
	return &srcGate{
		entered: make(chan []graph.VertexID, 64),
		release: make(chan struct{}),
		inner:   core.LigraS,
	}
}

func (e *srcGate) Name() string { return "srcgate" }

func (e *srcGate) Run(g *graph.Graph, batch []queries.Query, opt core.Options) (*core.BatchResult, error) {
	srcs := make([]graph.VertexID, len(batch))
	for i, q := range batch {
		srcs[i] = q.Source
	}
	e.entered <- srcs
	<-e.release
	return e.inner.Run(g, batch, opt)
}

// spinUntil busy-waits (yielding) for a monotone server-side condition — the
// deterministic replacement for sleeping when the awaited event has no
// channel (e.g. the batcher completing a releasePending after a handoff).
func spinUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 1_000_000_000; i++ {
		if cond() {
			return
		}
		runtime.Gosched()
	}
	t.Fatalf("spinUntil(%s): condition never held", what)
}

// TestCacheHitSkipsExecution pins the result-cache contract: a repeated
// (kernel, source) is answered from the cache without forming a batch, a
// BumpEpoch invalidates the entry so the next submission recomputes, and
// every ticket reports the epoch its values were computed at.
func TestCacheHitSkipsExecution(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	s := startServer(t, clk, func(c *Config) {
		c.BatchSize = 1 // every admission flushes by size, no clock movement
		c.Window = time.Hour
	})
	g := testGraph()
	q := queries.Query{Kernel: queries.SSSP, Source: 2}

	t1, err := s.Submit(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	mustValues(t, g, t1)
	if e := t1.ResultEpoch(); e != 0 {
		t.Fatalf("first result epoch = %d, want 0", e)
	}

	// Identical query: served from cache, no new batch.
	t2, err := s.Submit(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	mustValues(t, g, t2)
	if e := t2.ResultEpoch(); e != 0 {
		t.Fatalf("cached result epoch = %d, want 0", e)
	}
	if st := s.Stats(); st.Batches != 1 || st.CacheHits != 1 || st.CacheSize != 1 {
		t.Fatalf("stats after hit = %+v, want batches=1 cache_hits=1 cache_size=1", st)
	}

	// Epoch bump: the cached entry is stale, the next submission recomputes.
	if e := s.BumpEpoch(); e != 1 || s.Epoch() != 1 {
		t.Fatalf("BumpEpoch = %d (Epoch %d), want 1", e, s.Epoch())
	}
	t3, err := s.Submit(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	mustValues(t, g, t3)
	if e := t3.ResultEpoch(); e != 1 {
		t.Fatalf("post-bump result epoch = %d, want 1", e)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Batches != 2 || st.CacheHits != 1 || st.CacheMisses != 2 || st.CacheInvalidations != 1 {
		t.Errorf("stats = %+v, want batches=2 cache_hits=1 cache_misses=2 cache_invalidations=1", st)
	}
	if st.Epoch != 1 || st.CacheSize != 1 || st.Completed != 3 {
		t.Errorf("stats = %+v, want epoch=1 cache_size=1 completed=3", st)
	}
}

// TestDedupCoalescesIdentical holds one query's batch inside the gate and
// submits the same query twice more: both must coalesce onto the in-flight
// slot (no extra admission, no extra batch) and all three tickets must
// complete with the one execution's values.
func TestDedupCoalescesIdentical(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	gate := newSrcGate()
	s := startServer(t, clk, func(c *Config) {
		c.BatchSize = 1
		c.Window = time.Hour
		c.Engine = gate
	})
	g := testGraph()
	q := queries.Query{Kernel: queries.BFS, Source: 3}

	t1, err := s.Submit(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	<-gate.entered // t1's batch is executing (held at the gate)
	t2, err := s.Submit(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	t3, err := s.Submit(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	close(gate.release)
	for _, tk := range []*Ticket{t1, t2, t3} {
		mustValues(t, g, tk)
		if e := tk.ResultEpoch(); e != 0 {
			t.Errorf("coalesced ticket epoch = %d, want 0", e)
		}
	}
	// A fourth identical submission after completion hits the cache.
	t4, err := s.Submit(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	mustValues(t, g, t4)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Batches != 1 || st.DedupCoalesced != 2 || st.Admitted != 1 {
		t.Errorf("stats = %+v, want batches=1 dedup_coalesced=2 admitted=1", st)
	}
	if st.Completed != 4 || st.CacheHits != 1 {
		t.Errorf("stats = %+v, want completed=4 cache_hits=1", st)
	}
}

// TestAffinityAdmissionReorders proves admission ranking changes batch
// composition: with the executor held busy and four queries from two
// affinity classes queued interleaved (A B A B), the affinity method must
// dispatch them as [A A] then [B B] — closestHV order — not arrival order.
func TestAffinityAdmissionReorders(t *testing.T) {
	g := testGraph()
	prof := align.NewProfile(g, align.DefaultHubCount, 0)
	// Affinity classes on the paper graph: sources 0 and 1 share a low
	// arrival estimate, 4 and 5 a higher one. Guard the fixture so a profile
	// change fails loudly instead of making the assertions vacuous.
	a0, a1 := prof.ArrivalEstimate(0), prof.ArrivalEstimate(1)
	b0, b1 := prof.ArrivalEstimate(4), prof.ArrivalEstimate(5)
	if a0 != a1 || b0 != b1 || a0 >= b0 {
		t.Fatalf("fixture: estimates (0,1)=(%d,%d) (4,5)=(%d,%d), want two distinct classes", a0, a1, b0, b1)
	}

	clk := NewFakeClock(time.Unix(0, 0))
	gate := newSrcGate()
	s := startServer(t, clk, func(c *Config) {
		c.Method = systems.GlignBatch // affinity policy, unaligned engine
		c.BatchSize = 2
		c.Window = time.Hour
		c.Profile = prof
		c.Engine = gate
	})
	ctx := context.Background()
	q := func(src int) queries.Query { return queries.Query{Kernel: queries.SSSP, Source: graph.VertexID(src)} }

	// Warmup pair 1 occupies the executor; warmup pair 2 occupies the
	// batcher (blocked handing its batch off). Only then do the four test
	// queries pile up in the shared queue where admission ranking sees them
	// all at once.
	for _, src := range []int{7, 8} {
		if _, err := s.Submit(ctx, q(src)); err != nil {
			t.Fatal(err)
		}
	}
	if srcs := <-gate.entered; len(srcs) != 2 {
		t.Fatalf("warmup batch = %v, want size 2", srcs)
	}
	for _, src := range []int{2, 3} {
		if _, err := s.Submit(ctx, q(src)); err != nil {
			t.Fatal(err)
		}
	}
	// The second size flush is counted at flush entry, before the blocking
	// handoff — once visible, the queue is empty and the batcher is parked.
	spinUntil(t, "warmup batch 2 taken", func() bool { return s.Stats().SizeFlushes == 2 })

	var tickets []*Ticket
	for _, src := range []int{0, 4, 1, 5} { // A B A B arrival order
		tk, err := s.Submit(ctx, q(src))
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}

	gate.release <- struct{}{} // finish warmup 1; executor picks up warmup 2
	if srcs := <-gate.entered; len(srcs) != 2 {
		t.Fatalf("warmup batch 2 = %v, want size 2", srcs)
	}
	gate.release <- struct{}{} // finish warmup 2; executor picks up test batch 1
	batchA := <-gate.entered
	gate.release <- struct{}{}
	batchB := <-gate.entered
	gate.release <- struct{}{}

	asSet := func(srcs []graph.VertexID) map[graph.VertexID]bool {
		m := make(map[graph.VertexID]bool, len(srcs))
		for _, v := range srcs {
			m[v] = true
		}
		return m
	}
	if sa := asSet(batchA); len(batchA) != 2 || !sa[0] || !sa[1] {
		t.Errorf("first ranked batch = %v, want {0 1} (class A)", batchA)
	}
	if sb := asSet(batchB); len(batchB) != 2 || !sb[4] || !sb[5] {
		t.Errorf("second ranked batch = %v, want {4 5} (class B)", batchB)
	}
	for _, tk := range tickets {
		mustValues(t, g, tk)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Ranking [0 4 1 5] -> [0 1 4 5] displaces exactly the middle two.
	if st := s.Stats(); st.AdmissionReorders != 2 {
		t.Errorf("admission_reorders = %d, want 2", st.AdmissionReorders)
	}
}

// TestFCFSAdmissionKeepsArrivalOrder is the control for the reorder test:
// the same interleaved arrivals under AdmissionFCFS dispatch in arrival
// order with zero reorders, even though the method's policy is affinity.
func TestFCFSAdmissionKeepsArrivalOrder(t *testing.T) {
	g := testGraph()
	clk := NewFakeClock(time.Unix(0, 0))
	gate := newSrcGate()
	s := startServer(t, clk, func(c *Config) {
		c.Method = systems.GlignBatch
		c.BatchSize = 2
		c.Window = time.Hour
		c.AdmissionPolicy = AdmissionFCFS
		c.Engine = gate
	})
	ctx := context.Background()
	q := func(src int) queries.Query { return queries.Query{Kernel: queries.SSSP, Source: graph.VertexID(src)} }

	for _, src := range []int{7, 8} {
		if _, err := s.Submit(ctx, q(src)); err != nil {
			t.Fatal(err)
		}
	}
	<-gate.entered
	for _, src := range []int{2, 3} {
		if _, err := s.Submit(ctx, q(src)); err != nil {
			t.Fatal(err)
		}
	}
	spinUntil(t, "warmup batch 2 taken", func() bool { return s.Stats().SizeFlushes == 2 })
	var tickets []*Ticket
	for _, src := range []int{0, 4, 1, 5} {
		tk, err := s.Submit(ctx, q(src))
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	gate.release <- struct{}{}
	<-gate.entered
	gate.release <- struct{}{}
	// FCFS admission takes the arrival prefix [0 4]; the affinity policy
	// still ranks within the take, so composition (not order) is asserted.
	batch1 := <-gate.entered
	gate.release <- struct{}{}
	batch2 := <-gate.entered
	gate.release <- struct{}{}
	has := func(srcs []graph.VertexID, want ...graph.VertexID) bool {
		if len(srcs) != len(want) {
			return false
		}
		m := map[graph.VertexID]bool{}
		for _, v := range srcs {
			m[v] = true
		}
		for _, w := range want {
			if !m[w] {
				return false
			}
		}
		return true
	}
	if !has(batch1, 0, 4) || !has(batch2, 1, 5) {
		t.Errorf("FCFS admission batches = %v, %v, want {0 4} then {1 5}", batch1, batch2)
	}
	for _, tk := range tickets {
		mustValues(t, g, tk)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.AdmissionReorders != 0 {
		t.Errorf("admission_reorders = %d, want 0 under FCFS admission", st.AdmissionReorders)
	}
}

// TestShedLowTierFirst pins the overload policy: at capacity, a high-tier
// arrival sheds the newest queued low-tier query (never an older one, never
// a normal-tier one while a low is available), a low-tier arrival at
// capacity is rejected outright, and every shed ticket completes with
// ErrShed while everything else still executes.
func TestShedLowTierFirst(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	gate := newSrcGate()
	s := startServer(t, clk, func(c *Config) {
		c.BatchSize = 1
		c.Window = time.Hour
		c.QueueCapacity = 4
		c.Engine = gate
	})
	g := testGraph()
	ctx := context.Background()
	sub := func(src int, tier Tier) (*Ticket, error) {
		return s.SubmitWith(ctx, queries.Query{Kernel: queries.SSSP, Source: graph.VertexID(src)}, SubmitOptions{Tier: tier})
	}

	// n0 executes (held at the gate); wait for its slot to leave the
	// admission population so the capacity arithmetic below is exact.
	n0, err := sub(0, TierNormal)
	if err != nil {
		t.Fatal(err)
	}
	<-gate.entered
	spinUntil(t, "n0 dispatched", func() bool { return s.Stats().QueueDepth == 0 })

	// Fill to capacity: l1 l2 l3 n1 (pending = 4).
	l1, err := sub(1, TierLow)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := sub(2, TierLow)
	if err != nil {
		t.Fatal(err)
	}
	l3, err := sub(3, TierLow)
	if err != nil {
		t.Fatal(err)
	}
	n1, err := sub(4, TierNormal)
	if err != nil {
		t.Fatal(err)
	}
	if tk := l3; tk.Tier() != TierLow {
		t.Fatalf("ticket tier = %v, want low", tk.Tier())
	}

	// High arrival at capacity: the newest low (l3) is sacrificed — not l1
	// or l2 (older lows), not n1 (higher tier).
	h1, err := sub(5, TierHigh)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l3.Wait(ctx); !errors.Is(err, ErrShed) {
		t.Fatalf("shed victim: err = %v, want ErrShed", err)
	}
	// Low arrival at capacity: nothing strictly below low — rejected.
	if _, err := sub(6, TierLow); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("low at capacity: err = %v, want ErrQueueFull", err)
	}

	close(gate.release)
	for _, tk := range []*Ticket{n0, l1, l2, n1, h1} {
		mustValues(t, g, tk)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Shed != 1 || len(st.ShedByTier) != NumTiers || st.ShedByTier[0] != 1 || st.ShedByTier[1] != 0 || st.ShedByTier[2] != 0 {
		t.Errorf("shed stats = shed=%d by_tier=%v, want 1 shed attributed to low", st.Shed, st.ShedByTier)
	}
	if st.RejectedFull != 1 || st.Completed != 5 {
		t.Errorf("stats = %+v, want rejected_full=1 completed=5", st)
	}
}

// TestTierCapacityBound pins the per-tier admission bound: with a low-tier
// bound of 1, a second queued low is rejected with ErrQueueFull even though
// global capacity remains.
func TestTierCapacityBound(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	gate := newSrcGate()
	s := startServer(t, clk, func(c *Config) {
		c.BatchSize = 4
		c.Window = time.Hour
		c.QueueCapacity = 8
		c.TierCapacities[tierIndex(TierLow)] = 1
		c.Engine = gate
	})
	ctx := context.Background()
	sub := func(src int, tier Tier) (*Ticket, error) {
		return s.SubmitWith(ctx, queries.Query{Kernel: queries.BFS, Source: graph.VertexID(src)}, SubmitOptions{Tier: tier})
	}
	if _, err := sub(0, TierLow); err != nil {
		t.Fatal(err)
	}
	if _, err := sub(1, TierLow); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("second low: err = %v, want ErrQueueFull (tier bound 1)", err)
	}
	if _, err := sub(2, TierNormal); err != nil {
		t.Fatalf("normal blocked by low tier bound: %v", err)
	}
	close(gate.release)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDedupTierPromotion pins that a high-tier joiner promotes its coalesced
// slot: the promoted slot stops being sheddable by a later normal arrival.
func TestDedupTierPromotion(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	gate := newSrcGate()
	s := startServer(t, clk, func(c *Config) {
		c.BatchSize = 4 // nothing flushes by size; queue holds everything
		c.Window = time.Hour
		c.QueueCapacity = 1
		c.Engine = gate
	})
	g := testGraph()
	ctx := context.Background()
	q := queries.Query{Kernel: queries.BFS, Source: 6}

	low, err := s.SubmitWith(ctx, q, SubmitOptions{Tier: TierLow})
	if err != nil {
		t.Fatal(err)
	}
	// A high-tier duplicate coalesces (capacity is full, but joins are free)
	// and promotes the slot to high.
	high, err := s.SubmitWith(ctx, q, SubmitOptions{Tier: TierHigh})
	if err != nil {
		t.Fatal(err)
	}
	// A normal arrival at capacity can no longer shed the promoted slot.
	if _, err := s.Submit(ctx, queries.Query{Kernel: queries.BFS, Source: 7}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("normal vs promoted slot: err = %v, want ErrQueueFull", err)
	}
	// Drain: the window never fires; Close's drain flushes the slot.
	go func() { close(gate.release) }()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	mustValues(t, g, low)
	mustValues(t, g, high)
	if st := s.Stats(); st.DedupCoalesced != 1 || st.Shed != 0 || st.RejectedFull != 1 {
		t.Errorf("stats = %+v, want dedup_coalesced=1 shed=0 rejected_full=1", st)
	}
}

// TestServeEndToEndSession is the scripted whole-contract session: populate,
// cache-hit, coalesce, invalidate, shed — one server, every phase asserted,
// and the final telemetry snapshot archived as JSON when
// GLIGN_SERVE_TELEMETRY_OUT is set (verify.sh points it under results/).
func TestServeEndToEndSession(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	gate := newSrcGate()
	tel := telemetry.NewCollector()
	s := startServer(t, clk, func(c *Config) {
		c.BatchSize = 2
		c.Window = 50 * time.Millisecond
		c.QueueCapacity = 4
		c.Telemetry = tel
		c.Engine = gate
	})
	g := testGraph()
	ctx := context.Background()
	sssp := func(src int) queries.Query { return queries.Query{Kernel: queries.SSSP, Source: graph.VertexID(src)} }
	bfs := func(src int) queries.Query { return queries.Query{Kernel: queries.BFS, Source: graph.VertexID(src)} }

	// Phase 1 — populate: four distinct queries, two size batches.
	var warm []*Ticket
	for _, src := range []int{0, 1} {
		tk, err := s.Submit(ctx, sssp(src))
		if err != nil {
			t.Fatal(err)
		}
		warm = append(warm, tk)
	}
	<-gate.entered
	gate.release <- struct{}{}
	for _, src := range []int{2, 3} {
		tk, err := s.Submit(ctx, sssp(src))
		if err != nil {
			t.Fatal(err)
		}
		warm = append(warm, tk)
	}
	<-gate.entered
	gate.release <- struct{}{}
	for _, tk := range warm {
		mustValues(t, g, tk)
	}
	if st := s.Stats(); st.Batches != 2 || st.CacheSize != 4 {
		t.Fatalf("phase 1 stats = %+v, want batches=2 cache_size=4", st)
	}

	// Phase 2 — cache: three repeats complete instantly, no new batch.
	for _, src := range []int{0, 1, 2} {
		tk, err := s.Submit(ctx, sssp(src))
		if err != nil {
			t.Fatal(err)
		}
		mustValues(t, g, tk)
		if e := tk.ResultEpoch(); e != 0 {
			t.Fatalf("phase 2 epoch = %d, want 0", e)
		}
	}
	if st := s.Stats(); st.CacheHits != 3 || st.Batches != 2 {
		t.Fatalf("phase 2 stats = %+v, want cache_hits=3 batches=2", st)
	}

	// Phase 3 — dedup: the same new query twice coalesces to one slot; the
	// half-full buffer needs the window timer to flush.
	d1, err := s.Submit(ctx, sssp(4))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := s.Submit(ctx, sssp(4))
	if err != nil {
		t.Fatal(err)
	}
	clk.BlockUntil(1)
	clk.Advance(50 * time.Millisecond)
	if srcs := <-gate.entered; len(srcs) != 1 || srcs[0] != 4 {
		t.Fatalf("phase 3 batch = %v, want [4]", srcs)
	}
	gate.release <- struct{}{}
	mustValues(t, g, d1)
	mustValues(t, g, d2)
	if st := s.Stats(); st.DedupCoalesced != 1 || st.Batches != 3 {
		t.Fatalf("phase 3 stats = %+v, want dedup_coalesced=1 batches=3", st)
	}

	// Phase 4 — invalidation: bump the epoch, a previously cached query
	// recomputes and reports the new epoch.
	if e := s.BumpEpoch(); e != 1 {
		t.Fatalf("BumpEpoch = %d, want 1", e)
	}
	r1, err := s.Submit(ctx, sssp(0))
	if err != nil {
		t.Fatal(err)
	}
	clk.BlockUntil(1)
	clk.Advance(50 * time.Millisecond)
	if srcs := <-gate.entered; len(srcs) != 1 || srcs[0] != 0 {
		t.Fatalf("phase 4 batch = %v, want [0]", srcs)
	}
	gate.release <- struct{}{}
	mustValues(t, g, r1)
	if e := r1.ResultEpoch(); e != 1 {
		t.Fatalf("phase 4 epoch = %d, want 1", e)
	}
	if st := s.Stats(); st.CacheInvalidations != 1 || st.Epoch != 1 {
		t.Fatalf("phase 4 stats = %+v, want cache_invalidations=1 epoch=1", st)
	}

	// Phase 5 — shedding: hold the executor and the batcher (one batch at
	// the gate, one blocked in handoff), fill the queue, then let a high
	// arrival shed the newest low.
	var busy []*Ticket
	for _, src := range []int{5, 6} {
		tk, err := s.Submit(ctx, bfs(src))
		if err != nil {
			t.Fatal(err)
		}
		busy = append(busy, tk)
	}
	<-gate.entered // BFS{5,6} executing, gate held
	spinUntil(t, "busy batch dispatched", func() bool { return s.Stats().QueueDepth == 0 })
	for _, src := range []int{7, 8} {
		tk, err := s.Submit(ctx, bfs(src))
		if err != nil {
			t.Fatal(err)
		}
		busy = append(busy, tk)
	}
	sizeFlushesBefore := s.Stats().SizeFlushes
	spinUntil(t, "handoff batch taken", func() bool { return s.Stats().SizeFlushes > sizeFlushesBefore })

	lowA, err := s.SubmitWith(ctx, bfs(0), SubmitOptions{Tier: TierLow})
	if err != nil {
		t.Fatal(err)
	}
	lowB, err := s.SubmitWith(ctx, bfs(1), SubmitOptions{Tier: TierLow})
	if err != nil {
		t.Fatal(err)
	}
	highT, err := s.SubmitWith(ctx, bfs(2), SubmitOptions{Tier: TierHigh})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lowB.Wait(ctx); !errors.Is(err, ErrShed) {
		t.Fatalf("phase 5 victim: err = %v, want ErrShed", err)
	}
	if _, err := s.SubmitWith(ctx, bfs(3), SubmitOptions{Tier: TierLow}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("phase 5 low at capacity: err = %v, want ErrQueueFull", err)
	}
	close(gate.release)
	busy = append(busy, lowA, highT)
	for _, tk := range busy {
		mustValues(t, g, tk)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.Shed != 1 || st.ShedByTier[0] != 1 || st.RejectedFull != 1 {
		t.Errorf("phase 5 stats = %+v, want shed=1 (low) rejected_full=1", st)
	}
	// Ledger: every submission is accounted exactly once.
	accounted := st.Admitted + st.RejectedFull + st.RejectedClosed + st.CacheHits + st.DedupCoalesced
	if st.Submitted != accounted {
		t.Errorf("ledger: submitted=%d != admitted+rejected+hits+coalesced=%d", st.Submitted, accounted)
	}
	snap := tel.Snapshot()
	if snap.Serving == nil || snap.Serving.CacheHits != 3 {
		t.Errorf("telemetry serving section = %+v, want cache_hits=3", snap.Serving)
	}
	if out := os.Getenv("GLIGN_SERVE_TELEMETRY_OUT"); out != "" {
		raw, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			t.Fatalf("marshal telemetry: %v", err)
		}
		if err := os.WriteFile(out, raw, 0o644); err != nil {
			t.Fatalf("write %s: %v", out, err)
		}
	}
}

// TestServedEqualsOfflineWithCache is the in-package cached-replay
// differential: the same buffer submitted twice must return byte-identical
// value vectors on the cached pass, with zero additional engine batches.
func TestServedEqualsOfflineWithCache(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	s := startServer(t, clk, func(c *Config) {
		c.Method = systems.Glign
		c.BatchSize = 3
		c.Window = time.Hour
	})
	g := testGraph()
	ctx := context.Background()
	buf := make([]queries.Query, 6)
	for i := range buf {
		buf[i] = queries.Query{Kernel: queries.SSWP, Source: graph.VertexID(i)}
	}
	pass := func(label string) [][]queries.Value {
		tks := make([]*Ticket, len(buf))
		for i, q := range buf {
			tk, err := s.Submit(ctx, q)
			if err != nil {
				t.Fatalf("%s submit %d: %v", label, i, err)
			}
			tks[i] = tk
		}
		out := make([][]queries.Value, len(buf))
		for i, tk := range tks {
			vals, err := tk.Wait(ctx)
			if err != nil {
				t.Fatalf("%s query %d: %v", label, i, err)
			}
			out[i] = vals
		}
		return out
	}
	pass1 := pass("pass 1")
	batchesAfter1 := s.Stats().Batches
	pass2 := pass("pass 2 (cached)")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Batches != batchesAfter1 {
		t.Errorf("cached pass ran %d extra batches", st.Batches-batchesAfter1)
	}
	if st.CacheHits != int64(len(buf)) {
		t.Errorf("cache_hits = %d, want %d", st.CacheHits, len(buf))
	}
	for i := range buf {
		want := engine.ReferenceRun(g, buf[i])
		for v := range want {
			if pass1[i][v] != want[v] {
				t.Fatalf("pass 1 query %d vertex %d = %v, want %v", i, v, pass1[i][v], want[v])
			}
			if pass2[i][v] != pass1[i][v] {
				t.Fatalf("cached query %d vertex %d = %v, differs from computed %v", i, v, pass2[i][v], pass1[i][v])
			}
		}
	}
}
