package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/glign/glign/internal/core"
	"github.com/glign/glign/internal/engine"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/queries"
	"github.com/glign/glign/internal/systems"
	"github.com/glign/glign/internal/telemetry"
)

// The end-to-end serve suite runs entirely on the fake clock: every
// rendezvous is a channel wait (ticket completion, gate-engine entry) or a
// FakeClock.BlockUntil handshake — there is no time.Sleep anywhere, so the
// tests are deterministic under -race and arbitrary scheduling.

// testGraph is the 9-vertex paper example — tiny, fixed, and connected
// enough for every kernel.
func testGraph() *graph.Graph { return graph.PaperExample() }

// startServer builds a server on the fake clock with test-friendly
// defaults, overridable via mutate.
func startServer(t *testing.T, clk Clock, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		Method:        systems.LigraS,
		BatchSize:     4,
		Window:        50 * time.Millisecond,
		QueueCapacity: 64,
		Workers:       2,
		Clock:         clk,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(testGraph(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// mustValues waits for a ticket and checks its result against the serial
// reference.
func mustValues(t *testing.T, g *graph.Graph, tk *Ticket) {
	t.Helper()
	vals, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatalf("ticket %v: %v", tk.Query(), err)
	}
	want := engine.ReferenceRun(g, tk.Query())
	for v := range want {
		if vals[v] != want[v] {
			t.Fatalf("ticket %v: vertex %d = %v, want %v", tk.Query(), v, vals[v], want[v])
		}
	}
}

// gateEngine blocks every batch at entry until released, making executor
// occupancy a deterministic test fixture. entered receives each batch's
// size at entry, in execution order.
type gateEngine struct {
	entered chan int
	release chan struct{}
	inner   core.Engine
}

func newGateEngine() *gateEngine {
	return &gateEngine{
		entered: make(chan int, 64),
		release: make(chan struct{}),
		inner:   core.LigraS,
	}
}

func (e *gateEngine) Name() string { return "gate" }

func (e *gateEngine) Run(g *graph.Graph, batch []queries.Query, opt core.Options) (*core.BatchResult, error) {
	e.entered <- len(batch)
	<-e.release
	return e.inner.Run(g, batch, opt)
}

// TestWindowFlushOnTimer drives two window rounds: a partial buffer must
// flush when the window timer fires (never on its own), and the timer must
// re-arm for the next round.
func TestWindowFlushOnTimer(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	tel := telemetry.NewCollector()
	s := startServer(t, clk, func(c *Config) { c.Telemetry = tel })
	g := testGraph()

	for round := 0; round < 2; round++ {
		tk, err := s.Submit(context.Background(), queries.Query{Kernel: queries.SSSP, Source: graph.VertexID(round)})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// The window timer arms only once the batcher has buffered the
		// query; one query cannot hit the size cap of 4, so the flush that
		// completes the ticket can only be the timer's.
		clk.BlockUntil(1)
		select {
		case <-tk.Done():
			t.Fatalf("round %d: ticket completed before the window expired", round)
		default:
		}
		clk.Advance(50 * time.Millisecond)
		mustValues(t, g, tk)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.WindowFlushes != 2 || st.SizeFlushes != 0 || st.Batches != 2 || st.Completed != 2 {
		t.Errorf("stats = %+v, want 2 window flushes, 0 size flushes, 2 batches, 2 completed", st)
	}
	m := tel.Snapshot()
	if m.Serving == nil || m.Serving.Completed != 2 {
		t.Errorf("telemetry serving section = %+v, want completed=2", m.Serving)
	}
	if len(m.Runs) != 1 || len(m.Runs[0].Batches) != 2 {
		t.Errorf("run trace has %d runs, want 1 with 2 batches", len(m.Runs))
	}
}

// TestSizeFlushFillsBatch proves the size cap flushes without any clock
// movement: time never advances, so a completed ticket can only mean the
// size trigger fired.
func TestSizeFlushFillsBatch(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	s := startServer(t, clk, nil)
	g := testGraph()

	var tickets []*Ticket
	for i := 0; i < 4; i++ {
		tk, err := s.Submit(context.Background(), queries.Query{Kernel: queries.BFS, Source: graph.VertexID(i)})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	for _, tk := range tickets {
		mustValues(t, g, tk)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.SizeFlushes != 1 || st.WindowFlushes != 0 || st.Batches != 1 {
		t.Errorf("stats = %+v, want exactly 1 size flush and 1 batch", st)
	}
}

// TestBackpressureRejectsAtCapacity fills the admission bound behind a
// gated executor and requires the typed ErrQueueFull, then releases the
// gate and requires every admitted query to complete.
func TestBackpressureRejectsAtCapacity(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	gate := newGateEngine()
	s := startServer(t, clk, func(c *Config) {
		c.BatchSize = 1
		c.QueueCapacity = 2
		c.Window = time.Hour
		c.Engine = gate
	})
	g := testGraph()
	ctx := context.Background()
	q := func(src int) queries.Query { return queries.Query{Kernel: queries.SSSP, Source: graph.VertexID(src)} }

	// q1 dispatches to the executor and blocks inside the gate; once the
	// entry is observed, q1 has left the admission population.
	t1, err := s.Submit(ctx, q(0))
	if err != nil {
		t.Fatal(err)
	}
	<-gate.entered
	// q2's batch blocks in handoff (the executor is busy), q3 queues:
	// admission population is 2 = capacity, wherever the batcher happens to
	// be holding them.
	t2, err := s.Submit(ctx, q(1))
	if err != nil {
		t.Fatal(err)
	}
	t3, err := s.Submit(ctx, q(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(ctx, q(3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit at capacity: err = %v, want ErrQueueFull", err)
	}
	if st := s.Stats(); st.RejectedFull != 1 || st.QueueDepth != 2 {
		t.Errorf("stats = %+v, want rejected_full=1 queue_depth=2", st)
	}
	close(gate.release)
	for _, tk := range []*Ticket{t1, t2, t3} {
		mustValues(t, g, tk)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Completed != 3 || st.QueueDepth != 0 {
		t.Errorf("stats after close = %+v, want completed=3 queue_depth=0", st)
	}
}

// TestDeadlineExpiryCancelsQueued submits a query whose deadline falls
// inside the batching window: the window flush must resolve it with
// ErrDeadline instead of executing it, and a later query must be unaffected.
func TestDeadlineExpiryCancelsQueued(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	tel := telemetry.NewCollector()
	s := startServer(t, clk, func(c *Config) { c.Telemetry = tel })
	g := testGraph()

	t1, err := s.SubmitTimeout(context.Background(), queries.Query{Kernel: queries.SSSP, Source: 3}, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	clk.BlockUntil(1)
	clk.Advance(50 * time.Millisecond) // window fires at +50ms > +10ms deadline
	if _, err := t1.Wait(context.Background()); !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired ticket: err = %v, want ErrDeadline", err)
	}
	// The expired flush formed no batch; a fresh query still serves.
	t2, err := s.SubmitTimeout(context.Background(), queries.Query{Kernel: queries.SSSP, Source: 4}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	clk.BlockUntil(1)
	clk.Advance(50 * time.Millisecond)
	mustValues(t, g, t2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.DeadlineMisses != 1 || st.Completed != 1 || st.Batches != 1 {
		t.Errorf("stats = %+v, want deadline_misses=1 completed=1 batches=1", st)
	}
}

// TestContextCancelWhileQueued cancels a queued query's context; the next
// flush must resolve the ticket with the context error, not execute it.
func TestContextCancelWhileQueued(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	s := startServer(t, clk, nil)

	ctx, cancel := context.WithCancel(context.Background())
	tk, err := s.Submit(ctx, queries.Query{Kernel: queries.BFS, Source: 5})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	clk.BlockUntil(1)
	clk.Advance(50 * time.Millisecond)
	if _, err := tk.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ticket: err = %v, want context.Canceled", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Canceled != 1 || st.Batches != 0 {
		t.Errorf("stats = %+v, want canceled=1 batches=0", st)
	}
}

// TestShutdownDrainsAndRejects pins the drain contract: Shutdown
// immediately rejects new submissions with ErrClosed while the in-flight
// batch finishes first and every query already admitted — batched or still
// queued — is executed and answered. The batch geometry makes every
// interleaving produce the same three batches: [t1 t2] enters the gate and
// is held in flight, [t3 t4] fills a size batch behind it, and t5 can only
// leave through the shutdown drain because the window timer never fires.
func TestShutdownDrainsAndRejects(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	gate := newGateEngine()
	s := startServer(t, clk, func(c *Config) {
		c.BatchSize = 2
		c.QueueCapacity = 8
		c.Window = time.Hour
		c.Engine = gate
	})
	g := testGraph()
	ctx := context.Background()
	q := func(src int) queries.Query { return queries.Query{Kernel: queries.SSWP, Source: graph.VertexID(src)} }

	t1, err := s.Submit(ctx, q(0))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s.Submit(ctx, q(1))
	if err != nil {
		t.Fatal(err)
	}
	if n := <-gate.entered; n != 2 {
		t.Fatalf("first batch size %d, want 2", n)
	}
	// [t1 t2] is in flight inside the gate. [t3 t4] forms the next size
	// batch and t5 stays admitted-but-unbatched until the drain.
	t3, err := s.Submit(ctx, q(2))
	if err != nil {
		t.Fatal(err)
	}
	t4, err := s.Submit(ctx, q(3))
	if err != nil {
		t.Fatal(err)
	}
	t5, err := s.Submit(ctx, q(4))
	if err != nil {
		t.Fatal(err)
	}
	s.Shutdown()
	if _, err := s.Submit(ctx, q(5)); !errors.Is(err, ErrClosed) {
		t.Fatalf("late submit: err = %v, want ErrClosed", err)
	}
	close(gate.release)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Drain order: the size batch behind the in-flight one, then t5's
	// drain batch.
	if n := <-gate.entered; n != 2 {
		t.Errorf("second batch size %d, want 2", n)
	}
	if n := <-gate.entered; n != 1 {
		t.Errorf("drain batch size %d, want 1", n)
	}
	for _, tk := range []*Ticket{t1, t2, t3, t4, t5} {
		mustValues(t, g, tk)
	}
	st := s.Stats()
	if st.RejectedClosed != 1 || st.Completed != 5 || st.QueueDepth != 0 {
		t.Errorf("stats = %+v, want rejected_closed=1 completed=5 queue_depth=0", st)
	}
	if st.DrainFlushes != 1 {
		t.Errorf("stats = %+v, want exactly 1 drain flush", st)
	}
}

// TestServeAffinityMethod runs the full Glign method (affinity policy +
// aligned engine) through the serving loop and verifies exact results — the
// policy and alignment plumbing must be identical to the offline path.
func TestServeAffinityMethod(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	s := startServer(t, clk, func(c *Config) {
		c.Method = systems.Glign
		c.BatchSize = 4
	})
	g := testGraph()

	var tickets []*Ticket
	for i := 0; i < 4; i++ {
		tk, err := s.Submit(context.Background(), queries.Query{Kernel: queries.SSSP, Source: graph.VertexID(2 * i)})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	for _, tk := range tickets {
		mustValues(t, g, tk)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitValidation covers the immediate typed failures.
func TestSubmitValidation(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	s := startServer(t, clk, nil)
	defer s.Close()

	if _, err := s.Submit(context.Background(), queries.Query{Source: 0}); err == nil {
		t.Error("nil kernel accepted")
	}
	if _, err := s.Submit(context.Background(), queries.Query{Kernel: queries.BFS, Source: 10_000}); err == nil {
		t.Error("out-of-range source accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Submit(ctx, queries.Query{Kernel: queries.BFS, Source: 0}); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled ctx: err = %v, want context.Canceled", err)
	}
}

// TestCloseIdempotent closes twice and submits after; both must be safe.
func TestCloseIdempotent(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	s := startServer(t, clk, nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), queries.Query{Kernel: queries.BFS, Source: 0}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: err = %v, want ErrClosed", err)
	}
}
