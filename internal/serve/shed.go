package serve

import (
	"errors"
	"fmt"
)

// ErrShed completes a queued ticket that was sacrificed under overload: the
// admission queue was at capacity and a strictly higher-priority query
// arrived, so the lowest-tier, newest-arrival queued slot was dropped to
// make room (shed-low-first; see SERVING.md §"Priority tiers and shedding").
var ErrShed = errors.New("serve: query shed for a higher-priority arrival under overload")

// Tier is a query's admission priority class. The zero value is TierNormal,
// so SubmitOptions without an explicit tier get the default class; ordering
// is numeric (TierLow < TierNormal < TierHigh) and shedding only ever
// sacrifices a tier strictly below the arriving query's.
type Tier int8

// The three priority tiers, lowest first.
const (
	TierLow    Tier = -1
	TierNormal Tier = 0
	TierHigh   Tier = 1
)

// NumTiers is the number of priority tiers (the length of the per-tier
// capacity and shed-counter arrays; index a tier with tierIndex).
const NumTiers = 3

// tierIndex maps a tier to its array slot: 0 low, 1 normal, 2 high — the
// index order of Config.TierCapacities and ServingMetrics.ShedByTier.
func tierIndex(t Tier) int { return int(t) + 1 }

// String returns the tier's wire name ("low", "normal", "high").
func (t Tier) String() string {
	switch t {
	case TierLow:
		return "low"
	case TierNormal:
		return "normal"
	case TierHigh:
		return "high"
	}
	return fmt.Sprintf("Tier(%d)", int8(t))
}

// TierByName parses a wire tier name; the empty string is TierNormal so
// request payloads can omit the field.
func TierByName(name string) (Tier, error) {
	switch name {
	case "low":
		return TierLow, nil
	case "", "normal":
		return TierNormal, nil
	case "high":
		return TierHigh, nil
	}
	return TierNormal, fmt.Errorf("serve: unknown priority tier %q (low, normal, high)", name)
}

// shedLocked picks, removes, and returns the shed victim for an arriving
// query of the given tier, or nil when nothing sheddable is queued. Must be
// called with s.mu held; the caller completes the victim's tickets with
// ErrShed after unlocking (resolveShed).
//
// Victim policy: only slots still on the admission queue are sheddable —
// window-buffered-into-a-formed-batch and dispatched slots are already
// committed. Among sheddable slots strictly below the incoming tier, the
// lowest tier loses first; within that tier the newest arrival is
// sacrificed (it has waited least, so dropping it preserves FIFO fairness
// for older queries).
func (s *Server) shedLocked(incoming Tier) *slot {
	victim := -1
	for i, sl := range s.queue {
		if sl.tier >= incoming {
			continue
		}
		if victim < 0 || sl.tier < s.queue[victim].tier ||
			(sl.tier == s.queue[victim].tier && sl.seq > s.queue[victim].seq) {
			victim = i
		}
	}
	if victim < 0 {
		return nil
	}
	sl := s.queue[victim]
	s.queue = append(s.queue[:victim], s.queue[victim+1:]...)
	sl.done = true
	if s.inflight[sl.key] == sl {
		delete(s.inflight, sl.key)
	}
	s.pending--
	s.tierPending[tierIndex(sl.tier)]--
	return sl
}

// resolveShed completes every waiter of a shed slot with ErrShed and
// attributes the shed to the victim's tier.
func (s *Server) resolveShed(sl *slot) {
	s.stats.shed.Add(1)
	s.stats.shedByTier[tierIndex(sl.tier)].Add(1)
	for _, t := range sl.tickets {
		s.finish(t, nil, ErrShed)
	}
	sl.tickets = nil
}
