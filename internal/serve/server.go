package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/glign/glign/internal/align"
	"github.com/glign/glign/internal/core"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/par"
	"github.com/glign/glign/internal/queries"
	"github.com/glign/glign/internal/systems"
	"github.com/glign/glign/internal/telemetry"
)

// Typed admission and lifecycle errors. All are sentinel values so callers
// dispatch with errors.Is.
var (
	// ErrQueueFull is the backpressure rejection: the admitted-but-
	// undispatched population reached Config.QueueCapacity.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrClosed rejects submissions arriving after Shutdown/Close began.
	ErrClosed = errors.New("serve: server closed to new queries")
	// ErrDeadline completes a ticket whose deadline expired while it was
	// still queued (never mid-execution: once batched, a query runs to its
	// fixed point and returns its values).
	ErrDeadline = errors.New("serve: deadline expired before the query was batched")
)

// Config parameterizes a Server. The zero value serves full-Glign batches of
// 64 on a 5ms window with a 1024-query admission bound on the wall clock.
type Config struct {
	// Method is the evaluation method (systems method names; default
	// systems.Glign). It fixes the batching policy, the engine, and whether
	// delayed-start alignment vectors are applied — identical semantics to
	// an offline systems.Run of the same method.
	Method string
	// BatchSize is the size cap |B|: the batcher flushes as soon as this
	// many queries are buffered, without waiting for the window (default
	// 64).
	BatchSize int
	// Window is how long the batcher waits after the first buffered query
	// before flushing a partial batch (default 5ms). The timer runs on
	// Clock.
	Window time.Duration
	// QueueCapacity bounds the admitted-but-undispatched population (queued
	// plus window-buffered queries); Submit rejects with ErrQueueFull at
	// the bound (default 1024).
	QueueCapacity int
	// ReorderWindow is the affinity-batching reorder window B_w passed to
	// the method's policy (<= 0: the whole flushed buffer).
	ReorderWindow int
	// Workers bounds intra-batch parallelism (<= 0: GOMAXPROCS); Pool is
	// the work-stealing scheduler the engines run on (nil: shared default).
	Workers int
	Pool    *par.Pool
	// Profile supplies closestHV for the aligned/affinity methods; built on
	// demand when nil and the method needs it.
	Profile *align.Profile
	// DirectionOptimized enables push/pull hybrid iterations in the
	// query-oblivious engine (requires/builds a profile for its reversed
	// graph).
	DirectionOptimized bool
	// Telemetry, when non-nil, receives per-iteration engine records for
	// every batch plus the serving section (Collector.ObserveServing).
	Telemetry *telemetry.Collector
	// Clock is the server's time source (nil: the wall clock). Tests inject
	// a FakeClock to drive windows and deadlines deterministically.
	Clock Clock
	// Engine, when non-nil, overrides the method's engine — the hook the
	// deterministic tests use to gate batch execution.
	Engine core.Engine
}

// Ticket is the handle of one submitted query: it completes exactly once,
// with either the query's full result vector or a typed error.
type Ticket struct {
	query    queries.Query
	seq      int
	ctx      context.Context
	admitted time.Time
	deadline time.Time // zero: none

	done   chan struct{}
	values []queries.Value
	err    error
}

// Done is closed when the ticket has completed.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Wait blocks until the ticket completes or ctx is done, returning the
// query's per-vertex result vector. The ticket keeps completing in the
// background if Wait returns early on ctx.
func (t *Ticket) Wait(ctx context.Context) ([]queries.Value, error) {
	select {
	case <-t.done:
		return t.values, t.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Query returns the submitted query.
func (t *Ticket) Query() queries.Query { return t.query }

// flush triggers, attributed in the serving telemetry.
type flushTrigger int

const (
	flushWindow flushTrigger = iota
	flushSize
	flushDrain
)

// formedBatch is one evaluation batch handed from the batcher to the
// executor.
type formedBatch struct {
	tickets []*Ticket
}

// Server is the live query-serving loop. New starts two long-lived
// goroutines — the batcher (admission queue -> windowed batches) and the
// executor (batches -> engine -> ticket completion) — which Close joins
// after draining everything admitted.
type Server struct {
	g    *graph.Graph
	cfg  Config
	plan systems.Plan
	prof *align.Profile
	clk  Clock
	run  *telemetry.RunTrace

	mu      sync.Mutex
	queue   []*Ticket
	pending int // admitted but not yet dispatched/resolved (bounded by QueueCapacity)
	seq     int
	closed  bool

	wake    chan struct{}
	batches chan *formedBatch
	// wg joins the batcher and executor; Close waits on it — the
	// persistent-pool lifetime the waitjoin analyzer models (Add before the
	// launches here, Wait in Close).
	wg      sync.WaitGroup
	started time.Time

	stats         serveCounters
	admissionWait telemetry.Histogram
	occupancy     telemetry.Histogram
}

// serveCounters are the server's monotone totals (see ServingMetrics for
// field meanings).
type serveCounters struct {
	submitted, admitted          atomic.Int64
	rejectedFull, rejectedClosed atomic.Int64
	canceled, deadlineMisses     atomic.Int64
	completed, batches           atomic.Int64
	windowFlushes, sizeFlushes   atomic.Int64
	drainFlushes                 atomic.Int64
}

// New validates cfg, resolves the method plan, and starts the server's
// batcher and executor goroutines. Close (or Shutdown+Close) must be called
// to join them.
func New(g *graph.Graph, cfg Config) (*Server, error) {
	if g == nil || g.NumVertices() == 0 {
		return nil, fmt.Errorf("serve: empty graph")
	}
	if cfg.Method == "" {
		cfg.Method = systems.Glign
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.Window <= 0 {
		cfg.Window = 5 * time.Millisecond
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 1024
	}
	if cfg.Clock == nil {
		cfg.Clock = RealClock()
	}
	prof := cfg.Profile
	if prof == nil && (systems.NeedsProfile(cfg.Method) || cfg.DirectionOptimized) {
		prof = align.NewProfile(g, align.DefaultHubCount, cfg.Workers)
	}
	run := cfg.Telemetry.StartRun("serve:"+cfg.Method, "")
	plan, err := systems.PlanFor(cfg.Method, g, prof, systems.Config{
		BatchSize: cfg.BatchSize,
		Workers:   cfg.Workers,
		Pool:      cfg.Pool,
		Window:    cfg.ReorderWindow,
	}, run)
	if err != nil {
		return nil, err
	}
	run.SetPolicy(plan.Policy.Name())
	if cfg.Engine != nil {
		plan.Engine = cfg.Engine
	}
	s := &Server{
		g:       g,
		cfg:     cfg,
		plan:    plan,
		prof:    prof,
		clk:     cfg.Clock,
		run:     run,
		wake:    make(chan struct{}, 1),
		batches: make(chan *formedBatch),
		started: cfg.Clock.Now(),
	}
	s.wg.Add(2)
	go s.batchLoop()
	go s.execLoop()
	return s, nil
}

// Submit admits one query with no deadline. See SubmitTimeout.
func (s *Server) Submit(ctx context.Context, q queries.Query) (*Ticket, error) {
	return s.SubmitTimeout(ctx, q, 0)
}

// SubmitTimeout admits one query onto the bounded queue and returns its
// ticket. A positive timeout sets a deadline of now+timeout on the server's
// clock: if the query is still queued when its next flush happens after the
// deadline, it completes with ErrDeadline instead of executing. The context
// covers the queued phase too — a ctx canceled before batching completes the
// ticket with ctx.Err(). Rejections are immediate and typed: ErrQueueFull at
// capacity, ErrClosed after shutdown began.
func (s *Server) SubmitTimeout(ctx context.Context, q queries.Query, timeout time.Duration) (*Ticket, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.stats.submitted.Add(1)
	if q.Kernel == nil {
		return nil, fmt.Errorf("serve: query has no kernel")
	}
	if int(q.Source) >= s.g.NumVertices() {
		return nil, fmt.Errorf("serve: source v%d out of range (n=%d)", q.Source, s.g.NumVertices())
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t := &Ticket{query: q, ctx: ctx, admitted: s.clk.Now(), done: make(chan struct{})}
	if timeout > 0 {
		t.deadline = t.admitted.Add(timeout)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.stats.rejectedClosed.Add(1)
		return nil, ErrClosed
	}
	if s.pending >= s.cfg.QueueCapacity {
		s.mu.Unlock()
		s.stats.rejectedFull.Add(1)
		return nil, ErrQueueFull
	}
	t.seq = s.seq
	s.seq++
	s.queue = append(s.queue, t)
	s.pending++
	s.mu.Unlock()
	s.stats.admitted.Add(1)
	s.signal()
	return t, nil
}

// signal nudges the batcher (capacity-1 channel: a pending nudge already
// covers any number of queued events, since the batcher drains the whole
// queue per wake).
func (s *Server) signal() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Shutdown stops admission immediately (subsequent Submits return ErrClosed)
// and asks the batcher to drain: everything already admitted is still
// batched, executed, and completed. Idempotent; returns without waiting.
func (s *Server) Shutdown() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.signal()
}

// Close shuts the server down and waits until the drain finishes: in-flight
// batches complete, queued queries are flushed as final batches (expired or
// canceled ones complete with their typed errors), and both server
// goroutines join. Safe to call more than once.
func (s *Server) Close() error {
	s.Shutdown()
	s.wg.Wait()
	s.run.Finish(s.clk.Now().Sub(s.started))
	s.observeServing()
	return nil
}

// batchLoop is the batcher: it drains the admission queue into a window
// buffer, flushes on the size cap immediately, arms the window timer when a
// partial buffer starts waiting, flushes it on expiry, and on shutdown
// flushes the remainder and hands the executor its last batch.
func (s *Server) batchLoop() {
	defer s.wg.Done()
	defer close(s.batches)
	var buf []*Ticket
	var timer Timer
	var timerC <-chan time.Time
	stopTimer := func() {
		if timer != nil {
			timer.Stop()
			timer, timerC = nil, nil
		}
	}
	for {
		select {
		case <-s.wake:
		case <-timerC:
			stopTimer()
			s.flush(buf, flushWindow)
			buf = nil
			continue
		}
		s.mu.Lock()
		closed := s.closed
		take := s.queue
		s.queue = nil
		s.mu.Unlock()
		buf = append(buf, take...)
		for len(buf) >= s.cfg.BatchSize {
			s.flush(buf[:s.cfg.BatchSize], flushSize)
			buf = append([]*Ticket(nil), buf[s.cfg.BatchSize:]...)
		}
		if closed {
			if len(buf) > 0 {
				s.flush(buf, flushDrain)
			}
			stopTimer()
			return
		}
		if len(buf) > 0 {
			if timerC == nil {
				timer = s.clk.NewTimer(s.cfg.Window)
				timerC = timer.C()
			}
		} else {
			stopTimer()
		}
	}
}

// flush resolves canceled and deadline-expired tickets, then partitions the
// survivors with the method's batching policy and hands each batch to the
// executor (blocking — admission backpressure builds behind a busy
// executor). Dispatched and resolved tickets leave the bounded admission
// population.
func (s *Server) flush(buf []*Ticket, trig flushTrigger) {
	switch trig {
	case flushWindow:
		s.stats.windowFlushes.Add(1)
	case flushSize:
		s.stats.sizeFlushes.Add(1)
	case flushDrain:
		s.stats.drainFlushes.Add(1)
	}
	now := s.clk.Now()
	live := make([]*Ticket, 0, len(buf))
	for _, t := range buf {
		switch {
		case t.ctx.Err() != nil:
			s.stats.canceled.Add(1)
			s.decPending(1)
			s.finish(t, nil, t.ctx.Err())
		case !t.deadline.IsZero() && !now.Before(t.deadline):
			s.stats.deadlineMisses.Add(1)
			s.decPending(1)
			s.finish(t, nil, ErrDeadline)
		default:
			s.admissionWait.Observe(now.Sub(t.admitted).Nanoseconds())
			live = append(live, t)
		}
	}
	if len(live) == 0 {
		return
	}
	qs := make([]queries.Query, len(live))
	for i, t := range live {
		qs[i] = t.query
	}
	for _, idx := range s.plan.Policy.MakeBatches(qs, s.cfg.BatchSize) {
		fb := &formedBatch{tickets: make([]*Ticket, len(idx))}
		for i, bi := range idx {
			fb.tickets[i] = live[bi]
		}
		s.batches <- fb
		s.decPending(len(fb.tickets))
	}
}

func (s *Server) decPending(n int) {
	s.mu.Lock()
	s.pending -= n
	s.mu.Unlock()
}

// finish completes a ticket exactly once; the channel close publishes the
// result fields to every waiter.
func (s *Server) finish(t *Ticket, vals []queries.Value, err error) {
	t.values, t.err = vals, err
	close(t.done)
}

// execLoop is the executor: it evaluates formed batches in order until the
// batcher closes the channel at the end of its drain.
func (s *Server) execLoop() {
	defer s.wg.Done()
	for fb := range s.batches {
		s.runBatch(fb)
	}
}

// runBatch evaluates one batch on the plan's engine with the exact offline
// semantics: alignment vectors when the method is aligned, direction
// optimization when configured, per-iteration telemetry into the server's
// run trace.
func (s *Server) runBatch(fb *formedBatch) {
	qs := make([]queries.Query, len(fb.tickets))
	seqs := make([]int, len(fb.tickets))
	for i, t := range fb.tickets {
		qs[i] = t.query
		seqs[i] = t.seq
	}
	opt := core.Options{Workers: s.cfg.Workers, Pool: s.cfg.Pool}
	if s.plan.Aligned {
		opt.Alignment = s.prof.AlignmentVector(qs)
	}
	if s.cfg.DirectionOptimized && s.prof != nil && s.plan.Engine.Name() == core.GlignIntra.Name() {
		opt.ReverseGraph = s.prof.Rev
	}
	bt := s.run.StartBatch(s.plan.Engine.Name(), seqs, opt.Alignment)
	opt.Telemetry = bt
	start := s.clk.Now()
	br, err := s.plan.Engine.Run(s.g, qs, opt)
	bt.Finish(s.clk.Now().Sub(start))
	s.stats.batches.Add(1)
	s.occupancy.Observe(int64(len(qs)))
	if err != nil {
		for _, t := range fb.tickets {
			s.finish(t, nil, fmt.Errorf("serve: batch failed: %w", err))
		}
	} else {
		for i, t := range fb.tickets {
			s.finish(t, br.QueryValues(i), nil)
		}
		s.stats.completed.Add(int64(len(qs)))
	}
	s.observeServing()
}

// Stats builds the current serving metrics snapshot.
func (s *Server) Stats() *telemetry.ServingMetrics {
	s.mu.Lock()
	depth := s.pending
	s.mu.Unlock()
	return &telemetry.ServingMetrics{
		Submitted:       s.stats.submitted.Load(),
		Admitted:        s.stats.admitted.Load(),
		RejectedFull:    s.stats.rejectedFull.Load(),
		RejectedClosed:  s.stats.rejectedClosed.Load(),
		Canceled:        s.stats.canceled.Load(),
		DeadlineMisses:  s.stats.deadlineMisses.Load(),
		Completed:       s.stats.completed.Load(),
		Batches:         s.stats.batches.Load(),
		WindowFlushes:   s.stats.windowFlushes.Load(),
		SizeFlushes:     s.stats.sizeFlushes.Load(),
		DrainFlushes:    s.stats.drainFlushes.Load(),
		QueueDepth:      int64(depth),
		AdmissionWaitNs: s.admissionWait.Snapshot(),
		BatchOccupancy:  s.occupancy.Snapshot(),
	}
}

// observeServing refreshes the collector's serving section (after every
// batch and at Close).
func (s *Server) observeServing() {
	if s.cfg.Telemetry == nil {
		return
	}
	s.cfg.Telemetry.ObserveServing(s.Stats())
}

// Method returns the server's evaluation method.
func (s *Server) Method() string { return s.cfg.Method }
