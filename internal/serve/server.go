package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/glign/glign/internal/align"
	"github.com/glign/glign/internal/core"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/par"
	"github.com/glign/glign/internal/queries"
	"github.com/glign/glign/internal/sched"
	"github.com/glign/glign/internal/systems"
	"github.com/glign/glign/internal/telemetry"
)

// Typed admission and lifecycle errors. All are sentinel values so callers
// dispatch with errors.Is (ErrShed lives in shed.go beside its policy).
var (
	// ErrQueueFull is the backpressure rejection: the admitted-but-
	// undispatched population reached Config.QueueCapacity (or the query's
	// tier reached its per-tier bound) and no lower-tier victim was
	// available to shed.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrClosed rejects submissions arriving after Shutdown/Close began.
	ErrClosed = errors.New("serve: server closed to new queries")
	// ErrDeadline completes a ticket whose deadline expired while it was
	// still queued (never mid-execution: once batched, a query runs to its
	// fixed point and returns its values).
	ErrDeadline = errors.New("serve: deadline expired before the query was batched")
)

// defaultCacheCapacity is the result-cache entry bound when
// Config.CacheCapacity is zero.
const defaultCacheCapacity = 1024

// Config parameterizes a Server. The zero value serves full-Glign batches of
// 64 on a 5ms window with a 1024-query admission bound on the wall clock,
// a 1024-entry result cache, in-flight dedup, and the method's own
// admission ordering.
type Config struct {
	// Method is the evaluation method (systems method names; default
	// systems.Glign). It fixes the batching policy, the engine, and whether
	// delayed-start alignment vectors are applied — identical semantics to
	// an offline systems.Run of the same method.
	Method string
	// BatchSize is the size cap |B|: the batcher flushes as soon as this
	// many queries are buffered, without waiting for the window (default
	// 64).
	BatchSize int
	// Window is how long the batcher waits after the first buffered query
	// before flushing a partial batch (default 5ms). The timer runs on
	// Clock.
	Window time.Duration
	// QueueCapacity bounds the admitted-but-undispatched population (queued
	// plus window-buffered slots); at the bound Submit sheds a strictly
	// lower-tier queued query if one exists and otherwise rejects with
	// ErrQueueFull (default 1024). Coalesced duplicates share one slot and
	// do not count again.
	QueueCapacity int
	// TierCapacities optionally bounds the queued population of each
	// priority tier on top of QueueCapacity (index 0 low, 1 normal, 2 high
	// — tierIndex order); 0 means no per-tier bound.
	TierCapacities [NumTiers]int
	// CacheCapacity bounds the source+kernel-keyed result cache in entries:
	// 0 means the default (1024), negative disables caching entirely.
	// Entries carry the epoch they were computed at and are dropped on
	// mismatch (see BumpEpoch).
	CacheCapacity int
	// AdmissionPolicy orders the pending queue when it exceeds one batch:
	// AdmissionFCFS, AdmissionAffinity, or empty to follow the method
	// (affinity methods rank, FCFS methods keep arrival order).
	AdmissionPolicy string
	// ReorderWindow is the affinity-batching reorder window B_w passed to
	// the method's policy (<= 0: the whole flushed buffer).
	ReorderWindow int
	// Workers bounds intra-batch parallelism (<= 0: GOMAXPROCS); Pool is
	// the work-stealing scheduler the engines run on (nil: shared default).
	Workers int
	Pool    *par.Pool
	// Profile supplies closestHV for the aligned/affinity methods; built on
	// demand when nil and the method (or AdmissionAffinity) needs it.
	Profile *align.Profile
	// DirectionOptimized enables push/pull hybrid iterations in the
	// query-oblivious engine (requires/builds a profile for its reversed
	// graph).
	DirectionOptimized bool
	// Telemetry, when non-nil, receives per-iteration engine records for
	// every batch plus the serving section (Collector.ObserveServing).
	Telemetry *telemetry.Collector
	// Clock is the server's time source (nil: the wall clock). Tests inject
	// a FakeClock to drive windows and deadlines deterministically.
	Clock Clock
	// Engine, when non-nil, overrides the method's engine — the hook the
	// deterministic tests use to gate batch execution.
	Engine core.Engine
}

// SubmitOptions carries the per-query knobs of SubmitWith. The zero value
// means no deadline at TierNormal.
type SubmitOptions struct {
	// Timeout, when positive, sets a deadline of now+Timeout on the
	// server's clock: a query still queued when its next flush happens
	// after the deadline completes with ErrDeadline instead of executing.
	Timeout time.Duration
	// Tier is the query's priority class (default TierNormal). Under
	// overload, queued lower tiers are shed to admit higher ones.
	Tier Tier
}

// Ticket is the handle of one submitted query: it completes exactly once,
// with either the query's full result vector or a typed error. Result
// vectors may be shared with other coalesced waiters and with the result
// cache — treat them as immutable.
type Ticket struct {
	query    queries.Query
	tier     Tier
	seq      int
	ctx      context.Context
	admitted time.Time
	deadline time.Time // zero: none

	done   chan struct{}
	values []queries.Value
	epoch  int64
	err    error
}

// Done is closed when the ticket has completed.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Wait blocks until the ticket completes or ctx is done, returning the
// query's per-vertex result vector. The ticket keeps completing in the
// background if Wait returns early on ctx. The returned slice may be shared
// with the result cache and with coalesced waiters — do not mutate it.
func (t *Ticket) Wait(ctx context.Context) ([]queries.Value, error) {
	select {
	case <-t.done:
		return t.values, t.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Query returns the submitted query.
func (t *Ticket) Query() queries.Query { return t.query }

// Tier returns the query's priority tier.
func (t *Ticket) Tier() Tier { return t.tier }

// ResultEpoch returns the data epoch the ticket's result was computed at
// (the epoch of the cache entry on a hit, the epoch at execution start
// otherwise). Valid only after Done; -1 while pending or when the ticket
// completed with an error.
func (t *Ticket) ResultEpoch() int64 {
	select {
	case <-t.done:
		return t.epoch
	default:
		return -1
	}
}

// flush triggers, attributed in the serving telemetry.
type flushTrigger int

const (
	flushWindow flushTrigger = iota
	flushSize
	flushDrain
)

// formedBatch is one evaluation batch handed from the batcher to the
// executor: one slot per lane, each slot fanning out to its waiters.
type formedBatch struct {
	slots []*slot
}

// Server is the live query-serving loop. New starts two long-lived
// goroutines — the batcher (admission queue -> windowed batches) and the
// executor (batches -> engine -> ticket completion) — which Close joins
// after draining everything admitted. On top of the PR-5 loop it is a
// traffic-shaping front end: a result cache with epoch invalidation,
// in-flight dedup, affinity-aware admission ordering, and tiered
// load-shedding (SERVING.md is the contract).
type Server struct {
	g            *graph.Graph
	cfg          Config
	plan         systems.Plan
	prof         *align.Profile
	clk          Clock
	run          *telemetry.RunTrace
	affinityRank bool

	epoch atomic.Int64
	cache *resultCache // nil: caching disabled

	mu          sync.Mutex
	queue       []*slot
	inflight    map[cacheKey]*slot
	pending     int // admitted-but-undispatched slots (bounded by QueueCapacity)
	tierPending [NumTiers]int
	seq         int
	closed      bool

	wake    chan struct{}
	batches chan *formedBatch
	// wg joins the batcher and executor; Close waits on it — the
	// persistent-pool lifetime the waitjoin analyzer models (Add before the
	// launches here, Wait in Close).
	wg      sync.WaitGroup
	started time.Time

	stats         serveCounters
	admissionWait telemetry.Histogram
	occupancy     telemetry.Histogram
}

// serveCounters are the server's monotone totals (see ServingMetrics for
// field meanings).
type serveCounters struct {
	submitted, admitted          atomic.Int64
	rejectedFull, rejectedClosed atomic.Int64
	canceled, deadlineMisses     atomic.Int64
	completed, batches           atomic.Int64
	windowFlushes, sizeFlushes   atomic.Int64
	drainFlushes                 atomic.Int64

	cacheHits, cacheMisses             atomic.Int64
	cacheEvictions, cacheInvalidations atomic.Int64
	dedupCoalesced                     atomic.Int64
	admissionReorders                  atomic.Int64
	shed                               atomic.Int64
	shedByTier                         [NumTiers]atomic.Int64
}

// New validates cfg, resolves the method plan, and starts the server's
// batcher and executor goroutines. Close (or Shutdown+Close) must be called
// to join them.
func New(g *graph.Graph, cfg Config) (*Server, error) {
	if g == nil || g.NumVertices() == 0 {
		return nil, fmt.Errorf("serve: empty graph")
	}
	if cfg.Method == "" {
		cfg.Method = systems.Glign
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.Window <= 0 {
		cfg.Window = 5 * time.Millisecond
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 1024
	}
	if cfg.Clock == nil {
		cfg.Clock = RealClock()
	}
	switch cfg.AdmissionPolicy {
	case "", AdmissionFCFS, AdmissionAffinity:
	default:
		return nil, fmt.Errorf("serve: unknown admission policy %q", cfg.AdmissionPolicy)
	}
	prof := cfg.Profile
	if prof == nil && (systems.NeedsProfile(cfg.Method) || cfg.DirectionOptimized ||
		cfg.AdmissionPolicy == AdmissionAffinity) {
		prof = align.NewProfile(g, align.DefaultHubCount, cfg.Workers)
	}
	run := cfg.Telemetry.StartRun("serve:"+cfg.Method, "")
	plan, err := systems.PlanFor(cfg.Method, g, prof, systems.Config{
		BatchSize: cfg.BatchSize,
		Workers:   cfg.Workers,
		Pool:      cfg.Pool,
		Window:    cfg.ReorderWindow,
	}, run)
	if err != nil {
		return nil, err
	}
	run.SetPolicy(plan.Policy.Name())
	if cfg.Engine != nil {
		plan.Engine = cfg.Engine
	}
	s := &Server{
		g:        g,
		cfg:      cfg,
		plan:     plan,
		prof:     prof,
		clk:      cfg.Clock,
		run:      run,
		inflight: make(map[cacheKey]*slot),
		wake:     make(chan struct{}, 1),
		batches:  make(chan *formedBatch),
		started:  cfg.Clock.Now(),
	}
	switch cfg.AdmissionPolicy {
	case AdmissionAffinity:
		s.affinityRank = true
	case AdmissionFCFS:
		s.affinityRank = false
	default:
		s.affinityRank = prof != nil && plan.Policy.Name() == (sched.Affinity{}).Name()
	}
	if cfg.CacheCapacity >= 0 {
		capacity := cfg.CacheCapacity
		if capacity == 0 {
			capacity = defaultCacheCapacity
		}
		s.cache = newResultCache(capacity)
	}
	s.wg.Add(2)
	go s.batchLoop()
	go s.execLoop()
	return s, nil
}

// Submit admits one query with no deadline at TierNormal. See SubmitWith.
func (s *Server) Submit(ctx context.Context, q queries.Query) (*Ticket, error) {
	return s.SubmitWith(ctx, q, SubmitOptions{})
}

// SubmitTimeout admits one query with a deadline at TierNormal. A positive
// timeout sets a deadline of now+timeout on the server's clock. See
// SubmitWith.
func (s *Server) SubmitTimeout(ctx context.Context, q queries.Query, timeout time.Duration) (*Ticket, error) {
	return s.SubmitWith(ctx, q, SubmitOptions{Timeout: timeout})
}

// SubmitWith admits one query and returns its ticket. The submission
// pipeline, in order and under one lock (SERVING.md has the state machine):
//
//  1. a valid cache entry for the query's (kernel, source) at the current
//     epoch completes the ticket immediately (cache hit — no queueing, no
//     deadline exposure);
//  2. an identical pending query coalesces the ticket onto that query's
//     slot (dedup — no extra capacity consumed, one execution fans out to
//     every waiter);
//  3. otherwise the query needs a new slot: at QueueCapacity a strictly
//     lower-tier queued query is shed to make room when one exists, else
//     the submission is rejected with ErrQueueFull (likewise at a
//     configured per-tier bound).
//
// The context covers the queued phase — a ctx canceled before batching
// completes the ticket with ctx.Err(). Rejections are immediate and typed:
// ErrQueueFull at capacity, ErrClosed after shutdown began.
func (s *Server) SubmitWith(ctx context.Context, q queries.Query, opt SubmitOptions) (*Ticket, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.stats.submitted.Add(1)
	if q.Kernel == nil {
		return nil, fmt.Errorf("serve: query has no kernel")
	}
	if int(q.Source) >= s.g.NumVertices() {
		return nil, fmt.Errorf("serve: source v%d out of range (n=%d)", q.Source, s.g.NumVertices())
	}
	if opt.Tier < TierLow || opt.Tier > TierHigh {
		return nil, fmt.Errorf("serve: invalid tier %d", opt.Tier)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	now := s.clk.Now()
	t := &Ticket{query: q, tier: opt.Tier, ctx: ctx, admitted: now, done: make(chan struct{}), epoch: -1}
	if opt.Timeout > 0 {
		t.deadline = now.Add(opt.Timeout)
	}
	key := keyOf(q)

	var victim *slot
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.stats.rejectedClosed.Add(1)
		return nil, ErrClosed
	}
	if vals, epoch, ok := s.cacheGetLocked(key); ok {
		s.mu.Unlock()
		s.stats.completed.Add(1)
		t.epoch = epoch
		s.finish(t, vals, nil)
		s.observeServing()
		return t, nil
	}
	if s.joinLocked(key, t) {
		s.mu.Unlock()
		s.stats.dedupCoalesced.Add(1)
		return t, nil
	}
	ti := tierIndex(opt.Tier)
	if bound := s.cfg.TierCapacities[ti]; bound > 0 && s.tierPending[ti] >= bound {
		s.mu.Unlock()
		s.stats.rejectedFull.Add(1)
		return nil, ErrQueueFull
	}
	if s.pending >= s.cfg.QueueCapacity {
		if victim = s.shedLocked(opt.Tier); victim == nil {
			s.mu.Unlock()
			s.stats.rejectedFull.Add(1)
			return nil, ErrQueueFull
		}
	}
	sl := &slot{query: q, key: key, seq: s.seq, tier: opt.Tier, tickets: []*Ticket{t}}
	t.seq = s.seq
	s.seq++
	s.queue = append(s.queue, sl)
	s.pending++
	s.tierPending[ti]++
	s.inflight[key] = sl
	s.mu.Unlock()
	if victim != nil {
		s.resolveShed(victim)
	}
	s.stats.admitted.Add(1)
	s.signal()
	return t, nil
}

// cacheGetLocked consults the result cache under the current epoch,
// counting hits, misses, and lazily invalidated stale entries. Must be
// called with s.mu held (the cache has its own lock; holding s.mu makes
// lookup-then-coalesce atomic against completeSlot's install-then-retire).
func (s *Server) cacheGetLocked(key cacheKey) ([]queries.Value, int64, bool) {
	if s.cache == nil {
		return nil, 0, false
	}
	vals, epoch, ok, stale := s.cache.get(key, s.epoch.Load())
	if stale {
		s.stats.cacheInvalidations.Add(1)
	}
	if ok {
		s.stats.cacheHits.Add(1)
	} else {
		s.stats.cacheMisses.Add(1)
	}
	return vals, epoch, ok
}

// cachePut installs a freshly computed result for the given epoch.
func (s *Server) cachePut(key cacheKey, vals []queries.Value, epoch int64) {
	if s.cache == nil {
		return
	}
	if s.cache.put(key, vals, epoch) {
		s.stats.cacheEvictions.Add(1)
	}
}

// Epoch returns the server's current data epoch.
func (s *Server) Epoch() int64 { return s.epoch.Load() }

// BumpEpoch advances the server's data epoch and returns the new value.
// The hook for graph mutation layers: after a bump, every cache entry
// computed at an older epoch is dropped on its next lookup instead of being
// served, and pending/in-flight slots stop accepting coalesced joiners —
// queries admitted at different epochs never share a result. Slots already
// admitted still execute and answer their existing waiters (with the epoch
// their result was computed at), but a result whose execution overlapped a
// bump is not cached.
func (s *Server) BumpEpoch() int64 {
	e := s.epoch.Add(1)
	s.mu.Lock()
	if len(s.inflight) > 0 {
		s.inflight = make(map[cacheKey]*slot)
	}
	s.mu.Unlock()
	return e
}

// signal nudges the batcher (capacity-1 channel: a pending nudge already
// covers any number of queued events, since the batcher drains the whole
// queue per wake).
func (s *Server) signal() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Shutdown stops admission immediately (subsequent Submits return ErrClosed)
// and asks the batcher to drain: everything already admitted is still
// batched, executed, and completed. Idempotent; returns without waiting.
func (s *Server) Shutdown() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.signal()
}

// Close shuts the server down and waits until the drain finishes: in-flight
// batches complete, queued queries are flushed as final batches (expired or
// canceled ones complete with their typed errors), and both server
// goroutines join. Safe to call more than once.
func (s *Server) Close() error {
	s.Shutdown()
	s.wg.Wait()
	s.run.Finish(s.clk.Now().Sub(s.started))
	s.observeServing()
	return nil
}

// batchLoop is the batcher: it watches the shared admission queue, flushes
// a ranked size-capped batch as soon as a full batch is pending, flushes
// the remainder when the window timer fires or the drain begins, and arms
// the window timer whenever a partial buffer starts waiting. The queue
// stays shared (under mu) until a flush takes a batch, so load-shedding
// can see the whole undispatched population.
func (s *Server) batchLoop() {
	defer s.wg.Done()
	defer close(s.batches)
	var timer Timer
	var timerC <-chan time.Time
	stopTimer := func() {
		if timer != nil {
			timer.Stop()
			timer, timerC = nil, nil
		}
	}
	for {
		var fired bool
		select {
		case <-s.wake:
		case <-timerC:
			timer, timerC = nil, nil
			fired = true
		}
		for {
			s.mu.Lock()
			var take []*slot
			var trig flushTrigger
			switch {
			case len(s.queue) >= s.cfg.BatchSize:
				if s.affinityRank && len(s.queue) > s.cfg.BatchSize {
					s.rankPendingLocked()
				}
				take = append([]*slot(nil), s.queue[:s.cfg.BatchSize]...)
				s.queue = append(s.queue[:0], s.queue[s.cfg.BatchSize:]...)
				trig = flushSize
			case (s.closed || fired) && len(s.queue) > 0:
				take = s.queue
				s.queue = nil
				if s.closed {
					trig = flushDrain
				} else {
					trig = flushWindow
					fired = false
				}
			}
			s.mu.Unlock()
			if take == nil {
				break
			}
			s.flush(take, trig)
		}
		s.mu.Lock()
		waiting := len(s.queue)
		closed := s.closed
		s.mu.Unlock()
		if closed {
			stopTimer()
			return
		}
		if waiting > 0 {
			if timerC == nil {
				timer = s.clk.NewTimer(s.cfg.Window)
				timerC = timer.C()
			}
		} else {
			stopTimer()
		}
	}
}

// flush resolves canceled and deadline-expired waiters, then partitions the
// surviving slots with the method's batching policy and hands each batch to
// the executor (blocking — admission backpressure builds behind a busy
// executor). Dispatched and resolved slots leave the bounded admission
// population.
func (s *Server) flush(buf []*slot, trig flushTrigger) {
	switch trig {
	case flushWindow:
		s.stats.windowFlushes.Add(1)
	case flushSize:
		s.stats.sizeFlushes.Add(1)
	case flushDrain:
		s.stats.drainFlushes.Add(1)
	}
	now := s.clk.Now()
	live := make([]*slot, 0, len(buf))
	for _, sl := range buf {
		if s.resolveDead(sl, now) {
			continue
		}
		live = append(live, sl)
	}
	if len(live) == 0 {
		return
	}
	qs := make([]queries.Query, len(live))
	for i, sl := range live {
		qs[i] = sl.query
	}
	// SplitParadigm keeps every dispatched batch paradigm-homogeneous: a
	// live queue can interleave monotone and iterate-to-convergence queries
	// arbitrarily, but engines evaluate the two under disjoint paths.
	for _, idx := range sched.SplitParadigm(qs, s.plan.Policy.MakeBatches(qs, s.cfg.BatchSize)) {
		fb := &formedBatch{slots: make([]*slot, len(idx))}
		for i, bi := range idx {
			fb.slots[i] = live[bi]
		}
		s.batches <- fb
	}
}

// releasePending removes dispatched slots from the bounded admission
// population. The executor calls it on receipt, before entering the engine:
// a batch still blocked in the batcher's handoff behind a busy executor
// therefore keeps exerting admission backpressure, while a batch the
// executor has picked up has deterministically left the population.
func (s *Server) releasePending(slots []*slot) {
	s.mu.Lock()
	for _, sl := range slots {
		s.pending--
		s.tierPending[tierIndex(sl.tier)]--
	}
	s.mu.Unlock()
}

// finish completes a ticket exactly once; the channel close publishes the
// result fields to every waiter.
func (s *Server) finish(t *Ticket, vals []queries.Value, err error) {
	t.values, t.err = vals, err
	close(t.done)
}

// execLoop is the executor: it evaluates formed batches in order until the
// batcher closes the channel at the end of its drain.
func (s *Server) execLoop() {
	defer s.wg.Done()
	for fb := range s.batches {
		s.runBatch(fb)
	}
}

// runBatch evaluates one batch on the plan's engine with the exact offline
// semantics: alignment vectors when the method is aligned, direction
// optimization when configured, per-iteration telemetry into the server's
// run trace. Each slot's result is installed into the cache (unless an
// epoch bump overlapped the execution) and fanned out to all its waiters.
func (s *Server) runBatch(fb *formedBatch) {
	s.releasePending(fb.slots)
	qs := make([]queries.Query, len(fb.slots))
	seqs := make([]int, len(fb.slots))
	for i, sl := range fb.slots {
		qs[i] = sl.query
		seqs[i] = sl.seq
	}
	opt := core.Options{Workers: s.cfg.Workers, Pool: s.cfg.Pool}
	if s.plan.Aligned && !queries.AnyConvergent(qs) {
		// Convergence batches have no frontier for delayed start to align.
		opt.Alignment = s.prof.AlignmentVector(qs)
	}
	if s.cfg.DirectionOptimized && s.prof != nil && s.plan.Engine.Name() == core.GlignIntra.Name() {
		opt.ReverseGraph = s.prof.Rev
	}
	epoch := s.epoch.Load()
	bt := s.run.StartBatch(s.plan.Engine.Name(), seqs, opt.Alignment)
	opt.Telemetry = bt
	start := s.clk.Now()
	br, err := s.plan.Engine.Run(s.g, qs, opt)
	bt.Finish(s.clk.Now().Sub(start))
	s.stats.batches.Add(1)
	s.occupancy.Observe(int64(len(qs)))
	if err != nil {
		for _, sl := range fb.slots {
			s.completeSlot(sl, nil, -1, fmt.Errorf("serve: batch failed: %w", err))
		}
	} else {
		// A bump during execution means the values belong to a retired
		// epoch: still correct answers for the waiters that asked under it,
		// but never cached (lookups compare entry epoch to the live one, so
		// even a racing insert could not be served stale).
		fresh := s.epoch.Load() == epoch
		for i, sl := range fb.slots {
			vals := br.QueryValues(i)
			if fresh {
				s.cachePut(sl.key, vals, epoch)
			}
			s.completeSlot(sl, vals, epoch, nil)
		}
	}
	s.observeServing()
}

// Stats builds the current serving metrics snapshot.
func (s *Server) Stats() *telemetry.ServingMetrics {
	s.mu.Lock()
	depth := s.pending
	s.mu.Unlock()
	shedByTier := make([]int64, NumTiers)
	for i := range shedByTier {
		shedByTier[i] = s.stats.shedByTier[i].Load()
	}
	return &telemetry.ServingMetrics{
		Submitted:          s.stats.submitted.Load(),
		Admitted:           s.stats.admitted.Load(),
		RejectedFull:       s.stats.rejectedFull.Load(),
		RejectedClosed:     s.stats.rejectedClosed.Load(),
		Canceled:           s.stats.canceled.Load(),
		DeadlineMisses:     s.stats.deadlineMisses.Load(),
		Completed:          s.stats.completed.Load(),
		Batches:            s.stats.batches.Load(),
		WindowFlushes:      s.stats.windowFlushes.Load(),
		SizeFlushes:        s.stats.sizeFlushes.Load(),
		DrainFlushes:       s.stats.drainFlushes.Load(),
		QueueDepth:         int64(depth),
		Epoch:              s.epoch.Load(),
		CacheHits:          s.stats.cacheHits.Load(),
		CacheMisses:        s.stats.cacheMisses.Load(),
		CacheEvictions:     s.stats.cacheEvictions.Load(),
		CacheInvalidations: s.stats.cacheInvalidations.Load(),
		CacheSize:          int64(s.cache.len()),
		DedupCoalesced:     s.stats.dedupCoalesced.Load(),
		AdmissionReorders:  s.stats.admissionReorders.Load(),
		Shed:               s.stats.shed.Load(),
		ShedByTier:         shedByTier,
		AdmissionWaitNs:    s.admissionWait.Snapshot(),
		BatchOccupancy:     s.occupancy.Snapshot(),
	}
}

// observeServing refreshes the collector's serving section (after every
// batch, every cache hit, and at Close).
func (s *Server) observeServing() {
	if s.cfg.Telemetry == nil {
		return
	}
	s.cfg.Telemetry.ObserveServing(s.Stats())
}

// Method returns the server's evaluation method.
func (s *Server) Method() string { return s.cfg.Method }
