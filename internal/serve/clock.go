package serve

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts the server's two time operations — reading the current
// time and arming a one-shot timer — so tests can substitute a FakeClock and
// drive window expiry and deadline misses deterministically. The zero
// Config uses the real wall clock.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// NewTimer arms a one-shot timer that delivers on its channel once d has
	// elapsed on this clock.
	NewTimer(d time.Duration) Timer
}

// Timer is a one-shot timer armed by a Clock.
type Timer interface {
	// C returns the delivery channel (buffered; at most one send ever).
	C() <-chan time.Time
	// Stop disarms the timer, reporting whether it was still armed. A false
	// return means the timer already fired; the delivery may still be
	// pending on C.
	Stop() bool
}

// RealClock returns the wall clock (time.Now / time.NewTimer).
func RealClock() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time                 { return time.Now() }
func (realClock) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

type realTimer struct{ t *time.Timer }

func (t realTimer) C() <-chan time.Time { return t.t.C }
func (t realTimer) Stop() bool          { return t.t.Stop() }

// FakeClock is a manually advanced Clock for deterministic tests. Time
// stands still until Advance moves it; timers fire synchronously inside
// Advance, in deadline order. BlockUntil lets a test wait until the system
// under test has armed a given number of timers before advancing, which
// replaces every sleep-based rendezvous.
type FakeClock struct {
	mu     sync.Mutex
	cond   *sync.Cond
	now    time.Time
	timers map[*fakeTimer]struct{}
}

// NewFakeClock returns a fake clock reading start.
func NewFakeClock(start time.Time) *FakeClock {
	c := &FakeClock{now: start, timers: map[*fakeTimer]struct{}{}}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// NewTimer implements Clock. A non-positive duration fires immediately.
func (c *FakeClock) NewTimer(d time.Duration) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{c: c, deadline: c.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		t.ch <- c.now
		return t
	}
	c.timers[t] = struct{}{}
	c.cond.Broadcast()
	return t
}

// Advance moves the clock forward by d, firing every armed timer whose
// deadline is reached, in deadline order. It returns after all fires have
// been delivered to their (buffered) channels.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	target := c.now.Add(d)
	var due []*fakeTimer
	for t := range c.timers {
		if !t.deadline.After(target) {
			due = append(due, t)
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i].deadline.Before(due[j].deadline) })
	for _, t := range due {
		delete(c.timers, t)
		t.ch <- t.deadline
	}
	c.now = target
	c.cond.Broadcast()
}

// BlockUntil blocks until at least n timers are armed on the clock — the
// deterministic handshake that proves the code under test has reached its
// timer-arming point before the test advances time.
func (c *FakeClock) BlockUntil(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.timers) < n {
		c.cond.Wait()
	}
}

// Armed returns the number of currently armed timers.
func (c *FakeClock) Armed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.timers)
}

type fakeTimer struct {
	c        *FakeClock
	deadline time.Time
	ch       chan time.Time
}

func (t *fakeTimer) C() <-chan time.Time { return t.ch }

func (t *fakeTimer) Stop() bool {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	if _, armed := t.c.timers[t]; !armed {
		return false
	}
	delete(t.c.timers, t)
	t.c.cond.Broadcast()
	return true
}
