package serve

import (
	"time"

	"github.com/glign/glign/internal/queries"
)

// slot is one batch slot of pending work: a query plus every ticket
// coalesced onto it. In-flight deduplication means identical submissions
// (same kernel + source, same epoch) share one slot — the slot occupies one
// unit of admission capacity and one lane of an evaluation batch, and its
// result fans out to every waiter. tickets and done are guarded by the
// server's mu; the other fields are immutable after creation (tier may be
// promoted under mu while the slot is still queued).
type slot struct {
	query queries.Query
	key   cacheKey
	seq   int
	tier  Tier

	tickets []*Ticket
	done    bool
}

// joinLocked coalesces t onto an existing pending slot for key, if one
// exists. Must be called with s.mu held. A join consumes no admission
// capacity; a higher-tier joiner promotes the slot (protecting it from
// shedding and tightening its per-tier accounting).
func (s *Server) joinLocked(key cacheKey, t *Ticket) bool {
	sl := s.inflight[key]
	if sl == nil || sl.done {
		return false
	}
	sl.tickets = append(sl.tickets, t)
	if t.tier > sl.tier {
		s.tierPending[tierIndex(sl.tier)]--
		s.tierPending[tierIndex(t.tier)]++
		sl.tier = t.tier
	}
	return true
}

// completeSlot fans one result (or error) out to every waiter of a slot,
// exactly once per ticket, and retires the slot from the dedup index so
// later identical submissions start fresh (they will normally hit the
// cache instead — runBatch installs the cache entry before calling this,
// and submissions consult the cache and the dedup index under one lock, so
// there is no window in which a repeat query finds neither).
func (s *Server) completeSlot(sl *slot, vals []queries.Value, epoch int64, err error) {
	s.mu.Lock()
	ts := sl.tickets
	sl.tickets = nil
	sl.done = true
	if s.inflight[sl.key] == sl {
		delete(s.inflight, sl.key)
	}
	s.mu.Unlock()
	for _, t := range ts {
		t.epoch = epoch
		s.finish(t, vals, err)
	}
	if err == nil {
		s.stats.completed.Add(int64(len(ts)))
	}
}

// resolveDead resolves the canceled and deadline-expired waiters of a
// still-queued slot at batch-formation time, reporting whether the slot
// emptied out entirely (in which case it is retired from the admission
// population and the dedup index). Deadlines and cancellation are
// per-ticket: one waiter's cancel never suppresses the computation other
// waiters of the same slot are still owed.
func (s *Server) resolveDead(sl *slot, now time.Time) bool {
	var dead []*Ticket
	var errs []error
	s.mu.Lock()
	kept := sl.tickets[:0]
	for _, t := range sl.tickets {
		switch {
		case t.ctx.Err() != nil:
			s.stats.canceled.Add(1)
			dead = append(dead, t)
			errs = append(errs, t.ctx.Err())
		case !t.deadline.IsZero() && !now.Before(t.deadline):
			s.stats.deadlineMisses.Add(1)
			dead = append(dead, t)
			errs = append(errs, ErrDeadline)
		default:
			s.admissionWait.Observe(now.Sub(t.admitted).Nanoseconds())
			kept = append(kept, t)
		}
	}
	sl.tickets = kept
	empty := len(kept) == 0
	if empty {
		sl.done = true
		if s.inflight[sl.key] == sl {
			delete(s.inflight, sl.key)
		}
		s.pending--
		s.tierPending[tierIndex(sl.tier)]--
	}
	s.mu.Unlock()
	for i, t := range dead {
		s.finish(t, nil, errs[i])
	}
	return empty
}
