package serve

import (
	"context"
	"testing"
	"time"

	"github.com/glign/glign/internal/oracle"
	"github.com/glign/glign/internal/queries"
)

// TestServeConvergenceAndKHopEndToEnd drives the new kernel paradigms
// through the live serving loop on the fake clock: a mixed buffer of
// PageRank, LabelProp, and bounded-reachability (KHOP) queries must split
// into paradigm-homogeneous engine batches at flush, every served vector
// must match the independent serial golden and pass the kernel's oracle
// invariants, a replayed stream must be answered from the result cache
// without re-execution, and a BumpEpoch must force recomputation at the new
// epoch. No wall-clock sleeps anywhere — all timing is FakeClock handshakes.
func TestServeConvergenceAndKHopEndToEnd(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	s := startServer(t, clk, nil)
	g := testGraph()
	ctx := context.Background()

	// mustGolden is the convergence-aware counterpart of mustValues:
	// engine.ReferenceRun has no Jacobi path, so the golden comes from the
	// oracle package, and the oracle invariants run on every served vector.
	mustGolden := func(tk *Ticket) []queries.Value {
		t.Helper()
		vals, err := tk.Wait(ctx)
		if err != nil {
			t.Fatalf("ticket %v: %v", tk.Query(), err)
		}
		want := oracle.GoldenValues(g, tk.Query())
		for v := range want {
			if vals[v] != want[v] {
				t.Fatalf("ticket %v: vertex %d = %v, golden %v", tk.Query(), v, vals[v], want[v])
			}
		}
		if vio := oracle.CheckResult(g, tk.Query(), vals); len(vio) != 0 {
			t.Fatalf("ticket %v violates oracle invariants: %+v", tk.Query(), vio)
		}
		return vals
	}

	// Phase 1 — computed: four queries interleaving both paradigms fill the
	// size-4 buffer with no clock movement, and the flush must split them
	// into one monotone and one convergence engine batch.
	buffer := []queries.Query{
		{Kernel: queries.PageRank, Source: 0},
		{Kernel: queries.KHop(2), Source: 1},
		{Kernel: queries.LabelProp, Source: 3},
		{Kernel: queries.KHop(2), Source: 4},
	}
	submit := func() []*Ticket {
		t.Helper()
		tks := make([]*Ticket, len(buffer))
		for i, q := range buffer {
			tk, err := s.Submit(ctx, q)
			if err != nil {
				t.Fatalf("submit %v: %v", q, err)
			}
			tks[i] = tk
		}
		return tks
	}
	pass1 := submit()
	computed := make([][]queries.Value, len(pass1))
	for i, tk := range pass1 {
		computed[i] = mustGolden(tk)
		if e := tk.ResultEpoch(); e != 0 {
			t.Fatalf("phase 1 ticket %d epoch = %d, want 0", i, e)
		}
	}
	st := s.Stats()
	if st.SizeFlushes != 1 || st.Batches != 2 {
		t.Fatalf("phase 1 stats = %+v, want 1 size flush split into 2 paradigm-homogeneous batches", st)
	}

	// Phase 2 — cached replay: the identical stream is served from the
	// result cache byte-for-byte, with zero additional engine batches.
	pass2 := submit()
	for i, tk := range pass2 {
		vals := mustGolden(tk)
		for v := range vals {
			if vals[v] != computed[i][v] {
				t.Fatalf("cached ticket %d differs from computed at vertex %d", i, v)
			}
		}
	}
	st = s.Stats()
	if st.Batches != 2 || st.CacheHits != int64(len(buffer)) {
		t.Fatalf("phase 2 stats = %+v, want batches still 2 and %d cache hits", st, len(buffer))
	}

	// Phase 3 — invalidation: after a BumpEpoch the cached entries are
	// stale, so a replayed pair (one per paradigm) recomputes at epoch 1.
	// Two queries cannot hit the size cap; the window timer flushes them.
	if e := s.BumpEpoch(); e != 1 {
		t.Fatalf("BumpEpoch = %d, want 1", e)
	}
	stale := []queries.Query{buffer[0], buffer[1]}
	tks := make([]*Ticket, len(stale))
	for i, q := range stale {
		tk, err := s.Submit(ctx, q)
		if err != nil {
			t.Fatalf("post-bump submit %v: %v", q, err)
		}
		tks[i] = tk
	}
	clk.BlockUntil(1)
	clk.Advance(50 * time.Millisecond)
	for i, tk := range tks {
		mustGolden(tk)
		if e := tk.ResultEpoch(); e != 1 {
			t.Fatalf("post-bump ticket %d epoch = %d, want 1", i, e)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.Batches != 4 || st.WindowFlushes != 1 {
		t.Fatalf("phase 3 stats = %+v, want 4 total batches (bump recomputed both paradigms) and 1 window flush", st)
	}
}
