package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Impurity summaries: a module-wide classification of every declared function
// as pure (absent from the map) or impure, with a human-readable reason. The
// base facts are syntactic — writes that leave the function's own frame,
// sync/atomic calls, channel sends, goroutine launches — and the closure is
// taken over the static call graph, so a kernel method that delegates its
// side effect to a helper two packages away is still caught at the call site.
//
// The write classifier traces one level of pointer aliasing: `p := &local;
// *p = v` stays pure, while `p := &recv.field; *p = v` (or a deref of any
// pointer whose target cannot be pinned to function-local storage) is impure.
// This closes the historic kernelmono gap where any write through a locally
// declared pointer was exempt regardless of what it pointed at.

// Impurity returns the memoized impure-function summary over Program.All.
// Keys are declared module functions; values are reasons phrased to follow
// "<fn> " ("writes non-local state (x)", "calls Set, which ...").
func (pr *Program) Impurity() map[*types.Func]string {
	if pr.impurityMemo != nil {
		return pr.impurityMemo
	}
	imp := map[*types.Func]string{}
	pr.impurityMemo = imp

	// Direct facts, in deterministic package/file/decl order.
	type entry struct {
		pkg *Package
		fd  *ast.FuncDecl
		fn  *types.Func
	}
	var decls []entry
	for _, pkg := range pr.All {
		for _, fd := range funcDecls(pkg) {
			fn := funcOf(pkg, fd)
			if fn == nil || fd.Body == nil {
				continue
			}
			decls = append(decls, entry{pkg, fd, fn})
			if r := directImpurity(pkg, fd); r != "" {
				imp[fn] = r
			}
		}
	}

	// Transitive closure over the call graph. The scan order is fixed and
	// ByCaller preserves source order, so the reason each function ends up
	// with (hence every report quoting it) is deterministic.
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			if _, done := imp[d.fn]; done {
				continue
			}
			for _, site := range pr.Graph.ByCaller[d.fn] {
				if r, bad := imp[site.Callee]; bad {
					imp[d.fn] = "calls " + site.Callee.Name() + ", which " + r
					changed = true
					break
				}
			}
		}
	}
	return imp
}

// directImpurity returns the first (source-order) intraprocedural reason fd
// is impure, or "" when every visible effect stays in fd's own frame.
func directImpurity(pkg *Package, fd *ast.FuncDecl) string {
	info := pkg.Info
	aliases := pointerAliases(info, fd)
	var reason string
	set := func(r string) {
		if reason == "" {
			reason = r
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && info.Defs[id] != nil {
					continue // new local binding
				}
				if r := writeImpurity(info, fd, aliases, lhs); r != "" {
					set(r)
					break
				}
			}
		case *ast.IncDecStmt:
			set(writeImpurity(info, fd, aliases, x.X))
		case *ast.CallExpr:
			if _, ok := isPkgCall(info, x, "sync/atomic"); ok {
				set("calls sync/atomic")
			}
		case *ast.SendStmt:
			set("sends on a channel")
		case *ast.GoStmt:
			set("launches a goroutine")
		}
		return true
	})
	return reason
}

// writeImpurity classifies the target of an assignment or inc/dec statement
// inside fd. It returns "" when the write provably lands in fd's own frame
// and a reason (phrased to follow the function name) otherwise.
func writeImpurity(info *types.Info, fd *ast.FuncDecl, aliases map[*types.Var]*types.Var, target ast.Expr) string {
	localTo := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= fd.Pos() && obj.Pos() <= fd.End()
	}

	// Explicit deref: *p = v writes wherever p points, not p itself. The
	// alias map rescues the `p := &local` idiom; everything else is shared
	// until proven otherwise.
	if st, ok := ast.Unparen(target).(*ast.StarExpr); ok {
		if id, ok := ast.Unparen(st.X).(*ast.Ident); ok {
			if pv, ok := objectOf(info, id).(*types.Var); ok {
				if r := aliases[pv]; r != nil && localTo(r) {
					return ""
				}
				return fmt.Sprintf("writes through pointer %s whose target may be shared", pv.Name())
			}
		}
		return "writes through a pointer whose target may be shared"
	}

	root := rootVar(info, target)
	if root == nil {
		// Unresolvable targets (results of calls, map-of-map cells) are
		// beyond this classifier, matching the historic analyzer.
		return ""
	}
	if root.IsField() {
		// A field write is frame-local only when the base is a method-local
		// value, or a local pointer the alias map ties to local storage.
		if base, ok := baseIdentObj(info, target).(*types.Var); ok && localTo(base) {
			if _, isPtr := base.Type().Underlying().(*types.Pointer); !isPtr {
				return ""
			}
			if r := aliases[base]; r != nil && localTo(r) {
				return ""
			}
		}
		return fmt.Sprintf("writes non-local state (%s)", root.Name())
	}
	if !localTo(root) {
		return fmt.Sprintf("writes package-level state (%s)", root.Name())
	}
	return ""
}

// pointerAliases maps each local pointer variable bound as p := &x (or
// q := p) to the variable owning the storage it points at. A variable
// rebound to a different root, or bound to anything unresolvable (a call
// result, a parameter, pointer arithmetic through other derefs), maps to nil
// so callers treat its pointee as unknown. The map is flow-insensitive but
// single-assignment-biased: conflicting rebinds poison the entry rather than
// picking a winner.
func pointerAliases(info *types.Info, root ast.Node) map[*types.Var]*types.Var {
	aliases := map[*types.Var]*types.Var{}
	bind := func(lhs, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		v, ok := objectOf(info, id).(*types.Var)
		if !ok || v == nil {
			return
		}
		if _, isPtr := v.Type().Underlying().(*types.Pointer); !isPtr {
			return
		}
		var r *types.Var
		switch x := ast.Unparen(rhs).(type) {
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				r = aliasRoot(info, x.X)
			}
		case *ast.Ident:
			if src, ok := objectOf(info, x).(*types.Var); ok {
				r = aliases[src]
			}
		}
		if prev, seen := aliases[v]; seen && prev != r {
			r = nil
		}
		aliases[v] = r
	}
	ast.Inspect(root, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
			for i := range as.Lhs {
				bind(as.Lhs[i], as.Rhs[i])
			}
		}
		return true
	})
	return aliases
}

// aliasRoot resolves the operand of &e to the variable owning the storage,
// or nil when the storage cannot be pinned to a variable: selectors through
// pointers live behind the pointer, slice and map elements live in a backing
// store allocated elsewhere.
func aliasRoot(info *types.Info, e ast.Expr) *types.Var {
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if tv, ok := info.Types[x.X]; ok {
				if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
					return nil
				}
			}
			e = x.X
		case *ast.IndexExpr:
			if tv, ok := info.Types[x.X]; ok {
				if _, isArr := tv.Type.Underlying().(*types.Array); !isArr {
					return nil
				}
			}
			e = x.X
		case *ast.Ident:
			v, _ := objectOf(info, x).(*types.Var)
			return v
		default:
			return nil
		}
	}
}
