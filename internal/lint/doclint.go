package lint

import (
	"go/ast"
	"strings"
)

// DocLint checks that the package carries a package comment on at least one
// file (the doc.go convention), so `go doc` always gives an orientation
// paragraph. It is the PR-1 cmd/doclint check folded into the glignlint
// driver; cmd/doclint remains as a thin wrapper.
func DocLint() *Analyzer {
	return &Analyzer{
		Name: "doclint",
		Doc:  "requires every package to carry a package comment",
		Run:  runDocLint,
	}
}

func runDocLint(p *Pass) {
	var first *ast.File
	for _, f := range p.Pkg.Files {
		if first == nil || p.Pkg.Fset.Position(f.Package).Filename <
			p.Pkg.Fset.Position(first.Package).Filename {
			first = f
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return
		}
	}
	if first == nil {
		return
	}
	p.Reportf(first.Package, "package %s has no package comment", p.Pkg.Name)
}
