// Package lint is the engine behind cmd/glignlint: a stdlib-only
// (go/parser + go/ast + go/types) static-analysis driver with
// project-specific analyzers for the concurrency and engine invariants this
// repository depends on.
//
// Glign's performance comes from many queries sharing one traversal, so its
// hot paths (EdgeMap lanes, the query-oblivious frontier, batch schedulers)
// mix sync/atomic relaxation with plain loads under the hand-rolled par.For
// runtime. Those are exactly the invariants that convention alone cannot
// keep: a plain read of a CAS-updated value array cell, a closure passed to
// par.For that writes a captured variable, a telemetry method missing its
// nil-receiver guard, an allocation repeated every traversal iteration, a
// worker goroutine leaked past return. Each analyzer machine-checks one such
// invariant; see LINTING.md for the catalogue and the paper sections that
// motivate them.
//
// The analyzers share a flow-sensitive, interprocedural substrate: a
// statement-granular CFG per function (BuildCFG), a forward-dataflow
// fixpoint engine (ForwardFlow), a module-wide call graph, a registry of
// goroutine spawn sites (Spawns — the roots the cross-goroutine deadlock
// tier analyzes from), and derived summaries — atomic reachability with
// wrapper propagation, purity classification, held-lock entry facts,
// transitive lock-acquisition and channel close/send effects, and the
// receiver-freshness proof that retires quiesce suppressions. All of it
// is plain go/ast + go/types; the driver has no dependency outside the
// standard library.
//
// Findings can be suppressed with a justification:
//
//	//lint:ignore glignlint/<analyzer> <reason>
//
// placed on the offending line, on the line directly above it, or in the
// doc comment of the enclosing function (which suppresses the whole
// function for that analyzer). The reason is mandatory.
package lint
