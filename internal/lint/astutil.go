package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// objectOf resolves an identifier to its object via Uses or Defs.
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// rootVar peels selectors, indexing, parens and derefs off an lvalue-ish
// expression and returns the innermost *types.Var it addresses: the field
// for a.b.c / a.b[i], the variable for plain identifiers. It returns nil
// for anything else (calls, composite literals, conversions...).
func rootVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok {
				if v, ok := sel.Obj().(*types.Var); ok {
					return v
				}
				return nil
			}
			// Package-qualified name: resolve the selected identifier.
			if v, ok := objectOf(info, x.Sel).(*types.Var); ok {
				return v
			}
			return nil
		case *ast.Ident:
			if v, ok := objectOf(info, x).(*types.Var); ok {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// baseIdentObj returns the object of the base identifier of a selector /
// index chain (res for res.Edges, s for s.words[i]), or nil.
func baseIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.Ident:
			return objectOf(info, x)
		default:
			return nil
		}
	}
}

// pkgNameOf returns the imported package if id is a package qualifier
// (the "atomic" of atomic.AddInt64), else nil.
func pkgNameOf(info *types.Info, e ast.Expr) *types.Package {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if pn, ok := objectOf(info, id).(*types.PkgName); ok {
		return pn.Imported()
	}
	return nil
}

// isPkgCall reports whether call invokes function fn (any of fns if several
// are given) of the package with import path pkgPath, returning the matched
// name.
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath string, fns ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	p := pkgNameOf(info, sel.X)
	if p == nil || p.Path() != pkgPath {
		return "", false
	}
	if len(fns) == 0 {
		return sel.Sel.Name, true
	}
	for _, fn := range fns {
		if sel.Sel.Name == fn {
			return fn, true
		}
	}
	return "", false
}

// importPathEndsWith reports whether path is pkg or ends in "/"+pkg, so
// module-internal packages match regardless of module prefix.
func importPathEndsWith(path, pkg string) bool {
	return path == pkg || strings.HasSuffix(path, "/"+pkg)
}

// funcDecls yields every function declaration of the package with a
// human-readable name ("(*Subset).Add", "pullIteration").
func funcDecls(pkg *Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				out = append(out, fd)
			}
		}
	}
	return out
}

// funcDisplayName renders a FuncDecl name including its receiver type.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	star := ""
	if s, ok := t.(*ast.StarExpr); ok {
		star = "*"
		t = s.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return "(" + star + id.Name + ")." + fd.Name.Name
	}
	return fd.Name.Name
}
