package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package as the analyzers see it.
// Test files (*_test.go) are excluded: the analyzers guard production
// invariants, and test-only races are the -race stage's job.
type Package struct {
	// Dir is the package directory on disk; ImportPath its import path
	// within the module (testdata fixtures get a module-rooted pseudo-path).
	Dir        string
	ImportPath string
	// Name is the package name from the package clauses.
	Name string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Finding is one analyzer diagnostic. Suppressed findings are retained (for
// counting and the lint baseline) but do not fail the run.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`

	Suppressed     bool   `json:"suppressed,omitempty"`
	SuppressReason string `json:"suppress_reason,omitempty"`
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	if f.Suppressed {
		s += fmt.Sprintf(" (suppressed: %s)", f.SuppressReason)
	}
	return s
}

// Pass is the per-(package, analyzer) context handed to Analyzer.Run. Prog
// carries the module-wide view (call graph, all loaded packages, memoized
// CFGs and interprocedural summaries); findings are still reported against
// the single package in Pkg.
type Pass struct {
	Pkg  *Package
	Prog *Program

	analyzer string
	findings *[]Finding
	fset     *token.FileSet
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.analyzer,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check run over every loaded package.
type Analyzer struct {
	// Name is the identifier used in findings and suppression directives
	// (glignlint/<Name>).
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// encodes (shown by glignlint -help-analyzers and quoted in LINTING.md).
	Doc string
	Run func(*Pass)
}

// All returns the full analyzer registry in stable (alphabetical) order; the
// sort enforces the order even if the literal drifts, because -help-analyzers
// output and the fixture-coverage check in verify.sh both key off it.
func All() []*Analyzer {
	as := []*Analyzer{
		AtomicMix(),
		CancelPath(),
		ChanLife(),
		ClockDet(),
		DocLint(),
		HotAlloc(),
		KernelMono(),
		LockGuard(),
		LockOrder(),
		NilRecv(),
		ParCapture(),
		StaleIgnore(),
		WaitJoin(),
	}
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	return as
}

// StaleIgnore reports //lint:ignore directives that match no finding of the
// run: a suppression whose finding was fixed (or whose analyzer scope moved)
// is dead weight that silently re-authorizes the next real finding on that
// line. The check runs in the driver after every other selected analyzer has
// finished with the package — it needs their full finding set — so the Run
// hook here is a no-op; lint.Run special-cases the name.
//
// A directive is stale when it names at least one analyzer selected for this
// run and none of the named, selected analyzers produced a finding in its
// range. Directives naming only unselected analyzers are skipped (a subset
// run cannot judge them), and directives naming staleignore itself are never
// reported (they exist to suppress this very check).
func StaleIgnore() *Analyzer {
	return &Analyzer{
		Name: "staleignore",
		Doc: "reports //lint:ignore directives that no longer match any " +
			"finding of the selected analyzers (driver-level check)",
		Run: func(*Pass) {},
	}
}

// Select resolves a comma-separated analyzer-name list against the registry.
func Select(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimPrefix(strings.TrimSpace(n), "glignlint/")
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run loads the packages matched by patterns (relative to the enclosing
// module; "dir/..." recurses) and runs every analyzer over each, returning
// findings sorted by file/line/col/analyzer with suppressions applied.
// Finding paths are module-relative (slash-separated), so reports and
// baselines are machine-independent.
//
// All matched packages load before any analyzer runs: interprocedural
// analyses need the module-wide Program (call graph plus every package's
// AST) assembled first.
func Run(analyzers []*Analyzer, patterns []string) ([]Finding, error) {
	l, err := newLoader()
	if err != nil {
		return nil, err
	}
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var analyzed []*Package
	for _, dir := range dirs {
		pkg, err := l.load(dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil { // no non-test Go files
			continue
		}
		analyzed = append(analyzed, pkg)
	}
	prog := newProgram(l, analyzed)

	runNames := map[string]bool{}
	for _, a := range analyzers {
		runNames[a.Name] = true
	}
	var findings []Finding
	for _, pkg := range analyzed {
		sup := collectSuppressions(pkg)
		for _, a := range analyzers {
			var raw []Finding
			a.Run(&Pass{Pkg: pkg, Prog: prog, analyzer: a.Name, findings: &raw, fset: pkg.Fset})
			for i := range raw {
				if reason, ok := sup.match(a.Name, raw[i].File, raw[i].Line); ok {
					raw[i].Suppressed = true
					raw[i].SuppressReason = reason
				}
			}
			findings = append(findings, raw...)
		}
		if runNames["staleignore"] {
			findings = append(findings, staleFindings(pkg, sup, runNames)...)
		}
	}
	for i := range findings {
		findings[i].File = l.relPath(findings[i].File)
	}
	SortFindings(findings)
	return findings, nil
}

// SortFindings orders findings by file, line, column, then analyzer — the
// canonical order every emitter (text, JSON report, baseline) relies on, so
// output never depends on analyzer scheduling or map iteration.
func SortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// ActiveCount returns the number of unsuppressed findings.
func ActiveCount(findings []Finding) int {
	n := 0
	for _, f := range findings {
		if !f.Suppressed {
			n++
		}
	}
	return n
}

// suppression is one parsed //lint:ignore directive: it silences the named
// analyzers on the lines [fromLine, toLine] of file. used records whether the
// directive matched at least one finding this run (the staleignore input).
type suppression struct {
	analyzers []string
	file      string
	fromLine  int
	toLine    int
	reason    string
	line      int // the directive's own source line, for stale reports
	col       int
	used      bool
}

type suppressionSet []*suppression

// directiveRE matches "//lint:ignore glignlint/name[,glignlint/name...] reason".
var directiveRE = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)\s+(.+?)\s*$`)

// collectSuppressions parses every //lint:ignore directive of the package.
// A directive covers its own line and the next line; a directive inside a
// function's doc comment covers the whole declaration.
func collectSuppressions(pkg *Package) suppressionSet {
	var out suppressionSet
	for _, f := range pkg.Files {
		// Doc-comment directives extend over the whole declaration.
		funcRanges := map[*ast.CommentGroup][2]int{}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			funcRanges[fd.Doc] = [2]int{
				pkg.Fset.Position(fd.Pos()).Line,
				pkg.Fset.Position(fd.End()).Line,
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				var names []string
				for _, n := range strings.Split(m[1], ",") {
					names = append(names, strings.TrimPrefix(n, "glignlint/"))
				}
				pos := pkg.Fset.Position(c.Pos())
				s := &suppression{
					analyzers: names,
					file:      pos.Filename,
					fromLine:  pos.Line,
					toLine:    pos.Line + 1,
					reason:    m[2],
					line:      pos.Line,
					col:       pos.Column,
				}
				if r, ok := funcRanges[cg]; ok {
					s.fromLine, s.toLine = r[0], r[1]
				}
				out = append(out, s)
			}
		}
	}
	return out
}

func (ss suppressionSet) match(analyzer, file string, line int) (string, bool) {
	for _, s := range ss {
		if s.file != file || line < s.fromLine || line > s.toLine {
			continue
		}
		for _, a := range s.analyzers {
			if a == analyzer {
				s.used = true
				return s.reason, true
			}
		}
	}
	return "", false
}

// staleFindings implements the staleignore check over one package: every
// directive that names a selected analyzer yet matched nothing is itself a
// finding at the directive's position. A stale finding is suppressible like
// any other (by a directive naming glignlint/staleignore); directives that
// name staleignore are exempt from the check to keep the tower finite.
func staleFindings(pkg *Package, sup suppressionSet, runNames map[string]bool) []Finding {
	var raw []Finding
	for _, s := range sup {
		if s.used {
			continue
		}
		covered, mentionsStale := false, false
		for _, a := range s.analyzers {
			if a == "staleignore" {
				mentionsStale = true
			} else if runNames[a] {
				covered = true
			}
		}
		if mentionsStale || !covered {
			continue
		}
		raw = append(raw, Finding{
			Analyzer: "staleignore",
			File:     s.file,
			Line:     s.line,
			Col:      s.col,
			Message: fmt.Sprintf("suppression for glignlint/%s matches no finding of this run; "+
				"delete the stale directive", strings.Join(s.analyzers, ",glignlint/")),
		})
	}
	for i := range raw {
		if reason, ok := sup.match("staleignore", raw[i].File, raw[i].Line); ok {
			raw[i].Suppressed = true
			raw[i].SuppressReason = reason
		}
	}
	return raw
}
