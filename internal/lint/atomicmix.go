package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// atomicStdFuncs are the sync/atomic package functions whose first argument
// is the address of the word they operate on.
var atomicStdFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true,
	"LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true,
	"StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true,
	"SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true,
	"CompareAndSwapUint32": true, "CompareAndSwapUint64": true,
	"CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

// AtomicMix flags variables (typically struct fields and slices) that are
// updated through sync/atomic somewhere in the module but loaded or stored
// plainly elsewhere — the dominant data-race shape in lane-sharing engines:
// one function CASes ValArray cells or frontier words while another reads
// them without synchronization. Plain access to such a variable is only
// sound in a quiesced phase (before the value is published or after all
// workers have joined); every such site must either become atomic, be
// *proved* quiesced by the freshness dataflow (every caller passes a
// receiver that has not escaped yet), or carry a suppression stating the
// quiesce argument.
//
// The analysis is interprocedural and module-wide: atomic usage propagates
// through wrapper functions (a helper that does the CAS marks the argument
// roots at every call site, across packages), and whole-slice reads or
// writes of an atomically accessed array (copy(dst, s.words),
// append(x, s.words...)) are flagged alongside element accesses.
func AtomicMix() *Analyzer {
	return &Analyzer{
		Name: "atomicmix",
		Doc: "flags variables accessed via sync/atomic anywhere in the module " +
			"but with plain loads/stores elsewhere (wrapper-aware, whole-slice " +
			"reads included)",
		Run: runAtomicMix,
	}
}

// atomicFacts is the module-wide interprocedural summary: every variable
// whose storage some sync/atomic call can reach, plus, per function, the
// parameter slots (receiver first) whose pointee reaches an atomic op — the
// wrapper summary that lets call sites propagate the property.
type atomicFacts struct {
	vars   map[*types.Var]token.Pos
	params map[*types.Func]map[int]bool
}

// AtomicFacts computes (once per run) the module-wide atomic-reachability
// summary by iterating the per-function scan to a fixpoint over the call
// graph: round k propagates atomic usage through wrapper chains of depth k.
func (pr *Program) AtomicFacts() *atomicFacts {
	if pr.atomicFactsMemo != nil {
		return pr.atomicFactsMemo
	}
	f := &atomicFacts{
		vars:   map[*types.Var]token.Pos{},
		params: map[*types.Func]map[int]bool{},
	}
	for changed := true; changed; {
		changed = false
		for _, pkg := range pr.All {
			for _, fd := range funcDecls(pkg) {
				if fd.Body == nil {
					continue
				}
				if f.scanFunc(pkg, fd) {
					changed = true
				}
			}
		}
	}
	pr.atomicFactsMemo = f
	return f
}

func (f *atomicFacts) markVar(v *types.Var, pos token.Pos) bool {
	if _, ok := f.vars[v]; ok {
		return false
	}
	f.vars[v] = pos
	return true
}

func (f *atomicFacts) markParam(fn *types.Func, idx int) bool {
	m := f.params[fn]
	if m == nil {
		m = map[int]bool{}
		f.params[fn] = m
	}
	if m[idx] {
		return false
	}
	m[idx] = true
	return true
}

// paramObjs returns the receiver (if any) followed by the parameters of fd,
// as declared objects, so summary slots line up with call-site arguments.
func paramObjs(pkg *Package, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	appendFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				out = append(out, pkg.Info.Defs[name])
			}
		}
	}
	appendFields(fd.Recv)
	appendFields(fd.Type.Params)
	return out
}

// scanFunc performs one round of fact collection over fd, returning whether
// anything new was learned.
func (f *atomicFacts) scanFunc(pkg *Package, fd *ast.FuncDecl) bool {
	info := pkg.Info
	fobj := funcOf(pkg, fd)
	changed := false

	// Pointer-alias locals (addr := &v.bits[i]) map to their roots.
	alias := map[types.Object]*types.Var{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			un, ok := rhs.(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			root := rootVar(info, un.X)
			if root == nil {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := objectOf(info, id); obj != nil {
					alias[obj] = root
				}
			}
		}
		return true
	})

	// Parameter objects of fd, for wrapper-summary propagation.
	params := paramObjs(pkg, fd)
	paramIndex := map[types.Object]int{}
	for i, obj := range params {
		if obj != nil {
			paramIndex[obj] = i
		}
	}

	// markTarget records that the storage behind expr reaches an atomic op:
	// a concrete variable root, an aliased root, or — when expr is one of
	// fd's own pointer parameters — a wrapper-summary slot on fd itself.
	markTarget := func(expr ast.Expr, pos token.Pos) {
		switch arg := ast.Unparen(expr).(type) {
		case *ast.UnaryExpr:
			if arg.Op == token.AND {
				if root := rootVar(info, arg.X); root != nil {
					if f.markVar(root, pos) {
						changed = true
					}
				}
			}
		case *ast.Ident:
			obj := objectOf(info, arg)
			if obj == nil {
				return
			}
			if root := alias[obj]; root != nil {
				if f.markVar(root, pos) {
					changed = true
				}
				return
			}
			if idx, ok := paramIndex[obj]; ok && fobj != nil {
				if _, isPtr := obj.Type().Underlying().(*types.Pointer); isPtr {
					if f.markParam(fobj, idx) {
						changed = true
					}
				}
			}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := isPkgCall(info, call, "sync/atomic"); ok && atomicStdFuncs[name] && len(call.Args) > 0 {
			markTarget(call.Args[0], call.Pos())
			return true
		}
		callee, _ := calleeOf(info, call)
		if callee == nil {
			return true
		}
		slots := f.params[callee]
		if len(slots) == 0 {
			return true
		}
		// Line call-site expressions up with the callee's summary slots.
		args := make([]ast.Expr, 0, len(call.Args)+1)
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
			recv := receiverExpr(info, call)
			if recv == nil {
				return true // method expression / value — no receiver here
			}
			args = append(args, recv)
		}
		args = append(args, call.Args...)
		for idx := range slots {
			if idx < len(args) {
				markTarget(args[idx], call.Pos())
			}
		}
		return true
	})
	return changed
}

func runAtomicMix(p *Pass) {
	info := p.Pkg.Info
	facts := p.Prog.AtomicFacts()
	if len(facts.vars) == 0 {
		return
	}
	atomicAt := facts.vars

	// Alias map for this package's flag pass (addr locals are how the atomic
	// call sites themselves appear — never plain accesses).
	for _, fd := range funcDecls(p.Pkg) {
		if fd.Body == nil {
			continue
		}
		fobj := funcOf(p.Pkg, fd)
		var recvObj types.Object
		if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
			recvObj = p.Pkg.Info.Defs[fd.Recv.List[0].Names[0]]
		}
		// quiesced: the freshness dataflow proved every caller holds an
		// unpublished receiver, so plain access to receiver state is sound.
		quiesced := func(accessed ast.Expr) bool {
			if fobj == nil || recvObj == nil {
				return false
			}
			if baseIdentObj(info, accessed) != recvObj {
				return false
			}
			return p.Prog.receiverQuiesced(fobj)
		}

		protected := map[ast.Node]bool{}
		seen := map[string]bool{}
		report := func(pos token.Pos, v *types.Var, how string) {
			position := p.Pkg.Fset.Position(pos)
			key := fmt.Sprintf("%s:%d:%p", position.Filename, position.Line, v)
			if seen[key] {
				return
			}
			seen[key] = true
			at := p.Pkg.Fset.Position(atomicAt[v])
			p.Reportf(pos,
				"%s is updated with sync/atomic (e.g. %s:%d) but %s here in %s; "+
					"use sync/atomic or suppress with a quiesce justification",
				v.Name(), filepath.Base(at.Filename), at.Line,
				how, funcDisplayName(fd))
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.UnaryExpr:
				if x.Op == token.AND {
					protected[ast.Unparen(x.X)] = true
				}
			case *ast.KeyValueExpr:
				// Struct composite-literal keys resolve to field objects but
				// are construction, not loads.
				if id, ok := x.Key.(*ast.Ident); ok {
					protected[id] = true
				}
			case *ast.CallExpr:
				// Whole-slice bulk accesses: copy reads its source (and
				// writes its destination) element by element with plain
				// loads/stores; append(x, s...) reads every element of s.
				if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
					switch {
					case id.Name == "copy" && len(x.Args) == 2:
						for argIdx, arg := range x.Args {
							root := rootVar(info, ast.Unparen(arg))
							if root == nil {
								continue
							}
							if _, tracked := atomicAt[root]; tracked && isIndexable(root.Type()) && !quiesced(arg) {
								how := "bulk-read plainly by copy"
								if argIdx == 0 {
									how = "bulk-written plainly by copy"
								}
								report(arg.Pos(), root, how)
							}
						}
					case id.Name == "append" && x.Ellipsis.IsValid() && len(x.Args) >= 2:
						src := ast.Unparen(x.Args[len(x.Args)-1])
						if root := rootVar(info, src); root != nil {
							if _, tracked := atomicAt[root]; tracked && isIndexable(root.Type()) && !quiesced(src) {
								report(src.Pos(), root, "bulk-read plainly by append")
							}
						}
					}
				}
			case *ast.IndexExpr:
				if protected[x] {
					return true
				}
				root := rootVar(info, x.X)
				if root == nil {
					return true
				}
				if _, tracked := atomicAt[root]; tracked && isIndexable(root.Type()) && !quiesced(x) {
					report(x.Pos(), root, "accessed plainly")
				}
			case *ast.RangeStmt:
				root := rootVar(info, x.X)
				if root == nil {
					return true
				}
				_, tracked := atomicAt[root]
				if tracked && isIndexable(root.Type()) && x.Value != nil && !quiesced(x.X) {
					if id, ok := x.Value.(*ast.Ident); !ok || id.Name != "_" {
						report(x.Range, root, "accessed plainly")
					}
				}
			case *ast.SelectorExpr:
				if protected[x] {
					// The address of this selection is being taken; its Sel
					// identifier is not a plain load either.
					protected[x.Sel] = true
					return true
				}
				root := rootVar(info, x)
				if root == nil {
					return true
				}
				if _, tracked := atomicAt[root]; tracked && flagScalar(root) && !quiesced(x) {
					report(x.Pos(), root, "accessed plainly")
				}
			case *ast.Ident:
				if protected[x] {
					return true
				}
				if v, ok := objectOf(info, x).(*types.Var); ok {
					if _, tracked := atomicAt[v]; tracked && flagScalar(v) {
						report(x.Pos(), v, "accessed plainly")
					}
				}
			}
			return true
		})
	}
}

// isIndexable reports whether t is a slice or array (an element-wise
// container whose header/whole-value uses are benign).
func isIndexable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	}
	return false
}

// flagScalar reports whether a direct (non-element) use of v is worth
// flagging: scalar struct fields and package-level variables only. A scalar
// local whose address reaches sync/atomic is the sound accumulate-then-join
// pattern (read after the workers joined, within one function); the
// cross-function mixing this analyzer hunts requires shared storage.
func flagScalar(v *types.Var) bool {
	if isIndexable(v.Type()) {
		return false
	}
	if v.IsField() {
		return true
	}
	// Package-level: the variable's scope is a package scope (whose parent
	// is the universe scope) — works across packages now that atomic facts
	// are module-wide.
	return v.Parent() != nil && v.Parent().Parent() == types.Universe
}
