package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// atomicFuncs are the sync/atomic package functions whose first argument is
// the address of the word they operate on.
var atomicFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true,
	"LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true,
	"StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true,
	"SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true,
	"CompareAndSwapUint32": true, "CompareAndSwapUint64": true,
	"CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

// AtomicMix flags variables (typically struct fields and slices) that are
// updated through sync/atomic somewhere in a package but loaded or stored
// plainly elsewhere — the dominant data-race shape in lane-sharing engines:
// one function CASes ValArray cells or frontier words while another reads
// them without synchronization. Plain access to such a variable is only
// sound in a quiesced phase (before the value is published or after all
// workers have joined); every such site must either become atomic or carry
// a suppression stating the quiesce argument.
func AtomicMix() *Analyzer {
	return &Analyzer{
		Name: "atomicmix",
		Doc: "flags variables accessed via sync/atomic in one place but with " +
			"plain loads/stores in another",
		Run: runAtomicMix,
	}
}

func runAtomicMix(p *Pass) {
	info := p.Pkg.Info

	// Pass 0: map pointer-alias locals (addr := &v.bits[i]) to their roots.
	alias := map[types.Object]*types.Var{}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				un, ok := rhs.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				root := rootVar(info, un.X)
				if root == nil {
					continue
				}
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					if obj := objectOf(info, id); obj != nil {
						alias[obj] = root
					}
				}
			}
			return true
		})
	}

	// Pass 1: collect every variable whose address reaches a sync/atomic
	// call, with one exemplar position each.
	atomicAt := map[*types.Var]token.Pos{}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if name, ok := isPkgCall(info, call, "sync/atomic"); !ok || !atomicFuncs[name] {
				return true
			}
			var root *types.Var
			switch arg := ast.Unparen(call.Args[0]).(type) {
			case *ast.UnaryExpr:
				if arg.Op == token.AND {
					root = rootVar(info, arg.X)
				}
			case *ast.Ident:
				root = alias[objectOf(info, arg)]
			}
			if root != nil {
				if _, ok := atomicAt[root]; !ok {
					atomicAt[root] = call.Pos()
				}
			}
			return true
		})
	}
	if len(atomicAt) == 0 {
		return
	}

	// Pass 2: flag plain element/value accesses to those variables. Slice
	// header uses (len, append, passing the slice, rebinding it) are not
	// element accesses and stay unflagged; so does taking an address, which
	// is how the atomic call sites themselves appear.
	for _, fd := range funcDecls(p.Pkg) {
		if fd.Body == nil {
			continue
		}
		protected := map[ast.Node]bool{}
		seen := map[string]bool{}
		report := func(pos token.Pos, v *types.Var) {
			position := p.Pkg.Fset.Position(pos)
			key := fmt.Sprintf("%s:%d:%p", position.Filename, position.Line, v)
			if seen[key] {
				return
			}
			seen[key] = true
			at := p.Pkg.Fset.Position(atomicAt[v])
			p.Reportf(pos,
				"%s is updated with sync/atomic (e.g. %s:%d) but accessed plainly here in %s; "+
					"use sync/atomic or suppress with a quiesce justification",
				v.Name(), filepath.Base(at.Filename), at.Line, funcDisplayName(fd))
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.UnaryExpr:
				if x.Op == token.AND {
					protected[ast.Unparen(x.X)] = true
				}
			case *ast.KeyValueExpr:
				// Struct composite-literal keys resolve to field objects but
				// are construction, not loads.
				if id, ok := x.Key.(*ast.Ident); ok {
					protected[id] = true
				}
			case *ast.IndexExpr:
				if protected[x] {
					return true
				}
				root := rootVar(info, x.X)
				if root == nil {
					return true
				}
				if _, tracked := atomicAt[root]; tracked && isIndexable(root.Type()) {
					report(x.Pos(), root)
				}
			case *ast.RangeStmt:
				root := rootVar(info, x.X)
				if root == nil {
					return true
				}
				_, tracked := atomicAt[root]
				if tracked && isIndexable(root.Type()) && x.Value != nil {
					if id, ok := x.Value.(*ast.Ident); !ok || id.Name != "_" {
						report(x.Range, root)
					}
				}
			case *ast.SelectorExpr:
				if protected[x] {
					// The address of this selection is being taken; its Sel
					// identifier is not a plain load either.
					protected[x.Sel] = true
					return true
				}
				root := rootVar(info, x)
				if root == nil {
					return true
				}
				if _, tracked := atomicAt[root]; tracked && flagScalar(p.Pkg, root) {
					report(x.Pos(), root)
				}
			case *ast.Ident:
				if protected[x] {
					return true
				}
				if v, ok := objectOf(info, x).(*types.Var); ok {
					if _, tracked := atomicAt[v]; tracked && flagScalar(p.Pkg, v) {
						report(x.Pos(), v)
					}
				}
			}
			return true
		})
	}
}

// isIndexable reports whether t is a slice or array (an element-wise
// container whose header/whole-value uses are benign).
func isIndexable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	}
	return false
}

// flagScalar reports whether a direct (non-element) use of v is worth
// flagging: scalar struct fields and package-level variables only. A scalar
// local whose address reaches sync/atomic is the sound accumulate-then-join
// pattern (read after the workers joined, within one function); the
// cross-function mixing this analyzer hunts requires shared storage.
func flagScalar(pkg *Package, v *types.Var) bool {
	if isIndexable(v.Type()) {
		return false
	}
	return v.IsField() || (pkg.Types != nil && v.Parent() == pkg.Types.Scope())
}
