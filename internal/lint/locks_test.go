package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typecheckSrc parses and typechecks one file of source (source-importing its
// stdlib dependencies, so no prebuilt export data is needed) and returns the
// file with its filled-in type info.
func typecheckSrc(t *testing.T, src string) (*ast.File, *types.Info, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "locks_test_input.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return f, info, fset
}

// funcBody returns the body of the named function declaration.
func funcBody(t *testing.T, f *ast.File, name string) *ast.BlockStmt {
	t.Helper()
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name && fd.Body != nil {
			return fd.Body
		}
	}
	t.Fatalf("no function %q", name)
	return nil
}

func TestLockKeyString(t *testing.T) {
	mu := types.NewVar(token.NoPos, nil, "mu", nil)
	if got := (lockKey{mutex: mu, base: "s"}).String(); got != "s.mu" {
		t.Errorf("field key String() = %q, want s.mu", got)
	}
	if got := (lockKey{mutex: mu}).String(); got != "mu" {
		t.Errorf("bare key String() = %q, want mu", got)
	}
}

func TestCanonPath(t *testing.T) {
	cases := []struct {
		expr, want string
	}{
		{"s", "s"},
		{"s.c", "s.c"},
		{"s.c.d", "s.c.d"},
		{"(*s).c", "s.c"}, // pointer deref is path-transparent
		{"xs[0].c", ""},   // index expressions are not canonical
		{"f(x).c", ""},    // call results name no stable instance
		{"(<-ch).c", ""},  // neither do channel receives
	}
	for _, c := range cases {
		e, err := parser.ParseExpr(c.expr)
		if err != nil {
			t.Fatalf("%q: %v", c.expr, err)
		}
		if got := canonPath(e); got != c.want {
			t.Errorf("canonPath(%s) = %q, want %q", c.expr, got, c.want)
		}
	}
}

// TestLockFactMerge pins the two merge disciplines: must (guard checking)
// intersects and keeps the weaker mode; may (leak checking) unions and keeps
// the stronger mode.
func TestLockFactMerge(t *testing.T) {
	mu := types.NewVar(token.NoPos, nil, "mu", nil)
	rw := types.NewVar(token.NoPos, nil, "rw", nil)
	kmu := lockKey{mutex: mu, base: "s"}
	krw := lockKey{mutex: rw, base: "s"}

	a := lockFact{kmu: lockW, krw: lockR}
	b := lockFact{kmu: lockR}

	must := (&lockProblem{}).Merge(a, b).(lockFact)
	if must[kmu] != lockR {
		t.Errorf("must merge of W and R = %v, want lockR (weaker wins)", must[kmu])
	}
	if _, held := must[krw]; held {
		t.Error("must merge kept a lock held on only one branch")
	}

	may := (&lockProblem{may: true}).Merge(a, b).(lockFact)
	if may[kmu] != lockW {
		t.Errorf("may merge of W and R = %v, want lockW (stronger wins)", may[kmu])
	}
	if may[krw] != lockR {
		t.Error("may merge dropped a lock held on one branch")
	}
}

// lockSrc is a minimal guarded struct exercised by the flow tests below.
const lockSrc = `package p

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

func deferEarly(s *S, cond bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cond {
		return
	}
	s.n = 1
}

func panics(s *S) {
	s.mu.Lock()
	panic("held")
}

func balanced(s *S) int {
	s.mu.Lock()
	v := s.n
	s.mu.Unlock()
	return v
}
`

// TestLockFlowDeferPostlude runs the held-locks dataflow over a body whose
// only unlock is deferred: the raw flow must still show the mutex held at
// Exit (defers are postludes, not edges), the guarded write must see it held,
// and deferReleasedKeys must account for the deferred unlock.
func TestLockFlowDeferPostlude(t *testing.T) {
	f, info, _ := typecheckSrc(t, lockSrc)
	cfg := BuildCFG(funcBody(t, f, "deferEarly"))
	res := ForwardFlow(cfg, &lockProblem{info: info, entry: lockFact{}, may: true})

	atExit := res.In[cfg.Exit].(lockFact)
	if len(atExit) != 1 {
		t.Fatalf("locks held at Exit = %v, want exactly the deferred one", atExit)
	}
	for k, m := range atExit {
		if k.String() != "s.mu" || m != lockW {
			t.Errorf("held at Exit: %s in mode %v, want s.mu in lockW", k, m)
		}
	}

	released := deferReleasedKeys(info, cfg)
	if len(released) != 1 {
		t.Fatalf("deferReleasedKeys = %v, want the deferred s.mu unlock", released)
	}
	for k := range released {
		if k.String() != "s.mu" {
			t.Errorf("deferred release of %s, want s.mu", k)
		}
	}

	// The guarded write observes the lock: FactAt replays the flow to the
	// statement, and the defer in between is a no-op for the transfer.
	var write ast.Node
	ast.Inspect(funcBody(t, f, "deferEarly"), func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			write = as
		}
		return true
	})
	held := FactAt(cfg, &lockProblem{info: info, entry: lockFact{}}, res, write).(lockFact)
	if len(held) != 1 {
		t.Errorf("locks held at s.n = 1: %v, want s.mu", held)
	}
}

// TestLockFlowPanicPath checks the panic edge carries the held set: a lock
// acquired before an undeferred panic is still held at the Panic pseudo-block
// and there is nothing deferred to release it.
func TestLockFlowPanicPath(t *testing.T) {
	f, info, _ := typecheckSrc(t, lockSrc)
	cfg := BuildCFG(funcBody(t, f, "panics"))
	res := ForwardFlow(cfg, &lockProblem{info: info, entry: lockFact{}, may: true})

	atPanic, _ := res.In[cfg.Panic].(lockFact)
	if len(atPanic) != 1 {
		t.Fatalf("locks held at Panic = %v, want s.mu", atPanic)
	}
	if released := deferReleasedKeys(info, cfg); len(released) != 0 {
		t.Errorf("deferReleasedKeys = %v, want none", released)
	}
}

// TestLockFlowBalanced checks the plain Lock/Unlock pairing drains the fact
// before the normal exit.
func TestLockFlowBalanced(t *testing.T) {
	f, info, _ := typecheckSrc(t, lockSrc)
	cfg := BuildCFG(funcBody(t, f, "balanced"))
	res := ForwardFlow(cfg, &lockProblem{info: info, entry: lockFact{}, may: true})
	if atExit, _ := res.In[cfg.Exit].(lockFact); len(atExit) != 0 {
		t.Errorf("locks held at Exit = %v, want none", atExit)
	}
}

// rwSrc exercises the RWMutex side of the substrate: an RLock-then-Lock
// upgrade on one canonical key, and the clean release-then-relock shape.
const rwSrc = `package p

import "sync"

type G struct {
	rw sync.RWMutex
	v  int
}

func upgrade(g *G) {
	g.rw.RLock()
	defer g.rw.RUnlock()
	g.rw.Lock()
	g.v++
	g.rw.Unlock()
}

func reacquire(g *G) {
	g.rw.RLock()
	v := g.v
	g.rw.RUnlock()
	g.rw.Lock()
	g.v = v + 1
	g.rw.Unlock()
}
`

// TestLockFlowRWUpgrade pins the fact lockorder's upgrade check relies on:
// at the Lock call of an RLock-then-Lock sequence on the same canonical path
// the must flow shows the key read-held (the self-deadlock edge), while a
// released-then-relocked sequence shows it free.
func TestLockFlowRWUpgrade(t *testing.T) {
	f, info, _ := typecheckSrc(t, rwSrc)

	lockCallIn := func(name string) ast.Node {
		var call ast.Node
		ast.Inspect(funcBody(t, f, name), func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				if _, op, ok := mutexOp(info, c); ok && op == "Lock" {
					call = c
				}
			}
			return true
		})
		if call == nil {
			t.Fatalf("no Lock call in %s", name)
		}
		return call
	}

	cfg := BuildCFG(funcBody(t, f, "upgrade"))
	problem := &lockProblem{info: info, entry: lockFact{}}
	res := ForwardFlow(cfg, problem)
	held := FactAt(cfg, problem, res, lockCallIn("upgrade")).(lockFact)
	if len(held) != 1 {
		t.Fatalf("facts at the upgrading Lock = %v, want g.rw read-held", held)
	}
	for k, m := range held {
		if k.String() != "g.rw" || m != lockR {
			t.Errorf("at the upgrading Lock: %s held in mode %v, want g.rw in lockR", k, m)
		}
	}

	cfg = BuildCFG(funcBody(t, f, "reacquire"))
	problem = &lockProblem{info: info, entry: lockFact{}}
	res = ForwardFlow(cfg, problem)
	if held := FactAt(cfg, problem, res, lockCallIn("reacquire")).(lockFact); len(held) != 0 {
		t.Errorf("facts at the re-acquiring Lock = %v, want none (RUnlock released the read side)", held)
	}
}
