package lint

import (
	"go/ast"
	"go/types"
)

// valuesApproved are the methods of queries.Values (plus its constructor)
// allowed to touch the raw bit-pattern array directly. Everything else must
// relax through the CAS helpers (Improve / ImproveMin / ImproveMax) or the
// atomic accessors, so the "write if better" protocol — the only thing that
// makes concurrent lane relaxation sound (paper Theorem 3.2 requires
// monotone updates) — cannot be bypassed.
var valuesApproved = map[string]bool{
	"NewValues": true,
	"Len":       true,
	"Get":       true,
	"Set":       true,
	"Fill":      true,
	"Improve":   true, "ImproveMin": true, "ImproveMax": true,
	"Snapshot": true,
	"Bytes":    true,
}

// valuesMutators are the Values methods that change cells; kernel methods
// must stay pure and may not call them.
var valuesMutators = map[string]bool{
	"Set": true, "Fill": true,
	"Improve": true, "ImproveMin": true, "ImproveMax": true,
}

// KernelMono enforces the two relaxation invariants of the queries package:
// (1) the Values.bits array is only touched inside the approved accessor/CAS
// helpers, so no code path can install a value without the monotone
// "write if better" protocol; (2) Kernel implementations (Relax, Better,
// Identity, SourceValue, Name) are pure — no writes to non-local state (even
// through local pointer aliases), no sync/atomic calls, no Values mutations,
// and no calls to module helpers the interprocedural purity summary marks
// impure — because engines invoke them from every worker on every edge with
// no synchronization of their own.
func KernelMono() *Analyzer {
	return &Analyzer{
		Name: "kernelmono",
		Doc: "checks queries kernels relax only through the approved CAS " +
			"helpers and stay pure",
		Run: runKernelMono,
	}
}

func runKernelMono(p *Pass) {
	if p.Pkg.Name != "queries" {
		return
	}
	checkBitsConfinement(p)
	checkKernelPurity(p)
}

// checkBitsConfinement flags any use of the Values.bits field outside the
// approved helper set.
func checkBitsConfinement(p *Pass) {
	bitsVar := lookupField(p.Pkg.Types, "Values", "bits")
	if bitsVar == nil {
		return
	}
	for _, fd := range funcDecls(p.Pkg) {
		if fd.Body == nil || valuesApproved[fd.Name.Name] {
			continue
		}
		reported := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || reported {
				return !reported
			}
			if objectOf(p.Pkg.Info, id) == bitsVar {
				reported = true
				p.Reportf(id.Pos(),
					"%s touches Values.bits directly; relaxation must go through the "+
						"approved CAS helpers (Improve/ImproveMin/ImproveMax) or atomic "+
						"accessors (Get/Set)",
					funcDisplayName(fd))
			}
			return true
		})
	}
}

// kernelMethodNames are the Kernel interface methods whose implementations
// must be pure.
var kernelMethodNames = map[string]bool{
	"Name": true, "Identity": true, "SourceValue": true, "Relax": true, "Better": true,
}

// checkKernelPurity flags impure statements inside Kernel implementations.
func checkKernelPurity(p *Pass) {
	scope := p.Pkg.Types.Scope()
	iobj := scope.Lookup("Kernel")
	if iobj == nil {
		return
	}
	iface, ok := iobj.Type().Underlying().(*types.Interface)
	if !ok {
		return
	}
	info := p.Pkg.Info
	impure := p.Prog.Impurity()
	for _, fd := range funcDecls(p.Pkg) {
		if fd.Recv == nil || fd.Body == nil || !kernelMethodNames[fd.Name.Name] {
			continue
		}
		rt := info.Types[fd.Recv.List[0].Type].Type
		if rt == nil || !(types.Implements(rt, iface) || types.Implements(types.NewPointer(rt), iface)) {
			continue
		}
		declName := funcDisplayName(fd)
		aliases := pointerAliases(info, fd)
		flagWrite := func(target ast.Expr) {
			// The classifier traces local pointer aliases, so `p := &k.state;
			// *p = v` is flagged while `p := &scratch; *p = v` stays exempt.
			if r := writeImpurity(info, fd, aliases, target); r != "" {
				p.Reportf(target.Pos(),
					"kernel method %s %s; kernels must be pure — "+
						"they run on every worker for every edge without synchronization",
					declName, r)
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && info.Defs[id] != nil {
						continue // new local binding
					}
					flagWrite(lhs)
				}
			case *ast.IncDecStmt:
				flagWrite(x.X)
			case *ast.CallExpr:
				if _, ok := isPkgCall(info, x, "sync/atomic"); ok {
					p.Reportf(x.Pos(),
						"kernel method %s calls sync/atomic; kernels must be pure value "+
							"functions — the engine owns all synchronization",
						declName)
					return true
				}
				if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
					if s, ok := info.Selections[sel]; ok && valuesMutators[sel.Sel.Name] {
						if named := namedOf(s.Recv()); named != nil && named.Obj().Name() == "Values" {
							p.Reportf(x.Pos(),
								"kernel method %s mutates a Values array (%s); kernels "+
									"propose values, engines install them",
								declName, sel.Sel.Name)
							return true
						}
					}
				}
				// Helper calls: the module-wide purity summary carries the
				// side effect back to this call site even when the helper
				// lives in another package.
				if callee, _ := calleeOf(info, x); callee != nil {
					if r, bad := impure[callee]; bad && p.Prog.Graph.DeclOf[callee] != nil {
						p.Reportf(x.Pos(),
							"kernel method %s calls %s, which %s; kernels must be pure — "+
								"move the side effect into the engine",
							declName, callee.Name(), r)
					}
				}
			}
			return true
		})
	}
}

// lookupField finds the named field of a named struct type in pkg.
func lookupField(pkg *types.Package, typeName, fieldName string) *types.Var {
	if pkg == nil {
		return nil
	}
	obj := pkg.Scope().Lookup(typeName)
	if obj == nil {
		return nil
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == fieldName {
			return st.Field(i)
		}
	}
	return nil
}

// namedOf unwraps pointers to reach a named type.
func namedOf(t types.Type) *types.Named {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x
		default:
			return nil
		}
	}
}
