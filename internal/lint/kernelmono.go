package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// valuesApproved are the methods of queries.Values (plus its constructor)
// allowed to touch the raw bit-pattern array directly. Everything else must
// relax through the CAS helpers (Improve / ImproveMin / ImproveMax) or the
// atomic accessors, so the "write if better" protocol — the only thing that
// makes concurrent lane relaxation sound (paper Theorem 3.2 requires
// monotone updates) — cannot be bypassed.
var valuesApproved = map[string]bool{
	"NewValues": true,
	"Len":       true,
	"Get":       true,
	"Set":       true,
	"Fill":      true,
	"Improve":   true, "ImproveMin": true, "ImproveMax": true,
	"Snapshot": true,
	"Bytes":    true,
}

// valuesMutators are the Values methods that change cells; kernel methods
// must stay pure and may not call them.
var valuesMutators = map[string]bool{
	"Set": true, "Fill": true,
	"Improve": true, "ImproveMin": true, "ImproveMax": true,
}

// KernelMono enforces the three kernel invariants of the queries package:
// (1) the Values.bits array is only touched inside the approved accessor/CAS
// helpers, so no code path can install a value without the monotone
// "write if better" protocol; (2) kernel implementations — the monotone
// methods (Relax, Better, Identity, SourceValue, Name) and the
// iterate-to-convergence methods (InitialValue, Step, Residual, Epsilon,
// MaxRounds) — are pure: no writes to non-local state (even through local
// pointer aliases), no sync/atomic calls, no Values mutations, and no calls
// to module helpers the interprocedural purity summary marks impure —
// because engines invoke them from every worker on every edge (or every
// vertex per Jacobi round) with no synchronization of their own; (3) every
// named type implementing Kernel declares its evaluation paradigm: it is
// either resolvable from the Monotone() registry or implements
// ConvergenceKernel, and no ConvergenceKernel hides in the monotone
// registry — engines dispatch on this classification, so an unclassified
// kernel has no sound evaluation path.
func KernelMono() *Analyzer {
	return &Analyzer{
		Name: "kernelmono",
		Doc: "checks queries kernels relax only through the approved CAS " +
			"helpers, stay pure, and declare their evaluation paradigm",
		Run: runKernelMono,
	}
}

func runKernelMono(p *Pass) {
	if p.Pkg.Name != "queries" {
		return
	}
	checkBitsConfinement(p)
	checkKernelPurity(p)
	checkParadigmClassification(p)
}

// checkBitsConfinement flags any use of the Values.bits field outside the
// approved helper set.
func checkBitsConfinement(p *Pass) {
	bitsVar := lookupField(p.Pkg.Types, "Values", "bits")
	if bitsVar == nil {
		return
	}
	for _, fd := range funcDecls(p.Pkg) {
		if fd.Body == nil || valuesApproved[fd.Name.Name] {
			continue
		}
		reported := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || reported {
				return !reported
			}
			if objectOf(p.Pkg.Info, id) == bitsVar {
				reported = true
				p.Reportf(id.Pos(),
					"%s touches Values.bits directly; relaxation must go through the "+
						"approved CAS helpers (Improve/ImproveMin/ImproveMax) or atomic "+
						"accessors (Get/Set)",
					funcDisplayName(fd))
			}
			return true
		})
	}
}

// kernelMethodNames are the Kernel interface methods whose implementations
// must be pure.
var kernelMethodNames = map[string]bool{
	"Name": true, "Identity": true, "SourceValue": true, "Relax": true, "Better": true,
}

// convKernelMethodNames are the ConvergenceKernel methods whose
// implementations must be pure: the Jacobi evaluators call Step on every
// vertex of every round from every worker, under the same no-synchronization
// contract as Relax.
var convKernelMethodNames = map[string]bool{
	"InitialValue": true, "Step": true, "Residual": true, "Epsilon": true, "MaxRounds": true,
}

// ifaceNamed looks a package-scope interface up by name (nil when absent or
// not an interface).
func ifaceNamed(pkg *types.Package, name string) *types.Interface {
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// implementsEither reports whether t or *t implements iface.
func implementsEither(t types.Type, iface *types.Interface) bool {
	return iface != nil && (types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface))
}

// checkKernelPurity flags impure statements inside Kernel and
// ConvergenceKernel implementations.
func checkKernelPurity(p *Pass) {
	iface := ifaceNamed(p.Pkg.Types, "Kernel")
	convIface := ifaceNamed(p.Pkg.Types, "ConvergenceKernel")
	if iface == nil {
		return
	}
	info := p.Pkg.Info
	impure := p.Prog.Impurity()
	for _, fd := range funcDecls(p.Pkg) {
		name := fd.Name.Name
		if fd.Recv == nil || fd.Body == nil || !(kernelMethodNames[name] || convKernelMethodNames[name]) {
			continue
		}
		rt := info.Types[fd.Recv.List[0].Type].Type
		if rt == nil {
			continue
		}
		// The two method-name sets are disjoint, so exactly one gate applies.
		if kernelMethodNames[name] && !implementsEither(rt, iface) {
			continue
		}
		if convKernelMethodNames[name] && !implementsEither(rt, convIface) {
			continue
		}
		declName := funcDisplayName(fd)
		aliases := pointerAliases(info, fd)
		flagWrite := func(target ast.Expr) {
			// The classifier traces local pointer aliases, so `p := &k.state;
			// *p = v` is flagged while `p := &scratch; *p = v` stays exempt.
			if r := writeImpurity(info, fd, aliases, target); r != "" {
				p.Reportf(target.Pos(),
					"kernel method %s %s; kernels must be pure — "+
						"they run on every worker for every edge without synchronization",
					declName, r)
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && info.Defs[id] != nil {
						continue // new local binding
					}
					flagWrite(lhs)
				}
			case *ast.IncDecStmt:
				flagWrite(x.X)
			case *ast.CallExpr:
				if _, ok := isPkgCall(info, x, "sync/atomic"); ok {
					p.Reportf(x.Pos(),
						"kernel method %s calls sync/atomic; kernels must be pure value "+
							"functions — the engine owns all synchronization",
						declName)
					return true
				}
				if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
					if s, ok := info.Selections[sel]; ok && valuesMutators[sel.Sel.Name] {
						if named := namedOf(s.Recv()); named != nil && named.Obj().Name() == "Values" {
							p.Reportf(x.Pos(),
								"kernel method %s mutates a Values array (%s); kernels "+
									"propose values, engines install them",
								declName, sel.Sel.Name)
							return true
						}
					}
				}
				// Helper calls: the module-wide purity summary carries the
				// side effect back to this call site even when the helper
				// lives in another package.
				if callee, _ := calleeOf(info, x); callee != nil {
					if r, bad := impure[callee]; bad && p.Prog.Graph.DeclOf[callee] != nil {
						p.Reportf(x.Pos(),
							"kernel method %s calls %s, which %s; kernels must be pure — "+
								"move the side effect into the engine",
							declName, callee.Name(), r)
					}
				}
			}
			return true
		})
	}
}

// checkParadigmClassification enforces the kernel registry contract stated
// on queries.Monotone(): every named type implementing Kernel either
// resolves from Monotone()'s return list or implements ConvergenceKernel
// (and never both roles at once). The check runs only when the package has
// the full registry shape — a Kernel interface, a ConvergenceKernel
// interface, and a Monotone function — so partial mirrors stay silent.
func checkParadigmClassification(p *Pass) {
	iface := ifaceNamed(p.Pkg.Types, "Kernel")
	convIface := ifaceNamed(p.Pkg.Types, "ConvergenceKernel")
	mono := topLevelFunc(p.Pkg, "Monotone")
	if iface == nil || convIface == nil || mono == nil || mono.Body == nil {
		return
	}
	info := p.Pkg.Info

	// Resolve the concrete named types reachable from Monotone()'s return
	// expressions: identifiers through their package-level var initializers,
	// constructor calls through the callee's return statements, composite
	// literals directly. Unresolvable elements (interface-typed with no
	// visible initializer) are skipped, never guessed.
	approved := map[*types.Named]bool{}
	var resolve func(e ast.Expr, seen map[*types.Func]bool) *types.Named
	resolve = func(e ast.Expr, seen map[*types.Func]bool) *types.Named {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if init := varInitExpr(p.Pkg, x.Name); init != nil {
				return resolve(init, seen)
			}
		case *ast.UnaryExpr:
			return resolve(x.X, seen)
		case *ast.CallExpr:
			callee, _ := calleeOf(info, x)
			fd := p.Prog.Graph.DeclOf[callee]
			if callee == nil || fd == nil || fd.Body == nil || seen[callee] {
				return nil
			}
			seen[callee] = true
			var named *types.Named
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				ret, ok := n.(*ast.ReturnStmt)
				if !ok || named != nil {
					return named == nil
				}
				for _, r := range ret.Results {
					if nt := resolve(r, seen); nt != nil {
						named = nt
					}
				}
				return true
			})
			return named
		default:
			if tv, ok := info.Types[e]; ok && tv.Type != nil {
				return namedOf(tv.Type)
			}
		}
		return nil
	}
	ast.Inspect(mono.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		for _, elt := range lit.Elts {
			named := resolve(elt, map[*types.Func]bool{})
			if named == nil {
				continue
			}
			approved[named] = true
			if implementsEither(named, convIface) {
				p.Reportf(elt.Pos(),
					"Monotone() lists %s, which implements ConvergenceKernel; "+
						"iterate-to-convergence kernels belong in Convergent() — the two "+
						"paradigms have disjoint evaluation paths",
					named.Obj().Name())
			}
		}
		return true
	})

	// Every remaining concrete Kernel type must carry one paradigm.
	scope := p.Pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		if !implementsEither(named, iface) {
			continue
		}
		if approved[named] || implementsEither(named, convIface) {
			continue
		}
		p.Reportf(tn.Pos(),
			"kernel type %s implements Kernel but neither resolves from the "+
				"Monotone() registry nor implements ConvergenceKernel; an "+
				"unclassified kernel has no evaluation paradigm and no engine may "+
				"run it",
			name)
	}
}

// topLevelFunc finds the package-level function decl with the given name.
func topLevelFunc(pkg *Package, name string) *ast.FuncDecl {
	for _, fd := range funcDecls(pkg) {
		if fd.Recv == nil && fd.Name.Name == name {
			return fd
		}
	}
	return nil
}

// varInitExpr finds the initializer expression of the package-level var with
// the given name (nil when absent or declared without a value).
func varInitExpr(pkg *Package, name string) ast.Expr {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					if id.Name == name && i < len(vs.Values) {
						return vs.Values[i]
					}
				}
			}
		}
	}
	return nil
}

// lookupField finds the named field of a named struct type in pkg.
func lookupField(pkg *types.Package, typeName, fieldName string) *types.Var {
	if pkg == nil {
		return nil
	}
	obj := pkg.Scope().Lookup(typeName)
	if obj == nil {
		return nil
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == fieldName {
			return st.Field(i)
		}
	}
	return nil
}

// namedOf unwraps pointers to reach a named type.
func namedOf(t types.Type) *types.Named {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x
		default:
			return nil
		}
	}
}
