package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Freshness analysis: a forward, flow-sensitive "fresh object" dataflow used
// to prove quiesced phases. A local variable is *fresh* at a program point
// when it was bound to a newly allocated object (&T{...}, new(T), or a value
// composite literal) in this function and the object has not escaped on any
// path reaching the point: it has not been returned, stored anywhere,
// captured by a function literal, launched in a go/defer statement, or
// passed as an ordinary argument to a call. Method calls *on* the variable
// (v.Fill(x)) keep it fresh — they execute synchronously before the object
// is published, which is exactly the constructor idiom
// (v := &Values{...}; v.Fill(init); return v) this analysis exists to
// recognize.
//
// Freshness is deliberately a proof sketch, not a full escape analysis: the
// kill rule is "any use of the identifier outside the benign positions",
// which over-kills (conservative) in every case except pointers derived
// from a fresh object's interior (p := &v.cells[0]) — those are not tracked,
// so code wanting the quiesce proof must touch the object through the
// variable itself.

// freshSet is the dataflow fact: the set of currently fresh locals.
type freshSet map[types.Object]bool

// freshProblem implements FlowProblem for the freshness analysis.
type freshProblem struct {
	info *types.Info
}

func (fp *freshProblem) Entry() any { return freshSet{} }

func (fp *freshProblem) Merge(a, b any) any {
	// Must-analysis: fresh only when fresh on every incoming path.
	fa, fb := a.(freshSet), b.(freshSet)
	out := freshSet{}
	for obj := range fa {
		if fb[obj] {
			out[obj] = true
		}
	}
	return out
}

func (fp *freshProblem) Equal(a, b any) bool {
	fa, fb := a.(freshSet), b.(freshSet)
	if len(fa) != len(fb) {
		return false
	}
	for obj := range fa {
		if !fb[obj] {
			return false
		}
	}
	return true
}

func (fp *freshProblem) Transfer(n ast.Node, fact any) any {
	in := fact.(freshSet)
	out := freshSet{}
	for obj := range in {
		out[obj] = true
	}

	// Kill: any reference to a fresh variable outside a benign position
	// (receiver/base of a selector, or an assignment target) escapes it.
	benign := map[*ast.Ident]bool{}
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				benign[id] = true
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					benign[id] = true
				}
			}
		}
		return true
	})
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && !benign[id] {
			if obj := objectOf(fp.info, id); obj != nil {
				delete(out, obj)
			}
		}
		return true
	})

	// Gen: direct bindings to a fresh allocation.
	switch x := n.(type) {
	case *ast.AssignStmt:
		if len(x.Lhs) == len(x.Rhs) {
			for i, lhs := range x.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := objectOf(fp.info, id)
				if obj == nil {
					continue
				}
				if isFreshExpr(x.Rhs[i]) {
					out[obj] = true
				} else {
					delete(out, obj)
				}
			}
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != len(vs.Names) {
					continue
				}
				for i, name := range vs.Names {
					if obj := fp.info.Defs[name]; obj != nil && isFreshExpr(vs.Values[i]) {
						out[obj] = true
					}
				}
			}
		}
	}
	return out
}

// isFreshExpr reports whether e denotes a brand-new allocation: &T{...},
// new(T), or a composite literal value.
func isFreshExpr(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op != token.AND {
			return false
		}
		_, ok := ast.Unparen(x.X).(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		id, ok := ast.Unparen(x.Fun).(*ast.Ident)
		return ok && id.Name == "new"
	}
	return false
}

// freshAnalysis bundles the fixpoint of one function for point queries.
type freshAnalysis struct {
	cfg     *CFG
	problem *freshProblem
	res     *FlowResult
}

// freshFor returns the memoized freshness fixpoint of fd.
func (pr *Program) freshFor(pkg *Package, fd *ast.FuncDecl) *freshAnalysis {
	if pr.freshMemo == nil {
		pr.freshMemo = map[*ast.FuncDecl]*freshAnalysis{}
	}
	if fa, ok := pr.freshMemo[fd]; ok {
		return fa
	}
	cfg := pr.CFG(fd.Body)
	problem := &freshProblem{info: pkg.Info}
	fa := &freshAnalysis{cfg: cfg, problem: problem, res: ForwardFlow(cfg, problem)}
	pr.freshMemo[fd] = fa
	return fa
}

// receiverQuiesced reports whether every static call of method fn happens on
// a receiver the freshness dataflow proves unpublished at the call point.
// When it holds, plain (non-atomic) accesses to receiver state inside fn are
// quiesced by construction — no other goroutine can hold a reference — and
// atomicmix drops the finding instead of demanding a suppression.
//
// The proof obligation is module-wide: it fails if fn escapes as a value
// (method value, assignment), is called from inside a function literal, or
// has any call site whose receiver is not a provably fresh local.
func (pr *Program) receiverQuiesced(fn *types.Func) bool {
	if pr.quiescedMemo == nil {
		pr.quiescedMemo = map[*types.Func]bool{}
	}
	if q, ok := pr.quiescedMemo[fn]; ok {
		return q
	}
	// Seed false so (mutually) recursive call chains do not loop and do not
	// count themselves as proof.
	pr.quiescedMemo[fn] = false
	pr.quiescedMemo[fn] = pr.proveReceiverQuiesced(fn)
	return pr.quiescedMemo[fn]
}

func (pr *Program) proveReceiverQuiesced(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if pr.Graph.FuncRefs[fn] > 0 {
		return false // escapes as a method value; caller set incomplete
	}
	sites := pr.Graph.ByCallee[fn]
	if len(sites) == 0 {
		return false // no visible caller: assume external/live use
	}
	for _, site := range sites {
		if site.InLit {
			return false // the literal may run after publication
		}
		recv := receiverExpr(site.Pkg.Info, site.Call)
		id, ok := ast.Unparen(recv).(*ast.Ident)
		if !ok {
			return false
		}
		callerFd := pr.Graph.DeclOf[site.Caller]
		if callerFd == nil || callerFd.Body == nil {
			return false
		}
		fa := pr.freshFor(site.Pkg, callerFd)
		fact := FactAt(fa.cfg, fa.problem, fa.res, site.Call)
		if fact == nil {
			return false
		}
		obj := objectOf(site.Pkg.Info, id)
		if obj == nil || !fact.(freshSet)[obj] {
			return false
		}
	}
	return true
}
