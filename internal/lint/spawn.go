package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// Goroutine-spawn registry: the shared substrate for the cross-goroutine
// analyzers (lockorder, chanlife). Every construct that puts a body on
// another goroutine — a `go` statement spawning a literal or a named
// function, and a closure handed to the internal/par runtime (whose workers
// execute it concurrently) — becomes one Spawn record: an analysis root
// whose body must be flowed from an empty entry fact (the spawner's
// flow-sensitive state does not carry across the spawn) together with the
// variables the body captures from its environment (the state the goroutines
// actually share).

// SpawnKind classifies how a spawned body comes to run concurrently.
type SpawnKind uint8

const (
	// SpawnGo is a `go` statement: go f(...) or go func(){...}(...).
	SpawnGo SpawnKind = iota
	// SpawnPar is a closure handed to the internal/par runtime (par.For,
	// par.ForReduce, pool.For, ...): the pool's persistent workers run it.
	SpawnPar
)

// Spawn is one goroutine root in the module.
type Spawn struct {
	Pkg  *Package
	Kind SpawnKind
	// Encl is the function declaration whose body contains the spawn site.
	Encl *ast.FuncDecl
	// Site is the spawning node: the *ast.GoStmt, or the internal/par
	// *ast.CallExpr the closure is an argument of.
	Site ast.Node
	// Lit is the spawned function literal; nil when a named function or
	// method is spawned directly (go s.batchLoop()).
	Lit *ast.FuncLit
	// Callee is the resolved named callee for a non-literal `go f(...)`;
	// nil for literals and for calls the call graph cannot resolve.
	Callee *types.Func
	// Captured lists the variables the literal references that are declared
	// outside it — the state shared between spawner and spawned body — in
	// declaration-position order. Empty for named callees (they share only
	// their arguments and receiver).
	Captured []*types.Var
}

// Label renders a human-readable name for the spawned body, anchored on the
// enclosing declaration ("goroutine in (*Server).New", "par closure in
// runBatch").
func (s *Spawn) Label() string {
	kind := "goroutine"
	if s.Kind == SpawnPar {
		kind = "par closure"
	}
	if s.Callee != nil {
		return kind + " " + s.Callee.Name() + " spawned in " + funcDisplayName(s.Encl)
	}
	return kind + " in " + funcDisplayName(s.Encl)
}

// Spawns returns the memoized module-wide spawn registry in deterministic
// (package import path, source position) order.
func (pr *Program) Spawns() []*Spawn {
	if pr.spawnsMemo == nil {
		pr.spawnsMemo = collectSpawns(pr)
		if pr.spawnsMemo == nil {
			pr.spawnsMemo = []*Spawn{}
		}
	}
	return pr.spawnsMemo
}

// collectSpawns walks every function declaration of the program and records
// each goroutine root. A spawn nested inside a function literal is attributed
// to the outermost enclosing declaration.
func collectSpawns(pr *Program) []*Spawn {
	var out []*Spawn
	for _, pkg := range pr.All {
		for _, fd := range funcDecls(pkg) {
			if fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.GoStmt:
					sp := &Spawn{Pkg: pkg, Kind: SpawnGo, Encl: fd, Site: x}
					if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
						sp.Lit = lit
						sp.Captured = capturedVars(pkg.Info, lit)
					} else if fn, _ := calleeOf(pkg.Info, x.Call); fn != nil {
						sp.Callee = fn
					}
					out = append(out, sp)
				case *ast.CallExpr:
					if !isParCall(pkg.Info, x) {
						return true
					}
					for _, arg := range x.Args {
						lit, ok := ast.Unparen(arg).(*ast.FuncLit)
						if !ok {
							continue
						}
						out = append(out, &Spawn{
							Pkg: pkg, Kind: SpawnPar, Encl: fd, Site: x,
							Lit: lit, Captured: capturedVars(pkg.Info, lit),
						})
					}
				}
				return true
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Pkg.ImportPath != out[j].Pkg.ImportPath {
			return out[i].Pkg.ImportPath < out[j].Pkg.ImportPath
		}
		return out[i].Site.Pos() < out[j].Site.Pos()
	})
	return out
}

// capturedVars returns the variables lit references that are declared outside
// its source range, in declaration-position order.
func capturedVars(info *types.Info, lit *ast.FuncLit) []*types.Var {
	seen := map[*types.Var]bool{}
	var out []*types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := objectOf(info, id).(*types.Var)
		if !ok || v.Name() == "_" || seen[v] {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			seen[v] = true
			out = append(out, v)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}
