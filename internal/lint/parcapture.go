package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ParCapture flags closures handed to the internal/par runtime that write
// variables captured by reference. par.For runs its body concurrently on
// every worker, so a plain `captured++` (or a field store through a
// captured pointer) inside the closure is a data race; the repository
// convention is to accumulate into closure-local variables and publish with
// sync/atomic, or to write only disjoint slice elements (indexed stores are
// therefore exempt). Assigning an enclosing loop variable from inside the
// closure is flagged the same way.
func ParCapture() *Analyzer {
	return &Analyzer{
		Name: "parcapture",
		Doc: "flags closures passed to internal/par helpers that write " +
			"shared captured variables",
		Run: runParCapture,
	}
}

func runParCapture(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isParCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				lit, ok := ast.Unparen(arg).(*ast.FuncLit)
				if !ok {
					continue
				}
				checkParClosure(p, lit)
			}
			return true
		})
	}
}

// isParCall reports whether call invokes anything defined by the
// internal/par package: package-qualified helpers (par.For, par.ForEach,
// par.ForReduce), and methods on its types (pool.For for a *par.Pool) — the
// persistent pool made the runtime's entry points methods, and the hot
// regions and closure checks must follow them.
func isParCall(info *types.Info, call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	// Explicit generic instantiations (par.ForReduce[int64]) wrap the
	// callee; peel to the underlying selector.
	switch x := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(x.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(x.X)
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Package-qualified call: par.For, par.ForReduce, ...
	if pkg := pkgNameOf(info, sel.X); pkg != nil {
		return importPathEndsWith(pkg.Path(), "internal/par")
	}
	// Method call on an internal/par type: pool.For, p.drain, ...
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		if fn, ok := s.Obj().(*types.Func); ok && fn.Pkg() != nil {
			return importPathEndsWith(fn.Pkg().Path(), "internal/par")
		}
	}
	return false
}

// checkParClosure walks one closure body and reports writes whose target is
// declared outside the closure.
func checkParClosure(p *Pass, lit *ast.FuncLit) {
	info := p.Pkg.Info
	captured := func(obj types.Object) bool {
		if obj == nil {
			return false
		}
		v, ok := obj.(*types.Var)
		if !ok || v.Name() == "_" {
			return false
		}
		return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
	}
	reportWrite := func(target ast.Expr, what string) {
		switch t := ast.Unparen(target).(type) {
		case *ast.Ident:
			if obj := objectOf(info, t); captured(obj) {
				p.Reportf(t.Pos(),
					"closure passed to internal/par writes captured variable %q (%s); "+
						"accumulate locally and publish with sync/atomic",
					t.Name, what)
			}
		case *ast.SelectorExpr:
			// A field store through a captured base races across workers.
			if obj := baseIdentObj(info, t.X); captured(obj) {
				if root := rootVar(info, t); root != nil {
					p.Reportf(t.Pos(),
						"closure passed to internal/par writes field %q of captured %q (%s); "+
							"use sync/atomic or a per-worker copy",
						root.Name(), obj.Name(), what)
				}
			}
		case *ast.StarExpr:
			if obj := baseIdentObj(info, t.X); captured(obj) {
				p.Reportf(t.Pos(),
					"closure passed to internal/par writes through captured pointer %q (%s)",
					obj.Name(), what)
			}
			// IndexExpr stores are exempt: writing disjoint elements of a
			// shared slice is the runtime's intended partitioning pattern.
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range x.Lhs {
				reportWrite(lhs, "assignment")
			}
		case *ast.IncDecStmt:
			reportWrite(x.X, "increment/decrement")
		case *ast.RangeStmt:
			if x.Tok == token.ASSIGN {
				if x.Key != nil {
					reportWrite(x.Key, "range assignment")
				}
				if x.Value != nil {
					reportWrite(x.Value, "range assignment")
				}
			}
		}
		return true
	})
}
