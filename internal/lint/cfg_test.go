package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildCFGFromSrc parses a complete file source, builds the CFG of the first
// function declaration, and returns it with the fileset for line lookups.
func buildCFGFromSrc(t *testing.T, src string) (*CFG, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test_input.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return BuildCFG(fd.Body), fset
		}
	}
	t.Fatal("no function declaration in source")
	return nil, nil
}

// lineOf returns the 1-based line of the first occurrence of substr in src.
func lineOf(t *testing.T, src, substr string) int {
	t.Helper()
	idx := strings.Index(src, substr)
	if idx < 0 {
		t.Fatalf("%q not found in source", substr)
	}
	return 1 + strings.Count(src[:idx], "\n")
}

// blockAt returns the block holding a node that starts on the line where
// substr first occurs (the statement-granular CFG puts each statement's node
// at its source line).
func blockAt(t *testing.T, c *CFG, fset *token.FileSet, src, substr string) *Block {
	t.Helper()
	line := lineOf(t, src, substr)
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if fset.Position(n.Pos()).Line == line {
				return b
			}
		}
	}
	t.Fatalf("no CFG node starts on line %d (%q)", line, substr)
	return nil
}

// canReachAvoiding reports whether `to` is reachable from `from` along edges
// that never enter a block in `avoid`. It distinguishes the target of a
// labeled branch from the fallthrough paths that eventually converge anyway.
func canReachAvoiding(from, to *Block, avoid ...*Block) bool {
	blocked := map[*Block]bool{}
	for _, b := range avoid {
		blocked[b] = true
	}
	seen := map[*Block]bool{}
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] || blocked[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

func TestCFGLabeledBreakNestedRange(t *testing.T) {
	src := `package p

func f(grid [][]int) {
	var sink int
outer:
	for _, xs := range grid {
		for _, x := range xs {
			if x == 0 {
				break outer
			}
			sink += x
		}
		sink++
	}
	sink--
}
`
	c, fset := buildCFGFromSrc(t, src)
	cond := blockAt(t, c, fset, src, "x == 0")
	use := blockAt(t, c, fset, src, "sink += x")
	post := blockAt(t, c, fset, src, "sink++")
	outerHead := blockAt(t, c, fset, src, "for _, xs := range grid")
	done := blockAt(t, c, fset, src, "sink--")

	// break outer jumps straight past both loops: the after-outer block is
	// reachable from the break's condition without re-entering the outer head
	// or touching the loop tails. An unlabeled break would only reach it
	// through the outer head again.
	if !canReachAvoiding(cond, done, outerHead, post, use) {
		t.Error("labeled break does not jump directly out of the nested range loops")
	}
	if !c.Reachable()[c.Exit] {
		t.Error("exit unreachable")
	}
}

func TestCFGLabeledContinueNestedRange(t *testing.T) {
	src := `package p

func f(grid [][]int) {
	var sink int
outer:
	for _, xs := range grid {
		for _, x := range xs {
			if x == 0 {
				continue outer
			}
			sink += x
		}
		sink++
	}
	sink--
}
`
	c, fset := buildCFGFromSrc(t, src)
	cond := blockAt(t, c, fset, src, "x == 0")
	use := blockAt(t, c, fset, src, "sink += x")
	post := blockAt(t, c, fset, src, "sink++")
	innerHead := blockAt(t, c, fset, src, "for _, x := range xs")
	outerHead := blockAt(t, c, fset, src, "for _, xs := range grid")

	// continue outer re-enters the OUTER range head directly, skipping both
	// the inner head and the outer loop tail. An unlabeled continue would have
	// to pass through the inner head.
	if !canReachAvoiding(cond, outerHead, innerHead, post, use) {
		t.Error("labeled continue does not target the outer range head")
	}
}

func TestCFGGotoBackward(t *testing.T) {
	src := `package p

func f() {
	i := 0
loop:
	if i < 3 {
		i++
		goto loop
	}
	i--
}
`
	c, fset := buildCFGFromSrc(t, src)
	cond := blockAt(t, c, fset, src, "i < 3")
	inc := blockAt(t, c, fset, src, "i++")
	done := blockAt(t, c, fset, src, "i--")

	if !canReachAvoiding(inc, cond, done) {
		t.Error("backward goto does not loop to the label block")
	}
	if !canReachAvoiding(cond, done) {
		t.Error("falling past the goto loop cannot reach the tail")
	}
	if !c.Reachable()[c.Exit] {
		t.Error("exit unreachable")
	}
}

func TestCFGGotoForward(t *testing.T) {
	src := `package p

func f(skip bool) {
	var sink int
	if skip {
		goto end
	}
	sink++
end:
	sink--
}
`
	c, fset := buildCFGFromSrc(t, src)
	cond := blockAt(t, c, fset, src, "skip {")
	work := blockAt(t, c, fset, src, "sink++")
	done := blockAt(t, c, fset, src, "sink--")

	// The forward goto resolves even though the label appears later: the jump
	// reaches the label block without executing the skipped statement.
	if !canReachAvoiding(cond, done, work) {
		t.Error("forward goto does not skip to the label block")
	}
	if !canReachAvoiding(cond, work) {
		t.Error("fall-through path lost")
	}
}

func TestCFGDeferWithPanic(t *testing.T) {
	src := `package p

func f(bad bool) {
	defer cleanup()
	if bad {
		panic("boom")
	}
	finish()
}

func cleanup() {}
func finish()  {}
`
	c, fset := buildCFGFromSrc(t, src)

	if len(c.Defers) != 1 {
		t.Fatalf("Defers = %d, want 1", len(c.Defers))
	}

	boom := blockAt(t, c, fset, src, `panic("boom")`)
	finish := blockAt(t, c, fset, src, "finish()")

	panicEdge, exitEdge := false, false
	for _, s := range boom.Succs {
		if s == c.Panic {
			panicEdge = true
		}
		if s == c.Exit {
			exitEdge = true
		}
	}
	if !panicEdge {
		t.Error("panic statement block has no edge to the Panic pseudo-block")
	}
	if exitEdge {
		t.Error("panic statement block must not fall through to Exit")
	}

	reach := c.Reachable()
	if !reach[c.Panic] || !reach[c.Exit] {
		t.Errorf("reachability: panic=%v exit=%v, want both", reach[c.Panic], reach[c.Exit])
	}
	if !canReachAvoiding(finish, c.Exit, c.Panic) {
		t.Error("normal path does not reach Exit without panicking")
	}
}

// TestCFGDeferPostludeEarlyReturn pins the postlude contract the lock
// analyses rely on: defers are recorded in source order but NOT spliced into
// the edge structure, so an early return's block jumps straight to Exit and
// any cleanup the defers perform is invisible to the edges. Analyses must
// consult Defers at the exits (deferReleasedKeys does) rather than expect a
// cleanup block on the path.
func TestCFGDeferPostludeEarlyReturn(t *testing.T) {
	src := `package p

func f(cond bool) int {
	defer first()
	defer second()
	if cond {
		return 0
	}
	work()
	return 1
}

func first()  {}
func second() {}
func work()   {}
`
	c, fset := buildCFGFromSrc(t, src)

	if len(c.Defers) != 2 {
		t.Fatalf("Defers = %d, want 2", len(c.Defers))
	}
	l1 := fset.Position(c.Defers[0].Pos()).Line
	l2 := fset.Position(c.Defers[1].Pos()).Line
	if l1 >= l2 {
		t.Errorf("Defers out of source order: lines %d, %d", l1, l2)
	}

	early := blockAt(t, c, fset, src, "return 0")
	workBlk := blockAt(t, c, fset, src, "work()")

	// The early return leaves without touching the rest of the body; the
	// defers do not materialize as an intervening cleanup block.
	if !canReachAvoiding(early, c.Exit, workBlk) {
		t.Error("early return does not reach Exit directly")
	}
	if len(early.Succs) != 1 || early.Succs[0] != c.Exit {
		t.Errorf("early-return block successors = %d, want exactly [Exit]", len(early.Succs))
	}
	// The pseudo-blocks carry no statements: postludes have nowhere to hide.
	if len(c.Exit.Nodes) != 0 || len(c.Panic.Nodes) != 0 {
		t.Error("Exit/Panic pseudo-blocks must hold no nodes")
	}
}

// TestCFGDeferPanicEarlyReturnInteraction crosses all three features in one
// body: a defer postlude, a panic edge, and an early return. Both
// terminations stay reachable, each escape leaves from its own block, and
// the conditional defer is still recorded (Defers is a source-order list of
// every defer in the body, not just the unconditional prefix).
func TestCFGDeferPanicEarlyReturnInteraction(t *testing.T) {
	src := `package p

func f(mode int) {
	defer cleanup()
	if mode == 0 {
		return
	}
	if mode < 0 {
		defer extra()
		panic("negative mode")
	}
	finish()
}

func cleanup() {}
func extra()   {}
func finish()  {}
`
	c, fset := buildCFGFromSrc(t, src)

	if len(c.Defers) != 2 {
		t.Fatalf("Defers = %d, want 2 (conditional defers are recorded too)", len(c.Defers))
	}

	early := blockAt(t, c, fset, src, "return")
	boom := blockAt(t, c, fset, src, `panic("negative mode")`)
	finish := blockAt(t, c, fset, src, "finish()")

	if !canReachAvoiding(early, c.Exit, boom, finish) {
		t.Error("early return does not reach Exit without the panic or tail paths")
	}
	if canReachAvoiding(early, c.Panic) {
		t.Error("early return must not reach the Panic pseudo-block")
	}
	if !canReachAvoiding(boom, c.Panic) {
		t.Error("panic statement does not reach the Panic pseudo-block")
	}
	if canReachAvoiding(boom, c.Exit) {
		t.Error("panic statement must not fall through to Exit")
	}
	if !canReachAvoiding(finish, c.Exit) {
		t.Error("tail does not reach Exit")
	}
}
