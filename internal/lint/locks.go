package lint

import (
	"go/ast"
	"go/types"
)

// Lock-discipline substrate shared by the lockguard analyzer: canonical
// receiver paths, mutex-operation recognition, and the held-locks dataflow.
// The fact lattice maps {mutex variable, receiver path} to the mode it is
// held in (read or write); the same transfer function runs in must mode
// (intersection merge — sound for "is this access guarded") and in may mode
// (union merge — sound for "can this exit leave a lock held").

// lockMode is how a mutex is held at a program point.
type lockMode uint8

const (
	lockNone lockMode = iota
	lockR             // held via RLock (shared)
	lockW             // held via Lock (exclusive)
)

// lockKey identifies one mutex as seen from one function: the mutex variable
// (a struct field, or a local/package-level sync.Mutex) plus the canonical
// path of the enclosing struct value ("s", "t.c"; empty for non-field
// mutexes). Keying on the path keeps s.mu and other.mu distinct within one
// function without needing alias analysis.
type lockKey struct {
	mutex *types.Var
	base  string
}

func (k lockKey) String() string {
	if k.base == "" {
		return k.mutex.Name()
	}
	return k.base + "." + k.mutex.Name()
}

// lockFact maps every held mutex to its mode. Treated as immutable by the
// dataflow engine; transfer clones before mutating.
type lockFact map[lockKey]lockMode

func (f lockFact) clone() lockFact {
	out := make(lockFact, len(f))
	for k, m := range f {
		out[k] = m
	}
	return out
}

// lockProblem is the held-locks dataflow over one function body. Deferred
// statements are postludes (they run at termination, not in place), so
// Transfer skips them; deferReleasedKeys accounts for them at the exits.
type lockProblem struct {
	info  *types.Info
	entry lockFact
	may   bool
}

func (lp *lockProblem) Entry() any { return lp.entry.clone() }

func (lp *lockProblem) Merge(a, b any) any {
	fa, fb := a.(lockFact), b.(lockFact)
	out := lockFact{}
	if lp.may {
		for k, m := range fa {
			out[k] = m
		}
		for k, m := range fb {
			if m > out[k] {
				out[k] = m
			}
		}
		return out
	}
	// Must: held on every path, in the weaker of the two modes.
	for k, m := range fa {
		if mb := fb[k]; mb != lockNone {
			if mb < m {
				m = mb
			}
			out[k] = m
		}
	}
	return out
}

func (lp *lockProblem) Equal(a, b any) bool {
	fa, fb := a.(lockFact), b.(lockFact)
	if len(fa) != len(fb) {
		return false
	}
	for k, m := range fa {
		if fb[k] != m {
			return false
		}
	}
	return true
}

func (lp *lockProblem) Transfer(n ast.Node, fact any) any {
	switch x := n.(type) {
	case *ast.DeferStmt:
		return fact // postlude: executes at termination, not here
	case *ast.RangeStmt:
		// The head node of a range loop is the whole statement; only the
		// range expression evaluates here (body statements have their own
		// CFG nodes).
		n = x.X
	}
	in := fact.(lockFact)
	out := in
	cloned := false
	ast.Inspect(n, func(m ast.Node) bool {
		switch m.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, op, ok := mutexOp(lp.info, call)
		if !ok {
			return true
		}
		if !cloned {
			out = in.clone()
			cloned = true
		}
		switch op {
		case "Lock":
			out[key] = lockW
		case "RLock":
			if out[key] < lockR {
				out[key] = lockR
			}
		case "Unlock", "RUnlock":
			delete(out, key)
		}
		return true
	})
	return out
}

// mutexOp recognizes base.mu.Lock() / RLock() / Unlock() / RUnlock() — and
// the same operations on a local or package-level mutex — returning the lock
// key and the operation name.
func mutexOp(info *types.Info, call *ast.CallExpr) (lockKey, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, "", false
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return lockKey{}, "", false
	}
	recv := ast.Unparen(sel.X)
	tv, ok := info.Types[recv]
	if !ok || !isMutexType(tv.Type) {
		return lockKey{}, "", false
	}
	switch x := recv.(type) {
	case *ast.SelectorExpr:
		if s, ok := info.Selections[x]; ok {
			v, ok := s.Obj().(*types.Var)
			if !ok || !v.IsField() {
				return lockKey{}, "", false
			}
			base := canonPath(x.X)
			if base == "" {
				return lockKey{}, "", false
			}
			return lockKey{mutex: v, base: base}, op, true
		}
		// Package-qualified: pkg.someMu.Lock().
		if v, ok := objectOf(info, x.Sel).(*types.Var); ok {
			return lockKey{mutex: v}, op, true
		}
	case *ast.Ident:
		if v, ok := objectOf(info, x).(*types.Var); ok {
			return lockKey{mutex: v}, op, true
		}
	}
	return lockKey{}, "", false
}

// canonPath renders a chain of plain selections as a dotted path ("s",
// "t.c"). Any computed step — a call, an index, a conversion — yields "",
// meaning the path is not canonicalizable without alias analysis.
func canonPath(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.StarExpr:
		return canonPath(x.X)
	case *ast.SelectorExpr:
		p := canonPath(x.X)
		if p == "" {
			return ""
		}
		return p + "." + x.Sel.Name
	}
	return ""
}

// isMutexType reports whether t (possibly behind a pointer) is sync.Mutex or
// sync.RWMutex.
func isMutexType(t types.Type) bool {
	named, ok := derefType(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// derefType unwraps one level of pointer.
func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// mutexFields returns the sync.Mutex / sync.RWMutex fields of t's struct
// (t possibly behind a pointer), in declaration order.
func mutexFields(t types.Type) []*types.Var {
	st, ok := derefType(t).Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []*types.Var
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); isMutexType(f.Type()) {
			out = append(out, f)
		}
	}
	return out
}

// isSyncPrimitive reports whether t (possibly behind a pointer) is a named
// type from sync or sync/atomic — types that carry their own synchronization
// discipline.
func isSyncPrimitive(t types.Type) bool {
	named, ok := derefType(t).(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && (pkg.Path() == "sync" || pkg.Path() == "sync/atomic")
}

// guardExemptType reports whether a field of this type is outside guard
// inference: sync/atomic primitives, channels (self-synchronizing), and
// self-synchronized structs — types whose own struct carries a mutex or an
// atomic, so their consistency is their own discipline, not the enclosing
// struct's.
func guardExemptType(t types.Type) bool {
	if isSyncPrimitive(t) {
		return true
	}
	if _, ok := derefType(t).Underlying().(*types.Chan); ok {
		return true
	}
	st, ok := derefType(t).Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isSyncPrimitive(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// deferReleasedKeys collects the lock keys released by the body's deferred
// statements — directly (defer mu.Unlock()) or inside a deferred closure.
// These run on every termination, so the keys count as released at both the
// Exit and Panic pseudo-blocks.
func deferReleasedKeys(info *types.Info, cfg *CFG) map[lockKey]bool {
	out := map[lockKey]bool{}
	record := func(call *ast.CallExpr) {
		if key, op, ok := mutexOp(info, call); ok && (op == "Unlock" || op == "RUnlock") {
			out[key] = true
		}
	}
	for _, d := range cfg.Defers {
		record(d.Call)
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				if c, ok := n.(*ast.CallExpr); ok {
					record(c)
				}
				return true
			})
		}
	}
	return out
}
