package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// Program is the module-wide view handed to analyzers through Pass.Prog:
// every package the loader has in memory (the analyzed set plus their
// module-internal imports, which load with full ASTs), the static call
// graph over all of them, and memoized per-function CFGs. Interprocedural
// analyses (atomicmix wrapper propagation, kernelmono purity summaries) hang
// their cached summaries off this struct so they compute once per run.
type Program struct {
	// Analyzed lists the packages named by the run's patterns — the only
	// ones findings are reported for.
	Analyzed []*Package
	// All lists every module-internal package with parsed source available,
	// in import-path order: Analyzed plus transitively imported packages.
	// Interprocedural facts are collected over All, so a wrapper in a
	// dependency still counts.
	All []*Package
	// Graph is the static call graph over All.
	Graph *CallGraph

	cfgs map[*ast.BlockStmt]*CFG

	atomicFactsMemo *atomicFacts
	impurityMemo    map[*types.Func]string
	freshMemo       map[*ast.FuncDecl]*freshAnalysis
	quiescedMemo    map[*types.Func]bool
	lockguardMemo   *lockAnalysis
	spawnsMemo      []*Spawn
	lockorderMemo   *lockOrderAnalysis
	chanlifeMemo    *chanLifeAnalysis
}

// newProgram assembles the Program for one Run invocation.
func newProgram(l *loader, analyzed []*Package) *Program {
	var all []*Package
	for _, pkg := range l.pkgs {
		if pkg != nil {
			all = append(all, pkg)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ImportPath < all[j].ImportPath })
	return &Program{
		Analyzed: analyzed,
		All:      all,
		Graph:    buildCallGraph(all),
		cfgs:     map[*ast.BlockStmt]*CFG{},
	}
}

// CFG returns the memoized control-flow graph of body.
func (pr *Program) CFG(body *ast.BlockStmt) *CFG {
	if c, ok := pr.cfgs[body]; ok {
		return c
	}
	c := BuildCFG(body)
	pr.cfgs[body] = c
	return c
}

// funcOf resolves the *types.Func of a declaration in pkg.
func funcOf(pkg *Package, fd *ast.FuncDecl) *types.Func {
	fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	return fn
}
