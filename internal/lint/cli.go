package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// ReportSchema identifies the JSON document emitted by the -json mode (and
// archived by verify.sh as results/lint-report.json).
const ReportSchema = "glign.lint/v1"

// Report is the machine-readable output document of a lint run.
type Report struct {
	Schema   string    `json:"schema"`
	Findings []Finding `json:"findings"`
	Counts   *Baseline `json:"counts"`
}

// CLI is the shared command front-end used by cmd/glignlint and cmd/doclint:
// analyzer selection, the analyzer pass itself, optional baseline writing,
// and finding rendering, with the common exit-code policy (0 clean, 1 active
// findings remain, 2 usage or driver error). Commands parse their own flags
// and hand the result here, so the two binaries cannot drift on semantics.
type CLI struct {
	// Tool prefixes error messages ("glignlint", "doclint").
	Tool string
	// Analyzers is the comma-separated subset to run; "" means all.
	Analyzers string
	// Patterns are the package patterns to analyze; empty means "./...".
	Patterns []string
	// JSON switches output to the Report document on Stdout.
	JSON bool
	// ShowSuppressed also prints suppressed findings in text mode.
	ShowSuppressed bool
	// BaselinePath, when non-empty, receives a per-analyzer count snapshot.
	BaselinePath string

	Stdout, Stderr io.Writer
}

func (c *CLI) errf(format string, args ...interface{}) {
	fmt.Fprintln(c.Stderr, c.Tool+":", fmt.Sprintf(format, args...))
}

// Main runs the configured lint pass and returns the process exit code.
func (c *CLI) Main() int {
	analyzers, err := Select(c.Analyzers)
	if err != nil {
		c.errf("%v", err)
		return 2
	}
	patterns := c.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := Run(analyzers, patterns)
	if err != nil {
		c.errf("%v", err)
		return 2
	}
	if c.BaselinePath != "" {
		if err := WriteBaseline(c.BaselinePath, MakeBaseline(analyzers, findings)); err != nil {
			c.errf("%v", err)
			return 2
		}
	}
	if c.JSON {
		enc := json.NewEncoder(c.Stdout)
		enc.SetIndent("", "  ")
		rep := Report{
			Schema:   ReportSchema,
			Findings: findings,
			Counts:   MakeBaseline(analyzers, findings),
		}
		if rep.Findings == nil {
			rep.Findings = []Finding{}
		}
		if err := enc.Encode(rep); err != nil {
			c.errf("%v", err)
			return 2
		}
	} else {
		for _, f := range findings {
			if f.Suppressed && !c.ShowSuppressed {
				continue
			}
			fmt.Fprintln(c.Stdout, f)
		}
	}
	if n := ActiveCount(findings); n > 0 {
		if !c.JSON {
			fmt.Fprintf(c.Stderr, "%s: %d finding(s)\n", c.Tool, n)
		}
		return 1
	}
	return 0
}

// RecursivePatterns converts directory arguments into recursive package
// patterns (the doclint argument convention: each root is walked fully).
// Empty roots default to the current directory.
func RecursivePatterns(roots []string) []string {
	if len(roots) == 0 {
		roots = []string{"."}
	}
	patterns := make([]string, 0, len(roots))
	for _, r := range roots {
		if !strings.HasSuffix(r, "/...") {
			r += "/..."
		}
		patterns = append(patterns, r)
	}
	return patterns
}
