package lint

import (
	"go/ast"
	"go/types"
)

// CancelPath enforces release-on-every-path for the cancellable resources
// the serving and runtime tiers create: a context.CancelFunc obtained from
// context.WithCancel/WithTimeout/WithDeadline must be called, and a
// time.Timer/time.Ticker obtained from time.NewTimer/time.NewTicker must be
// stopped, on every CFG path to the function's normal exit. An uncancelled
// context pins its parent's cancellation tree (and a timer goroutine for
// WithTimeout); an unstopped ticker leaks its goroutine outright.
//
// The check is a waitjoin-style forward may-analysis over the function CFG:
// a creation joins the pending set; calling the cancel variable or Stop on
// the timer variable clears it; whatever is still pending at the exit
// block's entry — minus resources released by a deferred statement, which
// runs on every termination — is reported at its creation site.
//
// Ownership transfer ends local responsibility: a resource that escapes the
// function (returned, passed as an argument, stored, sent on a channel) or
// is captured by a function literal is the new owner's to release, and the
// analysis drops it. Reads through the variable (t.C, <-tk.C) keep it
// pending — draining a timer is not stopping it. Assigning the CancelFunc
// to the blank identifier is reported immediately: a context whose cancel is
// discarded can never be released.
func CancelPath() *Analyzer {
	return &Analyzer{
		Name: "cancelpath",
		Doc: "flags context.CancelFuncs, time.Timers and time.Tickers created " +
			"in internal/serve, internal/core, internal/par, or a main package " +
			"that are not cancelled/stopped on every exit path",
		Run: runCancelPath,
	}
}

// cancelPathPkgs are the package names in scope: the serving front end, the
// batch runtime, the parallel runtime, and command mains.
var cancelPathPkgs = map[string]bool{"serve": true, "core": true, "par": true, "main": true}

// cancelSite is one tracked creation: the call, the variable the resource is
// bound to, and how it is released.
type cancelSite struct {
	call    *ast.CallExpr
	v       *types.Var
	what    string // "context.CancelFunc from context.WithCancel", "ticker from time.NewTicker", ...
	verb    string // "called" / "stopped"
	fix     string // suggested remediation
	deferOK bool   // released by a deferred statement (every termination)
}

func runCancelPath(p *Pass) {
	if !cancelPathPkgs[p.Pkg.Name] {
		return
	}
	for _, fd := range funcDecls(p.Pkg) {
		if fd.Body == nil {
			continue
		}
		sites := collectCancelSites(p, fd.Body)
		if len(sites) == 0 {
			continue
		}
		cfg := p.Prog.CFG(fd.Body)
		for _, d := range cfg.Defers {
			markDeferRelease(p.Pkg.Info, d, sites)
		}
		problem := &cancelProblem{info: p.Pkg.Info, sites: sites}
		res := ForwardFlow(cfg, problem)
		pending, _ := res.In[cfg.Exit].(cancelSet)
		var leaks []*cancelSite
		for s := range pending {
			if !s.deferOK {
				leaks = append(leaks, s)
			}
		}
		// Map order is random; report in source order.
		for i := range leaks {
			for j := i + 1; j < len(leaks); j++ {
				if leaks[j].call.Pos() < leaks[i].call.Pos() {
					leaks[i], leaks[j] = leaks[j], leaks[i]
				}
			}
		}
		for _, s := range leaks {
			p.Reportf(s.call.Pos(), "%s is not %s on every exit path of %s; %s",
				s.what, s.verb, funcDisplayName(fd), s.fix)
		}
	}
}

// collectCancelSites finds the tracked creations in body (outside function
// literals), reporting discarded CancelFuncs immediately and dropping
// resources captured by function literals (the closure owns them).
func collectCancelSites(p *Pass, body *ast.BlockStmt) []*cancelSite {
	info := p.Pkg.Info
	var sites []*cancelSite
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		var (
			bind ast.Expr
			what string
			verb string
			fix  string
		)
		if name, ok := isPkgCall(info, call, "context", "WithCancel", "WithTimeout", "WithDeadline"); ok && len(as.Lhs) == 2 {
			bind = as.Lhs[1]
			what = "the context.CancelFunc from context." + name
			verb = "called"
			fix = "defer cancel() at the creation site"
		} else if name, ok := isPkgCall(info, call, "time", "NewTimer", "NewTicker"); ok && len(as.Lhs) == 1 {
			bind = as.Lhs[0]
			what = "the timer from time." + name
			verb = "stopped"
			fix = "defer Stop() at the creation site"
			if name == "NewTicker" {
				what = "the ticker from time." + name
				fix = "a running ticker leaks its goroutine; defer Stop() at the creation site"
			}
		} else {
			return true
		}
		id, ok := ast.Unparen(bind).(*ast.Ident)
		if !ok {
			return true
		}
		if id.Name == "_" {
			p.Reportf(call.Pos(), "%s is discarded; the resource can never be released", what)
			return true
		}
		if v, ok := objectOf(info, id).(*types.Var); ok {
			sites = append(sites, &cancelSite{call: call, v: v, what: what, verb: verb, fix: fix})
		}
		return true
	})
	if len(sites) == 0 {
		return nil
	}
	// A variable referenced inside any function literal is co-owned by the
	// closure; flow-sensitive reasoning about the enclosing body no longer
	// covers its release, so those sites leave the analysis.
	captured := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if v, ok := objectOf(info, id).(*types.Var); ok {
					captured[v] = true
				}
			}
			return true
		})
		return false
	})
	kept := sites[:0]
	for _, s := range sites {
		if !captured[s.v] {
			kept = append(kept, s)
		}
	}
	return kept
}

// markDeferRelease flags sites released by the deferred statement d — a
// direct defer cancel() / defer t.Stop(), or either form inside a deferred
// closure.
func markDeferRelease(info *types.Info, d *ast.DeferStmt, sites []*cancelSite) {
	mark := func(call *ast.CallExpr) {
		for _, s := range sites {
			if isReleaseCall(info, call, s.v) {
				s.deferOK = true
			}
		}
	}
	mark(d.Call)
	if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if c, ok := n.(*ast.CallExpr); ok {
				mark(c)
			}
			return true
		})
	}
}

// isReleaseCall reports whether call releases v: v() for CancelFuncs, or
// v.Stop() for timers/tickers.
func isReleaseCall(info *types.Info, call *ast.CallExpr, v *types.Var) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return objectOf(info, fun) == v
	case *ast.SelectorExpr:
		if fun.Sel.Name != "Stop" {
			return false
		}
		id, ok := ast.Unparen(fun.X).(*ast.Ident)
		return ok && objectOf(info, id) == v
	}
	return false
}

// cancelSet is the dataflow fact: creations whose release has not happened
// on some path reaching the current point.
type cancelSet map[*cancelSite]bool

// cancelProblem is a forward may-analysis (merge = union): a creation is a
// finding if ANY path reaches the exit without releasing it.
type cancelProblem struct {
	info  *types.Info
	sites []*cancelSite
}

func (cp *cancelProblem) Entry() any { return cancelSet{} }

func (cp *cancelProblem) Merge(a, b any) any {
	fa, fb := a.(cancelSet), b.(cancelSet)
	out := cancelSet{}
	for s := range fa {
		out[s] = true
	}
	for s := range fb {
		out[s] = true
	}
	return out
}

func (cp *cancelProblem) Equal(a, b any) bool {
	fa, fb := a.(cancelSet), b.(cancelSet)
	if len(fa) != len(fb) {
		return false
	}
	for s := range fa {
		if !fb[s] {
			return false
		}
	}
	return true
}

func (cp *cancelProblem) Transfer(n ast.Node, fact any) any {
	switch x := n.(type) {
	case *ast.DeferStmt:
		return fact // postlude: handled by markDeferRelease at the exits
	case *ast.RangeStmt:
		// Only the range expression evaluates at the loop head; body
		// statements have their own CFG nodes.
		n = x.X
	}
	in := fact.(cancelSet)
	out := cancelSet{}
	for s := range in {
		out[s] = true
	}

	// Benign mentions keep a resource pending: selector reads (t.C, tk.C —
	// draining is not releasing) and assignment targets. Any other mention
	// either releases it (cancel(), t.Stop()) or transfers ownership
	// (argument, return, store, send, composite literal) — both clear it.
	benign := map[*ast.Ident]bool{}
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				// v.Stop is a release, not a read; leave it non-benign.
				if x.Sel.Name != "Stop" {
					benign[id] = true
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					benign[id] = true
				}
			}
		}
		return true
	})
	ast.Inspect(n, func(m ast.Node) bool {
		switch m.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		}
		id, ok := m.(*ast.Ident)
		if !ok || benign[id] {
			return true
		}
		obj := objectOf(cp.info, id)
		if obj == nil {
			return true
		}
		for s := range out {
			if types.Object(s.v) == obj {
				delete(out, s)
			}
		}
		return true
	})

	// Gen: the creation itself. Runs after the kill pass so the creation's
	// own arguments cannot clear it.
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, s := range cp.sites {
			if len(as.Rhs) == 1 && ast.Unparen(as.Rhs[0]) == s.call {
				out[s] = true
			}
		}
	}
	return out
}
