package lint

import (
	"go/ast"
	"go/token"
)

// nilSafeTypes lists, per package name, the types whose exported methods
// must be nil-receiver-safe. The telemetry contract (OBSERVABILITY.md,
// "nil-safe collector") is what lets every engine hook telemetry with a
// bare method call and zero enabled/disabled branches: a nil *Collector and
// the nil traces it hands out must absorb every call as a no-op.
var nilSafeTypes = map[string][]string{
	"telemetry": {"Collector", "RunTrace", "BatchTrace"},
}

// NilRecv verifies that every exported method on the nil-safe telemetry
// types starts with a nil-receiver guard (`if c == nil { return ... }`) and
// uses a pointer receiver, so instrumented hot paths never need their own
// nil checks.
func NilRecv() *Analyzer {
	return &Analyzer{
		Name: "nilrecv",
		Doc: "verifies exported methods on nil-safe telemetry types begin " +
			"with a nil-receiver guard",
		Run: runNilRecv,
	}
}

func runNilRecv(p *Pass) {
	typeNames := nilSafeTypes[p.Pkg.Name]
	if len(typeNames) == 0 {
		return
	}
	isTarget := func(name string) bool {
		for _, t := range typeNames {
			if t == name {
				return true
			}
		}
		return false
	}
	for _, fd := range funcDecls(p.Pkg) {
		if fd.Recv == nil || len(fd.Recv.List) == 0 || !fd.Name.IsExported() {
			continue
		}
		recv := fd.Recv.List[0]
		rtype := recv.Type
		ptr := false
		if s, ok := rtype.(*ast.StarExpr); ok {
			ptr = true
			rtype = s.X
		}
		id, ok := rtype.(*ast.Ident)
		if !ok || !isTarget(id.Name) {
			continue
		}
		if !ptr {
			p.Reportf(fd.Pos(),
				"exported method %s on nil-safe type %s must use a pointer receiver "+
					"with a nil guard (nil-safe collector contract, OBSERVABILITY.md)",
				fd.Name.Name, id.Name)
			continue
		}
		if len(recv.Names) == 0 || recv.Names[0].Name == "_" {
			p.Reportf(fd.Pos(),
				"exported method %s on nil-safe type %s discards its receiver and "+
					"cannot guard against nil (nil-safe collector contract)",
				fd.Name.Name, id.Name)
			continue
		}
		if !startsWithNilGuard(fd.Body, recv.Names[0].Name) {
			p.Reportf(fd.Pos(),
				"exported method (*%s).%s must begin with `if %s == nil { return ... }` "+
					"(nil-safe collector contract, OBSERVABILITY.md)",
				id.Name, fd.Name.Name, recv.Names[0].Name)
		}
	}
}

// startsWithNilGuard reports whether the first statement of body is
// `if <recv> == nil { ...; return }` (no init statement, terminating in a
// plain return).
func startsWithNilGuard(body *ast.BlockStmt, recvName string) bool {
	if body == nil || len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil || ifs.Else != nil {
		return false
	}
	cmp, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || cmp.Op != token.EQL {
		return false
	}
	isRecv := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == recvName
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if !(isRecv(cmp.X) && isNil(cmp.Y)) && !(isNil(cmp.X) && isRecv(cmp.Y)) {
		return false
	}
	if len(ifs.Body.List) == 0 {
		return false
	}
	_, ok = ifs.Body.List[len(ifs.Body.List)-1].(*ast.ReturnStmt)
	return ok
}
