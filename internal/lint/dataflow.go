package lint

import "go/ast"

// FlowProblem defines a forward dataflow problem over a CFG. Facts are
// opaque to the engine; a nil fact is the bottom element ("unreached") and is
// never handed to Transfer or Merge. Implementations must treat facts as
// immutable (copy on write) — the engine shares them across blocks.
//
// Termination requires the usual monotone-framework conditions: Merge is an
// upper bound and the fact lattice has finite height (the analyses here use
// small finite sets, which trivially qualify).
type FlowProblem interface {
	// Entry is the fact holding at function entry.
	Entry() any
	// Transfer pushes a fact across one CFG node (a statement or condition).
	Transfer(n ast.Node, fact any) any
	// Merge joins facts at control-flow confluences.
	Merge(a, b any) any
	// Equal reports fact equality (used to detect the fixpoint).
	Equal(a, b any) bool
}

// FlowResult holds the fixpoint facts: In[b] at block entry, Out[b] after
// the last node of b. Unreachable blocks have nil entries.
type FlowResult struct {
	In, Out map[*Block]any
}

// ForwardFlow runs the worklist algorithm for p over c and returns the
// fixpoint.
func ForwardFlow(c *CFG, p FlowProblem) *FlowResult {
	res := &FlowResult{In: map[*Block]any{}, Out: map[*Block]any{}}
	res.In[c.Entry] = p.Entry()

	work := []*Block{c.Entry}
	queued := map[*Block]bool{c.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false

		fact := res.In[b]
		if fact == nil {
			continue
		}
		for _, n := range b.Nodes {
			fact = p.Transfer(n, fact)
		}
		if old := res.Out[b]; old != nil && p.Equal(old, fact) {
			continue
		}
		res.Out[b] = fact
		for _, s := range b.Succs {
			merged := fact
			if old := res.In[s]; old != nil {
				merged = p.Merge(old, fact)
				if p.Equal(old, merged) {
					continue
				}
			}
			res.In[s] = merged
			if !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return res
}

// FactAt replays p's transfer function over the nodes of the block holding
// `at` (the innermost block node whose source range covers it), starting from
// the block's In fact, stopping just before that node. It returns the fact
// in force when `at` begins executing, or nil when `at` is unreachable.
//
// This is the point-query companion to ForwardFlow: block-level fixpoints
// stay cheap, and analyzers reconstruct statement-level precision only where
// a finding needs it.
func FactAt(c *CFG, p FlowProblem, res *FlowResult, at ast.Node) any {
	for _, b := range c.Blocks {
		fact := res.In[b]
		if fact == nil {
			continue
		}
		for _, n := range b.Nodes {
			if n.Pos() <= at.Pos() && at.End() <= n.End() {
				return fact
			}
			fact = p.Transfer(n, fact)
		}
	}
	return nil
}
