package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WaitJoin flags goroutine launches in the scheduling packages (internal/par,
// internal/core) that are not joined on every path to the function's normal
// exit. A traversal primitive that returns while workers are still running
// leaks goroutines into the caller's iteration — the exact lifetime bug the
// -race matrix cannot reliably catch because the leaked worker usually loses
// the race with process exit.
//
// The check is a forward may-analysis over the function's CFG: each go
// statement joins the pending set, any join operation (a Wait() method call,
// a channel receive, or a range over a channel) clears it, and whatever is
// still pending in the exit block's entry fact is reported. Joins inside
// deferred statements count for every exit, matching the runtime semantics.
func WaitJoin() *Analyzer {
	return &Analyzer{
		Name: "waitjoin",
		Doc: "flags goroutines in internal/par and internal/core without a " +
			"WaitGroup/channel join on every exit path",
		Run: runWaitJoin,
	}
}

// waitJoinPkgs are the package names whose goroutines must be structured.
var waitJoinPkgs = map[string]bool{"par": true, "core": true}

func runWaitJoin(p *Pass) {
	if !waitJoinPkgs[p.Pkg.Name] {
		return
	}
	info := p.Pkg.Info
	for _, fd := range funcDecls(p.Pkg) {
		if fd.Body == nil || !hasTopLevelGo(fd.Body) {
			continue
		}
		cfg := p.Prog.CFG(fd.Body)

		// A join inside a deferred statement runs on every exit; treat the
		// whole function as joined.
		deferJoins := false
		for _, d := range cfg.Defers {
			if containsJoin(info, d) {
				deferJoins = true
			}
		}
		if deferJoins {
			continue
		}

		problem := &waitJoinProblem{info: info}
		res := ForwardFlow(cfg, problem)
		pending, _ := res.In[cfg.Exit].(goSet)
		var launches []*ast.GoStmt
		for g := range pending {
			launches = append(launches, g)
		}
		// Map order is random; report in source order.
		for i := range launches {
			for j := i + 1; j < len(launches); j++ {
				if launches[j].Pos() < launches[i].Pos() {
					launches[i], launches[j] = launches[j], launches[i]
				}
			}
		}
		for _, g := range launches {
			p.Reportf(g.Pos(),
				"goroutine launched in %s is not joined on every exit path "+
					"(no WaitGroup.Wait or channel receive before return); a leaked "+
					"worker outlives the traversal it belongs to",
				funcDisplayName(fd))
		}
	}
}

// hasTopLevelGo reports whether body launches a goroutine outside nested
// function literals (whose launches belong to the literal, not to fd).
func hasTopLevelGo(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			found = true
		}
		return !found
	})
	return found
}

// goSet is the dataflow fact: goroutine launches not yet joined on some path
// reaching the current point.
type goSet map[*ast.GoStmt]bool

// waitJoinProblem is a forward may-analysis (merge = union): a launch is a
// problem if ANY path reaches the exit without passing a join.
type waitJoinProblem struct {
	info *types.Info
}

func (wp *waitJoinProblem) Entry() any { return goSet{} }

func (wp *waitJoinProblem) Merge(a, b any) any {
	fa, fb := a.(goSet), b.(goSet)
	out := goSet{}
	for g := range fa {
		out[g] = true
	}
	for g := range fb {
		out[g] = true
	}
	return out
}

func (wp *waitJoinProblem) Equal(a, b any) bool {
	fa, fb := a.(goSet), b.(goSet)
	if len(fa) != len(fb) {
		return false
	}
	for g := range fa {
		if !fb[g] {
			return false
		}
	}
	return true
}

func (wp *waitJoinProblem) Transfer(n ast.Node, fact any) any {
	in := fact.(goSet)
	if rs, ok := n.(*ast.RangeStmt); ok {
		// The head node of a range loop is the whole statement; only the
		// range expression is evaluated here (body statements have their own
		// nodes), so a join buried in the body must not clear the set at the
		// head — the body may never run.
		if tv, ok := wp.info.Types[rs.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				return goSet{}
			}
		}
		return in
	}
	if containsJoin(wp.info, n) {
		// Any join synchronizes the function with its workers; the analysis
		// does not distinguish WHICH WaitGroup — one join point per exit
		// path is the structural property being enforced.
		return goSet{}
	}
	if g, ok := n.(*ast.GoStmt); ok {
		out := goSet{}
		for p := range in {
			out[p] = true
		}
		out[g] = true
		return out
	}
	return in
}

// containsJoin reports whether n contains (outside nested function literals)
// a join operation: a call to a method named Wait, a channel receive
// expression, or a range over a channel.
func containsJoin(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch x := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				found = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
