package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WaitJoin flags goroutine launches in the scheduling packages (internal/par,
// internal/core, internal/serve, internal/telemetry) that are not joined on every path to the
// function's normal exit. A traversal primitive that returns while workers are still running
// leaks goroutines into the caller's iteration — the exact lifetime bug the
// -race matrix cannot reliably catch because the leaked worker usually loses
// the race with process exit.
//
// The check is a forward may-analysis over the function's CFG: each go
// statement joins the pending set, any join operation (a Wait() method call,
// a channel receive, or a range over a channel) clears it, and whatever is
// still pending in the exit block's entry fact is reported. Joins inside
// deferred statements count for every exit, matching the runtime semantics.
//
// One structured-lifetime pattern intentionally spans functions: a
// persistent worker pool (par.Pool) launches long-lived goroutines in its
// constructor and joins them in Close. The analysis models it precisely
// rather than suppressing: a launch is pool-structured when the launching
// function Adds to a sync.WaitGroup FIELD before the go statement and some
// other function in the package Waits on that same field — the join still
// exists on every pool lifetime, it just lives in the closer instead of the
// launcher. Local WaitGroups do not qualify (a local can only be waited on
// in the launching function), so fork/join primitives keep the strict
// every-exit-path rule.
func WaitJoin() *Analyzer {
	return &Analyzer{
		Name: "waitjoin",
		Doc: "flags goroutines in internal/par, internal/core, internal/serve, " +
			"and internal/telemetry without a WaitGroup/channel join on every exit path",
		Run: runWaitJoin,
	}
}

// waitJoinPkgs are the package names whose goroutines must be structured.
// serve is in scope because the live server's batcher and executor follow
// the same pool-structured lifetime (wg field Add in New, Wait in Close);
// telemetry joined in PR 7 so publisher goroutines can't sneak in unjoined.
var waitJoinPkgs = map[string]bool{
	"par": true, "core": true, "serve": true, "telemetry": true,
}

func runWaitJoin(p *Pass) {
	if !waitJoinPkgs[p.Pkg.Name] {
		return
	}
	info := p.Pkg.Info
	for _, fd := range funcDecls(p.Pkg) {
		if fd.Body == nil || !hasTopLevelGo(fd.Body) {
			continue
		}
		cfg := p.Prog.CFG(fd.Body)

		// A join inside a deferred statement runs on every exit; treat the
		// whole function as joined.
		deferJoins := false
		for _, d := range cfg.Defers {
			if containsJoin(info, d) {
				deferJoins = true
			}
		}
		if deferJoins {
			continue
		}

		problem := &waitJoinProblem{info: info}
		res := ForwardFlow(cfg, problem)
		pending, _ := res.In[cfg.Exit].(goSet)
		if len(pending) > 0 && poolStructured(p, info, fd) {
			// Persistent-pool lifetime: the launcher Adds to a WaitGroup
			// field that another function in the package (the pool's Close)
			// Waits on. The workers are joined — at pool shutdown, not at
			// launcher return.
			continue
		}
		var launches []*ast.GoStmt
		for g := range pending {
			launches = append(launches, g)
		}
		// Map order is random; report in source order.
		for i := range launches {
			for j := i + 1; j < len(launches); j++ {
				if launches[j].Pos() < launches[i].Pos() {
					launches[i], launches[j] = launches[j], launches[i]
				}
			}
		}
		for _, g := range launches {
			p.Reportf(g.Pos(),
				"goroutine launched in %s is not joined on every exit path "+
					"(no WaitGroup.Wait or channel receive before return); a leaked "+
					"worker outlives the traversal it belongs to",
				funcDisplayName(fd))
		}
	}
}

// hasTopLevelGo reports whether body launches a goroutine outside nested
// function literals (whose launches belong to the literal, not to fd).
func hasTopLevelGo(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			found = true
		}
		return !found
	})
	return found
}

// goSet is the dataflow fact: goroutine launches not yet joined on some path
// reaching the current point.
type goSet map[*ast.GoStmt]bool

// waitJoinProblem is a forward may-analysis (merge = union): a launch is a
// problem if ANY path reaches the exit without passing a join.
type waitJoinProblem struct {
	info *types.Info
}

func (wp *waitJoinProblem) Entry() any { return goSet{} }

func (wp *waitJoinProblem) Merge(a, b any) any {
	fa, fb := a.(goSet), b.(goSet)
	out := goSet{}
	for g := range fa {
		out[g] = true
	}
	for g := range fb {
		out[g] = true
	}
	return out
}

func (wp *waitJoinProblem) Equal(a, b any) bool {
	fa, fb := a.(goSet), b.(goSet)
	if len(fa) != len(fb) {
		return false
	}
	for g := range fa {
		if !fb[g] {
			return false
		}
	}
	return true
}

func (wp *waitJoinProblem) Transfer(n ast.Node, fact any) any {
	in := fact.(goSet)
	if rs, ok := n.(*ast.RangeStmt); ok {
		// The head node of a range loop is the whole statement; only the
		// range expression is evaluated here (body statements have their own
		// nodes), so a join buried in the body must not clear the set at the
		// head — the body may never run.
		if tv, ok := wp.info.Types[rs.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				return goSet{}
			}
		}
		return in
	}
	if containsJoin(wp.info, n) {
		// Any join synchronizes the function with its workers; the analysis
		// does not distinguish WHICH WaitGroup — one join point per exit
		// path is the structural property being enforced.
		return goSet{}
	}
	if g, ok := n.(*ast.GoStmt); ok {
		out := goSet{}
		for p := range in {
			out[p] = true
		}
		out[g] = true
		return out
	}
	return in
}

// poolStructured reports whether fd participates in the persistent-pool
// lifetime pattern: it Adds to at least one sync.WaitGroup struct field, and
// some other function in the package calls Wait on that same field. The
// field requirement is what scopes the model — the WaitGroup must outlive
// the launcher for a cross-function join to be reachable at all.
func poolStructured(p *Pass, info *types.Info, fd *ast.FuncDecl) bool {
	for _, field := range waitGroupFieldCalls(info, fd.Body, "Add") {
		if fieldWaitedInPackage(p, field, fd) {
			return true
		}
	}
	return false
}

// waitGroupFieldCalls returns the sync.WaitGroup struct fields that receive
// a call to the named method inside body, outside nested function literals.
func waitGroupFieldCalls(info *types.Info, body ast.Node, method string) []*types.Var {
	var out []*types.Var
	seen := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != method {
			return true
		}
		recv, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true // p.wg.Add: the receiver must itself be a field selection
		}
		field := rootVar(info, recv)
		if field == nil || !field.IsField() || !isWaitGroup(field.Type()) || seen[field] {
			return true
		}
		seen[field] = true
		out = append(out, field)
		return true
	})
	return out
}

// fieldWaitedInPackage reports whether any function of the package other
// than exclude calls Wait on the given WaitGroup field.
func fieldWaitedInPackage(p *Pass, field *types.Var, exclude *ast.FuncDecl) bool {
	for _, fd := range funcDecls(p.Pkg) {
		if fd == exclude || fd.Body == nil {
			continue
		}
		for _, waited := range waitGroupFieldCalls(p.Pkg.Info, fd.Body, "Wait") {
			if waited == field {
				return true
			}
		}
	}
	return false
}

// isWaitGroup reports whether t is sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// containsJoin reports whether n contains (outside nested function literals)
// a join operation: a call to a method named Wait, a channel receive
// expression, or a range over a channel.
func containsJoin(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch x := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				found = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
