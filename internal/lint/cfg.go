package lint

import (
	"go/ast"
	"go/token"
)

// CFG is an intraprocedural control-flow graph over one function body. It is
// statement-granular: every top-level statement (and branch condition) of the
// source becomes a node in exactly one basic block, and edges follow Go's
// structured control flow plus the unstructured escapes (labeled
// break/continue, goto, return, panic). Expressions are not decomposed;
// dataflow transfer functions inspect sub-expressions themselves.
//
// Two pseudo-blocks terminate every function: Exit collects normal
// terminations (returns and falling off the end), Panic collects panicking
// paths. Deferred statements are recorded in Defers rather than spliced into
// the edge structure — they run on *every* termination, so analyses treat
// them as a postlude to both Exit and Panic.
type CFG struct {
	// Entry is the first block executed; Blocks[0].
	Entry *Block
	// Exit is the normal-termination pseudo-block (no nodes, no successors).
	Exit *Block
	// Panic is the abnormal-termination pseudo-block fed by panic() calls.
	Panic *Block
	// Blocks lists every block, Entry first, in creation order.
	Blocks []*Block
	// Defers lists the defer statements of the body in source order; they
	// execute (in reverse) on every path into Exit or Panic.
	Defers []*ast.DeferStmt
}

// Block is one straight-line run of statements with a single entry point.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// Reachable returns the set of blocks reachable from Entry.
func (c *CFG) Reachable() map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(c.Entry)
	return seen
}

// branchTargets is one entry of the break/continue resolution stack: the
// innermost enclosing loop/switch/select, with its optional label. cont is
// nil for switch/select (continue passes through them to the nearest loop).
type branchTargets struct {
	label     string
	brk, cont *Block
}

type cfgBuilder struct {
	c *CFG
	// cur is the block under construction; nil while the builder walks
	// statically dead code (after return/break/goto...).
	cur     *Block
	targets []branchTargets
	// labels maps goto/label names to their blocks, created on demand so
	// forward gotos resolve.
	labels map[string]*Block
	// fallthroughs is the stack of next-case blocks for fallthrough.
	fallthroughs []*Block
}

// BuildCFG constructs the CFG of one function (or function literal) body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	c := &CFG{}
	b := &cfgBuilder{c: c, labels: map[string]*Block{}}
	c.Entry = b.newBlock()
	c.Exit = b.newBlock()
	c.Panic = b.newBlock()
	b.cur = c.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, c.Exit)
	}
	return c
}

func (b *cfgBuilder) newBlock() *Block {
	bl := &Block{Index: len(b.c.Blocks)}
	b.c.Blocks = append(b.c.Blocks, bl)
	return bl
}

func (b *cfgBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// moveTo makes `to` the current block, linking it from the old current block
// when that one is still live.
func (b *cfgBuilder) moveTo(to *Block) {
	if b.cur != nil {
		b.edge(b.cur, to)
	}
	b.cur = to
}

// add appends a node to the current block, reviving a fresh (unreachable)
// block when the builder is in dead code so the nodes are still retained.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) labelBlock(name string) *Block {
	if lb, ok := b.labels[name]; ok {
		return lb
	}
	lb := b.newBlock()
	b.labels[name] = lb
	return lb
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// findTarget resolves a break (wantBreak) or continue target, optionally
// labeled. Continue skips switch/select frames (cont == nil).
func (b *cfgBuilder) findTarget(label string, wantBreak bool) *Block {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := b.targets[i]
		if label != "" && t.label != label {
			continue
		}
		if wantBreak {
			return t.brk
		}
		if t.cont != nil {
			return t.cont
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(x.List)

	case *ast.LabeledStmt:
		// The label block is a join point so gotos (including backward ones)
		// can land here; the labeled statement resolves break/continue
		// through the label passed down.
		lb := b.labelBlock(x.Label.Name)
		b.moveTo(lb)
		b.stmt(x.Stmt, x.Label.Name)

	case *ast.IfStmt:
		if x.Init != nil {
			b.add(x.Init)
		}
		b.add(x.Cond)
		condB := b.cur
		after := b.newBlock()
		thenB := b.newBlock()
		b.edge(condB, thenB)
		b.cur = thenB
		b.stmtList(x.Body.List)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
		if x.Else != nil {
			elseB := b.newBlock()
			b.edge(condB, elseB)
			b.cur = elseB
			b.stmt(x.Else, "")
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		} else {
			b.edge(condB, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if x.Init != nil {
			b.add(x.Init)
		}
		head := b.newBlock()
		b.moveTo(head)
		if x.Cond != nil {
			b.add(x.Cond)
		}
		body := b.newBlock()
		post := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		if x.Cond != nil {
			b.edge(head, after)
		}
		b.targets = append(b.targets, branchTargets{label, after, post})
		b.cur = body
		b.stmtList(x.Body.List)
		b.targets = b.targets[:len(b.targets)-1]
		if b.cur != nil {
			b.edge(b.cur, post)
		}
		b.cur = post
		if x.Post != nil {
			b.add(x.Post)
		}
		b.edge(post, head)
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		b.moveTo(head)
		// The RangeStmt itself is the head node: it evaluates the range
		// expression and binds key/value each round.
		b.add(x)
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		b.edge(head, after) // the range may be empty
		b.targets = append(b.targets, branchTargets{label, after, head})
		b.cur = body
		b.stmtList(x.Body.List)
		b.targets = b.targets[:len(b.targets)-1]
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.cur = after

	case *ast.SwitchStmt:
		if x.Init != nil {
			b.add(x.Init)
		}
		if x.Tag != nil {
			b.add(x.Tag)
		}
		b.switchClauses(x.Body.List, label, true)

	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			b.add(x.Init)
		}
		b.add(x.Assign)
		b.switchClauses(x.Body.List, label, false)

	case *ast.SelectStmt:
		head := b.cur
		if head == nil {
			head = b.newBlock()
			b.cur = head
		}
		after := b.newBlock()
		b.targets = append(b.targets, branchTargets{label, after, nil})
		for _, cl := range x.Body.List {
			comm := cl.(*ast.CommClause)
			cb := b.newBlock()
			b.edge(head, cb)
			b.cur = cb
			if comm.Comm != nil {
				b.add(comm.Comm)
			}
			b.stmtList(comm.Body)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		}
		b.targets = b.targets[:len(b.targets)-1]
		// A select with no clauses blocks forever: after stays unreachable.
		b.cur = after

	case *ast.BranchStmt:
		name := ""
		if x.Label != nil {
			name = x.Label.Name
		}
		switch x.Tok {
		case token.BREAK:
			if t := b.findTarget(name, true); t != nil && b.cur != nil {
				b.edge(b.cur, t)
			}
			b.cur = nil
		case token.CONTINUE:
			if t := b.findTarget(name, false); t != nil && b.cur != nil {
				b.edge(b.cur, t)
			}
			b.cur = nil
		case token.GOTO:
			if b.cur != nil {
				b.edge(b.cur, b.labelBlock(name))
			}
			b.cur = nil
		case token.FALLTHROUGH:
			if n := len(b.fallthroughs); n > 0 && b.cur != nil && b.fallthroughs[n-1] != nil {
				b.edge(b.cur, b.fallthroughs[n-1])
			}
			b.cur = nil
		}

	case *ast.ReturnStmt:
		b.add(x)
		b.edge(b.cur, b.c.Exit)
		b.cur = nil

	case *ast.DeferStmt:
		b.c.Defers = append(b.c.Defers, x)
		b.add(x)

	case *ast.ExprStmt:
		b.add(x)
		if isPanicCall(x.X) {
			b.edge(b.cur, b.c.Panic)
			b.cur = nil
		}

	case nil:
		// nothing

	default:
		// Assignments, declarations, go/send/incdec/empty statements are
		// straight-line nodes.
		b.add(s)
	}
}

// switchClauses builds the clause blocks of a (type) switch; withFallthrough
// wires fallthrough edges for expression switches.
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, label string, withFallthrough bool) {
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	after := b.newBlock()
	b.targets = append(b.targets, branchTargets{label, after, nil})

	// Pre-create case bodies so fallthrough can target the next clause.
	caseBlocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cl := range clauses {
		caseBlocks[i] = b.newBlock()
		b.edge(head, caseBlocks[i])
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	for i, cl := range clauses {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		b.cur = caseBlocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		next := (*Block)(nil)
		if withFallthrough && i+1 < len(clauses) {
			next = caseBlocks[i+1]
		}
		b.fallthroughs = append(b.fallthroughs, next)
		b.stmtList(cc.Body)
		b.fallthroughs = b.fallthroughs[:len(b.fallthroughs)-1]
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	b.targets = b.targets[:len(b.targets)-1]
	if !hasDefault {
		b.edge(head, after)
	}
	b.cur = after
}

// isPanicCall reports whether e is a call to the builtin panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
