package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc flags per-iteration allocations on traversal hot paths. The hot
// regions are (a) closures handed to the internal/par runtime — they execute
// once per chunk per iteration on every worker — and (b) the bodies of loops
// that drive par calls, i.e. the per-iteration section of an engine's
// traversal loop. Inside a region, make/new, slice & map composite literals,
// &T{} allocations, escaping closure literals and appends to slices without
// a proven capacity reservation all turn into garbage pressure multiplied by
// the iteration count; the fix is almost always hoisting the allocation out
// of the loop or reusing a scratch buffer.
//
// Appends are checked flow-sensitively: a must-reach dataflow over the
// enclosing function's CFG tracks which slices were last bound to a
// capacity-reserving make (3-arg make, or make with zero length and explicit
// capacity), and an append is exempt exactly when its target is reserved on
// every path into the append. Reserving with an iteration-cap hint before
// the loop is therefore enough to quiesce the finding.
func HotAlloc() *Analyzer {
	return &Analyzer{
		Name: "hotalloc",
		Doc: "flags per-iteration allocations (make, composite literals, " +
			"unreserved appends, escaping closures) inside traversal loops " +
			"and internal/par worker closures",
		Run: runHotAlloc,
	}
}

// hotAllocPkgs are the package names whose loops are traversal hot paths.
// serve and telemetry are in scope since PR 7: the serving loop's batch path
// and the per-iteration telemetry hooks run once per batch per query and
// feed the same engines.
var hotAllocPkgs = map[string]bool{
	"engine": true, "core": true, "par": true, "serve": true, "telemetry": true,
}

func runHotAlloc(p *Pass) {
	if !hotAllocPkgs[p.Pkg.Name] {
		return
	}
	info := p.Pkg.Info
	for _, fd := range funcDecls(p.Pkg) {
		if fd.Body == nil {
			continue
		}
		// The reservation dataflow runs over whichever body encloses the
		// region: the function for loop regions (reservations sit before the
		// loop), the closure itself for worker-closure regions (a closure's
		// statements are not nodes of the enclosing CFG). Scopes are shared
		// across regions with the same flow body, and findings deduplicate
		// by position so nested regions don't double-report.
		scopes := map[*ast.BlockStmt]*hotAllocScope{}
		reported := map[string]bool{}
		for _, region := range hotRegions(info, fd) {
			scope, ok := scopes[region.flowBody]
			if !ok {
				scope = newHotAllocScope(p, region.flowBody, reported)
				scopes[region.flowBody] = scope
			}
			scope.check(region.body, region.why)
		}
	}
}

// hotRegion is one stretch of code that executes once per iteration (or per
// worker chunk) of a parallel traversal. flowBody is the function or closure
// body the reservation dataflow must span to see bindings preceding the
// region.
type hotRegion struct {
	body     ast.Node
	flowBody *ast.BlockStmt
	why      string
}

// hotRegions finds the hot regions of fd: loop bodies containing a par call,
// and closures passed to par directly. Regions may nest; each is checked
// independently and findings are deduplicated by position.
func hotRegions(info *types.Info, fd *ast.FuncDecl) []hotRegion {
	var out []hotRegion
	containsParCall := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok && isParCall(info, call) {
				found = true
			}
			return !found
		})
		return found
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ForStmt:
			if containsParCall(x.Body) {
				out = append(out, hotRegion{x.Body, fd.Body, "iteration loop driving internal/par"})
			}
		case *ast.RangeStmt:
			if containsParCall(x.Body) {
				out = append(out, hotRegion{x.Body, fd.Body, "iteration loop driving internal/par"})
			}
		case *ast.CallExpr:
			if isParCall(info, x) {
				for _, arg := range x.Args {
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						out = append(out, hotRegion{lit.Body, lit.Body, "internal/par worker closure"})
					}
				}
			}
		}
		return true
	})
	return out
}

// hotAllocScope bundles one flow body's state: the reservation dataflow over
// the function or closure enclosing the region (reservations typically
// happen before the loop, so the analysis must span the full CFG, not just
// the region) and the shared dedup set.
type hotAllocScope struct {
	p        *Pass
	info     *types.Info
	flowBody *ast.BlockStmt
	cfg      *CFG
	problem  *reservedProblem
	res      *FlowResult
	reported map[string]bool
}

func newHotAllocScope(p *Pass, flowBody *ast.BlockStmt, reported map[string]bool) *hotAllocScope {
	cfg := p.Prog.CFG(flowBody)
	problem := &reservedProblem{info: p.Pkg.Info}
	return &hotAllocScope{
		p:        p,
		info:     p.Pkg.Info,
		flowBody: flowBody,
		cfg:      cfg,
		problem:  problem,
		res:      ForwardFlow(cfg, problem),
		reported: reported,
	}
}

func (ha *hotAllocScope) report(n ast.Node, format string, args ...interface{}) {
	pos := ha.p.fset.Position(n.Pos())
	key := pos.String()
	if ha.reported[key] {
		return
	}
	ha.reported[key] = true
	ha.p.Reportf(n.Pos(), format, args...)
}

// check walks one hot region and reports allocation sites. Nested function
// literals that are themselves par arguments start their own region, so the
// walk skips them here.
func (ha *hotAllocScope) check(body ast.Node, why string) {
	info := ha.info
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			switch {
			case isBuiltinCall(info, x, "make"):
				// A zero-length make with explicit capacity is the scratch
				// reservation this analyzer itself prescribes; per-worker
				// scratch cannot be hoisted past the closure boundary
				// without racing, so the idiom is exempt.
				if isScratchMake(info, x) {
					return true
				}
				ha.report(x, "make inside %s allocates every iteration; hoist it out of the loop or reuse a scratch buffer", why)
			case isBuiltinCall(info, x, "new"):
				ha.report(x, "new inside %s allocates every iteration; hoist it out of the loop or reuse a scratch buffer", why)
			case isBuiltinCall(info, x, "append"):
				ha.checkAppend(x, why)
			}
			if isParCall(info, x) {
				// The worker closures of a nested par call are their own
				// regions; don't double-report their bodies under this one.
				for _, arg := range x.Args {
					if _, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						return true
					}
				}
			}
		case *ast.CompositeLit:
			switch info.Types[x].Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				ha.report(x, "%s literal inside %s allocates every iteration; hoist it out of the loop", describeLitType(info, x), why)
			}
			return false // inner literals are part of the same allocation
		case *ast.UnaryExpr:
			// &T{} heap-allocates; plain value literals passed by value do not.
			if x.Op == token.AND {
				if lit, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					ha.report(x, "&%s{...} inside %s heap-allocates every iteration; hoist it out of the loop or reuse a scratch value", typeNameOf(info, lit), why)
					return false
				}
			}
		case *ast.FuncLit:
			if !ha.isParArg(x) {
				ha.report(x, "closure literal inside %s allocates (and may escape) every iteration; hoist it to a named function or declare it before the loop", why)
			}
			return false // its body is not part of this region
		}
		return true
	})
}

// isParArg reports whether lit is a direct argument of a par call — the one
// closure shape the hot path cannot avoid (it IS the work distribution).
func (ha *hotAllocScope) isParArg(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(ha.flowBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isParCall(ha.info, call) {
			return !found
		}
		for _, arg := range call.Args {
			if ast.Unparen(arg) == lit {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkAppend flags append calls whose target slice is not reserved (bound
// to a capacity-carrying make on every path into the call).
func (ha *hotAllocScope) checkAppend(call *ast.CallExpr, why string) {
	if len(call.Args) == 0 {
		return
	}
	target := rootVar(ha.info, call.Args[0])
	if target == nil {
		ha.report(call, "append inside %s may grow its backing array every iteration; preallocate with a capacity hint", why)
		return
	}
	fact := FactAt(ha.cfg, ha.problem, ha.res, call)
	if fact != nil && fact.(reservedSet)[target] {
		return
	}
	ha.report(call,
		"append to %s inside %s may grow its backing array every iteration; preallocate with a capacity hint (make with explicit cap) before the loop",
		target.Name(), why)
}

// describeLitType renders "slice" / "map" for the finding message.
func describeLitType(info *types.Info, lit *ast.CompositeLit) string {
	if _, ok := info.Types[lit].Type.Underlying().(*types.Map); ok {
		return "map"
	}
	return "slice"
}

// typeNameOf names the composite literal's type for the finding message.
func typeNameOf(info *types.Info, lit *ast.CompositeLit) string {
	t := info.Types[lit].Type
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// reservedSet is the dataflow fact of the reservation analysis: the slices
// (variables or fields, keyed by their *types.Var) currently bound to a
// capacity-reserving make.
type reservedSet map[*types.Var]bool

// reservedProblem is a forward must-analysis: a slice is reserved at a point
// only when every path reaching the point bound it to a make with explicit
// capacity (and did not rebind it to anything else — self-appends keep the
// reservation, they are exactly the amortized growth the hint pays for).
type reservedProblem struct {
	info *types.Info
}

func (rp *reservedProblem) Entry() any { return reservedSet{} }

func (rp *reservedProblem) Merge(a, b any) any {
	fa, fb := a.(reservedSet), b.(reservedSet)
	out := reservedSet{}
	for v := range fa {
		if fb[v] {
			out[v] = true
		}
	}
	return out
}

func (rp *reservedProblem) Equal(a, b any) bool {
	fa, fb := a.(reservedSet), b.(reservedSet)
	if len(fa) != len(fb) {
		return false
	}
	for v := range fa {
		if !fb[v] {
			return false
		}
	}
	return true
}

func (rp *reservedProblem) Transfer(n ast.Node, fact any) any {
	in := fact.(reservedSet)
	as, ok := n.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != len(as.Rhs) {
		return in
	}
	out := reservedSet{}
	for v := range in {
		out[v] = true
	}
	for i, lhs := range as.Lhs {
		v := rootVar(rp.info, lhs)
		if v == nil {
			continue
		}
		switch {
		case isReservingMake(rp.info, as.Rhs[i]):
			out[v] = true
		case isSelfAppend(rp.info, lhs, as.Rhs[i]):
			// x = append(x, ...) amortizes against the reservation.
		case isSelfReslice(rp.info, lhs, as.Rhs[i]):
			// x = x[:0] truncates but keeps the reserved capacity.
		default:
			delete(out, v)
		}
	}
	return out
}

// isBuiltinCall reports whether call invokes the named predeclared builtin
// (not a shadowing user declaration).
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = objectOf(info, id).(*types.Builtin)
	return ok
}

// isReservingMake reports whether e is a make call that reserves capacity:
// make(T, len, cap), or make(T, n) where the full length is written up front
// (two-arg make counts — the slice is sized, appends to it are the caller's
// own choice to grow past the sizing and still benefit from the base).
func isReservingMake(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || !isBuiltinCall(info, call, "make") {
		return false
	}
	return len(call.Args) >= 2
}

// isScratchMake reports whether call is make(S, 0, cap): a pure capacity
// reservation whose zero length means the allocation exists only to be
// appended into.
func isScratchMake(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) != 3 {
		return false
	}
	tv, ok := info.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}

// isSelfAppend reports whether rhs is append(lhs, ...).
func isSelfAppend(info *types.Info, lhs ast.Expr, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || !isBuiltinCall(info, call, "append") || len(call.Args) == 0 {
		return false
	}
	lv := rootVar(info, lhs)
	return lv != nil && lv == rootVar(info, call.Args[0])
}

// isSelfReslice reports whether rhs is lhs[...] — a reslice of the same
// variable, which retains the backing array and its capacity.
func isSelfReslice(info *types.Info, lhs ast.Expr, rhs ast.Expr) bool {
	sl, ok := ast.Unparen(rhs).(*ast.SliceExpr)
	if !ok {
		return false
	}
	lv := rootVar(info, lhs)
	return lv != nil && lv == rootVar(info, sl.X)
}
