package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockGuard infers, per struct, which mutex guards which fields and enforces
// the inferred discipline. Inference is a majority vote: for every field of a
// struct that carries a sync.Mutex/sync.RWMutex field, the analyzer counts
// how many of the field's accesses (module-wide, outside function literals)
// execute while a mutex of the same struct is must-held on the same receiver
// path ("s.mu held" guards "s.queue", "t.c.mu held" guards "t.c.timers").
// A mutex that dominates a strict majority of a field's accesses becomes its
// inferred guard, and the minority accesses are findings.
//
// The must-held state is a forward dataflow over the function CFG
// (intersection merge: a lock counts only when every path holds it), with
// `defer mu.Unlock()` handled as a postlude via the CFG's Defers list rather
// than a mid-body release. Two conventions feed lock state across function
// boundaries: methods whose name ends in "Locked" start with all receiver
// mutexes held (the repo-wide contract for helpers documented "must be
// called with mu held"), and a fixpoint over the static call graph
// propagates must-held receiver locks from call sites into callee entry
// facts — so an unsuffixed helper that is only ever invoked under the lock
// needs no annotation. Constructor writes to provably fresh (unpublished)
// objects are exempt via the freshness dataflow.
//
// On top of guard enforcement the analyzer reports three path properties:
// writes under RLock (shared mode cannot order writes), Lock/RLock while the
// same key is already must-held (guaranteed self-deadlock — Go mutexes are
// not reentrant), and exit or panic paths that may leave an in-function
// acquisition held (no Unlock on the path and no deferred release).
//
// Precision limits, by design: fields of self-synchronized types (own mutex,
// atomics, channels) are exempt from inference; accesses through
// non-canonical paths (indexing, calls) and inside function literals or
// deferred statements are not counted; structs whose state is guarded by
// *another* struct's mutex (serve's slot, guarded by the server's mu) have
// no mutex field and are skipped. LINTING.md documents each trade-off.
func LockGuard() *Analyzer {
	return &Analyzer{
		Name: "lockguard",
		Doc: "infers which mutex guards each struct field (majority vote over " +
			"must-locked accesses) and flags unguarded accesses, writes under " +
			"RLock, double-locks, and exit/panic paths leaving a lock held",
		Run: runLockGuard,
	}
}

func runLockGuard(p *Pass) {
	p.Prog.lockguardFor().report(p)
}

// lockguardFor returns the memoized module-wide lockguard fixpoint.
func (pr *Program) lockguardFor() *lockAnalysis {
	if pr.lockguardMemo == nil {
		pr.lockguardMemo = buildLockAnalysis(pr)
	}
	return pr.lockguardMemo
}

// lockFlow bundles one function's held-locks fixpoint for point queries.
type lockFlow struct {
	cfg     *CFG
	problem *lockProblem
	res     *FlowResult
}

func (lf *lockFlow) at(n ast.Node) lockFact {
	fact, _ := FactAt(lf.cfg, lf.problem, lf.res, n).(lockFact)
	return fact
}

// lockAccess is one field access subject to guard inference.
type lockAccess struct {
	pkg   *Package
	fd    *ast.FuncDecl
	sel   *ast.SelectorExpr
	field *types.Var
	base  string // canonical path of the struct value ("s", "t.c")
	owner string // struct type name, for messages
	write bool
	// mutexes are the owning struct's mutex fields; held is the subset
	// must-held on this access's base path, with modes.
	mutexes []*types.Var
	held    lockFact
}

// lockFuncInfo is one function declaration in the module-wide analysis.
type lockFuncInfo struct {
	pkg *Package
	fd  *ast.FuncDecl
	fn  *types.Func
}

// lockAnalysis is the module-wide lockguard state: entry-lock facts per
// function (suffix convention + call-site propagation fixpoint), per-function
// flows, collected accesses, and the voted guard map.
type lockAnalysis struct {
	prog    *Program
	fns     []lockFuncInfo
	seeds   map[*types.Func]lockFact // "...Locked" suffix convention
	entries map[*types.Func]lockFact // final entry-held facts
	must    map[*ast.FuncDecl]*lockFlow
	may     map[*ast.FuncDecl]*lockFlow

	accesses []*lockAccess
	guard    map[*types.Var]*types.Var // field → inferred guarding mutex
	votes    map[*types.Var]int        // accesses held under the winning mutex
	total    map[*types.Var]int        // all counted accesses of the field
}

func buildLockAnalysis(prog *Program) *lockAnalysis {
	la := &lockAnalysis{
		prog:    prog,
		seeds:   map[*types.Func]lockFact{},
		entries: map[*types.Func]lockFact{},
		guard:   map[*types.Var]*types.Var{},
		votes:   map[*types.Var]int{},
		total:   map[*types.Var]int{},
	}
	for _, pkg := range prog.All {
		for _, fd := range funcDecls(pkg) {
			if fd.Body == nil {
				continue
			}
			fn := funcOf(pkg, fd)
			if fn == nil {
				continue
			}
			la.fns = append(la.fns, lockFuncInfo{pkg: pkg, fd: fd, fn: fn})
			if seed := suffixSeed(pkg, fd, fn); len(seed) > 0 {
				la.seeds[fn] = seed
				la.entries[fn] = seed
			}
		}
	}

	// Fixpoint: flows computed under the current entry facts discover locks
	// must-held at call sites, which enlarge callee entry facts, which can
	// only add held state — a monotonically increasing, terminating chain.
	for {
		la.must = map[*ast.FuncDecl]*lockFlow{}
		for _, fi := range la.fns {
			la.must[fi.fd] = la.flowFor(fi, false)
		}
		changed := false
		for _, fi := range la.fns {
			merged := unionLockFacts(la.seeds[fi.fn], la.siteEntry(fi))
			if !sameLockFact(la.entries[fi.fn], merged) {
				la.entries[fi.fn] = merged
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	la.may = map[*ast.FuncDecl]*lockFlow{}
	for _, fi := range la.fns {
		la.may[fi.fd] = la.flowFor(fi, true)
	}

	la.collectAccesses()
	la.voteGuards()
	return la
}

// suffixSeed returns the entry-held fact the "...Locked" naming convention
// asserts: every mutex field of the receiver is write-held on entry.
func suffixSeed(pkg *Package, fd *ast.FuncDecl, fn *types.Func) lockFact {
	if !strings.HasSuffix(fd.Name.Name, "Locked") {
		return nil
	}
	rn := recvIdentName(fd)
	if rn == "" {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	seed := lockFact{}
	for _, m := range mutexFields(sig.Recv().Type()) {
		seed[lockKey{mutex: m, base: rn}] = lockW
	}
	return seed
}

// recvIdentName returns the receiver identifier of fd, or "".
func recvIdentName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return ""
	}
	name := fd.Recv.List[0].Names[0].Name
	if name == "_" {
		return ""
	}
	return name
}

func (la *lockAnalysis) flowFor(fi lockFuncInfo, may bool) *lockFlow {
	cfg := la.prog.CFG(fi.fd.Body)
	problem := &lockProblem{info: fi.pkg.Info, entry: la.entries[fi.fn], may: may}
	return &lockFlow{cfg: cfg, problem: problem, res: ForwardFlow(cfg, problem)}
}

// siteEntry derives the locks held at every static call site of fi's method,
// translated onto the callee's receiver name — the intersection over all
// sites. The derivation is refused (nil) when the caller set is incomplete
// (method value escapes, calls from function literals or deferred
// statements) or any receiver path is non-canonical.
func (la *lockAnalysis) siteEntry(fi lockFuncInfo) lockFact {
	if fi.fd.Recv == nil {
		return nil
	}
	rn := recvIdentName(fi.fd)
	if rn == "" {
		return nil
	}
	sig, ok := fi.fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	ms := mutexFields(sig.Recv().Type())
	if len(ms) == 0 {
		return nil
	}
	if la.prog.Graph.FuncRefs[fi.fn] > 0 {
		return nil
	}
	sites := la.prog.Graph.ByCallee[fi.fn]
	if len(sites) == 0 {
		return nil
	}
	var derived lockFact
	first := true
	for _, site := range sites {
		if site.InLit {
			return nil
		}
		callerFd := la.prog.Graph.DeclOf[site.Caller]
		if callerFd == nil || callerFd.Body == nil {
			return nil
		}
		flow := la.must[callerFd]
		if flow == nil {
			return nil
		}
		// Calls inside deferred statements run at termination; the facts at
		// the defer's source position do not apply.
		if inDefer(flow.cfg, site.Call) {
			return nil
		}
		recvE := receiverExpr(site.Pkg.Info, site.Call)
		if recvE == nil {
			return nil
		}
		path := canonPath(recvE)
		if path == "" {
			return nil
		}
		fact := flow.at(site.Call)
		if fact == nil {
			continue // statically unreachable call site
		}
		held := lockFact{}
		for _, m := range ms {
			if mode := fact[lockKey{mutex: m, base: path}]; mode != lockNone {
				held[lockKey{mutex: m, base: rn}] = mode
			}
		}
		if first {
			derived, first = held, false
		} else {
			derived = intersectLockFacts(derived, held)
		}
		if len(derived) == 0 {
			return nil
		}
	}
	return derived
}

// inDefer reports whether n sits inside one of the body's deferred statements.
func inDefer(cfg *CFG, n ast.Node) bool {
	for _, d := range cfg.Defers {
		if d.Pos() <= n.Pos() && n.End() <= d.End() {
			return true
		}
	}
	return false
}

func unionLockFacts(a, b lockFact) lockFact {
	out := lockFact{}
	for k, m := range a {
		out[k] = m
	}
	for k, m := range b {
		if m > out[k] {
			out[k] = m
		}
	}
	return out
}

func intersectLockFacts(a, b lockFact) lockFact {
	out := lockFact{}
	for k, m := range a {
		if mb := b[k]; mb != lockNone {
			if mb < m {
				m = mb
			}
			out[k] = m
		}
	}
	return out
}

func sameLockFact(a, b lockFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, m := range a {
		if b[k] != m {
			return false
		}
	}
	return true
}

// collectAccesses records every guard-relevant field access in the module:
// selections on a struct that has mutex fields, outside function literals
// and deferred statements, through a canonical path, excluding sync-typed
// and self-synchronized fields and provably fresh (unpublished) receivers.
func (la *lockAnalysis) collectAccesses() {
	for _, fi := range la.fns {
		flow := la.must[fi.fd]
		info := fi.pkg.Info
		writes := writeTargets(fi.fd.Body)
		var fresh *freshAnalysis
		ast.Inspect(fi.fd.Body, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncLit, *ast.DeferStmt:
				return false
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			field, ok := s.Obj().(*types.Var)
			if !ok {
				return true
			}
			tv, ok := info.Types[sel.X]
			if !ok {
				return true
			}
			ms := mutexFields(tv.Type)
			if len(ms) == 0 {
				return true
			}
			if isMutexType(field.Type()) || guardExemptType(field.Type()) {
				return true
			}
			base := canonPath(sel.X)
			if base == "" {
				return true
			}
			// Constructor writes before publication: a provably fresh local
			// cannot race, so its accesses carry no vote and no finding.
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if v, isVar := objectOf(info, id).(*types.Var); isVar && !v.IsField() {
					if fresh == nil {
						fresh = la.prog.freshFor(fi.pkg, fi.fd)
					}
					if fact, _ := FactAt(fresh.cfg, fresh.problem, fresh.res, sel).(freshSet); fact != nil && fact[v] {
						return true
					}
				}
			}
			fact := flow.at(sel)
			if fact == nil {
				return true // statically unreachable
			}
			held := lockFact{}
			for _, m := range ms {
				k := lockKey{mutex: m, base: base}
				if mode := fact[k]; mode != lockNone {
					held[k] = mode
				}
			}
			la.accesses = append(la.accesses, &lockAccess{
				pkg:     fi.pkg,
				fd:      fi.fd,
				sel:     sel,
				field:   field,
				base:    base,
				owner:   namedTypeName(tv.Type),
				write:   writes[sel],
				mutexes: ms,
				held:    held,
			})
			return true
		})
	}
}

// namedTypeName returns the name of t's named type behind pointers, or "".
func namedTypeName(t types.Type) string {
	if named, ok := derefType(t).(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// writeTargets marks the selector expressions written by assignments, IncDec
// statements, and address-taking within body (outside function literals).
func writeTargets(body ast.Node) map[ast.Node]bool {
	out := map[ast.Node]bool{}
	var mark func(e ast.Expr)
	mark = func(e ast.Expr) {
		switch x := ast.Unparen(e).(type) {
		case *ast.StarExpr:
			mark(x.X)
		case *ast.IndexExpr:
			mark(x.X)
		case *ast.SelectorExpr:
			out[x] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, l := range x.Lhs {
				mark(l)
			}
		case *ast.IncDecStmt:
			mark(x.X)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				mark(x.X)
			}
		}
		return true
	})
	return out
}

// voteGuards runs the majority vote: a mutex guards a field when it is
// must-held on a strict majority of the field's counted accesses.
func (la *lockAnalysis) voteGuards() {
	perMutex := map[*types.Var]map[*types.Var]int{}
	for _, a := range la.accesses {
		la.total[a.field]++
		for _, m := range a.mutexes {
			if a.held[lockKey{mutex: m, base: a.base}] != lockNone {
				if perMutex[a.field] == nil {
					perMutex[a.field] = map[*types.Var]int{}
				}
				perMutex[a.field][m]++
			}
		}
	}
	for f, byMutex := range perMutex {
		var best *types.Var
		bestN := 0
		for m, n := range byMutex {
			if n*2 <= la.total[f] {
				continue
			}
			// Nested locks can make two mutexes pass the bar; prefer the
			// more frequent, then declaration order, deterministically.
			if n > bestN || (n == bestN && best != nil && m.Pos() < best.Pos()) {
				best, bestN = m, n
			}
		}
		if best != nil {
			la.guard[f] = best
			la.votes[f] = bestN
		}
	}
}

// report emits the findings that land in pass's package.
func (la *lockAnalysis) report(p *Pass) {
	for _, a := range la.accesses {
		if a.pkg != p.Pkg {
			continue
		}
		g := la.guard[a.field]
		if g == nil {
			continue
		}
		mode := a.held[lockKey{mutex: g, base: a.base}]
		switch {
		case mode == lockNone:
			verb := "read of"
			if a.write {
				verb = "write to"
			}
			p.Reportf(a.sel.Pos(),
				"%s %s.%s without holding %s.%s, which guards it (must-held on %d of %d accesses)",
				verb, a.owner, a.field.Name(), a.owner, g.Name(), la.votes[a.field], la.total[a.field])
		case a.write && mode == lockR:
			p.Reportf(a.sel.Pos(),
				"write to %s.%s under RLock of %s.%s; writes require the exclusive Lock",
				a.owner, a.field.Name(), a.owner, g.Name())
		}
	}
	for _, fi := range la.fns {
		if fi.pkg == p.Pkg {
			la.reportPaths(p, fi)
		}
	}
}

// reportPaths emits the per-function path findings for fi: double-locks at
// acquisition sites, and exit/panic paths that may leave a lock held.
func (la *lockAnalysis) reportPaths(p *Pass, fi lockFuncInfo) {
	mustFlow, mayFlow := la.must[fi.fd], la.may[fi.fd]
	info := fi.pkg.Info
	entry := la.entries[fi.fn]

	firstAt := map[lockKey]token.Pos{}
	ast.Inspect(fi.fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, op, ok := mutexOp(info, call)
		if !ok || (op != "Lock" && op != "RLock") {
			return true
		}
		if _, seen := firstAt[key]; !seen {
			firstAt[key] = call.Pos()
		}
		fact := mustFlow.at(call)
		if fact == nil {
			return true
		}
		if op == "Lock" && fact[key] != lockNone {
			p.Reportf(call.Pos(),
				"%s is already held when this Lock executes: guaranteed self-deadlock (Go mutexes are not reentrant)", key)
		} else if op == "RLock" && fact[key] == lockW {
			p.Reportf(call.Pos(),
				"%s is already write-held when this RLock executes: guaranteed self-deadlock", key)
		}
		return true
	})

	released := deferReleasedKeys(info, mustFlow.cfg)
	reported := map[lockKey]bool{}
	check := func(block *Block, format string) {
		fact, _ := mayFlow.res.In[block].(lockFact)
		if len(fact) == 0 {
			return
		}
		keys := make([]lockKey, 0, len(fact))
		for k := range fact {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
		for _, k := range keys {
			if entry[k] != lockNone || released[k] || reported[k] {
				continue
			}
			reported[k] = true
			pos := firstAt[k]
			if pos == token.NoPos {
				pos = fi.fd.Pos()
			}
			p.Reportf(pos, format, k, funcDisplayName(fi.fd))
		}
	}
	check(mustFlow.cfg.Exit,
		"%s may still be held when %s returns; unlock on every path or defer the unlock")
	check(mustFlow.cfg.Panic,
		"a panic path can leave %s held in %s; release it in a defer so panics unwind the lock")
}
