package lint

import (
	"go/ast"
	"go/types"
)

// ClockDet protects the deterministic-clock harness contract: a package that
// declares an injectable Clock interface (internal/serve) has promised that
// all of its time flows through that interface, so a FakeClock can drive
// window expiry, deadlines, and timers deterministically in tests. Any
// direct call into the time package's clock surface (Now, Sleep, After,
// Tick, timers, Since/Until — everything that reads or waits on the wall
// clock) silently bypasses the injection and reintroduces real time into
// code the tests believe is virtualized.
//
// The one legitimate home for direct wall-clock calls is the Clock
// implementation itself: methods on a type that implements the package's
// Clock interface (RealClock's Now/NewTimer) are the adapter boundary and
// are exempt. Everything else in the package — including function literals —
// is flagged. Packages without a Clock interface are out of scope; they have
// made no determinism promise.
func ClockDet() *Analyzer {
	return &Analyzer{
		Name: "clockdet",
		Doc: "flags direct time.Now/Sleep/After/Tick/NewTimer/NewTicker/Since/" +
			"Until calls in packages declaring an injectable Clock interface " +
			"(outside the Clock implementations themselves)",
		Run: runClockDet,
	}
}

// clockDetFuncs is the time-package clock surface: every function that reads
// the wall clock or schedules against it.
var clockDetFuncs = []string{
	"Now", "Sleep", "After", "AfterFunc", "Tick", "NewTimer", "NewTicker",
	"Since", "Until",
}

func runClockDet(p *Pass) {
	iface := injectableClock(p.Pkg)
	if iface == nil {
		return
	}
	info := p.Pkg.Info
	for _, fd := range funcDecls(p.Pkg) {
		if fd.Body == nil || implementsClock(p.Pkg, fd, iface) {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := isPkgCall(info, call, "time", clockDetFuncs...); ok {
				p.Reportf(call.Pos(),
					"direct time.%s in a package with an injectable Clock; "+
						"thread the Clock instead so FakeClock tests stay deterministic", name)
			}
			return true
		})
	}
}

// injectableClock returns the package's injectable Clock contract: a
// declared interface named Clock with a Now method. Nil when the package
// declares none.
func injectableClock(pkg *Package) *types.Interface {
	obj := pkg.Types.Scope().Lookup("Clock")
	if obj == nil {
		return nil
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	iface, ok := tn.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == "Now" {
			return iface
		}
	}
	return nil
}

// implementsClock reports whether fd is a method on a type implementing the
// Clock interface — the adapter layer allowed to touch the real clock.
func implementsClock(pkg *Package, fd *ast.FuncDecl, iface *types.Interface) bool {
	fn := funcOf(pkg, fd)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if types.Implements(rt, iface) {
		return true
	}
	if _, isPtr := rt.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(rt), iface)
	}
	return false
}
