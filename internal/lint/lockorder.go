package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// LockOrder detects potential cross-goroutine deadlocks from inconsistent
// lock acquisition order. It builds one module-wide lock-ordering graph over
// lock classes (the mutex *types.Var — Server.mu is one node no matter how
// many receivers reach it): an edge L1→L2 is recorded whenever L2 is
// acquired while L1 is must-held per the locks.go held-locks dataflow,
// either directly at an acquisition site or at a call site whose callee
// (transitively, over the static call graph) acquires L2. Goroutine bodies
// from the spawn registry — `go` literals and closures handed to the
// internal/par runtime — are analysis roots of their own, flowed from an
// empty entry fact, so an inversion hidden inside a spawned closure still
// contributes its edge. Every cycle in the graph is reported once as a
// potential deadlock, with the full witness chain of acquisition sites
// (function, file:line) so the report reads as the interleaving that hangs.
//
// On top of the graph the analyzer reports RLock-then-Lock upgrades on the
// same canonical lock key: a goroutine holding the read side that requests
// the write side self-deadlocks, because sync.RWMutex writers wait for all
// readers — including the requester — to drain.
//
// Precision limits, by design: two instances of one lock class locked in
// both orders (s1.mu then s2.mu vs s2.mu then s1.mu) collapse to a single
// node and are not reported — ordering instances needs alias analysis;
// acquisitions inside non-spawn function literals and deferred statements
// are not edge sources (when they run, the spawner's held-set no longer
// applies); and callee acquisition summaries follow resolved static calls
// only. LINTING.md documents each trade-off.
func LockOrder() *Analyzer {
	return &Analyzer{
		Name: "lockorder",
		Doc: "builds the module-wide lock-ordering graph (L1→L2 when L2 is " +
			"acquired under must-held L1, across calls and goroutine spawns) and " +
			"reports every cycle with its witness chain, plus RLock→Lock upgrades",
		Run: runLockOrder,
	}
}

func runLockOrder(p *Pass) {
	p.Prog.lockOrderFor().report(p)
}

// lockOrderFor returns the memoized module-wide lock-order analysis.
func (pr *Program) lockOrderFor() *lockOrderAnalysis {
	if pr.lockorderMemo == nil {
		pr.lockorderMemo = buildLockOrder(pr)
	}
	return pr.lockorderMemo
}

// lockOrderEdge is one ordering edge with its first (deterministic) witness.
type lockOrderEdge struct {
	from, to *types.Var
	pkg      *Package
	pos      token.Pos // the acquisition or call site establishing the edge
	where    string    // display name of the body holding `from`
	via      string    // callee display name for call-site edges, else ""
}

// lockOrderFinding is one precomputed diagnostic, reported in pkg.
type lockOrderFinding struct {
	pkg *Package
	pos token.Pos
	msg string
}

// lockOrderAnalysis is the module-wide lock-ordering graph plus the findings
// derived from it.
type lockOrderAnalysis struct {
	prog     *Program
	display  map[*types.Var]string
	edges    map[[2]*types.Var]*lockOrderEdge
	acquires map[*types.Func]map[*types.Var]bool // transitive may-acquire
	findings []lockOrderFinding
}

func buildLockOrder(prog *Program) *lockOrderAnalysis {
	lo := &lockOrderAnalysis{
		prog:    prog,
		display: lockDisplayNames(prog),
		edges:   map[[2]*types.Var]*lockOrderEdge{},
	}
	la := prog.lockguardFor()
	lo.buildAcquires(la)

	// Declared functions contribute edges under their fixpoint entry facts
	// (suffix convention + call-site propagation, computed by lockguard).
	for _, fi := range la.fns {
		lo.collectEdges(fi.pkg, fi.fd.Body, la.must[fi.fd], funcDisplayName(fi.fd))
	}
	// Spawned literals are goroutine roots: their bodies flow from an empty
	// entry fact (the spawner's held-set does not cross the spawn).
	for _, sp := range prog.Spawns() {
		if sp.Lit == nil {
			continue
		}
		cfg := prog.CFG(sp.Lit.Body)
		problem := &lockProblem{info: sp.Pkg.Info}
		flow := &lockFlow{cfg: cfg, problem: problem, res: ForwardFlow(cfg, problem)}
		lo.collectEdges(sp.Pkg, sp.Lit.Body, flow, sp.Label())
	}

	lo.findCycles()
	return lo
}

// buildAcquires computes, per declared function, the set of lock classes it
// may acquire directly or through its resolved callees — the summary that
// lets a call site under a held lock contribute cross-function edges.
// Acquisitions inside function literals and deferred statements are excluded
// (they need not run within the call), as are callee edges from literals.
func (lo *lockOrderAnalysis) buildAcquires(la *lockAnalysis) {
	lo.acquires = map[*types.Func]map[*types.Var]bool{}
	for _, fi := range la.fns {
		direct := map[*types.Var]bool{}
		ast.Inspect(fi.fd.Body, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncLit, *ast.DeferStmt:
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if key, op, ok := mutexOp(fi.pkg.Info, call); ok && (op == "Lock" || op == "RLock") {
					direct[key.mutex] = true
				}
			}
			return true
		})
		lo.acquires[fi.fn] = direct
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range la.fns {
			set := lo.acquires[fi.fn]
			for _, site := range lo.prog.Graph.ByCaller[fi.fn] {
				if site.InLit {
					continue
				}
				for m := range lo.acquires[site.Callee] {
					if !set[m] {
						set[m] = true
						changed = true
					}
				}
			}
		}
	}
}

// collectEdges walks one body under its must-held flow and records ordering
// edges at acquisition sites and at call sites whose callee may acquire.
func (lo *lockOrderAnalysis) collectEdges(pkg *Package, body *ast.BlockStmt, flow *lockFlow, where string) {
	info := pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, op, ok := mutexOp(info, call); ok {
			if op != "Lock" && op != "RLock" {
				return true
			}
			fact := flow.at(call)
			if fact == nil {
				return true // statically unreachable
			}
			if op == "Lock" && fact[key] == lockR {
				lo.findings = append(lo.findings, lockOrderFinding{
					pkg: pkg, pos: call.Pos(),
					msg: fmt.Sprintf("%s is read-held when this Lock executes: RLock→Lock upgrade "+
						"self-deadlocks (RWMutex writers wait for all readers, including this one); "+
						"release the read lock first or take the write lock from the start", key),
				})
			}
			lo.rememberDisplay(info, call, key)
			for _, held := range sortedHeldKeys(fact) {
				if held.mutex != key.mutex {
					lo.addEdge(held.mutex, key.mutex, &lockOrderEdge{
						from: held.mutex, to: key.mutex, pkg: pkg, pos: call.Pos(), where: where,
					})
				}
			}
			return true
		}
		callee, _ := calleeOf(info, call)
		if callee == nil || len(lo.acquires[callee]) == 0 {
			return true
		}
		fact := flow.at(call)
		if len(fact) == 0 {
			return true
		}
		for _, m2 := range sortedVars(lo.acquires[callee], lo.display) {
			for _, held := range sortedHeldKeys(fact) {
				if held.mutex != m2 {
					lo.addEdge(held.mutex, m2, &lockOrderEdge{
						from: held.mutex, to: m2, pkg: pkg, pos: call.Pos(), where: where,
						via: callee.Name(),
					})
				}
			}
		}
		return true
	})
}

// addEdge records e unless the edge already has a witness (first wins; the
// collection order is deterministic, so so is the witness).
func (lo *lockOrderAnalysis) addEdge(from, to *types.Var, e *lockOrderEdge) {
	k := [2]*types.Var{from, to}
	if lo.edges[k] == nil {
		lo.edges[k] = e
	}
}

// findCycles runs SCC detection over the ordering graph and emits one
// finding per cyclic component, anchored at its lexicographically first
// witness, carrying the full chain.
func (lo *lockOrderAnalysis) findCycles() {
	nodes := map[*types.Var]bool{}
	succs := map[*types.Var][]*types.Var{}
	for k := range lo.edges {
		nodes[k[0]], nodes[k[1]] = true, true
		succs[k[0]] = append(succs[k[0]], k[1])
	}
	order := sortedVars(nodes, lo.display)
	for _, n := range order {
		s := succs[n]
		sort.Slice(s, func(i, j int) bool { return lo.name(s[i]) < lo.name(s[j]) })
	}

	for _, scc := range tarjanSCC(order, succs) {
		if len(scc) < 2 {
			continue
		}
		sort.Slice(scc, func(i, j int) bool { return lo.name(scc[i]) < lo.name(scc[j]) })
		cycle := lo.shortestCycle(scc, succs)
		if cycle == nil {
			continue
		}
		var names []string
		for _, v := range cycle {
			names = append(names, lo.name(v))
		}
		names = append(names, lo.name(cycle[0]))
		var chain []string
		for i, v := range cycle {
			next := cycle[(i+1)%len(cycle)]
			e := lo.edges[[2]*types.Var{v, next}]
			site := fmt.Sprintf("%s holds %s while acquiring %s", e.where, lo.name(v), lo.name(next))
			if e.via != "" {
				site += " via " + e.via
			}
			chain = append(chain, site+" at "+lo.shortPos(e.pkg, e.pos))
		}
		anchor := lo.edges[[2]*types.Var{cycle[0], cycle[1%len(cycle)]}]
		lo.findings = append(lo.findings, lockOrderFinding{
			pkg: anchor.pkg, pos: anchor.pos,
			msg: fmt.Sprintf("lock-order cycle %s: concurrent goroutines taking these locks in "+
				"opposite orders can deadlock; %s — pick one global order",
				strings.Join(names, " → "), strings.Join(chain, "; ")),
		})
	}
	sort.SliceStable(lo.findings, func(i, j int) bool {
		if lo.findings[i].pkg != lo.findings[j].pkg {
			return lo.findings[i].pkg.ImportPath < lo.findings[j].pkg.ImportPath
		}
		return lo.findings[i].pos < lo.findings[j].pos
	})
}

// shortestCycle finds a minimal cycle through the first node of the SCC,
// following edges restricted to the component.
func (lo *lockOrderAnalysis) shortestCycle(scc []*types.Var, succs map[*types.Var][]*types.Var) []*types.Var {
	in := map[*types.Var]bool{}
	for _, v := range scc {
		in[v] = true
	}
	start := scc[0]
	// BFS from start back to start.
	type path struct {
		v    *types.Var
		prev *path
	}
	queue := []*path{{v: start}}
	seen := map[*types.Var]bool{}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, s := range succs[p.v] {
			// Self-edges are never recorded, so reaching start again always
			// closes a cycle of length ≥ 2.
			if s == start {
				// Reconstruct start → ... → p.v.
				var rev []*types.Var
				for q := p; q != nil; q = q.prev {
					rev = append(rev, q.v)
				}
				out := make([]*types.Var, 0, len(rev))
				for i := len(rev) - 1; i >= 0; i-- {
					out = append(out, rev[i])
				}
				return out
			}
			if !in[s] || seen[s] {
				continue
			}
			seen[s] = true
			queue = append(queue, &path{v: s, prev: p})
		}
	}
	return nil
}

// tarjanSCC returns the strongly connected components of the graph in a
// deterministic order (nodes are visited in the given order).
func tarjanSCC(order []*types.Var, succs map[*types.Var][]*types.Var) [][]*types.Var {
	index := map[*types.Var]int{}
	low := map[*types.Var]int{}
	onStack := map[*types.Var]bool{}
	var stack []*types.Var
	var sccs [][]*types.Var
	next := 0

	var strongconnect func(v *types.Var)
	strongconnect = func(v *types.Var) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succs[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []*types.Var
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range order {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return sccs
}

// name renders a lock class for messages ("Server.mu", "par.poolMu", or the
// bare field name when the owner is unknown).
func (lo *lockOrderAnalysis) name(v *types.Var) string {
	if d := lo.display[v]; d != "" {
		return d
	}
	return v.Name()
}

// shortPos renders pos as "file.go:line" — base name only, so messages stay
// machine-independent.
func (lo *lockOrderAnalysis) shortPos(pkg *Package, pos token.Pos) string {
	p := pkg.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// rememberDisplay back-fills a display name for locks reached through
// receivers whose type is unnamed or local (lockDisplayNames covers
// package-scope types and variables).
func (lo *lockOrderAnalysis) rememberDisplay(info *types.Info, call *ast.CallExpr, key lockKey) {
	if lo.display[key.mutex] != "" {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if x, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
		if tv, ok := info.Types[x.X]; ok {
			if owner := namedTypeName(tv.Type); owner != "" {
				lo.display[key.mutex] = owner + "." + key.mutex.Name()
			}
		}
	}
}

// lockDisplayNames maps every mutex declared at package scope — struct
// fields and package-level variables — to a stable "Owner.name" display.
func lockDisplayNames(prog *Program) map[*types.Var]string {
	out := map[*types.Var]string{}
	for _, pkg := range prog.All {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			switch obj := scope.Lookup(name).(type) {
			case *types.TypeName:
				st, ok := obj.Type().Underlying().(*types.Struct)
				if !ok {
					continue
				}
				for i := 0; i < st.NumFields(); i++ {
					if f := st.Field(i); isMutexType(f.Type()) {
						out[f] = obj.Name() + "." + f.Name()
					}
				}
			case *types.Var:
				if isMutexType(obj.Type()) {
					out[obj] = pkg.Name + "." + obj.Name()
				}
			}
		}
	}
	return out
}

// sortedHeldKeys returns the keys of a lock fact ordered by their rendered
// path, so witness selection never depends on map iteration.
func sortedHeldKeys(fact lockFact) []lockKey {
	keys := make([]lockKey, 0, len(fact))
	for k := range fact {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	return keys
}

// sortedVars orders a var set by display name, then declaration position.
func sortedVars(set map[*types.Var]bool, display map[*types.Var]string) []*types.Var {
	out := make([]*types.Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := display[out[i]], display[out[j]]
		if di == "" {
			di = out[i].Name()
		}
		if dj == "" {
			dj = out[j].Name()
		}
		if di != dj {
			return di < dj
		}
		return out[i].Pos() < out[j].Pos()
	})
	return out
}

// report emits the findings that land in pass's package.
func (lo *lockOrderAnalysis) report(p *Pass) {
	for _, f := range lo.findings {
		if f.pkg == p.Pkg {
			p.Reportf(f.pos, "%s", f.msg)
		}
	}
}
