package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// loader parses and type-checks packages on demand. Module-internal import
// paths are resolved to directories and loaded from source (so analyzers
// get ASTs with full type information); everything else is delegated to the
// stdlib source importer, which compiles type information from $GOROOT —
// keeping the whole driver free of third-party dependencies.
type loader struct {
	fset       *token.FileSet
	moduleDir  string
	modulePath string
	std        types.ImporterFrom

	pkgs map[string]*Package // keyed by absolute directory; nil = no Go files
}

func newLoader() (*loader, error) {
	dir, path, err := findModule()
	if err != nil {
		return nil, err
	}
	l := &loader{
		fset:       token.NewFileSet(),
		moduleDir:  dir,
		modulePath: path,
		pkgs:       map[string]*Package{},
	}
	std, ok := importer.ForCompiler(l.fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	l.std = std
	return l, nil
}

// findModule walks up from the working directory to the enclosing go.mod
// and returns its directory and module path.
func findModule() (dir, path string, err error) {
	dir, err = os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above working directory")
		}
		dir = parent
	}
}

// expand resolves package patterns ("./...", "dir", "dir/...") into the
// sorted list of directories containing at least one non-test Go file.
// Hidden directories, testdata and vendor trees are skipped by recursive
// patterns but can still be named directly (how the fixture tests load
// their packages).
func (l *loader) expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if st, err := os.Stat(abs); err != nil || !st.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q: not a directory", pat)
		}
		if !recursive {
			add(abs)
			continue
		}
		err = filepath.WalkDir(abs, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != abs && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// relPath rewrites an absolute file path to a slash-separated path relative
// to the module root, leaving paths outside the module untouched. Findings
// carry module-relative paths so committed reports and baselines are
// identical across machines.
func (l *loader) relPath(path string) string {
	rel, err := filepath.Rel(l.moduleDir, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return filepath.ToSlash(rel)
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// load parses and type-checks the package in dir (memoized). It returns
// (nil, nil) when dir holds no non-test Go files.
func (l *loader) load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[abs]; ok {
		return pkg, nil
	}
	// Mark in-progress to fail fast on import cycles instead of recursing.
	l.pkgs[abs] = nil

	ents, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	importPath := abs
	if rel, err := filepath.Rel(l.moduleDir, abs); err == nil && !strings.HasPrefix(rel, "..") {
		importPath = l.modulePath
		if rel != "." {
			importPath += "/" + filepath.ToSlash(rel)
		}
	}

	var typeErrs []string
	conf := types.Config{
		Importer:    (*loaderImporter)(l),
		FakeImportC: true,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tpkg, _ := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s failed:\n  %s",
			importPath, strings.Join(typeErrs, "\n  "))
	}

	pkg := &Package{
		Dir:        abs,
		ImportPath: importPath,
		Name:       files[0].Name.Name,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[abs] = pkg
	return pkg, nil
}

// loaderImporter adapts loader to types.Importer for module-internal paths,
// falling back to the stdlib source importer for everything else.
type loaderImporter loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, (*loader)(li).moduleDir, 0)
}

func (li *loaderImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := (*loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
		dir := filepath.Join(l.moduleDir, filepath.FromSlash(rel))
		pkg, err := l.load(dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: import %q: no Go files in %s (or import cycle)", path, dir)
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, l.moduleDir, 0)
}
