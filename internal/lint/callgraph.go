package lint

import (
	"go/ast"
	"go/types"
)

// CallSite is one static call in the module: Caller's body (possibly inside
// a nested function literal) invokes Callee.
type CallSite struct {
	Caller *types.Func
	Callee *types.Func
	Call   *ast.CallExpr
	Pkg    *Package
	// InLit marks calls made from a function literal nested in Caller —
	// flow-sensitive arguments about the caller's body do not extend to
	// them (the literal may run later, concurrently, or not at all).
	InLit bool
}

// CallGraph is the module-wide static call graph over every loaded package.
// Only direct calls are resolved (named functions, methods called through a
// concrete receiver, generic instantiations); calls through interface values
// or function-typed variables have no callee edge. That makes the "callers
// of f" relation an over-approximation ONLY when combined with
// FuncRefs — a function whose identifier escapes as a value (method value,
// func assigned to a variable) can be invoked from sites the graph cannot
// see, and FuncRefs counts exactly those escapes.
type CallGraph struct {
	// ByCallee and ByCaller index the same CallSite records both ways, in
	// deterministic (package, file, position) order.
	ByCallee map[*types.Func][]*CallSite
	ByCaller map[*types.Func][]*CallSite
	// DeclOf maps a function object to its declaration; PkgOf to the package
	// holding that declaration.
	DeclOf map[*types.Func]*ast.FuncDecl
	PkgOf  map[*types.Func]*Package
	// FuncRefs counts uses of a function identifier outside call position
	// (method values, conversions, assignments) — escape hatches that make
	// the caller set incomplete for that function.
	FuncRefs map[*types.Func]int
}

// buildCallGraph walks every function declaration of pkgs (which must be in
// deterministic order) and records resolved call edges.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		ByCallee: map[*types.Func][]*CallSite{},
		ByCaller: map[*types.Func][]*CallSite{},
		DeclOf:   map[*types.Func]*ast.FuncDecl{},
		PkgOf:    map[*types.Func]*Package{},
		FuncRefs: map[*types.Func]int{},
	}
	for _, pkg := range pkgs {
		for _, fd := range funcDecls(pkg) {
			fobj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fobj == nil {
				continue
			}
			g.DeclOf[fobj] = fd
			g.PkgOf[fobj] = pkg
		}
	}
	for _, pkg := range pkgs {
		for _, fd := range funcDecls(pkg) {
			fobj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fobj == nil || fd.Body == nil {
				continue
			}
			g.collect(pkg, fobj, fd.Body, false)
		}
	}
	return g
}

// collect records call sites and value references within one body.
func (g *CallGraph) collect(pkg *Package, caller *types.Func, body ast.Node, inLit bool) {
	// calleeIdents tracks identifiers consumed as the function position of a
	// call, so the reference counter below does not double-count them.
	calleeIdents := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if !inLit {
				// Descend once with the literal flag set; returning false
				// here prevents the outer walk from re-visiting the body.
				g.collect(pkg, caller, x.Body, true)
				return false
			}
		case *ast.CallExpr:
			callee, id := calleeOf(pkg.Info, x)
			if id != nil {
				calleeIdents[id] = true
			}
			if callee != nil {
				site := &CallSite{Caller: caller, Callee: callee, Call: x, Pkg: pkg, InLit: inLit}
				g.ByCallee[callee] = append(g.ByCallee[callee], site)
				g.ByCaller[caller] = append(g.ByCaller[caller], site)
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && !inLit {
			return false // literal bodies were counted by their own pass above
		}
		if id, ok := n.(*ast.Ident); ok && !calleeIdents[id] {
			if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
				g.FuncRefs[fn]++
			}
		}
		return true
	})
}

// calleeOf resolves the static callee of a call, unwrapping parens and
// generic instantiation syntax. It also returns the identifier in callee
// position (for reference bookkeeping), which may be non-nil even when the
// callee does not resolve to a *types.Func.
func calleeOf(info *types.Info, call *ast.CallExpr) (*types.Func, *ast.Ident) {
	fun := ast.Unparen(call.Fun)
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(idx.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(idx.X)
	}
	switch f := fun.(type) {
	case *ast.Ident:
		fn, _ := objectOf(info, f).(*types.Func)
		return fn, f
	case *ast.SelectorExpr:
		fn, _ := objectOf(info, f.Sel).(*types.Func)
		return fn, f.Sel
	}
	return nil, nil
}

// receiverExpr returns the receiver expression of a method call (`s` in
// s.Add(v)), or nil for plain function calls and package-qualified calls.
func receiverExpr(info *types.Info, call *ast.CallExpr) ast.Expr {
	fun := ast.Unparen(call.Fun)
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(idx.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(idx.X)
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if _, isSel := info.Selections[sel]; !isSel {
		return nil // package-qualified function, not a method call
	}
	return sel.X
}
