package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// ChanLife is the channel-lifecycle analyzer for the packages that move data
// between goroutines (serve, core, par, and the mains). Channel identity is
// the declared *types.Var plus the canonical receiver path (the same scheme
// locks.go uses for mutexes), make sites — including composite-literal field
// initializers — record buffering, and close/send effects propagate through
// the static call graph as per-function summaries (a helper that closes its
// parameter closes the argument at every call site). Over that substrate a
// forward may-analysis tracks closed and possibly-nil channels per function
// body, and goroutine bodies from the spawn registry are analyzed as roots
// of their own.
//
// Findings:
//
//   - double close — a close whose operand may already be closed on some
//     path (directly or via a callee's close summary): closing twice panics;
//   - send after close — a send whose channel may be closed: panics;
//   - close of a possibly-nil channel — a local declared without make and
//     not assigned on every path to the close: panics;
//   - close of a receive-only channel (defense in depth; the type checker
//     rejects the direct form);
//   - non-owner close — a goroutine that neither creates, nor sends on, nor
//     receives ownership of a channel (as a parameter — cancelpath's
//     ownership-transfer rule) still closes it while senders exist
//     elsewhere: the receiver side closing out from under senders makes
//     every racing send a panic. Channels nobody sends on are exempt — a
//     close-only channel is a broadcast signal (par's job.done, serve's
//     Ticket.done) and closing it is exactly its protocol;
//   - lock-channel hybrid deadlock — an unconditional send on a channel
//     whose every make site is unbuffered, executed while a lock from the
//     lockorder graph is must-held: if the receiver needs that lock to
//     drain, neither side can proceed. Sends inside select communication
//     clauses are exempt (they do not commit blind), as are channels with
//     any buffered or unknown make site.
//
// Precision limits, by design: facts are keyed per canonical path, so
// instances reached through computed paths (indexing, calls) are not
// tracked; rebinding a path's base variable kills its facts (a fresh
// instance is a fresh lifecycle); and close summaries do not cross function
// literals. LINTING.md documents each trade-off.
func ChanLife() *Analyzer {
	return &Analyzer{
		Name: "chanlife",
		Doc: "channel lifecycle in serve/core/par/mains: double close, send " +
			"after close, close of nil/receive-only channels, non-owner closes " +
			"in goroutines, and unbuffered sends while holding a lock",
		Run: runChanLife,
	}
}

// chanLifePkgs scopes the per-body checks, mirroring cancelpath: the
// packages whose channels cross goroutines. Summaries still build module-
// wide so an out-of-scope helper's effects are visible.
var chanLifePkgs = map[string]bool{"serve": true, "core": true, "par": true, "main": true}

func runChanLife(p *Pass) {
	p.Prog.chanLifeFor().report(p)
}

// chanLifeFor returns the memoized module-wide channel-lifecycle analysis.
func (pr *Program) chanLifeFor() *chanLifeAnalysis {
	if pr.chanlifeMemo == nil {
		pr.chanlifeMemo = buildChanLife(pr)
	}
	return pr.chanlifeMemo
}

// chanID identifies one channel as seen from one function: the channel
// variable plus the canonical path of the enclosing struct value ("s" for
// s.batches; empty for locals, parameters, and package-level channels).
// root is the object the path hangs off, for kill-on-rebind.
type chanID struct {
	v    *types.Var
	base string
	root types.Object
}

func (id chanID) String() string {
	if id.base == "" {
		return id.v.Name()
	}
	return id.base + "." + id.v.Name()
}

// chanSummary is one function's channel effects visible to callers: the
// parameter indices and field classes it may send on or close, directly or
// transitively.
type chanSummary struct {
	sendParams  map[int]bool
	sendFields  map[*types.Var]bool
	closeParams map[int]bool
	closeFields map[*types.Var]bool
}

func newChanSummary() *chanSummary {
	return &chanSummary{
		sendParams:  map[int]bool{},
		sendFields:  map[*types.Var]bool{},
		closeParams: map[int]bool{},
		closeFields: map[*types.Var]bool{},
	}
}

// chanFinding is one precomputed diagnostic, reported in pkg.
type chanFinding struct {
	pkg *Package
	pos token.Pos
	msg string
}

// chanLifeAnalysis is the module-wide channel-lifecycle state.
type chanLifeAnalysis struct {
	prog *Program
	// hasMake marks channel classes with at least one visible make site;
	// unbuffered holds only when every such site has zero capacity.
	hasMake    map[*types.Var]bool
	unbuffered map[*types.Var]bool
	// senders marks channel classes some body in the module sends on.
	senders   map[*types.Var]bool
	summaries map[*types.Func]*chanSummary
	findings  []chanFinding
}

func buildChanLife(prog *Program) *chanLifeAnalysis {
	ca := &chanLifeAnalysis{
		prog:       prog,
		hasMake:    map[*types.Var]bool{},
		unbuffered: map[*types.Var]bool{},
		senders:    map[*types.Var]bool{},
		summaries:  map[*types.Func]*chanSummary{},
	}
	ca.collectMakesAndSenders()
	ca.buildSummaries()

	la := prog.lockguardFor()
	for _, fi := range la.fns {
		if !chanLifePkgs[fi.pkg.Name] {
			continue
		}
		ca.checkBody(fi.pkg, fi.fd.Body, la.must[fi.fd])
	}
	for _, sp := range prog.Spawns() {
		if sp.Lit == nil || !chanLifePkgs[sp.Pkg.Name] {
			continue
		}
		cfg := prog.CFG(sp.Lit.Body)
		problem := &lockProblem{info: sp.Pkg.Info}
		flow := &lockFlow{cfg: cfg, problem: problem, res: ForwardFlow(cfg, problem)}
		ca.checkBody(sp.Pkg, sp.Lit.Body, flow)
	}
	ca.checkOwnership()

	sort.SliceStable(ca.findings, func(i, j int) bool {
		if ca.findings[i].pkg != ca.findings[j].pkg {
			return ca.findings[i].pkg.ImportPath < ca.findings[j].pkg.ImportPath
		}
		return ca.findings[i].pos < ca.findings[j].pos
	})
	return ca
}

func (ca *chanLifeAnalysis) reportf(pkg *Package, pos token.Pos, format string, args ...interface{}) {
	ca.findings = append(ca.findings, chanFinding{pkg: pkg, pos: pos, msg: fmt.Sprintf(format, args...)})
}

// report emits the findings that land in pass's package.
func (ca *chanLifeAnalysis) report(p *Pass) {
	for _, f := range ca.findings {
		if f.pkg == p.Pkg {
			p.Reportf(f.pos, "%s", f.msg)
		}
	}
}

// isChanType reports whether t's underlying type is a channel.
func isChanType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// chanIDOf resolves an expression to a channel identity: a plain identifier,
// a canonical-path field selection, or a package-qualified variable.
func chanIDOf(info *types.Info, e ast.Expr) (chanID, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := objectOf(info, x).(*types.Var); ok && isChanType(v.Type()) {
			return chanID{v: v, root: v}, true
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[x]; ok {
			v, ok := s.Obj().(*types.Var)
			if !ok || !v.IsField() || !isChanType(v.Type()) {
				return chanID{}, false
			}
			base := canonPath(x.X)
			if base == "" {
				return chanID{}, false
			}
			return chanID{v: v, base: base, root: baseIdentObj(info, x.X)}, true
		}
		if v, ok := objectOf(info, x.Sel).(*types.Var); ok && isChanType(v.Type()) {
			return chanID{v: v, root: v}, true
		}
	}
	return chanID{}, false
}

// isMakeChan recognizes make(chan T[, cap]), reporting whether the site is
// provably unbuffered (no capacity, or a constant zero capacity).
func isMakeChan(info *types.Info, e ast.Expr) (unbuffered, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return false, false
	}
	id, isIdent := ast.Unparen(call.Fun).(*ast.Ident)
	if !isIdent {
		return false, false
	}
	if b, isBuiltin := objectOf(info, id).(*types.Builtin); !isBuiltin || b.Name() != "make" {
		return false, false
	}
	if len(call.Args) == 0 {
		return false, false
	}
	tv, hasType := info.Types[call.Args[0]]
	if !hasType || !isChanType(tv.Type) {
		return false, false
	}
	if len(call.Args) < 2 {
		return true, true
	}
	if cv := info.Types[call.Args[1]].Value; cv != nil {
		if n, exact := constant.Int64Val(cv); exact && n == 0 {
			return true, true
		}
	}
	return false, true
}

// isCloseCall recognizes the builtin close(ch), returning the operand.
func isCloseCall(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil, false
	}
	if b, ok := objectOf(info, id).(*types.Builtin); !ok || b.Name() != "close" {
		return nil, false
	}
	if len(call.Args) != 1 {
		return nil, false
	}
	return call.Args[0], true
}

// collectMakesAndSenders records, module-wide, every channel class's make
// sites (with buffering) and whether anything sends on it. Both walks cover
// function literals: a make or send inside a closure is as real as one
// outside it.
func (ca *chanLifeAnalysis) collectMakesAndSenders() {
	for _, pkg := range ca.prog.All {
		info := pkg.Info
		recordMake := func(target *types.Var, site ast.Expr) {
			unbuf, ok := isMakeChan(info, site)
			if !ok {
				return
			}
			if !ca.hasMake[target] {
				ca.hasMake[target] = true
				ca.unbuffered[target] = unbuf
			} else if !unbuf {
				ca.unbuffered[target] = false
			}
		}
		for _, fd := range funcDecls(pkg) {
			if fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.AssignStmt:
					if len(x.Lhs) != len(x.Rhs) {
						return true
					}
					for i, lhs := range x.Lhs {
						if id, ok := chanIDOf(info, lhs); ok {
							recordMake(id.v, x.Rhs[i])
						}
					}
				case *ast.ValueSpec:
					if len(x.Names) != len(x.Values) {
						return true
					}
					for i, name := range x.Names {
						if v, ok := info.Defs[name].(*types.Var); ok && isChanType(v.Type()) {
							recordMake(v, x.Values[i])
						}
					}
				case *ast.CompositeLit:
					for _, elt := range x.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						key, ok := kv.Key.(*ast.Ident)
						if !ok {
							continue
						}
						if v, ok := objectOf(info, key).(*types.Var); ok && v.IsField() && isChanType(v.Type()) {
							recordMake(v, kv.Value)
						}
					}
				case *ast.SendStmt:
					if id, ok := chanIDOf(info, x.Chan); ok {
						ca.senders[id.v] = true
					}
				}
				return true
			})
		}
	}
	// Package-level channel declarations count as make sites too.
	for _, pkg := range ca.prog.All {
		info := pkg.Info
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Names) != len(vs.Values) {
						continue
					}
					for i, name := range vs.Names {
						if v, ok := info.Defs[name].(*types.Var); ok && isChanType(v.Type()) {
							if unbuf, isMake := isMakeChan(info, vs.Values[i]); isMake {
								if !ca.hasMake[v] {
									ca.hasMake[v], ca.unbuffered[v] = true, unbuf
								} else if !unbuf {
									ca.unbuffered[v] = false
								}
							}
						}
					}
				}
			}
		}
	}
}

// buildSummaries computes the send/close effect summaries per declared
// function: direct effects outside literals and defers, then a fixpoint
// folding callee effects through call-site arguments (a callee that closes
// its i'th parameter closes whatever the caller passed there).
func (ca *chanLifeAnalysis) buildSummaries() {
	type fnInfo struct {
		pkg *Package
		fd  *ast.FuncDecl
		fn  *types.Func
	}
	var fns []fnInfo
	for _, pkg := range ca.prog.All {
		for _, fd := range funcDecls(pkg) {
			if fd.Body == nil {
				continue
			}
			fn := funcOf(pkg, fd)
			if fn == nil {
				continue
			}
			fns = append(fns, fnInfo{pkg, fd, fn})
			sum := newChanSummary()
			info := pkg.Info
			classify := func(e ast.Expr, params map[int]bool, fields map[*types.Var]bool) {
				id, ok := chanIDOf(info, e)
				if !ok {
					return
				}
				if id.v.IsField() {
					fields[id.v] = true
				} else if idx := paramIndex(fn, id.v); idx >= 0 {
					params[idx] = true
				}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.FuncLit, *ast.DeferStmt:
					return false
				case *ast.SendStmt:
					classify(x.Chan, sum.sendParams, sum.sendFields)
				case *ast.CallExpr:
					if arg, ok := isCloseCall(info, x); ok {
						classify(arg, sum.closeParams, sum.closeFields)
					}
				}
				return true
			})
			ca.summaries[fn] = sum
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			sum := ca.summaries[fi.fn]
			for _, site := range ca.prog.Graph.ByCaller[fi.fn] {
				if site.InLit {
					continue
				}
				callee := ca.summaries[site.Callee]
				if callee == nil {
					continue
				}
				apply := func(fromParams map[int]bool, fromFields map[*types.Var]bool,
					toParams map[int]bool, toFields map[*types.Var]bool) {
					for f := range fromFields {
						if !toFields[f] {
							toFields[f] = true
							changed = true
						}
					}
					for idx := range fromParams {
						if idx >= len(site.Call.Args) {
							continue
						}
						id, ok := chanIDOf(fi.pkg.Info, site.Call.Args[idx])
						if !ok {
							continue
						}
						if id.v.IsField() {
							if !toFields[id.v] {
								toFields[id.v] = true
								changed = true
							}
						} else if j := paramIndex(fi.fn, id.v); j >= 0 && !toParams[j] {
							toParams[j] = true
							changed = true
						}
					}
				}
				apply(callee.sendParams, callee.sendFields, sum.sendParams, sum.sendFields)
				apply(callee.closeParams, callee.closeFields, sum.closeParams, sum.closeFields)
			}
		}
	}
	// A summarized send is a send: fold field sends into the class-level
	// sender set (parameter sends were already recorded at the send itself).
	for _, sum := range ca.summaries {
		for f := range sum.sendFields {
			ca.senders[f] = true
		}
	}
}

// paramIndex returns v's index among fn's parameters (receiver excluded), or
// -1.
func paramIndex(fn *types.Func, v *types.Var) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == v {
			return i
		}
	}
	return -1
}

// chanFact is the per-point lifecycle state: channels possibly closed (by
// precise id, or by class when a callee's field-close summary applies) and
// locals possibly nil. Treated as immutable; transfer clones before writing.
type chanFact struct {
	closed      map[chanID]bool
	classClosed map[*types.Var]bool
	maybeNil    map[*types.Var]bool
}

func newChanFact() *chanFact {
	return &chanFact{closed: map[chanID]bool{}, classClosed: map[*types.Var]bool{}, maybeNil: map[*types.Var]bool{}}
}

func (f *chanFact) clone() *chanFact {
	out := newChanFact()
	for k, v := range f.closed {
		out.closed[k] = v
	}
	for k, v := range f.classClosed {
		out.classClosed[k] = v
	}
	for k, v := range f.maybeNil {
		out.maybeNil[k] = v
	}
	return out
}

// chanProblem is the forward may-analysis over one body.
type chanProblem struct {
	info *types.Info
	an   *chanLifeAnalysis
}

func (cp *chanProblem) Entry() any { return newChanFact() }

func (cp *chanProblem) Merge(a, b any) any {
	fa, fb := a.(*chanFact), b.(*chanFact)
	out := fa.clone()
	for k := range fb.closed {
		out.closed[k] = true
	}
	for k := range fb.classClosed {
		out.classClosed[k] = true
	}
	for k := range fb.maybeNil {
		out.maybeNil[k] = true
	}
	return out
}

func (cp *chanProblem) Equal(a, b any) bool {
	fa, fb := a.(*chanFact), b.(*chanFact)
	if len(fa.closed) != len(fb.closed) || len(fa.classClosed) != len(fb.classClosed) ||
		len(fa.maybeNil) != len(fb.maybeNil) {
		return false
	}
	for k := range fa.closed {
		if !fb.closed[k] {
			return false
		}
	}
	for k := range fa.classClosed {
		if !fb.classClosed[k] {
			return false
		}
	}
	for k := range fa.maybeNil {
		if !fb.maybeNil[k] {
			return false
		}
	}
	return true
}

func (cp *chanProblem) Transfer(n ast.Node, fact any) any {
	switch x := n.(type) {
	case *ast.DeferStmt:
		return fact // postlude: executes at termination, not here
	case *ast.RangeStmt:
		// Only the range expression evaluates at the head node, but a
		// rebinding key/value means a fresh instance each iteration: kill
		// facts rooted at the loop variables.
		out := fact.(*chanFact)
		for _, e := range []ast.Expr{x.Key, x.Value} {
			if id, ok := e.(*ast.Ident); ok {
				if v, ok := objectOf(cp.info, id).(*types.Var); ok {
					out = killRoot(out, v)
				}
			}
		}
		n, fact = x.X, out
	}
	in := fact.(*chanFact)
	out := in
	cloned := false
	mut := func() *chanFact {
		if !cloned {
			out = in.clone()
			cloned = true
		}
		return out
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.DeclStmt:
			gd, ok := x.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) > 0 {
					continue
				}
				for _, name := range vs.Names {
					if v, ok := cp.info.Defs[name].(*types.Var); ok && isChanType(v.Type()) {
						mut().maybeNil[v] = true
					}
				}
			}
			return true
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				id, ok := chanIDOf(cp.info, lhs)
				if !ok {
					if lid, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent {
						if v, isVar := objectOf(cp.info, lid).(*types.Var); isVar {
							out = killRoot(mut(), v)
							cloned = true
						}
					}
					continue
				}
				o := mut()
				delete(o.closed, id)
				if id.base == "" {
					// A rebound local is a fresh lifecycle.
					out = killRoot(o, id.v)
					cloned = true
					if len(x.Lhs) == len(x.Rhs) && isNilExpr(cp.info, x.Rhs[i]) {
						mut().maybeNil[id.v] = true
					} else {
						delete(mut().maybeNil, id.v)
					}
				}
			}
			return true
		case *ast.CallExpr:
			if arg, ok := isCloseCall(cp.info, x); ok {
				if id, ok := chanIDOf(cp.info, arg); ok {
					mut().closed[id] = true
				}
				return true
			}
			callee, _ := calleeOf(cp.info, x)
			if callee == nil {
				return true
			}
			sum := cp.an.summaries[callee]
			if sum == nil {
				return true
			}
			for idx := range sum.closeParams {
				if idx >= len(x.Args) {
					continue
				}
				if id, ok := chanIDOf(cp.info, x.Args[idx]); ok {
					mut().closed[id] = true
				}
			}
			for f := range sum.closeFields {
				mut().classClosed[f] = true
			}
			return true
		}
		return true
	})
	return out
}

// killRoot drops every fact rooted at v: rebinding the base of a path means
// the facts describe the previous instance.
func killRoot(f *chanFact, v *types.Var) *chanFact {
	out := f.clone()
	for k := range out.closed {
		if k.root == types.Object(v) || k.v == v {
			delete(out.closed, k)
		}
	}
	delete(out.maybeNil, v)
	return out
}

// isNilExpr reports whether e is the predeclared nil.
func isNilExpr(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := objectOf(info, id).(*types.Nil)
	return isNil
}

// mayClosed reports whether id may be closed under fact, precisely or at
// class level.
func mayClosed(fact *chanFact, id chanID) bool {
	return fact.closed[id] || fact.classClosed[id.v]
}

// checkBody runs the lifecycle flow over one body (a declared function or a
// spawned literal, with the matching must-held lock flow) and reports the
// flow findings at close and send sites.
func (ca *chanLifeAnalysis) checkBody(pkg *Package, body *ast.BlockStmt, locks *lockFlow) {
	info := pkg.Info
	cfg := ca.prog.CFG(body)
	problem := &chanProblem{info: info, an: ca}
	res := ForwardFlow(cfg, problem)
	at := func(n ast.Node) *chanFact {
		fact, _ := FactAt(cfg, problem, res, n).(*chanFact)
		return fact
	}

	// Sends inside select communication clauses do not commit blind: the
	// hybrid-deadlock check exempts them.
	selectSends := map[*ast.SendStmt]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok {
			for _, clause := range sel.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok {
					if s, ok := cc.Comm.(*ast.SendStmt); ok {
						selectSends[s] = true
					}
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			arg, ok := isCloseCall(info, x)
			if !ok {
				return true
			}
			if tv, ok := info.Types[arg]; ok {
				if ch, isChan := tv.Type.Underlying().(*types.Chan); isChan && ch.Dir() == types.RecvOnly {
					ca.reportf(pkg, x.Pos(), "close of receive-only channel: only the sender may close")
					return true
				}
			}
			id, ok := chanIDOf(info, arg)
			if !ok {
				return true
			}
			fact := at(x)
			if fact == nil {
				return true // statically unreachable
			}
			switch {
			case mayClosed(fact, id):
				ca.reportf(pkg, x.Pos(),
					"double close of %s: a path reaches this close with the channel already closed, which panics; "+
						"close exactly once (a sync.Once or an owner goroutine makes the discipline structural)", id)
			case id.base == "" && fact.maybeNil[id.v]:
				ca.reportf(pkg, x.Pos(),
					"close of possibly-nil channel %s: it is declared without make and not assigned on every "+
						"path to this close, and closing a nil channel panics", id)
			}
		case *ast.SendStmt:
			id, ok := chanIDOf(info, x.Chan)
			if !ok {
				return true
			}
			fact := at(x)
			if fact == nil {
				return true
			}
			if mayClosed(fact, id) {
				ca.reportf(pkg, x.Pos(),
					"send on %s after close: a path closes the channel before this send, which panics; "+
						"only the sender should close, after its last send", id)
				return true
			}
			if selectSends[x] || !ca.hasMake[id.v] || !ca.unbuffered[id.v] || locks == nil {
				return true
			}
			if held := locks.at(x); len(held) > 0 {
				ca.reportf(pkg, x.Pos(),
					"blocking send on unbuffered channel %s while holding %s: if the receiver needs that lock "+
						"to drain, neither side can proceed (lock-channel deadlock); release the lock before "+
						"the send, buffer the channel, or use a select",
					id, heldNames(held))
			}
		}
		return true
	})
}

// heldNames renders a held-locks fact for messages, deterministically.
func heldNames(fact lockFact) string {
	keys := sortedHeldKeys(fact)
	names := make([]string, len(keys))
	for i, k := range keys {
		names[i] = k.String()
	}
	if len(names) == 1 {
		return names[0]
	}
	out := names[0]
	for _, n := range names[1:] {
		out += " and " + n
	}
	return out
}

// checkOwnership enforces the close-ownership rule over goroutine bodies:
// a spawned body (literal or named callee) that closes a channel it neither
// created, nor sends on (directly or through its callees' summaries), nor
// received as its own parameter — while senders for that channel exist
// elsewhere in the module — is a receiver closing out from under the
// senders. Close-only channels (no senders anywhere) are broadcast signals
// and exempt.
func (ca *chanLifeAnalysis) checkOwnership() {
	seenCallee := map[*types.Func]bool{}
	for _, sp := range ca.prog.Spawns() {
		if !chanLifePkgs[sp.Pkg.Name] {
			continue
		}
		var body *ast.BlockStmt
		var pkg *Package
		params := map[*types.Var]bool{}
		switch {
		case sp.Lit != nil:
			body, pkg = sp.Lit.Body, sp.Pkg
			for _, field := range sp.Lit.Type.Params.List {
				for _, name := range field.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
						params[v] = true
					}
				}
			}
		case sp.Callee != nil:
			if seenCallee[sp.Callee] {
				continue
			}
			seenCallee[sp.Callee] = true
			fd := ca.prog.Graph.DeclOf[sp.Callee]
			pkg = ca.prog.Graph.PkgOf[sp.Callee]
			if fd == nil || fd.Body == nil || pkg == nil {
				continue
			}
			body = fd.Body
			sig, _ := sp.Callee.Type().(*types.Signature)
			if sig != nil {
				for i := 0; i < sig.Params().Len(); i++ {
					params[sig.Params().At(i)] = true
				}
			}
		default:
			continue
		}
		ca.checkBodyOwnership(sp, pkg, body, params)
	}
}

func (ca *chanLifeAnalysis) checkBodyOwnership(sp *Spawn, pkg *Package, body *ast.BlockStmt, params map[*types.Var]bool) {
	info := pkg.Info
	// The classes this goroutine creates or sends on — ownership it holds.
	owns := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			if id, ok := chanIDOf(info, x.Chan); ok {
				owns[id.v] = true
			}
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, lhs := range x.Lhs {
				if _, isMake := isMakeChan(info, x.Rhs[i]); !isMake {
					continue
				}
				if id, ok := chanIDOf(info, lhs); ok {
					owns[id.v] = true
				}
			}
		case *ast.CallExpr:
			callee, _ := calleeOf(info, x)
			if callee == nil {
				return true
			}
			if sum := ca.summaries[callee]; sum != nil {
				for f := range sum.sendFields {
					owns[f] = true
				}
				for idx := range sum.sendParams {
					if idx >= len(x.Args) {
						continue
					}
					if id, ok := chanIDOf(info, x.Args[idx]); ok {
						owns[id.v] = true
					}
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		arg, ok := isCloseCall(info, call)
		if !ok {
			return true
		}
		id, ok := chanIDOf(info, arg)
		if !ok {
			return true
		}
		if params[id.v] || owns[id.v] || !ca.senders[id.v] {
			return true
		}
		ca.reportf(pkg, call.Pos(),
			"%s closes %s without owning it (the goroutine neither creates it, sends on it, nor received "+
				"it as a parameter, while senders exist elsewhere): a racing send on the closed channel "+
				"panics; leave the close to the sending side", sp.Label(), id)
		return true
	})
}
