package lint

import (
	"strings"
	"testing"
)

func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("Select(\"\") = %d analyzers, err %v; want full registry", len(all), err)
	}
	got, err := Select("atomicmix, glignlint/nilrecv")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "atomicmix" || got[1].Name != "nilrecv" {
		t.Errorf("Select picked %v", got)
	}
	if _, err := Select("nosuch"); err == nil {
		t.Error("Select(nosuch) did not error")
	}
}

func TestRegistryIsWellFormed(t *testing.T) {
	seen := map[string]bool{}
	prev := ""
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing a field", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Name < prev {
			t.Errorf("registry not alphabetical: %q after %q", a.Name, prev)
		}
		prev = a.Name
	}
}

func TestDirectiveRE(t *testing.T) {
	cases := []struct {
		in     string
		match  bool
		names  string
		reason string
	}{
		{"//lint:ignore glignlint/atomicmix workers joined", true, "glignlint/atomicmix", "workers joined"},
		{"// lint:ignore glignlint/a,glignlint/b shared reason", true, "glignlint/a,glignlint/b", "shared reason"},
		{"//lint:ignore glignlint/atomicmix", false, "", ""}, // reason is mandatory
		{"// just a comment", false, "", ""},
	}
	for _, c := range cases {
		m := directiveRE.FindStringSubmatch(c.in)
		if (m != nil) != c.match {
			t.Errorf("%q: match = %v, want %v", c.in, m != nil, c.match)
			continue
		}
		if m != nil && (m[1] != c.names || m[2] != c.reason) {
			t.Errorf("%q parsed as (%q, %q), want (%q, %q)", c.in, m[1], m[2], c.names, c.reason)
		}
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "atomicmix", File: "x.go", Line: 3, Col: 7, Message: "boom"}
	if got := f.String(); got != "x.go:3:7: atomicmix: boom" {
		t.Errorf("String() = %q", got)
	}
	f.Suppressed, f.SuppressReason = true, "quiesced"
	if got := f.String(); !strings.HasSuffix(got, "(suppressed: quiesced)") {
		t.Errorf("suppressed String() = %q", got)
	}
}
