package lint

import (
	"encoding/json"
	"os"
)

// BaselineSchema versions the lint-baseline snapshot format
// (results/lint-baseline.json); bump on incompatible changes.
const BaselineSchema = "glign.lint-baseline/v1"

// Baseline is a per-analyzer finding-count snapshot. It is committed under
// results/ so future PRs can diff counts: a growing suppressed count means
// new quiesce arguments entered the codebase, a nonzero active count means
// the tree is not lint-clean.
type Baseline struct {
	Schema    string                   `json:"schema"`
	Analyzers map[string]BaselineEntry `json:"analyzers"`
}

// BaselineEntry is the finding tally of one analyzer.
type BaselineEntry struct {
	Active     int `json:"active"`
	Suppressed int `json:"suppressed"`
}

// MakeBaseline tallies findings per analyzer; analyzers that ran but found
// nothing appear with zero counts so the snapshot records coverage.
func MakeBaseline(analyzers []*Analyzer, findings []Finding) *Baseline {
	b := &Baseline{Schema: BaselineSchema, Analyzers: map[string]BaselineEntry{}}
	for _, a := range analyzers {
		b.Analyzers[a.Name] = BaselineEntry{}
	}
	for _, f := range findings {
		e := b.Analyzers[f.Analyzer]
		if f.Suppressed {
			e.Suppressed++
		} else {
			e.Active++
		}
		b.Analyzers[f.Analyzer] = e
	}
	return b
}

// WriteBaseline writes the snapshot as deterministic, indented JSON.
func WriteBaseline(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
