package queries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/glign/glign/internal/graph"
)

func TestKernelNames(t *testing.T) {
	want := []string{"BFS", "SSSP", "SSWP", "Viterbi", "SSNP"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("All() = %d kernels", len(all))
	}
	for i, k := range all {
		if k.Name() != want[i] {
			t.Fatalf("kernel %d = %s, want %s", i, k.Name(), want[i])
		}
	}
}

func TestByName(t *testing.T) {
	for _, k := range All() {
		got, err := ByName(k.Name())
		if err != nil || got.Name() != k.Name() {
			t.Fatalf("ByName(%s) = %v, %v", k.Name(), got, err)
		}
	}
	if _, err := ByName("pagerank"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestSourceValueBetterThanOrEqualsIdentity(t *testing.T) {
	// The source must start in a state at least as good as "unknown";
	// otherwise injection would never activate anything.
	for _, k := range All() {
		if k.Better(k.Identity(), k.SourceValue()) {
			t.Fatalf("%s: identity better than source value", k.Name())
		}
	}
}

func TestBetterIsStrict(t *testing.T) {
	for _, k := range All() {
		for _, v := range []Value{0, 1, 2.5, math.Inf(1), math.Inf(-1)} {
			if k.Better(v, v) {
				t.Fatalf("%s: Better(%v,%v) = true; must be strict", k.Name(), v, v)
			}
		}
	}
}

// Monotonicity (paper Definition 3.1): relaxing never produces a value
// better than its input source value... more precisely, for these path
// kernels, Relax(src, w) is never Better than src itself (paths only get
// longer/narrower/less probable), which is what guarantees values move
// monotonically in one direction as the frontier propagates.
func TestRelaxNeverImprovesOnSource(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range All() {
		for trial := 0; trial < 1000; trial++ {
			src := Value(rng.ExpFloat64() * 10)
			if k.Name() == "Viterbi" {
				src = rng.Float64() // probabilities live in [0,1]
			}
			w := graph.Weight(1 + rng.Intn(64))
			if out := k.Relax(src, w); k.Better(out, src) {
				t.Fatalf("%s: Relax(%v,%v)=%v better than src", k.Name(), src, w, out)
			}
		}
	}
}

// Relax must be monotone in its first argument: a better source value never
// yields a worse proposal. This is the property that makes the asynchronous
// early evaluations of the query-oblivious frontier safe (Theorem 3.2).
func TestRelaxMonotoneInSource(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, k := range All() {
		for trial := 0; trial < 1000; trial++ {
			a := Value(rng.ExpFloat64() * 10)
			b := Value(rng.ExpFloat64() * 10)
			if k.Name() == "Viterbi" {
				a, b = rng.Float64(), rng.Float64()
			}
			if !k.Better(a, b) {
				a, b = b, a
			}
			if !k.Better(a, b) {
				continue // equal
			}
			w := graph.Weight(1 + rng.Intn(64))
			ra, rb := k.Relax(a, w), k.Relax(b, w)
			if k.Better(rb, ra) {
				t.Fatalf("%s: better src %v gave worse relax %v (vs src %v -> %v)",
					k.Name(), a, ra, b, rb)
			}
		}
	}
}

func TestKernelSpotChecks(t *testing.T) {
	if BFS.Relax(3, 99) != 4 {
		t.Fatal("BFS must ignore weights and add one")
	}
	if SSSP.Relax(3, 4) != 7 {
		t.Fatal("SSSP adds weight")
	}
	if SSWP.Relax(10, 4) != 4 || SSWP.Relax(3, 4) != 3 {
		t.Fatal("SSWP takes min(src, w)")
	}
	if SSNP.Relax(10, 4) != 10 || SSNP.Relax(3, 4) != 4 {
		t.Fatal("SSNP takes max(src, w)")
	}
	if Viterbi.Relax(1, 4) != 0.25 {
		t.Fatal("Viterbi divides by weight")
	}
}

func TestHeterogeneousSet(t *testing.T) {
	hs := HeterogeneousSet()
	if len(hs) != 4 {
		t.Fatalf("heter set size = %d", len(hs))
	}
	for _, k := range hs {
		if k.Name() == "Viterbi" {
			t.Fatal("Viterbi not in the paper's Heter mix")
		}
	}
}

func TestQueryString(t *testing.T) {
	q := Query{Kernel: SSSP, Source: 12}
	if q.String() != "SSSP(v12)" {
		t.Fatalf("String = %q", q.String())
	}
}

func TestValuesBasics(t *testing.T) {
	v := NewValues(10, math.Inf(1))
	if v.Len() != 10 {
		t.Fatalf("len = %d", v.Len())
	}
	if !math.IsInf(v.Get(3), 1) {
		t.Fatal("init not applied")
	}
	v.Set(3, 7)
	if v.Get(3) != 7 {
		t.Fatal("set/get broken")
	}
	v.Fill(2)
	if v.Get(3) != 2 || v.Get(9) != 2 {
		t.Fatal("fill broken")
	}
	if v.Bytes() != 80 {
		t.Fatalf("bytes = %d", v.Bytes())
	}
}

func TestValuesImprove(t *testing.T) {
	less := func(a, b Value) bool { return a < b }
	v := NewValues(1, 10)
	if !v.Improve(0, 5, less) {
		t.Fatal("improvement rejected")
	}
	if v.Improve(0, 7, less) {
		t.Fatal("worse value accepted")
	}
	if v.Improve(0, 5, less) {
		t.Fatal("equal value accepted (Better must be strict)")
	}
	if v.Get(0) != 5 {
		t.Fatalf("value = %v", v.Get(0))
	}
}

func TestValuesSnapshot(t *testing.T) {
	v := NewValues(3, 0)
	v.Set(1, 42)
	s := v.Snapshot()
	if len(s) != 3 || s[1] != 42 || s[0] != 0 {
		t.Fatalf("snapshot = %v", s)
	}
	s[1] = 0
	if v.Get(1) != 42 {
		t.Fatal("snapshot aliases storage")
	}
}

// Property: concurrent Improve with a monotone comparator always converges
// to the best proposed value.
func TestQuickValuesImproveConverges(t *testing.T) {
	less := func(a, b Value) bool { return a < b }
	f := func(proposals []float64) bool {
		if len(proposals) == 0 {
			return true
		}
		v := NewValues(1, math.Inf(1))
		done := make(chan struct{})
		for w := 0; w < 4; w++ {
			go func(off int) {
				for i := off; i < len(proposals); i += 4 {
					p := proposals[i]
					if math.IsNaN(p) {
						p = 0
					}
					v.Improve(0, p, less)
				}
				done <- struct{}{}
			}(w)
		}
		for w := 0; w < 4; w++ {
			<-done
		}
		best := math.Inf(1)
		for _, p := range proposals {
			if math.IsNaN(p) {
				p = 0
			}
			if p < best {
				best = p
			}
		}
		return v.Get(0) == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
