package queries

import (
	"math"
	"sync/atomic"
)

// Values is a flat array of Value cells supporting lock-free monotone
// updates. Cells are stored as float64 bit patterns in uint64 words so a CAS
// loop can implement the atomic "write if better" every push-model engine
// needs (the writeMin of Ligra).
//
// The concurrent engines lay a whole batch out in one Values of length n*B,
// with the value of vertex v for query i at index v*B+i — the
// ValArray[v_j*B+i] layout of paper §3.5 that keeps a vertex's values for
// all queries on the same cache line(s).
type Values struct {
	bits []uint64
}

// NewValues allocates length cells initialized to init.
func NewValues(length int, init Value) *Values {
	v := &Values{bits: make([]uint64, length)}
	v.Fill(init)
	return v
}

// Len returns the number of cells.
func (v *Values) Len() int { return len(v.bits) }

// Get atomically reads cell i.
func (v *Values) Get(i int) Value {
	return math.Float64frombits(atomic.LoadUint64(&v.bits[i]))
}

// Set unconditionally stores x into cell i (atomic store; use for
// initialization such as injecting source values).
func (v *Values) Set(i int, x Value) {
	atomic.StoreUint64(&v.bits[i], math.Float64bits(x))
}

// Fill resets every cell to x (not atomic). Fill is only reachable through
// NewValues, whose receiver is a freshly allocated, unpublished array — the
// flow-sensitive quiesce proof glignlint/atomicmix runs over the call graph
// verifies exactly this, which is why the plain stores need no suppression.
func (v *Values) Fill(x Value) {
	b := math.Float64bits(x)
	for i := range v.bits {
		v.bits[i] = b
	}
}

// Improve installs cand into cell i iff better(cand, current); it retries on
// contention and reports whether it performed an update. This is the atomic
// relaxation step: with a monotone better, cells only ever improve, so the
// loop terminates.
func (v *Values) Improve(i int, cand Value, better func(a, b Value) bool) bool {
	addr := &v.bits[i]
	candBits := math.Float64bits(cand)
	for {
		oldBits := atomic.LoadUint64(addr)
		if !better(cand, math.Float64frombits(oldBits)) {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, oldBits, candBits) {
			return true
		}
	}
}

// Snapshot copies all cells into a fresh []Value with atomic loads, so it
// is safe to call while relaxations are still in flight (each cell is then
// some monotone intermediate, never a torn word).
func (v *Values) Snapshot() []Value {
	out := make([]Value, len(v.bits))
	for i := range out {
		out[i] = v.Get(i)
	}
	return out
}

// Bytes returns the footprint of the value array.
func (v *Values) Bytes() int64 { return int64(len(v.bits)) * 8 }
