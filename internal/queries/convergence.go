package queries

import (
	"fmt"
	"math"

	"github.com/glign/glign/internal/graph"
)

// ConvergenceKernel is the iterate-to-convergence (Jacobi) counterpart of the
// monotone push-model Kernel. Where monotone kernels relax values one edge at
// a time under the CAS "write if better" protocol, a convergence kernel
// recomputes every vertex each round from the previous round's values of its
// in-neighbors, and a lane finishes when its maximum per-vertex residual
// drops to Epsilon (or the round cap hits). There is no monotone shortcut:
// values may move in either direction between rounds, so engines must
// double-buffer instead of CAS-improving in place.
//
// A ConvergenceKernel still embeds Kernel so it rides in a Query unchanged
// (Name feeds telemetry and caching; Identity feeds facade reachability
// accounting). Its Relax and Better panic: routing a convergence kernel into
// a monotone relaxation path is an engine bug, never a recoverable state.
//
// Determinism contract: Step must fold nbrs in slice order. Engines present
// in-neighbors in reverse-CSR order (ascending source vertex), which is the
// same for every worker count and every engine, so a kernel that honors the
// contract produces bit-identical float values across the sequential and the
// lane-fused batched evaluators.
type ConvergenceKernel interface {
	Kernel
	// InitialValue is the round-0 value of vertex v for a query rooted at
	// src on an n-vertex graph.
	InitialValue(n int, v, src graph.VertexID) Value
	// Step computes the next value of a vertex from its previous value, the
	// previous values of its in-neighbors (nbrs, in reverse-CSR order) and
	// those in-neighbors' out-degrees (degs, parallel to nbrs).
	Step(n int, self Value, nbrs []Value, degs []int32) Value
	// Residual measures the per-vertex round-over-round change; engines
	// take the maximum over vertices (order-independent, unlike a sum, so
	// the convergence decision is deterministic across worker counts).
	Residual(old, next Value) float64
	// Epsilon is the max-residual convergence threshold.
	Epsilon() float64
	// MaxRounds caps the rounds of one lane (a safety net; the shipped
	// kernels converge well before it on every generated dataset).
	MaxRounds() int
}

// pagerank: the canonical non-monotone kernel. Jacobi iteration of
// PR(v) = (1-d)/n + d * sum over in-neighbors u of PR(u)/outdeg(u),
// damping d = 0.85, uniform 1/n start. The source vertex is ignored — the
// ranking is a whole-graph property — which makes every PageRank query with
// the same epoch cache-equivalent per (kernel, source) key only by
// convention; callers conventionally use source v0. Dangling vertices
// (outdeg 0) leak their mass rather than redistributing it, so the vector
// sums to at most 1; the oracle invariants encode exactly that contract.
type pagerank struct{}

const (
	pagerankDamping   = 0.85
	pagerankEpsilon   = 1e-8
	pagerankMaxRounds = 1000
)

func (pagerank) Name() string { return "PageRank" }

// Identity exists only to satisfy Kernel (facade reachability accounting
// treats every vertex as reached: a rank is defined for all vertices). No
// computed rank can equal +Inf.
func (pagerank) Identity() Value    { return math.Inf(1) }
func (pagerank) SourceValue() Value { return 0 }
func (pagerank) Relax(Value, graph.Weight) Value {
	panic("queries: PageRank is a convergence kernel; it has no monotone Relax")
}
func (pagerank) Better(Value, Value) bool {
	panic("queries: PageRank is a convergence kernel; it has no monotone Better")
}

func (pagerank) InitialValue(n int, _, _ graph.VertexID) Value {
	return 1 / Value(n)
}

func (pagerank) Step(n int, _ Value, nbrs []Value, degs []int32) Value {
	sum := Value(0)
	for j, pv := range nbrs {
		// Generated graphs never emit an edge out of a zero-out-degree
		// vertex, so degs[j] >= 1 whenever u appears as an in-neighbor.
		sum += pv / Value(degs[j])
	}
	return (1-pagerankDamping)/Value(n) + pagerankDamping*sum
}

func (pagerank) Residual(old, next Value) float64 { return math.Abs(next - old) }
func (pagerank) Epsilon() float64                 { return pagerankEpsilon }
func (pagerank) MaxRounds() int                   { return pagerankMaxRounds }

// labelprop: min-label propagation, the deterministic core of
// label-propagation community detection. Every vertex starts with its own id
// as label and each round adopts the minimum over its previous label and its
// in-neighbors' previous labels. The fixed point labels every vertex with
// the smallest vertex id that reaches it — a components-style certificate —
// and unlike frequency-based label propagation it cannot oscillate, so the
// convergence decision stays deterministic. The source vertex is ignored
// (labels are a whole-graph property), matching PageRank's caching
// convention.
type labelprop struct{}

const labelpropMaxRounds = 1 << 14

func (labelprop) Name() string { return "LabelProp" }

// Identity satisfies Kernel only; every vertex always holds a label, so no
// value ever equals +Inf and facade reachability counts all vertices.
func (labelprop) Identity() Value    { return math.Inf(1) }
func (labelprop) SourceValue() Value { return 0 }
func (labelprop) Relax(Value, graph.Weight) Value {
	panic("queries: LabelProp is a convergence kernel; it has no monotone Relax")
}
func (labelprop) Better(Value, Value) bool {
	panic("queries: LabelProp is a convergence kernel; it has no monotone Better")
}

func (labelprop) InitialValue(_ int, v, _ graph.VertexID) Value {
	return Value(v)
}

func (labelprop) Step(_ int, self Value, nbrs []Value, _ []int32) Value {
	min := self
	for _, l := range nbrs {
		if l < min {
			min = l
		}
	}
	return min
}

func (labelprop) Residual(old, next Value) float64 {
	if old == next {
		return 0
	}
	return 1
}
func (labelprop) Epsilon() float64 { return 0.5 }
func (labelprop) MaxRounds() int   { return labelpropMaxRounds }

// khop: bounded-depth reachability as a monotone kernel. Values are hop
// counts like BFS, but any relaxation that would exceed the depth bound
// proposes Identity (+Inf), so the traversal self-truncates at k hops and
// the final values certify the k-hop reachability set (value <= k iff
// reachable within k hops). Unlike BFS/SSSP it has no fused OpKind fast
// path, so it exercises every engine's OpCustom interface-dispatch route.
type khop struct{ k int }

func (h khop) Name() string     { return fmt.Sprintf("KHOP%d", h.k) }
func (khop) Identity() Value    { return math.Inf(1) }
func (khop) SourceValue() Value { return 0 }
func (h khop) Relax(src Value, _ graph.Weight) Value {
	next := src + 1
	if next > Value(h.k) {
		return math.Inf(1)
	}
	return next
}
func (khop) Better(a, b Value) bool { return a < b }

// HopBound exposes the depth bound so validity oracles can certify the
// reachability set without parsing the kernel name.
func (h khop) HopBound() int { return h.k }

// DefaultKHopDepth is the hop bound of the KHop representative in Monotone()
// and of workload buffers that name the kernel without a depth.
const DefaultKHopDepth = 3

// KHop returns the k-bounded reachability kernel (k >= 0; KHop(0) reaches
// only the source).
func KHop(k int) Kernel { return khop{k: k} }

// Singleton convergence kernels.
var (
	PageRank  ConvergenceKernel = pagerank{}
	LabelProp ConvergenceKernel = labelprop{}
)

// Monotone returns one representative of every monotone push-model kernel:
// the five paper kernels plus bounded-depth reachability. glignlint's
// kernelmono analyzer enforces that every Kernel implementation in this
// package is either resolvable from this list or implements
// ConvergenceKernel — a kernel that is neither has no evaluation paradigm
// and no engine may run it.
func Monotone() []Kernel {
	return []Kernel{BFS, SSSP, SSWP, Viterbi, SSNP, KHop(DefaultKHopDepth)}
}

// Convergent returns the iterate-to-convergence kernels.
func Convergent() []ConvergenceKernel {
	return []ConvergenceKernel{PageRank, LabelProp}
}

// ConvergentOf reports whether k evaluates under the iterate-to-convergence
// paradigm, and returns its ConvergenceKernel view if so.
func ConvergentOf(k Kernel) (ConvergenceKernel, bool) {
	ck, ok := k.(ConvergenceKernel)
	return ck, ok
}

// AnyConvergent reports whether any query of the batch carries a convergence
// kernel. Engines use it to route a batch to the Jacobi evaluator; batching
// layers split mixed buffers so a routed batch is always homogeneous.
func AnyConvergent(batch []Query) bool {
	for _, q := range batch {
		if _, ok := ConvergentOf(q.Kernel); ok {
			return true
		}
	}
	return false
}
