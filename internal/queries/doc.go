// Package queries defines the vertex-specific graph query kernels evaluated
// by the Glign runtime: BFS, SSSP, SSWP, SSNP and Viterbi — the five
// benchmarks of paper Table 6 — plus the Kernel abstraction they share.
//
// Every kernel is *monotonic* (paper Definition 3.1): re-applying Relax can
// only move a vertex value in one direction (given by Better). Monotonicity
// is what makes Glign's query-oblivious frontier safe (Theorem 3.2) — a
// vertex relaxed for a query whose own frontier would not have activated it
// can only improve or keep its value — and is checked by property tests in
// this package.
package queries
