package queries

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/glign/glign/internal/graph"
)

// Value is the vertex property type shared by all kernels. BFS levels,
// shortest distances, widest/narrowest path capacities and Viterbi
// probabilities all embed losslessly into float64 at the scales this
// repository generates.
type Value = float64

// Kernel is a monotone vertex function in the push model: when a vertex s is
// active, Relax(value(s), w(s,d)) proposes a new value for each out-neighbor
// d, adopted iff it is Better than d's current value (paper Table 6).
type Kernel interface {
	// Name returns the canonical benchmark name ("BFS", "SSSP", ...).
	Name() string
	// Identity is the value every non-source vertex starts at (the "no
	// information yet" element: +Inf for minimizing kernels, -Inf or 0 for
	// maximizing ones).
	Identity() Value
	// SourceValue is the initial value of the query's source vertex.
	SourceValue() Value
	// Relax proposes a value for the destination of an edge with weight w
	// whose source currently holds src.
	Relax(src Value, w graph.Weight) Value
	// Better reports whether a strictly improves on b.
	Better(a, b Value) bool
}

// bfs: level(d) = min(level(d), level(s)+1); weights ignored.
type bfs struct{}

func (bfs) Name() string                          { return "BFS" }
func (bfs) Identity() Value                       { return math.Inf(1) }
func (bfs) SourceValue() Value                    { return 0 }
func (bfs) Relax(src Value, _ graph.Weight) Value { return src + 1 }
func (bfs) Better(a, b Value) bool                { return a < b }

// sssp: dist(d) = min(dist(d), dist(s)+w).
type sssp struct{}

func (sssp) Name() string                          { return "SSSP" }
func (sssp) Identity() Value                       { return math.Inf(1) }
func (sssp) SourceValue() Value                    { return 0 }
func (sssp) Relax(src Value, w graph.Weight) Value { return src + Value(w) }
func (sssp) Better(a, b Value) bool                { return a < b }

// sswp (single-source widest path): wide(d) = max(wide(d), min(wide(s), w)).
type sswp struct{}

func (sswp) Name() string       { return "SSWP" }
func (sswp) Identity() Value    { return math.Inf(-1) }
func (sswp) SourceValue() Value { return math.Inf(1) }
func (sswp) Relax(src Value, w graph.Weight) Value {
	if Value(w) < src {
		return Value(w)
	}
	return src
}
func (sswp) Better(a, b Value) bool { return a > b }

// ssnp (single-source narrowest path): narrow(d) = min(narrow(d),
// max(narrow(s), w)).
type ssnp struct{}

func (ssnp) Name() string       { return "SSNP" }
func (ssnp) Identity() Value    { return math.Inf(1) }
func (ssnp) SourceValue() Value { return math.Inf(-1) }
func (ssnp) Relax(src Value, w graph.Weight) Value {
	if Value(w) > src {
		return Value(w)
	}
	return src
}
func (ssnp) Better(a, b Value) bool { return a < b }

// viterbi: viterbi(d) = max(viterbi(d), viterbi(s)/w). With all generated
// weights >= 1, values decay from 1.0 along paths, so max-combining is
// monotone increasing per vertex.
type viterbi struct{}

func (viterbi) Name() string                          { return "Viterbi" }
func (viterbi) Identity() Value                       { return 0 }
func (viterbi) SourceValue() Value                    { return 1 }
func (viterbi) Relax(src Value, w graph.Weight) Value { return src / Value(w) }
func (viterbi) Better(a, b Value) bool                { return a > b }

// Singleton kernels.
var (
	BFS     Kernel = bfs{}
	SSSP    Kernel = sssp{}
	SSWP    Kernel = sswp{}
	SSNP    Kernel = ssnp{}
	Viterbi Kernel = viterbi{}
)

// All returns the five benchmark kernels in the paper's order.
func All() []Kernel {
	return []Kernel{BFS, SSSP, SSWP, Viterbi, SSNP}
}

// HeterogeneousSet returns the kernels mixed in the paper's "Heter" buffers
// (BFS, SSSP, SSWP, SSNP — §4.1).
func HeterogeneousSet() []Kernel {
	return []Kernel{BFS, SSSP, SSWP, SSNP}
}

// ByName looks a kernel up by its canonical name (case-sensitive). Beyond
// the five monotone paper kernels it resolves the convergence kernels
// ("PageRank", "LabelProp") and depth-parameterized reachability ("KHOP"
// for the default depth, or "KHOP<d>" such as "KHOP4").
func ByName(name string) (Kernel, error) {
	for _, k := range All() {
		if k.Name() == name {
			return k, nil
		}
	}
	for _, ck := range Convergent() {
		if ck.Name() == name {
			return ck, nil
		}
	}
	if name == "KHOP" {
		return KHop(DefaultKHopDepth), nil
	}
	if d := strings.TrimPrefix(name, "KHOP"); d != name {
		k, err := strconv.Atoi(d)
		if err != nil || k < 0 {
			return nil, fmt.Errorf("queries: bad KHop depth in kernel name %q", name)
		}
		return KHop(k), nil
	}
	return nil, fmt.Errorf("queries: unknown kernel %q", name)
}

// Query pairs a kernel with a source vertex: one vertex-specific query of an
// evaluation batch.
type Query struct {
	Kernel Kernel
	Source graph.VertexID
}

// String renders "SSSP(v12)".
func (q Query) String() string {
	return fmt.Sprintf("%s(v%d)", q.Kernel.Name(), q.Source)
}
