package queries

import (
	"math"
	"testing"
)

func TestByNameResolvesAllParadigms(t *testing.T) {
	for _, name := range []string{"BFS", "SSSP", "SSWP", "SSNP", "Viterbi", "PageRank", "LabelProp"} {
		k, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if k.Name() != name {
			t.Fatalf("ByName(%q) returned kernel %q", name, k.Name())
		}
	}
	k, err := ByName("KHOP")
	if err != nil || k.Name() != "KHOP3" {
		t.Fatalf("ByName(KHOP) = %v, %v; want the default-depth KHOP3", k, err)
	}
	k, err = ByName("KHOP5")
	if err != nil || k.Name() != "KHOP5" {
		t.Fatalf("ByName(KHOP5) = %v, %v", k, err)
	}
	for _, bad := range []string{"KHOPx", "KHOP-1", "PageRanks", "khop3"} {
		if _, err := ByName(bad); err == nil {
			t.Fatalf("ByName(%q) succeeded; want error", bad)
		}
	}
}

func TestParadigmClassification(t *testing.T) {
	for _, k := range Monotone() {
		if _, ok := ConvergentOf(k); ok {
			t.Fatalf("Monotone() kernel %s claims the convergence paradigm", k.Name())
		}
	}
	for _, ck := range Convergent() {
		if _, ok := ConvergentOf(ck); !ok {
			t.Fatalf("Convergent() kernel %s does not type-assert back", ck.Name())
		}
	}
	batch := []Query{{Kernel: BFS, Source: 0}, {Kernel: SSSP, Source: 1}}
	if AnyConvergent(batch) {
		t.Fatalf("AnyConvergent true on an all-monotone batch")
	}
	batch = append(batch, Query{Kernel: PageRank, Source: 0})
	if !AnyConvergent(batch) {
		t.Fatalf("AnyConvergent false with PageRank present")
	}
}

func TestConvergenceKernelsPanicOnMonotonePath(t *testing.T) {
	for _, ck := range Convergent() {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s.Relax did not panic", ck.Name())
				}
			}()
			ck.Relax(0, 1)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s.Better did not panic", ck.Name())
				}
			}()
			ck.Better(0, 1)
		}()
	}
}

func TestKHopRelaxTruncatesAtBound(t *testing.T) {
	k := KHop(2)
	if got := k.Relax(0, 1); got != 1 {
		t.Fatalf("Relax(0) = %v, want 1", got)
	}
	if got := k.Relax(1, 1); got != 2 {
		t.Fatalf("Relax(1) = %v, want 2", got)
	}
	if got := k.Relax(2, 1); !math.IsInf(got, 1) {
		t.Fatalf("Relax(2) = %v, want +Inf (beyond the bound)", got)
	}
	if hb := k.(interface{ HopBound() int }).HopBound(); hb != 2 {
		t.Fatalf("HopBound = %d, want 2", hb)
	}
}

func TestPageRankStep(t *testing.T) {
	// Two in-neighbors with ranks 0.2 (deg 2) and 0.4 (deg 4): the step is
	// (1-d)/n + d*(0.1+0.1) with n=10, d=0.85.
	got := PageRank.Step(10, 0, []Value{0.2, 0.4}, []int32{2, 4})
	want := 0.15/10 + 0.85*0.2
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("Step = %v, want %v", got, want)
	}
	if r := PageRank.Residual(0.2, 0.25); math.Abs(r-0.05) > 1e-15 {
		t.Fatalf("Residual = %v, want 0.05", r)
	}
	if PageRank.InitialValue(4, 2, 0) != 0.25 {
		t.Fatalf("InitialValue(4) != 1/4")
	}
}

func TestLabelPropStep(t *testing.T) {
	if got := LabelProp.Step(10, 7, []Value{9, 3, 8}, nil); got != 3 {
		t.Fatalf("Step = %v, want the min label 3", got)
	}
	if got := LabelProp.Step(10, 2, []Value{9, 3, 8}, nil); got != 2 {
		t.Fatalf("Step = %v, want to keep own smaller label 2", got)
	}
	if LabelProp.Residual(3, 3) != 0 || LabelProp.Residual(3, 2) != 1 {
		t.Fatalf("Residual must be 0 iff unchanged")
	}
	if LabelProp.InitialValue(10, 6, 0) != 6 {
		t.Fatalf("InitialValue must be the vertex's own id")
	}
}
