package queries

import (
	"math"
	"sync/atomic"

	"github.com/glign/glign/internal/graph"
)

// OpKind identifies a built-in kernel so engines can run fused, direct
// relaxation loops instead of paying two indirect calls (Kernel.Relax plus
// the Better comparator) per edge and lane — the dominant cost of batch
// evaluation once frontiers are bitmap-cheap.
type OpKind uint8

// Kinds of the built-in kernels. OpCustom falls back to the Kernel
// interface, so user-defined kernels keep working, just without the fused
// path.
const (
	OpCustom OpKind = iota
	OpBFS
	OpSSSP
	OpSSWP
	OpSSNP
	OpViterbi
)

// KindOf classifies a kernel.
func KindOf(k Kernel) OpKind {
	switch k.(type) {
	case bfs:
		return OpBFS
	case sssp:
		return OpSSSP
	case sswp:
		return OpSSWP
	case ssnp:
		return OpSSNP
	case viterbi:
		return OpViterbi
	}
	return OpCustom
}

// KindsOf classifies every kernel of a batch.
func KindsOf(kernels []Kernel) []OpKind {
	kinds := make([]OpKind, len(kernels))
	for i, k := range kernels {
		kinds[i] = KindOf(k)
	}
	return kinds
}

// ImproveMin installs cand into cell i iff cand < current (atomic, lock
// free). It is Improve specialized to minimizing kernels.
func (v *Values) ImproveMin(i int, cand Value) bool {
	addr := &v.bits[i]
	candBits := math.Float64bits(cand)
	for {
		oldBits := atomic.LoadUint64(addr)
		if cand >= math.Float64frombits(oldBits) {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, oldBits, candBits) {
			return true
		}
	}
}

// ImproveMax installs cand into cell i iff cand > current.
func (v *Values) ImproveMax(i int, cand Value) bool {
	addr := &v.bits[i]
	candBits := math.Float64bits(cand)
	for {
		oldBits := atomic.LoadUint64(addr)
		if cand <= math.Float64frombits(oldBits) {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, oldBits, candBits) {
			return true
		}
	}
}

// RelaxImprove performs one relaxation of the edge (·->dst, weight w) whose
// source currently holds src, against cell i of v, using the fused path for
// built-in kernels and the Kernel interface otherwise. It reports whether
// the destination improved. kind must be KindOf(k).
func RelaxImprove(v *Values, kind OpKind, k Kernel, i int, src Value, w graph.Weight) bool {
	switch kind {
	case OpBFS:
		return v.ImproveMin(i, src+1)
	case OpSSSP:
		return v.ImproveMin(i, src+Value(w))
	case OpSSWP:
		cand := Value(w)
		if src < cand {
			cand = src
		}
		return v.ImproveMax(i, cand)
	case OpSSNP:
		cand := Value(w)
		if src > cand {
			cand = src
		}
		return v.ImproveMin(i, cand)
	case OpViterbi:
		return v.ImproveMax(i, src/Value(w))
	}
	return v.Improve(i, k.Relax(src, w), k.Better)
}
