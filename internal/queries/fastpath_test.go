package queries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/glign/glign/internal/graph"
)

func TestKindOf(t *testing.T) {
	want := map[string]OpKind{
		"BFS": OpBFS, "SSSP": OpSSSP, "SSWP": OpSSWP,
		"SSNP": OpSSNP, "Viterbi": OpViterbi,
	}
	for _, k := range All() {
		if got := KindOf(k); got != want[k.Name()] {
			t.Fatalf("KindOf(%s) = %d", k.Name(), got)
		}
	}
	// A custom kernel falls back to OpCustom.
	if KindOf(customKernel{}) != OpCustom {
		t.Fatal("custom kernel misclassified")
	}
	kinds := KindsOf([]Kernel{BFS, SSSP})
	if len(kinds) != 2 || kinds[0] != OpBFS || kinds[1] != OpSSSP {
		t.Fatalf("KindsOf = %v", kinds)
	}
}

// customKernel is a user-defined kernel (min-plus with doubled weights).
type customKernel struct{}

func (customKernel) Name() string                          { return "Custom" }
func (customKernel) Identity() Value                       { return math.Inf(1) }
func (customKernel) SourceValue() Value                    { return 0 }
func (customKernel) Relax(src Value, w graph.Weight) Value { return src + 2*Value(w) }
func (customKernel) Better(a, b Value) bool                { return a < b }

func TestImproveMinMax(t *testing.T) {
	v := NewValues(2, 10)
	if !v.ImproveMin(0, 5) || v.ImproveMin(0, 5) || v.ImproveMin(0, 7) {
		t.Fatal("ImproveMin semantics broken")
	}
	if v.Get(0) != 5 {
		t.Fatalf("value = %v", v.Get(0))
	}
	if !v.ImproveMax(1, 20) || v.ImproveMax(1, 20) || v.ImproveMax(1, 15) {
		t.Fatal("ImproveMax semantics broken")
	}
	if v.Get(1) != 20 {
		t.Fatalf("value = %v", v.Get(1))
	}
}

// The fused path must agree exactly with the interface path for every
// built-in kernel over random states (this is what licenses the engines'
// specialized loops).
func TestQuickRelaxImproveMatchesInterface(t *testing.T) {
	kernels := All()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, k := range kernels {
			kind := KindOf(k)
			for trial := 0; trial < 50; trial++ {
				// Random current destination value and source value from
				// the kernel's plausible range.
				src := randomValue(rng, k)
				dst := randomValue(rng, k)
				w := graph.Weight(1 + rng.Intn(64))

				fast := NewValues(1, dst)
				slow := NewValues(1, dst)
				fr := RelaxImprove(fast, kind, k, 0, src, w)
				sr := slow.Improve(0, k.Relax(src, w), k.Better)
				if fr != sr || fast.Get(0) != slow.Get(0) {
					return false
				}
			}
		}
		// And the custom fallback path.
		k := customKernel{}
		v := NewValues(1, math.Inf(1))
		if !RelaxImprove(v, KindOf(k), k, 0, 3, 2) || v.Get(0) != 7 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func randomValue(rng *rand.Rand, k Kernel) Value {
	switch rng.Intn(4) {
	case 0:
		return k.Identity()
	case 1:
		return k.SourceValue()
	}
	if k.Name() == "Viterbi" {
		return rng.Float64()
	}
	return Value(rng.Intn(200))
}
