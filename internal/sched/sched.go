package sched

import (
	"sort"

	"github.com/glign/glign/internal/align"
	"github.com/glign/glign/internal/par"
	"github.com/glign/glign/internal/queries"
	"github.com/glign/glign/internal/telemetry"
)

// Policy partitions a query buffer into evaluation batches. Batches are
// returned as index lists into the buffer so results can be mapped back to
// arrival order.
type Policy interface {
	// Name identifies the policy ("FCFS", "Affinity").
	Name() string
	// MakeBatches splits buffer into batches of at most batchSize queries.
	MakeBatches(buffer []queries.Query, batchSize int) [][]int
}

// FCFS batches queries in arrival order — the default policy of existing
// concurrent graph systems.
type FCFS struct{}

// Name implements Policy.
func (FCFS) Name() string { return "FCFS" }

// MakeBatches implements Policy.
func (FCFS) MakeBatches(buffer []queries.Query, batchSize int) [][]int {
	return chunkIndices(identity(len(buffer)), batchSize)
}

// Affinity is Glign's affinity-oriented batching (paper §3.4): within each
// batching window of Window queries (in arrival order), queries are ranked
// by their estimated heavy-iteration arrival time (closestHV — the same
// precompute that drives inter-iteration alignment) and consecutive runs of
// batchSize ranked queries form the evaluation batches. Queries with close
// arrival times therefore land in the same batch, where their heavy
// iterations align naturally. The window bounds reordering so no query is
// postponed indefinitely.
type Affinity struct {
	// Profile supplies the closestHV estimates.
	Profile *align.Profile
	// Window is the batching window B_w; <= 0 means the whole buffer.
	Window int
	// Telemetry, when non-nil, receives one BatchingDecision per window —
	// the ranked order and the arrival estimates that produced it.
	Telemetry *telemetry.RunTrace
	// Workers bounds the parallelism of the arrival-estimate precompute;
	// <= 0 means GOMAXPROCS. Pool selects the scheduler it runs on (nil
	// means the shared par.Default pool).
	Workers int
	Pool    *par.Pool
}

// Name implements Policy.
func (Affinity) Name() string { return "Affinity" }

// MakeBatches implements Policy.
func (a Affinity) MakeBatches(buffer []queries.Query, batchSize int) [][]int {
	window := a.Window
	if window <= 0 || window > len(buffer) {
		window = len(buffer)
	}
	var batches [][]int
	for lo := 0; lo < len(buffer); lo += window {
		hi := lo + window
		if hi > len(buffer) {
			hi = len(buffer)
		}
		idx, est := a.rankWindow(buffer, lo, hi)
		if a.Telemetry != nil {
			arrivals := make([]int, len(idx))
			for i, bi := range idx {
				arrivals[i] = est[bi-lo]
			}
			a.Telemetry.RecordDecision(telemetry.BatchingDecision{
				Policy:      a.Name(),
				WindowStart: lo,
				WindowEnd:   hi,
				Order:       append([]int(nil), idx...),
				Arrivals:    arrivals,
			})
		}
		batches = append(batches, chunkIndices(idx, batchSize)...)
	}
	return batches
}

// rankWindow ranks buffer[lo:hi) by arrival estimate (stable on arrival
// order for ties), returning absolute buffer indices in ranked order plus
// the window-relative estimate table the ranking used.
func (a Affinity) rankWindow(buffer []queries.Query, lo, hi int) (idx, est []int) {
	idx = identity(hi - lo)
	for i := range idx {
		idx[i] += lo
	}
	// Precompute the estimates once per window on the pool (each is a
	// hop-table lookup, but windows can span thousands of queries), then
	// sort against the table instead of re-deriving inside the comparator.
	est = make([]int, hi-lo)
	par.OrDefault(a.Pool).For(hi-lo, a.Workers, 0, func(elo, ehi int) {
		for i := elo; i < ehi; i++ {
			est[i] = a.Profile.ArrivalEstimate(buffer[lo+i].Source)
		}
	})
	sort.SliceStable(idx, func(x, y int) bool {
		ax := est[idx[x]-lo]
		ay := est[idx[y]-lo]
		if ax != ay {
			return ax < ay
		}
		return idx[x] < idx[y]
	})
	return idx, est
}

// Rank orders the whole buffer by estimated heavy-iteration arrival time and
// returns the ranked buffer indices (stable: arrival order breaks ties). It
// is the per-window ranking MakeBatches applies, exposed over one unbounded
// window so callers that maintain their own pending sets — the serving
// loop's affinity-aware admission (internal/serve) — can order a live queue
// with the exact comparator the offline batching policy uses.
func (a Affinity) Rank(buffer []queries.Query) []int {
	if len(buffer) <= 1 {
		return identity(len(buffer))
	}
	idx, _ := a.rankWindow(buffer, 0, len(buffer))
	return idx
}

func identity(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func chunkIndices(idx []int, size int) [][]int {
	if size <= 0 {
		size = len(idx)
	}
	var out [][]int
	for lo := 0; lo < len(idx); lo += size {
		hi := lo + size
		if hi > len(idx) {
			hi = len(idx)
		}
		out = append(out, idx[lo:hi:hi])
	}
	return out
}

// Select gathers the queries of one batch from the buffer.
func Select(buffer []queries.Query, batch []int) []queries.Query {
	out := make([]queries.Query, len(batch))
	for i, bi := range batch {
		out[i] = buffer[bi]
	}
	return out
}

// SplitParadigm refines a batching into paradigm-homogeneous batches:
// within each batch, monotone-kernel queries keep their relative order and
// stay together, and iterate-to-convergence queries split off into a
// trailing batch of their own. Engines accept only homogeneous batches
// (monotone CAS relaxation and Jacobi rounds share no evaluation state), so
// every policy's output passes through this before reaching an engine.
// Batches that are already homogeneous come back unchanged.
func SplitParadigm(buffer []queries.Query, batches [][]int) [][]int {
	out := make([][]int, 0, len(batches))
	for _, idx := range batches {
		conv := 0
		for _, qi := range idx {
			if _, ok := queries.ConvergentOf(buffer[qi].Kernel); ok {
				conv++
			}
		}
		if conv == 0 || conv == len(idx) {
			out = append(out, idx)
			continue
		}
		mono := make([]int, 0, len(idx)-conv)
		jac := make([]int, 0, conv)
		for _, qi := range idx {
			if _, ok := queries.ConvergentOf(buffer[qi].Kernel); ok {
				jac = append(jac, qi)
			} else {
				mono = append(mono, qi)
			}
		}
		out = append(out, mono, jac)
	}
	return out
}

// MaxDisplacement returns how far any query moved from its arrival position
// — the reordering bound the batching window enforces (at most Window-1).
func MaxDisplacement(batches [][]int) int {
	pos := 0
	maxD := 0
	for _, b := range batches {
		for _, orig := range b {
			d := orig - pos
			if d < 0 {
				d = -d
			}
			if d > maxD {
				maxD = d
			}
			pos++
		}
	}
	return maxD
}
