package sched

import (
	"github.com/glign/glign/internal/align"
	"github.com/glign/glign/internal/queries"
)

// Cluster is an extension beyond the paper's affinity-oriented batching:
// instead of ranking queries by the scalar closestHV (distance to the
// *nearest* hub), it describes each query by its full arrival vector — the
// hop distance from its source to *each* of the K hubs — and greedily
// clusters queries with small L1 distance between vectors into the same
// batch. Two queries that reach different hubs at the same time rank
// identically under the scalar heuristic but traverse different regions;
// the vector distinguishes them. (This generalizes §3.4; the abl-cluster
// experiment quantifies the effect.)
type Cluster struct {
	Profile *align.Profile
	// Window bounds reordering, as in Affinity (<= 0: whole buffer).
	Window int
}

// Name implements Policy.
func (Cluster) Name() string { return "Cluster" }

// arrivalVector is the per-hub hop distances of one query's source;
// unreachable hubs are mapped to a large sentinel so they repel.
func (c Cluster) arrivalVector(src queries.Query) []int32 {
	p := c.Profile
	vec := make([]int32, len(p.Hubs))
	for h := range p.Hubs {
		d := p.LeastHops[h][src.Source]
		if d < 0 {
			d = 1 << 14
		}
		vec[h] = d
	}
	return vec
}

func l1(a, b []int32) int {
	total := 0
	for i := range a {
		d := int(a[i]) - int(b[i])
		if d < 0 {
			d = -d
		}
		total += d
	}
	return total
}

// MakeBatches implements Policy: greedy nearest-vector clustering within
// each batching window. The earliest unassigned query seeds a batch; the
// batchSize-1 unassigned queries with the smallest L1 vector distance to
// the seed join it.
func (c Cluster) MakeBatches(buffer []queries.Query, batchSize int) [][]int {
	window := c.Window
	if window <= 0 || window > len(buffer) {
		window = len(buffer)
	}
	if batchSize <= 0 {
		batchSize = len(buffer)
	}
	vecs := make([][]int32, len(buffer))
	for i, q := range buffer {
		vecs[i] = c.arrivalVector(q)
	}
	var batches [][]int
	for lo := 0; lo < len(buffer); lo += window {
		hi := lo + window
		if hi > len(buffer) {
			hi = len(buffer)
		}
		assigned := make([]bool, hi-lo)
		remaining := hi - lo
		for remaining > 0 {
			// Seed: earliest unassigned.
			seed := -1
			for i := range assigned {
				if !assigned[i] {
					seed = i
					break
				}
			}
			batch := []int{lo + seed}
			assigned[seed] = true
			remaining--
			for len(batch) < batchSize && remaining > 0 {
				best, bestDist := -1, 0
				for i := range assigned {
					if assigned[i] {
						continue
					}
					d := l1(vecs[lo+seed], vecs[lo+i])
					if best < 0 || d < bestDist || (d == bestDist && i < best) {
						best, bestDist = i, d
					}
				}
				batch = append(batch, lo+best)
				assigned[best] = true
				remaining--
			}
			batches = append(batches, batch)
		}
	}
	return batches
}

var _ Policy = Cluster{}
