package sched

import (
	"sync"
	"testing"

	"github.com/glign/glign/internal/align"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/queries"
)

// Property and fuzz coverage for the batching policies: for ANY buffer size,
// batch cap, and reorder window — including the degenerate values the serve
// loop can produce (empty flush remainders, caps larger than the buffer,
// non-positive caps) — MakeBatches must emit an exact partition of the
// buffer indices (a permutation: no duplicate, no loss), and windowed
// affinity reordering must never displace a query by a full window.

var (
	fuzzProfileOnce sync.Once
	fuzzGraph       *graph.Graph
	fuzzProfile     *align.Profile
)

// fuzzSetup builds one tiny graph + profile shared by every fuzz execution
// (the profile is a per-graph precompute; rebuilding it per input would
// dominate the fuzzing loop).
func fuzzSetup() (*graph.Graph, *align.Profile) {
	fuzzProfileOnce.Do(func() {
		fuzzGraph = graph.PaperExample()
		fuzzProfile = align.NewProfile(fuzzGraph, align.DefaultHubCount, 0)
	})
	return fuzzGraph, fuzzProfile
}

// fuzzBuffer derives a deterministic query buffer of length n from a seed
// (splitmix-style, stable across Go releases).
func fuzzBuffer(g *graph.Graph, n int, seed uint64) []queries.Query {
	buf := make([]queries.Query, n)
	x := seed
	for i := range buf {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		buf[i] = queries.Query{Kernel: queries.SSSP, Source: graph.VertexID(z % uint64(g.NumVertices()))}
	}
	return buf
}

// checkExactPartition asserts batches is a permutation of [0,n) (allowing
// any batch size — the caller checks caps where they apply).
func checkExactPartition(t *testing.T, n int, batches [][]int) {
	t.Helper()
	seen := make([]bool, n)
	total := 0
	for _, b := range batches {
		for _, i := range b {
			if i < 0 || i >= n {
				t.Fatalf("index %d out of [0,%d)", i, n)
			}
			if seen[i] {
				t.Fatalf("index %d scheduled twice", i)
			}
			seen[i] = true
			total++
		}
	}
	if total != n {
		t.Fatalf("scheduled %d of %d queries", total, n)
	}
}

// checkPolicies runs both policies on one (n, batchSize, window) shape and
// asserts the partition and displacement properties.
func checkPolicies(t *testing.T, n, batchSize, window int, seed uint64) {
	t.Helper()
	g, prof := fuzzSetup()
	buf := fuzzBuffer(g, n, seed)

	fcfs := FCFS{}.MakeBatches(buf, batchSize)
	checkExactPartition(t, n, fcfs)
	if d := MaxDisplacement(fcfs); d != 0 {
		t.Fatalf("FCFS displaced a query by %d (n=%d b=%d)", d, n, batchSize)
	}

	aff := Affinity{Profile: prof, Window: window}.MakeBatches(buf, batchSize)
	checkExactPartition(t, n, aff)
	if window > 0 {
		if d := MaxDisplacement(aff); d >= window {
			t.Fatalf("affinity displacement %d >= window %d (n=%d b=%d)", d, window, n, batchSize)
		}
	}
	// Batch caps hold whenever the cap is meaningful.
	if batchSize > 0 {
		for _, batches := range [][][]int{fcfs, aff} {
			for _, b := range batches {
				if len(b) > batchSize {
					t.Fatalf("batch of %d exceeds cap %d (n=%d w=%d)", len(b), batchSize, n, window)
				}
			}
		}
	}
	// Select must round-trip every batch back to the buffered queries.
	for _, b := range aff {
		sel := Select(buf, b)
		for i, bi := range b {
			if sel[i] != buf[bi] {
				t.Fatalf("Select mismatch at batch index %d", i)
			}
		}
	}
}

// TestPolicyPartitionProperties sweeps the edge-case lattice directly so the
// properties are pinned even when the fuzzer corpus is not run.
func TestPolicyPartitionProperties(t *testing.T) {
	sizes := []int{0, 1, 2, 3, 7, 17, 64, 129}
	caps := []int{-3, 0, 1, 2, 5, 64, 200}
	windows := []int{-1, 0, 1, 2, 5, 16, 1000}
	seed := uint64(0x5eed)
	for _, n := range sizes {
		for _, b := range caps {
			for _, w := range windows {
				checkPolicies(t, n, b, w, seed)
				seed++
			}
		}
	}
}

// TestEmptyInputs pins the degenerate shapes the serving loop can hand the
// policies: empty buffers and empty batch lists must be handled, not
// special-cased by callers.
func TestEmptyInputs(t *testing.T) {
	_, prof := fuzzSetup()
	if got := (FCFS{}).MakeBatches(nil, 4); len(got) != 0 {
		t.Errorf("FCFS on empty buffer made %d batches", len(got))
	}
	if got := (Affinity{Profile: prof, Window: 8}).MakeBatches(nil, 4); len(got) != 0 {
		t.Errorf("Affinity on empty buffer made %d batches", len(got))
	}
	if d := MaxDisplacement(nil); d != 0 {
		t.Errorf("MaxDisplacement(nil) = %d", d)
	}
	if d := MaxDisplacement([][]int{}); d != 0 {
		t.Errorf("MaxDisplacement(empty) = %d", d)
	}
	if sel := Select(nil, nil); len(sel) != 0 {
		t.Errorf("Select(nil, nil) = %v", sel)
	}
}

// FuzzPolicyPartition fuzzes the (n, batchSize, window, seed) space. Sizes
// are folded into sane ranges so the fuzzer explores shape interactions
// rather than allocation limits.
func FuzzPolicyPartition(f *testing.F) {
	f.Add(uint16(0), int16(0), int16(0), uint64(1))
	f.Add(uint16(1), int16(1), int16(1), uint64(2))
	f.Add(uint16(64), int16(4), int16(16), uint64(3))
	f.Add(uint16(200), int16(-5), int16(7), uint64(4))
	f.Add(uint16(33), int16(64), int16(1), uint64(5))
	f.Fuzz(func(t *testing.T, n uint16, batchSize, window int16, seed uint64) {
		checkPolicies(t, int(n)%512, int(batchSize), int(window), seed)
	})
}
