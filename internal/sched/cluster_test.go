package sched

import (
	"testing"

	"github.com/glign/glign/internal/align"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/queries"
)

func TestClusterPartitions(t *testing.T) {
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	p := align.NewProfile(g, 4, 2)
	buf := randomBuffer(g, 50, 6)
	pol := Cluster{Profile: p}
	batches := pol.MakeBatches(buf, 8)
	checkPartition(t, 50, 8, batches)
	if pol.Name() != "Cluster" {
		t.Fatal("name")
	}
}

func TestClusterWindowed(t *testing.T) {
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	p := align.NewProfile(g, 4, 2)
	buf := randomBuffer(g, 64, 7)
	pol := Cluster{Profile: p, Window: 16}
	batches := pol.MakeBatches(buf, 4)
	checkPartition(t, 64, 4, batches)
	if d := MaxDisplacement(batches); d >= 16 {
		t.Fatalf("displacement %d exceeds window", d)
	}
}

func TestClusterGroupsIdenticalSources(t *testing.T) {
	g := graph.MustGenerate(graph.TW, graph.Tiny)
	p := align.NewProfile(g, 4, 2)
	// Buffer alternating two sources; clustering must group same-source
	// queries (vector distance 0) into the same batches.
	a := p.Hubs[0]
	var b graph.VertexID
	for v := 0; v < g.NumVertices(); v++ {
		if p.ClosestHV[v] >= 3 {
			b = graph.VertexID(v)
			break
		}
	}
	buf := make([]queries.Query, 8)
	for i := range buf {
		src := a
		if i%2 == 1 {
			src = b
		}
		buf[i] = queries.Query{Kernel: queries.BFS, Source: src}
	}
	batches := Cluster{Profile: p}.MakeBatches(buf, 4)
	if len(batches) != 2 {
		t.Fatalf("batches = %d, want 2", len(batches))
	}
	for _, batch := range batches {
		src := buf[batch[0]].Source
		for _, qi := range batch {
			if buf[qi].Source != src {
				t.Fatalf("mixed sources in batch %v", batch)
			}
		}
	}
}

// Clustering must never produce batches with worse mean pairwise vector
// distance than FCFS on a shuffled buffer (sanity of the greedy heuristic).
func TestClusterImprovesCohesion(t *testing.T) {
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	p := align.NewProfile(g, 4, 2)
	buf := randomBuffer(g, 60, 8)
	pol := Cluster{Profile: p}
	cohesion := func(batches [][]int) float64 {
		total, count := 0, 0
		for _, batch := range batches {
			for i := 0; i < len(batch); i++ {
				for j := i + 1; j < len(batch); j++ {
					total += l1(pol.arrivalVector(buf[batch[i]]), pol.arrivalVector(buf[batch[j]]))
					count++
				}
			}
		}
		if count == 0 {
			return 0
		}
		return float64(total) / float64(count)
	}
	fcfs := cohesion(FCFS{}.MakeBatches(buf, 6))
	clus := cohesion(pol.MakeBatches(buf, 6))
	if clus > fcfs {
		t.Fatalf("clustering cohesion %.2f worse than FCFS %.2f", clus, fcfs)
	}
}
