// Package sched implements query batching: how a buffer of concurrent
// queries is partitioned into evaluation batches. It provides the paper's
// two policies — first-come-first-serve and Glign's affinity-oriented
// batching (§3.4, Figure 10) — plus the batching-window mechanism that
// bounds how far affinity-oriented batching may reorder queries (and thus
// the latency a reordered query can pay).
//
// Affinity-oriented batching ranks each window by the heavy-iteration
// arrival estimate closestHV from internal/align, so queries whose deep
// traversals peak at similar depths land in the same batch. The same ranking
// is exposed standalone as Affinity.Rank, which the serving layer
// (internal/serve) uses for affinity-aware admission: ordering the live
// pending queue before batch formation rather than a pre-materialized
// buffer. Every window
// decision (policy, window bounds, chosen order, arrival estimates) is
// recorded as a telemetry BatchingDecision when a RunTrace is attached,
// making batch composition auditable after the fact (see OBSERVABILITY.md).
package sched
