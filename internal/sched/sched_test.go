package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/glign/glign/internal/align"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/queries"
)

func randomBuffer(g *graph.Graph, n int, seed int64) []queries.Query {
	rng := rand.New(rand.NewSource(seed))
	buf := make([]queries.Query, n)
	for i := range buf {
		buf[i] = queries.Query{Kernel: queries.SSSP,
			Source: graph.VertexID(rng.Intn(g.NumVertices()))}
	}
	return buf
}

func checkPartition(t *testing.T, nQueries, batchSize int, batches [][]int) {
	t.Helper()
	seen := make([]bool, nQueries)
	for _, b := range batches {
		if len(b) == 0 || len(b) > batchSize {
			t.Fatalf("batch size %d out of (0,%d]", len(b), batchSize)
		}
		for _, i := range b {
			if i < 0 || i >= nQueries || seen[i] {
				t.Fatalf("index %d invalid or duplicated", i)
			}
			seen[i] = true
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("query %d not scheduled", i)
		}
	}
}

func TestFCFSBatching(t *testing.T) {
	g := graph.PaperExample()
	buf := randomBuffer(g, 10, 1)
	batches := FCFS{}.MakeBatches(buf, 4)
	checkPartition(t, 10, 4, batches)
	if len(batches) != 3 {
		t.Fatalf("batches = %d, want 3", len(batches))
	}
	// Arrival order preserved.
	want := 0
	for _, b := range batches {
		for _, i := range b {
			if i != want {
				t.Fatalf("FCFS reordered: got %d, want %d", i, want)
			}
			want++
		}
	}
	if MaxDisplacement(batches) != 0 {
		t.Fatal("FCFS must not displace queries")
	}
}

func TestAffinityBatchingRanksByArrival(t *testing.T) {
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	p := align.NewProfile(g, 4, 2)
	buf := randomBuffer(g, 64, 2)
	pol := Affinity{Profile: p}
	batches := pol.MakeBatches(buf, 8)
	checkPartition(t, 64, 8, batches)
	// Within the full-buffer window, batches are in nondecreasing arrival
	// order: every batch's max arrival <= next batch's min arrival.
	prevMax := -1
	for _, b := range batches {
		lo, hi := 1<<30, -1
		for _, i := range b {
			a := p.ArrivalEstimate(buf[i].Source)
			if a < lo {
				lo = a
			}
			if a > hi {
				hi = a
			}
		}
		if lo < prevMax {
			t.Fatalf("batch arrival range [%d,%d] overlaps previous max %d", lo, hi, prevMax)
		}
		prevMax = hi
	}
}

func TestAffinityBatchingWindowBoundsDisplacement(t *testing.T) {
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	p := align.NewProfile(g, 4, 2)
	buf := randomBuffer(g, 100, 3)
	pol := Affinity{Profile: p, Window: 20}
	batches := pol.MakeBatches(buf, 5)
	checkPartition(t, 100, 5, batches)
	if d := MaxDisplacement(batches); d >= 20 {
		t.Fatalf("displacement %d not bounded by window 20", d)
	}
	// Windowed batching yields the same batch count as FCFS.
	if len(batches) != 20 {
		t.Fatalf("batches = %d, want 20", len(batches))
	}
}

func TestAffinityStableWithinEqualArrivals(t *testing.T) {
	g := graph.PaperExample()
	p := align.NewProfile(g, 4, 1)
	// All same source -> equal arrivals -> arrival order preserved.
	buf := make([]queries.Query, 6)
	for i := range buf {
		buf[i] = queries.Query{Kernel: queries.BFS, Source: 7}
	}
	batches := Affinity{Profile: p}.MakeBatches(buf, 3)
	checkPartition(t, 6, 3, batches)
	if MaxDisplacement(batches) != 0 {
		t.Fatal("equal arrivals must preserve arrival order (stable sort)")
	}
}

func TestSelect(t *testing.T) {
	g := graph.PaperExample()
	buf := randomBuffer(g, 5, 4)
	got := Select(buf, []int{3, 0})
	if len(got) != 2 || got[0] != buf[3] || got[1] != buf[0] {
		t.Fatalf("Select broken: %v", got)
	}
}

func TestQuickPoliciesPartition(t *testing.T) {
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	p := align.NewProfile(g, 4, 2)
	f := func(seed int64, nRaw, bsRaw, winRaw uint8) bool {
		n := 1 + int(nRaw)%200
		bs := 1 + int(bsRaw)%65
		win := int(winRaw) % 100
		buf := randomBuffer(g, n, seed)
		for _, pol := range []Policy{FCFS{}, Affinity{Profile: p, Window: win}} {
			batches := pol.MakeBatches(buf, bs)
			seen := make([]bool, n)
			for _, b := range batches {
				if len(b) == 0 || len(b) > bs {
					return false
				}
				for _, i := range b {
					if i < 0 || i >= n || seen[i] {
						return false
					}
					seen[i] = true
				}
			}
			for _, s := range seen {
				if !s {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAffinityRankMatchesMakeBatches(t *testing.T) {
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	p := align.NewProfile(g, 4, 2)
	buf := randomBuffer(g, 50, 7)
	pol := Affinity{Profile: p}
	idx := pol.Rank(buf)
	// Rank is the whole-buffer window ranking: concatenating MakeBatches'
	// batches (any batch size) must reproduce it exactly, so the serving
	// loop's admission ordering and the offline policy can never disagree.
	var flat []int
	for _, b := range pol.MakeBatches(buf, 8) {
		flat = append(flat, b...)
	}
	if len(idx) != len(flat) {
		t.Fatalf("rank has %d indices, batches cover %d", len(idx), len(flat))
	}
	for i := range idx {
		if idx[i] != flat[i] {
			t.Fatalf("rank[%d] = %d, MakeBatches order has %d", i, idx[i], flat[i])
		}
	}
	// Stability: equal arrival estimates keep arrival order.
	for i := 1; i < len(idx); i++ {
		a, b := idx[i-1], idx[i]
		ea := p.ArrivalEstimate(buf[a].Source)
		eb := p.ArrivalEstimate(buf[b].Source)
		if ea > eb || (ea == eb && a > b) {
			t.Fatalf("rank not stable-sorted at %d: (%d est %d) before (%d est %d)", i, a, ea, b, eb)
		}
	}
	// Degenerate buffers rank as identity.
	if got := pol.Rank(buf[:1]); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Rank of singleton = %v, want [0]", got)
	}
	if got := pol.Rank(nil); len(got) != 0 {
		t.Fatalf("Rank of empty = %v, want empty", got)
	}
}
