package core

import (
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/memtrace"
)

// TraceAddressing assigns simulated base addresses to every data structure
// a concurrent engine touches, so a Tracer can replay the run against a
// cache model. Regions are page-aligned and disjoint (see memtrace.Layout).
// It is exported for the comparator engines in internal/baselines.
type TraceAddressing struct {
	offsets, targets, weights int64
	values                    int64
	unionCur, unionNext       int64
	// sepCur/sepNext hold per-query frontier bitmap bases (two-level engine).
	sepCur, sepNext []int64
	// qmaskCur/qmaskNext hold the per-vertex query-mask arrays (Krill).
	qmaskCur, qmaskNext int64
}

// LayoutKind selects which frontier structures an engine owns.
type LayoutKind int

// The three frontier layouts of the engines.
const (
	LayoutUnionOnly LayoutKind = iota // Glign's query-oblivious frontier
	LayoutTwoLevel                    // union + B separate frontiers (Ligra-C, GraphM)
	LayoutQueryMask                   // union + per-vertex query masks (Krill)
)

// NewTraceAddressing lays out the structures of a b-query batch on g for
// the given frontier layout.
func NewTraceAddressing(g *graph.Graph, b int, kind LayoutKind) *TraceAddressing {
	var l memtrace.Layout
	n := int64(g.NumVertices())
	m := int64(g.NumEdges())
	a := &TraceAddressing{
		offsets: l.Place((n + 1) * 4),
		targets: l.Place(m * 4),
	}
	if g.Weighted() {
		a.weights = l.Place(m * 4)
	}
	a.values = l.Place(n * int64(b) * 8)
	fwords := (n + 63) / 64 * 8
	a.unionCur = l.Place(fwords)
	a.unionNext = l.Place(fwords)
	switch kind {
	case LayoutTwoLevel:
		a.sepCur = make([]int64, b)
		a.sepNext = make([]int64, b)
		for i := 0; i < b; i++ {
			a.sepCur[i] = l.Place(fwords)
			a.sepNext[i] = l.Place(fwords)
		}
	case LayoutQueryMask:
		a.qmaskCur = l.Place(n * 8)
		a.qmaskNext = l.Place(n * 8)
	}
	return a
}

// SwapFrontiers flips the cur/next roles after a global iteration.
func (a *TraceAddressing) SwapFrontiers() {
	a.unionCur, a.unionNext = a.unionNext, a.unionCur
	a.sepCur, a.sepNext = a.sepNext, a.sepCur
	a.qmaskCur, a.qmaskNext = a.qmaskNext, a.qmaskCur
}

// TraceRegionScan models a sequential full scan of a region (e.g. reading a
// frontier bitmap to materialize its sparse view).
func TraceRegionScan(tr memtrace.Tracer, base, size int64) {
	for off := int64(0); off < size; off += 8 {
		tr.Access(base+off, 8, false)
	}
}

// TraceEdgeRead models reading the CSR entry of edge index eo (target and,
// when present, weight).
func (a *TraceAddressing) TraceEdgeRead(tr memtrace.Tracer, g *graph.Graph, eo int64) {
	tr.Access(a.targets+eo*4, 4, false)
	if g.Weighted() {
		tr.Access(a.weights+eo*4, 4, false)
	}
}

// ValueAddr returns the simulated address of value cell i (ValArray[i]).
func (a *TraceAddressing) ValueAddr(i int) int64 { return a.values + int64(i)*8 }

// OffsetAddr returns the address of Offsets[v].
func (a *TraceAddressing) OffsetAddr(v graph.VertexID) int64 { return a.offsets + int64(v)*4 }

// SepCurWordAddr returns the address of the bitmap word holding vertex v in
// query q's current separate frontier; SepNextWordAddr the "next" copy.
func (a *TraceAddressing) SepCurWordAddr(q int, v graph.VertexID) int64 {
	return a.sepCur[q] + int64(v>>6)*8
}

// SepNextWordAddr is SepCurWordAddr for the next-iteration frontier.
func (a *TraceAddressing) SepNextWordAddr(q int, v graph.VertexID) int64 {
	return a.sepNext[q] + int64(v>>6)*8
}

// SepCurBase returns the base address of query q's current separate
// frontier bitmap.
func (a *TraceAddressing) SepCurBase(q int) int64 { return a.sepCur[q] }
