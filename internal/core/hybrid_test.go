package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/glign/glign/internal/engine"
	"github.com/glign/glign/internal/frontier"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/par"
	"github.com/glign/glign/internal/queries"
)

func TestDirectionOptimizedMatchesReference(t *testing.T) {
	g := graph.MustGenerate(graph.TW, graph.Tiny)
	rev := g.Reverse()
	rng := rand.New(rand.NewSource(51))
	kernels := queries.All()
	var batch []queries.Query
	for i := 0; i < 12; i++ {
		batch = append(batch, queries.Query{
			Kernel: kernels[rng.Intn(len(kernels))],
			Source: graph.VertexID(rng.Intn(g.NumVertices())),
		})
	}
	checkAgainstReference(t, g, batch, GlignIntra, Options{Workers: 4, ReverseGraph: rev})
}

func TestDirectionOptimizedActuallyPulls(t *testing.T) {
	// On a dense power-law graph a 16-query batch must trip the density
	// heuristic in its heavy iterations; the pull path reports its edge
	// visits through the same counters, so EdgesProcessed changes versus
	// pure push (pull scans all in-edges of all vertices).
	g := graph.MustGenerate(graph.TW, graph.Tiny)
	rev := g.Reverse()
	var batch []queries.Query
	for i := 0; i < 16; i++ {
		batch = append(batch, queries.Query{Kernel: queries.BFS,
			Source: graph.VertexID(i * 37 % g.NumVertices())})
	}
	push, err := GlignIntra.Run(g, batch, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := GlignIntra.Run(g, batch, Options{Workers: 1, ReverseGraph: rev})
	if err != nil {
		t.Fatal(err)
	}
	if push.EdgesProcessed == hybrid.EdgesProcessed {
		t.Fatal("hybrid run never pulled (edge counters identical)")
	}
	// Same fixed point regardless.
	for qi := range batch {
		for v := 0; v < g.NumVertices(); v++ {
			if push.Value(qi, graph.VertexID(v)) != hybrid.Value(qi, graph.VertexID(v)) {
				t.Fatalf("hybrid diverged at query %d vertex %d", qi, v)
			}
		}
	}
}

func TestShouldPullHeuristic(t *testing.T) {
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	frontierOf := func(count int) *frontier.Subset {
		s := frontier.New(g.NumVertices())
		for v := 0; v < count; v++ {
			s.Add(graph.VertexID(v))
		}
		return s
	}
	pool := par.Default()
	if shouldPull(g, frontierOf(1), pool, 0) {
		t.Fatal("single-vertex frontier classified dense")
	}
	if !shouldPull(g, frontierOf(g.NumVertices()), pool, 0) {
		t.Fatal("full frontier classified sparse")
	}
}

// Property: hybrid evaluation equals pure push for random graphs, batches
// and alignments.
func TestQuickHybridEqualsPush(t *testing.T) {
	kernels := queries.All()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		gb := graph.NewBuilder(n, rng.Intn(2) == 0, true)
		for i := 0; i < 4*n; i++ {
			gb.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)),
				graph.Weight(1+rng.Intn(16)))
		}
		g := gb.MustBuild()
		rev := g.Reverse()
		b := 1 + rng.Intn(6)
		batch := make([]queries.Query, b)
		align := make([]int, b)
		for i := range batch {
			batch[i] = queries.Query{
				Kernel: kernels[rng.Intn(len(kernels))],
				Source: graph.VertexID(rng.Intn(n)),
			}
			align[i] = rng.Intn(3)
		}
		hybrid, err := GlignIntra.Run(g, batch, Options{Workers: 2, Alignment: align, ReverseGraph: rev})
		if err != nil {
			return false
		}
		for qi, q := range batch {
			want := engine.ReferenceRun(g, q)
			for v := 0; v < n; v++ {
				if hybrid.Value(qi, graph.VertexID(v)) != want[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
