package core

import (
	"github.com/glign/glign/internal/graph"
)

// Footprint is the memory breakdown of paper Table 11: the resident sizes
// of the three major structures of a concurrent evaluation. Only the
// frontier component differs across designs, but it is scanned in full
// every global iteration, which is why its size drives LLC behaviour far
// beyond its share of total memory.
type Footprint struct {
	Method        string
	GraphBytes    int64
	ValueBytes    int64
	FrontierBytes int64
}

// Total returns the sum of the components.
func (f Footprint) Total() int64 { return f.GraphBytes + f.ValueBytes + f.FrontierBytes }

// frontierBitmapBytes is the size of one frontier bitmap over n vertices.
func frontierBitmapBytes(n int) int64 { return int64((n + 63) / 64 * 8) }

// FootprintOf computes the memory breakdown of evaluating a batch of b
// queries on g with the named engine. Engines are identified by Name().
func FootprintOf(e Engine, g *graph.Graph, b int) Footprint {
	n := g.NumVertices()
	f := Footprint{
		Method:     e.Name(),
		GraphBytes: g.MemoryFootprintBytes(),
		ValueBytes: int64(n) * int64(b) * 8,
	}
	one := frontierBitmapBytes(n)
	switch e.Name() {
	case "Ligra-S":
		// One frontier pair for the single in-flight query.
		f.ValueBytes = int64(n) * 8 // only one query resident at a time
		f.FrontierBytes = 2 * one
	case "Ligra-C":
		// Unified frontier pair + B separate frontier pairs.
		f.FrontierBytes = 2*one + int64(2*b)*one
	case "Krill":
		// Unified frontier pair + per-vertex query-mask pair.
		f.FrontierBytes = 2*one + 2*int64(n)*8
	default:
		// Query-oblivious designs: a single unified frontier pair.
		f.FrontierBytes = 2 * one
	}
	return f
}
