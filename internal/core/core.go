package core

import (
	"fmt"
	"sync/atomic"

	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/memtrace"
	"github.com/glign/glign/internal/par"
	"github.com/glign/glign/internal/queries"
	"github.com/glign/glign/internal/telemetry"
)

// ValueLayout selects the physical arrangement of the batched value array.
//
// The paper's §3.5 layout interleaves the B per-query values of each vertex
// (cell of vertex v, query i at v*B+i) so one vertex's values share a cache
// line. That is the right shape for the relaxation inner loop, but it puts
// different queries' values on the same line: concurrent lanes writing
// different queries of neighboring vertices fight over lines (false sharing),
// and per-lane passes (the Jacobi gather of convergence kernels, per-query
// extraction) walk the array at stride B.
//
// The padded layout gives each query lane its own cache-line-aligned segment
// (cell of vertex v, query i at i*laneStride+v, laneStride rounded up to a
// multiple of 8 cells = 64 bytes): lanes never share a line, and per-lane
// passes become unit-stride. Engines address cells through BatchSetup.Cell /
// the VStride+LaneOff pair, so both layouts run through identical code.
type ValueLayout int

const (
	// LayoutAuto picks padded, except under a memtrace.Tracer where the
	// simulated address stream must stay faithful to the paper's interleaved
	// model (tracing already forces workers=1, so false sharing is moot).
	LayoutAuto ValueLayout = iota
	// LayoutInterleaved is the paper's §3.5 layout: cell(v, i) = v*B+i.
	LayoutInterleaved
	// LayoutPadded is the per-lane layout: cell(v, i) = i*laneStride+v with
	// 64-byte-aligned lane segments.
	LayoutPadded
)

func (l ValueLayout) String() string {
	switch l {
	case LayoutInterleaved:
		return "interleaved"
	case LayoutPadded:
		return "padded"
	}
	return "auto"
}

// laneStrideFor rounds the per-lane segment length up to a multiple of 8
// cells, so each 8-byte-cell segment starts and ends on a 64-byte line
// boundary and no two lanes ever share a cache line.
func laneStrideFor(n int) int {
	return (n + 7) &^ 7
}

// layoutGeometry realizes a resolved layout over an n x b value array:
// vertex v, lane i lives at v*vstride+laneOff[i], and total is the array
// length (including alignment padding for the padded layout).
func layoutGeometry(layout ValueLayout, n, b int) (vstride int, laneOff []int, total int) {
	laneOff = make([]int, b)
	if layout == LayoutPadded {
		stride := laneStrideFor(n)
		for i := range laneOff {
			laneOff[i] = i * stride
		}
		return 1, laneOff, stride * b
	}
	for i := range laneOff {
		laneOff[i] = i
	}
	return b, laneOff, n * b
}

// Options configures a batch evaluation.
type Options struct {
	// Workers bounds parallelism; <= 0 means GOMAXPROCS. Runs with a Tracer
	// are forced single-threaded so the access stream is deterministic.
	Workers int
	// Pool is the work-stealing scheduler the engines submit their parallel
	// loops to; nil means the shared par.Default pool. Injecting a pool
	// isolates a run's scheduling (and its steal/imbalance telemetry) from
	// other concurrent work.
	Pool *par.Pool
	// Alignment is the alignment vector I (paper Definition 3.3):
	// Alignment[i] is the global iteration at which query i's evaluation
	// starts. Nil means all zeros (every query starts immediately).
	Alignment []int
	// MaxIterations aborts evaluation when > 0 (tests only; monotone
	// kernels otherwise reach a fixed point).
	MaxIterations int
	// Tracer, when non-nil, receives every simulated memory access.
	Tracer memtrace.Tracer
	// ReverseGraph, when non-nil, enables direction optimization in the
	// query-oblivious engine: dense global iterations run in pull mode over
	// this edge-reversed graph (see hybrid.go). Other engines and tracing
	// runs ignore it.
	ReverseGraph *graph.Graph
	// Telemetry, when non-nil, receives one IterationStat per global
	// iteration (per per-query iteration for sequential engines). Nil —
	// the default — makes every hook a no-op nil-receiver call.
	Telemetry *telemetry.BatchTrace
	// Layout selects the value-array arrangement (see ValueLayout). The
	// zero value LayoutAuto resolves to padded, or interleaved under a
	// Tracer.
	Layout ValueLayout
}

// BatchResult is the outcome of evaluating one batch.
type BatchResult struct {
	// B is the batch size (number of queries).
	B int
	// N is the vertex count of the graph.
	N int
	// Values is the flat batched value array. Vertex v, query q lives at
	// v*VStride+LaneOff[q]; a nil LaneOff means the paper's interleaved
	// layout (v*B+q), which keeps hand-built results in older tests valid.
	Values *queries.Values
	// VStride and LaneOff describe the value-array layout (see ValueLayout).
	VStride int
	LaneOff []int
	// GlobalIterations counts executed global iterations.
	GlobalIterations int
	// UnionFrontierSizes records the unified frontier size entering every
	// global iteration.
	UnionFrontierSizes []int
	// EdgesProcessed counts edge visits (per active vertex, per out-edge);
	// LaneRelaxations counts per-query relaxation attempts on edges. Their
	// ratio exposes the extra computation the query-oblivious design
	// trades for locality.
	EdgesProcessed  int64
	LaneRelaxations int64
	// ValueWrites counts successful relaxations — value-array improvements
	// actually installed (the write traffic behind paper §3.5's layout).
	ValueWrites int64
	// LaneRounds, LaneConverged and LaneResiduals describe
	// iterate-to-convergence runs (all nil for monotone batches): per lane,
	// the rounds executed, whether the max residual reached the kernel's
	// Epsilon before the round cap, and the final max residual.
	LaneRounds    []int
	LaneConverged []bool
	LaneResiduals []float64
}

// cell returns the value-array index of vertex v, query q under the result's
// layout.
func (r *BatchResult) cell(v, q int) int {
	if r.LaneOff == nil {
		return v*r.B + q
	}
	return v*r.VStride + r.LaneOff[q]
}

// Value returns the final value of vertex v for query q.
func (r *BatchResult) Value(q int, v graph.VertexID) queries.Value {
	return r.Values.Get(r.cell(int(v), q))
}

// QueryValues copies out the full value vector of query q.
func (r *BatchResult) QueryValues(q int) []queries.Value {
	out := make([]queries.Value, r.N)
	for v := 0; v < r.N; v++ {
		out[v] = r.Values.Get(r.cell(v, q))
	}
	return out
}

// Engine evaluates a batch of concurrent queries on a graph.
type Engine interface {
	// Name returns the method name as used in the paper's tables.
	Name() string
	// Run evaluates batch on g.
	Run(g *graph.Graph, batch []queries.Query, opt Options) (*BatchResult, error)
}

// BatchSetup carries the pieces every concurrent engine sets up the same
// way: per-lane kernels, identities, the flat value array, and the delayed
// injection schedule. It is exported so the comparator engines in
// internal/baselines share the exact same batch semantics.
type BatchSetup struct {
	B        int
	N        int
	Kernels  []queries.Kernel
	Identity []queries.Value
	Vals     *queries.Values
	// Layout is the resolved value-array layout; VStride and LaneOff realize
	// it: vertex v, query i lives at v*VStride+LaneOff[i]. Interleaved runs
	// carry VStride=B, LaneOff[i]=i (so Cell(v,i) == v*B+i, the paper's
	// formula); padded runs carry VStride=1, LaneOff[i]=i*laneStride.
	Layout  ValueLayout
	VStride int
	LaneOff []int
	// Alignment[i] = global iteration at which query i starts; MaxAlign is
	// the last injection iteration.
	Alignment []int
	MaxAlign  int
	Sources   []graph.VertexID
}

// Cell returns the value-array index of vertex v, query lane i.
func (st *BatchSetup) Cell(v, i int) int {
	return v*st.VStride + st.LaneOff[i]
}

// NewResult builds the engine result envelope carrying the setup's sizes,
// value array and layout, so BatchResult.Value addresses cells the same way
// the engine wrote them.
func (st *BatchSetup) NewResult() *BatchResult {
	return &BatchResult{
		B:       st.B,
		N:       st.N,
		Values:  st.Vals,
		VStride: st.VStride,
		LaneOff: st.LaneOff,
	}
}

// PrepareBatch validates a batch against a graph and options and builds its
// shared state (value array initialized to per-lane identities, injection
// schedule from the alignment vector).
func PrepareBatch(g *graph.Graph, batch []queries.Query, opt Options) (*BatchSetup, error) {
	if len(batch) == 0 {
		return nil, fmt.Errorf("core: empty batch")
	}
	n := g.NumVertices()
	b := len(batch)
	st := &BatchSetup{
		B:        b,
		N:        n,
		Kernels:  make([]queries.Kernel, b),
		Identity: make([]queries.Value, b),
		Sources:  make([]graph.VertexID, b),
	}
	for i, q := range batch {
		if int(q.Source) >= n {
			return nil, fmt.Errorf("core: query %d source v%d out of range (n=%d)", i, q.Source, n)
		}
		// Monotone setup is meaningless for iterate-to-convergence kernels
		// (no identity fill, no CAS relaxation): engines with a Jacobi path
		// route to RunConvergenceBatch before preparing, so reaching this
		// check means the engine has none.
		if _, ok := queries.ConvergentOf(q.Kernel); ok {
			return nil, fmt.Errorf("core: query %d (%s) is an iterate-to-convergence kernel, which this engine does not support (route through Glign, Krill, Ligra-C, Ligra-S or Query-Parallel)", i, q)
		}
		st.Kernels[i] = q.Kernel
		st.Identity[i] = q.Kernel.Identity()
		st.Sources[i] = q.Source
	}
	if opt.Alignment != nil {
		if len(opt.Alignment) != b {
			return nil, fmt.Errorf("core: alignment vector length %d != batch size %d", len(opt.Alignment), b)
		}
		st.Alignment = opt.Alignment
		for _, a := range st.Alignment {
			if a < 0 {
				return nil, fmt.Errorf("core: negative alignment %d", a)
			}
			if a > st.MaxAlign {
				st.MaxAlign = a
			}
		}
	} else {
		st.Alignment = make([]int, b)
	}
	st.Layout = opt.Layout
	if st.Layout == LayoutAuto {
		if opt.Tracer != nil {
			st.Layout = LayoutInterleaved
		} else {
			st.Layout = LayoutPadded
		}
	}
	var total int
	st.VStride, st.LaneOff, total = layoutGeometry(st.Layout, n, b)
	st.Vals = queries.NewValues(total, 0)
	// The identity fill touches every cell; for large graphs that is the
	// batch's first cold pass over the value array, so spread it over the
	// pool (disjoint vertex blocks; Set stores are atomic). Padding cells at
	// lane-segment tails are never addressed and stay zero.
	par.OrDefault(opt.Pool).For(n, opt.Workers, 0, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			base := v * st.VStride
			for i := 0; i < b; i++ {
				st.Vals.Set(base+st.LaneOff[i], st.Identity[i])
			}
		}
	})
	return st, nil
}

// InjectionsAt returns the queries whose evaluation starts at global
// iteration iter.
func (st *BatchSetup) InjectionsAt(iter int) []int {
	var out []int
	for i, a := range st.Alignment {
		if a == iter {
			out = append(out, i)
		}
	}
	return out
}

// PendingAfter reports whether any query starts strictly after iter.
func (st *BatchSetup) PendingAfter(iter int) bool {
	return iter < st.MaxAlign
}

// ActiveAt counts the queries whose delayed start has arrived by iter
// (alignment offset <= iter) — the active-query count of telemetry records.
func (st *BatchSetup) ActiveAt(iter int) int {
	n := 0
	for _, a := range st.Alignment {
		if a <= iter {
			n++
		}
	}
	return n
}

// iterCounters snapshots the cumulative BatchResult counters so an engine
// can report per-iteration deltas to telemetry.
type iterCounters struct {
	edges, relaxes, writes int64
}

// iterCapHint sizes per-iteration record slices (UnionFrontierSizes and
// friends) up front, so the traversal loop never grows them mid-run
// (glignlint/hotalloc): capped runs bound their history exactly, and
// free-running monotone batches converge in O(diameter) rounds, for which 64
// is a generous amortization base.
func iterCapHint(maxIterations int) int {
	if maxIterations > 0 {
		return maxIterations
	}
	return 64
}

// countersOf reads the counters with atomic loads: engines call it between
// parallel phases (the workers' adds already happened-before via par.For's
// join), but atomic loads keep the access protocol uniform — the invariant
// glignlint/atomicmix enforces.
func countersOf(res *BatchResult) iterCounters {
	return iterCounters{
		atomic.LoadInt64(&res.EdgesProcessed),
		atomic.LoadInt64(&res.LaneRelaxations),
		atomic.LoadInt64(&res.ValueWrites),
	}
}

// recordIteration emits one global-iteration record: the counter deltas
// since prev, plus the frontier and injection state of the iteration.
// Engines call it after each iteration's parallel phase completes.
func recordIteration(bt *telemetry.BatchTrace, st *BatchSetup, res *BatchResult,
	iter, frontierSize int, mode string, injected int, prev iterCounters) {
	if bt == nil {
		return
	}
	cur := countersOf(res)
	bt.RecordIteration(telemetry.IterationStat{
		Iter:            iter,
		Query:           -1,
		FrontierSize:    frontierSize,
		Mode:            mode,
		ActiveQueries:   st.ActiveAt(iter),
		InjectedQueries: injected,
		EdgesProcessed:  cur.edges - prev.edges,
		LaneRelaxations: cur.relaxes - prev.relaxes,
		ValueWrites:     cur.writes - prev.writes,
	})
}
