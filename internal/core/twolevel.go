package core

import (
	"sync/atomic"

	"github.com/glign/glign/internal/frontier"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/par"
	"github.com/glign/glign/internal/queries"
	"github.com/glign/glign/internal/telemetry"
)

// twoLevel is the unified + separate frontier design of paper Figure 5-b:
// the synchronized frontier traversal used by Ligra-C (the paper's extended
// Ligra baseline), Krill and SimGQ. A unified frontier is the OR of B
// per-query frontiers; traversal walks the unified frontier and, for each
// active vertex, probes every query's separate frontier to decide which
// lanes to relax. The B extra bitmap arrays and the two-level checking are
// exactly the costs Glign's query-oblivious frontier eliminates.
type twoLevel struct{}

// LigraC is the two-level frontier engine ("Ligra-C" in the paper's tables).
var LigraC Engine = twoLevel{}

func (twoLevel) Name() string { return "Ligra-C" }

func (twoLevel) Run(g *graph.Graph, batch []queries.Query, opt Options) (*BatchResult, error) {
	// Convergence kernels have no per-query frontiers to two-level; route
	// them to the shared lane-fused Jacobi evaluator.
	if queries.AnyConvergent(batch) {
		return RunConvergenceBatch(g, batch, opt)
	}
	st, err := PrepareBatch(g, batch, opt)
	if err != nil {
		return nil, err
	}
	n, b := st.N, st.B
	kinds := queries.KindsOf(st.Kernels)
	res := st.NewResult()
	res.UnionFrontierSizes = make([]int, 0, iterCapHint(opt.MaxIterations))

	tr := opt.Tracer
	pool := par.OrDefault(opt.Pool)
	workers := opt.Workers
	var addr *TraceAddressing
	if tr != nil {
		workers = 1
		addr = NewTraceAddressing(g, b, LayoutTwoLevel)
	}

	union := frontier.New(n)
	sep := make([]*frontier.Subset, b)
	for i := range sep {
		sep[i] = frontier.New(n)
	}
	// nextSep ping-pongs with sep across iterations, so the traversal loop
	// reuses both lane-frontier slices instead of allocating a fresh one per
	// round (glignlint/hotalloc). Its elements are (re)built each iteration.
	nextSep := make([]*frontier.Subset, b)

	for iter := 0; ; iter++ {
		injected := 0
		for _, qi := range st.InjectionsAt(iter) {
			src := st.Sources[qi]
			st.Vals.Set(st.Cell(int(src), qi), st.Kernels[qi].SourceValue())
			sep[qi].Add(src)
			union.Add(src)
			injected++
			if tr != nil {
				tr.Access(addr.values+int64(int(src)*b+qi)*8, 8, true)
				tr.Access(addr.sepCur[qi]+int64(src>>6)*8, 8, true)
				tr.Access(addr.unionCur+int64(src>>6)*8, 8, true)
			}
		}
		if union.IsEmpty() && !st.PendingAfter(iter) {
			break
		}
		if opt.MaxIterations > 0 && iter >= opt.MaxIterations {
			break
		}
		frontierSize := union.Count()
		res.UnionFrontierSizes = append(res.UnionFrontierSizes, frontierSize)
		res.GlobalIterations++
		var prev iterCounters
		if opt.Telemetry != nil {
			prev = countersOf(res)
		}

		for i := range nextSep {
			nextSep[i] = frontier.New(n)
		}
		active := union.Sparse()
		if tr != nil {
			TraceRegionScan(tr, addr.unionCur, int64(len(union.Words()))*8)
		}
		pool.For(len(active), workers, 0, func(lo, hi int) {
			lanes := make([]int32, 0, b)
			var edges, relaxes, writes int64
			for ai := lo; ai < hi; ai++ {
				v := active[ai]
				base := int(v) * st.VStride
				// Second-level check: probe every query's separate
				// frontier (B scattered bitmap reads — the cost of the
				// two-level design).
				lanes = lanes[:0]
				for i := 0; i < b; i++ {
					if tr != nil {
						tr.Access(addr.sepCur[i]+int64(v>>6)*8, 8, false)
					}
					if sep[i].Contains(v) {
						lanes = append(lanes, int32(i))
					}
				}
				if len(lanes) == 0 {
					continue
				}
				if tr != nil {
					tr.Access(addr.offsets+int64(v)*4, 8, false)
					for _, li := range lanes {
						tr.Access(addr.values+int64(base+int(li))*8, 8, false)
					}
				}
				nbrs, ws := g.OutEdges(v)
				for j, d := range nbrs {
					edges++
					w := graph.Weight(1)
					if ws != nil {
						w = ws[j]
					}
					dbase := int(d) * st.VStride
					if tr != nil {
						eo := int64(g.Offsets[v]) + int64(j)
						addr.TraceEdgeRead(tr, g, eo)
					}
					for _, li := range lanes {
						i := int(li)
						relaxes++
						if tr != nil {
							tr.Access(addr.values+int64(dbase+i)*8, 8, false)
						}
						if queries.RelaxImprove(st.Vals, kinds[i], st.Kernels[i], dbase+st.LaneOff[i], st.Vals.Get(base+st.LaneOff[i]), w) {
							writes++
							nextSep[i].AddSync(d)
							if tr != nil {
								tr.Access(addr.values+int64(dbase+i)*8, 8, true)
								tr.Access(addr.sepNext[i]+int64(d>>6)*8, 8, true)
								tr.Access(addr.unionNext+int64(d>>6)*8, 8, true)
							}
						}
					}
				}
			}
			atomic.AddInt64(&res.EdgesProcessed, edges)
			atomic.AddInt64(&res.LaneRelaxations, relaxes)
			atomic.AddInt64(&res.ValueWrites, writes)
		})
		// The paper's two-level design maintains the unified frontier with a
		// second per-improvement bitmap CAS (the access the trace above still
		// models). The executed version derives it once per iteration from
		// the quiesced lane frontiers with a word-level OR — same set, no
		// per-improvement union contention on shared cache lines.
		union = frontier.UnionOf(pool, workers, nextSep...)
		sep, nextSep = nextSep, sep
		if opt.Telemetry != nil {
			recordIteration(opt.Telemetry, st, res, iter, frontierSize, telemetry.ModePush, injected, prev)
		}
		if tr != nil {
			addr.SwapFrontiers()
		}
	}
	return res, nil
}
