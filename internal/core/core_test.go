package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/glign/glign/internal/engine"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/memtrace"
	"github.com/glign/glign/internal/queries"
)

// Engines under test. Krill is limited to 64-query batches, which all these
// tests respect.
func allEngines() []Engine {
	return []Engine{LigraS, LigraC, Krill, GlignIntra}
}

func checkAgainstReference(t *testing.T, g *graph.Graph, batch []queries.Query, e Engine, opt Options) {
	t.Helper()
	res, err := e.Run(g, batch, opt)
	if err != nil {
		t.Fatalf("%s: %v", e.Name(), err)
	}
	for qi, q := range batch {
		want := engine.ReferenceRun(g, q)
		for v := 0; v < g.NumVertices(); v++ {
			if got := res.Value(qi, graph.VertexID(v)); got != want[v] {
				t.Fatalf("%s: query %d (%s) vertex %d = %v, want %v",
					e.Name(), qi, q, v, got, want[v])
			}
		}
	}
}

// Theorem 3.2: the query-oblivious frontier (and every other engine) yields
// exactly the per-query sequential results, because all kernels are
// monotone.
func TestAllEnginesMatchReferencePaperExample(t *testing.T) {
	g := graph.PaperExample()
	batch := []queries.Query{
		{Kernel: queries.SSSP, Source: 1},
		{Kernel: queries.SSSP, Source: 7},
		{Kernel: queries.BFS, Source: 0},
		{Kernel: queries.SSWP, Source: 2},
		{Kernel: queries.SSNP, Source: 0},
		{Kernel: queries.Viterbi, Source: 7},
	}
	for _, e := range allEngines() {
		checkAgainstReference(t, g, batch, e, Options{})
	}
}

func TestAllEnginesMatchReferenceRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 4; trial++ {
		cfg := graph.DefaultRMAT(8, 6, int64(500+trial))
		cfg.Directed = trial%2 == 0
		g := graph.GenerateRMAT(cfg)
		var batch []queries.Query
		kernels := queries.All()
		for i := 0; i < 12; i++ {
			batch = append(batch, queries.Query{
				Kernel: kernels[rng.Intn(len(kernels))],
				Source: graph.VertexID(rng.Intn(g.NumVertices())),
			})
		}
		for _, e := range allEngines() {
			checkAgainstReference(t, g, batch, e, Options{Workers: 4})
		}
	}
}

// Delayed start (any alignment vector) must never change results — it only
// shifts when queries begin (paper §3.3).
func TestAlignmentDoesNotChangeResults(t *testing.T) {
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	rng := rand.New(rand.NewSource(12))
	batch := []queries.Query{
		{Kernel: queries.SSSP, Source: graph.VertexID(rng.Intn(g.NumVertices()))},
		{Kernel: queries.SSSP, Source: graph.VertexID(rng.Intn(g.NumVertices()))},
		{Kernel: queries.BFS, Source: graph.VertexID(rng.Intn(g.NumVertices()))},
		{Kernel: queries.SSWP, Source: graph.VertexID(rng.Intn(g.NumVertices()))},
	}
	align := []int{3, 0, 5, 1}
	for _, e := range allEngines() {
		if e.Name() == "Ligra-S" {
			continue // sequential baseline has no global iterations
		}
		checkAgainstReference(t, g, batch, e, Options{Alignment: align, Workers: 4})
	}
}

// Paper §3.3: on the Figure 3 graph, the batch [sssp(v2), sssp(v8)] with
// alignment I=[0,0] produces union frontiers of sizes 2,3,5,2,3,1 (Table 2)
// and with I=[2,0] sizes 1,1,2,3,4,1 (Table 3). The two-level engine tracks
// exact per-query frontiers, so its union sizes must reproduce these.
func TestPaperUnionFrontierSizes(t *testing.T) {
	g := graph.PaperExample()
	batch := []queries.Query{
		{Kernel: queries.SSSP, Source: 1}, // sssp(v2)
		{Kernel: queries.SSSP, Source: 7}, // sssp(v8)
	}
	res, err := LigraC.Run(g, batch, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 3, 5, 2, 3, 1}
	if !equalInts(res.UnionFrontierSizes, want) {
		t.Fatalf("I=[0,0]: union sizes = %v, want %v", res.UnionFrontierSizes, want)
	}

	res, err = LigraC.Run(g, batch, Options{Workers: 1, Alignment: []int{2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	want = []int{1, 1, 2, 3, 4, 1}
	if !equalInts(res.UnionFrontierSizes, want) {
		t.Fatalf("I=[2,0]: union sizes = %v, want %v", res.UnionFrontierSizes, want)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The oblivious engine performs at least as many lane relaxations per edge
// as the two-level engine (it ignores per-query frontiers) but touches no
// separate frontier state — the compute/memory tradeoff of §3.2.
func TestObliviousDoesMoreLaneWork(t *testing.T) {
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	rng := rand.New(rand.NewSource(13))
	var batch []queries.Query
	for i := 0; i < 16; i++ {
		batch = append(batch, queries.Query{Kernel: queries.SSSP,
			Source: graph.VertexID(rng.Intn(g.NumVertices()))})
	}
	oblivious, err := GlignIntra.Run(g, batch, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	twoLevel, err := LigraC.Run(g, batch, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if oblivious.LaneRelaxations < twoLevel.LaneRelaxations {
		t.Fatalf("oblivious lane relaxations %d < two-level %d",
			oblivious.LaneRelaxations, twoLevel.LaneRelaxations)
	}
}

func TestKrillRejectsOversizedBatch(t *testing.T) {
	g := graph.PaperExample()
	batch := make([]queries.Query, 65)
	for i := range batch {
		batch[i] = queries.Query{Kernel: queries.BFS, Source: 0}
	}
	if _, err := Krill.Run(g, batch, Options{}); err == nil {
		t.Fatal("65-query batch accepted by Krill engine")
	}
}

func TestBatchValidation(t *testing.T) {
	g := graph.PaperExample()
	for _, e := range allEngines() {
		if _, err := e.Run(g, nil, Options{}); err == nil {
			t.Fatalf("%s: empty batch accepted", e.Name())
		}
		bad := []queries.Query{{Kernel: queries.BFS, Source: 100}}
		if _, err := e.Run(g, bad, Options{}); err == nil {
			t.Fatalf("%s: out-of-range source accepted", e.Name())
		}
		b2 := []queries.Query{{Kernel: queries.BFS, Source: 0}}
		if _, err := e.Run(g, b2, Options{Alignment: []int{1, 2}}); err == nil {
			t.Fatalf("%s: wrong-length alignment accepted", e.Name())
		}
		if _, err := e.Run(g, b2, Options{Alignment: []int{-1}}); err == nil {
			t.Fatalf("%s: negative alignment accepted", e.Name())
		}
	}
}

func TestQueryValuesAccessor(t *testing.T) {
	g := graph.PaperExample()
	batch := []queries.Query{
		{Kernel: queries.SSSP, Source: 0},
		{Kernel: queries.BFS, Source: 0},
	}
	res, err := GlignIntra.Run(g, batch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sssp := res.QueryValues(0)
	wantSSSP := []queries.Value{0, 17, 4, 12, 5, 7, 6, 22, 10}
	for v, w := range wantSSSP {
		if sssp[v] != w {
			t.Fatalf("sssp values = %v, want %v", sssp, wantSSSP)
		}
	}
	bfs := res.QueryValues(1)
	if bfs[7] != 4 {
		t.Fatalf("bfs(v8) = %v, want 4", bfs[7])
	}
}

func TestTracingDeterministicAndHarmless(t *testing.T) {
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	batch := []queries.Query{
		{Kernel: queries.SSSP, Source: 3},
		{Kernel: queries.BFS, Source: 9},
		{Kernel: queries.SSWP, Source: 21},
	}
	for _, e := range allEngines() {
		var t1, t2 memtrace.CountingTracer
		r1, err := e.Run(g, batch, Options{Tracer: &t1})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := e.Run(g, batch, Options{Tracer: &t2})
		if err != nil {
			t.Fatal(err)
		}
		if t1 != t2 {
			t.Fatalf("%s: tracing not deterministic: %+v vs %+v", e.Name(), t1, t2)
		}
		if t1.Reads == 0 || t1.Writes == 0 {
			t.Fatalf("%s: tracer saw nothing", e.Name())
		}
		// Tracing must not perturb results.
		plain, err := e.Run(g, batch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for qi := range batch {
			for v := 0; v < g.NumVertices(); v++ {
				if r1.Value(qi, graph.VertexID(v)) != plain.Value(qi, graph.VertexID(v)) {
					t.Fatalf("%s: tracing changed results", e.Name())
				}
			}
		}
		_ = r2
	}
}

func TestFootprintOrdering(t *testing.T) {
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	const b = 64
	fS := FootprintOf(LigraS, g, b)
	fC := FootprintOf(LigraC, g, b)
	fK := FootprintOf(Krill, g, b)
	fG := FootprintOf(GlignIntra, g, b)
	// Frontier footprint: Ligra-C and Krill both carry per-query activation
	// state (B bits per vertex — identical size at B=64, where Krill's
	// advantage is layout, not bytes), while Glign keeps a single unified
	// frontier (Table 11's shape).
	if fC.FrontierBytes < fK.FrontierBytes || fK.FrontierBytes <= fG.FrontierBytes {
		t.Fatalf("frontier bytes C=%d K=%d G=%d violate C >= K > G",
			fC.FrontierBytes, fK.FrontierBytes, fG.FrontierBytes)
	}
	// Ligra-C's separate frontiers are ~B times Glign's single frontier.
	ratio := float64(fC.FrontierBytes) / float64(fG.FrontierBytes)
	if ratio < float64(b)/2 {
		t.Fatalf("frontier ratio %.1f too small for B=%d", ratio, b)
	}
	if fS.ValueBytes >= fC.ValueBytes {
		t.Fatal("sequential baseline should hold one query's values at a time")
	}
	if fG.Total() <= 0 || fG.GraphBytes != g.MemoryFootprintBytes() {
		t.Fatal("footprint totals broken")
	}
}

// Property: on random small graphs, for random batches mixing all kernels
// and random alignment vectors, the oblivious engine equals the two-level
// engine equals the reference (the full Theorem 3.2 statement).
func TestQuickTheorem32(t *testing.T) {
	kernels := queries.All()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		gb := graph.NewBuilder(n, rng.Intn(2) == 0, true)
		for i := 0; i < 3*n; i++ {
			gb.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)),
				graph.Weight(1+rng.Intn(16)))
		}
		g := gb.MustBuild()
		b := 1 + rng.Intn(8)
		batch := make([]queries.Query, b)
		align := make([]int, b)
		for i := range batch {
			batch[i] = queries.Query{
				Kernel: kernels[rng.Intn(len(kernels))],
				Source: graph.VertexID(rng.Intn(n)),
			}
			align[i] = rng.Intn(4)
		}
		opt := Options{Workers: 2, Alignment: align}
		ob, err := GlignIntra.Run(g, batch, opt)
		if err != nil {
			return false
		}
		tl, err := LigraC.Run(g, batch, opt)
		if err != nil {
			return false
		}
		for qi, q := range batch {
			want := engine.ReferenceRun(g, q)
			for v := 0; v < n; v++ {
				if ob.Value(qi, graph.VertexID(v)) != want[v] {
					return false
				}
				if tl.Value(qi, graph.VertexID(v)) != want[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
