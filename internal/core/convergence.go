package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/glign/glign/internal/engine"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/par"
	"github.com/glign/glign/internal/queries"
	"github.com/glign/glign/internal/telemetry"
)

// RunConvergenceBatch is the lane-fused Jacobi evaluator behind the batch
// engines: one synchronized round recomputes every vertex for every
// still-running lane from the previous round's in-neighbor values, using the
// same layout machinery as the monotone engines (Options.Layout; padded
// per-lane segments by default, so a lane's gather of in-neighbor values
// walks one n-cell segment instead of striding across all B lanes). The batch must be
// paradigm-homogeneous — every kernel a queries.ConvergenceKernel; the
// batching layers split mixed buffers before routing.
//
// A lane freezes once its max per-vertex residual reaches the kernel's
// Epsilon (or its MaxRounds cap, or Options.MaxIterations): frozen lanes
// carry their values forward while the rest of the batch keeps iterating,
// the convergence analogue of a lane's frontier draining.
//
// Options.Alignment is ignored: delayed start schedules frontier arrivals,
// and a Jacobi round has no frontier. Options.Tracer is likewise ignored
// (access tracing models the monotone push design). Per-vertex in-neighbor
// folds run in reverse-CSR order, so the values are bit-identical to
// RunConvergenceSequential's for every worker count.
func RunConvergenceBatch(g *graph.Graph, batch []queries.Query, opt Options) (*BatchResult, error) {
	b := len(batch)
	if b == 0 {
		return nil, fmt.Errorf("core: empty batch")
	}
	n := g.NumVertices()
	kers := make([]queries.ConvergenceKernel, b)
	eps := make([]float64, b)
	caps := make([]int, b)
	for i, q := range batch {
		ck, ok := queries.ConvergentOf(q.Kernel)
		if !ok {
			return nil, fmt.Errorf("core: mixed-paradigm batch: query %d (%s) is monotone; split batches by paradigm before routing", i, q)
		}
		if int(q.Source) >= n {
			return nil, fmt.Errorf("core: query %d source v%d out of range (n=%d)", i, q.Source, n)
		}
		kers[i] = ck
		eps[i] = ck.Epsilon()
		caps[i] = ck.MaxRounds()
		if opt.MaxIterations > 0 && opt.MaxIterations < caps[i] {
			caps[i] = opt.MaxIterations
		}
	}
	geo := engine.NewConvergenceGeometry(g, opt.ReverseGraph)
	pool := par.OrDefault(opt.Pool)
	workers := opt.Workers

	// The Jacobi path ignores Options.Tracer, so LayoutAuto is always padded.
	layout := opt.Layout
	if layout == LayoutAuto {
		layout = LayoutPadded
	}
	vstride, laneOff, total := layoutGeometry(layout, n, b)

	old := make([]queries.Value, total)
	next := make([]queries.Value, total)
	pool.For(n, workers, 0, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			base := v * vstride
			for i := 0; i < b; i++ {
				old[base+laneOff[i]] = kers[i].InitialValue(n, graph.VertexID(v), batch[i].Source)
			}
		}
	})

	res := &BatchResult{
		B: b, N: n,
		VStride:       vstride,
		LaneOff:       laneOff,
		LaneRounds:    make([]int, b),
		LaneConverged: make([]bool, b),
		LaneResiduals: make([]float64, b),
	}
	sizes := make([]int, 0, iterCapHint(opt.MaxIterations))
	done := make([]bool, b)
	roundResid := make([]float64, b)
	var mu sync.Mutex
	for round, running := 0, b; running > 0; round++ {
		for i := range roundResid {
			roundResid[i] = 0
		}
		sizes = append(sizes, n)
		var prev iterCounters
		if opt.Telemetry != nil {
			prev = countersOf(res)
		}
		pool.For(n, workers, 0, func(lo, hi int) {
			scratch := engine.NewJacobiScratch(geo.MaxInDeg, b)
			var edges, relaxes, writes int64
			for v := lo; v < hi; v++ {
				us, _ := geo.Rev.OutEdges(graph.VertexID(v))
				for j, u := range us {
					scratch.Degs[j] = geo.OutDeg[u]
				}
				edges += int64(len(us))
				base := v * vstride
				for i := 0; i < b; i++ {
					cell := base + laneOff[i]
					if done[i] {
						next[cell] = old[cell]
						continue
					}
					// The gather stays inside lane i's segment under the
					// padded layout (old[laneOff[i]+u]); interleaved runs
					// stride across all B lanes per neighbor, the paper's
					// shape.
					off := laneOff[i]
					for j, u := range us {
						scratch.Nbrs[j] = old[int(u)*vstride+off]
					}
					nv := kers[i].Step(n, old[cell], scratch.Nbrs[:len(us)], scratch.Degs[:len(us)])
					next[cell] = nv
					if r := kers[i].Residual(old[cell], nv); r > scratch.Resid[i] {
						scratch.Resid[i] = r
					}
					if nv != old[cell] {
						writes++
					}
					relaxes += int64(len(us))
				}
			}
			atomic.AddInt64(&res.EdgesProcessed, edges)
			atomic.AddInt64(&res.LaneRelaxations, relaxes)
			atomic.AddInt64(&res.ValueWrites, writes)
			mu.Lock()
			for i := 0; i < b; i++ {
				if scratch.Resid[i] > roundResid[i] {
					roundResid[i] = scratch.Resid[i]
				}
			}
			mu.Unlock()
		})
		old, next = next, old
		res.GlobalIterations++
		active := running
		for i := 0; i < b; i++ {
			if done[i] {
				continue
			}
			res.LaneRounds[i]++
			res.LaneResiduals[i] = roundResid[i]
			if roundResid[i] <= eps[i] {
				done[i] = true
				res.LaneConverged[i] = true
				running--
			} else if res.LaneRounds[i] >= caps[i] {
				done[i] = true
				running--
			}
		}
		if opt.Telemetry != nil {
			cur := countersOf(res)
			injected := 0
			if round == 0 {
				injected = b
			}
			opt.Telemetry.RecordIteration(telemetry.IterationStat{
				Iter:            round,
				Query:           -1,
				FrontierSize:    n,
				Mode:            telemetry.ModeJacobi,
				ActiveQueries:   active,
				InjectedQueries: injected,
				EdgesProcessed:  cur.edges - prev.edges,
				LaneRelaxations: cur.relaxes - prev.relaxes,
				ValueWrites:     cur.writes - prev.writes,
			})
		}
	}
	res.UnionFrontierSizes = sizes
	vals := queries.NewValues(total, 0)
	pool.For(n, workers, 0, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			base := v * vstride
			for i := 0; i < b; i++ {
				vals.Set(base+laneOff[i], old[base+laneOff[i]])
			}
		}
	})
	res.Values = vals
	return res, nil
}

// RunConvergenceSequential evaluates each convergence query of a batch
// independently through engine.RunConvergence — the Ligra-S-style routing
// with no cross-query sharing beyond the amortized graph reversal. Exported
// so the query-parallel baseline shares the exact semantics.
func RunConvergenceSequential(g *graph.Graph, batch []queries.Query, opt Options) (*BatchResult, error) {
	b := len(batch)
	if b == 0 {
		return nil, fmt.Errorf("core: empty batch")
	}
	n := g.NumVertices()
	rev := opt.ReverseGraph
	if rev == nil && g.Directed {
		rev = g.Reverse()
	}
	layout := opt.Layout
	if layout == LayoutAuto {
		layout = LayoutPadded
	}
	vstride, laneOff, total := layoutGeometry(layout, n, b)
	vals := queries.NewValues(total, 0)
	res := &BatchResult{
		B: b, N: n, Values: vals,
		VStride:       vstride,
		LaneOff:       laneOff,
		LaneRounds:    make([]int, b),
		LaneConverged: make([]bool, b),
		LaneResiduals: make([]float64, b),
	}
	for i, q := range batch {
		ck, ok := queries.ConvergentOf(q.Kernel)
		if !ok {
			return nil, fmt.Errorf("core: mixed-paradigm batch: query %d (%s) is monotone; split batches by paradigm before routing", i, q)
		}
		r, err := engine.RunConvergence(g, q, engine.Options{
			Workers:       opt.Workers,
			Pool:          opt.Pool,
			MaxIterations: opt.MaxIterations,
			ReverseGraph:  rev,
			Telemetry:     opt.Telemetry,
			TelemetryLane: i,
		})
		if err != nil {
			return nil, err
		}
		for v := 0; v < n; v++ {
			vals.Set(v*vstride+laneOff[i], r.Values[v])
		}
		res.LaneRounds[i] = r.Iterations
		res.LaneResiduals[i] = r.Residual
		res.LaneConverged[i] = r.Residual <= ck.Epsilon()
		if r.Iterations > res.GlobalIterations {
			res.GlobalIterations = r.Iterations
		}
		// Atomic adds keep the counter protocol uniform with the concurrent
		// engines (glignlint/atomicmix) even though this loop is sequential.
		atomic.AddInt64(&res.EdgesProcessed, atomic.LoadInt64(&r.EdgesTraversed))
		atomic.AddInt64(&res.LaneRelaxations, atomic.LoadInt64(&r.EdgesTraversed))
		atomic.AddInt64(&res.ValueWrites, atomic.LoadInt64(&r.ValueWrites))
		if len(r.FrontierSizes) > len(res.UnionFrontierSizes) {
			res.UnionFrontierSizes = r.FrontierSizes
		}
	}
	return res, nil
}
