// Package core implements the concurrent batch-evaluation engines at the
// heart of this reproduction — the paper's primary contribution and its
// baselines:
//
//   - LigraS: queries evaluated one after another (baseline "Ligra-S").
//   - TwoLevel: unified + per-query separate frontiers (baseline "Ligra-C",
//     the design of Krill and SimGQ — paper Figure 5-b).
//   - Krill: a fused variant of the two-level design keeping per-vertex
//     query bitmasks instead of B separate frontier arrays.
//   - Oblivious: Glign's query-oblivious frontier (paper Figure 5-c,
//     §3.2) — a single unified frontier with every active vertex relaxed
//     for all queries in the batch. Dense iterations switch to pull mode
//     over the reversed graph (the direction optimization, §3.5).
//
// All engines share the batch value layout of paper §3.5: one flat array
// with the value of vertex v for query i at ValArray[v*B+i], and all honor
// an optional alignment vector (paper Definition 3.3) that delays the start
// of individual queries to later global iterations — the mechanism of
// Glign-Inter's "delayed start".
//
// When Options.Telemetry is set, every engine records one IterationStat per
// global iteration — frontier size, push/pull mode, active and injected
// queries, edges processed, lane relaxations, value writes — at a cost of
// one record per iteration, never per edge (see internal/telemetry and
// OBSERVABILITY.md).
package core
