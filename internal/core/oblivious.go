package core

import (
	"sync/atomic"

	"github.com/glign/glign/internal/frontier"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/par"
	"github.com/glign/glign/internal/queries"
	"github.com/glign/glign/internal/telemetry"
)

// oblivious is Glign's query-oblivious frontier engine (paper §3.2,
// Figure 5-c): a single unified frontier with no per-query activation state.
// When a vertex is active, it is evaluated for *every* query in the batch —
// safe because all kernels are monotone (Theorem 3.2); lanes whose source
// value is still the kernel identity are skipped, which is exact (relaxing
// an identity can never improve a neighbor) and cheap.
//
// With Options.Alignment set, sources are injected at their scheduled global
// iterations, which is exactly Glign-Inter's "delayed start" (paper §3.3).
type oblivious struct{}

// GlignIntra is the query-oblivious frontier engine ("Glign-Intra" in the
// paper's tables; also the execution engine under Glign-Inter, Glign-Batch
// and full Glign, which differ only in scheduling).
var GlignIntra Engine = oblivious{}

func (oblivious) Name() string { return "Glign-Intra" }

// laneGroup is a run of batch lanes sharing one kernel kind, so the edge
// loop can run one fused (devirtualized) relaxation loop per group. A
// homogeneous batch — the common case — has a single group.
type laneGroup struct {
	kind  queries.OpKind
	lanes []int32
}

// obliviousScratch is the per-worker state of one EdgeMap pass.
type obliviousScratch struct {
	srcVals []queries.Value
	byKind  [6][]int32 // indexed by OpKind; OpCustom lanes keep interface dispatch
	groups  []laneGroup
}

func newObliviousScratch(b int) *obliviousScratch {
	s := &obliviousScratch{
		srcVals: make([]queries.Value, b),
		groups:  make([]laneGroup, 0, 6),
	}
	for i := range s.byKind {
		s.byKind[i] = make([]int32, 0, b)
	}
	return s
}

// collect snapshots the source values of vertex v and groups its
// non-identity lanes by kernel kind. It returns the number of active lanes.
func (s *obliviousScratch) collect(st *BatchSetup, kinds []queries.OpKind, base int) int {
	for i := range s.byKind {
		s.byKind[i] = s.byKind[i][:0]
	}
	total := 0
	for i := 0; i < st.B; i++ {
		sv := st.Vals.Get(base + st.LaneOff[i])
		s.srcVals[i] = sv
		if sv != st.Identity[i] {
			k := kinds[i]
			s.byKind[k] = append(s.byKind[k], int32(i))
			total++
		}
	}
	s.groups = s.groups[:0]
	for k := range s.byKind {
		if len(s.byKind[k]) > 0 {
			s.groups = append(s.groups, laneGroup{queries.OpKind(k), s.byKind[k]})
		}
	}
	return total
}

// relaxGroup runs one fused relaxation loop for a lane group against
// destination block dbase; it returns how many lanes improved (installed a
// better value).
func relaxGroup(st *BatchSetup, s *obliviousScratch, grp laneGroup, dbase int, w graph.Weight) int {
	improved := 0
	switch grp.kind {
	case queries.OpBFS:
		for _, li := range grp.lanes {
			if st.Vals.ImproveMin(dbase+st.LaneOff[li], s.srcVals[li]+1) {
				improved++
			}
		}
	case queries.OpSSSP:
		wv := queries.Value(w)
		for _, li := range grp.lanes {
			if st.Vals.ImproveMin(dbase+st.LaneOff[li], s.srcVals[li]+wv) {
				improved++
			}
		}
	case queries.OpSSWP:
		wv := queries.Value(w)
		for _, li := range grp.lanes {
			cand := wv
			if s.srcVals[li] < cand {
				cand = s.srcVals[li]
			}
			if st.Vals.ImproveMax(dbase+st.LaneOff[li], cand) {
				improved++
			}
		}
	case queries.OpSSNP:
		wv := queries.Value(w)
		for _, li := range grp.lanes {
			cand := wv
			if s.srcVals[li] > cand {
				cand = s.srcVals[li]
			}
			if st.Vals.ImproveMin(dbase+st.LaneOff[li], cand) {
				improved++
			}
		}
	case queries.OpViterbi:
		wv := queries.Value(w)
		for _, li := range grp.lanes {
			if st.Vals.ImproveMax(dbase+st.LaneOff[li], s.srcVals[li]/wv) {
				improved++
			}
		}
	default:
		for _, li := range grp.lanes {
			i := int(li)
			if st.Vals.Improve(dbase+st.LaneOff[i], st.Kernels[i].Relax(s.srcVals[i], w), st.Kernels[i].Better) {
				improved++
			}
		}
	}
	return improved
}

func (oblivious) Run(g *graph.Graph, batch []queries.Query, opt Options) (*BatchResult, error) {
	// Iterate-to-convergence kernels have no frontier to unify; they take
	// the lane-fused Jacobi path (which shares this engine's interleaved
	// value layout). Batching layers split mixed buffers by paradigm.
	if queries.AnyConvergent(batch) {
		return RunConvergenceBatch(g, batch, opt)
	}
	st, err := PrepareBatch(g, batch, opt)
	if err != nil {
		return nil, err
	}
	n, b := st.N, st.B
	kinds := queries.KindsOf(st.Kernels)
	res := st.NewResult()
	res.UnionFrontierSizes = make([]int, 0, iterCapHint(opt.MaxIterations))

	tr := opt.Tracer
	pool := par.OrDefault(opt.Pool)
	workers := opt.Workers
	var addr *TraceAddressing
	if tr != nil {
		workers = 1
		addr = NewTraceAddressing(g, b, LayoutUnionOnly)
	}

	cur := frontier.New(n)
	for iter := 0; ; iter++ {
		// Inject queries whose delayed start arrives now.
		injected := 0
		for _, qi := range st.InjectionsAt(iter) {
			src := st.Sources[qi]
			st.Vals.Set(st.Cell(int(src), qi), st.Kernels[qi].SourceValue())
			if tr != nil {
				tr.Access(addr.ValueAddr(st.Cell(int(src), qi)), 8, true)
			}
			cur.Add(src)
			injected++
		}
		if cur.IsEmpty() && !st.PendingAfter(iter) {
			break
		}
		if opt.MaxIterations > 0 && iter >= opt.MaxIterations {
			break
		}
		frontierSize := cur.Count()
		res.UnionFrontierSizes = append(res.UnionFrontierSizes, frontierSize)
		res.GlobalIterations++
		var prev iterCounters
		if opt.Telemetry != nil {
			prev = countersOf(res)
		}

		// Direction optimization: dense iterations pull over the reversed
		// graph (never under tracing, which models the paper's push design).
		if tr == nil && opt.ReverseGraph != nil && shouldPull(g, cur, pool, workers) {
			cur = pullIteration(opt.ReverseGraph, st, kinds, cur, pool, workers, res)
			if opt.Telemetry != nil {
				recordIteration(opt.Telemetry, st, res, iter, frontierSize, telemetry.ModePull, injected, prev)
			}
			continue
		}

		next := frontier.New(n)
		active := cur.Sparse()
		if tr != nil {
			TraceRegionScan(tr, addr.unionCur, int64(len(cur.Words()))*8)
		}
		pool.For(len(active), workers, 0, func(lo, hi int) {
			scratch := newObliviousScratch(b)
			var edges, relaxes, writes int64
			for ai := lo; ai < hi; ai++ {
				v := active[ai]
				base := int(v) * st.VStride
				// Snapshot the source values once per vertex and group the
				// non-identity lanes by kernel kind. Interleaved runs read the
				// contiguous block ValArray[v*B..v*B+B) — the locality the
				// paper's layout buys; padded runs gather one cell per lane
				// segment but never share a line across lanes.
				activeLanes := scratch.collect(st, kinds, base)
				if tr != nil {
					tr.Access(addr.OffsetAddr(v), 8, false)
					tr.Access(addr.ValueAddr(base), int64(b)*8, false)
				}
				if activeLanes == 0 {
					continue
				}
				nbrs, ws := g.OutEdges(v)
				for j, d := range nbrs {
					edges++
					w := graph.Weight(1)
					if ws != nil {
						w = ws[j]
					}
					dbase := int(d) * st.VStride
					relaxes += int64(activeLanes)
					improved := 0
					for _, grp := range scratch.groups {
						improved += relaxGroup(st, scratch, grp, dbase, w)
					}
					if tr != nil {
						eo := int64(g.Offsets[v]) + int64(j)
						addr.TraceEdgeRead(tr, g, eo)
						// The destination's whole lane block is touched.
						tr.Access(addr.ValueAddr(dbase), int64(activeLanes)*8, improved > 0)
					}
					if improved > 0 {
						writes += int64(improved)
						if tr != nil {
							tr.Access(addr.unionNext+int64(d>>6)*8, 8, true)
						}
						next.AddSync(d)
					}
				}
			}
			atomic.AddInt64(&res.EdgesProcessed, edges)
			atomic.AddInt64(&res.LaneRelaxations, relaxes)
			atomic.AddInt64(&res.ValueWrites, writes)
		})
		cur = next
		if opt.Telemetry != nil {
			recordIteration(opt.Telemetry, st, res, iter, frontierSize, telemetry.ModePush, injected, prev)
		}
		if tr != nil {
			addr.SwapFrontiers()
		}
	}
	return res, nil
}
