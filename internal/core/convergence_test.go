package core

import (
	"strings"
	"sync"
	"testing"

	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/oracle"
	"github.com/glign/glign/internal/queries"
)

var (
	convGraphOnce sync.Once
	convLJ        *graph.Graph
	convRoad      *graph.Graph
)

func convGraphs(t *testing.T) (*graph.Graph, *graph.Graph) {
	t.Helper()
	convGraphOnce.Do(func() {
		convLJ = graph.MustGenerate(graph.LJ, graph.Tiny)
		convRoad = graph.MustGenerate(graph.RDCA, graph.Tiny)
	})
	return convLJ, convRoad
}

func convBatch() []queries.Query {
	return []queries.Query{
		{Kernel: queries.PageRank, Source: 0},
		{Kernel: queries.LabelProp, Source: 3},
		{Kernel: queries.PageRank, Source: 7},
		{Kernel: queries.LabelProp, Source: 11},
	}
}

// TestConvergenceBatchedMatchesSequential is the convergence-paradigm
// differential: the lane-fused batched Jacobi evaluator (routed through
// every batch engine) must produce bit-identical floats to the sequential
// per-query evaluator and to the serial oracle golden, at every worker
// count — the determinism the max-residual criterion and the in-neighbor
// order contract exist to provide.
func TestConvergenceBatchedMatchesSequential(t *testing.T) {
	lj, road := convGraphs(t)
	engines := []Engine{GlignIntra, Krill, LigraC, LigraS}
	for _, g := range []*graph.Graph{lj, road} {
		batch := convBatch()
		// The oracle golden is the paradigm's independent truth.
		want := make([][]queries.Value, len(batch))
		for i, q := range batch {
			want[i] = oracle.GoldenValues(g, q)
		}
		for _, eng := range engines {
			for _, workers := range []int{1, 4} {
				br, err := eng.Run(g, batch, Options{Workers: workers})
				if err != nil {
					t.Fatalf("%s on %s (workers=%d): %v", eng.Name(), g.Name, workers, err)
				}
				for i := range batch {
					got := br.QueryValues(i)
					for v := range got {
						if got[v] != want[i][v] {
							t.Fatalf("%s on %s (workers=%d) query %s: vals[v%d] = %v, golden %v",
								eng.Name(), g.Name, workers, batch[i], v, got[v], want[i][v])
						}
					}
					if vio := oracle.CheckResult(g, batch[i], got); len(vio) != 0 {
						t.Fatalf("%s on %s query %s violates invariants: %+v", eng.Name(), g.Name, batch[i], vio)
					}
				}
				if br.LaneRounds == nil || br.LaneConverged == nil || br.LaneResiduals == nil {
					t.Fatalf("%s on %s: convergence lane metadata missing", eng.Name(), g.Name)
				}
				for i := range batch {
					if !br.LaneConverged[i] {
						t.Fatalf("%s on %s lane %d (%s) did not converge in %d rounds (residual %g)",
							eng.Name(), g.Name, i, batch[i], br.LaneRounds[i], br.LaneResiduals[i])
					}
					if br.LaneRounds[i] <= 0 {
						t.Fatalf("%s on %s lane %d: zero rounds recorded", eng.Name(), g.Name, i)
					}
				}
			}
		}
	}
}

// TestConvergenceAlignmentIgnored pins that delayed-start vectors do not
// perturb convergence batches: the Jacobi evaluator has no frontier to
// delay, so aligned and unaligned runs are identical.
func TestConvergenceAlignmentIgnored(t *testing.T) {
	_, road := convGraphs(t)
	batch := convBatch()
	plain, err := GlignIntra.Run(road, batch, Options{Workers: 2})
	if err != nil {
		t.Fatalf("unaligned: %v", err)
	}
	aligned, err := GlignIntra.Run(road, batch, Options{Workers: 2, Alignment: []int{0, 2, 4, 6}})
	if err != nil {
		t.Fatalf("aligned: %v", err)
	}
	for i := range batch {
		p, a := plain.QueryValues(i), aligned.QueryValues(i)
		for v := range p {
			if p[v] != a[v] {
				t.Fatalf("alignment changed convergence values at query %d vertex %d", i, v)
			}
		}
	}
}

// TestConvergenceMaxIterationsCaps pins the test-only round cap.
func TestConvergenceMaxIterationsCaps(t *testing.T) {
	lj, _ := convGraphs(t)
	br, err := GlignIntra.Run(lj, convBatch(), Options{Workers: 2, MaxIterations: 2})
	if err != nil {
		t.Fatalf("capped run: %v", err)
	}
	if br.GlobalIterations != 2 {
		t.Fatalf("GlobalIterations = %d, want 2", br.GlobalIterations)
	}
	for i, r := range br.LaneRounds {
		if r != 2 {
			t.Fatalf("lane %d ran %d rounds under a 2-round cap", i, r)
		}
		if br.LaneConverged[i] {
			t.Fatalf("lane %d claims convergence after 2 rounds", i)
		}
	}
}

// TestMixedParadigmBatchRejected pins the homogeneity contract: engines
// refuse batches mixing monotone and convergence kernels (the batching
// layers split them via sched.SplitParadigm before dispatch).
func TestMixedParadigmBatchRejected(t *testing.T) {
	_, road := convGraphs(t)
	mixed := []queries.Query{
		{Kernel: queries.BFS, Source: 0},
		{Kernel: queries.PageRank, Source: 1},
	}
	for _, eng := range []Engine{GlignIntra, Krill, LigraC, LigraS} {
		if _, err := eng.Run(road, mixed, Options{Workers: 1}); err == nil {
			t.Fatalf("%s accepted a mixed-paradigm batch", eng.Name())
		} else if !strings.Contains(err.Error(), "paradigm") {
			t.Fatalf("%s: error does not name the paradigm split: %v", eng.Name(), err)
		}
	}
}

// TestPrepareBatchRejectsConvergenceKernels pins the guard protecting
// engines without a Jacobi path (GraphM, Congra).
func TestPrepareBatchRejectsConvergenceKernels(t *testing.T) {
	_, road := convGraphs(t)
	_, err := PrepareBatch(road, []queries.Query{{Kernel: queries.LabelProp, Source: 0}}, Options{})
	if err == nil || !strings.Contains(err.Error(), "iterate-to-convergence") {
		t.Fatalf("PrepareBatch accepted a convergence kernel (err = %v)", err)
	}
}
