package core

import (
	"sync/atomic"

	"github.com/glign/glign/internal/engine"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/queries"
)

// ligraS evaluates the queries of a batch one after another with the
// single-query Ligra engine — the paper's "Ligra-S" baseline (Table 5).
// Each query still runs with full vertex-level parallelism; there is simply
// no graph-access sharing across queries.
type ligraS struct{}

// LigraS is the sequential baseline engine.
var LigraS Engine = ligraS{}

func (ligraS) Name() string { return "Ligra-S" }

func (ligraS) Run(g *graph.Graph, batch []queries.Query, opt Options) (*BatchResult, error) {
	// Convergence kernels keep the sequential shape: one independent Jacobi
	// evaluation per query, no sharing across queries.
	if queries.AnyConvergent(batch) {
		return RunConvergenceSequential(g, batch, opt)
	}
	st, err := PrepareBatch(g, batch, opt)
	if err != nil {
		return nil, err
	}
	res := st.NewResult()
	for i, q := range batch {
		r := engine.Run(g, q, engine.Options{
			Workers:       opt.Workers,
			Pool:          opt.Pool,
			MaxIterations: opt.MaxIterations,
			Tracer:        opt.Tracer,
			Telemetry:     opt.Telemetry,
			TelemetryLane: i,
		})
		for v := 0; v < st.N; v++ {
			st.Vals.Set(st.Cell(v, i), r.Values[v])
		}
		if r.Iterations > res.GlobalIterations {
			res.GlobalIterations = r.Iterations
		}
		// Atomic adds and loads keep the counters' access protocol uniform
		// with the concurrent engines (glignlint/atomicmix), though this
		// sequential loop has no concurrent writer.
		atomic.AddInt64(&res.EdgesProcessed, atomic.LoadInt64(&r.EdgesTraversed))
		atomic.AddInt64(&res.LaneRelaxations, atomic.LoadInt64(&r.EdgesTraversed))
		atomic.AddInt64(&res.ValueWrites, atomic.LoadInt64(&r.ValueWrites))
		// Union sizes are not meaningful for sequential evaluation; record
		// the per-query frontier history of the longest query instead.
		if len(r.FrontierSizes) > len(res.UnionFrontierSizes) {
			res.UnionFrontierSizes = r.FrontierSizes
		}
	}
	return res, nil
}
