package core

import (
	"sync/atomic"

	"github.com/glign/glign/internal/frontier"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/par"
	"github.com/glign/glign/internal/queries"
)

// Direction optimization for the query-oblivious engine — an extension
// beyond the paper (which assumes the push model throughout): when the
// unified frontier is dense by Ligra's heuristic, a global iteration runs
// in *pull* mode over the edge-reversed graph. Each destination vertex
// scans its in-neighbors for frontier members and pulls improvements into
// its own lane block; a destination is written by exactly one worker, and
// its lane block stays cache-resident across all of its in-edges. The
// fixed point is unchanged (monotone kernels; Theorem 3.2 applies to
// either direction).
//
// Enable by setting Options.ReverseGraph (the alignment profile retains one
// as Profile.Rev). Tracing runs ignore the optimization so the replayed
// access stream keeps modelling the paper's push design.

// pullIteration runs one dense global iteration: for every vertex, pull
// from active in-neighbors across every lane. Returns the next frontier.
func pullIteration(rev *graph.Graph, st *BatchSetup, kinds []queries.OpKind,
	cur *frontier.Subset, pool *par.Pool, workers int, res *BatchResult) *frontier.Subset {
	n, b := st.N, st.B
	// Homogeneous batches get the fused per-kind loop, as in push mode.
	homo := kinds[0]
	for _, kd := range kinds {
		if kd != homo {
			homo = queries.OpCustom
			break
		}
	}
	next := frontier.New(n)
	pool.For(n, workers, 0, func(lo, hi int) {
		var edges, relaxes, writes int64
		for d := lo; d < hi; d++ {
			ins, ws := rev.OutEdges(graph.VertexID(d))
			dbase := d * st.VStride
			improved := 0
			for j, s := range ins {
				if !cur.Contains(s) {
					continue
				}
				edges++
				w := graph.Weight(1)
				if ws != nil {
					w = ws[j]
				}
				sbase := int(s) * st.VStride
				relaxes += int64(b)
				improved += pullEdge(st, homo, kinds, sbase, dbase, w)
			}
			if improved > 0 {
				writes += int64(improved)
				next.AddSync(graph.VertexID(d))
			}
		}
		atomic.AddInt64(&res.EdgesProcessed, edges)
		atomic.AddInt64(&res.LaneRelaxations, relaxes)
		atomic.AddInt64(&res.ValueWrites, writes)
	})
	return next
}

// pullEdge relaxes every lane of one in-edge with the fused fast paths; it
// returns how many lanes improved.
func pullEdge(st *BatchSetup, homo queries.OpKind, kinds []queries.OpKind, sbase, dbase int, w graph.Weight) int {
	b := st.B
	improved := 0
	wv := queries.Value(w)
	switch homo {
	case queries.OpBFS:
		for i := 0; i < b; i++ {
			if sv := st.Vals.Get(sbase + st.LaneOff[i]); sv != st.Identity[i] && st.Vals.ImproveMin(dbase+st.LaneOff[i], sv+1) {
				improved++
			}
		}
	case queries.OpSSSP:
		for i := 0; i < b; i++ {
			if sv := st.Vals.Get(sbase + st.LaneOff[i]); sv != st.Identity[i] && st.Vals.ImproveMin(dbase+st.LaneOff[i], sv+wv) {
				improved++
			}
		}
	case queries.OpSSWP:
		for i := 0; i < b; i++ {
			sv := st.Vals.Get(sbase + st.LaneOff[i])
			if sv == st.Identity[i] {
				continue
			}
			cand := wv
			if sv < cand {
				cand = sv
			}
			if st.Vals.ImproveMax(dbase+st.LaneOff[i], cand) {
				improved++
			}
		}
	case queries.OpSSNP:
		for i := 0; i < b; i++ {
			sv := st.Vals.Get(sbase + st.LaneOff[i])
			if sv == st.Identity[i] {
				continue
			}
			cand := wv
			if sv > cand {
				cand = sv
			}
			if st.Vals.ImproveMin(dbase+st.LaneOff[i], cand) {
				improved++
			}
		}
	case queries.OpViterbi:
		for i := 0; i < b; i++ {
			if sv := st.Vals.Get(sbase + st.LaneOff[i]); sv != st.Identity[i] && st.Vals.ImproveMax(dbase+st.LaneOff[i], sv/wv) {
				improved++
			}
		}
	default:
		for i := 0; i < b; i++ {
			sv := st.Vals.Get(sbase + st.LaneOff[i])
			if sv == st.Identity[i] {
				continue
			}
			if queries.RelaxImprove(st.Vals, kinds[i], st.Kernels[i], dbase+st.LaneOff[i], sv, w) {
				improved++
			}
		}
	}
	return improved
}

// shouldPull applies Ligra's density heuristic to the unified frontier. The
// out-degree sum over the frontier is a fold, so it runs as a parallel
// reduction on the pool (exact: integer addition commutes); the decision is
// made once per global iteration on frontiers that can span most of the
// graph.
func shouldPull(g *graph.Graph, cur *frontier.Subset, pool *par.Pool, workers int) bool {
	active := cur.Sparse()
	outSum := par.ForReduce(pool, len(active), workers, 0, 0,
		func(lo, hi int, acc int) int {
			for i := lo; i < hi; i++ {
				acc += g.OutDegree(active[i])
			}
			return acc
		},
		func(a, b int) int { return a + b })
	return cur.IsDense(outSum, g.NumEdges())
}
