package core

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"github.com/glign/glign/internal/frontier"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/par"
	"github.com/glign/glign/internal/queries"
	"github.com/glign/glign/internal/telemetry"
)

// krill models the Krill system (Chen et al., SC'21): like Ligra-C it
// tracks per-query activation, but it fuses the B separate frontiers into a
// per-vertex query bitmask so that a vertex's activation state for all
// queries shares one cache line, and it processes all active lanes of a
// vertex in one fused pass over its edges ("kernel fusion" + property-data
// management). It therefore sits between Ligra-C and Glign-Intra in both
// frontier footprint and locality, which is where the paper measures it.
type krill struct{}

// Krill is the fused two-level engine. Batches are limited to 64 queries
// (one bitmask word), matching the paper's default batch size.
var Krill Engine = krill{}

func (krill) Name() string { return "Krill" }

func (krill) Run(g *graph.Graph, batch []queries.Query, opt Options) (*BatchResult, error) {
	// Convergence kernels have no activation bitmask to fuse; route them to
	// the shared lane-fused Jacobi evaluator (which has no 64-lane limit).
	if queries.AnyConvergent(batch) {
		return RunConvergenceBatch(g, batch, opt)
	}
	if len(batch) > frontier.MaxQueries {
		return nil, fmt.Errorf("core: Krill engine supports at most %d queries per batch, got %d",
			frontier.MaxQueries, len(batch))
	}
	st, err := PrepareBatch(g, batch, opt)
	if err != nil {
		return nil, err
	}
	n, b := st.N, st.B
	kinds := queries.KindsOf(st.Kernels)
	res := st.NewResult()
	res.UnionFrontierSizes = make([]int, 0, iterCapHint(opt.MaxIterations))

	tr := opt.Tracer
	pool := par.OrDefault(opt.Pool)
	workers := opt.Workers
	var addr *TraceAddressing
	if tr != nil {
		workers = 1
		addr = NewTraceAddressing(g, b, LayoutQueryMask)
	}

	union := frontier.New(n)
	qm := frontier.NewQueryMask(n)

	for iter := 0; ; iter++ {
		injected := 0
		for _, qi := range st.InjectionsAt(iter) {
			src := st.Sources[qi]
			st.Vals.Set(st.Cell(int(src), qi), st.Kernels[qi].SourceValue())
			qm.Set(src, qi)
			union.Add(src)
			injected++
			if tr != nil {
				tr.Access(addr.values+int64(int(src)*b+qi)*8, 8, true)
				tr.Access(addr.qmaskCur+int64(src)*8, 8, true)
				tr.Access(addr.unionCur+int64(src>>6)*8, 8, true)
			}
		}
		if union.IsEmpty() && !st.PendingAfter(iter) {
			break
		}
		if opt.MaxIterations > 0 && iter >= opt.MaxIterations {
			break
		}
		frontierSize := union.Count()
		res.UnionFrontierSizes = append(res.UnionFrontierSizes, frontierSize)
		res.GlobalIterations++
		var prev iterCounters
		if opt.Telemetry != nil {
			prev = countersOf(res)
		}

		nextUnion := frontier.New(n)
		nextQM := frontier.NewQueryMask(n)
		active := union.Sparse()
		if tr != nil {
			TraceRegionScan(tr, addr.unionCur, int64(len(union.Words()))*8)
		}
		pool.For(len(active), workers, 0, func(lo, hi int) {
			var edges, relaxes, writes int64
			for ai := lo; ai < hi; ai++ {
				v := active[ai]
				base := int(v) * st.VStride
				mask := qm.Get(v)
				if tr != nil {
					tr.Access(addr.qmaskCur+int64(v)*8, 8, false)
				}
				if mask == 0 {
					continue
				}
				if tr != nil {
					tr.Access(addr.offsets+int64(v)*4, 8, false)
					tr.Access(addr.values+int64(base)*8, int64(b)*8, false)
				}
				nbrs, ws := g.OutEdges(v)
				for j, d := range nbrs {
					edges++
					w := graph.Weight(1)
					if ws != nil {
						w = ws[j]
					}
					dbase := int(d) * st.VStride
					if tr != nil {
						eo := int64(g.Offsets[v]) + int64(j)
						addr.TraceEdgeRead(tr, g, eo)
					}
					anyImproved := false
					for m := mask; m != 0; m &= m - 1 {
						i := bits.TrailingZeros64(m)
						relaxes++
						if tr != nil {
							tr.Access(addr.values+int64(dbase+i)*8, 8, false)
						}
						if queries.RelaxImprove(st.Vals, kinds[i], st.Kernels[i], dbase+st.LaneOff[i], st.Vals.Get(base+st.LaneOff[i]), w) {
							writes++
							anyImproved = true
							nextQM.Set(d, i)
							nextUnion.AddSync(d)
							if tr != nil {
								tr.Access(addr.values+int64(dbase+i)*8, 8, true)
							}
						}
					}
					if tr != nil && anyImproved {
						tr.Access(addr.qmaskNext+int64(d)*8, 8, true)
						tr.Access(addr.unionNext+int64(d>>6)*8, 8, true)
					}
				}
			}
			atomic.AddInt64(&res.EdgesProcessed, edges)
			atomic.AddInt64(&res.LaneRelaxations, relaxes)
			atomic.AddInt64(&res.ValueWrites, writes)
		})
		union = nextUnion
		qm = nextQM
		if opt.Telemetry != nil {
			recordIteration(opt.Telemetry, st, res, iter, frontierSize, telemetry.ModePush, injected, prev)
		}
		if tr != nil {
			addr.SwapFrontiers()
		}
	}
	return res, nil
}
