package core

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/queries"
	"github.com/glign/glign/internal/telemetry"
)

// TestConcurrentBatchStress drives several batches through the concurrent
// engines at once — sharing one graph, one reverse graph and one telemetry
// collector — across GOMAXPROCS 1, 2 and 8. Its job is to give the race
// detector (verify.sh runs this package under -race) real interleavings to
// bite on: CAS relaxations, frontier unions, telemetry recording and the
// BatchResult counter protocol all run concurrently here.
func TestConcurrentBatchStress(t *testing.T) {
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	rev := g.Reverse()
	col := telemetry.NewCollector()

	// Per-engine reference values, computed once up front (sequentially via
	// Ligra-S) so every concurrent run can be checked for correctness too.
	batch := []queries.Query{
		{Kernel: queries.SSSP, Source: 1},
		{Kernel: queries.BFS, Source: 3},
		{Kernel: queries.SSWP, Source: 5},
		{Kernel: queries.SSNP, Source: 7},
	}
	want, err := LigraS.Run(g, batch, Options{})
	if err != nil {
		t.Fatal(err)
	}

	engines := []Engine{LigraC, Krill, GlignIntra}
	for _, procs := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("gomaxprocs=%d", procs), func(t *testing.T) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)

			run := col.StartRun("stress", "none")
			var wg sync.WaitGroup
			const repeats = 3
			for rep := 0; rep < repeats; rep++ {
				for _, e := range engines {
					wg.Add(1)
					go func(e Engine, rep int) {
						defer wg.Done()
						opt := Options{
							Workers:   2 + rep,
							Telemetry: run.StartBatch(e.Name(), nil, nil),
						}
						if e.Name() == GlignIntra.Name() {
							opt.ReverseGraph = rev
						}
						res, err := e.Run(g, batch, opt)
						if err != nil {
							t.Errorf("%s: %v", e.Name(), err)
							return
						}
						for qi := range batch {
							for v := 0; v < g.NumVertices(); v++ {
								got := res.Value(qi, graph.VertexID(v))
								if got != want.Value(qi, graph.VertexID(v)) {
									t.Errorf("%s rep %d: query %d vertex %d = %v, want %v",
										e.Name(), rep, qi, v, got, want.Value(qi, graph.VertexID(v)))
									return
								}
							}
						}
					}(e, rep)
				}
			}
			wg.Wait()

			// The shared collector must have absorbed every batch without
			// losing or corrupting counts.
			m := run.Snapshot()
			if len(m.Batches) != repeats*len(engines) {
				t.Errorf("collector saw %d batches, want %d", len(m.Batches), repeats*len(engines))
			}
			for _, b := range m.Batches {
				if len(b.Iterations) == 0 {
					t.Errorf("batch %s recorded no iterations", b.Engine)
				}
				for _, it := range b.Iterations {
					if it.EdgesProcessed < 0 {
						t.Errorf("batch %s has corrupt iteration counter %d", b.Engine, it.EdgesProcessed)
					}
				}
			}
		})
	}
}
