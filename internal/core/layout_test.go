package core

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/memtrace"
	"github.com/glign/glign/internal/queries"
)

func TestLayoutGeometry(t *testing.T) {
	const n, b = 100, 8

	vstride, laneOff, total := layoutGeometry(LayoutInterleaved, n, b)
	if vstride != b || total != n*b {
		t.Fatalf("interleaved: vstride=%d total=%d, want %d and %d", vstride, total, b, n*b)
	}
	for i, off := range laneOff {
		if off != i {
			t.Fatalf("interleaved: LaneOff[%d]=%d, want %d", i, off, i)
		}
	}

	vstride, laneOff, total = layoutGeometry(LayoutPadded, n, b)
	stride := laneStrideFor(n)
	if stride%8 != 0 || stride < n {
		t.Fatalf("laneStrideFor(%d)=%d: want a multiple of 8 cells >= n", n, stride)
	}
	if vstride != 1 || total != stride*b {
		t.Fatalf("padded: vstride=%d total=%d, want 1 and %d", vstride, total, stride*b)
	}
	for i, off := range laneOff {
		if off != i*stride {
			t.Fatalf("padded: LaneOff[%d]=%d, want %d", i, off, i*stride)
		}
		// 8 cells x 8 bytes: every lane segment starts on a 64-byte line.
		if off%8 != 0 {
			t.Fatalf("padded: LaneOff[%d]=%d not cache-line aligned", i, off)
		}
	}
	// Lane segments must not overlap: lane i owns [i*stride, i*stride+n).
	for i := 1; i < b; i++ {
		if laneOff[i-1]+n > laneOff[i] {
			t.Fatalf("padded: lanes %d and %d overlap", i-1, i)
		}
	}
}

func TestTracerForcesInterleavedLayout(t *testing.T) {
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	batch := []queries.Query{{Kernel: queries.BFS, Source: 1}, {Kernel: queries.SSSP, Source: 2}}

	st, err := PrepareBatch(g, batch, Options{Tracer: &memtrace.CountingTracer{}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Layout != LayoutInterleaved || st.VStride != st.B {
		t.Fatalf("tracer run resolved layout %v (vstride %d); the simulated address stream must stay interleaved",
			st.Layout, st.VStride)
	}

	st, err = PrepareBatch(g, batch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Layout != LayoutPadded || st.VStride != 1 {
		t.Fatalf("untraced run resolved layout %v (vstride %d), want padded", st.Layout, st.VStride)
	}
}

// TestLayoutEquivalenceAcrossEngines pins bitwise-equal results between the
// padded and interleaved layouts for every concurrent engine, on monotone and
// iterate-to-convergence batches.
func TestLayoutEquivalenceAcrossEngines(t *testing.T) {
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	monotone := []queries.Query{
		{Kernel: queries.SSSP, Source: 1},
		{Kernel: queries.BFS, Source: 3},
		{Kernel: queries.SSWP, Source: 5},
		{Kernel: queries.SSNP, Source: 7},
	}
	pr, err := queries.ByName("PageRank")
	if err != nil {
		t.Fatal(err)
	}
	convergent := []queries.Query{
		{Kernel: pr, Source: 0},
		{Kernel: pr, Source: 2},
	}

	for _, e := range []Engine{GlignIntra, LigraC, Krill, LigraS} {
		for name, batch := range map[string][]queries.Query{"monotone": monotone, "convergence": convergent} {
			t.Run(fmt.Sprintf("%s/%s", e.Name(), name), func(t *testing.T) {
				ref, err := e.Run(g, batch, Options{Workers: 1, Layout: LayoutInterleaved})
				if err != nil {
					t.Fatal(err)
				}
				got, err := e.Run(g, batch, Options{Workers: 2, Layout: LayoutPadded})
				if err != nil {
					t.Fatal(err)
				}
				for qi := range batch {
					rv := ref.QueryValues(qi)
					gv := got.QueryValues(qi)
					for v := range rv {
						if gv[v] != rv[v] {
							t.Fatalf("query %d vertex %d: padded %v != interleaved %v", qi, v, gv[v], rv[v])
						}
					}
				}
			})
		}
	}
}

// TestPaddedLayoutStress is the race-detector stress for the padded per-lane
// layout: an 8-lane batch hammered concurrently by all CAS engines across
// GOMAXPROCS 1, 2 and 8, every run checked bitwise against the serial
// interleaved reference. verify.sh runs this package under -race.
func TestPaddedLayoutStress(t *testing.T) {
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	batch := []queries.Query{
		{Kernel: queries.SSSP, Source: 1},
		{Kernel: queries.BFS, Source: 3},
		{Kernel: queries.SSWP, Source: 5},
		{Kernel: queries.SSNP, Source: 7},
		{Kernel: queries.SSSP, Source: 11},
		{Kernel: queries.BFS, Source: 13},
		{Kernel: queries.SSWP, Source: 17},
		{Kernel: queries.BFS, Source: 19},
	}
	if len(batch) != 8 {
		t.Fatal("stress batch must have 8 lanes")
	}
	want, err := GlignIntra.Run(g, batch, Options{Workers: 1, Layout: LayoutInterleaved})
	if err != nil {
		t.Fatal(err)
	}

	engines := []Engine{GlignIntra, LigraC, Krill}
	for _, procs := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("gomaxprocs=%d", procs), func(t *testing.T) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)

			var wg sync.WaitGroup
			for rep := 0; rep < 3; rep++ {
				for _, e := range engines {
					wg.Add(1)
					go func(e Engine, rep int) {
						defer wg.Done()
						res, err := e.Run(g, batch, Options{Workers: 2 + rep, Layout: LayoutPadded})
						if err != nil {
							t.Errorf("%s: %v", e.Name(), err)
							return
						}
						for qi := range batch {
							for v := 0; v < g.NumVertices(); v++ {
								got := res.Value(qi, graph.VertexID(v))
								if got != want.Value(qi, graph.VertexID(v)) {
									t.Errorf("%s rep %d: query %d vertex %d = %v, want %v",
										e.Name(), rep, qi, v, got, want.Value(qi, graph.VertexID(v)))
									return
								}
							}
						}
					}(e, rep)
				}
			}
			wg.Wait()
		})
	}
}
