package cachesim

import (
	"fmt"
	"math/bits"
)

// Config describes a cache.
type Config struct {
	// SizeBytes is total capacity; must be a multiple of LineSize*Ways.
	SizeBytes int64
	// Ways is the associativity.
	Ways int
	// LineSize is the cache-line size in bytes (power of two).
	LineSize int64
}

// DefaultLLC returns the scaled-down last-level cache used throughout the
// experiment harness.
func DefaultLLC() Config {
	return Config{SizeBytes: 2 << 20, Ways: 16, LineSize: 64}
}

// Stats summarizes a simulation.
type Stats struct {
	Accesses int64
	Hits     int64
	Misses   int64
	Writes   int64
}

// MissRate returns Misses/Accesses (0 for an empty run).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a set-associative LRU cache. It implements memtrace.Tracer.
// It is not safe for concurrent use; tracing runs are single-threaded.
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   int64
	// sets[s] holds up to Ways line tags in LRU order: index 0 is the most
	// recently used. Tags are full line addresses (addr >> lineShift).
	sets  [][]int64
	stats Stats
}

// New builds a cache from cfg. It panics on invalid geometry (caller
// configuration is compile-time constant in practice); use Validate to
// check dynamic configurations.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nSets := cfg.SizeBytes / (cfg.LineSize * int64(cfg.Ways))
	c := &Cache{
		cfg:       cfg,
		lineShift: uint(bits.TrailingZeros64(uint64(cfg.LineSize))),
		setMask:   nSets - 1,
		sets:      make([][]int64, nSets),
	}
	for i := range c.sets {
		c.sets[i] = make([]int64, 0, cfg.Ways)
	}
	return c
}

// Validate checks the geometry: positive power-of-two line size, positive
// ways, size a power-of-two multiple of LineSize*Ways.
func (cfg Config) Validate() error {
	if cfg.LineSize <= 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		return fmt.Errorf("cachesim: line size %d not a positive power of two", cfg.LineSize)
	}
	if cfg.Ways <= 0 {
		return fmt.Errorf("cachesim: ways %d must be positive", cfg.Ways)
	}
	wayBytes := cfg.LineSize * int64(cfg.Ways)
	if cfg.SizeBytes <= 0 || cfg.SizeBytes%wayBytes != 0 {
		return fmt.Errorf("cachesim: size %d not a multiple of line*ways=%d", cfg.SizeBytes, wayBytes)
	}
	nSets := cfg.SizeBytes / wayBytes
	if nSets&(nSets-1) != 0 {
		return fmt.Errorf("cachesim: set count %d not a power of two", nSets)
	}
	return nil
}

// Access implements memtrace.Tracer: it touches every line overlapped by
// [addr, addr+size).
func (c *Cache) Access(addr int64, size int64, write bool) {
	if size <= 0 {
		size = 1
	}
	first := addr >> c.lineShift
	last := (addr + size - 1) >> c.lineShift
	for line := first; line <= last; line++ {
		c.touch(line, write)
	}
}

func (c *Cache) touch(line int64, write bool) {
	c.stats.Accesses++
	if write {
		c.stats.Writes++
	}
	set := c.sets[line&c.setMask]
	for i, tag := range set {
		if tag == line {
			// Hit: move to front.
			copy(set[1:i+1], set[:i])
			set[0] = line
			c.stats.Hits++
			return
		}
	}
	// Miss: insert at front, evicting LRU if full.
	c.stats.Misses++
	if len(set) < c.cfg.Ways {
		set = append(set, 0)
	}
	copy(set[1:], set)
	set[0] = line
	c.sets[line&c.setMask] = set
}

// Stats returns the counters so far.
func (c *Cache) Stats() Stats { return c.stats }

// Misses returns the miss count so far.
func (c *Cache) Misses() int64 { return c.stats.Misses }

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
	c.stats = Stats{}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }
