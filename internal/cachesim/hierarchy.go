package cachesim

import "github.com/glign/glign/internal/memtrace"

// Hierarchy chains cache levels: an access is served by the first level
// that hits; on a miss it is forwarded to the next level (inclusive-style
// fill: every level on the path installs the line). The last level's misses
// model DRAM traffic. This refines the single-LLC model when one wants the
// L2 filter the paper's hardware also had in front of its LLC; the
// experiment harness uses a single LLC by default, and the abl-hierarchy
// mode exposes the difference.
type Hierarchy struct {
	levels []*Cache
}

// NewHierarchy builds a hierarchy from level configurations, ordered
// closest-to-core first.
func NewHierarchy(cfgs ...Config) *Hierarchy {
	h := &Hierarchy{}
	for _, cfg := range cfgs {
		h.levels = append(h.levels, New(cfg))
	}
	return h
}

// DefaultHierarchy is a scaled two-level hierarchy: a small L2 in front of
// the default LLC.
func DefaultHierarchy() *Hierarchy {
	l2 := Config{SizeBytes: 128 << 10, Ways: 8, LineSize: 64}
	return NewHierarchy(l2, DefaultLLC())
}

// Access implements memtrace.Tracer.
func (h *Hierarchy) Access(addr int64, size int64, write bool) {
	if size <= 0 {
		size = 1
	}
	if len(h.levels) == 0 {
		return
	}
	shift := h.levels[0].lineShift
	first := addr >> shift
	last := (addr + size - 1) >> shift
	for line := first; line <= last; line++ {
		lineAddr := line << shift
		for _, c := range h.levels {
			wasMisses := c.stats.Misses
			c.Access(lineAddr, 1, write)
			if c.stats.Misses == wasMisses {
				break // hit at this level; inner levels already filled
			}
		}
	}
}

// Level returns the stats of level i (0 = closest to core).
func (h *Hierarchy) Level(i int) Stats { return h.levels[i].Stats() }

// Levels returns the number of levels.
func (h *Hierarchy) Levels() int { return len(h.levels) }

// MemoryAccesses returns the last level's miss count — the simulated DRAM
// traffic.
func (h *Hierarchy) MemoryAccesses() int64 {
	if len(h.levels) == 0 {
		return 0
	}
	return h.levels[len(h.levels)-1].Misses()
}

// Reset clears all levels.
func (h *Hierarchy) Reset() {
	for _, c := range h.levels {
		c.Reset()
	}
}

var _ memtrace.Tracer = (*Hierarchy)(nil)
