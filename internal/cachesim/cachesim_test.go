package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// tiny returns a 2-set, 2-way cache with 64-byte lines (256 bytes total).
func tiny() *Cache {
	return New(Config{SizeBytes: 256, Ways: 2, LineSize: 64})
}

func TestColdMissThenHit(t *testing.T) {
	c := tiny()
	c.Access(0, 8, false)
	c.Access(8, 8, false) // same line
	s := c.Stats()
	if s.Accesses != 2 || s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := tiny()
	// Set 0 holds lines with (addr/64) even... with 2 sets, line L maps to
	// set L&1. Lines 0, 2, 4 all map to set 0; 2-way capacity.
	c.Access(0*64, 1, false) // miss, set0 = [0]
	c.Access(2*64, 1, false) // miss, set0 = [2,0]
	c.Access(0*64, 1, false) // hit,  set0 = [0,2]
	c.Access(4*64, 1, false) // miss, evicts LRU line 2; set0 = [4,0]
	c.Access(0*64, 1, false) // hit
	c.Access(2*64, 1, false) // miss (was evicted)
	s := c.Stats()
	if s.Misses != 4 || s.Hits != 2 {
		t.Fatalf("stats = %+v, want 4 misses / 2 hits", s)
	}
}

func TestAccessSpanningLines(t *testing.T) {
	c := tiny()
	// 16 bytes starting at byte 56 straddles lines 0 and 1.
	c.Access(56, 16, true)
	s := c.Stats()
	if s.Accesses != 2 || s.Misses != 2 || s.Writes != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestZeroSizeAccessTouchesOneLine(t *testing.T) {
	c := tiny()
	c.Access(100, 0, false)
	if c.Stats().Accesses != 1 {
		t.Fatalf("stats = %+v", c.Stats())
	}
}

func TestWorkingSetWithinCapacityOnlyColdMisses(t *testing.T) {
	cfg := Config{SizeBytes: 4096, Ways: 4, LineSize: 64} // 64 lines
	c := New(cfg)
	rng := rand.New(rand.NewSource(1))
	// Touch 16 distinct lines (well within one way-group per set) many times.
	for i := 0; i < 10000; i++ {
		line := int64(rng.Intn(16))
		c.Access(line*64, 8, false)
	}
	s := c.Stats()
	if s.Misses != 16 {
		t.Fatalf("misses = %d, want 16 cold misses only", s.Misses)
	}
}

func TestStreamingLargerThanCacheMostlyMisses(t *testing.T) {
	c := New(DefaultLLC())
	// Stream 16 MiB twice: 8x the 2 MiB capacity, so the second pass also
	// misses everywhere (LRU has evicted the head by the time we wrap).
	total := int64(16 << 20)
	for pass := 0; pass < 2; pass++ {
		for addr := int64(0); addr < total; addr += 64 {
			c.Access(addr, 8, false)
		}
	}
	s := c.Stats()
	if s.Hits != 0 {
		t.Fatalf("streaming should never hit, got %d hits", s.Hits)
	}
}

func TestReset(t *testing.T) {
	c := tiny()
	c.Access(0, 8, false)
	c.Reset()
	if c.Stats() != (Stats{}) {
		t.Fatal("counters survive reset")
	}
	c.Access(0, 8, false)
	if c.Misses() != 1 {
		t.Fatal("contents survive reset")
	}
}

func TestMissRate(t *testing.T) {
	if (Stats{}).MissRate() != 0 {
		t.Fatal("empty miss rate")
	}
	s := Stats{Accesses: 4, Misses: 1}
	if s.MissRate() != 0.25 {
		t.Fatalf("miss rate = %v", s.MissRate())
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{SizeBytes: 256, Ways: 2, LineSize: 48},  // non-power-of-two line
		{SizeBytes: 256, Ways: 0, LineSize: 64},  // zero ways
		{SizeBytes: 200, Ways: 2, LineSize: 64},  // size not multiple
		{SizeBytes: 384, Ways: 2, LineSize: 64},  // 3 sets, not power of two
		{SizeBytes: 0, Ways: 2, LineSize: 64},    // empty
		{SizeBytes: 256, Ways: 2, LineSize: -64}, // negative line
	}
	for _, cfg := range bad {
		if cfg.Validate() == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
	if DefaultLLC().Validate() != nil {
		t.Fatal("default LLC invalid")
	}
	if New(DefaultLLC()).Config() != DefaultLLC() {
		t.Fatal("Config() accessor broken")
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New should panic on invalid geometry")
		}
	}()
	New(Config{SizeBytes: 100, Ways: 3, LineSize: 60})
}

// Properties: hits+misses == accesses; a fully-associative-equivalent
// reference model agrees with the set-associative model on a single-set
// configuration.
func TestQuickStatsConsistent(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := tiny()
		for _, a := range addrs {
			c.Access(int64(a), 8, a%3 == 0)
		}
		s := c.Stats()
		return s.Hits+s.Misses == s.Accesses && s.Misses >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Reference LRU for a single-set (fully associative) cache.
func TestQuickMatchesReferenceLRU(t *testing.T) {
	const ways = 4
	f := func(addrs []uint8) bool {
		c := New(Config{SizeBytes: 64 * ways, Ways: ways, LineSize: 64})
		var ref []int64 // MRU-first
		var refMisses int64
		for _, a := range addrs {
			line := int64(a) // one line per 64 bytes; addr = line*64
			c.Access(line*64, 1, false)
			found := -1
			for i, l := range ref {
				if l == line {
					found = i
					break
				}
			}
			if found >= 0 {
				ref = append([]int64{line}, append(ref[:found], ref[found+1:]...)...)
			} else {
				refMisses++
				ref = append([]int64{line}, ref...)
				if len(ref) > ways {
					ref = ref[:ways]
				}
			}
		}
		return c.Misses() == refMisses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
