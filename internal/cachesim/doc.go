// Package cachesim provides a set-associative LRU cache model that stands
// in for the perf LLC-miss counters of the paper's evaluation (see DESIGN.md
// §3). Engines replay their memory behaviour into a Cache via the
// memtrace.Tracer interface; the simulated miss counts expose exactly the
// locality effects Glign's alignments target: whether the graph data one
// query pulls into the cache is still resident when other queries touch it
// (the paper's Figure 4 / Table 10 measurements).
//
// The default configuration (2 MiB, 16-way, 64-byte lines) is the paper's
// 40 MB Xeon LLC scaled down in proportion to the synthetic graphs, so that
// "working set well beyond cache capacity" continues to hold. Replays run
// single-threaded for a deterministic access stream, which is why the
// benchmark harness times runs and traces them separately.
package cachesim
