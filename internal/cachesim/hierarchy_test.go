package cachesim

import "testing"

func TestHierarchyFilter(t *testing.T) {
	// L1: 2 lines; L2: 8 lines (both fully associative single-set).
	h := NewHierarchy(
		Config{SizeBytes: 128, Ways: 2, LineSize: 64},
		Config{SizeBytes: 512, Ways: 8, LineSize: 64},
	)
	// Touch 4 distinct lines twice. First pass: 4 misses at both levels.
	// Second pass: L1 (2 lines) evicted lines 0,1 -> misses again; but L2
	// holds all 4 -> L2 sees only the L1 misses and hits them all.
	for pass := 0; pass < 2; pass++ {
		for line := int64(0); line < 4; line++ {
			h.Access(line*64, 8, false)
		}
	}
	l1, l2 := h.Level(0), h.Level(1)
	if l1.Misses != 8 { // never hits: working set 4 > capacity 2
		t.Fatalf("L1 misses = %d, want 8", l1.Misses)
	}
	if l2.Accesses != 8 { // only L1 misses reach L2
		t.Fatalf("L2 accesses = %d, want 8", l2.Accesses)
	}
	if l2.Misses != 4 || l2.Hits != 4 {
		t.Fatalf("L2 = %+v, want 4 misses / 4 hits", l2)
	}
	if h.MemoryAccesses() != 4 {
		t.Fatalf("DRAM accesses = %d, want 4", h.MemoryAccesses())
	}
}

func TestHierarchyHitStopsPropagation(t *testing.T) {
	h := NewHierarchy(
		Config{SizeBytes: 256, Ways: 4, LineSize: 64},
		Config{SizeBytes: 1024, Ways: 4, LineSize: 64},
	)
	h.Access(0, 8, false)
	h.Access(0, 8, false) // L1 hit: must not reach L2
	if h.Level(1).Accesses != 1 {
		t.Fatalf("L2 accesses = %d, want 1", h.Level(1).Accesses)
	}
}

func TestHierarchySpanningAccess(t *testing.T) {
	h := DefaultHierarchy()
	h.Access(60, 16, true) // spans two lines
	if h.Level(0).Accesses != 2 {
		t.Fatalf("L1 accesses = %d, want 2", h.Level(0).Accesses)
	}
	if h.Levels() != 2 {
		t.Fatalf("levels = %d", h.Levels())
	}
}

func TestHierarchyReset(t *testing.T) {
	h := DefaultHierarchy()
	h.Access(0, 8, false)
	h.Reset()
	if h.Level(0).Accesses != 0 || h.MemoryAccesses() != 0 {
		t.Fatal("reset failed")
	}
}

func TestEmptyHierarchy(t *testing.T) {
	h := NewHierarchy()
	h.Access(0, 8, false) // must not panic
	if h.MemoryAccesses() != 0 {
		t.Fatal("empty hierarchy reports traffic")
	}
	h.Access(0, 0, false)
}
