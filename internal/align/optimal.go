package align

// OptimalAlignment exhaustively searches alignment vectors (every query
// delayed by 0..maxShift global iterations, with at least one query
// starting at 0) and returns the vector maximizing vertex-based affinity,
// together with that affinity. This is the ground truth of the paper's
// Table 13 study; it is exponential in the batch size and intended for
// small batches (the paper uses pairs).
func OptimalAlignment(traces []*Trace, maxShift int) ([]int, float64) {
	b := len(traces)
	if b == 0 {
		return nil, 0
	}
	best := make([]int, b)
	bestAff := Affinity(traces, best)
	cur := make([]int, b)
	var rec func(i int)
	rec = func(i int) {
		if i == b {
			if !hasZero(cur) {
				return // normalized vectors only: delaying everyone is redundant
			}
			if a := Affinity(traces, cur); a > bestAff {
				bestAff = a
				copy(best, cur)
			}
			return
		}
		for s := 0; s <= maxShift; s++ {
			cur[i] = s
			rec(i + 1)
		}
	}
	rec(0)
	return best, bestAff
}

func hasZero(v []int) bool {
	for _, x := range v {
		if x == 0 {
			return true
		}
	}
	return false
}

// RelativeShift reduces a 2-query alignment vector to the signed delay of
// query 0 relative to query 1, the quantity compared between heuristic and
// optimal alignments in the Table 13 ground-truth study.
func RelativeShift(I []int) int {
	if len(I) != 2 {
		panic("align: RelativeShift requires a 2-query alignment")
	}
	return I[0] - I[1]
}

// AbsDiff returns |a-b|, the "Diff" column of Table 13.
func AbsDiff(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}
