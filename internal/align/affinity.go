package align

import (
	"github.com/glign/glign/internal/engine"
	"github.com/glign/glign/internal/frontier"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/queries"
)

// Trace is the per-iteration frontier history of one query evaluated
// independently — the raw material of the affinity metric and of the
// ground-truth alignment study.
type Trace struct {
	Query queries.Query
	// Frontiers[j] is the frontier entering (local) iteration j.
	Frontiers []*frontier.Subset
	// Sizes[j] == Frontiers[j].Count(), precomputed.
	Sizes []int
	// EdgeSizes[j] is the total out-degree of Frontiers[j] (the "active
	// edges" of the paper's alternative edge-based affinity).
	EdgeSizes []int64
}

// TraceQuery evaluates q on g and records its frontier history.
func TraceQuery(g *graph.Graph, q queries.Query, workers int) *Trace {
	res := engine.Run(g, q, engine.Options{Workers: workers, RecordFrontiers: true})
	tr := &Trace{Query: q, Frontiers: res.Frontiers, Sizes: res.FrontierSizes}
	tr.EdgeSizes = make([]int64, len(tr.Frontiers))
	for j, f := range tr.Frontiers {
		var sum int64
		f.ForEach(func(v graph.VertexID) { sum += int64(g.OutDegree(v)) })
		tr.EdgeSizes[j] = sum
	}
	return tr
}

// TraceBatch traces every query of a batch independently.
func TraceBatch(g *graph.Graph, batch []queries.Query, workers int) []*Trace {
	traces := make([]*Trace, len(batch))
	for i, q := range batch {
		traces[i] = TraceQuery(g, q, workers)
	}
	return traces
}

// HeavyArrivalFromTrace returns the first local iteration at which any of
// hubs appears in the trace's frontier, or -1 if none ever does. For
// frontier-propagating monotone kernels this equals the hop distance from
// the query source to the nearest hub — the correlation Glign's heuristic
// rests on (paper Table 4).
func HeavyArrivalFromTrace(tr *Trace, hubs []graph.VertexID) int {
	for j, f := range tr.Frontiers {
		for _, h := range hubs {
			if f.Contains(h) {
				return j
			}
		}
	}
	return -1
}

// Affinity computes the vertex-based affinity of Definition 3.4 for a batch
// whose queries' frontier histories are traces, evaluated under alignment
// vector I (I[i] = global iteration at which query i starts):
//
//	Affinity = 1 - Σ_j |Frontier_union^j| / Σ_j Σ_i |Frontier_i^j|
//
// The best affinity, approached when the separate frontiers perfectly
// overlap, is 1 - 1/B; the metric is 0 when no frontiers ever overlap (and
// exactly 0 for a single-query batch, whose union is its own frontier).
func Affinity(traces []*Trace, I []int) float64 {
	unionSum, sepSum := affinitySums(traces, I, false, nil)
	if sepSum == 0 {
		return 0
	}
	return 1 - float64(unionSum)/float64(sepSum)
}

// AffinityEdges is the edge-based variant (§3.3 "alternatively"): frontier
// sizes are weighted by out-degree, i.e. the number of active edges.
func AffinityEdges(traces []*Trace, I []int, g *graph.Graph) float64 {
	unionSum, sepSum := affinitySums(traces, I, true, g)
	if sepSum == 0 {
		return 0
	}
	return 1 - float64(unionSum)/float64(sepSum)
}

// affinitySums computes Σ|union| and ΣΣ|separate| over all global
// iterations, in vertices (edgeBased=false) or active out-edges.
func affinitySums(traces []*Trace, I []int, edgeBased bool, g *graph.Graph) (int64, int64) {
	if len(traces) == 0 {
		return 0, 0
	}
	n := traces[0].Frontiers[0].Universe()
	K := 0
	for i, tr := range traces {
		if end := I[i] + len(tr.Frontiers); end > K {
			K = end
		}
	}
	var unionSum, sepSum int64
	union := frontier.New(n)
	for j := 0; j < K; j++ {
		union.Clear()
		liveCount := 0
		var only *frontier.Subset
		for i, tr := range traces {
			lj := j - I[i]
			if lj < 0 || lj >= len(tr.Frontiers) {
				continue
			}
			liveCount++
			only = tr.Frontiers[lj]
			if edgeBased {
				sepSum += tr.EdgeSizes[lj]
			} else {
				sepSum += int64(tr.Sizes[lj])
			}
		}
		switch {
		case liveCount == 0:
			continue
		case liveCount == 1:
			// Fast path: union equals the single live frontier.
			if edgeBased {
				var sum int64
				only.ForEach(func(v graph.VertexID) { sum += int64(g.OutDegree(v)) })
				unionSum += sum
			} else {
				unionSum += int64(only.Count())
			}
		default:
			for i, tr := range traces {
				lj := j - I[i]
				if lj < 0 || lj >= len(tr.Frontiers) {
					continue
				}
				union.UnionWith(tr.Frontiers[lj])
			}
			if edgeBased {
				var sum int64
				union.ForEach(func(v graph.VertexID) { sum += int64(g.OutDegree(v)) })
				unionSum += sum
			} else {
				unionSum += int64(union.Count())
			}
		}
	}
	return unionSum, sepSum
}
