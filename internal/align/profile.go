package align

import (
	"time"

	"github.com/glign/glign/internal/engine"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/queries"
)

// DefaultHubCount is the paper's K: the number of high-degree vertices
// probed (top-4 throughout the evaluation section).
const DefaultHubCount = 4

// Profile is the per-graph precompute of paper Figure 9 (lines 1-5): the
// top-K high-out-degree vertices, the least hop count from every vertex to
// each hub (computed by BFS on the edge-reversed graph), and the derived
// closestHV array. It is built once when a graph is loaded and shared by
// inter-iteration alignment and affinity-oriented batching.
type Profile struct {
	// Hubs are the top-K vertices by out-degree.
	Hubs []graph.VertexID
	// LeastHops[h][v] is the minimum number of hops from v to Hubs[h]
	// following forward edges (-1 if the hub is unreachable from v).
	LeastHops [][]int32
	// ClosestHV[v] is min over hubs of LeastHops[h][v] (-1 if no hub is
	// reachable from v) — the estimated arrival time of v's heavy
	// iterations when v is used as a query source.
	ClosestHV []int32
	// PrepTime is the wall-clock cost of building the profile (paper
	// Table 14's "profiling cost").
	PrepTime time.Duration
	// Rev is the edge-reversed graph built for the hub BFS runs, retained
	// because the direction-optimized engines reuse it for pull iterations.
	Rev *graph.Graph
}

// NewProfile builds the alignment profile of g using the top-k hubs
// (k <= 0 selects DefaultHubCount).
func NewProfile(g *graph.Graph, k, workers int) *Profile {
	start := time.Now()
	if k <= 0 {
		k = DefaultHubCount
	}
	p := &Profile{Hubs: g.TopOutDegreeVertices(k)}
	// For directed graphs the BFS must run on the edge-reversed graph: we
	// need hops *to* the hub, not from it (paper §3.3). Undirected graphs
	// are symmetric, but Reverse returns an equivalent copy either way.
	p.Rev = g.Reverse()
	n := g.NumVertices()
	p.LeastHops = make([][]int32, len(p.Hubs))
	for hi, h := range p.Hubs {
		p.LeastHops[hi] = engine.BFSHops(p.Rev, h, workers)
	}
	p.ClosestHV = make([]int32, n)
	for v := 0; v < n; v++ {
		best := int32(-1)
		for hi := range p.Hubs {
			if d := p.LeastHops[hi][v]; d >= 0 && (best < 0 || d < best) {
				best = d
			}
		}
		p.ClosestHV[v] = best
	}
	p.PrepTime = time.Since(start)
	return p
}

// ArrivalEstimate returns the estimated heavy-iteration arrival time of a
// query starting at src: the least hops to the closest hub, or 0 when no
// hub is reachable (such a query never develops heavy iterations, so it is
// started immediately and excluded from the batch's latest-arrival
// computation).
func (p *Profile) ArrivalEstimate(src graph.VertexID) int {
	if d := p.ClosestHV[src]; d >= 0 {
		return int(d)
	}
	return 0
}

// AlignmentVector computes the alignment vector I for a batch (paper
// Figure 9, lines 8-13): every query is delayed by the difference between
// the batch's latest heavy-iteration arrival and its own, so that all heavy
// iterations land on the same global iteration.
func (p *Profile) AlignmentVector(batch []queries.Query) []int {
	latest := 0
	arrivals := make([]int, len(batch))
	for i, q := range batch {
		arrivals[i] = p.ArrivalEstimate(q.Source)
		if arrivals[i] > latest {
			latest = arrivals[i]
		}
	}
	I := make([]int, len(batch))
	for i := range batch {
		I[i] = latest - arrivals[i]
	}
	return I
}

// MemoryBytes reports the profile's resident size (LeastHops dominates).
func (p *Profile) MemoryBytes() int64 {
	var b int64
	for _, lh := range p.LeastHops {
		b += int64(len(lh)) * 4
	}
	return b + int64(len(p.ClosestHV))*4 + int64(len(p.Hubs))*4
}
