// Package align implements Glign's inter-iteration alignment machinery
// (paper §3.3): the one-time per-graph profile (reverse BFS from the top-K
// high-out-degree hubs), the heavy-iteration arrival estimate closestHV[],
// the alignment-vector heuristic of Figure 9, the affinity metric of
// Definition 3.4 (vertex- and edge-based), and the exhaustive ground-truth
// optimal alignment used by the paper's Table 13 study.
//
// The profile is built once per graph and shared by everything downstream:
// internal/sched ranks queries by closestHV for affinity-oriented batching
// (§3.4), internal/systems turns per-batch estimates into the alignment
// vectors the core engines honor as delayed starts, and internal/workload
// uses the hub distances for hop-bin source sampling (§4.1). The alignment
// offsets chosen here surface in telemetry as the delayed_queries /
// delay_offset_sum counters and each batch's alignment vector (see
// OBSERVABILITY.md).
package align
