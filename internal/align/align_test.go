package align

import (
	"math"
	"math/rand"
	"testing"

	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/queries"
)

func paperTraces(t *testing.T) (*graph.Graph, []*Trace) {
	t.Helper()
	g := graph.PaperExample()
	batch := []queries.Query{
		{Kernel: queries.SSSP, Source: 1}, // sssp(v2)
		{Kernel: queries.SSSP, Source: 7}, // sssp(v8)
	}
	return g, TraceBatch(g, batch, 1)
}

// Paper §3.3 computes, for the batch [sssp(v2), sssp(v8)] on the Figure 3
// graph: Affinity = 1/9 under I=[0,0] (Table 2 interleaving) and 1/3 under
// I=[2,0] (Table 3 interleaving). Reproduce both numbers exactly.
func TestPaperAffinityValues(t *testing.T) {
	_, traces := paperTraces(t)
	if got := Affinity(traces, []int{0, 0}); math.Abs(got-1.0/9.0) > 1e-12 {
		t.Fatalf("Affinity(I=[0,0]) = %v, want 1/9", got)
	}
	if got := Affinity(traces, []int{2, 0}); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("Affinity(I=[2,0]) = %v, want 1/3", got)
	}
}

// The exhaustive search must discover the paper's I=[2,0] as the optimal
// alignment of that pair.
func TestOptimalAlignmentFindsPaperAlignment(t *testing.T) {
	_, traces := paperTraces(t)
	best, aff := OptimalAlignment(traces, 4)
	if best[0] != 2 || best[1] != 0 {
		t.Fatalf("optimal alignment = %v, want [2,0] (affinity %v)", best, aff)
	}
	if math.Abs(aff-1.0/3.0) > 1e-12 {
		t.Fatalf("optimal affinity = %v, want 1/3", aff)
	}
}

func TestAffinityIdenticalQueries(t *testing.T) {
	g := graph.PaperExample()
	q := queries.Query{Kernel: queries.SSSP, Source: 1}
	traces := TraceBatch(g, []queries.Query{q, q}, 1)
	// Two identical aligned traces: union == each individual frontier, so
	// affinity = 1 - 1/2.
	if got := Affinity(traces, []int{0, 0}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("affinity of identical pair = %v, want 0.5", got)
	}
	// Edge-based variant agrees in this degenerate case.
	if got := AffinityEdges(traces, []int{0, 0}, g); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("edge affinity of identical pair = %v, want 0.5", got)
	}
}

func TestAffinitySingleQueryIsZero(t *testing.T) {
	g := graph.PaperExample()
	traces := TraceBatch(g, []queries.Query{{Kernel: queries.BFS, Source: 0}}, 1)
	if got := Affinity(traces, []int{0}); got != 0 {
		t.Fatalf("single-query affinity = %v, want 0", got)
	}
}

func TestAffinityEmpty(t *testing.T) {
	if Affinity(nil, nil) != 0 {
		t.Fatal("empty batch affinity should be 0")
	}
}

func TestAffinityBounds(t *testing.T) {
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	rng := rand.New(rand.NewSource(21))
	var batch []queries.Query
	for i := 0; i < 6; i++ {
		batch = append(batch, queries.Query{Kernel: queries.SSSP,
			Source: graph.VertexID(rng.Intn(g.NumVertices()))})
	}
	traces := TraceBatch(g, batch, 2)
	for trial := 0; trial < 10; trial++ {
		I := make([]int, len(batch))
		for i := range I {
			I[i] = rng.Intn(5)
		}
		a := Affinity(traces, I)
		// Union >= largest individual frontier, so affinity < 1; it can be
		// negative only through oblivious-evaluation side effects, which
		// trace-based affinity does not model, so >= 0 here... union <=
		// sum of individuals gives affinity >= 0.
		if a < 0 || a >= 1 {
			t.Fatalf("affinity %v out of [0,1)", a)
		}
		ae := AffinityEdges(traces, I, g)
		if ae < 0 || ae >= 1 {
			t.Fatalf("edge affinity %v out of [0,1)", ae)
		}
	}
}

func TestProfilePaperExample(t *testing.T) {
	g := graph.PaperExample()
	p := NewProfile(g, 4, 1)
	if len(p.Hubs) != 4 {
		t.Fatalf("hubs = %v", p.Hubs)
	}
	// v3 (index 2) has the top out-degree, 4.
	if p.Hubs[0] != 2 {
		t.Fatalf("top hub = v%d, want v3", p.Hubs[0]+1)
	}
	// v2 (index 1) is itself a hub (out-degree 2, second-highest).
	if p.ClosestHV[1] != 0 {
		t.Fatalf("closestHV[v2] = %d, want 0 (v2 is a hub)", p.ClosestHV[1])
	}
	// v8 (index 7) reaches hub v4 in one hop.
	if p.ClosestHV[7] != 1 {
		t.Fatalf("closestHV[v8] = %d, want 1", p.ClosestHV[7])
	}
	// With top-4 hubs, v1 is itself the fourth hub (degree-1 ties break by
	// id), so its distance is 0; with top-3 hubs {v3,v2,v4} it reaches v3
	// in one hop.
	if p.ClosestHV[0] != 0 {
		t.Fatalf("closestHV[v1] = %d, want 0", p.ClosestHV[0])
	}
	p3 := NewProfile(g, 3, 1)
	if p3.ClosestHV[0] != 1 {
		t.Fatalf("top-3 closestHV[v1] = %d, want 1", p3.ClosestHV[0])
	}
	if p.PrepTime <= 0 {
		t.Fatal("prep time not recorded")
	}
	if p.MemoryBytes() <= 0 {
		t.Fatal("memory accounting broken")
	}
}

func TestAlignmentVectorMechanics(t *testing.T) {
	g := graph.PaperExample()
	p := NewProfile(g, 4, 1)
	batch := []queries.Query{
		{Kernel: queries.SSSP, Source: 1}, // arrival 0 (hub itself)
		{Kernel: queries.SSSP, Source: 7}, // arrival 1
	}
	I := p.AlignmentVector(batch)
	// latest = 1, so the early query is delayed by 1 and the late one by 0.
	if I[0] != 1 || I[1] != 0 {
		t.Fatalf("I = %v, want [1,0]", I)
	}
	// A batch of equal arrivals gets the zero vector.
	same := []queries.Query{
		{Kernel: queries.BFS, Source: 7},
		{Kernel: queries.BFS, Source: 7},
	}
	I = p.AlignmentVector(same)
	if I[0] != 0 || I[1] != 0 {
		t.Fatalf("I = %v, want [0,0]", I)
	}
}

// The heuristic's core claim (paper Table 4): the first activation of a hub
// in a query's actual frontier trace equals the hop distance from source to
// the nearest hub, for every kernel (activation propagates one hop per
// iteration regardless of weights).
func TestHeavyArrivalMatchesClosestHV(t *testing.T) {
	g := graph.MustGenerate(graph.TW, graph.Tiny)
	p := NewProfile(g, 4, 2)
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 10; trial++ {
		src := graph.VertexID(rng.Intn(g.NumVertices()))
		for _, k := range []queries.Kernel{queries.BFS, queries.SSSP} {
			tr := TraceQuery(g, queries.Query{Kernel: k, Source: src}, 2)
			got := HeavyArrivalFromTrace(tr, p.Hubs)
			want := int(p.ClosestHV[src])
			if p.ClosestHV[src] < 0 {
				if got != -1 {
					t.Fatalf("%s(v%d): unreachable hubs but arrival %d", k.Name(), src, got)
				}
				continue
			}
			if got != want {
				t.Fatalf("%s(v%d): trace arrival %d != closestHV %d", k.Name(), src, got, want)
			}
		}
	}
}

func TestUnreachableHubArrivalEstimate(t *testing.T) {
	// A two-component graph: hubs live in component A; sources in B never
	// reach them and must get estimate 0.
	b := graph.NewBuilder(8, true, true)
	// Component A: star around 0.
	for _, d := range []graph.VertexID{1, 2, 3} {
		b.AddEdge(0, d, 1)
		b.AddEdge(d, 0, 1)
	}
	// Component B: a 2-cycle.
	b.AddEdge(6, 7, 1)
	b.AddEdge(7, 6, 1)
	g := b.MustBuild()
	p := NewProfile(g, 1, 1)
	if p.Hubs[0] != 0 {
		t.Fatalf("hub = %d, want 0", p.Hubs[0])
	}
	if p.ClosestHV[6] != -1 {
		t.Fatalf("closestHV[6] = %d, want -1", p.ClosestHV[6])
	}
	if p.ArrivalEstimate(6) != 0 {
		t.Fatalf("arrival estimate = %d, want 0", p.ArrivalEstimate(6))
	}
	I := p.AlignmentVector([]queries.Query{
		{Kernel: queries.BFS, Source: 6},
		{Kernel: queries.BFS, Source: 1},
	})
	if I[0] != 1 || I[1] != 0 {
		t.Fatalf("I = %v, want [1,0]", I)
	}
}

func TestRelativeShiftAndAbsDiff(t *testing.T) {
	if RelativeShift([]int{2, 0}) != 2 || RelativeShift([]int{0, 3}) != -3 {
		t.Fatal("RelativeShift broken")
	}
	if AbsDiff(2, -3) != 5 || AbsDiff(-3, 2) != 5 || AbsDiff(1, 1) != 0 {
		t.Fatal("AbsDiff broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RelativeShift should panic on non-pair")
		}
	}()
	RelativeShift([]int{1})
}

func TestOptimalAlignmentNormalized(t *testing.T) {
	_, traces := paperTraces(t)
	best, _ := OptimalAlignment(traces, 3)
	if !hasZero(best) {
		t.Fatalf("optimal vector %v not normalized (no zero entry)", best)
	}
	if v, aff := OptimalAlignment(nil, 3); v != nil || aff != 0 {
		t.Fatal("empty input should return nil, 0")
	}
}

// Optimal affinity must dominate both the zero alignment and the heuristic
// alignment (it is a max over a superset).
func TestOptimalDominatesHeuristic(t *testing.T) {
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	p := NewProfile(g, 4, 2)
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 5; trial++ {
		batch := []queries.Query{
			{Kernel: queries.SSSP, Source: graph.VertexID(rng.Intn(g.NumVertices()))},
			{Kernel: queries.SSSP, Source: graph.VertexID(rng.Intn(g.NumVertices()))},
		}
		traces := TraceBatch(g, batch, 2)
		heur := p.AlignmentVector(batch)
		_, opt := OptimalAlignment(traces, 6)
		if a := Affinity(traces, heur); a > opt+1e-12 {
			t.Fatalf("heuristic affinity %v exceeds optimal %v", a, opt)
		}
		if a := Affinity(traces, []int{0, 0}); a > opt+1e-12 {
			t.Fatalf("zero affinity %v exceeds optimal %v", a, opt)
		}
	}
}
