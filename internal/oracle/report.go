package oracle

import (
	"encoding/json"
	"os"
)

// SchemaVersion identifies the report wire format.
const SchemaVersion = "glign.oracle/v1"

// GraphReport records the dataset-level checks of one generated graph.
type GraphReport struct {
	Graph      string      `json:"graph"`
	Checks     []string    `json:"checks"`
	Violations []Violation `json:"violations,omitempty"`
}

// CaseReport records the invariant checks of one (method, query) result.
type CaseReport struct {
	Graph      string      `json:"graph"`
	Method     string      `json:"method"`
	Query      string      `json:"query"`
	Invariants []string    `json:"invariants"`
	Violations []Violation `json:"violations,omitempty"`
}

// Report is the archived outcome of one oracle-harness sweep
// (results/oracle-report.json in verify.sh).
type Report struct {
	Schema          string        `json:"schema"`
	Graphs          []GraphReport `json:"graphs"`
	Cases           []CaseReport  `json:"cases"`
	TotalViolations int           `json:"total_violations"`
}

// NewReport returns an empty report with the current schema stamp.
func NewReport() *Report {
	return &Report{Schema: SchemaVersion}
}

// Finalize recounts TotalViolations from the recorded sections.
func (r *Report) Finalize() {
	total := 0
	for _, g := range r.Graphs {
		total += len(g.Violations)
	}
	for _, c := range r.Cases {
		total += len(c.Violations)
	}
	r.TotalViolations = total
}

// WriteFile finalizes the report and writes it as indented JSON.
func (r *Report) WriteFile(path string) error {
	r.Finalize()
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// InvariantNames lists the invariant identifiers a kernel's result is
// checked against — the Invariants column of a CaseReport.
func InvariantNames(invs []Invariant) []string {
	names := make([]string, len(invs))
	for i, inv := range invs {
		names[i] = inv.Name()
	}
	return names
}
