package oracle

import (
	"fmt"

	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/queries"
)

// Invariant is one independently-coded validity certificate over a query's
// result vector. Check returns nil when vals satisfies the invariant on g
// and a descriptive error naming the first witness otherwise.
type Invariant interface {
	// Name is the stable identifier recorded in violations and reports
	// ("sssp-triangle", "convergence-residual", ...).
	Name() string
	// Check certifies the result vector vals (one value per vertex) of
	// query q evaluated on g.
	Check(g *graph.Graph, q queries.Query, vals []queries.Value) error
}

// HopBounded is implemented by kernels whose traversal is truncated at a
// hop bound (queries.KHop); the bound selects the reachability oracles.
type HopBounded interface {
	HopBound() int
}

// Violation is one failed invariant check, ready for the JSON report.
type Violation struct {
	Invariant string `json:"invariant"`
	Query     string `json:"query"`
	Detail    string `json:"detail"`
}

// ForKernel returns the invariant set certifying results of kernel k:
// the generic monotone certificates (source value, fixed point,
// justification) plus the kernel-specific ones the shape of k's values
// admits, or the convergence certificates for iterate-to-convergence
// kernels.
func ForKernel(k queries.Kernel) []Invariant {
	if _, ok := queries.ConvergentOf(k); ok {
		invs := []Invariant{convergenceResidual{}}
		switch k.Name() {
		case queries.PageRank.Name():
			invs = append(invs, pagerankMass{})
		case queries.LabelProp.Name():
			invs = append(invs, labelpropValid{})
		}
		return invs
	}
	invs := []Invariant{sourceValue{}, fixedPoint{}, supported{}}
	if hb, ok := k.(HopBounded); ok {
		return append(invs, khopRange{k: hb.HopBound()}, khopReach{k: hb.HopBound()})
	}
	switch k.Name() {
	case queries.BFS.Name():
		invs = append(invs, bfsLevels{})
	case queries.SSSP.Name():
		invs = append(invs, ssspTriangle{})
	}
	return invs
}

// CheckResult runs every invariant of q's kernel against vals and returns
// the violations (empty means certified).
func CheckResult(g *graph.Graph, q queries.Query, vals []queries.Value) []Violation {
	if len(vals) != g.NumVertices() {
		return []Violation{{
			Invariant: "value-shape",
			Query:     q.String(),
			Detail:    fmt.Sprintf("result has %d values for an n=%d graph", len(vals), g.NumVertices()),
		}}
	}
	var out []Violation
	for _, inv := range ForKernel(q.Kernel) {
		if err := inv.Check(g, q, vals); err != nil {
			out = append(out, Violation{Invariant: inv.Name(), Query: q.String(), Detail: err.Error()})
		}
	}
	return out
}
