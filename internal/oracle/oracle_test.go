package oracle

import (
	"math"
	"sync"
	"testing"

	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/queries"
)

var (
	graphOnce sync.Once
	ljTiny    *graph.Graph
	roadTiny  *graph.Graph
)

func testGraphs(t *testing.T) (*graph.Graph, *graph.Graph) {
	t.Helper()
	graphOnce.Do(func() {
		ljTiny = graph.MustGenerate(graph.LJ, graph.Tiny)
		roadTiny = graph.MustGenerate(graph.RDCA, graph.Tiny)
	})
	return ljTiny, roadTiny
}

// goldenFor caches golden vectors per kernel name so the mutation table
// reuses one evaluation per kernel.
var (
	goldenMu    sync.Mutex
	goldenCache = map[string][]queries.Value{}
)

func golden(t *testing.T, g *graph.Graph, q queries.Query) []queries.Value {
	t.Helper()
	key := g.Name + "/" + q.String()
	goldenMu.Lock()
	defer goldenMu.Unlock()
	if v, ok := goldenCache[key]; ok {
		return v
	}
	v := GoldenValues(g, q)
	goldenCache[key] = v
	return v
}

func assertCertified(t *testing.T, g *graph.Graph, q queries.Query, vals []queries.Value) {
	t.Helper()
	if vio := CheckResult(g, q, vals); len(vio) != 0 {
		t.Fatalf("%s on %s: golden result violates its own invariants: %+v", q, g.Name, vio)
	}
}

// TestInvariantsCertifyGoldenResults pins the other half of the oracle
// contract: a correct result must produce zero violations for every kernel,
// monotone and convergent, on both graph families — an oracle that always
// fails is as useless as one that cannot.
func TestInvariantsCertifyGoldenResults(t *testing.T) {
	lj, road := testGraphs(t)
	kernels := queries.Monotone()
	for _, ck := range queries.Convergent() {
		kernels = append(kernels, ck)
	}
	for _, g := range []*graph.Graph{lj, road} {
		for _, k := range kernels {
			q := queries.Query{Kernel: k, Source: 1}
			assertCertified(t, g, q, golden(t, g, q))
		}
	}
}

// pickVictim returns a vertex with a finite value that is not the source.
func pickVictim(t *testing.T, vals []queries.Value, src graph.VertexID, pred func(v int, x queries.Value) bool) int {
	t.Helper()
	for v, x := range vals {
		if v == int(src) || math.IsInf(x, 1) || math.IsInf(x, -1) {
			continue
		}
		if pred == nil || pred(v, x) {
			return v
		}
	}
	t.Fatalf("no finite victim vertex found")
	return -1
}

func hasInvariant(vio []Violation, name string) bool {
	for _, v := range vio {
		if v.Invariant == name {
			return true
		}
	}
	return false
}

// TestMutationsAreCaught seeds one deliberate corruption per row into a
// golden result and asserts the named invariant detects it. Every invariant
// the harness relies on appears at least once as the expected catcher.
func TestMutationsAreCaught(t *testing.T) {
	lj, _ := testGraphs(t)
	cases := []struct {
		name   string
		kernel queries.Kernel
		mutate func(t *testing.T, q queries.Query, vals []queries.Value)
		expect string
	}{
		{
			name:   "bfs off-by-one level up",
			kernel: queries.BFS,
			mutate: func(t *testing.T, q queries.Query, vals []queries.Value) {
				v := pickVictim(t, vals, q.Source, func(_ int, x queries.Value) bool { return x > 0 })
				vals[v]++
			},
			expect: "bfs-levels",
		},
		{
			name:   "bfs level too good",
			kernel: queries.BFS,
			mutate: func(t *testing.T, q queries.Query, vals []queries.Value) {
				v := pickVictim(t, vals, q.Source, func(_ int, x queries.Value) bool { return x > 1 })
				vals[v]--
			},
			expect: "supported",
		},
		{
			name:   "bfs source corrupted",
			kernel: queries.BFS,
			mutate: func(t *testing.T, q queries.Query, vals []queries.Value) {
				vals[q.Source] = 2
			},
			expect: "source-value",
		},
		{
			name:   "sssp negative distance",
			kernel: queries.SSSP,
			mutate: func(t *testing.T, q queries.Query, vals []queries.Value) {
				v := pickVictim(t, vals, q.Source, nil)
				vals[v] = -1
			},
			expect: "sssp-triangle",
		},
		{
			name:   "sssp stale distance",
			kernel: queries.SSSP,
			mutate: func(t *testing.T, q queries.Query, vals []queries.Value) {
				v := pickVictim(t, vals, q.Source, func(_ int, x queries.Value) bool { return x > 0 })
				vals[v] += 0.5
			},
			expect: "sssp-triangle",
		},
		{
			name:   "sswp capacity degraded",
			kernel: queries.SSWP,
			mutate: func(t *testing.T, q queries.Query, vals []queries.Value) {
				v := pickVictim(t, vals, q.Source, func(_ int, x queries.Value) bool { return x > 0 })
				vals[v] *= 0.5
			},
			expect: "fixed-point",
		},
		{
			name:   "viterbi probability inflated",
			kernel: queries.Viterbi,
			mutate: func(t *testing.T, q queries.Query, vals []queries.Value) {
				// Viterbi's identity is 0, so "finite" is not enough: pick a
				// genuinely reached vertex and inflate it past any
				// justification.
				v := pickVictim(t, vals, q.Source, func(_ int, x queries.Value) bool { return x > 0 })
				vals[v] *= 1.5
			},
			expect: "supported",
		},
		{
			name:   "khop beyond the hop bound",
			kernel: queries.KHop(queries.DefaultKHopDepth),
			mutate: func(t *testing.T, q queries.Query, vals []queries.Value) {
				v := pickVictim(t, vals, q.Source, nil)
				vals[v] = queries.Value(queries.DefaultKHopDepth + 1)
			},
			expect: "khop-range",
		},
		{
			name:   "khop reachable vertex dropped",
			kernel: queries.KHop(queries.DefaultKHopDepth),
			mutate: func(t *testing.T, q queries.Query, vals []queries.Value) {
				v := pickVictim(t, vals, q.Source, func(_ int, x queries.Value) bool { return x > 0 })
				vals[v] = math.Inf(1)
			},
			expect: "khop-reach",
		},
		{
			name:   "pagerank mass shifted",
			kernel: queries.PageRank,
			mutate: func(t *testing.T, q queries.Query, vals []queries.Value) {
				v := pickVictim(t, vals, q.Source, nil)
				vals[v] *= 2
			},
			expect: "convergence-residual",
		},
		{
			name:   "pagerank negative rank",
			kernel: queries.PageRank,
			mutate: func(t *testing.T, q queries.Query, vals []queries.Value) {
				v := pickVictim(t, vals, q.Source, nil)
				vals[v] = -0.01
			},
			expect: "pagerank-mass",
		},
		{
			name:   "labelprop stale label",
			kernel: queries.LabelProp,
			mutate: func(t *testing.T, q queries.Query, vals []queries.Value) {
				// A vertex that adopted a smaller id reverts to its initial
				// own id — exactly the stale write a lost update produces.
				v := pickVictim(t, vals, q.Source, func(v int, x queries.Value) bool { return x < queries.Value(v) })
				vals[v] = queries.Value(v)
			},
			expect: "convergence-residual",
		},
		{
			name:   "labelprop label out of range",
			kernel: queries.LabelProp,
			mutate: func(t *testing.T, q queries.Query, vals []queries.Value) {
				v := pickVictim(t, vals, q.Source, nil)
				vals[v] = queries.Value(v) + 1
			},
			expect: "labelprop-valid",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := queries.Query{Kernel: tc.kernel, Source: 1}
			clean := golden(t, lj, q)
			vals := make([]queries.Value, len(clean))
			copy(vals, clean)
			tc.mutate(t, q, vals)
			vio := CheckResult(lj, q, vals)
			if len(vio) == 0 {
				t.Fatalf("corruption %q produced zero violations — the oracle cannot fail", tc.name)
			}
			if !hasInvariant(vio, tc.expect) {
				t.Fatalf("corruption %q: expected invariant %q among violations, got %+v", tc.name, tc.expect, vio)
			}
		})
	}
}

// TestValueShapeViolation pins the cheap dimension check that guards every
// other invariant.
func TestValueShapeViolation(t *testing.T) {
	lj, _ := testGraphs(t)
	q := queries.Query{Kernel: queries.BFS, Source: 1}
	vio := CheckResult(lj, q, make([]queries.Value, 3))
	if len(vio) != 1 || vio[0].Invariant != "value-shape" {
		t.Fatalf("short value vector: want one value-shape violation, got %+v", vio)
	}
}

// TestDatasetChecks certifies the generators and proves the dataset oracles
// can fail: each smoke check accepts its own family and rejects the other,
// and a seeded structural corruption trips CheckGraph.
func TestDatasetChecks(t *testing.T) {
	lj, road := testGraphs(t)
	if err := CheckGraph(lj); err != nil {
		t.Fatalf("CheckGraph(%s): %v", lj.Name, err)
	}
	if err := CheckGraph(road); err != nil {
		t.Fatalf("CheckGraph(%s): %v", road.Name, err)
	}
	if err := SmokeRMAT(lj); err != nil {
		t.Fatalf("SmokeRMAT(%s): %v", lj.Name, err)
	}
	if err := SmokeRoad(road); err != nil {
		t.Fatalf("SmokeRoad(%s): %v", road.Name, err)
	}
	if err := SmokeRoad(lj); err == nil {
		t.Fatalf("SmokeRoad accepted the power-law graph %s", lj.Name)
	}
	if err := SmokeRMAT(road); err == nil {
		t.Fatalf("SmokeRMAT accepted the road graph %s", road.Name)
	}

	// A directed edge set presented as undirected breaks degree symmetry.
	asym := *lj
	asym.Directed = false
	if err := CheckGraph(&asym); err == nil {
		t.Fatalf("CheckGraph accepted an asymmetric graph flagged undirected")
	}

	// A dangling CSR target must trip the structural check.
	broken := *road
	broken.Targets = append([]graph.VertexID(nil), road.Targets...)
	broken.Targets[0] = graph.VertexID(road.NumVertices() + 7)
	if err := CheckGraph(&broken); err == nil {
		t.Fatalf("CheckGraph accepted a dangling CSR target")
	}
}

// TestKHopDistancesGoldenWalk sanity-checks the golden walk itself on a
// hand-checkable structure: hop distances on the road grid from vertex 0.
func TestKHopDistancesGoldenWalk(t *testing.T) {
	_, road := testGraphs(t)
	const k = 2
	dist := KHopDistances(road, 0, k)
	if dist[0] != 0 {
		t.Fatalf("dist[src] = %d, want 0", dist[0])
	}
	seen := 0
	for v, d := range dist {
		if d < 0 {
			continue
		}
		seen++
		if d > k {
			t.Fatalf("dist[v%d] = %d exceeds the hop bound %d", v, d, k)
		}
		if d > 0 {
			// Some in-neighbor must sit exactly one hop closer.
			ok := false
			for _, u := range road.OutNeighbors(graph.VertexID(v)) {
				if dist[u] == d-1 {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("dist[v%d] = %d has no neighbor at distance %d", v, d, d-1)
			}
		}
	}
	if seen < 2 {
		t.Fatalf("golden walk reached only %d vertices", seen)
	}
}
