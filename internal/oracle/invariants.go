package oracle

import (
	"fmt"
	"math"

	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/queries"
)

// reverseView returns the graph to walk for in-neighbor scans: the graph
// itself when undirected (every stored arc has its mirror), the full edge
// reversal otherwise.
func reverseView(g *graph.Graph) *graph.Graph {
	if !g.Directed {
		return g
	}
	return g.Reverse()
}

// edgeWeight reads the weight of the j-th out-edge given the parallel
// weight slice (nil on unweighted graphs means weight 1, the same
// convention every engine applies).
func edgeWeight(ws []graph.Weight, j int) graph.Weight {
	if ws == nil {
		return 1
	}
	return ws[j]
}

// sourceValue certifies that the query's source vertex holds exactly the
// kernel's source value — monotone relaxations with the shipped kernels can
// never improve on it, so any drift means an initialization or indexing bug.
type sourceValue struct{}

func (sourceValue) Name() string { return "source-value" }

func (sourceValue) Check(g *graph.Graph, q queries.Query, vals []queries.Value) error {
	if got, want := vals[q.Source], q.Kernel.SourceValue(); got != want {
		return fmt.Errorf("source v%d holds %v, want the kernel source value %v", q.Source, got, want)
	}
	return nil
}

// fixedPoint certifies that no edge can still improve its destination: for
// every edge (u,v) with a non-identity source value,
// !Better(Relax(vals[u], w), vals[v]). For SSSP this is the triangle
// inequality; for every monotone kernel it is the statement that the
// engines actually ran to convergence.
type fixedPoint struct{}

func (fixedPoint) Name() string { return "fixed-point" }

func (fixedPoint) Check(g *graph.Graph, q queries.Query, vals []queries.Value) error {
	k := q.Kernel
	id := k.Identity()
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		sv := vals[v]
		if sv == id {
			continue
		}
		nbrs, ws := g.OutEdges(graph.VertexID(v))
		for j, d := range nbrs {
			cand := k.Relax(sv, edgeWeight(ws, j))
			if k.Better(cand, vals[d]) {
				return fmt.Errorf("edge v%d->v%d can still improve: Relax(%v) = %v is better than vals[v%d] = %v",
					v, d, sv, cand, d, vals[d])
			}
		}
	}
	return nil
}

// supported certifies that every non-identity, non-source value is
// justified by some in-edge: vals[v] == Relax(vals[u], w) for an in-neighbor
// u with a non-identity value. A value better than every justification is a
// corruption no fixed-point check can see (it only looks too good, never
// improvable).
type supported struct{}

func (supported) Name() string { return "supported" }

func (supported) Check(g *graph.Graph, q queries.Query, vals []queries.Value) error {
	k := q.Kernel
	id := k.Identity()
	rev := reverseView(g)
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		if v == int(q.Source) || vals[v] == id {
			continue
		}
		us, ws := rev.OutEdges(graph.VertexID(v))
		justified := false
		for j, u := range us {
			if vals[u] != id && k.Relax(vals[u], edgeWeight(ws, j)) == vals[v] {
				justified = true
				break
			}
		}
		if !justified {
			return fmt.Errorf("vals[v%d] = %v is not Relax(vals[u], w) for any in-neighbor u", v, vals[v])
		}
	}
	return nil
}

// bfsLevels certifies the BFS level structure: finite values are
// non-negative integers and level(child) <= level(parent) + 1 across every
// edge (an infinite child of a finite parent is flagged too — reachable
// means leveled).
type bfsLevels struct{}

func (bfsLevels) Name() string { return "bfs-levels" }

func (bfsLevels) Check(g *graph.Graph, q queries.Query, vals []queries.Value) error {
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		lv := vals[v]
		if math.IsInf(lv, 1) {
			continue
		}
		if lv < 0 || lv != math.Trunc(lv) {
			return fmt.Errorf("vals[v%d] = %v is not a non-negative integer level", v, lv)
		}
		nbrs, _ := g.OutEdges(graph.VertexID(v))
		for _, d := range nbrs {
			if vals[d] > lv+1 {
				return fmt.Errorf("level(v%d) = %v exceeds level(v%d) + 1 = %v across edge v%d->v%d",
					d, vals[d], v, lv+1, v, d)
			}
		}
	}
	return nil
}

// ssspTriangle certifies the shortest-path triangle inequality over every
// edge — dist(v) <= dist(u) + w(u,v) — and that finite distances are
// non-negative (weights are positive by construction).
type ssspTriangle struct{}

func (ssspTriangle) Name() string { return "sssp-triangle" }

func (ssspTriangle) Check(g *graph.Graph, q queries.Query, vals []queries.Value) error {
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		dv := vals[v]
		if math.IsInf(dv, 1) {
			continue
		}
		if dv < 0 {
			return fmt.Errorf("vals[v%d] = %v is a negative distance", v, dv)
		}
		nbrs, ws := g.OutEdges(graph.VertexID(v))
		for j, d := range nbrs {
			bound := dv + queries.Value(edgeWeight(ws, j))
			if vals[d] > bound {
				return fmt.Errorf("dist(v%d) = %v violates the triangle inequality via v%d: bound %v",
					d, vals[d], v, bound)
			}
		}
	}
	return nil
}

// khopRange certifies the value shape of a k-hop result: finite values are
// integer hop counts within [0, k].
type khopRange struct{ k int }

func (khopRange) Name() string { return "khop-range" }

func (i khopRange) Check(g *graph.Graph, q queries.Query, vals []queries.Value) error {
	for v, hv := range vals {
		if math.IsInf(hv, 1) {
			continue
		}
		if hv < 0 || hv > queries.Value(i.k) || hv != math.Trunc(hv) {
			return fmt.Errorf("vals[v%d] = %v is not an integer hop count in [0, %d]", v, hv, i.k)
		}
	}
	return nil
}

// khopReach certifies the reachability set against an independent golden
// walk: a serial FIFO BFS truncated at k hops must agree with the result
// vector on both membership and hop distance for every vertex.
type khopReach struct{ k int }

func (khopReach) Name() string { return "khop-reach" }

func (i khopReach) Check(g *graph.Graph, q queries.Query, vals []queries.Value) error {
	dist := KHopDistances(g, q.Source, i.k)
	for v, d := range dist {
		if d < 0 {
			if !math.IsInf(vals[v], 1) {
				return fmt.Errorf("v%d is outside the %d-hop set of v%d but holds %v", v, i.k, q.Source, vals[v])
			}
			continue
		}
		if vals[v] != queries.Value(d) {
			return fmt.Errorf("v%d is %d hops from v%d but holds %v", v, d, q.Source, vals[v])
		}
	}
	return nil
}

// convergenceResidual certifies that a convergence result is a settled
// fixed point: one more serial Jacobi step moves no vertex by more than the
// kernel's epsilon. Any single corrupted cell either moves itself back
// (its recomputation disagrees) or moves its out-neighbors — both exceed
// epsilon by orders of magnitude on real results.
type convergenceResidual struct{}

func (convergenceResidual) Name() string { return "convergence-residual" }

func (convergenceResidual) Check(g *graph.Graph, q queries.Query, vals []queries.Value) error {
	ck, ok := queries.ConvergentOf(q.Kernel)
	if !ok {
		return fmt.Errorf("kernel %s is not a convergence kernel", q.Kernel.Name())
	}
	_, resid := jacobiStepSerial(g, ck, vals)
	if resid > ck.Epsilon() {
		return fmt.Errorf("one more Jacobi step still moves a vertex by %g (> epsilon %g): not a settled fixed point",
			resid, ck.Epsilon())
	}
	return nil
}

// pagerankDamping mirrors the kernel's damping factor. The duplication is
// deliberate: the oracle codifies the published contract independently, so
// a drive-by change to the kernel's constant fails here and must touch both
// sites on purpose.
const pagerankDamping = 0.85

// pagerankMass certifies PageRank's mass accounting: every rank is at
// least the teleport share (1-d)/n and at most 1, and the vector sums to at
// most 1 (dangling vertices leak mass rather than redistributing it, per
// the kernel's documented contract).
type pagerankMass struct{}

func (pagerankMass) Name() string { return "pagerank-mass" }

func (pagerankMass) Check(g *graph.Graph, q queries.Query, vals []queries.Value) error {
	n := g.NumVertices()
	low := (1 - pagerankDamping) / float64(n)
	const tol = 1e-9
	sum := 0.0
	for v, pv := range vals {
		if pv < low-tol || pv > 1+tol {
			return fmt.Errorf("rank(v%d) = %v outside [(1-d)/n = %g, 1]", v, pv, low)
		}
		sum += pv
	}
	if sum > 1+1e-6 {
		return fmt.Errorf("rank vector sums to %v > 1: mass created from nothing", sum)
	}
	return nil
}

// labelpropValid certifies min-label propagation's value shape: every label
// is an integer vertex id no larger than the vertex's own id (a vertex can
// only ever adopt a smaller id than its initial own).
type labelpropValid struct{}

func (labelpropValid) Name() string { return "labelprop-valid" }

func (labelpropValid) Check(g *graph.Graph, q queries.Query, vals []queries.Value) error {
	for v, lv := range vals {
		if lv < 0 || lv > queries.Value(v) || lv != math.Trunc(lv) {
			return fmt.Errorf("label(v%d) = %v is not an integer vertex id in [0, %d]", v, lv, v)
		}
	}
	return nil
}
