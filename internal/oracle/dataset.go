package oracle

import (
	"fmt"

	"github.com/glign/glign/internal/graph"
)

// CheckGraph certifies the structural sanity of a CSR graph: well-formed
// offsets and targets (no dangling CSR offsets, via Validate), the
// degree-sum accounting sum(outdeg) == |stored arcs|, and for undirected
// graphs the mirror-arc symmetry that makes degree-sum equal 2·|E|
// (per-vertex in-degree == out-degree and an even arc count).
func CheckGraph(g *graph.Graph) error {
	if err := g.Validate(); err != nil {
		return err
	}
	n := g.NumVertices()
	sum := 0
	for v := 0; v < n; v++ {
		sum += g.OutDegree(graph.VertexID(v))
	}
	if sum != g.NumEdges() {
		return fmt.Errorf("oracle: degree sum %d != stored arc count %d", sum, g.NumEdges())
	}
	if !g.Directed {
		if g.NumEdges()%2 != 0 {
			return fmt.Errorf("oracle: undirected graph stores an odd arc count %d (mirror arcs missing)", g.NumEdges())
		}
		indeg := make([]int, n)
		for _, t := range g.Targets {
			indeg[t]++
		}
		for v := 0; v < n; v++ {
			if indeg[v] != g.OutDegree(graph.VertexID(v)) {
				return fmt.Errorf("oracle: undirected v%d has in-degree %d != out-degree %d (asymmetric edge set)",
					v, indeg[v], g.OutDegree(graph.VertexID(v)))
			}
		}
	}
	return nil
}

// SmokeRMAT is the distribution smoke check for R-MAT-style power-law
// generators: a heavy tail must exist (max out-degree at least 4x the
// average — the generated tiny graphs sit near 30x). A generator bug that
// flattens the skew breaks every locality claim benchmarked on the graph.
func SmokeRMAT(g *graph.Graph) error {
	avg := g.AvgDegree()
	if avg <= 0 {
		return fmt.Errorf("oracle: R-MAT graph %q has no edges", g.Name)
	}
	_, maxd := g.MaxOutDegree()
	if float64(maxd) < 4*avg {
		return fmt.Errorf("oracle: R-MAT graph %q lacks a heavy tail: max out-degree %d < 4x avg %.2f",
			g.Name, maxd, avg)
	}
	return nil
}

// SmokeRoad is the distribution smoke check for road-network generators:
// undirected, bounded degree (grids top out at 4 plus diagonal extras; 16
// is a generous ceiling), and non-empty. A road graph with a hub is not a
// road graph.
func SmokeRoad(g *graph.Graph) error {
	if g.Directed {
		return fmt.Errorf("oracle: road graph %q is directed", g.Name)
	}
	_, maxd := g.MaxOutDegree()
	if maxd == 0 {
		return fmt.Errorf("oracle: road graph %q has no edges", g.Name)
	}
	if maxd > 16 {
		return fmt.Errorf("oracle: road graph %q has a degree-%d hub; road networks are bounded-degree", g.Name, maxd)
	}
	return nil
}
