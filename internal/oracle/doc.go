// Package oracle is the benchmark-validity harness: per-kernel invariant
// oracles over result vectors, plus graph/dataset sanity checks over the
// generated inputs.
//
// The differential harness at the repository root proves that eleven
// implementations agree; it cannot prove any of them right. This package
// closes that gap with independently-coded certificates ("SoK: The Faults
// in our Graph Benchmarks", PAPERS.md): a BFS result must satisfy
// level(child) <= level(parent)+1, an SSSP result the triangle inequality,
// every monotone result a fixed-point/justification pair, a k-hop result
// must match a golden serial walk, and a convergence result must be a
// fixed point of one more Jacobi step within the kernel's epsilon. Dataset
// checks certify the generators themselves (CSR accounting, degree
// symmetry, R-MAT skew and road-network degree-bound smoke checks).
//
// Every invariant is implemented against first principles — direct scans
// of the CSR arrays and the Kernel contract — never by calling back into
// the engines under test. Mutation tests in this package seed deliberate
// corruptions and assert each invariant catches its class: an oracle that
// cannot fail certifies nothing.
package oracle
