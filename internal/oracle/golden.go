package oracle

import (
	"github.com/glign/glign/internal/engine"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/queries"
)

// GoldenValues computes the trusted serial answer of a query: the
// label-correcting reference for monotone kernels, a serial Jacobi
// iteration for convergence kernels. Everything that "verifies" a result —
// the facade's Report.Verify, the differential harness's oracle leg, the
// serve e2e tests — routes through here so both paradigms have exactly one
// golden path.
func GoldenValues(g *graph.Graph, q queries.Query) []queries.Value {
	if ck, ok := queries.ConvergentOf(q.Kernel); ok {
		return SerialJacobi(g, ck, q.Source)
	}
	return engine.ReferenceRun(g, q)
}

// serialGeom is the prebuilt shape data of a serial Jacobi iteration:
// in-neighbor lists, out-degrees, and gather scratch sized to the widest
// in-neighborhood.
type serialGeom struct {
	ins    [][]graph.VertexID
	outdeg []int32
	nbrs   []queries.Value
	nds    []int32
}

// newSerialGeom materializes the in-neighbor lists the serial Jacobi walks:
// for directed graphs a plain ascending-source scan over the CSR (the same
// order graph.Reverse produces, so the golden floats are bit-identical to
// the engines'), for undirected graphs the adjacency itself.
func newSerialGeom(g *graph.Graph) *serialGeom {
	n := g.NumVertices()
	sg := &serialGeom{ins: make([][]graph.VertexID, n), outdeg: make([]int32, n)}
	if g.Directed {
		indeg := make([]int, n)
		for _, t := range g.Targets {
			indeg[t]++
		}
		for v := 0; v < n; v++ {
			sg.ins[v] = make([]graph.VertexID, 0, indeg[v])
		}
		for u := 0; u < n; u++ {
			for _, t := range g.OutNeighbors(graph.VertexID(u)) {
				sg.ins[t] = append(sg.ins[t], graph.VertexID(u))
			}
		}
	} else {
		for v := 0; v < n; v++ {
			sg.ins[v] = g.OutNeighbors(graph.VertexID(v))
		}
	}
	maxIn := 0
	for v := 0; v < n; v++ {
		sg.outdeg[v] = int32(g.OutDegree(graph.VertexID(v)))
		if len(sg.ins[v]) > maxIn {
			maxIn = len(sg.ins[v])
		}
	}
	sg.nbrs = make([]queries.Value, maxIn)
	sg.nds = make([]int32, maxIn)
	return sg
}

// step applies one synchronous Jacobi round, writing into next and
// returning the max per-vertex residual.
func (sg *serialGeom) step(ck queries.ConvergenceKernel, old, next []queries.Value) float64 {
	n := len(old)
	resid := 0.0
	for v := 0; v < n; v++ {
		us := sg.ins[v]
		for j, u := range us {
			sg.nbrs[j] = old[u]
			sg.nds[j] = sg.outdeg[u]
		}
		next[v] = ck.Step(n, old[v], sg.nbrs[:len(us)], sg.nds[:len(us)])
		if r := ck.Residual(old[v], next[v]); r > resid {
			resid = r
		}
	}
	return resid
}

// jacobiStepSerial applies one synchronous Jacobi round to old and returns
// the next vector with the max per-vertex residual — the primitive behind
// the convergence-residual invariant.
func jacobiStepSerial(g *graph.Graph, ck queries.ConvergenceKernel, old []queries.Value) ([]queries.Value, float64) {
	next := make([]queries.Value, len(old))
	resid := newSerialGeom(g).step(ck, old, next)
	return next, resid
}

// SerialJacobi runs the iterate-to-convergence kernel to its fixed point
// with plain nested serial loops — no pool, no lanes — under the same
// stopping rule as the engines (max residual <= Epsilon, or MaxRounds).
// With the in-neighbor order contract this produces the exact floats the
// engines must produce.
func SerialJacobi(g *graph.Graph, ck queries.ConvergenceKernel, src graph.VertexID) []queries.Value {
	n := g.NumVertices()
	sg := newSerialGeom(g)
	old := make([]queries.Value, n)
	next := make([]queries.Value, n)
	for v := 0; v < n; v++ {
		old[v] = ck.InitialValue(n, graph.VertexID(v), src)
	}
	eps := ck.Epsilon()
	for round := 0; round < ck.MaxRounds(); round++ {
		resid := sg.step(ck, old, next)
		old, next = next, old
		if resid <= eps {
			break
		}
	}
	return old
}

// KHopDistances is the golden reachability walk: a serial FIFO BFS from src
// truncated at k hops, returning the hop distance of every vertex (-1
// outside the k-hop set). It shares no code with any engine.
func KHopDistances(g *graph.Graph, src graph.VertexID, k int) []int32 {
	n := g.NumVertices()
	dist := make([]int32, n)
	for v := range dist {
		dist[v] = -1
	}
	if int(src) >= n || k < 0 {
		return dist
	}
	queue := make([]graph.VertexID, 0, n)
	dist[src] = 0
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		if int(dist[u]) == k {
			continue
		}
		for _, d := range g.OutNeighbors(u) {
			if dist[d] < 0 {
				dist[d] = dist[u] + 1
				queue = append(queue, d)
			}
		}
	}
	return dist
}
