package perf

import (
	"testing"

	"github.com/glign/glign/internal/systems"
)

// smokeConfig is a one-kernel slice of the matrix, sized to keep the test
// under a second.
func smokeConfig() Config {
	cfg := DefaultConfig()
	cfg.Kernels = []string{"BFS"}
	cfg.Graphs = []string{"LJ"}
	cfg.Workers = []int{1, 2}
	cfg.Size = "tiny"
	cfg.Warmup = 0
	cfg.Reps = 2
	return cfg
}

func TestHarnessSmoke(t *testing.T) {
	runner, err := NewRunner(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := runner.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("harness produced an invalid report: %v", err)
	}
	wantCells := 2 * 1 * 1 * 2 // methods x kernels x graphs x workers
	if len(rep.Cells) != wantCells {
		t.Fatalf("got %d cells, want %d", len(rep.Cells), wantCells)
	}
	for _, c := range rep.Cells {
		if len(c.RepsNs) != 2 {
			t.Fatalf("cell %s: %d reps, want 2", c.CellKey, len(c.RepsNs))
		}
		if c.Iterations <= 0 {
			t.Fatalf("cell %s: no iterations recorded", c.CellKey)
		}
		// Single-worker cells run every loop inline; parallel cells dispatch.
		if c.Sched.Jobs+c.Sched.InlineRuns <= 0 {
			t.Fatalf("cell %s: scheduler telemetry empty: %+v", c.CellKey, c.Sched)
		}
		if c.Workers > 1 && c.Sched.Jobs <= 0 {
			t.Fatalf("cell %s: parallel cell dispatched no jobs: %+v", c.CellKey, c.Sched)
		}
	}
	// Same kernel+graph must measure identical query buffers across methods
	// and worker counts, which shows up as identical iteration counts per
	// method (iterations are scheduling-independent for deterministic runs).
	byMethod := make(map[string]int)
	for _, c := range rep.Cells {
		if prev, ok := byMethod[c.Method]; ok && prev != c.Iterations {
			t.Fatalf("method %s: iteration count varies across worker counts (%d vs %d) — query buffers differ",
				c.Method, prev, c.Iterations)
		}
		byMethod[c.Method] = c.Iterations
	}
	if rep.Env.NumCPU <= 0 || rep.Env.GoVersion == "" || rep.Env.CPUModel == "" {
		t.Fatalf("environment fingerprint incomplete: %+v", rep.Env)
	}
}

func TestHarnessSkipsIncapableCombos(t *testing.T) {
	cfg := smokeConfig()
	cfg.Methods = []string{systems.GraphM, systems.Glign}
	cfg.Kernels = []string{"BFS", "PageRank"}
	runner, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range runner.Keys() {
		if k.Method == systems.GraphM && k.Kernel == "PageRank" {
			t.Fatal("GraphM cannot run iterate-to-convergence kernels; the matrix must skip the combo")
		}
	}
}

func TestNewRunnerRejectsBadConfig(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Kernels = nil },
		func(c *Config) { c.Kernels = []string{"NOPE"} },
		func(c *Config) { c.Size = "huge" },
		func(c *Config) { c.Reps = 0 },
		func(c *Config) { c.BatchSize = -1 },
	}
	for i, mutate := range bad {
		cfg := smokeConfig()
		mutate(&cfg)
		if _, err := NewRunner(cfg); err == nil {
			t.Errorf("case %d: NewRunner accepted a bad config", i)
		}
	}
}
