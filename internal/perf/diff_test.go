package perf

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// benchEnv is the fingerprint both synthetic reports share unless a test
// perturbs one side.
func benchEnv() Env {
	return Env{
		GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64",
		CPUModel: "synthetic-cpu", NumCPU: 8, GOMAXPROCS: 8,
	}
}

// syntheticReport builds a valid glign.bench/v1 report whose cell timings are
// given as key -> ns.
func syntheticReport(env Env, cells map[CellKey]int64) *Report {
	r := &Report{
		Schema:      SchemaVersion,
		Benchmark:   "synthetic trajectory",
		Aggregation: "median-of-reps",
		Env:         env,
		Config: Config{
			Matrix: Matrix{Methods: []string{"Glign"}, Kernels: []string{"BFS"},
				Graphs: []string{"LJ"}, Workers: []int{1}},
			Size: "tiny", BatchSize: 4, Warmup: 1, Reps: 3, Seed: 1,
		},
	}
	for key, ns := range cells {
		r.Cells = append(r.Cells, Cell{
			CellKey: key,
			NsPerOp: ns,
			RepsNs:  []int64{ns, ns, ns},
			Sched:   SchedStats{Jobs: 1, Chunks: 1},
		})
	}
	r.SortCells()
	return r
}

func key(method, kernel string, workers int) CellKey {
	return CellKey{Method: method, Kernel: kernel, Graph: "LJ", Workers: workers}
}

// gateOpts are the deterministic test options: 75% tolerance, 150µs floor,
// parallel cells gated (a multi-CPU fingerprint).
func gateOpts() DiffOptions {
	return DiffOptions{Tolerance: 0.75, MinDeltaNs: 150_000, GateParallel: true}
}

func classOf(t *testing.T, d *Diff, k CellKey) CellDelta {
	t.Helper()
	for _, cd := range d.Deltas {
		if cd.CellKey == k {
			return cd
		}
	}
	t.Fatalf("diff has no delta for %s", k)
	return CellDelta{}
}

func TestDiffIdenticalReportsPass(t *testing.T) {
	cells := map[CellKey]int64{
		key("Glign", "BFS", 1): 2_000_000,
		key("Glign", "BFS", 4): 900_000,
	}
	base := syntheticReport(benchEnv(), cells)
	cur := syntheticReport(benchEnv(), cells)
	d := Compare(base, cur, gateOpts())
	if !d.Pass {
		t.Fatalf("identical reports must pass:\n%s", d.Table())
	}
	if d.OK != 2 || d.Regressed != 0 || d.Improved != 0 || d.Advisory != 0 {
		t.Fatalf("want 2 ok cells, got ok=%d regressed=%d improved=%d advisory=%d",
			d.OK, d.Regressed, d.Improved, d.Advisory)
	}
}

// TestDiffInjectedTwoXSlowdownFails is the acceptance demonstration: a
// deliberately injected 2x slowdown on one cell must fail the gate (2.0 >
// 1 + 0.75 tolerance, and the 2ms absolute delta clears the 150µs floor).
func TestDiffInjectedTwoXSlowdownFails(t *testing.T) {
	base := syntheticReport(benchEnv(), map[CellKey]int64{
		key("Glign", "BFS", 1):  2_000_000,
		key("Glign", "SSSP", 1): 3_000_000,
	})
	cur := syntheticReport(benchEnv(), map[CellKey]int64{
		key("Glign", "BFS", 1):  4_000_000, // injected 2x slowdown
		key("Glign", "SSSP", 1): 3_000_000,
	})
	d := Compare(base, cur, gateOpts())
	if d.Pass {
		t.Fatalf("2x slowdown must fail the gate:\n%s", d.Table())
	}
	cd := classOf(t, d, key("Glign", "BFS", 1))
	if cd.Class != ClassRegressed || !cd.Gated {
		t.Fatalf("slow cell: got class=%s gated=%v, want gated regressed", cd.Class, cd.Gated)
	}
	if cd.Ratio < 1.99 || cd.Ratio > 2.01 {
		t.Fatalf("ratio = %v, want ~2.0", cd.Ratio)
	}
	if got := classOf(t, d, key("Glign", "SSSP", 1)).Class; got != ClassOK {
		t.Fatalf("untouched cell: got %s, want ok", got)
	}
	if regs := d.Regressions(); len(regs) != 1 || regs[0] != key("Glign", "BFS", 1) {
		t.Fatalf("Regressions() = %v, want just the slow cell", regs)
	}
}

func TestDiffWithinNoiseJitterPasses(t *testing.T) {
	base := syntheticReport(benchEnv(), map[CellKey]int64{key("Glign", "BFS", 1): 2_000_000})
	// +40% is inside the 75% tolerance.
	cur := syntheticReport(benchEnv(), map[CellKey]int64{key("Glign", "BFS", 1): 2_800_000})
	d := Compare(base, cur, gateOpts())
	if !d.Pass || d.OK != 1 {
		t.Fatalf("within-noise jitter must be ok:\n%s", d.Table())
	}
}

func TestDiffAbsoluteFloorSuppressesMicroRegressions(t *testing.T) {
	// 3x ratio, but the absolute delta (100µs) is under the 150µs floor:
	// microsecond-scale cells never gate on scheduler jitter.
	base := syntheticReport(benchEnv(), map[CellKey]int64{key("Glign", "BFS", 1): 50_000})
	cur := syntheticReport(benchEnv(), map[CellKey]int64{key("Glign", "BFS", 1): 150_000})
	d := Compare(base, cur, gateOpts())
	if !d.Pass {
		t.Fatalf("sub-floor delta must not gate:\n%s", d.Table())
	}
	if got := classOf(t, d, key("Glign", "BFS", 1)).Class; got != ClassOK {
		t.Fatalf("got %s, want ok", got)
	}
}

func TestDiffImprovementIsReportedNotFailed(t *testing.T) {
	base := syntheticReport(benchEnv(), map[CellKey]int64{key("Glign", "BFS", 1): 4_000_000})
	cur := syntheticReport(benchEnv(), map[CellKey]int64{key("Glign", "BFS", 1): 1_000_000})
	d := Compare(base, cur, gateOpts())
	if !d.Pass || d.Improved != 1 {
		t.Fatalf("4x speedup: want pass with 1 improved, got pass=%v improved=%d", d.Pass, d.Improved)
	}
}

func TestDiffMissingCellFails(t *testing.T) {
	base := syntheticReport(benchEnv(), map[CellKey]int64{
		key("Glign", "BFS", 1): 2_000_000,
		key("Glign", "BFS", 4): 900_000,
	})
	cur := syntheticReport(benchEnv(), map[CellKey]int64{key("Glign", "BFS", 1): 2_000_000})
	d := Compare(base, cur, gateOpts())
	if d.Pass || d.Missing != 1 {
		t.Fatalf("vanished cell must fail: pass=%v missing=%d", d.Pass, d.Missing)
	}
	if got := classOf(t, d, key("Glign", "BFS", 4)).Class; got != ClassMissing {
		t.Fatalf("got %s, want missing", got)
	}
}

func TestDiffNewCellFails(t *testing.T) {
	base := syntheticReport(benchEnv(), map[CellKey]int64{key("Glign", "BFS", 1): 2_000_000})
	cur := syntheticReport(benchEnv(), map[CellKey]int64{
		key("Glign", "BFS", 1): 2_000_000,
		key("Glign", "BFS", 8): 500_000,
	})
	d := Compare(base, cur, gateOpts())
	if d.Pass || d.New != 1 {
		t.Fatalf("unexpected new cell must fail: pass=%v new=%d", d.Pass, d.New)
	}
	if got := classOf(t, d, key("Glign", "BFS", 8)).Class; got != ClassNew {
		t.Fatalf("got %s, want new", got)
	}
}

func TestDiffEnvMismatchDemotesToAdvisory(t *testing.T) {
	base := syntheticReport(benchEnv(), map[CellKey]int64{key("Glign", "BFS", 1): 1_000_000})
	otherEnv := benchEnv()
	otherEnv.CPUModel = "different-cpu"
	// A 10x slowdown, but the fingerprints are not comparable.
	cur := syntheticReport(otherEnv, map[CellKey]int64{key("Glign", "BFS", 1): 10_000_000})
	d := Compare(base, cur, gateOpts())
	if !d.Pass || d.Advisory != 1 {
		t.Fatalf("env mismatch must demote to advisory: pass=%v advisory=%d\n%s",
			d.Pass, d.Advisory, d.Table())
	}
	if len(d.EnvMismatch) == 0 || !strings.Contains(d.EnvMismatch[0], "cpu_model") {
		t.Fatalf("EnvMismatch = %v, want a cpu_model entry first", d.EnvMismatch)
	}

	// StrictEnv turns the same mismatch into a failure.
	d = Compare(base, cur, DiffOptions{Tolerance: 0.75, MinDeltaNs: 150_000, GateParallel: true, StrictEnv: true})
	if d.Pass {
		t.Fatal("StrictEnv must fail on an environment mismatch")
	}
}

func TestDiffParallelCellsAdvisoryOnOneCPU(t *testing.T) {
	cells := map[CellKey]int64{
		key("Glign", "BFS", 1): 2_000_000,
		key("Glign", "BFS", 8): 1_000_000,
	}
	base := syntheticReport(benchEnv(), cells)
	cur := syntheticReport(benchEnv(), map[CellKey]int64{
		key("Glign", "BFS", 1): 2_000_000,
		key("Glign", "BFS", 8): 20_000_000, // huge parallel "regression"
	})
	opt := gateOpts()
	opt.GateParallel = false // the skip-on-1-CPU guard
	d := Compare(base, cur, opt)
	if !d.Pass {
		t.Fatalf("ungated parallel cell must not fail:\n%s", d.Table())
	}
	cd := classOf(t, d, key("Glign", "BFS", 8))
	if cd.Class != ClassAdvisory || cd.Gated {
		t.Fatalf("parallel cell on 1 CPU: got class=%s gated=%v, want ungated advisory", cd.Class, cd.Gated)
	}
	if got := classOf(t, d, key("Glign", "BFS", 1)).Class; got != ClassOK {
		t.Fatalf("serial cell stays gated: got %s, want ok", got)
	}
}

func TestDiffSchemaMismatchFails(t *testing.T) {
	base := syntheticReport(benchEnv(), map[CellKey]int64{key("Glign", "BFS", 1): 1_000_000})
	cur := syntheticReport(benchEnv(), map[CellKey]int64{key("Glign", "BFS", 1): 1_000_000})
	cur.Schema = "glign.bench/v2"
	d := Compare(base, cur, gateOpts())
	if d.Pass || d.SchemaMismatch == "" {
		t.Fatalf("schema drift must fail: pass=%v mismatch=%q", d.Pass, d.SchemaMismatch)
	}
}

func TestDiffTableRendersVerdicts(t *testing.T) {
	base := syntheticReport(benchEnv(), map[CellKey]int64{
		key("Glign", "BFS", 1):  2_000_000,
		key("Glign", "SSSP", 1): 3_000_000,
	})
	cur := syntheticReport(benchEnv(), map[CellKey]int64{
		key("Glign", "BFS", 1):  8_000_000,
		key("Glign", "SSSP", 1): 3_000_000,
	})
	table := Compare(base, cur, gateOpts()).Table()
	for _, want := range []string{
		"Glign/BFS/LJ/w1", "2.00ms", "8.00ms", "4.00x", "regressed",
		"verdict: FAIL", "1 regressed",
	} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	table = Compare(base, base, gateOpts()).Table()
	if !strings.Contains(table, "verdict: PASS") {
		t.Fatalf("pass table missing verdict:\n%s", table)
	}
}

// TestDiffPropertyRandomTrajectories cross-checks the classifier against an
// independent predicate over random (base, current) pairs.
func TestDiffPropertyRandomTrajectories(t *testing.T) {
	rng := rand.New(rand.NewSource(0x91159))
	opt := gateOpts()
	for trial := 0; trial < 500; trial++ {
		baseNs := int64(10_000 + rng.Intn(20_000_000))
		curNs := int64(float64(baseNs) * (0.1 + rng.Float64()*4.0))
		if curNs < 1 {
			curNs = 1
		}
		k := key("Glign", "BFS", 1)
		base := syntheticReport(benchEnv(), map[CellKey]int64{k: baseNs})
		cur := syntheticReport(benchEnv(), map[CellKey]int64{k: curNs})
		d := Compare(base, cur, opt)
		cd := classOf(t, d, k)

		ratio := float64(curNs) / float64(baseNs)
		wantRegressed := ratio > 1+opt.Tolerance && curNs-baseNs > opt.MinDeltaNs
		wantImproved := ratio < 1/(1+opt.Tolerance) && baseNs-curNs > opt.MinDeltaNs
		switch {
		case wantRegressed:
			if cd.Class != ClassRegressed || d.Pass {
				t.Fatalf("trial %d: base=%d cur=%d ratio=%.3f: got class=%s pass=%v, want gated regression",
					trial, baseNs, curNs, ratio, cd.Class, d.Pass)
			}
		case wantImproved:
			if cd.Class != ClassImproved || !d.Pass {
				t.Fatalf("trial %d: base=%d cur=%d ratio=%.3f: got class=%s pass=%v, want passing improvement",
					trial, baseNs, curNs, ratio, cd.Class, d.Pass)
			}
		default:
			if cd.Class != ClassOK || !d.Pass {
				t.Fatalf("trial %d: base=%d cur=%d ratio=%.3f: got class=%s pass=%v, want passing ok",
					trial, baseNs, curNs, ratio, cd.Class, d.Pass)
			}
		}
	}
}

func TestMedianNs(t *testing.T) {
	cases := []struct {
		in   []int64
		want int64
	}{
		{[]int64{5}, 5},
		{[]int64{3, 1, 2}, 2},
		{[]int64{4, 1, 3, 2}, 2}, // (2+3)/2 rounds down
		{[]int64{10, 10, 10, 1000}, 10},
		{nil, 0},
	}
	for _, c := range cases {
		if got := MedianNs(c.in); got != c.want {
			t.Errorf("MedianNs(%v) = %d, want %d", c.in, got, c.want)
		}
	}
	// Permutation invariance and non-mutation.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(9)
		s := make([]int64, n)
		for i := range s {
			s[i] = int64(rng.Intn(1000))
		}
		before := fmt.Sprint(s)
		want := MedianNs(s)
		if after := fmt.Sprint(s); after != before {
			t.Fatalf("MedianNs mutated its input: %s -> %s", before, after)
		}
		rng.Shuffle(n, func(i, j int) { s[i], s[j] = s[j], s[i] })
		if got := MedianNs(s); got != want {
			t.Fatalf("median not permutation-invariant: %v vs %v", got, want)
		}
	}
}
