package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// WriteJSONAtomic marshals v (indented, trailing newline) and installs it at
// path via a temp file in the same directory followed by an atomic rename.
// A reader — or a process inspecting results/ after this one was killed —
// either sees the previous complete file or the new complete file, never a
// truncated prefix. Both the benchmark harness and cmd/glign-bench's
// -metrics-out write through this one path.
func WriteJSONAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("perf: marshal %s: %w", path, err)
	}
	return WriteFileAtomic(path, append(data, '\n'))
}

// WriteFileAtomic writes data to path via temp-file + rename. The temp file
// lives in path's directory (rename is only atomic within one filesystem)
// and is fsynced before the rename, so a crash cannot install an empty or
// partial file under the final name.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("perf: %w", err)
	}
	tmpName := tmp.Name()
	// Any failure past this point must not leave the temp file behind.
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("perf: write %s: %w", path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	// CreateTemp opens 0600; published artifacts should be world-readable
	// like a plain os.WriteFile(…, 0o644).
	if err := tmp.Chmod(0o644); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("perf: write %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("perf: install %s: %w", path, err)
	}
	return nil
}
