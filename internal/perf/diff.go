package perf

import (
	"fmt"
	"strings"
)

// Class is the verdict of one cell's baseline-vs-current comparison.
type Class string

const (
	// ClassOK: the delta is within the noise tolerance.
	ClassOK Class = "ok"
	// ClassImproved: faster than the baseline beyond the tolerance — the
	// gate passes, but the baseline is stale and worth refreshing.
	ClassImproved Class = "improved"
	// ClassRegressed: slower than the baseline beyond the tolerance AND the
	// absolute noise floor. Gated cells with this class fail the diff.
	ClassRegressed Class = "regressed"
	// ClassMissing: present in the baseline, absent from the current report
	// (matrix shape drift — always fails).
	ClassMissing Class = "missing"
	// ClassNew: present in the current report, absent from the baseline
	// (matrix shape drift — always fails; refresh the baseline to grow the
	// matrix deliberately).
	ClassNew Class = "new"
	// ClassAdvisory: measured but not gated — parallel cells on a 1-CPU box,
	// or any time comparison across incomparable environment fingerprints.
	ClassAdvisory Class = "advisory"
)

// DiffOptions tunes the regression-diff engine.
type DiffOptions struct {
	// Tolerance is the allowed relative slowdown: a gated cell regresses
	// when cur > base*(1+Tolerance) and the absolute delta clears MinDeltaNs.
	// The improvement threshold is symmetric (cur < base/(1+Tolerance)).
	Tolerance float64
	// MinDeltaNs is the absolute noise floor: sub-floor deltas never regress
	// regardless of ratio, which keeps microsecond-scale cells from gating
	// on scheduler jitter.
	MinDeltaNs int64
	// GateParallel gates cells with Workers > 1. Callers clear it on a
	// 1-CPU box, where multi-worker cells measure scheduling overhead with
	// far more variance than parallel speedup (the skip-on-1-CPU guard).
	GateParallel bool
	// StrictEnv fails the diff on an environment-fingerprint mismatch
	// instead of demoting time comparisons to advisory.
	StrictEnv bool
}

// DefaultDiffOptions returns the gate defaults for a run measured under cur:
// 75% relative tolerance, a 150µs absolute floor, and parallel-cell gating
// only when the box actually has parallel hardware.
func DefaultDiffOptions(cur Env) DiffOptions {
	return DiffOptions{
		Tolerance:    0.75,
		MinDeltaNs:   150_000,
		GateParallel: cur.NumCPU > 1,
	}
}

// CellDelta is one cell's comparison: both measurements, their ratio, the
// verdict, and whether the verdict counts toward pass/fail.
type CellDelta struct {
	CellKey
	BaseNs int64
	CurNs  int64
	// Ratio is cur/base (0 when either side is missing).
	Ratio float64
	Class Class
	// Gated cells count toward the verdict; ungated cells are advisory.
	Gated bool
	// Note carries the reason a cell is advisory or failing, for the table.
	Note string
}

// Diff is the outcome of comparing a current report against a baseline.
type Diff struct {
	Deltas []CellDelta
	// SchemaMismatch is non-empty when the reports carry different schema
	// versions (always fails).
	SchemaMismatch string
	// EnvMismatch lists fingerprint fields that differ between the reports.
	EnvMismatch []string
	// Counts by verdict over all cells (gated or not).
	Regressed, Improved, OK, Missing, New, Advisory int
	// Pass is the gate verdict: no schema mismatch, no shape drift, and no
	// gated regression.
	Pass bool
}

// Compare runs the regression diff of cur against base. Shape (the cell-key
// set) and schema are always enforced; time comparisons are enforced per
// opt, and demoted to advisory wholesale when the environment fingerprints
// are not comparable (unless opt.StrictEnv, which fails instead).
func Compare(base, cur *Report, opt DiffOptions) *Diff {
	d := &Diff{Pass: true}
	if base.Schema != cur.Schema {
		d.SchemaMismatch = fmt.Sprintf("baseline schema %q, current %q", base.Schema, cur.Schema)
		d.Pass = false
	}
	d.EnvMismatch = envMismatches(base.Env, cur.Env)
	envOK := base.Env.Comparable(cur.Env)
	if !envOK && opt.StrictEnv {
		d.Pass = false
	}

	baseCells := base.CellMap()
	curCells := cur.CellMap()

	// Baseline order first (stable, sorted by WriteReport), then any new
	// cells in current order.
	for _, bc := range base.Cells {
		cc, ok := curCells[bc.CellKey]
		if !ok {
			d.Deltas = append(d.Deltas, CellDelta{
				CellKey: bc.CellKey, BaseNs: bc.NsPerOp,
				Class: ClassMissing, Gated: true, Note: "cell vanished from the matrix",
			})
			d.Missing++
			d.Pass = false
			continue
		}
		d.addDelta(bc.NsPerOp, cc.NsPerOp, bc.CellKey, opt, envOK)
	}
	for _, cc := range cur.Cells {
		if _, ok := baseCells[cc.CellKey]; !ok {
			d.Deltas = append(d.Deltas, CellDelta{
				CellKey: cc.CellKey, CurNs: cc.NsPerOp,
				Class: ClassNew, Gated: true, Note: "cell absent from the baseline",
			})
			d.New++
			d.Pass = false
		}
	}
	return d
}

// addDelta classifies one matched cell.
func (d *Diff) addDelta(baseNs, curNs int64, key CellKey, opt DiffOptions, envOK bool) {
	cd := CellDelta{CellKey: key, BaseNs: baseNs, CurNs: curNs}
	if baseNs > 0 {
		cd.Ratio = float64(curNs) / float64(baseNs)
	}
	gated := true
	switch {
	case !envOK:
		gated = false
		cd.Note = "environment fingerprints differ"
	case key.Workers > 1 && !opt.GateParallel:
		gated = false
		cd.Note = "parallel cell on a 1-CPU box"
	}
	if !gated {
		cd.Class = ClassAdvisory
		d.Advisory++
		d.Deltas = append(d.Deltas, cd)
		return
	}
	cd.Gated = true
	switch {
	case cd.Ratio > 1+opt.Tolerance && curNs-baseNs > opt.MinDeltaNs:
		cd.Class = ClassRegressed
		cd.Note = fmt.Sprintf("slower than tolerance %.0f%%", opt.Tolerance*100)
		d.Regressed++
		d.Pass = false
	case cd.Ratio > 0 && cd.Ratio < 1/(1+opt.Tolerance) && baseNs-curNs > opt.MinDeltaNs:
		cd.Class = ClassImproved
		cd.Note = "baseline is stale; consider refreshing"
		d.Improved++
	default:
		cd.Class = ClassOK
		d.OK++
	}
	d.Deltas = append(d.Deltas, cd)
}

// Regressions returns the gated regressed cell keys (the cells a caller may
// want to re-measure before failing a CI run on a noisy box).
func (d *Diff) Regressions() []CellKey {
	var out []CellKey
	for _, cd := range d.Deltas {
		if cd.Gated && cd.Class == ClassRegressed {
			out = append(out, cd.CellKey)
		}
	}
	return out
}

// Table renders the human-readable delta table: one aligned row per cell
// plus the envelope verdicts.
func (d *Diff) Table() string {
	var b strings.Builder
	w := 4
	for _, cd := range d.Deltas {
		if n := len(cd.CellKey.String()); n > w {
			w = n
		}
	}
	fmt.Fprintf(&b, "%-*s  %12s  %12s  %7s  %-9s  %s\n", w, "cell", "base", "current", "ratio", "verdict", "note")
	for _, cd := range d.Deltas {
		fmt.Fprintf(&b, "%-*s  %12s  %12s  %7s  %-9s  %s\n",
			w, cd.CellKey.String(), fmtNs(cd.BaseNs), fmtNs(cd.CurNs), fmtRatio(cd.Ratio), cd.Class, cd.Note)
	}
	if d.SchemaMismatch != "" {
		fmt.Fprintf(&b, "schema: MISMATCH (%s)\n", d.SchemaMismatch)
	}
	for _, m := range d.EnvMismatch {
		fmt.Fprintf(&b, "env: %s\n", m)
	}
	fmt.Fprintf(&b, "cells: %d ok, %d improved, %d regressed, %d missing, %d new, %d advisory\n",
		d.OK, d.Improved, d.Regressed, d.Missing, d.New, d.Advisory)
	if d.Pass {
		fmt.Fprintf(&b, "verdict: PASS\n")
	} else {
		fmt.Fprintf(&b, "verdict: FAIL\n")
	}
	return b.String()
}

func fmtNs(ns int64) string {
	switch {
	case ns <= 0:
		return "-"
	case ns >= 1_000_000:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	}
	return fmt.Sprintf("%dns", ns)
}

func fmtRatio(r float64) string {
	if r == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", r)
}

// envMismatches lists human-readable fingerprint differences.
func envMismatches(a, b Env) []string {
	var out []string
	add := func(field, av, bv string) {
		if av != bv {
			out = append(out, fmt.Sprintf("%s: baseline %q, current %q", field, av, bv))
		}
	}
	add("cpu_model", a.CPUModel, b.CPUModel)
	add("num_cpu", fmt.Sprint(a.NumCPU), fmt.Sprint(b.NumCPU))
	add("gomaxprocs", fmt.Sprint(a.GOMAXPROCS), fmt.Sprint(b.GOMAXPROCS))
	add("go_version", a.GoVersion, b.GoVersion)
	add("goos", a.GOOS, b.GOOS)
	add("goarch", a.GOARCH, b.GOARCH)
	return out
}
