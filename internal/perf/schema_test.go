package perf

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// goldenReport is the fixture pinned in testdata/golden_report.json. Any
// change to the glign.bench/v1 wire format shows up as a golden diff here,
// forcing a deliberate schema-version bump.
func goldenReport() *Report {
	return &Report{
		Schema:      SchemaVersion,
		Benchmark:   "glign method-matrix trajectory",
		Aggregation: "median-of-reps",
		Env: Env{
			GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64",
			CPUModel: "golden-cpu", NumCPU: 8, GOMAXPROCS: 8,
		},
		Config: Config{
			Matrix: Matrix{
				Methods: []string{"Glign", "Ligra-C"},
				Kernels: []string{"BFS", "PageRank"},
				Graphs:  []string{"LJ"},
				Workers: []int{1, 8},
			},
			Size: "tiny", BatchSize: 4, Warmup: 1, Reps: 3, Seed: 0x91159,
		},
		Cells: []Cell{
			{
				CellKey: CellKey{Method: "Glign", Kernel: "BFS", Graph: "LJ", Workers: 1},
				NsPerOp: 2_000_000, RepsNs: []int64{2_100_000, 2_000_000, 1_900_000},
				Iterations: 12,
				Sched:      SchedStats{Jobs: 24, InlineRuns: 24, Chunks: 24},
			},
			{
				CellKey: CellKey{Method: "Glign", Kernel: "BFS", Graph: "LJ", Workers: 8},
				NsPerOp: 650_000, RepsNs: []int64{700_000, 650_000, 640_000},
				Iterations: 12,
				Sched: SchedStats{Jobs: 24, Chunks: 96, Steals: 11, Parks: 30,
					ImbalanceRatio: 1.25},
			},
		},
	}
}

func TestGoldenReportRoundTrip(t *testing.T) {
	golden := filepath.Join("testdata", "golden_report.json")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate testdata/golden_report.json from goldenReport())", err)
	}

	r := goldenReport()
	got, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if string(got) != string(want) {
		t.Fatalf("glign.bench/v1 wire format drifted from the golden fixture.\n"+
			"If deliberate, bump SchemaVersion and regenerate testdata/golden_report.json.\n"+
			"got:\n%s\nwant:\n%s", got, want)
	}

	// The committed fixture must load, validate, and decode to the same
	// struct it was generated from.
	loaded, err := ReadReport(golden)
	if err != nil {
		t.Fatalf("golden fixture does not load: %v", err)
	}
	if !reflect.DeepEqual(loaded, r) {
		t.Fatalf("golden fixture decodes to a different report:\n%+v\nwant\n%+v", loaded, r)
	}
}

func TestWriteReadReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	r := goldenReport()
	// Shuffle the cells: WriteReport must sort them back.
	r.Cells[0], r.Cells[1] = r.Cells[1], r.Cells[0]
	if err := r.WriteReport(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded, goldenReport()) {
		t.Fatalf("round trip changed the report:\n%+v", loaded)
	}
}

func TestValidateRejectsBrokenReports(t *testing.T) {
	breakages := []struct {
		name  string
		mutil func(*Report)
	}{
		{"wrong schema", func(r *Report) { r.Schema = "glign.bench/v0" }},
		{"no cells", func(r *Report) { r.Cells = nil }},
		{"duplicate cell", func(r *Report) { r.Cells = append(r.Cells, r.Cells[0]) }},
		{"no reps", func(r *Report) { r.Cells[0].RepsNs = nil }},
		{"median mismatch", func(r *Report) { r.Cells[0].NsPerOp++ }},
		{"non-positive time", func(r *Report) {
			r.Cells[0].NsPerOp = 0
			r.Cells[0].RepsNs = []int64{0, 0, 0}
		}},
	}
	for _, b := range breakages {
		r := goldenReport()
		b.mutil(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken report", b.name)
		}
	}
	if err := goldenReport().Validate(); err != nil {
		t.Fatalf("unbroken golden report must validate: %v", err)
	}
}
