package perf

import (
	"fmt"
	"hash/fnv"
	"time"

	"github.com/glign/glign/internal/align"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/par"
	"github.com/glign/glign/internal/queries"
	"github.com/glign/glign/internal/systems"
)

// DefaultConfig is the gate matrix: two methods spanning the
// frontier-design spectrum (query-oblivious Glign vs two-level Ligra-C),
// kernels from both paradigms (monotone BFS/SSSP, iterate-to-convergence
// PageRank, bounded KHOP3), both synthetic graph families, and the
// 1/2/4/8 worker trajectory the ROADMAP asks for.
func DefaultConfig() Config {
	return Config{
		Matrix: Matrix{
			Methods: []string{systems.Glign, systems.LigraC},
			Kernels: []string{"BFS", "SSSP", "PageRank", "KHOP3"},
			Graphs:  []string{string(graph.LJ), string(graph.RDCA)},
			Workers: []int{1, 2, 4, 8},
		},
		Size:      "small",
		BatchSize: 4,
		Warmup:    1,
		Reps:      3,
		Seed:      0x91159,
	}
}

// Runner executes benchmark cells, caching graphs and alignment profiles
// across cells so the matrix measures evaluation, not setup.
type Runner struct {
	cfg      Config
	size     graph.SizeClass
	graphs   map[string]*graph.Graph
	profiles map[string]*align.Profile
}

// NewRunner validates cfg and prepares a runner.
func NewRunner(cfg Config) (*Runner, error) {
	if len(cfg.Methods) == 0 || len(cfg.Kernels) == 0 || len(cfg.Graphs) == 0 || len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("perf: empty matrix axis (methods/kernels/graphs/workers all required)")
	}
	if cfg.Reps <= 0 {
		return nil, fmt.Errorf("perf: reps must be positive, got %d", cfg.Reps)
	}
	if cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("perf: batch size must be positive, got %d", cfg.BatchSize)
	}
	var size graph.SizeClass
	switch cfg.Size {
	case "tiny":
		size = graph.Tiny
	case "small":
		size = graph.Small
	case "medium":
		size = graph.Medium
	default:
		return nil, fmt.Errorf("perf: unknown size class %q (tiny, small, medium)", cfg.Size)
	}
	for _, k := range cfg.Kernels {
		if _, err := queries.ByName(k); err != nil {
			return nil, fmt.Errorf("perf: %w", err)
		}
	}
	return &Runner{
		cfg:      cfg,
		size:     size,
		graphs:   make(map[string]*graph.Graph),
		profiles: make(map[string]*align.Profile),
	}, nil
}

// Keys expands the matrix into the cell set the report will carry, skipping
// method/kernel combinations the engines refuse (GraphM and Congra reject
// iterate-to-convergence kernels).
func (r *Runner) Keys() []CellKey {
	var keys []CellKey
	for _, m := range r.cfg.Methods {
		for _, k := range r.cfg.Kernels {
			if skipCombo(m, k) {
				continue
			}
			for _, g := range r.cfg.Graphs {
				for _, w := range r.cfg.Workers {
					keys = append(keys, CellKey{Method: m, Kernel: k, Graph: g, Workers: w})
				}
			}
		}
	}
	return keys
}

// skipCombo reports whether the method refuses the kernel's paradigm.
func skipCombo(method, kernel string) bool {
	k, err := queries.ByName(kernel)
	if err != nil {
		return true
	}
	if _, convergent := queries.ConvergentOf(k); !convergent {
		return false
	}
	return method == systems.GraphM || method == systems.Congra
}

// Run measures the full matrix and assembles the report.
func (r *Runner) Run() (*Report, error) {
	rep := &Report{
		Schema:      SchemaVersion,
		Benchmark:   "glign method-matrix trajectory",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Aggregation: "median-of-reps",
		Env:         Fingerprint(),
		Config:      r.cfg,
	}
	for _, key := range r.Keys() {
		cell, err := r.MeasureCell(key, r.cfg.Reps)
		if err != nil {
			return nil, err
		}
		rep.Cells = append(rep.Cells, cell)
	}
	rep.SortCells()
	return rep, nil
}

// MeasureCell runs one cell: warmup runs (discarded), then reps measured
// runs of systems.Run over the cell's seeded query buffer on a dedicated
// pool sized to the cell's worker count. The scheduler stats are the pool's
// counter deltas over the measured runs only.
func (r *Runner) MeasureCell(key CellKey, reps int) (Cell, error) {
	g, prof, err := r.graphFor(key.Graph)
	if err != nil {
		return Cell{}, err
	}
	kernel, err := queries.ByName(key.Kernel)
	if err != nil {
		return Cell{}, fmt.Errorf("perf: cell %s: %w", key, err)
	}
	srcs := sampleSources(cellSeed(r.cfg.Seed, key), g.NumVertices(), r.cfg.BatchSize)
	buffer := make([]queries.Query, len(srcs))
	for i, s := range srcs {
		buffer[i] = queries.Query{Kernel: kernel, Source: s}
	}
	pool := par.NewPool(key.Workers)
	defer pool.Close()
	cfg := systems.Config{
		BatchSize: r.cfg.BatchSize,
		Workers:   key.Workers,
		Pool:      pool,
		Profile:   prof,
	}
	run := func() (int, error) {
		res, err := systems.Run(key.Method, g, buffer, cfg)
		if err != nil {
			return 0, fmt.Errorf("perf: cell %s: %w", key, err)
		}
		return res.TotalIterations, nil
	}
	for i := 0; i < r.cfg.Warmup; i++ {
		if _, err := run(); err != nil {
			return Cell{}, err
		}
	}
	cell := Cell{CellKey: key, RepsNs: make([]int64, 0, reps)}
	before := pool.Stats()
	for i := 0; i < reps; i++ {
		start := time.Now()
		iters, err := run()
		elapsed := time.Since(start).Nanoseconds()
		if err != nil {
			return Cell{}, err
		}
		if elapsed < 1 {
			elapsed = 1
		}
		cell.RepsNs = append(cell.RepsNs, elapsed)
		cell.Iterations = iters
	}
	delta := pool.Stats().Sub(before)
	cell.Sched = SchedStats{
		Jobs:           delta.Jobs,
		InlineRuns:     delta.InlineRuns,
		Chunks:         delta.Chunks,
		Steals:         delta.Steals,
		Parks:          delta.Parks,
		ImbalanceRatio: delta.ImbalanceRatio(),
	}
	cell.NsPerOp = MedianNs(cell.RepsNs)
	return cell, nil
}

// graphFor resolves (and caches) the named dataset at the configured size,
// plus its alignment profile (a one-time per-graph cost the affinity-batched
// methods need; building it here keeps it out of every cell's timing).
func (r *Runner) graphFor(name string) (*graph.Graph, *align.Profile, error) {
	if g, ok := r.graphs[name]; ok {
		return g, r.profiles[name], nil
	}
	g, err := graph.Generate(graph.Dataset(name), r.size)
	if err != nil {
		return nil, nil, fmt.Errorf("perf: %w", err)
	}
	prof := align.NewProfile(g, align.DefaultHubCount, 0)
	r.graphs[name] = g
	r.profiles[name] = prof
	return g, prof, nil
}

// cellSeed derives the per-cell sampler seed from the base seed and the cell
// name (kernel/graph only — every method and worker count must measure the
// same query buffer for cross-cell ratios to mean anything).
func cellSeed(base int64, key CellKey) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s/%s", base, key.Kernel, key.Graph)
	return int64(h.Sum64() >> 1)
}

// sampleSources draws count vertices with the same splitmix-style generator
// the differential harness uses (stable across Go releases).
func sampleSources(seed int64, n, count int) []graph.VertexID {
	out := make([]graph.VertexID, count)
	x := uint64(seed)
	for i := range out {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		out[i] = graph.VertexID(z % uint64(n))
	}
	return out
}
