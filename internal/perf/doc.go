// Package perf is the measured-performance tier: a benchmark harness that
// executes a fixed matrix of methods x kernels x graphs x worker counts
// (warmup + N repetitions, median-of-reps), emits a versioned glign.bench/v1
// JSON report carrying per-cell ns/op, scheduler telemetry (steals, chunk
// imbalance, parks) and an environment fingerprint, and a regression-diff
// engine that compares a fresh report against a committed baseline with
// per-cell noise tolerances.
//
// The harness exists because a throughput claim without a pinned,
// machine-checked measurement is a benchmark fault waiting to happen: the
// diff engine is what lets verify.sh treat "the hot path got slower" exactly
// like "the linter found a new warning". cmd/glign-perfgate is the CLI;
// EXPERIMENTS.md documents the knobs and the baseline-refresh workflow.
package perf
