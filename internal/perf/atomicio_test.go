package perf

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestWriteFileAtomicBasics(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, []byte("first\n")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("second\n")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second\n" {
		t.Fatalf("got %q, want the replacement content", got)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o644 {
		t.Fatalf("mode = %v, want 0644", info.Mode().Perm())
	}
	// No temp files left behind on the happy path.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want just the target: %v", len(entries), entries)
	}
}

func TestWriteJSONAtomicEndsWithNewline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.json")
	if err := WriteJSONAtomic(path, map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(got), "}\n") {
		t.Fatalf("JSON artifact must end with a newline, got %q", got)
	}
}

// TestAtomicWriteSurvivesKill spawns a helper process that rewrites one
// report path in a tight loop, SIGKILLs it mid-flight, and then requires the
// target to be either absent or a complete, valid report — never truncated.
// This is the property cmd/glign-bench -metrics-out and the perf harness rely
// on for sharing results/bench-report.json.
func TestAtomicWriteSurvivesKill(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")

	cmd := exec.Command(os.Args[0], "-test.run", "TestAtomicWriteKillHelper", "-test.v")
	cmd.Env = append(os.Environ(), "GLIGN_ATOMIC_KILL_HELPER=1", "GLIGN_ATOMIC_KILL_PATH="+path)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Let the helper complete at least a few full writes, then kill it at an
	// arbitrary point of its write loop.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			t.Fatal("helper never produced a report")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()

	// The survivor must be a complete, parseable, valid report.
	r, err := ReadReport(path)
	if err != nil {
		t.Fatalf("after SIGKILL mid-write, the report is corrupt: %v", err)
	}
	if len(r.Cells) == 0 {
		t.Fatal("surviving report has no cells")
	}
	// Stray temp files are acceptable debris after SIGKILL, but the target
	// itself must never be one of them.
	if strings.Contains(path, ".tmp-") {
		t.Fatal("unreachable")
	}
}

// TestAtomicWriteKillHelper is the subprocess body for the kill test: it
// rewrites the report at GLIGN_ATOMIC_KILL_PATH forever (until killed).
func TestAtomicWriteKillHelper(t *testing.T) {
	if os.Getenv("GLIGN_ATOMIC_KILL_HELPER") != "1" {
		t.Skip("helper only runs as a subprocess")
	}
	path := os.Getenv("GLIGN_ATOMIC_KILL_PATH")
	r := goldenReport()
	for i := 0; ; i++ {
		// Vary the payload so a torn write would be detectable as a median
		// mismatch even if it spliced two versions.
		ns := int64(1_000_000 + i%1000)
		r.Cells[0].RepsNs = []int64{ns, ns, ns}
		r.Cells[0].NsPerOp = ns
		if err := r.WriteReport(path); err != nil {
			t.Fatal(err)
		}
	}
}
