package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// SchemaVersion is the envelope identifier every benchmark report carries.
// The gate refuses to compare reports whose versions differ: a schema change
// without a deliberate baseline refresh is itself a regression.
const SchemaVersion = "glign.bench/v1"

// CellKey identifies one cell of the benchmark matrix.
type CellKey struct {
	Method  string `json:"method"`
	Kernel  string `json:"kernel"`
	Graph   string `json:"graph"`
	Workers int    `json:"workers"`
}

// String renders the cell coordinate as "Method/Kernel/Graph/wN".
func (k CellKey) String() string {
	return fmt.Sprintf("%s/%s/%s/w%d", k.Method, k.Kernel, k.Graph, k.Workers)
}

// SchedStats is the per-cell scheduler telemetry: the work-stealing pool's
// counter deltas accumulated over the measured repetitions (the cell runs on
// a dedicated pool, so the deltas are attributable to the cell alone).
type SchedStats struct {
	Jobs           int64   `json:"jobs"`
	InlineRuns     int64   `json:"inline_runs"`
	Chunks         int64   `json:"chunks"`
	Steals         int64   `json:"steals"`
	Parks          int64   `json:"parks"`
	ImbalanceRatio float64 `json:"chunk_imbalance_ratio"`
}

// Cell is one measured matrix cell.
type Cell struct {
	CellKey
	// NsPerOp is the median over RepsNs; one "op" is a full systems.Run of
	// the cell's query buffer (batching + evaluation).
	NsPerOp int64 `json:"ns_per_op"`
	// RepsNs lists every measured repetition in run order.
	RepsNs []int64 `json:"reps_ns"`
	// Iterations is the run's global-iteration total (a cheap sanity anchor:
	// a timing diff between runs that executed different iteration counts is
	// comparing different work).
	Iterations int        `json:"iterations"`
	Sched      SchedStats `json:"sched"`
}

// Env is the machine fingerprint embedded in every report. The diff engine
// only enforces time comparisons between fingerprints with the same CPU
// model and CPU count; anything else is advisory.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPUModel   string `json:"cpu_model"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// Comparable reports whether time measurements taken under e and o can be
// meaningfully compared: same CPU model, CPU count, and GOMAXPROCS. Go
// version and OS differences are reported but do not break comparability.
func (e Env) Comparable(o Env) bool {
	return e.CPUModel == o.CPUModel && e.NumCPU == o.NumCPU && e.GOMAXPROCS == o.GOMAXPROCS
}

// Matrix is the benchmark grid. The cross product of its axes (minus
// paradigm-incapable method/kernel combinations, which the runner skips)
// defines the report's cell set.
type Matrix struct {
	Methods []string `json:"methods"`
	Kernels []string `json:"kernels"`
	Graphs  []string `json:"graphs"`
	Workers []int    `json:"workers"`
}

// Config parameterizes a harness run.
type Config struct {
	Matrix
	// Size is the synthetic-graph size class: "tiny", "small" or "medium".
	Size string `json:"size"`
	// BatchSize is the query-buffer size of one op.
	BatchSize int `json:"batch"`
	// Warmup runs are executed and discarded before the Reps measured runs.
	Warmup int `json:"warmup"`
	Reps   int `json:"reps"`
	// Seed feeds the per-cell source sampler (splitmix over the cell name),
	// so every report measures identical query buffers.
	Seed int64 `json:"seed"`
}

// Report is the glign.bench/v1 artifact.
type Report struct {
	Schema    string `json:"schema"`
	Benchmark string `json:"benchmark"`
	// GeneratedAt is an RFC3339 timestamp; informational only (never
	// compared, empty in golden fixtures).
	GeneratedAt string `json:"generated_at,omitempty"`
	Aggregation string `json:"aggregation"`
	Env         Env    `json:"environment"`
	Config      Config `json:"config"`
	Cells       []Cell `json:"cells"`
}

// Validate checks the envelope: schema version, aggregation, and per-cell
// internal consistency (NsPerOp must be the median of RepsNs).
func (r *Report) Validate() error {
	if r.Schema != SchemaVersion {
		return fmt.Errorf("perf: schema %q, want %q", r.Schema, SchemaVersion)
	}
	if len(r.Cells) == 0 {
		return fmt.Errorf("perf: report has no cells")
	}
	seen := make(map[CellKey]bool, len(r.Cells))
	for _, c := range r.Cells {
		if seen[c.CellKey] {
			return fmt.Errorf("perf: duplicate cell %s", c.CellKey)
		}
		seen[c.CellKey] = true
		if len(c.RepsNs) == 0 {
			return fmt.Errorf("perf: cell %s has no repetitions", c.CellKey)
		}
		if m := MedianNs(c.RepsNs); m != c.NsPerOp {
			return fmt.Errorf("perf: cell %s ns_per_op %d is not the median of reps_ns (%d)",
				c.CellKey, c.NsPerOp, m)
		}
		if c.NsPerOp <= 0 {
			return fmt.Errorf("perf: cell %s has non-positive ns_per_op %d", c.CellKey, c.NsPerOp)
		}
	}
	return nil
}

// CellMap indexes the report's cells by coordinate.
func (r *Report) CellMap() map[CellKey]*Cell {
	m := make(map[CellKey]*Cell, len(r.Cells))
	for i := range r.Cells {
		m[r.Cells[i].CellKey] = &r.Cells[i]
	}
	return m
}

// SortCells orders cells by coordinate (method, kernel, graph, workers) so
// reports serialize deterministically regardless of measurement order.
func (r *Report) SortCells() {
	sort.Slice(r.Cells, func(i, j int) bool {
		a, b := r.Cells[i].CellKey, r.Cells[j].CellKey
		if a.Method != b.Method {
			return a.Method < b.Method
		}
		if a.Kernel != b.Kernel {
			return a.Kernel < b.Kernel
		}
		if a.Graph != b.Graph {
			return a.Graph < b.Graph
		}
		return a.Workers < b.Workers
	})
}

// MedianNs returns the median of ns (average of the two middles for even
// lengths, rounding down). It does not modify ns.
func MedianNs(ns []int64) int64 {
	if len(ns) == 0 {
		return 0
	}
	s := make([]int64, len(ns))
	copy(s, ns)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// ReadReport loads and validates a glign.bench/v1 report from path.
func ReadReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return &r, nil
}

// WriteReport writes the report to path atomically (temp file + rename), so
// an interrupted run never leaves a truncated artifact behind.
func (r *Report) WriteReport(path string) error {
	r.SortCells()
	return WriteJSONAtomic(path, r)
}
