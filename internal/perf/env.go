package perf

import (
	"os"
	"runtime"
	"strings"
)

// Fingerprint captures the environment a report was measured under. The CPU
// model comes from /proc/cpuinfo on Linux; on other platforms (or when the
// file is unreadable) it degrades to "unknown", which still compares stably
// against baselines taken on the same box.
func Fingerprint() Env {
	return Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUModel:   cpuModel(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// cpuModel parses the first "model name" line of /proc/cpuinfo.
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return "unknown"
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, val, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(val)
			}
		}
	}
	return "unknown"
}
