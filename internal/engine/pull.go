package engine

import (
	"sync/atomic"

	"github.com/glign/glign/internal/frontier"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/par"
	"github.com/glign/glign/internal/queries"
)

// RunPull evaluates q with the pull model (paper §2.1): in every iteration
// each vertex scans its *in*-neighbors and pulls improvements from the ones
// on the frontier, instead of active vertices pushing to out-neighbors. rev
// must be g.Reverse() (callers typically hold it already for the alignment
// profile). The fixed point is identical to Run's; the access pattern is
// not, which is why the paper's alignment analysis assumes push and this
// implementation exists as an ablation (see the abl-pull experiment).
//
// Pull's advantage is that each vertex has a single writer, so no CAS is
// needed on the value array; its cost is scanning in-neighbors of every
// vertex each iteration (Ligra mitigates this with dense/sparse switching;
// here pull is always dense, which is the regime where Ligra uses it).
func RunPull(g, rev *graph.Graph, q queries.Query, opt Options) *Result {
	n := g.NumVertices()
	k := q.Kernel
	kind := queries.KindOf(k)
	vals := queries.NewValues(n, k.Identity())
	vals.Set(int(q.Source), k.SourceValue())

	cur := frontier.FromVertices(n, q.Source)
	res := &Result{}
	pool := par.OrDefault(opt.Pool)
	workers := opt.Workers

	// Same per-iteration hygiene as Run: preallocate the iteration records
	// and recycle retired frontiers (glignlint/hotalloc).
	iterHint := opt.MaxIterations
	if iterHint <= 0 {
		iterHint = 64
	}
	res.FrontierSizes = make([]int, 0, iterHint)
	// Unconditional like Run's: the reservation must dominate the guarded
	// appends for the hotalloc dataflow (and costs one slice header).
	res.Frontiers = make([]*frontier.Subset, 0, iterHint)

	var scratch *frontier.Subset
	for iter := 0; !cur.IsEmpty(); iter++ {
		if opt.MaxIterations > 0 && iter >= opt.MaxIterations {
			break
		}
		res.FrontierSizes = append(res.FrontierSizes, cur.Count())
		if opt.RecordFrontiers {
			res.Frontiers = append(res.Frontiers, cur)
		}
		next := scratch
		scratch = nil
		if next == nil {
			next = frontier.New(n)
		} else {
			next.Clear()
		}
		pool.For(n, workers, 0, func(lo, hi int) {
			var edges, verts int64
			for d := lo; d < hi; d++ {
				ins, ws := rev.OutEdges(graph.VertexID(d))
				improved := false
				for j, s := range ins {
					if !cur.Contains(s) {
						continue
					}
					edges++
					w := graph.Weight(1)
					if ws != nil {
						w = ws[j]
					}
					if queries.RelaxImprove(vals, kind, k, d, vals.Get(int(s)), w) {
						improved = true
					}
				}
				if improved {
					verts++
					next.AddSync(graph.VertexID(d))
				}
			}
			atomic.AddInt64(&res.EdgesTraversed, edges)
			atomic.AddInt64(&res.VerticesProcessed, verts)
		})
		res.Iterations++
		if !opt.RecordFrontiers {
			scratch = cur
		}
		cur = next
	}
	res.Values = vals.Snapshot()
	return res
}
