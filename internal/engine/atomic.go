package engine

import "sync/atomic"

// atomicAdd accumulates per-worker counters into shared statistics.
func atomicAdd(addr *int64, delta int64) {
	if delta != 0 {
		atomic.AddInt64(addr, delta)
	}
}
