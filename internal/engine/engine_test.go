package engine

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/memtrace"
	"github.com/glign/glign/internal/queries"
)

// Table 1 of the paper: sssp(v1) on the Figure 3 graph.
func TestPaperTable1SSSPValues(t *testing.T) {
	g := graph.PaperExample()
	res := Run(g, queries.Query{Kernel: queries.SSSP, Source: 0}, Options{})
	want := []queries.Value{0, 17, 4, 12, 5, 7, 6, 22, 10}
	for i, w := range want {
		if res.Values[i] != w {
			t.Fatalf("dist(v%d) = %v, want %v (full: %v)", i+1, res.Values[i], w, res.Values)
		}
	}
	// Table 1 shows frontiers for iterations 0..4 then empty: 5 EdgeMap rounds.
	if res.Iterations != 5 {
		t.Fatalf("iterations = %d, want 5", res.Iterations)
	}
	wantSizes := []int{1, 1, 4, 2, 1}
	for i, s := range wantSizes {
		if res.FrontierSizes[i] != s {
			t.Fatalf("frontier sizes = %v, want %v", res.FrontierSizes, wantSizes)
		}
	}
}

// Table 2 frontier sizes for sssp(v2) and sssp(v8).
func TestPaperTable2FrontierSizes(t *testing.T) {
	g := graph.PaperExample()
	r2 := Run(g, queries.Query{Kernel: queries.SSSP, Source: 1}, Options{})
	if got, want := r2.FrontierSizes, []int{1, 2, 4, 1}; !equalInts(got, want) {
		t.Fatalf("sssp(v2) frontier sizes = %v, want %v", got, want)
	}
	r8 := Run(g, queries.Query{Kernel: queries.SSSP, Source: 7}, Options{})
	if got, want := r8.FrontierSizes, []int{1, 1, 2, 2, 3, 1}; !equalInts(got, want) {
		t.Fatalf("sssp(v8) frontier sizes = %v, want %v", got, want)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBFSOnPaperExample(t *testing.T) {
	g := graph.PaperExample()
	res := Run(g, queries.Query{Kernel: queries.BFS, Source: 0}, Options{})
	want := []queries.Value{0, 3, 1, 2, 2, 2, 2, 4, 3}
	for i, w := range want {
		if res.Values[i] != w {
			t.Fatalf("level(v%d) = %v, want %v", i+1, res.Values[i], w)
		}
	}
}

func TestUnreachableStaysIdentity(t *testing.T) {
	// v1 has no in-edges, so from v2 it must remain at identity.
	g := graph.PaperExample()
	res := Run(g, queries.Query{Kernel: queries.SSSP, Source: 1}, Options{})
	if !math.IsInf(res.Values[0], 1) {
		t.Fatalf("dist(v1) = %v, want +Inf", res.Values[0])
	}
}

func TestAllKernelsMatchReferenceOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		cfg := graph.DefaultRMAT(8, 6, int64(100+trial))
		cfg.Directed = trial%2 == 0
		g := graph.GenerateRMAT(cfg)
		src := graph.VertexID(rng.Intn(g.NumVertices()))
		for _, k := range queries.All() {
			q := queries.Query{Kernel: k, Source: src}
			got := Run(g, q, Options{}).Values
			want := ReferenceRun(g, q)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("trial %d %s src=%d: v%d = %v, want %v",
						trial, k.Name(), src, v, got[v], want[v])
				}
			}
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	q := queries.Query{Kernel: queries.SSSP, Source: 7}
	serial := Run(g, q, Options{Workers: 1}).Values
	parallel := Run(g, q, Options{Workers: 8}).Values
	for v := range serial {
		if serial[v] != parallel[v] {
			t.Fatalf("v%d: serial %v != parallel %v", v, serial[v], parallel[v])
		}
	}
}

func TestMaxIterationsTruncates(t *testing.T) {
	g := graph.PaperExample()
	res := Run(g, queries.Query{Kernel: queries.SSSP, Source: 0}, Options{MaxIterations: 2})
	if res.Iterations != 2 {
		t.Fatalf("iterations = %d, want 2", res.Iterations)
	}
	// v8 is 4 hops out; must still be at identity.
	if !math.IsInf(res.Values[7], 1) {
		t.Fatalf("dist(v8) = %v after 2 iterations", res.Values[7])
	}
}

func TestEdgeAndVertexCounters(t *testing.T) {
	g := graph.PaperExample()
	res := Run(g, queries.Query{Kernel: queries.SSSP, Source: 0}, Options{})
	// Iterations process frontiers {v1},{v3},{v4..v7},{v2,v9},{v8}:
	// vertices 1+1+4+2+1 = 9, edges = sum of their out-degrees.
	if res.VerticesProcessed != 9 {
		t.Fatalf("vertices processed = %d, want 9", res.VerticesProcessed)
	}
	wantEdges := int64(1 + 4 + (2 + 1 + 1 + 1) + (2 + 1) + 1)
	if res.EdgesTraversed != wantEdges {
		t.Fatalf("edges traversed = %d, want %d", res.EdgesTraversed, wantEdges)
	}
}

func TestTracerReceivesAccesses(t *testing.T) {
	g := graph.PaperExample()
	var ct memtrace.CountingTracer
	res := Run(g, queries.Query{Kernel: queries.SSSP, Source: 0}, Options{Tracer: &ct, Workers: 8})
	if ct.Reads == 0 || ct.Writes == 0 {
		t.Fatalf("tracer saw reads=%d writes=%d", ct.Reads, ct.Writes)
	}
	// Tracing must not change results.
	plain := Run(g, queries.Query{Kernel: queries.SSSP, Source: 0}, Options{})
	for v := range plain.Values {
		if res.Values[v] != plain.Values[v] {
			t.Fatal("tracing changed results")
		}
	}
	// Writes include one value write + one frontier write per activation:
	// 8 reachable vertices activate at least once.
	if ct.Writes < 16 {
		t.Fatalf("writes = %d, want >= 16", ct.Writes)
	}
}

func TestBFSHops(t *testing.T) {
	g := graph.PaperExample()
	hops := BFSHops(g, 0, 1)
	want := []int32{0, 3, 1, 2, 2, 2, 2, 4, 3}
	for i, w := range want {
		if hops[i] != w {
			t.Fatalf("hops[v%d] = %d, want %d", i+1, hops[i], w)
		}
	}
	// From v2, v1 is unreachable.
	hops = BFSHops(g, 1, 1)
	if hops[0] != -1 {
		t.Fatalf("hops[v1] = %d, want -1", hops[0])
	}
}

// Property: on arbitrary random graphs the engine's fixed point equals the
// reference for a random kernel/source (Theorem of label-correcting
// equivalence; also exercises CAS paths under the race detector).
func TestQuickEngineEqualsReference(t *testing.T) {
	kernels := queries.All()
	f := func(seed int64, ki uint8, srcRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		b := graph.NewBuilder(n, rng.Intn(2) == 0, true)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)),
				graph.Weight(1+rng.Intn(16)))
		}
		g := b.MustBuild()
		k := kernels[int(ki)%len(kernels)]
		src := graph.VertexID(int(srcRaw) % n)
		q := queries.Query{Kernel: k, Source: src}
		got := Run(g, q, Options{Workers: 4}).Values
		want := ReferenceRun(g, q)
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
