package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/queries"
)

func TestPullMatchesPushPaperExample(t *testing.T) {
	g := graph.PaperExample()
	rev := g.Reverse()
	for _, k := range queries.All() {
		for src := 0; src < g.NumVertices(); src++ {
			q := queries.Query{Kernel: k, Source: graph.VertexID(src)}
			push := Run(g, q, Options{}).Values
			pull := RunPull(g, rev, q, Options{}).Values
			for v := range push {
				if push[v] != pull[v] {
					t.Fatalf("%s(v%d): push %v != pull %v at v%d",
						k.Name(), src+1, push[v], pull[v], v+1)
				}
			}
		}
	}
}

func TestQuickPullEqualsPush(t *testing.T) {
	kernels := queries.All()
	f := func(seed int64, ki uint8, srcRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		b := graph.NewBuilder(n, rng.Intn(2) == 0, true)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)),
				graph.Weight(1+rng.Intn(16)))
		}
		g := b.MustBuild()
		q := queries.Query{
			Kernel: kernels[int(ki)%len(kernels)],
			Source: graph.VertexID(int(srcRaw) % n),
		}
		push := Run(g, q, Options{Workers: 2}).Values
		pull := RunPull(g, g.Reverse(), q, Options{Workers: 2}).Values
		for v := range push {
			if push[v] != pull[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPullCounters(t *testing.T) {
	g := graph.PaperExample()
	res := RunPull(g, g.Reverse(), queries.Query{Kernel: queries.BFS, Source: 0}, Options{Workers: 1})
	if res.Iterations == 0 || res.EdgesTraversed == 0 {
		t.Fatalf("counters empty: %+v", res)
	}
	if len(res.FrontierSizes) != res.Iterations {
		t.Fatal("frontier sizes not recorded per iteration")
	}
}
