// Package engine implements a Ligra-style single-query evaluation engine:
// iterative push-model EdgeMap over a frontier until the fixed point, with
// vertex-level parallelism. It is the substrate on which the concurrent
// engines in internal/core are built, the baseline "Ligra" of the paper, and
// the BFS workhorse of the inter-iteration alignment precompute (§3.3's
// reverse-BFS hub profile).
//
// The sequential baselines (Ligra-S) and the asynchronous Congra baseline
// drive one engine.Run per query; with Options.Telemetry set, each run
// records its per-iteration frontier sizes under its lane index
// (Options.TelemetryLane) so single-query timelines land in the same
// telemetry schema as batch engines (see OBSERVABILITY.md).
package engine
