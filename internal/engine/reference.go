package engine

import (
	"container/heap"

	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/queries"
)

// ReferenceRun evaluates q with a textbook serial label-correcting worklist
// (a Dijkstra-like priority queue ordered by "Better"), completely
// independent of the frontier/EdgeMap machinery. Tests compare every engine
// against it; it is also the per-query evaluator of the BGL-style
// query-level-parallelism baseline (paper §4.1), which pairs one serial
// evaluation per thread.
func ReferenceRun(g *graph.Graph, q queries.Query) []queries.Value {
	n := g.NumVertices()
	k := q.Kernel
	vals := make([]queries.Value, n)
	for i := range vals {
		vals[i] = k.Identity()
	}
	vals[q.Source] = k.SourceValue()

	pq := &valueHeap{better: k.Better}
	heap.Push(pq, heapItem{v: q.Source, val: vals[q.Source]})
	for pq.Len() > 0 {
		it := heap.Pop(pq).(heapItem)
		if it.val != vals[it.v] {
			continue // stale entry
		}
		nbrs, ws := g.OutEdges(it.v)
		for j, d := range nbrs {
			w := graph.Weight(1)
			if ws != nil {
				w = ws[j]
			}
			cand := k.Relax(it.val, w)
			if k.Better(cand, vals[d]) {
				vals[d] = cand
				heap.Push(pq, heapItem{v: d, val: cand})
			}
		}
	}
	return vals
}

type heapItem struct {
	v   graph.VertexID
	val queries.Value
}

// valueHeap orders items so the "best" value pops first; with monotone
// kernels this makes the worklist Dijkstra-like (each vertex settles few
// times).
type valueHeap struct {
	items  []heapItem
	better func(a, b queries.Value) bool
}

func (h *valueHeap) Len() int           { return len(h.items) }
func (h *valueHeap) Less(i, j int) bool { return h.better(h.items[i].val, h.items[j].val) }
func (h *valueHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *valueHeap) Push(x interface{}) { h.items = append(h.items, x.(heapItem)) }
func (h *valueHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
