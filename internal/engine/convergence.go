package engine

import (
	"fmt"
	"math"
	"sync/atomic"

	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/par"
	"github.com/glign/glign/internal/queries"
	"github.com/glign/glign/internal/telemetry"
)

// ConvergenceGeometry bundles the graph-shape precomputation every Jacobi
// evaluation needs: the edge-reversed view the pull rounds walk, the
// out-degree of every vertex (convergence kernels normalize by it), and the
// maximum in-degree (sizes the per-worker gather scratch). It is exported so
// internal/core's lane-fused batch evaluator shares the exact construction —
// in-neighbor order must match bit-for-bit between the sequential and the
// batched paths for their float results to be identical.
type ConvergenceGeometry struct {
	Rev      *graph.Graph
	OutDeg   []int32
	MaxInDeg int
}

// NewConvergenceGeometry derives the Jacobi geometry of g. A nil rev makes
// it derive the reversed view itself (g when undirected, g.Reverse()
// otherwise — both enumerate the in-neighbors of a vertex in ascending
// source-vertex order, the order the determinism contract of
// queries.ConvergenceKernel.Step is stated over).
func NewConvergenceGeometry(g, rev *graph.Graph) *ConvergenceGeometry {
	if rev == nil {
		if g.Directed {
			rev = g.Reverse()
		} else {
			rev = g
		}
	}
	n := g.NumVertices()
	geo := &ConvergenceGeometry{Rev: rev, OutDeg: make([]int32, n)}
	for v := 0; v < n; v++ {
		d := g.OutDegree(graph.VertexID(v))
		geo.OutDeg[v] = int32(d)
		if in := rev.OutDegree(graph.VertexID(v)); in > geo.MaxInDeg {
			geo.MaxInDeg = in
		}
	}
	return geo
}

// JacobiScratch is the per-worker gather scratch of one Jacobi chunk:
// in-neighbor values and out-degrees sized to the maximum in-degree, plus
// one residual accumulator per lane. Allocated once per worker chunk
// through this constructor — the same scratch idiom as the monotone
// engines' per-chunk state, and the shape hotalloc expects.
type JacobiScratch struct {
	Nbrs  []queries.Value
	Degs  []int32
	Resid []float64
}

// NewJacobiScratch sizes a scratch for maxIn in-neighbors and `lanes`
// residual accumulators (zero-initialized).
func NewJacobiScratch(maxIn, lanes int) *JacobiScratch {
	return &JacobiScratch{
		Nbrs:  make([]queries.Value, maxIn),
		Degs:  make([]int32, maxIn),
		Resid: make([]float64, lanes),
	}
}

// atomicMaxFloat raises the float stored in *bits (as math.Float64bits) to
// at least x — the lock-free max-merge worker chunks publish their local
// residual maxima through.
func atomicMaxFloat(bits *uint64, x float64) {
	for {
		old := atomic.LoadUint64(bits)
		if math.Float64frombits(old) >= x {
			return
		}
		if atomic.CompareAndSwapUint64(bits, old, math.Float64bits(x)) {
			return
		}
	}
}

// RunConvergence evaluates a convergence-kernel query on g by synchronous
// Jacobi iteration: every round recomputes all vertices from the previous
// round's in-neighbor values (double-buffered — no CAS, no monotone
// shortcut), and the run finishes when the maximum per-vertex residual drops
// to the kernel's Epsilon or the kernel's MaxRounds cap hits. The
// max-residual criterion is order-independent, so the convergence decision —
// and, with the in-neighbor order contract, every float in Values — is
// identical across worker counts.
//
// Options.Tracer and Options.RecordFrontiers are ignored: access tracing and
// frontier affinity both model the monotone push design, which has no
// counterpart here (every vertex is active every round).
func RunConvergence(g *graph.Graph, q queries.Query, opt Options) (*Result, error) {
	ck, ok := queries.ConvergentOf(q.Kernel)
	if !ok {
		return nil, fmt.Errorf("engine: kernel %s is not a convergence kernel", q.Kernel.Name())
	}
	n := g.NumVertices()
	if int(q.Source) >= n {
		return nil, fmt.Errorf("engine: source v%d out of range (n=%d)", q.Source, n)
	}
	geo := NewConvergenceGeometry(g, opt.ReverseGraph)
	pool := par.OrDefault(opt.Pool)
	workers := opt.Workers

	old := make([]queries.Value, n)
	next := make([]queries.Value, n)
	pool.For(n, workers, 0, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			old[v] = ck.InitialValue(n, graph.VertexID(v), q.Source)
		}
	})

	maxRounds := ck.MaxRounds()
	if opt.MaxIterations > 0 && opt.MaxIterations < maxRounds {
		maxRounds = opt.MaxIterations
	}
	eps := ck.Epsilon()
	res := &Result{}
	sizes := make([]int, 0, iterHintFor(maxRounds))
	var residBits uint64
	for round := 0; round < maxRounds; round++ {
		sizes = append(sizes, n)
		var prevEdges, prevWrites int64
		if opt.Telemetry != nil {
			prevEdges = atomic.LoadInt64(&res.EdgesTraversed)
			prevWrites = atomic.LoadInt64(&res.ValueWrites)
		}
		atomic.StoreUint64(&residBits, 0)
		pool.For(n, workers, 0, func(lo, hi int) {
			scratch := NewJacobiScratch(geo.MaxInDeg, 1)
			var edges, writes int64
			localMax := 0.0
			for v := lo; v < hi; v++ {
				us, _ := geo.Rev.OutEdges(graph.VertexID(v))
				for j, u := range us {
					scratch.Nbrs[j] = old[u]
					scratch.Degs[j] = geo.OutDeg[u]
				}
				nv := ck.Step(n, old[v], scratch.Nbrs[:len(us)], scratch.Degs[:len(us)])
				next[v] = nv
				if r := ck.Residual(old[v], nv); r > localMax {
					localMax = r
				}
				if nv != old[v] {
					writes++
				}
				edges += int64(len(us))
			}
			atomic.AddInt64(&res.EdgesTraversed, edges)
			atomic.AddInt64(&res.VerticesProcessed, int64(hi-lo))
			atomic.AddInt64(&res.ValueWrites, writes)
			atomicMaxFloat(&residBits, localMax)
		})
		maxResid := math.Float64frombits(atomic.LoadUint64(&residBits))
		old, next = next, old
		res.Iterations++
		if opt.Telemetry != nil {
			iterEdges := atomic.LoadInt64(&res.EdgesTraversed) - prevEdges
			opt.Telemetry.RecordIteration(telemetry.IterationStat{
				Iter:            round,
				Query:           opt.TelemetryLane,
				FrontierSize:    n,
				Mode:            telemetry.ModeJacobi,
				ActiveQueries:   1,
				EdgesProcessed:  iterEdges,
				LaneRelaxations: iterEdges,
				ValueWrites:     atomic.LoadInt64(&res.ValueWrites) - prevWrites,
			})
		}
		res.Residual = maxResid
		if maxResid <= eps {
			break
		}
	}
	res.FrontierSizes = sizes
	res.Values = old
	return res, nil
}

// iterHintFor caps the FrontierSizes preallocation: convergence runs record
// one entry per round, and a round cap in the thousands should not reserve
// kilobytes up front for runs that converge in tens of rounds.
func iterHintFor(maxRounds int) int {
	if maxRounds > 256 {
		return 256
	}
	return maxRounds
}
