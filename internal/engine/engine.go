package engine

import (
	"sync/atomic"

	"github.com/glign/glign/internal/frontier"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/memtrace"
	"github.com/glign/glign/internal/par"
	"github.com/glign/glign/internal/queries"
	"github.com/glign/glign/internal/telemetry"
)

// Options configures a run.
type Options struct {
	// Workers bounds parallelism; <= 0 means GOMAXPROCS. Tracing runs are
	// forced single-threaded for deterministic access order.
	Workers int
	// Pool is the work-stealing scheduler the run submits its parallel loops
	// to; nil means the shared par.Default pool. Injecting a pool isolates a
	// run's scheduling (and its steal/imbalance telemetry) from other
	// concurrent work.
	Pool *par.Pool
	// MaxIterations stops evaluation early when > 0 (monotone kernels
	// otherwise run to their natural fixed point).
	MaxIterations int
	// Tracer, when non-nil, receives every memory access of the run.
	Tracer memtrace.Tracer
	// ReverseGraph, when non-nil, is the edge-reversed graph RunConvergence
	// pulls in-neighbor values over. Nil makes RunConvergence derive it
	// (the graph itself when undirected, Reverse() otherwise); callers
	// evaluating many queries on one graph pass it to amortize the
	// reversal. The monotone push engine (Run) ignores it.
	ReverseGraph *graph.Graph
	// RecordFrontiers retains the frontier subset of every iteration in
	// Result.Frontiers (used by the affinity analyses of internal/align).
	RecordFrontiers bool
	// Telemetry, when non-nil, receives one IterationStat per iteration
	// with Query = TelemetryLane (sequential batch engines evaluate one
	// query at a time, so their "global" iterations are per-query).
	Telemetry *telemetry.BatchTrace
	// TelemetryLane is the batch lane recorded in telemetry records.
	TelemetryLane int
}

// Result carries the outcome of a single-query evaluation.
type Result struct {
	// Values holds the final value of every vertex (Identity where
	// unreached).
	Values []queries.Value
	// Iterations is the number of executed iterations (EdgeMap rounds).
	Iterations int
	// FrontierSizes records |frontier| entering each iteration;
	// FrontierSizes[0] == 1 (the source). This is the raw material of the
	// paper's Figure 7.
	FrontierSizes []int
	// EdgesTraversed counts relaxation attempts; VerticesProcessed counts
	// active-vertex visits; ValueWrites counts successful relaxations.
	EdgesTraversed    int64
	VerticesProcessed int64
	ValueWrites       int64
	// Frontiers holds the frontier of each iteration when
	// Options.RecordFrontiers is set (Frontiers[j] enters iteration j).
	Frontiers []*frontier.Subset
	// Residual is the max per-vertex residual of the last executed round of
	// a RunConvergence evaluation (<= the kernel's Epsilon iff the run
	// converged before its round cap); always 0 for monotone runs.
	Residual float64
}

// addressing captures the simulated memory layout of a run for tracing.
type addressing struct {
	offsets, targets, weights, values, curFront, nextFront int64
}

func layoutFor(g *graph.Graph) addressing {
	var l memtrace.Layout
	n := int64(g.NumVertices())
	m := int64(g.NumEdges())
	a := addressing{
		offsets: l.Place((n + 1) * 4),
		targets: l.Place(m * 4),
	}
	if g.Weighted() {
		a.weights = l.Place(m * 4)
	}
	a.values = l.Place(n * 8)
	a.curFront = l.Place((n + 63) / 64 * 8)
	a.nextFront = l.Place((n + 63) / 64 * 8)
	return a
}

// Run evaluates the query q on g to its fixed point and returns the result.
func Run(g *graph.Graph, q queries.Query, opt Options) *Result {
	n := g.NumVertices()
	k := q.Kernel
	kind := queries.KindOf(k)
	vals := queries.NewValues(n, k.Identity())
	vals.Set(int(q.Source), k.SourceValue())

	cur := frontier.FromVertices(n, q.Source)
	res := &Result{}

	// Monotone kernels converge in O(diameter) rounds and capped runs bound
	// their history exactly, so sizing the per-iteration records up front
	// keeps the traversal loop free of append growth (glignlint/hotalloc).
	iterHint := opt.MaxIterations
	if iterHint <= 0 {
		iterHint = 64
	}
	res.FrontierSizes = make([]int, 0, iterHint)
	// Reserved unconditionally (one small slice header) so the reservation
	// dominates the guarded appends on every path; consumers only ever
	// range/len over Frontiers, so empty and nil are interchangeable.
	res.Frontiers = make([]*frontier.Subset, 0, iterHint)

	tr := opt.Tracer
	pool := par.OrDefault(opt.Pool)
	workers := opt.Workers
	if tr != nil {
		workers = 1
	}
	var addr addressing
	if tr != nil {
		addr = layoutFor(g)
	}

	// scratch recycles the previous iteration's frontier as the next round's
	// output bitmap, so the steady state allocates nothing per iteration. It
	// stays nil while RecordFrontiers is on: the recorded history owns every
	// retired frontier and must not be overwritten.
	var scratch *frontier.Subset
	for iter := 0; !cur.IsEmpty(); iter++ {
		if opt.MaxIterations > 0 && iter >= opt.MaxIterations {
			break
		}
		frontierSize := cur.Count()
		res.FrontierSizes = append(res.FrontierSizes, frontierSize)
		if opt.RecordFrontiers {
			res.Frontiers = append(res.Frontiers, cur)
		}
		var prevEdges, prevWrites int64
		if opt.Telemetry != nil {
			prevEdges = atomic.LoadInt64(&res.EdgesTraversed)
			prevWrites = atomic.LoadInt64(&res.ValueWrites)
		}
		next := scratch
		scratch = nil
		if next == nil {
			next = frontier.New(n)
		} else {
			next.Clear()
		}
		active := cur.Sparse()
		if tr != nil {
			// Materializing the sparse view scans the frontier bitmap.
			traceScan(tr, addr.curFront, int64(len(cur.Words()))*8)
		}
		pool.For(len(active), workers, 0, func(lo, hi int) {
			var edges, verts, writes int64
			for i := lo; i < hi; i++ {
				v := active[i]
				verts++
				if tr != nil {
					tr.Access(addr.offsets+int64(v)*4, 8, false)
					tr.Access(addr.values+int64(v)*8, 8, false)
				}
				sv := vals.Get(int(v))
				nbrs, ws := g.OutEdges(v)
				for j, d := range nbrs {
					edges++
					w := graph.Weight(1)
					if ws != nil {
						w = ws[j]
					}
					if tr != nil {
						eo := int64(g.Offsets[v]) + int64(j)
						tr.Access(addr.targets+eo*4, 4, false)
						if ws != nil {
							tr.Access(addr.weights+eo*4, 4, false)
						}
						tr.Access(addr.values+int64(d)*8, 8, false)
					}
					if queries.RelaxImprove(vals, kind, k, int(d), sv, w) {
						writes++
						if tr != nil {
							tr.Access(addr.values+int64(d)*8, 8, true)
							tr.Access(addr.nextFront+int64(d>>6)*8, 8, true)
						}
						next.AddSync(d)
					}
				}
			}
			atomic.AddInt64(&res.EdgesTraversed, edges)
			atomic.AddInt64(&res.VerticesProcessed, verts)
			atomic.AddInt64(&res.ValueWrites, writes)
		})
		res.Iterations++
		if !opt.RecordFrontiers {
			scratch = cur
		}
		cur = next
		if opt.Telemetry != nil {
			injected := 0
			if iter == 0 {
				injected = 1 // the source, seeded before the loop
			}
			iterEdges := atomic.LoadInt64(&res.EdgesTraversed) - prevEdges
			opt.Telemetry.RecordIteration(telemetry.IterationStat{
				Iter:            iter,
				Query:           opt.TelemetryLane,
				FrontierSize:    frontierSize,
				Mode:            telemetry.ModePush,
				ActiveQueries:   1,
				InjectedQueries: injected,
				EdgesProcessed:  iterEdges,
				LaneRelaxations: iterEdges,
				ValueWrites:     atomic.LoadInt64(&res.ValueWrites) - prevWrites,
			})
		}
		if tr != nil {
			addr.curFront, addr.nextFront = addr.nextFront, addr.curFront
		}
	}
	res.Values = vals.Snapshot()
	return res
}

// traceScan issues sequential 8-byte reads across a region, modelling a
// bitmap scan.
func traceScan(tr memtrace.Tracer, base, size int64) {
	for off := int64(0); off < size; off += 8 {
		tr.Access(base+off, 8, false)
	}
}

// BFSHops runs an unweighted BFS from src and returns the hop count of every
// vertex as int32 (-1 where unreachable). It is the precompute primitive of
// inter-iteration alignment (paper Figure 9 line 5: leastHops via bfs on the
// reversed graph).
func BFSHops(g *graph.Graph, src graph.VertexID, workers int) []int32 {
	res := Run(g, queries.Query{Kernel: queries.BFS, Source: src}, Options{Workers: workers})
	hops := make([]int32, len(res.Values))
	par.For(len(res.Values), workers, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if res.Values[i] == queries.BFS.Identity() {
				hops[i] = -1
			} else {
				hops[i] = int32(res.Values[i])
			}
		}
	})
	return hops
}
