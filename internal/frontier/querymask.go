package frontier

import (
	"sync/atomic"

	"github.com/glign/glign/internal/graph"
)

// QueryMask stores, for every vertex, the set of queries (up to 64) for
// which the vertex is active, as one uint64 bitmask per vertex. This is the
// fused per-vertex layout used by the Krill-style engine: unlike the B
// separate frontier arrays of Ligra-C, the activation state of all queries
// at a vertex shares one cache line, but unlike Glign's query-oblivious
// frontier it still tracks per-query activation.
type QueryMask struct {
	n     int
	masks []uint64
	// active counts vertices with a non-zero mask.
	active atomic.Int64
}

// NewQueryMask returns an empty mask set over n vertices. It supports
// batches of at most 64 queries.
func NewQueryMask(n int) *QueryMask {
	return &QueryMask{n: n, masks: make([]uint64, n)}
}

// MaxQueries is the largest batch a QueryMask can represent.
const MaxQueries = 64

// Set marks vertex v active for query q (0-based), with CAS so concurrent
// writers are safe. It returns newBit (this call set a previously clear bit)
// and firstForVertex (v transitioned from fully inactive); engines use the
// latter to add v to a shared union frontier exactly once.
func (m *QueryMask) Set(v graph.VertexID, q int) (newBit, firstForVertex bool) {
	b := uint64(1) << uint(q)
	addr := &m.masks[v]
	for {
		old := atomic.LoadUint64(addr)
		if old&b != 0 {
			return false, false
		}
		if atomic.CompareAndSwapUint64(addr, old, old|b) {
			if old == 0 {
				m.active.Add(1)
			}
			return true, old == 0
		}
	}
}

// Get returns the query bitmask of v.
func (m *QueryMask) Get(v graph.VertexID) uint64 {
	return atomic.LoadUint64(&m.masks[v])
}

// AnyActive reports whether any vertex is active for any query.
func (m *QueryMask) AnyActive() bool { return m.active.Load() > 0 }

// ActiveVertices returns the count of vertices active for at least one query.
func (m *QueryMask) ActiveVertices() int { return int(m.active.Load()) }

// Clear deactivates everything, retaining capacity. Callers quiesce first.
//
//lint:ignore glignlint/atomicmix bulk reset in a quiesced phase; no concurrent Set can be in flight
func (m *QueryMask) Clear() {
	for i := range m.masks {
		m.masks[i] = 0
	}
	m.active.Store(0)
}

// Bytes returns the footprint of the mask array.
func (m *QueryMask) Bytes() int64 { return int64(len(m.masks)) * 8 }
