// Package frontier implements the VertexSubset abstraction of Ligra-style
// engines: the set of active vertices of one iteration. A Subset is a dense
// bitmap with an optional cached sparse (vertex list) view; insertion is
// race-free via CAS so that a parallel EdgeMap can build the next frontier
// concurrently.
//
// Glign's query-oblivious frontier (paper §3.2) is a single Subset shared by
// every query in the batch; the two-level design it replaces (Ligra-C,
// Krill, SimGQ) additionally keeps one Subset — or a per-vertex query
// bitmask, see QueryMask — per query. Subset.Count is what the engines
// report as frontier_size in per-iteration telemetry, the quantity behind
// the paper's Figure 7 traversal-peak analysis.
package frontier
