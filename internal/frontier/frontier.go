package frontier

import (
	"math/bits"
	"sync/atomic"

	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/par"
)

// Subset is a set of vertices out of a universe of n. The zero value is not
// usable; construct with New.
type Subset struct {
	n     int
	words []uint64
	count atomic.Int64

	// sparse caches the materialized vertex list; it is invalidated by any
	// mutation. Only valid when sparseOK.
	sparse   []graph.VertexID
	sparseOK bool
}

// New returns an empty subset over n vertices.
func New(n int) *Subset {
	return &Subset{n: n, words: make([]uint64, (n+63)/64)}
}

// FromVertices returns a subset containing exactly vs.
func FromVertices(n int, vs ...graph.VertexID) *Subset {
	s := New(n)
	for _, v := range vs {
		s.Add(v)
	}
	return s
}

// Universe returns n, the size of the vertex universe.
func (s *Subset) Universe() int { return s.n }

// Words exposes the underlying bitmap (read-only for callers).
func (s *Subset) Words() []uint64 { return s.words }

// WordsBytes returns the bitmap footprint in bytes (used by the Table 11
// memory-footprint experiment).
func (s *Subset) WordsBytes() int64 { return int64(len(s.words)) * 8 }

// Add inserts v without synchronization. It reports whether v was newly
// inserted. Use AddSync from concurrent writers.
//
//lint:ignore glignlint/atomicmix single-threaded by contract: concurrent writers must use AddSync
func (s *Subset) Add(v graph.VertexID) bool {
	w, b := v>>6, uint64(1)<<(v&63)
	if s.words[w]&b != 0 {
		return false
	}
	s.words[w] |= b
	s.count.Add(1)
	s.sparseOK = false
	return true
}

// AddSync inserts v with a CAS loop, safe for concurrent use. It reports
// whether v was newly inserted (exactly one concurrent caller wins).
func (s *Subset) AddSync(v graph.VertexID) bool {
	w, b := v>>6, uint64(1)<<(v&63)
	addr := &s.words[w]
	for {
		old := atomic.LoadUint64(addr)
		if old&b != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, old|b) {
			s.count.Add(1)
			return true
		}
	}
}

// Contains reports whether v is in the subset. It is safe to call
// concurrently with AddSync (readers may observe a slightly stale view, as
// in Ligra).
func (s *Subset) Contains(v graph.VertexID) bool {
	return atomic.LoadUint64(&s.words[v>>6])&(uint64(1)<<(v&63)) != 0
}

// Count returns the number of vertices in the subset.
func (s *Subset) Count() int { return int(s.count.Load()) }

// IsEmpty reports whether the subset is empty.
func (s *Subset) IsEmpty() bool { return s.Count() == 0 }

// Clear removes all vertices, retaining capacity. Callers quiesce first.
//
//lint:ignore glignlint/atomicmix bulk reset in a quiesced phase; no concurrent AddSync can be in flight
func (s *Subset) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
	s.count.Store(0)
	s.sparse = s.sparse[:0]
	s.sparseOK = false
}

// Clone returns an independent copy.
//
//lint:ignore glignlint/atomicmix bulk copy of a quiesced bitmap; callers clone between iterations, never mid-relaxation
func (s *Subset) Clone() *Subset {
	c := New(s.n)
	copy(c.words, s.words)
	c.count.Store(s.count.Load())
	return c
}

// UnionWith adds every vertex of o into s (single-threaded).
//
//lint:ignore glignlint/atomicmix single-threaded merge between iterations; atomic word ops would halve throughput for no soundness gain
func (s *Subset) UnionWith(o *Subset) {
	total := 0
	for i := range s.words {
		s.words[i] |= o.words[i]
		total += bits.OnesCount64(s.words[i])
	}
	s.count.Store(int64(total))
	s.sparseOK = false
}

// UnionOf builds the union of parts (which must share one universe) with one
// word-level pass: 64 membership bits OR-combine per operation, and the
// member count falls out of bits.OnesCount64 on the way — no per-vertex CAS.
// This is how the two-level engine derives its unified frontier from the B
// separate lane frontiers after each iteration's relaxations have quiesced;
// at B=16 it replaces up to 16 AddSync CAS loops per improved vertex with
// one word read per lane per 64 vertices. The word scan runs on the pool
// (disjoint word blocks, chunk-ordered integer reduction — deterministic).
//
//lint:ignore glignlint/atomicmix the destination is private until return and parts are quiesced by contract; no AddSync can be in flight
func UnionOf(pool *par.Pool, workers int, parts ...*Subset) *Subset {
	if len(parts) == 0 {
		panic("frontier: UnionOf of no subsets")
	}
	u := New(parts[0].n)
	for _, p := range parts {
		if p.n != u.n {
			panic("frontier: UnionOf over mismatched universes")
		}
	}
	words := u.words
	total := par.ForReduce(pool, len(words), workers, 0, 0,
		func(lo, hi int, acc int) int {
			for wi := lo; wi < hi; wi++ {
				var w uint64
				for _, p := range parts {
					w |= p.words[wi]
				}
				words[wi] = w
				acc += bits.OnesCount64(w)
			}
			return acc
		},
		func(a, b int) int { return a + b })
	u.count.Store(int64(total))
	return u
}

// OverlapCount returns |s ∩ o| (single-threaded, like UnionWith).
//
//lint:ignore glignlint/atomicmix read-only scan of quiesced frontiers (alignment profiling runs between traversals)
func (s *Subset) OverlapCount(o *Subset) int {
	total := 0
	for i := range s.words {
		total += bits.OnesCount64(s.words[i] & o.words[i])
	}
	return total
}

// sparseParWords and sparseParCount gate the parallel materialization path
// of Sparse: both the bitmap (words) and the membership (vertices) must be
// large enough that the two scan passes amortize the dispatch. Below either
// threshold the serial walk wins and runs unchanged.
const (
	sparseParWords = 4096
	sparseParCount = 4096
)

// sparseBlockWords is the bitmap granule of the parallel path: blocks of
// 256 words (16K vertex slots, 2 KiB of bitmap) are counted and then filled
// independently, with a serial prefix sum in between fixing each block's
// output offset. Output order stays sorted — block bi writes exactly the
// slice [offsets[bi], offsets[bi+1]) in ascending vertex order.
const sparseBlockWords = 256

// Sparse returns the sorted list of member vertices, materializing and
// caching it on first use. The returned slice must not be modified. Not safe
// to call concurrently with mutation. Large dense frontiers materialize in
// parallel on the shared pool (count/prefix/fill over bitmap blocks); the
// result is identical to the serial walk.
//
//lint:ignore glignlint/atomicmix materialization happens between iterations by contract; the bitmap is quiesced
func (s *Subset) Sparse() []graph.VertexID {
	if s.sparseOK {
		return s.sparse
	}
	if len(s.words) >= sparseParWords && s.Count() >= sparseParCount {
		nb := (len(s.words) + sparseBlockWords - 1) / sparseBlockWords
		offsets := make([]int, nb+1)
		par.For(nb, 0, 1, func(lo, hi int) {
			for bi := lo; bi < hi; bi++ {
				wlo := bi * sparseBlockWords
				whi := wlo + sparseBlockWords
				if whi > len(s.words) {
					whi = len(s.words)
				}
				c := 0
				for wi := wlo; wi < whi; wi++ {
					c += bits.OnesCount64(s.words[wi])
				}
				offsets[bi+1] = c
			}
		})
		for bi := 0; bi < nb; bi++ {
			offsets[bi+1] += offsets[bi]
		}
		total := offsets[nb]
		if cap(s.sparse) < total {
			s.sparse = make([]graph.VertexID, total)
		} else {
			s.sparse = s.sparse[:total]
		}
		out := s.sparse
		par.For(nb, 0, 1, func(lo, hi int) {
			for bi := lo; bi < hi; bi++ {
				wlo := bi * sparseBlockWords
				whi := wlo + sparseBlockWords
				if whi > len(s.words) {
					whi = len(s.words)
				}
				at := offsets[bi]
				for wi := wlo; wi < whi; wi++ {
					w := s.words[wi]
					for w != 0 {
						b := bits.TrailingZeros64(w)
						out[at] = graph.VertexID(wi*64 + b)
						at++
						w &^= 1 << b
					}
				}
			}
		})
		s.sparseOK = true
		return s.sparse
	}
	s.sparse = s.sparse[:0]
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			s.sparse = append(s.sparse, graph.VertexID(wi*64+b))
			w &^= 1 << b
		}
	}
	s.sparseOK = true
	return s.sparse
}

// ForEach invokes fn for each member vertex in increasing order.
func (s *Subset) ForEach(fn func(v graph.VertexID)) {
	for _, v := range s.Sparse() {
		fn(v)
	}
}

// DenseThreshold is the Ligra-style switch point: a frontier is "dense" when
// the sum of member count and their out-degrees exceeds |E|/DenseDivisor.
// Exported so engines and tests can reason about the mode.
const DenseDivisor = 20

// IsDense applies the Ligra heuristic given the total out-degree of members.
func (s *Subset) IsDense(outDegreeSum, numEdges int) bool {
	return s.Count()+outDegreeSum > numEdges/DenseDivisor
}
