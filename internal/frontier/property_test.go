package frontier

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/glign/glign/internal/graph"
)

// Shared generator helper for the property tests below: genSubset draws a
// random subset of [0, n) with the given number of insertion attempts
// (duplicates allowed, as in real frontier construction) and returns both
// the Subset and an independent reference member map. Deterministic in rng.
func genSubset(rng *rand.Rand, n, adds int) (*Subset, map[graph.VertexID]bool) {
	s := New(n)
	ref := make(map[graph.VertexID]bool, adds)
	for i := 0; i < adds; i++ {
		v := graph.VertexID(rng.Intn(n))
		s.Add(v)
		ref[v] = true
	}
	return s, ref
}

// quickCfg returns the quick.Check config the frontier properties share: a
// seeded source so failures replay, and enough rounds to cover word
// boundaries and empty/full corners.
func quickCfg(seed int64, rounds int) *quick.Config {
	return &quick.Config{
		MaxCount: rounds,
		Rand:     rand.New(rand.NewSource(seed)),
	}
}

// Property: sparse -> dense -> sparse round-trips exactly. Building a
// Subset from any vertex list and materializing it back yields the sorted
// deduplicated list, and rebuilding from that list yields an equal bitmap.
func TestQuickSparseDenseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64 + rng.Intn(1<<12)
		s, ref := genSubset(rng, n, rng.Intn(2*n))
		sp := s.Sparse()
		if len(sp) != len(ref) || s.Count() != len(ref) {
			return false
		}
		for i, v := range sp {
			if !ref[v] {
				return false
			}
			if i > 0 && sp[i-1] >= v {
				return false // sorted, strictly increasing
			}
		}
		back := FromVertices(n, sp...)
		if back.Count() != s.Count() {
			return false
		}
		for i, w := range back.Words() {
			if w != s.Words()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(1, 150)); err != nil {
		t.Fatal(err)
	}
}

// The parallel materialization path (bitmaps of >= sparseParWords words
// with >= sparseParCount members) must produce exactly the serial result.
// This drives the pool through Sparse with dense, sparse-tail and clustered
// membership shapes.
func TestSparseParallelMatchesSerial(t *testing.T) {
	const n = sparseParWords * 64 * 2 // twice the parallel threshold in words
	shapes := map[string]func(rng *rand.Rand) *Subset{
		"uniform": func(rng *rand.Rand) *Subset {
			s := New(n)
			for i := 0; i < 3*sparseParCount; i++ {
				s.Add(graph.VertexID(rng.Intn(n)))
			}
			return s
		},
		"clustered": func(rng *rand.Rand) *Subset {
			s := New(n)
			for c := 0; c < 8; c++ {
				base := rng.Intn(n - 1024)
				for i := 0; i < 1024; i++ {
					s.Add(graph.VertexID(base + i))
				}
			}
			return s
		},
		"block-edges": func(rng *rand.Rand) *Subset {
			// Members hugging every parallel-block boundary, the off-by-one
			// hot spot of the count/prefix/fill passes.
			s := New(n)
			for w := 0; w < n/64; w += sparseBlockWords {
				s.Add(graph.VertexID(w * 64))
				if w > 0 {
					s.Add(graph.VertexID(w*64 - 1))
				}
			}
			for i := 0; s.Count() < sparseParCount; i++ {
				s.Add(graph.VertexID(rng.Intn(n)))
			}
			return s
		},
	}
	for name, build := range shapes {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			s := build(rng)
			if s.Count() < sparseParCount {
				t.Fatalf("shape %s produced %d members, below the parallel gate", name, s.Count())
			}
			got := s.Sparse()
			// Serial reconstruction straight from the bitmap.
			var want []graph.VertexID
			for wi, w := range s.Words() {
				for w != 0 {
					b := bits.TrailingZeros64(w)
					want = append(want, graph.VertexID(wi*64+b))
					w &^= 1 << b
				}
			}
			if len(got) != len(want) {
				t.Fatalf("parallel sparse has %d members, serial %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("parallel sparse[%d] = %d, serial = %d", i, got[i], want[i])
				}
			}
		})
	}
}

// Property: Clone is fully independent — mutating either side never shows
// through the other, and the clone preserves membership and count.
func TestQuickCloneIndependence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64 + rng.Intn(1<<10)
		s, ref := genSubset(rng, n, rng.Intn(n))
		c := s.Clone()
		if c.Count() != s.Count() {
			return false
		}
		for v := range ref {
			if !c.Contains(v) {
				return false
			}
		}
		// Mutate both sides disjointly; neither mutation may leak across.
		var addedToS, addedToC graph.VertexID
		addedToS = graph.VertexID(rng.Intn(n))
		for {
			addedToC = graph.VertexID(rng.Intn(n))
			if addedToC != addedToS {
				break
			}
		}
		sHadC := s.Contains(addedToC)
		cHadS := c.Contains(addedToS)
		s.Add(addedToS)
		c.Add(addedToC)
		if !s.Contains(addedToS) || !c.Contains(addedToC) {
			return false
		}
		if s.Contains(addedToC) != sHadC || c.Contains(addedToS) != cHadS {
			return false
		}
		// Clearing the original must leave the clone intact.
		snapshot := c.Count()
		s.Clear()
		return c.Count() == snapshot && s.Count() == 0
	}
	if err := quick.Check(f, quickCfg(2, 150)); err != nil {
		t.Fatal(err)
	}
}

// Property: subset union/intersection laws. UnionWith is idempotent and
// commutative in effect, and inclusion-exclusion holds:
// |A ∪ B| = |A| + |B| - |A ∩ B|.
func TestQuickUnionIntersectionLaws(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64 + rng.Intn(1<<10)
		a, _ := genSubset(rng, n, rng.Intn(n))
		b, _ := genSubset(rng, n, rng.Intn(n))
		inter := a.OverlapCount(b)
		if inter != b.OverlapCount(a) {
			return false // intersection is symmetric
		}
		ab := a.Clone()
		ab.UnionWith(b)
		ba := b.Clone()
		ba.UnionWith(a)
		if ab.Count() != ba.Count() {
			return false // union is commutative (in cardinality and members)
		}
		for i, w := range ab.Words() {
			if w != ba.Words()[i] {
				return false
			}
		}
		if ab.Count() != a.Count()+b.Count()-inter {
			return false // inclusion-exclusion
		}
		again := ab.Clone()
		again.UnionWith(b)
		if again.Count() != ab.Count() {
			return false // idempotent
		}
		// The union must contain exactly the members of both sides.
		if ab.OverlapCount(a) != a.Count() || ab.OverlapCount(b) != b.Count() {
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg(3, 150)); err != nil {
		t.Fatal(err)
	}
}

// unionOfReference is the bit-by-bit oracle for UnionOf: per-vertex
// membership tests, no word-level tricks.
func unionOfReference(parts ...*Subset) (map[graph.VertexID]bool, int) {
	ref := make(map[graph.VertexID]bool)
	n := parts[0].Universe()
	for v := 0; v < n; v++ {
		for _, p := range parts {
			if p.Contains(graph.VertexID(v)) {
				ref[graph.VertexID(v)] = true
				break
			}
		}
	}
	return ref, len(ref)
}

// TestUnionOfWordBoundaries pins the word-level union and popcount at the
// exact universe sizes where word arithmetic goes wrong: one bit short of a
// word (63), a full word (64), one bit into the second word (65), and
// non-multiple-of-64 tails. Every lane-count and membership corner is checked
// against the bit-by-bit reference.
func TestUnionOfWordBoundaries(t *testing.T) {
	universes := []int{1, 63, 64, 65, 127, 128, 129, 191, 1000}
	laneCounts := []int{1, 2, 8, 16}
	rng := rand.New(rand.NewSource(0x91159))
	for _, n := range universes {
		for _, lanes := range laneCounts {
			parts := make([]*Subset, lanes)
			for i := range parts {
				parts[i] = New(n)
				// Sprinkle members with bias toward word edges and the tail.
				for k := 0; k < 1+rng.Intn(n); k++ {
					parts[i].Add(graph.VertexID(rng.Intn(n)))
				}
				for _, edge := range []int{0, 62, 63, 64, n - 2, n - 1} {
					if edge >= 0 && edge < n && rng.Intn(2) == 0 {
						parts[i].Add(graph.VertexID(edge))
					}
				}
			}
			u := UnionOf(nil, 2, parts...)
			ref, count := unionOfReference(parts...)
			if u.Count() != count {
				t.Fatalf("n=%d lanes=%d: UnionOf count %d, reference %d", n, lanes, u.Count(), count)
			}
			for v := 0; v < n; v++ {
				if u.Contains(graph.VertexID(v)) != ref[graph.VertexID(v)] {
					t.Fatalf("n=%d lanes=%d: vertex %d membership diverges from reference", n, lanes, v)
				}
			}
			// The tail bits beyond n must stay zero (no phantom members).
			if tail := n % 64; tail != 0 {
				last := u.Words()[len(u.Words())-1]
				if last>>tail != 0 {
					t.Fatalf("n=%d lanes=%d: union set bits beyond the universe: %064b", n, lanes, last)
				}
			}
			// Sparse materialization agrees with Count (exercises the cached
			// sparse path after a word-level build).
			if len(u.Sparse()) != count {
				t.Fatalf("n=%d lanes=%d: Sparse has %d members, Count says %d", n, lanes, len(u.Sparse()), count)
			}
		}
	}
}

// Property: UnionOf equals the result of folding UnionWith (the serial
// word-level path already pinned by TestQuickUnionIntersectionLaws), and is
// invariant under lane order.
func TestQuickUnionOfMatchesFold(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(1<<10)
		lanes := 1 + rng.Intn(16)
		parts := make([]*Subset, lanes)
		for i := range parts {
			parts[i], _ = genSubset(rng, n, rng.Intn(n+1))
		}
		got := UnionOf(nil, 1+rng.Intn(4), parts...)
		want := New(n)
		for _, p := range parts {
			want.UnionWith(p)
		}
		if got.Count() != want.Count() {
			return false
		}
		for i, w := range got.Words() {
			if w != want.Words()[i] {
				return false
			}
		}
		// Lane order must not matter.
		rev := make([]*Subset, lanes)
		for i := range rev {
			rev[i] = parts[lanes-1-i]
		}
		again := UnionOf(nil, 1, rev...)
		if again.Count() != got.Count() {
			return false
		}
		for i, w := range again.Words() {
			if w != got.Words()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(5, 150)); err != nil {
		t.Fatal(err)
	}
}

// Property: per-vertex query-mask laws. A mask built from the union of two
// assignment sets equals the bitwise OR of the individual masks at every
// vertex, and intersection popcounts match the reference.
func TestQuickQueryMaskUnionIntersection(t *testing.T) {
	type assign struct {
		v graph.VertexID
		q int
	}
	gen := func(rng *rand.Rand, n, count int) []assign {
		out := make([]assign, count)
		for i := range out {
			out[i] = assign{graph.VertexID(rng.Intn(n)), rng.Intn(MaxQueries)}
		}
		return out
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16 + rng.Intn(512)
		as := gen(rng, n, rng.Intn(4*n))
		bs := gen(rng, n, rng.Intn(4*n))
		ma, mb, mu := NewQueryMask(n), NewQueryMask(n), NewQueryMask(n)
		for _, x := range as {
			ma.Set(x.v, x.q)
			mu.Set(x.v, x.q)
		}
		for _, x := range bs {
			mb.Set(x.v, x.q)
			mu.Set(x.v, x.q)
		}
		activeUnion, activeInter := 0, 0
		for v := 0; v < n; v++ {
			va, vb := ma.Get(graph.VertexID(v)), mb.Get(graph.VertexID(v))
			if mu.Get(graph.VertexID(v)) != va|vb {
				return false // union mask is the bitwise OR
			}
			if va|vb != 0 {
				activeUnion++
			}
			if va&vb != 0 {
				activeInter++
			}
		}
		if mu.ActiveVertices() != activeUnion {
			return false
		}
		if activeInter > ma.ActiveVertices() || activeInter > mb.ActiveVertices() {
			return false // |A ∩ B| <= min(|A|, |B|) on active-vertex sets
		}
		return true
	}
	if err := quick.Check(f, quickCfg(4, 120)); err != nil {
		t.Fatal(err)
	}
}
