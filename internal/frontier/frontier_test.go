package frontier

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"github.com/glign/glign/internal/graph"
)

func TestAddContainsCount(t *testing.T) {
	s := New(200)
	if !s.Add(5) || !s.Add(63) || !s.Add(64) || !s.Add(199) {
		t.Fatal("fresh Add returned false")
	}
	if s.Add(5) {
		t.Fatal("duplicate Add returned true")
	}
	if s.Count() != 4 {
		t.Fatalf("count = %d, want 4", s.Count())
	}
	for _, v := range []graph.VertexID{5, 63, 64, 199} {
		if !s.Contains(v) {
			t.Fatalf("missing %d", v)
		}
	}
	if s.Contains(6) || s.Contains(0) {
		t.Fatal("contains non-member")
	}
}

func TestSparseSortedAndCached(t *testing.T) {
	s := FromVertices(100, 17, 3, 99, 64, 63)
	sp := s.Sparse()
	want := []graph.VertexID{3, 17, 63, 64, 99}
	if len(sp) != len(want) {
		t.Fatalf("sparse = %v", sp)
	}
	for i := range want {
		if sp[i] != want[i] {
			t.Fatalf("sparse = %v, want %v", sp, want)
		}
	}
	// Cache invalidation on mutation.
	s.Add(50)
	sp = s.Sparse()
	if len(sp) != 6 || sp[2] != 50 {
		t.Fatalf("sparse after Add = %v", sp)
	}
}

func TestAddSyncConcurrent(t *testing.T) {
	const n = 1 << 14
	s := New(n)
	var wg sync.WaitGroup
	var winners [n]int32
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 4*n; i++ {
				v := graph.VertexID(rng.Intn(n))
				if s.AddSync(v) {
					// Exactly one goroutine may win per vertex; count wins
					// racily is fine because wins are unique by contract.
					winners[v]++
				}
			}
		}(int64(w))
	}
	wg.Wait()
	total := 0
	for v := 0; v < n; v++ {
		if winners[v] > 1 {
			t.Fatalf("vertex %d inserted twice", v)
		}
		if winners[v] == 1 {
			total++
		}
	}
	if s.Count() != total {
		t.Fatalf("count = %d, want %d", s.Count(), total)
	}
}

func TestClearAndClone(t *testing.T) {
	s := FromVertices(64, 1, 2, 3)
	c := s.Clone()
	s.Clear()
	if !s.IsEmpty() || s.Count() != 0 {
		t.Fatal("clear failed")
	}
	if c.Count() != 3 || !c.Contains(2) {
		t.Fatal("clone shares storage with original")
	}
}

func TestUnionAndOverlap(t *testing.T) {
	a := FromVertices(128, 1, 2, 3, 64)
	b := FromVertices(128, 3, 64, 100)
	if got := a.OverlapCount(b); got != 2 {
		t.Fatalf("overlap = %d, want 2", got)
	}
	a.UnionWith(b)
	if a.Count() != 5 {
		t.Fatalf("union count = %d, want 5", a.Count())
	}
	for _, v := range []graph.VertexID{1, 2, 3, 64, 100} {
		if !a.Contains(v) {
			t.Fatalf("union missing %d", v)
		}
	}
}

func TestIsDenseHeuristic(t *testing.T) {
	s := FromVertices(1000, 1, 2, 3)
	if s.IsDense(0, 1000000) {
		t.Fatal("tiny frontier classified dense")
	}
	if !s.IsDense(999999, 1000000) {
		t.Fatal("huge frontier classified sparse")
	}
}

func TestQuickSubsetMatchesMap(t *testing.T) {
	f := func(vals []uint16) bool {
		const n = 1 << 16
		s := New(n)
		ref := map[graph.VertexID]bool{}
		for _, x := range vals {
			v := graph.VertexID(x)
			added := s.Add(v)
			if added == ref[v] {
				return false // Add must return true exactly on first insert
			}
			ref[v] = true
		}
		if s.Count() != len(ref) {
			return false
		}
		for _, v := range s.Sparse() {
			if !ref[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachOrder(t *testing.T) {
	s := FromVertices(300, 299, 0, 150)
	var got []graph.VertexID
	s.ForEach(func(v graph.VertexID) { got = append(got, v) })
	if len(got) != 3 || got[0] != 0 || got[1] != 150 || got[2] != 299 {
		t.Fatalf("order = %v", got)
	}
}

func TestWordsBytes(t *testing.T) {
	s := New(129) // 3 words
	if s.WordsBytes() != 24 {
		t.Fatalf("bytes = %d, want 24", s.WordsBytes())
	}
}

func TestQueryMask(t *testing.T) {
	m := NewQueryMask(100)
	if m.AnyActive() {
		t.Fatal("fresh mask active")
	}
	if nb, first := m.Set(5, 0); !nb || !first {
		t.Fatal("first Set should report new bit + fresh-vertex transition")
	}
	if nb, first := m.Set(5, 3); !nb || first {
		t.Fatal("second query on same vertex: want new bit, no transition")
	}
	if nb, _ := m.Set(5, 3); nb {
		t.Fatal("duplicate Set reported new bit")
	}
	if m.Get(5) != 0b1001 {
		t.Fatalf("mask = %b", m.Get(5))
	}
	if m.ActiveVertices() != 1 {
		t.Fatalf("active = %d", m.ActiveVertices())
	}
	m.Set(6, 63)
	if m.ActiveVertices() != 2 || !m.AnyActive() {
		t.Fatal("activity tracking broken")
	}
	m.Clear()
	if m.AnyActive() || m.Get(5) != 0 {
		t.Fatal("clear failed")
	}
	if m.Bytes() != 800 {
		t.Fatalf("bytes = %d", m.Bytes())
	}
}

func TestQueryMaskConcurrent(t *testing.T) {
	m := NewQueryMask(1024)
	var wg sync.WaitGroup
	for q := 0; q < 16; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for v := 0; v < 1024; v++ {
				m.Set(graph.VertexID(v), q)
			}
		}(q)
	}
	wg.Wait()
	if m.ActiveVertices() != 1024 {
		t.Fatalf("active = %d, want 1024", m.ActiveVertices())
	}
	want := uint64(1<<16 - 1)
	for v := 0; v < 1024; v++ {
		if m.Get(graph.VertexID(v)) != want {
			t.Fatalf("v%d mask = %b", v, m.Get(graph.VertexID(v)))
		}
	}
}
