package bench

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"github.com/glign/glign/internal/align"
	"github.com/glign/glign/internal/core"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/queries"
	"github.com/glign/glign/internal/sched"
	"github.com/glign/glign/internal/stats"
	"github.com/glign/glign/internal/systems"
)

func init() {
	register(Experiment{
		ID: "fig7", Paper: "Figure 7 + Table 4",
		Title: "Frontier size distribution across iterations; heavy-iteration arrival",
		Run:   runFigure7,
	})
	register(Experiment{
		ID: "fig14", Paper: "Figure 14",
		Title: "Affinity (1-affinity, lower is better) of Intra vs Inter vs Batch",
		Run:   runFigure14,
	})
	register(Experiment{
		ID: "tab13", Paper: "Table 13",
		Title: "Ground-truth study: heuristic vs optimal alignment on query pairs",
		Run:   runTable13,
	})
	register(Experiment{
		ID: "tab14", Paper: "Table 14",
		Title: "Profiling cost vs query evaluation cost",
		Run:   runTable14,
	})
}

// runFigure7 prints the per-iteration frontier sizes of four representative
// queries per graph and marks the heavy-iteration arrival — the first
// iteration activating a top-4 hub — as Table 4 does.
func runFigure7(cfg Config, w io.Writer) error {
	for _, d := range cfg.graphs() {
		e := envs.get(d, cfg)
		srcs := []graph.VertexID{e.sources[0], e.sources[len(e.sources)/2]}
		qs := []queries.Query{
			{Kernel: queries.SSSP, Source: srcs[0]},
			{Kernel: queries.SSSP, Source: srcs[1]},
			{Kernel: queries.BFS, Source: srcs[0]},
			{Kernel: queries.BFS, Source: srcs[1]},
		}
		tb := &stats.Table{
			Title:  fmt.Sprintf("Figure 7 (%s): frontier sizes; * marks heavy-iteration arrival", d),
			Header: []string{"query", "arrival", "sizes per iteration"},
		}
		for _, q := range qs {
			tr := align.TraceQuery(e.g, q, cfg.Workers)
			arrival := align.HeavyArrivalFromTrace(tr, e.prof.Hubs)
			var sb strings.Builder
			for j, s := range tr.Sizes {
				if j > 0 {
					sb.WriteByte(' ')
				}
				if j == arrival {
					fmt.Fprintf(&sb, "*%d", s)
				} else {
					fmt.Fprintf(&sb, "%d", s)
				}
			}
			tb.AddRow(q.String(), fmt.Sprint(arrival), sb.String())
		}
		if err := writeTable(cfg, w, tb); err != nil {
			return err
		}
	}
	return nil
}

// runFigure14 measures 1-affinity (misalignment; lower is better) under the
// three Glign configurations: Intra (FCFS batches, zero alignment), Inter
// (FCFS batches, heuristic alignment), Batch (affinity batches, zero
// alignment).
func runFigure14(cfg Config, w io.Writer) error {
	tb := &stats.Table{
		Title:  "Figure 14: 1-affinity (lower = better aligned)",
		Header: []string{"graph", "workload", "Glign-Intra", "Glign-Inter", "Glign-Batch"},
	}
	for _, d := range cfg.graphs() {
		e := envs.get(d, cfg)
		for _, wl := range cfg.workloads() {
			buf, err := bufferFor(e, wl, cfg)
			if err != nil {
				return err
			}
			traces := align.TraceBatch(e.g, buf, cfg.Workers)
			zero := func(b []int) []int { return make([]int, len(b)) }

			batchAffinity := func(batches [][]int, aligned bool) float64 {
				var vals []float64
				for _, idx := range batches {
					sub := make([]*align.Trace, len(idx))
					batch := make([]queries.Query, len(idx))
					for i, bi := range idx {
						sub[i] = traces[bi]
						batch[i] = buf[bi]
					}
					I := zero(idx)
					if aligned {
						I = e.prof.AlignmentVector(batch)
					}
					vals = append(vals, align.Affinity(sub, I))
				}
				return stats.Mean(vals)
			}

			fcfs := sched.FCFS{}.MakeBatches(buf, cfg.BatchSize)
			aff := sched.Affinity{Profile: e.prof}.MakeBatches(buf, cfg.BatchSize)
			intra := 1 - batchAffinity(fcfs, false)
			inter := 1 - batchAffinity(fcfs, true)
			batch := 1 - batchAffinity(aff, false)
			tb.AddRow(string(d), wl,
				fmt.Sprintf("%.4f", intra), fmt.Sprintf("%.4f", inter), fmt.Sprintf("%.4f", batch))
		}
	}
	return writeTable(cfg, w, tb)
}

// runTable13 samples query pairs, compares the heuristic alignment against
// the exhaustively-found optimal one, and reports the diff histogram with
// per-bucket speedups over Ligra-S.
func runTable13(cfg Config, w io.Writer) error {
	const maxShift = 8
	pairs := cfg.BufferSize / 4
	if pairs < 4 {
		pairs = 4
	}
	d := cfg.graphs()[0]
	e := envs.get(d, cfg)
	rng := rand.New(rand.NewSource(cfg.Seed + 7))

	type bucket struct {
		count                   int
		intra, inter, best, seq float64 // summed durations
	}
	buckets := map[int]*bucket{}
	for p := 0; p < pairs; p++ {
		batch := []queries.Query{
			{Kernel: queries.SSSP, Source: e.sources[rng.Intn(len(e.sources))]},
			{Kernel: queries.SSSP, Source: e.sources[rng.Intn(len(e.sources))]},
		}
		traces := align.TraceBatch(e.g, batch, cfg.Workers)
		heur := e.prof.AlignmentVector(batch)
		opt, _ := align.OptimalAlignment(traces, maxShift)
		diff := align.AbsDiff(align.RelativeShift(heur), align.RelativeShift(opt))

		timeRun := func(engine core.Engine, I []int) (float64, error) {
			start := time.Now()
			_, err := engine.Run(e.g, batch, core.Options{Workers: cfg.Workers, Alignment: I})
			return time.Since(start).Seconds(), err
		}
		seq, err := timeRun(core.LigraS, nil)
		if err != nil {
			return err
		}
		intra, err := timeRun(core.GlignIntra, nil)
		if err != nil {
			return err
		}
		inter, err := timeRun(core.GlignIntra, heur)
		if err != nil {
			return err
		}
		bst, err := timeRun(core.GlignIntra, opt)
		if err != nil {
			return err
		}
		b := buckets[diff]
		if b == nil {
			b = &bucket{}
			buckets[diff] = b
		}
		b.count++
		b.seq += seq
		b.intra += intra
		b.inter += inter
		b.best += bst
	}

	tb := &stats.Table{
		Title: fmt.Sprintf("Table 13 (%s, %d pairs): heuristic vs optimal alignment", d, pairs),
		Header: []string{"diff", "cnt", "ratio",
			"speedup(Intra)", "speedup(Inter)", "speedup(Best)"},
	}
	for diff := 0; diff <= maxShift; diff++ {
		b := buckets[diff]
		if b == nil {
			continue
		}
		tb.AddRow(fmt.Sprint(diff), fmt.Sprint(b.count),
			fmt.Sprintf("%.1f%%", 100*float64(b.count)/float64(pairs)),
			fmt.Sprintf("%.2fx", b.seq/b.intra),
			fmt.Sprintf("%.2fx", b.seq/b.inter),
			fmt.Sprintf("%.2fx", b.seq/b.best))
	}
	return writeTable(cfg, w, tb)
}

// runTable14 compares the one-time profiling cost (hub reverse-BFS) against
// the evaluation cost of one batch of SSSP and BFS.
func runTable14(cfg Config, w io.Writer) error {
	tb := &stats.Table{
		Title:  "Table 14: profiling cost vs one-batch query evaluation cost (Glign)",
		Header: append([]string{"metric"}, datasetNames(cfg)...),
	}
	profRow := []string{"profiling cost"}
	ssspRow := []string{fmt.Sprintf("SSSP batch (%d)", cfg.BatchSize)}
	bfsRow := []string{fmt.Sprintf("BFS batch (%d)", cfg.BatchSize)}
	for _, d := range cfg.graphs() {
		e := envs.get(d, cfg)
		// Rebuild the profile to time it honestly.
		p := align.NewProfile(e.g, align.DefaultHubCount, cfg.Workers)
		profRow = append(profRow, stats.FormatDuration(p.PrepTime.Seconds()))
		for kernel, row := range map[string]*[]string{"SSSP": &ssspRow, "BFS": &bfsRow} {
			buf, err := bufferFor(e, kernel, cfg)
			if err != nil {
				return err
			}
			if len(buf) > cfg.BatchSize {
				buf = buf[:cfg.BatchSize]
			}
			dur, _, err := runTimed(systems.Glign, e, buf, cfg)
			if err != nil {
				return err
			}
			*row = append(*row, stats.FormatDuration(dur.Seconds()))
		}
	}
	tb.AddRow(profRow...)
	tb.AddRow(ssspRow...)
	tb.AddRow(bfsRow...)
	return writeTable(cfg, w, tb)
}
