package bench

import (
	"fmt"
	"io"
	"math/rand"

	"github.com/glign/glign/internal/align"
	"github.com/glign/glign/internal/cachesim"
	"github.com/glign/glign/internal/queries"
	"github.com/glign/glign/internal/sched"
	"github.com/glign/glign/internal/stats"
	"github.com/glign/glign/internal/systems"
)

// Ablations beyond the paper's artifacts: design-choice sweeps DESIGN.md
// calls out. Their ids sort after the paper experiments in All().

func init() {
	register(Experiment{
		ID: "abl-hubs", Paper: "ablation",
		Title: "Hub count K sweep: alignment accuracy and Glign-Inter speedup",
		Run:   runAblationHubs,
	})
	register(Experiment{
		ID: "abl-window", Paper: "ablation",
		Title: "Batching window B_w sweep: Glign-Batch speedup vs reordering bound",
		Run:   runAblationWindow,
	})
	register(Experiment{
		ID: "abl-llc", Paper: "ablation",
		Title: "Simulated LLC size sweep: Glign/Ligra-C miss ratio",
		Run:   runAblationLLC,
	})
	register(Experiment{
		ID: "abl-affinity", Paper: "ablation",
		Title: "Vertex- vs edge-based affinity (§3.3 'minimal differences' claim)",
		Run:   runAblationAffinity,
	})
}

// runAblationHubs sweeps K, reporting how often the K-hub heuristic matches
// the exhaustive optimal alignment on query pairs and the resulting
// Glign-Inter speedup over Glign-Intra.
func runAblationHubs(cfg Config, w io.Writer) error {
	d := cfg.graphs()[0]
	e := envs.get(d, cfg)
	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	pairs := cfg.BufferSize / 8
	if pairs < 4 {
		pairs = 4
	}
	type pair struct {
		batch  []queries.Query
		traces []*align.Trace
		opt    int // optimal relative shift
	}
	var ps []pair
	for i := 0; i < pairs; i++ {
		batch := []queries.Query{
			{Kernel: queries.SSSP, Source: e.sources[rng.Intn(len(e.sources))]},
			{Kernel: queries.SSSP, Source: e.sources[rng.Intn(len(e.sources))]},
		}
		traces := align.TraceBatch(e.g, batch, cfg.Workers)
		optVec, _ := align.OptimalAlignment(traces, 8)
		ps = append(ps, pair{batch, traces, align.RelativeShift(optVec)})
	}
	tb := &stats.Table{
		Title:  fmt.Sprintf("Hub count sweep (%s, %d pairs)", d, pairs),
		Header: []string{"K", "exact", "within 2", "mean |diff|", "mean affinity"},
	}
	for _, k := range []int{1, 2, 4, 8, 16} {
		prof := align.NewProfile(e.g, k, cfg.Workers)
		exact, within2, diffSum := 0, 0, 0
		var affs []float64
		for _, p := range ps {
			heur := prof.AlignmentVector(p.batch)
			diff := align.AbsDiff(align.RelativeShift(heur), p.opt)
			if diff == 0 {
				exact++
			}
			if diff <= 2 {
				within2++
			}
			diffSum += diff
			affs = append(affs, align.Affinity(p.traces, heur))
		}
		tb.AddRow(fmt.Sprint(k),
			fmt.Sprintf("%.0f%%", 100*float64(exact)/float64(pairs)),
			fmt.Sprintf("%.0f%%", 100*float64(within2)/float64(pairs)),
			fmt.Sprintf("%.2f", float64(diffSum)/float64(pairs)),
			fmt.Sprintf("%.3f", stats.Mean(affs)))
	}
	return writeTable(cfg, w, tb)
}

// runAblationWindow sweeps the batching window, reporting Glign-Batch time
// and the maximum reorder displacement actually incurred.
func runAblationWindow(cfg Config, w io.Writer) error {
	d := cfg.graphs()[0]
	e := envs.get(d, cfg)
	buf, err := bufferFor(e, "SSSP", cfg)
	if err != nil {
		return err
	}
	tb := &stats.Table{
		Title:  fmt.Sprintf("Batching window sweep (%s, buffer %d, batch %d)", d, len(buf), cfg.BatchSize),
		Header: []string{"window", "time", "max displacement"},
	}
	windows := []int{cfg.BatchSize, 2 * cfg.BatchSize, 4 * cfg.BatchSize, 0}
	for _, bw := range windows {
		res, err := systems.Run(systems.GlignBatch, e.g, buf, systems.Config{
			BatchSize: cfg.BatchSize,
			Workers:   cfg.Workers,
			Window:    bw,
			Profile:   e.prof,
		})
		if err != nil {
			return err
		}
		label := fmt.Sprint(bw)
		if bw == 0 {
			label = "whole buffer"
		}
		tb.AddRow(label, stats.FormatDuration(res.Duration.Seconds()),
			fmt.Sprint(sched.MaxDisplacement(res.Batches)))
	}
	return writeTable(cfg, w, tb)
}

// runAblationLLC sweeps the simulated cache size and reports the
// Glign/Ligra-C miss ratio — showing where the locality advantage appears
// and saturates.
func runAblationLLC(cfg Config, w io.Writer) error {
	d := cfg.graphs()[0]
	e := envs.get(d, cfg)
	buf, err := bufferFor(e, "SSSP", cfg)
	if err != nil {
		return err
	}
	tb := &stats.Table{
		Title:  fmt.Sprintf("LLC size sweep (%s, batch %d)", d, cfg.BatchSize),
		Header: []string{"LLC", "Ligra-C misses", "Glign misses", "ratio"},
	}
	base := cfg.LLC
	for _, size := range []int64{base.SizeBytes / 4, base.SizeBytes, base.SizeBytes * 4, base.SizeBytes * 16} {
		c := cfg
		c.LLC = cachesim.Config{SizeBytes: size, Ways: base.Ways, LineSize: base.LineSize}
		if c.LLC.Validate() != nil {
			continue
		}
		lc, err := measureLLC(systems.LigraC, e, buf, c)
		if err != nil {
			return err
		}
		gl, err := measureLLC(systems.Glign, e, buf, c)
		if err != nil {
			return err
		}
		ratio := 0.0
		if lc > 0 {
			ratio = float64(gl) / float64(lc)
		}
		tb.AddRow(formatBytes(size), stats.FormatCount(float64(lc)),
			stats.FormatCount(float64(gl)), fmt.Sprintf("%.0f%%", 100*ratio))
	}
	return writeTable(cfg, w, tb)
}

// runAblationAffinity checks the paper's claim that vertex- and edge-based
// affinity rank alignments the same way in practice: for random pairs it
// compares the optimal alignment found under each definition.
func runAblationAffinity(cfg Config, w io.Writer) error {
	d := cfg.graphs()[0]
	e := envs.get(d, cfg)
	rng := rand.New(rand.NewSource(cfg.Seed + 13))
	pairs := cfg.BufferSize / 8
	if pairs < 4 {
		pairs = 4
	}
	agree := 0
	var vDiffs []float64
	for i := 0; i < pairs; i++ {
		batch := []queries.Query{
			{Kernel: queries.SSSP, Source: e.sources[rng.Intn(len(e.sources))]},
			{Kernel: queries.SSSP, Source: e.sources[rng.Intn(len(e.sources))]},
		}
		traces := align.TraceBatch(e.g, batch, cfg.Workers)
		optV, _ := align.OptimalAlignment(traces, 6)
		// Edge-based optimum by brute force over the same shift domain.
		bestE := []int{0, 0}
		bestVal := align.AffinityEdges(traces, bestE, e.g)
		for s := 0; s <= 6; s++ {
			for _, I := range [][]int{{s, 0}, {0, s}} {
				if v := align.AffinityEdges(traces, I, e.g); v > bestVal {
					bestVal = v
					bestE = I
				}
			}
		}
		dv := align.AbsDiff(align.RelativeShift(optV), align.RelativeShift(bestE))
		if dv == 0 {
			agree++
		}
		vDiffs = append(vDiffs, float64(dv))
	}
	tb := &stats.Table{
		Title:  fmt.Sprintf("Affinity definition ablation (%s, %d pairs)", d, pairs),
		Header: []string{"metric", "value"},
	}
	tb.AddRow("optimal alignments agree", fmt.Sprintf("%.0f%%", 100*float64(agree)/float64(pairs)))
	tb.AddRow("mean |shift difference|", fmt.Sprintf("%.2f iterations", stats.Mean(vDiffs)))
	return writeTable(cfg, w, tb)
}
