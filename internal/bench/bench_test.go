package bench

import (
	"bytes"
	"strings"
	"testing"

	"github.com/glign/glign/internal/graph"
)

func shortCfg() Config {
	cfg := DefaultConfig(true)
	cfg.BufferSize = 16
	cfg.BatchSize = 4
	cfg.Graphs = []graph.Dataset{graph.LJ}
	cfg.Workloads = []string{"BFS"}
	cfg.Workers = 2
	return cfg
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig7", "tab8", "fig11", "tab9", "fig12", "tab10",
		"tab11", "fig13", "fig14", "tab12", "tab13", "tab14", "fig15", "fig16",
		"tab15", "tab16"}
	have := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Paper == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %+v incomplete", e)
		}
		have[e.ID] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("experiment %s not registered", id)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig11")
	if err != nil || e.ID != "fig11" {
		t.Fatalf("ByID: %v %v", e, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// Every experiment must run end-to-end at CI scale and produce output.
func TestAllExperimentsRunShort(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow even at tiny scale")
	}
	cfg := shortCfg()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(cfg, &buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestDefaultConfigs(t *testing.T) {
	full := DefaultConfig(false)
	short := DefaultConfig(true)
	if full.BufferSize <= short.BufferSize || full.BatchSize <= short.BatchSize {
		t.Fatal("full config should be larger than short")
	}
	if err := full.LLC.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := short.LLC.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(full.graphs()) != 5 {
		t.Fatalf("full graphs = %v", full.graphs())
	}
	if len(full.workloads()) != 6 {
		t.Fatalf("full workloads = %v", full.workloads())
	}
	if len(short.graphs()) != 2 || len(short.workloads()) != 2 {
		t.Fatal("short config filters not applied")
	}
}

func TestEnvCaching(t *testing.T) {
	cfg := shortCfg()
	a := envs.get(graph.LJ, cfg)
	b := envs.get(graph.LJ, cfg)
	if a != b {
		t.Fatal("environment not cached")
	}
	if len(a.sources) != cfg.BufferSize {
		t.Fatalf("sources = %d, want %d", len(a.sources), cfg.BufferSize)
	}
}

// The headline claim at tiny scale: Glign must beat the two-level design on
// simulated LLC misses (Figure 1 / Table 9's shape).
func TestGlignReducesSimulatedMisses(t *testing.T) {
	cfg := shortCfg()
	cfg.BufferSize = 32
	cfg.BatchSize = 32
	e := envs.get(graph.TW, cfg)
	buf, err := bufferFor(e, "SSSP", cfg)
	if err != nil {
		t.Fatal(err)
	}
	twoLevel, err := measureLLC("Ligra-C", e, buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	glign, err := measureLLC("Glign", e, buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if glign >= twoLevel {
		t.Fatalf("Glign misses %d >= Ligra-C misses %d — locality claim broken", glign, twoLevel)
	}
	t.Logf("simulated LLC misses: Ligra-C=%d Glign=%d (ratio %.2f)",
		twoLevel, glign, float64(glign)/float64(twoLevel))
}

func TestCSVOutputMode(t *testing.T) {
	cfg := shortCfg()
	cfg.CSV = true
	e, err := ByID("tab11")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# Table 11") {
		t.Fatalf("CSV output missing title comment:\n%s", out)
	}
	if !strings.Contains(out, "graph,structure,Ligra-C") {
		t.Fatalf("CSV header missing:\n%s", out)
	}
	if strings.Contains(out, "----") {
		t.Fatal("CSV output contains text-table rules")
	}
}

func TestTableOutputShape(t *testing.T) {
	cfg := shortCfg()
	var buf bytes.Buffer
	e, err := ByID("tab11")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 11", "frontier", "Glign-Intra", "Ligra-C"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tab11 output missing %q:\n%s", want, out)
		}
	}
}
