package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/glign/glign/internal/engine"
	"github.com/glign/glign/internal/queries"
	"github.com/glign/glign/internal/stats"
)

func init() {
	register(Experiment{
		ID: "abl-pull", Paper: "ablation",
		Title: "Push vs pull EdgeMap (the paper's push-model assumption)",
		Run:   runAblationPull,
	})
}

// runAblationPull times single-query evaluation under the push and pull
// models. Push wins whenever frontiers are sparse relative to |V| — the
// common case for vertex-specific queries — which is why Glign (like the
// paper) builds its alignments on the push model.
func runAblationPull(cfg Config, w io.Writer) error {
	tb := &stats.Table{
		Title:  "Push vs pull EdgeMap (single queries, mean over sources)",
		Header: []string{"graph", "kernel", "push", "pull", "push speedup"},
	}
	for _, d := range cfg.graphs() {
		e := envs.get(d, cfg)
		rev := e.g.Reverse()
		nq := 8
		if nq > len(e.sources) {
			nq = len(e.sources)
		}
		for _, k := range []queries.Kernel{queries.BFS, queries.SSSP} {
			var pushSec, pullSec float64
			for i := 0; i < nq; i++ {
				q := queries.Query{Kernel: k, Source: e.sources[i]}
				start := time.Now()
				pushRes := engine.Run(e.g, q, engine.Options{Workers: cfg.Workers})
				pushSec += time.Since(start).Seconds()
				start = time.Now()
				pullRes := engine.RunPull(e.g, rev, q, engine.Options{Workers: cfg.Workers})
				pullSec += time.Since(start).Seconds()
				if pushRes.Values[q.Source] != pullRes.Values[q.Source] {
					return fmt.Errorf("push/pull divergence on %s", q)
				}
			}
			tb.AddRow(string(d), k.Name(),
				stats.FormatDuration(pushSec/float64(nq)),
				stats.FormatDuration(pullSec/float64(nq)),
				fmt.Sprintf("%.2fx", pullSec/pushSec))
		}
	}
	return writeTable(cfg, w, tb)
}
