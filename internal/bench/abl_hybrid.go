package bench

import (
	"fmt"
	"io"

	"github.com/glign/glign/internal/stats"
	"github.com/glign/glign/internal/systems"
)

func init() {
	register(Experiment{
		ID: "abl-hybrid", Paper: "ablation",
		Title: "Push-only vs direction-optimized (push/pull hybrid) Glign",
		Run:   runAblationHybrid,
	})
}

// runAblationHybrid compares wall time of the query-oblivious engine with
// and without pull-mode dense iterations.
func runAblationHybrid(cfg Config, w io.Writer) error {
	tb := &stats.Table{
		Title:  "Direction optimization ablation (Glign-Intra, full buffers)",
		Header: []string{"graph", "workload", "push-only", "hybrid", "hybrid speedup"},
	}
	for _, d := range cfg.graphs() {
		e := envs.get(d, cfg)
		for _, wl := range cfg.workloads() {
			buf, err := bufferFor(e, wl, cfg)
			if err != nil {
				return err
			}
			push, err := systems.Run(systems.GlignIntra, e.g, buf, systems.Config{
				BatchSize: cfg.BatchSize, Workers: cfg.Workers, Profile: e.prof,
			})
			if err != nil {
				return err
			}
			hybrid, err := systems.Run(systems.GlignIntra, e.g, buf, systems.Config{
				BatchSize: cfg.BatchSize, Workers: cfg.Workers, Profile: e.prof,
				DirectionOptimized: true,
			})
			if err != nil {
				return err
			}
			tb.AddRow(string(d), wl,
				stats.FormatDuration(push.Duration.Seconds()),
				stats.FormatDuration(hybrid.Duration.Seconds()),
				fmt.Sprintf("%.2fx", push.Duration.Seconds()/hybrid.Duration.Seconds()))
		}
	}
	return writeTable(cfg, w, tb)
}
