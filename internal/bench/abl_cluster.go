package bench

import (
	"fmt"
	"io"

	"github.com/glign/glign/internal/align"
	"github.com/glign/glign/internal/sched"
	"github.com/glign/glign/internal/stats"
)

func init() {
	register(Experiment{
		ID: "abl-cluster", Paper: "ablation",
		Title: "Scalar ranking vs arrival-vector clustering for batching (extension of §3.4)",
		Run:   runAblationCluster,
	})
}

// runAblationCluster compares the measured affinity of batches formed by
// FCFS, the paper's scalar closestHV ranking, and the arrival-vector
// clustering extension.
func runAblationCluster(cfg Config, w io.Writer) error {
	d := cfg.graphs()[0]
	e := envs.get(d, cfg)
	buf, err := bufferFor(e, "SSSP", cfg)
	if err != nil {
		return err
	}
	traces := align.TraceBatch(e.g, buf, cfg.Workers)

	meanAffinity := func(batches [][]int) float64 {
		var vals []float64
		for _, idx := range batches {
			sub := make([]*align.Trace, len(idx))
			for i, bi := range idx {
				sub[i] = traces[bi]
			}
			vals = append(vals, align.Affinity(sub, make([]int, len(idx))))
		}
		return stats.Mean(vals)
	}
	policies := []sched.Policy{
		sched.FCFS{},
		sched.Affinity{Profile: e.prof},
		sched.Cluster{Profile: e.prof},
	}
	tb := &stats.Table{
		Title: fmt.Sprintf("Batching policy ablation (%s, SSSP, buffer %d, batch %d)",
			d, len(buf), cfg.BatchSize),
		Header: []string{"policy", "mean batch affinity", "1-affinity"},
	}
	for _, pol := range policies {
		a := meanAffinity(pol.MakeBatches(buf, cfg.BatchSize))
		tb.AddRow(pol.Name(), fmt.Sprintf("%.4f", a), fmt.Sprintf("%.4f", 1-a))
	}
	return writeTable(cfg, w, tb)
}
