package bench

import (
	"fmt"
	"io"

	"github.com/glign/glign/internal/core"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/stats"
	"github.com/glign/glign/internal/systems"
)

func init() {
	register(Experiment{
		ID: "tab11", Paper: "Table 11",
		Title: "Memory footprint breakdown (graph / vertex values / frontier)",
		Run:   runTable11,
	})
	register(Experiment{
		ID: "tab15", Paper: "Table 15",
		Title: "Performance on road networks (speedups over Ligra-S)",
		Run:   runTable15,
	})
	register(Experiment{
		ID: "tab16", Paper: "Table 16",
		Title: "Comparison with iBFS (concurrent BFS grouping)",
		Run:   runTable16,
	})
}

func formatBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// runTable11 prints the memory breakdown of Ligra-C vs Glign-Intra for one
// batch, exposing the frontier-footprint collapse of the query-oblivious
// design.
func runTable11(cfg Config, w io.Writer) error {
	engines := []core.Engine{core.LigraC, core.Krill, core.GlignIntra}
	header := []string{"graph", "structure"}
	for _, e := range engines {
		header = append(header, e.Name())
	}
	tb := &stats.Table{
		Title:  fmt.Sprintf("Table 11: memory footprint (%d queries)", cfg.BatchSize),
		Header: header,
	}
	for _, d := range cfg.graphs() {
		env := envs.get(d, cfg)
		fps := make([]core.Footprint, len(engines))
		for i, e := range engines {
			fps[i] = core.FootprintOf(e, env.g, cfg.BatchSize)
		}
		rows := []struct {
			name string
			get  func(core.Footprint) int64
		}{
			{"graph", func(f core.Footprint) int64 { return f.GraphBytes }},
			{"vertex values", func(f core.Footprint) int64 { return f.ValueBytes }},
			{"frontier", func(f core.Footprint) int64 { return f.FrontierBytes }},
		}
		for _, r := range rows {
			row := []string{string(d), r.name}
			for _, f := range fps {
				row = append(row, formatBytes(r.get(f)))
			}
			tb.AddRow(row...)
		}
	}
	return writeTable(cfg, w, tb)
}

// runTable15 evaluates the Glign variants on the road networks, where heavy
// iterations never form and only intra-iteration alignment helps.
func runTable15(cfg Config, w io.Writer) error {
	methods := []string{systems.LigraC, systems.GlignIntra, systems.GlignInter,
		systems.GlignBatch, systems.Glign}
	workloads := []string{"SSSP", "BFS", "SSWP"}
	tb := &stats.Table{
		Title:  "Table 15: road networks, speedups over Ligra-S",
		Header: append([]string{"graph", "workload", "Ligra-S"}, methods...),
	}
	for _, d := range graph.RoadDatasets() {
		e := envs.get(d, cfg)
		for _, wl := range workloads {
			buf, err := bufferFor(e, wl, cfg)
			if err != nil {
				return err
			}
			base, _, err := runTimed(systems.LigraS, e, buf, cfg)
			if err != nil {
				return err
			}
			row := []string{string(d), wl, stats.FormatDuration(base.Seconds())}
			for _, m := range methods {
				dur, _, err := runTimed(m, e, buf, cfg)
				if err != nil {
					return err
				}
				row = append(row, fmt.Sprintf("%.2fx", stats.Speedup(base.Seconds(), dur.Seconds())))
			}
			tb.AddRow(row...)
		}
	}
	return writeTable(cfg, w, tb)
}

// runTable16 evaluates a BFS buffer with the iBFS grouping heuristic and
// reports Glign-Intra's and Glign-Batch's speedups over it.
func runTable16(cfg Config, w io.Writer) error {
	tb := &stats.Table{
		Title:  "Table 16: comparison with iBFS (BFS buffers)",
		Header: []string{"graph", "iBFS time", "Glign-Intra", "Glign-Batch"},
	}
	for _, d := range cfg.graphs() {
		e := envs.get(d, cfg)
		buf, err := bufferFor(e, "BFS", cfg)
		if err != nil {
			return err
		}
		ib, _, err := runTimed(systems.IBFS, e, buf, cfg)
		if err != nil {
			return err
		}
		intra, _, err := runTimed(systems.GlignIntra, e, buf, cfg)
		if err != nil {
			return err
		}
		batch, _, err := runTimed(systems.GlignBatch, e, buf, cfg)
		if err != nil {
			return err
		}
		tb.AddRow(string(d), stats.FormatDuration(ib.Seconds()),
			fmt.Sprintf("%.2fx", stats.Speedup(ib.Seconds(), intra.Seconds())),
			fmt.Sprintf("%.2fx", stats.Speedup(ib.Seconds(), batch.Seconds())))
	}
	return writeTable(cfg, w, tb)
}
