package bench

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"github.com/glign/glign/internal/align"
	"github.com/glign/glign/internal/cachesim"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/queries"
	"github.com/glign/glign/internal/stats"
	"github.com/glign/glign/internal/systems"
	"github.com/glign/glign/internal/telemetry"
	"github.com/glign/glign/internal/workload"
)

// Config scales the harness. The paper runs 512-query buffers with batch
// size 64 on billion-edge graphs; the defaults here shrink the buffers and
// graphs proportionally (see DESIGN.md §3).
type Config struct {
	// Size selects the synthetic graph scale.
	Size graph.SizeClass
	// BufferSize is the number of queries in each workload buffer.
	BufferSize int
	// BatchSize is |B| (paper default 64).
	BatchSize int
	// Workers bounds parallelism (<= 0: GOMAXPROCS).
	Workers int
	// Seed drives workload sampling.
	Seed int64
	// LLC is the simulated last-level cache geometry.
	LLC cachesim.Config
	// Graphs restricts experiments to these datasets when non-empty.
	Graphs []graph.Dataset
	// Workloads restricts experiments to these workload names when
	// non-empty.
	Workloads []string
	// CSV switches experiment output from aligned text tables to CSV.
	CSV bool
	// Telemetry, when non-nil, collects per-iteration engine records for
	// every timed method run (traced LLC replays are excluded: their
	// single-threaded access-stream runs would skew the timelines). The
	// caller owns serialization (cmd/glign-bench -metrics-out).
	Telemetry *telemetry.Collector
}

// DefaultConfig returns the full-harness configuration; short=true shrinks
// everything to CI scale. The simulated LLC is scaled with the graph size
// class so that the paper's regime — graph footprint an order of magnitude
// beyond the LLC — holds at every scale (the paper's LJ is ~550 MB of CSR
// against a 40 MB LLC; the Small-class LJ stand-in is ~1.7 MB against a
// 128 KiB simulated LLC).
func DefaultConfig(short bool) Config {
	if short {
		return Config{
			Size:       graph.Tiny,
			BufferSize: 32,
			BatchSize:  8,
			Seed:       1,
			LLC:        LLCFor(graph.Tiny),
			Graphs:     []graph.Dataset{graph.LJ, graph.TW},
			Workloads:  []string{"BFS", "SSSP"},
		}
	}
	return Config{
		Size:       graph.Small,
		BufferSize: 256,
		BatchSize:  64,
		Seed:       1,
		LLC:        LLCFor(graph.Small),
	}
}

// LLCFor returns the simulated cache geometry proportioned to a graph size
// class (16-way, 64-byte lines throughout, as in cachesim.DefaultLLC).
func LLCFor(size graph.SizeClass) cachesim.Config {
	c := cachesim.DefaultLLC()
	switch size {
	case graph.Tiny:
		c.SizeBytes = 16 << 10
	case graph.Small:
		c.SizeBytes = 128 << 10
	default:
		c.SizeBytes = 2 << 20
	}
	return c
}

func (c Config) graphs() []graph.Dataset {
	if len(c.Graphs) > 0 {
		return c.Graphs
	}
	return graph.PowerLawDatasets()
}

func (c Config) workloads() []string {
	if len(c.Workloads) > 0 {
		return c.Workloads
	}
	return workload.WorkloadNames()
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	// ID is the harness name ("fig11"); Paper is the artifact it
	// regenerates ("Figure 11"); Title is the artifact's caption.
	ID, Paper, Title string
	// Run executes the experiment, writing its table/series to w.
	Run func(cfg Config, w io.Writer) error
}

var (
	registryMu sync.Mutex
	registry   []Experiment
)

func register(e Experiment) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry = append(registry, e)
}

// paperOrder is the presentation order of the artifacts in the paper.
var paperOrder = map[string]int{
	"fig1": 1, "fig7": 2, "tab8": 3, "fig11": 4, "tab9": 5, "fig12": 6,
	"tab10": 7, "tab11": 8, "fig13": 9, "fig14": 10, "tab12": 11, "tab13": 12,
	"tab14": 13, "fig15": 14, "fig16": 15, "tab15": 16, "tab16": 17,
}

// All returns every experiment in the paper's presentation order
// (unrecognized ids, e.g. ablations, sort after the paper artifacts).
func All() []Experiment {
	registryMu.Lock()
	out := append([]Experiment(nil), registry...)
	registryMu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		oi, oki := paperOrder[out[i].ID]
		oj, okj := paperOrder[out[j].ID]
		switch {
		case oki && okj:
			return oi < oj
		case oki:
			return true
		case okj:
			return false
		default:
			return out[i].ID < out[j].ID
		}
	})
	return out
}

// ByID finds one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have %v)", id, ids)
}

// env is the lazily-built, cached per-dataset environment experiments
// share: graph, alignment profile, sampled sources.
type env struct {
	g       *graph.Graph
	prof    *align.Profile
	sources []graph.VertexID
}

type envCache struct {
	mu   sync.Mutex
	m    map[string]*env
	size graph.SizeClass
}

var envs = envCache{m: map[string]*env{}}

func (c *envCache) get(d graph.Dataset, cfg Config) *env {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.size != cfg.Size {
		// Config changed scale: drop the cache.
		c.m = map[string]*env{}
		c.size = cfg.Size
	}
	key := fmt.Sprintf("%s/%d/%d", d, cfg.Size, cfg.Seed)
	if e, ok := c.m[key]; ok {
		return e
	}
	g := graph.MustGenerate(d, cfg.Size)
	prof := align.NewProfile(g, align.DefaultHubCount, cfg.Workers)
	e := &env{
		g:       g,
		prof:    prof,
		sources: workload.Sources(g, prof, cfg.BufferSize, cfg.Seed),
	}
	c.m[key] = e
	return e
}

// runTimed evaluates buffer with a method and returns the wall time, taking
// the best of one run (experiments are already minutes-scale; the paper
// also reports single runs).
func runTimed(method string, e *env, buffer []queries.Query, cfg Config) (time.Duration, *systems.Result, error) {
	res, err := systems.Run(method, e.g, buffer, systems.Config{
		BatchSize: cfg.BatchSize,
		Workers:   cfg.Workers,
		Profile:   e.prof,
		Telemetry: cfg.Telemetry,
	})
	if err != nil {
		return 0, nil, err
	}
	return res.Duration, res, nil
}

// measureLLC replays one batch (the first cfg.BatchSize queries of buffer)
// of the method through the simulated LLC and returns the miss count.
// Tracing runs single-threaded.
func measureLLC(method string, e *env, buffer []queries.Query, cfg Config) (int64, error) {
	if len(buffer) > cfg.BatchSize {
		buffer = buffer[:cfg.BatchSize]
	}
	cache := cachesim.New(cfg.LLC)
	_, err := systems.Run(method, e.g, buffer, systems.Config{
		BatchSize: cfg.BatchSize,
		Workers:   1,
		Profile:   e.prof,
		Tracer:    cache,
	})
	if err != nil {
		return 0, err
	}
	return cache.Misses(), nil
}

// bufferFor builds the named workload over the environment's sources.
func bufferFor(e *env, name string, cfg Config) ([]queries.Query, error) {
	return workload.BufferFor(name, e.sources, cfg.Seed+100)
}

// writeTable renders a table in the configured format.
func writeTable(cfg Config, w io.Writer, tb *stats.Table) error {
	if cfg.CSV {
		if tb.Title != "" {
			if _, err := fmt.Fprintf(w, "# %s\n", tb.Title); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, tb.CSV())
		return err
	}
	_, err := io.WriteString(w, tb.String())
	return err
}
