package bench

import (
	"fmt"
	"io"

	"github.com/glign/glign/internal/stats"
	"github.com/glign/glign/internal/systems"
)

func init() {
	register(Experiment{
		ID: "tab8", Paper: "Table 8",
		Title: "Time of evaluating a query buffer using Ligra-S",
		Run:   runTable8,
	})
	register(Experiment{
		ID: "fig11", Paper: "Figure 11",
		Title: "Overall performance: speedups over Ligra-S",
		Run:   runFigure11,
	})
	register(Experiment{
		ID: "fig12", Paper: "Figure 12",
		Title: "Speedups of Glign-Intra over Ligra-C (query-oblivious frontier)",
		Run:   speedupExperiment(systems.LigraC, systems.GlignIntra),
	})
	register(Experiment{
		ID: "fig13", Paper: "Figure 13",
		Title: "Speedups of Glign-Inter over Glign-Intra (delayed start)",
		Run:   speedupExperiment(systems.GlignIntra, systems.GlignInter),
	})
	register(Experiment{
		ID: "fig15", Paper: "Figure 15",
		Title: "Speedups of Glign-Batch over Glign-Intra (affinity-oriented batching)",
		Run:   speedupExperiment(systems.GlignIntra, systems.GlignBatch),
	})
	register(Experiment{
		ID: "fig16", Paper: "Figure 16",
		Title: "Impact of query batch size (speedup over Ligra-S)",
		Run:   runFigure16,
	})
}

// runTable8 prints Ligra-S buffer evaluation times (the baseline all
// speedups are relative to).
func runTable8(cfg Config, w io.Writer) error {
	tb := &stats.Table{Title: "Table 8: Ligra-S time for a buffer of " +
		fmt.Sprint(cfg.BufferSize) + " queries", Header: append([]string{"workload"}, datasetNames(cfg)...)}
	for _, wl := range cfg.workloads() {
		row := []string{wl}
		for _, d := range cfg.graphs() {
			e := envs.get(d, cfg)
			buf, err := bufferFor(e, wl, cfg)
			if err != nil {
				return err
			}
			dur, _, err := runTimed(systems.LigraS, e, buf, cfg)
			if err != nil {
				return err
			}
			row = append(row, stats.FormatDuration(dur.Seconds()))
		}
		tb.AddRow(row...)
	}
	return writeTable(cfg, w, tb)
}

// runFigure11 prints the speedups of every method over Ligra-S for every
// graph x workload cell, plus per-method geomeans.
func runFigure11(cfg Config, w io.Writer) error {
	methods := []string{systems.LigraC, systems.GraphM, systems.Krill,
		systems.GlignIntra, systems.GlignInter, systems.GlignBatch, systems.Glign}
	perMethod := map[string][]float64{}
	tb := &stats.Table{
		Title:  "Figure 11: speedups over Ligra-S",
		Header: append([]string{"graph", "workload"}, methods...),
	}
	for _, d := range cfg.graphs() {
		e := envs.get(d, cfg)
		for _, wl := range cfg.workloads() {
			buf, err := bufferFor(e, wl, cfg)
			if err != nil {
				return err
			}
			base, _, err := runTimed(systems.LigraS, e, buf, cfg)
			if err != nil {
				return err
			}
			row := []string{string(d), wl}
			for _, m := range methods {
				dur, _, err := runTimed(m, e, buf, cfg)
				if err != nil {
					return err
				}
				s := stats.Speedup(base.Seconds(), dur.Seconds())
				perMethod[m] = append(perMethod[m], s)
				row = append(row, fmt.Sprintf("%.2fx", s))
			}
			tb.AddRow(row...)
		}
	}
	geo := []string{"geomean", ""}
	for _, m := range methods {
		geo = append(geo, fmt.Sprintf("%.2fx", stats.Geomean(perMethod[m])))
	}
	tb.AddRow(geo...)
	return writeTable(cfg, w, tb)
}

// speedupExperiment builds a runner printing the speedup of method `num`
// over method `den` for every graph x workload cell (the shape of Figures
// 12, 13 and 15).
func speedupExperiment(den, num string) func(Config, io.Writer) error {
	return func(cfg Config, w io.Writer) error {
		tb := &stats.Table{
			Title:  fmt.Sprintf("Speedup of %s over %s", num, den),
			Header: append([]string{"workload"}, datasetNames(cfg)...),
		}
		var all []float64
		for _, wl := range cfg.workloads() {
			row := []string{wl}
			for _, d := range cfg.graphs() {
				e := envs.get(d, cfg)
				buf, err := bufferFor(e, wl, cfg)
				if err != nil {
					return err
				}
				dd, _, err := runTimed(den, e, buf, cfg)
				if err != nil {
					return err
				}
				nd, _, err := runTimed(num, e, buf, cfg)
				if err != nil {
					return err
				}
				s := stats.Speedup(dd.Seconds(), nd.Seconds())
				all = append(all, s)
				row = append(row, fmt.Sprintf("%.2fx", s))
			}
			tb.AddRow(row...)
		}
		tb.AddRow("geomean", fmt.Sprintf("%.2fx", stats.Geomean(all)))
		return writeTable(cfg, w, tb)
	}
}

// runFigure16 sweeps the batch size and reports the speedup of full Glign
// over Ligra-S at each size.
func runFigure16(cfg Config, w io.Writer) error {
	sizes := []int{2, 4, 8, 16, 32, 64, 128}
	var usable []int
	for _, s := range sizes {
		if s <= cfg.BufferSize {
			usable = append(usable, s)
		}
	}
	tb := &stats.Table{Title: "Figure 16: Glign speedup over Ligra-S vs batch size"}
	tb.Header = []string{"graph", "workload"}
	for _, s := range usable {
		tb.Header = append(tb.Header, fmt.Sprintf("B=%d", s))
	}
	for _, d := range cfg.graphs() {
		e := envs.get(d, cfg)
		for _, wl := range cfg.workloads() {
			buf, err := bufferFor(e, wl, cfg)
			if err != nil {
				return err
			}
			row := []string{string(d), wl}
			for _, bs := range usable {
				c := cfg
				c.BatchSize = bs
				base, _, err := runTimed(systems.LigraS, e, buf, c)
				if err != nil {
					return err
				}
				dur, _, err := runTimed(systems.Glign, e, buf, c)
				if err != nil {
					return err
				}
				row = append(row, fmt.Sprintf("%.2fx", stats.Speedup(base.Seconds(), dur.Seconds())))
			}
			tb.AddRow(row...)
		}
	}
	return writeTable(cfg, w, tb)
}

func datasetNames(cfg Config) []string {
	var out []string
	for _, d := range cfg.graphs() {
		out = append(out, string(d))
	}
	return out
}
