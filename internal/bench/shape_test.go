package bench

// Shape tests: deterministic assertions that the *relative* results the
// paper reports — who has more simulated LLC misses than whom — hold at
// test scale. Cache-simulator replays are single-threaded and seeded, so
// these are exact regression tests, not flaky timing comparisons.

import (
	"testing"

	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/systems"
)

func measureAll(t *testing.T, methods []string, d graph.Dataset, wl string, cfg Config) map[string]int64 {
	t.Helper()
	e := envs.get(d, cfg)
	buf, err := bufferFor(e, wl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]int64{}
	for _, m := range methods {
		misses, err := measureLLC(m, e, buf, cfg)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if misses <= 0 {
			t.Fatalf("%s reported %d misses — tracer not wired?", m, misses)
		}
		out[m] = misses
	}
	return out
}

// Table 9's ordering: GraphM worst, two-level above Glign, Krill between.
func TestShapeTable9Ordering(t *testing.T) {
	cfg := shortCfg()
	cfg.BufferSize = 32
	cfg.BatchSize = 32
	methods := []string{systems.LigraC, systems.GraphM, systems.Krill, systems.Glign}
	for _, d := range []graph.Dataset{graph.LJ, graph.TW} {
		m := measureAll(t, methods, d, "SSSP", cfg)
		if m[systems.Glign] >= m[systems.LigraC] {
			t.Errorf("%s: Glign misses %d >= Ligra-C %d", d, m[systems.Glign], m[systems.LigraC])
		}
		if m[systems.Krill] >= m[systems.LigraC] {
			t.Errorf("%s: Krill misses %d >= Ligra-C %d", d, m[systems.Krill], m[systems.LigraC])
		}
		if m[systems.GraphM] <= m[systems.LigraC] {
			t.Errorf("%s: GraphM misses %d <= Ligra-C %d (partition-centric should stream more)",
				d, m[systems.GraphM], m[systems.LigraC])
		}
	}
}

// Table 10's claim: the query-oblivious frontier reduces misses vs the
// two-level design on every workload.
func TestShapeTable10AllWorkloads(t *testing.T) {
	cfg := shortCfg()
	cfg.BufferSize = 32
	cfg.BatchSize = 32
	for _, wl := range []string{"BFS", "SSSP", "SSWP", "SSNP", "Viterbi"} {
		m := measureAll(t, []string{systems.LigraC, systems.GlignIntra}, graph.TW, wl, cfg)
		if m[systems.GlignIntra] >= m[systems.LigraC] {
			t.Errorf("%s: Glign-Intra misses %d >= Ligra-C %d",
				wl, m[systems.GlignIntra], m[systems.LigraC])
		}
	}
}

// The determinism that makes the above regressions sound.
func TestShapeMeasurementsDeterministic(t *testing.T) {
	cfg := shortCfg()
	cfg.BufferSize = 16
	cfg.BatchSize = 16
	a := measureAll(t, []string{systems.Glign}, graph.LJ, "SSSP", cfg)
	b := measureAll(t, []string{systems.Glign}, graph.LJ, "SSSP", cfg)
	if a[systems.Glign] != b[systems.Glign] {
		t.Fatalf("simulated misses not deterministic: %d vs %d", a[systems.Glign], b[systems.Glign])
	}
}
