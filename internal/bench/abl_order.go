package bench

import (
	"fmt"
	"io"

	"github.com/glign/glign/internal/align"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/order"
	"github.com/glign/glign/internal/queries"
	"github.com/glign/glign/internal/stats"
	"github.com/glign/glign/internal/systems"
	"github.com/glign/glign/internal/workload"
)

func init() {
	register(Experiment{
		ID: "abl-order", Paper: "ablation",
		Title: "Graph reordering x alignment: simulated misses of Glign and Ligra-C per vertex ordering",
		Run:   runAblationOrder,
	})
}

// runAblationOrder measures how single-query locality optimizations
// (vertex reordering) compose with Glign's cross-query alignments — the
// combination the paper's related-work section points at. For each
// ordering, one SSSP batch is replayed through the simulated LLC under
// Ligra-C and full Glign.
func runAblationOrder(cfg Config, w io.Writer) error {
	d := cfg.graphs()[0]
	base := envs.get(d, cfg)
	tb := &stats.Table{
		Title:  fmt.Sprintf("Reordering ablation (%s, SSSP batch %d)", d, cfg.BatchSize),
		Header: []string{"ordering", "Ligra-C misses", "Glign misses", "Glign/Ligra-C"},
	}
	cases := []struct {
		name string
		perm func(*graph.Graph) order.Permutation
	}{
		{"original", nil},
		{"degree", order.DegreeOrder},
		{"bfs", order.BFSOrder},
		{"hub-cluster", func(g *graph.Graph) order.Permutation { return order.HubClusterOrder(g, 4) }},
	}
	for _, c := range cases {
		g := base.g
		srcs := base.sources
		if c.perm != nil {
			p := c.perm(base.g)
			rg, err := order.Relabel(base.g, p)
			if err != nil {
				return err
			}
			g = rg
			srcs = make([]graph.VertexID, len(base.sources))
			for i, s := range base.sources {
				srcs[i] = p[s]
			}
		}
		e := &env{g: g, prof: align.NewProfile(g, align.DefaultHubCount, cfg.Workers), sources: srcs}
		buf := workload.Homogeneous(queries.SSSP, srcs)
		lc, err := measureLLC(systems.LigraC, e, buf, cfg)
		if err != nil {
			return err
		}
		gl, err := measureLLC(systems.Glign, e, buf, cfg)
		if err != nil {
			return err
		}
		ratio := 0.0
		if lc > 0 {
			ratio = float64(gl) / float64(lc)
		}
		tb.AddRow(c.name, stats.FormatCount(float64(lc)), stats.FormatCount(float64(gl)),
			fmt.Sprintf("%.0f%%", 100*ratio))
	}
	return writeTable(cfg, w, tb)
}
