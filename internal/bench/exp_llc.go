package bench

import (
	"fmt"
	"io"

	"github.com/glign/glign/internal/stats"
	"github.com/glign/glign/internal/systems"
)

func init() {
	register(Experiment{
		ID: "fig1", Paper: "Figure 1",
		Title: "Simulated LLC misses of concurrent BFS/SSSP (motivating result)",
		Run:   runFigure1,
	})
	register(Experiment{
		ID: "tab9", Paper: "Table 9",
		Title: "Simulated LLC misses per method",
		Run:   runTable9,
	})
	register(Experiment{
		ID: "tab10", Paper: "Table 10",
		Title: "LLC miss reduction by Glign-Intra (ratio vs Ligra-C)",
		Run:   llcRatioExperiment(systems.LigraC, systems.GlignIntra),
	})
	register(Experiment{
		ID: "tab12", Paper: "Table 12",
		Title: "LLC miss reduction by Glign-Inter (ratio vs Glign-Intra)",
		Run:   llcRatioExperiment(systems.GlignIntra, systems.GlignInter),
	})
}

// runFigure1 reproduces the motivating measurement: one batch of concurrent
// queries through the simulated LLC for Ligra-S, Ligra-C, Krill and Glign.
func runFigure1(cfg Config, w io.Writer) error {
	methods := []string{systems.LigraS, systems.LigraC, systems.Krill, systems.Glign}
	workloads := []string{"BFS", "SSSP"}
	tb := &stats.Table{
		Title:  fmt.Sprintf("Figure 1: simulated LLC misses (%d concurrent queries)", cfg.BatchSize),
		Header: append([]string{"case"}, methods...),
	}
	for _, d := range cfg.graphs() {
		e := envs.get(d, cfg)
		for _, wl := range workloads {
			buf, err := bufferFor(e, wl, cfg)
			if err != nil {
				return err
			}
			row := []string{fmt.Sprintf("%s-%s", d, wl)}
			for _, m := range methods {
				misses, err := measureLLC(m, e, buf, cfg)
				if err != nil {
					return err
				}
				row = append(row, stats.FormatCount(float64(misses)))
			}
			tb.AddRow(row...)
		}
	}
	return writeTable(cfg, w, tb)
}

// runTable9 prints absolute simulated LLC misses for every method on every
// workload of the configured graphs, with per-graph means.
func runTable9(cfg Config, w io.Writer) error {
	methods := []string{systems.LigraS, systems.LigraC, systems.GraphM,
		systems.Krill, systems.Glign}
	tb := &stats.Table{
		Title:  "Table 9: simulated LLC misses",
		Header: append([]string{"graph", "workload"}, methods...),
	}
	for _, d := range cfg.graphs() {
		e := envs.get(d, cfg)
		perMethod := map[string][]float64{}
		for _, wl := range cfg.workloads() {
			buf, err := bufferFor(e, wl, cfg)
			if err != nil {
				return err
			}
			row := []string{string(d), wl}
			for _, m := range methods {
				misses, err := measureLLC(m, e, buf, cfg)
				if err != nil {
					return err
				}
				perMethod[m] = append(perMethod[m], float64(misses))
				row = append(row, stats.FormatCount(float64(misses)))
			}
			tb.AddRow(row...)
		}
		mean := []string{string(d), "mean"}
		for _, m := range methods {
			mean = append(mean, stats.FormatCount(stats.Mean(perMethod[m])))
		}
		tb.AddRow(mean...)
	}
	return writeTable(cfg, w, tb)
}

// llcRatioExperiment builds a runner printing misses(num)/misses(den) per
// cell — the shape of Tables 10 and 12.
func llcRatioExperiment(den, num string) func(Config, io.Writer) error {
	return func(cfg Config, w io.Writer) error {
		tb := &stats.Table{
			Title:  fmt.Sprintf("LLC misses of %s as a ratio of %s", num, den),
			Header: append([]string{"workload"}, datasetNames(cfg)...),
		}
		var all []float64
		for _, wl := range cfg.workloads() {
			row := []string{wl}
			for _, d := range cfg.graphs() {
				e := envs.get(d, cfg)
				buf, err := bufferFor(e, wl, cfg)
				if err != nil {
					return err
				}
				dm, err := measureLLC(den, e, buf, cfg)
				if err != nil {
					return err
				}
				nm, err := measureLLC(num, e, buf, cfg)
				if err != nil {
					return err
				}
				r := 0.0
				if dm > 0 {
					r = float64(nm) / float64(dm)
				}
				all = append(all, r)
				row = append(row, fmt.Sprintf("%.0f%%", 100*r))
			}
			tb.AddRow(row...)
		}
		tb.AddRow("geomean", fmt.Sprintf("%.0f%%", 100*stats.Geomean(all)))
		return writeTable(cfg, w, tb)
	}
}
