// Package bench implements the experiment harness: one runner per table and
// figure of the paper's evaluation section (§4), each regenerating the
// corresponding rows or series on synthetic stand-in graphs. The mapping
// from experiment id to paper artifact is the experiment index of DESIGN.md;
// measured-vs-paper outcomes are recorded in EXPERIMENTS.md.
//
// Experiments share a per-dataset environment cache (graph, alignment
// profile, sampled sources) so that a -exp all sweep builds each graph once.
// Timed runs go through internal/systems; cache-miss rows replay one batch
// through internal/cachesim instead of timing it. When Config.Telemetry is
// set (cmd/glign-bench -metrics-out), every timed method run leaves a full
// per-iteration trace in the collector — the raw material for the paper's
// Figures 6-9 style analysis; see OBSERVABILITY.md.
package bench
