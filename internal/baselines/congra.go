package baselines

import (
	"sync"
	"sync/atomic"

	"github.com/glign/glign/internal/core"
	"github.com/glign/glign/internal/engine"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/queries"
)

// Congra models Congra (Pan & Li, ICCD'17), the *asynchronous* concurrent
// design of paper §3.1: every query in the batch is evaluated independently
// by its own parallel Ligra-style evaluation, with no shared global
// iterations — iterations of different queries interleave however the
// scheduler happens to run them. The paper's point about this design is
// that it has no control over traversal alignment: graph accesses may or
// may not overlap, so locality is left to chance. It shares the graph
// (read-only) but neither frontiers nor iteration structure.
type Congra struct {
	// ConcurrentQueries bounds how many queries run at once (Congra's
	// scheduler admits queries up to a memory-bandwidth budget); <= 0 runs
	// the whole batch at once.
	ConcurrentQueries int
}

// Name implements core.Engine.
func (Congra) Name() string { return "Congra" }

// Run implements core.Engine.
func (e Congra) Run(g *graph.Graph, batch []queries.Query, opt core.Options) (*core.BatchResult, error) {
	st, err := core.PrepareBatch(g, batch, opt)
	if err != nil {
		return nil, err
	}
	res := st.NewResult()
	limit := e.ConcurrentQueries
	if limit <= 0 {
		limit = len(batch)
	}
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i, q := range batch {
		wg.Add(1)
		go func(i int, q queries.Query) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			// Each query gets its own asynchronous parallel evaluation.
			// Telemetry records interleave across queries — exactly the
			// uncontrolled iteration structure the design has.
			r := engine.Run(g, q, engine.Options{
				Workers:       opt.Workers,
				Pool:          opt.Pool,
				MaxIterations: opt.MaxIterations,
				Telemetry:     opt.Telemetry,
				TelemetryLane: i,
			})
			for v := 0; v < st.N; v++ {
				st.Vals.Set(st.Cell(v, i), r.Values[v])
			}
			mu.Lock()
			if r.Iterations > res.GlobalIterations {
				res.GlobalIterations = r.Iterations
			}
			mu.Unlock()
			// The shared counters use atomic adds like every concurrent
			// engine writing a BatchResult (glignlint/atomicmix): this
			// package also updates them from par.For workers, so the whole
			// package must agree on one access protocol. The per-query
			// Result counters are read atomically for the same reason —
			// engine.Run's workers update them with atomic adds.
			atomic.AddInt64(&res.EdgesProcessed, atomic.LoadInt64(&r.EdgesTraversed))
			atomic.AddInt64(&res.LaneRelaxations, atomic.LoadInt64(&r.EdgesTraversed))
			atomic.AddInt64(&res.ValueWrites, atomic.LoadInt64(&r.ValueWrites))
		}(i, q)
	}
	wg.Wait()
	return res, nil
}

var _ core.Engine = Congra{}
