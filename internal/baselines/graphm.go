package baselines

import (
	"sort"
	"sync/atomic"

	"github.com/glign/glign/internal/core"
	"github.com/glign/glign/internal/frontier"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/par"
	"github.com/glign/glign/internal/queries"
	"github.com/glign/glign/internal/telemetry"
)

// GraphM models GraphM (Zhao et al., SC'19), which is built on the
// out-of-core system GridGraph: the graph is cut into partitions sized to
// the cache, and in every super-iteration each partition is streamed once
// while *all* jobs (queries) relevant to it are processed against it — a
// "partition-centric" sharing of graph accesses, in contrast to Glign's
// "iteration-centric" alignment. Per-query frontiers are kept separately,
// as each job owns its state in GraphM.
type GraphM struct {
	// PartitionBytes is the target size of one partition's edge block
	// (default 256 KiB — a cache-resident block, as GridGraph sizes them).
	PartitionBytes int64
}

// Name implements core.Engine.
func (GraphM) Name() string { return "GraphM" }

// partitionRanges cuts the vertex space into contiguous ranges whose edge
// blocks are roughly target bytes (4 bytes per target + 4 per weight).
func partitionRanges(g *graph.Graph, target int64) [][2]int {
	if target <= 0 {
		target = 256 << 10
	}
	bytesPerEdge := int64(4)
	if g.Weighted() {
		bytesPerEdge = 8
	}
	n := g.NumVertices()
	var parts [][2]int
	lo := 0
	var acc int64
	for v := 0; v < n; v++ {
		acc += int64(g.OutDegree(graph.VertexID(v))) * bytesPerEdge
		if acc >= target {
			parts = append(parts, [2]int{lo, v + 1})
			lo = v + 1
			acc = 0
		}
	}
	if lo < n {
		parts = append(parts, [2]int{lo, n})
	}
	return parts
}

// Run implements core.Engine.
func (e GraphM) Run(g *graph.Graph, batch []queries.Query, opt core.Options) (*core.BatchResult, error) {
	st, err := core.PrepareBatch(g, batch, opt)
	if err != nil {
		return nil, err
	}
	n, b := st.N, st.B
	kinds := queries.KindsOf(st.Kernels)
	res := st.NewResult()
	parts := partitionRanges(g, e.PartitionBytes)

	tr := opt.Tracer
	workers := opt.Workers
	var addr *core.TraceAddressing
	if tr != nil {
		workers = 1
		addr = core.NewTraceAddressing(g, b, core.LayoutTwoLevel)
	}

	sep := make([]*frontier.Subset, b)
	for i := range sep {
		sep[i] = frontier.New(n)
	}

	for iter := 0; ; iter++ {
		injected := 0
		for _, qi := range st.InjectionsAt(iter) {
			src := st.Sources[qi]
			st.Vals.Set(st.Cell(int(src), qi), st.Kernels[qi].SourceValue())
			sep[qi].Add(src)
			injected++
		}
		unionCount := 0
		for _, s := range sep {
			unionCount += s.Count()
		}
		if unionCount == 0 && !st.PendingAfter(iter) {
			break
		}
		if opt.MaxIterations > 0 && iter >= opt.MaxIterations {
			break
		}
		res.UnionFrontierSizes = append(res.UnionFrontierSizes, unionCount)
		res.GlobalIterations++
		prevEdges := atomic.LoadInt64(&res.EdgesProcessed)
		prevRelaxes := atomic.LoadInt64(&res.LaneRelaxations)
		prevWrites := atomic.LoadInt64(&res.ValueWrites)

		// Materialize sparse views up front: the partition workers below
		// only read them. Each materialization scans the query's frontier
		// bitmap.
		active := make([][]graph.VertexID, b)
		for i, s := range sep {
			active[i] = s.Sparse()
			if tr != nil {
				core.TraceRegionScan(tr, addr.SepCurBase(i), s.WordsBytes())
			}
		}
		nextSep := make([]*frontier.Subset, b)
		for i := range nextSep {
			nextSep[i] = frontier.New(n)
		}
		// Partition-centric processing: stream each edge block once and run
		// every query's active vertices of that block against it. Blocks
		// are processed in parallel; within a block, jobs run one after
		// another (each job is independent in GraphM).
		par.OrDefault(opt.Pool).For(len(parts), workers, 1, func(plo, phi int) {
			var edges, relaxes, writes int64
			for pi := plo; pi < phi; pi++ {
				vlo, vhi := parts[pi][0], parts[pi][1]
				for qi := 0; qi < b; qi++ {
					act := active[qi]
					if len(act) == 0 {
						continue
					}
					// The sparse view is sorted; binary-search the slice of
					// active vertices inside this partition.
					start := sort.Search(len(act), func(i int) bool { return int(act[i]) >= vlo })
					k := st.Kernels[qi]
					kind := kinds[qi]
					for ai := start; ai < len(act) && int(act[ai]) < vhi; ai++ {
						v := act[ai]
						sv := st.Vals.Get(st.Cell(int(v), qi))
						if tr != nil {
							tr.Access(addr.OffsetAddr(v), 8, false)
							tr.Access(addr.ValueAddr(int(v)*b+qi), 8, false)
						}
						nbrs, ws := g.OutEdges(v)
						for j, d := range nbrs {
							edges++
							relaxes++
							w := graph.Weight(1)
							if ws != nil {
								w = ws[j]
							}
							if tr != nil {
								addr.TraceEdgeRead(tr, g, int64(g.Offsets[v])+int64(j))
								tr.Access(addr.ValueAddr(int(d)*b+qi), 8, false)
							}
							if queries.RelaxImprove(st.Vals, kind, k, st.Cell(int(d), qi), sv, w) {
								writes++
								if tr != nil {
									tr.Access(addr.ValueAddr(int(d)*b+qi), 8, true)
									tr.Access(addr.SepNextWordAddr(qi, d), 8, true)
								}
								nextSep[qi].AddSync(d)
							}
						}
					}
				}
			}
			atomic.AddInt64(&res.EdgesProcessed, edges)
			atomic.AddInt64(&res.LaneRelaxations, relaxes)
			atomic.AddInt64(&res.ValueWrites, writes)
		})
		sep = nextSep
		if opt.Telemetry != nil {
			opt.Telemetry.RecordIteration(telemetry.IterationStat{
				Iter:            iter,
				Query:           -1,
				FrontierSize:    unionCount,
				Mode:            telemetry.ModePush,
				ActiveQueries:   st.ActiveAt(iter),
				InjectedQueries: injected,
				EdgesProcessed:  atomic.LoadInt64(&res.EdgesProcessed) - prevEdges,
				LaneRelaxations: atomic.LoadInt64(&res.LaneRelaxations) - prevRelaxes,
				ValueWrites:     atomic.LoadInt64(&res.ValueWrites) - prevWrites,
			})
		}
		if tr != nil {
			addr.SwapFrontiers()
		}
	}
	return res, nil
}

var _ core.Engine = GraphM{}
