// Package baselines implements the comparator systems of the paper's
// evaluation that are not Ligra-derived engines:
//
//   - GraphM: a partition-centric concurrent engine in the style of GraphM
//     (Zhao et al., SC'19), streaming cache-sized CSR partitions past all
//     active queries (paper Table 5's "GraphM" row).
//   - Congra: asynchronous per-query evaluation sharing the graph but not
//     the traversal, the design point Glign's intra-iteration alignment
//     argues against (§2.2).
//   - IBFS: the iBFS query-grouping heuristic (§4.8), reimplemented as a
//     sched.Policy that groups BFS queries by shared early frontiers.
//   - QueryParallel: the BGL-style one-thread-per-query design dismissed in
//     §4.1.
//
// Engines here record the same per-iteration telemetry as internal/core
// (frontier sizes, edges processed, value writes) so that misalignment in a
// baseline run is visible in the same metrics JSON as a Glign run; see
// OBSERVABILITY.md. QueryParallel is the one exception — its per-query
// threads share no iteration structure to report.
package baselines
