package baselines

import (
	"github.com/glign/glign/internal/core"
	"github.com/glign/glign/internal/engine"
	"github.com/glign/glign/internal/par"
	"github.com/glign/glign/internal/queries"

	"github.com/glign/glign/internal/graph"
)

// QueryParallel is the query-level-parallelism design the paper tests and
// dismisses in §4.1: every query is evaluated with a serial textbook
// implementation (as from the Boost Graph Library), and different queries
// run on different threads. It shares nothing — no frontiers, no global
// iterations — and serves as a lower baseline. Having no iteration
// structure, it is the one engine that records no per-iteration telemetry
// (batch-level durations still appear in the run trace).
type QueryParallel struct{}

// Name implements core.Engine.
func (QueryParallel) Name() string { return "Query-Parallel" }

// Run implements core.Engine.
func (QueryParallel) Run(g *graph.Graph, batch []queries.Query, opt core.Options) (*core.BatchResult, error) {
	// Convergence kernels run one independent Jacobi evaluation per query.
	// The parallelism moves inside each evaluation (engine.RunConvergence
	// drives the pool itself) rather than across queries, because pool
	// workers must not submit nested loops to the pool they run on.
	if queries.AnyConvergent(batch) {
		return core.RunConvergenceSequential(g, batch, opt)
	}
	st, err := core.PrepareBatch(g, batch, opt)
	if err != nil {
		return nil, err
	}
	res := st.NewResult()
	par.OrDefault(opt.Pool).For(len(batch), opt.Workers, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			vals := engine.ReferenceRun(g, batch[i])
			for v := 0; v < st.N; v++ {
				st.Vals.Set(st.Cell(v, i), vals[v])
			}
		}
	})
	res.GlobalIterations = 1
	return res, nil
}

var _ core.Engine = QueryParallel{}
