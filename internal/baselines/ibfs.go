package baselines

import (
	"sort"

	"github.com/glign/glign/internal/align"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/queries"
	"github.com/glign/glign/internal/sched"
	"github.com/glign/glign/internal/telemetry"
)

// IBFS implements the query-grouping heuristic of iBFS (Liu et al.,
// SIGMOD'16) as the paper reimplements it for the CPU in §4.8: queries are
// grouped into the same batch when (i) their sources' out-degrees are below
// p, and (ii) the sources share at least one common out-neighbor whose
// out-degree exceeds q. Sources failing the conditions fall back to arrival
// order. The grouped batches are then evaluated with the two-level
// (unified + separate frontier) engine, which is what iBFS uses.
//
// IBFS satisfies sched.Policy so it can be plugged into the same harness as
// FCFS and affinity-oriented batching.
type IBFS struct {
	Graph *graph.Graph
	// P bounds the source out-degree (condition i); <= 0 derives
	// 2*ceil(avg degree).
	P int
	// Q is the minimum out-degree of the shared "hub" neighbor
	// (condition ii); <= 0 derives the degree of the graph's
	// align.DefaultHubCount-th largest hub.
	Q int
	// Telemetry, when non-nil, receives the grouping decision (the ranked
	// order the heuristic chose over the whole buffer).
	Telemetry *telemetry.RunTrace
}

// Name implements sched.Policy.
func (IBFS) Name() string { return "iBFS" }

// MakeBatches implements sched.Policy.
func (h IBFS) MakeBatches(buffer []queries.Query, batchSize int) [][]int {
	g := h.Graph
	p := h.P
	if p <= 0 {
		p = 2 * (int(g.AvgDegree()) + 1)
	}
	q := h.Q
	if q <= 0 {
		hubs := g.TopOutDegreeVertices(align.DefaultHubCount)
		q = g.OutDegree(hubs[len(hubs)-1]) - 1
		if q < p {
			q = p
		}
	}

	// For each eligible source, its first heavy out-neighbor keys the
	// group (a source with several heavy neighbors joins the first's
	// group, a greedy simplification of iBFS's pairwise condition: all
	// members of a group share that heavy neighbor).
	groups := map[graph.VertexID][]int{}
	var groupKeys []graph.VertexID
	var rest []int
	for i, query := range buffer {
		src := query.Source
		if g.OutDegree(src) >= p {
			rest = append(rest, i)
			continue
		}
		var key graph.VertexID
		found := false
		for _, d := range g.OutNeighbors(src) {
			if g.OutDegree(d) > q {
				key = d
				found = true
				break
			}
		}
		if !found {
			rest = append(rest, i)
			continue
		}
		if _, ok := groups[key]; !ok {
			groupKeys = append(groupKeys, key)
		}
		groups[key] = append(groups[key], i)
	}
	sort.Slice(groupKeys, func(a, b int) bool { return groupKeys[a] < groupKeys[b] })

	var batches [][]int
	var carry []int
	flushCarry := func() {
		for lo := 0; lo < len(carry); lo += batchSize {
			hi := lo + batchSize
			if hi > len(carry) {
				hi = len(carry)
			}
			batches = append(batches, carry[lo:hi:hi])
		}
		carry = nil
	}
	for _, key := range groupKeys {
		members := groups[key]
		// Full batches from the group; the remainder joins the carry pool
		// so partially-filled groups still batch together.
		for len(members) >= batchSize {
			batches = append(batches, members[:batchSize:batchSize])
			members = members[batchSize:]
		}
		carry = append(carry, members...)
	}
	carry = append(carry, rest...)
	flushCarry()
	if h.Telemetry != nil {
		order := make([]int, 0, len(buffer))
		for _, b := range batches {
			order = append(order, b...)
		}
		h.Telemetry.RecordDecision(telemetry.BatchingDecision{
			Policy:      h.Name(),
			WindowStart: 0,
			WindowEnd:   len(buffer),
			Order:       order,
		})
	}
	return batches
}

var _ sched.Policy = IBFS{}
