package baselines

import (
	"math/rand"
	"testing"

	"github.com/glign/glign/internal/core"
	"github.com/glign/glign/internal/engine"
	"github.com/glign/glign/internal/graph"
	"github.com/glign/glign/internal/memtrace"
	"github.com/glign/glign/internal/queries"
)

func checkAgainstReference(t *testing.T, e core.Engine, g *graph.Graph, batch []queries.Query, opt core.Options) {
	t.Helper()
	res, err := e.Run(g, batch, opt)
	if err != nil {
		t.Fatalf("%s: %v", e.Name(), err)
	}
	for qi, q := range batch {
		want := engine.ReferenceRun(g, q)
		for v := 0; v < g.NumVertices(); v++ {
			if got := res.Value(qi, graph.VertexID(v)); got != want[v] {
				t.Fatalf("%s: query %d (%s) v%d = %v, want %v", e.Name(), qi, q, v, got, want[v])
			}
		}
	}
}

func mixedBatch(g *graph.Graph, n int, seed int64) []queries.Query {
	rng := rand.New(rand.NewSource(seed))
	kernels := queries.All()
	batch := make([]queries.Query, n)
	for i := range batch {
		batch[i] = queries.Query{
			Kernel: kernels[rng.Intn(len(kernels))],
			Source: graph.VertexID(rng.Intn(g.NumVertices())),
		}
	}
	return batch
}

func TestGraphMMatchesReference(t *testing.T) {
	for _, g := range []*graph.Graph{graph.PaperExample(), graph.MustGenerate(graph.TW, graph.Tiny)} {
		checkAgainstReference(t, GraphM{}, g, mixedBatch(g, 10, 31), core.Options{Workers: 4})
	}
}

func TestGraphMSmallPartitions(t *testing.T) {
	// Force many tiny partitions to exercise the partition-streaming path.
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	e := GraphM{PartitionBytes: 1024}
	checkAgainstReference(t, e, g, mixedBatch(g, 6, 32), core.Options{Workers: 4})
	if parts := partitionRanges(g, 1024); len(parts) < 8 {
		t.Fatalf("expected many partitions, got %d", len(parts))
	}
}

func TestPartitionRangesCoverVertexSpace(t *testing.T) {
	g := graph.MustGenerate(graph.UK2, graph.Tiny)
	for _, target := range []int64{0, 512, 1 << 20} {
		parts := partitionRanges(g, target)
		pos := 0
		for _, p := range parts {
			if p[0] != pos || p[1] <= p[0] {
				t.Fatalf("partition %v not contiguous at %d", p, pos)
			}
			pos = p[1]
		}
		if pos != g.NumVertices() {
			t.Fatalf("partitions end at %d, want %d", pos, g.NumVertices())
		}
	}
}

func TestGraphMHonorsAlignment(t *testing.T) {
	g := graph.PaperExample()
	batch := []queries.Query{
		{Kernel: queries.SSSP, Source: 1},
		{Kernel: queries.SSSP, Source: 7},
	}
	checkAgainstReference(t, GraphM{}, g, batch, core.Options{Alignment: []int{2, 0}, Workers: 1})
}

func TestQueryParallelMatchesReference(t *testing.T) {
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	checkAgainstReference(t, QueryParallel{}, g, mixedBatch(g, 12, 33), core.Options{Workers: 4})
}

func TestIBFSGroupsShareHeavyNeighbor(t *testing.T) {
	g := graph.MustGenerate(graph.TW, graph.Tiny)
	rng := rand.New(rand.NewSource(34))
	buf := make([]queries.Query, 80)
	for i := range buf {
		buf[i] = queries.Query{Kernel: queries.BFS,
			Source: graph.VertexID(rng.Intn(g.NumVertices()))}
	}
	h := IBFS{Graph: g}
	batches := h.MakeBatches(buf, 8)
	// Partition check.
	seen := make([]bool, len(buf))
	total := 0
	for _, b := range batches {
		if len(b) == 0 || len(b) > 8 {
			t.Fatalf("batch size %d", len(b))
		}
		for _, i := range b {
			if seen[i] {
				t.Fatalf("query %d scheduled twice", i)
			}
			seen[i] = true
			total++
		}
	}
	if total != len(buf) {
		t.Fatalf("scheduled %d of %d", total, len(buf))
	}
}

func TestIBFSParameterDefaults(t *testing.T) {
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	buf := []queries.Query{{Kernel: queries.BFS, Source: 0}}
	// Explicit and derived parameters must both schedule everything.
	for _, h := range []IBFS{{Graph: g}, {Graph: g, P: 5, Q: 50}} {
		batches := h.MakeBatches(buf, 4)
		if len(batches) != 1 || len(batches[0]) != 1 {
			t.Fatalf("batches = %v", batches)
		}
	}
}

func TestCongraMatchesReference(t *testing.T) {
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	checkAgainstReference(t, Congra{}, g, mixedBatch(g, 10, 37), core.Options{Workers: 2})
	// Bounded admission must also be correct.
	checkAgainstReference(t, Congra{ConcurrentQueries: 2}, g, mixedBatch(g, 6, 38), core.Options{Workers: 2})
}

func TestGraphMTracing(t *testing.T) {
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	batch := mixedBatch(g, 6, 36)
	var ct memtrace.CountingTracer
	res, err := GraphM{}.Run(g, batch, core.Options{Tracer: &ct})
	if err != nil {
		t.Fatal(err)
	}
	if ct.Reads == 0 || ct.Writes == 0 {
		t.Fatalf("GraphM tracer saw reads=%d writes=%d", ct.Reads, ct.Writes)
	}
	// Tracing must not perturb results.
	plain, err := GraphM{}.Run(g, batch, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for qi := range batch {
		for v := 0; v < g.NumVertices(); v++ {
			if res.Value(qi, graph.VertexID(v)) != plain.Value(qi, graph.VertexID(v)) {
				t.Fatal("tracing changed GraphM results")
			}
		}
	}
}

func TestGraphMPartitionCentricCounters(t *testing.T) {
	g := graph.MustGenerate(graph.LJ, graph.Tiny)
	batch := mixedBatch(g, 8, 35)
	res, err := GraphM{}.Run(g, batch, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgesProcessed == 0 || res.GlobalIterations == 0 {
		t.Fatalf("counters empty: %+v", res)
	}
	// GraphM does per-job edge passes: lane relaxations == edges processed.
	if res.LaneRelaxations != res.EdgesProcessed {
		t.Fatalf("lane relaxations %d != edges %d", res.LaneRelaxations, res.EdgesProcessed)
	}
}
