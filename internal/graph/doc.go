// Package graph provides the in-memory graph substrate used by the Glign
// runtime: a compressed sparse row (CSR) representation with optional edge
// weights, edge-reversed views, degree statistics, deterministic synthetic
// generators (R-MAT power-law graphs and grid road networks), and simple
// text/binary persistence.
//
// The representation mirrors what Ligra-style engines consume: for each
// vertex v, Offsets[v]..Offsets[v+1] delimits v's out-edges in Targets (and
// Weights, when present). Vertex identifiers are dense uint32 values in
// [0, NumVertices).
//
// The synthetic datasets (LJ, WP, UK2, TW, FR power-law graphs; RD-CA,
// RD-US road grids) are scaled-down stand-ins for the real-world inputs of
// the paper's evaluation, sized so that CSR footprint exceeds the simulated
// LLC by the same order of magnitude as in the paper (see DESIGN.md §3).
package graph
