package graph

// PaperExample returns the 9-vertex directed weighted graph of paper
// Figure 3-(b), reconstructed exactly from the evaluation traces in
// Tables 1-3. Vertex v_i of the paper is vertex i-1 here.
//
// With these weights the package reproduces, bit for bit:
//   - Table 1: the iterative evaluation of sssp(v1) — values
//     [0,17,4,12,5,7,6,22,10] and frontiers {v1},{v3},{v4,v5,v6,v7},
//     {v2,v9},{v8},∅;
//   - Table 2: the frontier sequences of sssp(v2) and sssp(v8);
//   - Table 3 / §3.3: the affinity values 1/3 (alignment I=[2,0]) and
//     1/9 (I=[0,0]) for the batch [sssp(v2), sssp(v8)].
//
// (Table 3 of the OCR'd paper prints sssp(v8)'s iteration-3 frontier as
// {v3,v6}; the paper's own union-frontier computation right below it —
// Frontier_union^3 = {v3,v8,v9} — shows the true value is {v3,v9}, which is
// what this graph produces.)
func PaperExample() *Graph {
	b := NewBuilder(9, true, true)
	edges := []struct {
		u, v VertexID
		w    Weight
	}{
		{0, 2, 4},  // v1 -> v3
		{1, 2, 3},  // v2 -> v3
		{1, 7, 5},  // v2 -> v8
		{2, 3, 8},  // v3 -> v4
		{2, 4, 1},  // v3 -> v5
		{2, 5, 3},  // v3 -> v6
		{2, 6, 2},  // v3 -> v7
		{3, 1, 5},  // v4 -> v2
		{3, 5, 12}, // v4 -> v6
		{4, 8, 5},  // v5 -> v9
		{5, 8, 3},  // v6 -> v9
		{6, 8, 4},  // v7 -> v9
		{7, 3, 2},  // v8 -> v4
		{8, 7, 12}, // v9 -> v8
	}
	for _, e := range edges {
		b.AddEdge(e.u, e.v, e.w)
	}
	b.SetName("paper-fig3")
	return b.MustBuild()
}
