package graph

import (
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(LJ, Tiny)
	b := MustGenerate(LJ, Tiny)
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("non-deterministic sizes: %v vs %v", a, b)
	}
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] || a.Weights[i] != b.Weights[i] {
			t.Fatalf("non-deterministic edge %d", i)
		}
	}
}

func TestGenerateAllDatasetsTiny(t *testing.T) {
	for _, d := range AllDatasets() {
		g, err := Generate(d, Tiny)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: invalid: %v", d, err)
		}
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Fatalf("%s: empty graph", d)
		}
		if !g.Weighted() {
			t.Fatalf("%s: generators must attach weights", d)
		}
	}
}

func TestGenerateUnknownDataset(t *testing.T) {
	if _, err := Generate(Dataset("NOPE"), Tiny); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := Generate(LJ, SizeClass(99)); err == nil {
		t.Fatal("unknown size class accepted")
	}
}

// The road networks must sit in a different structural regime than the
// power-law graphs: far smaller average degree and far larger diameter.
// This is the property paper §4.7 depends on.
func TestRoadVsPowerLawRegimes(t *testing.T) {
	lj := ComputeStats(MustGenerate(LJ, Tiny))
	rd := ComputeStats(MustGenerate(RDCA, Tiny))
	if rd.AvgDegree >= lj.AvgDegree {
		t.Fatalf("road avg degree %.2f >= power-law %.2f", rd.AvgDegree, lj.AvgDegree)
	}
	if rd.ApproxDia <= 2*lj.ApproxDia {
		t.Fatalf("road diameter %d not ≫ power-law diameter %d", rd.ApproxDia, lj.ApproxDia)
	}
	if rd.MaxDegree > 12 {
		t.Fatalf("road max degree %d suspiciously high", rd.MaxDegree)
	}
}

// The power-law generators must produce heavy-tailed degree distributions:
// a hub vertex whose degree vastly exceeds the average. Glign's
// heavy-iteration heuristic (paper §3.3) keys off exactly this skew.
func TestPowerLawSkew(t *testing.T) {
	for _, d := range PowerLawDatasets() {
		s := ComputeStats(MustGenerate(d, Tiny))
		if float64(s.MaxDegree) < 8*s.AvgDegree {
			t.Fatalf("%s: max degree %d not ≫ avg %.2f — not power-law", d, s.MaxDegree, s.AvgDegree)
		}
	}
}

func TestRoadConnected(t *testing.T) {
	g := MustGenerate(RDCA, Tiny)
	rev := g.Reverse()
	// BFS from vertex 0 must reach everything (spanning backbone guarantee).
	n := g.NumVertices()
	seen := make([]bool, n)
	seen[0] = true
	queue := []VertexID{0}
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, set := range [][]VertexID{g.OutNeighbors(v), rev.OutNeighbors(v)} {
			for _, u := range set {
				if !seen[u] {
					seen[u] = true
					count++
					queue = append(queue, u)
				}
			}
		}
	}
	if count != n {
		t.Fatalf("road network disconnected: reached %d of %d", count, n)
	}
}

func TestSizeClassOrdering(t *testing.T) {
	tiny := MustGenerate(LJ, Tiny)
	small := MustGenerate(LJ, Small)
	if small.NumVertices() <= tiny.NumVertices() {
		t.Fatalf("Small (%d) not larger than Tiny (%d)", small.NumVertices(), tiny.NumVertices())
	}
}

func TestSizeClassString(t *testing.T) {
	if Tiny.String() != "tiny" || Small.String() != "small" || Medium.String() != "medium" {
		t.Fatal("SizeClass.String broken")
	}
	if SizeClass(42).String() == "" {
		t.Fatal("unknown size class should still format")
	}
}

func TestComputeStatsPaperExample(t *testing.T) {
	s := ComputeStats(PaperExample())
	if s.Vertices != 9 || s.Edges != 14 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxDegree != 4 {
		t.Fatalf("max degree = %d, want 4 (v3)", s.MaxDegree)
	}
	if s.ApproxDia < 2 {
		t.Fatalf("approx diameter = %d, want >= 2", s.ApproxDia)
	}
}
