package graph

import (
	"errors"
	"fmt"
	"sort"
)

// VertexID identifies a vertex. Vertices are densely numbered from 0.
type VertexID = uint32

// Weight is the type of edge weights. All generators produce weights >= 1,
// which every query kernel in internal/queries relies on (e.g. Viterbi's
// division keeps values monotone only for weights >= 1).
type Weight = float32

// Graph is an immutable CSR graph. The zero value is an empty graph.
//
// For an undirected graph every edge {u,v} is stored twice (u->v and v->u),
// matching the convention of Ligra and of the adjacency-list inputs the
// original Glign artifact consumes.
type Graph struct {
	// Offsets has length NumVertices()+1; out-edges of v occupy
	// Targets[Offsets[v]:Offsets[v+1]].
	Offsets []uint32
	// Targets holds the destination of every edge, grouped by source.
	Targets []VertexID
	// Weights holds the per-edge weight, parallel to Targets. It is nil for
	// unweighted graphs; Weight accessors then report 1.
	Weights []Weight
	// Directed records whether the edge set is directed. Undirected graphs
	// are stored symmetrized.
	Directed bool
	// Name is an optional human-readable label ("LJ-sim", ...).
	Name string
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int {
	if len(g.Offsets) == 0 {
		return 0
	}
	return len(g.Offsets) - 1
}

// NumEdges returns the number of stored directed edges (an undirected graph
// reports twice its logical edge count, as both arcs are materialized).
func (g *Graph) NumEdges() int { return len(g.Targets) }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v VertexID) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// OutNeighbors returns the slice of out-neighbors of v. The returned slice
// aliases the graph's storage and must not be modified.
func (g *Graph) OutNeighbors(v VertexID) []VertexID {
	return g.Targets[g.Offsets[v]:g.Offsets[v+1]]
}

// OutEdges returns the out-neighbors of v and their weights. The weight
// slice is nil for unweighted graphs.
func (g *Graph) OutEdges(v VertexID) ([]VertexID, []Weight) {
	lo, hi := g.Offsets[v], g.Offsets[v+1]
	if g.Weights == nil {
		return g.Targets[lo:hi], nil
	}
	return g.Targets[lo:hi], g.Weights[lo:hi]
}

// EdgeWeight returns the weight of the i-th stored edge (1 for unweighted
// graphs).
func (g *Graph) EdgeWeight(i uint32) Weight {
	if g.Weights == nil {
		return 1
	}
	return g.Weights[i]
}

// Weighted reports whether the graph carries per-edge weights.
func (g *Graph) Weighted() bool { return g.Weights != nil }

// AvgDegree returns the average out-degree.
func (g *Graph) AvgDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(n)
}

// MaxOutDegree returns the maximum out-degree and one vertex attaining it.
func (g *Graph) MaxOutDegree() (VertexID, int) {
	best, bestDeg := VertexID(0), -1
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(VertexID(v)); d > bestDeg {
			best, bestDeg = VertexID(v), d
		}
	}
	if bestDeg < 0 {
		bestDeg = 0
	}
	return best, bestDeg
}

// TopOutDegreeVertices returns the k vertices with the highest out-degree,
// in decreasing degree order (ties broken by lower vertex id). These are the
// "high-degree vertices" (HV) that Glign's inter-iteration alignment probes
// with reverse BFS (paper Figure 9, line 2).
func (g *Graph) TopOutDegreeVertices(k int) []VertexID {
	n := g.NumVertices()
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	ids := make([]VertexID, n)
	for i := range ids {
		ids[i] = VertexID(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		da, db := g.OutDegree(ids[a]), g.OutDegree(ids[b])
		if da != db {
			return da > db
		}
		return ids[a] < ids[b]
	})
	return append([]VertexID(nil), ids[:k]...)
}

// Reverse returns the edge-reversed graph: an edge u->v becomes v->u,
// carrying its weight. For undirected graphs the reverse equals the original
// (a fresh copy is still returned so callers may retain it independently).
// Glign runs hub BFS on the reversed graph to obtain, for every vertex, the
// least number of hops *to* each hub (paper Figure 9, line 3).
func (g *Graph) Reverse() *Graph {
	n := g.NumVertices()
	counts := make([]uint32, n+1)
	for _, t := range g.Targets {
		counts[t+1]++
	}
	for i := 1; i <= n; i++ {
		counts[i] += counts[i-1]
	}
	offsets := counts
	targets := make([]VertexID, len(g.Targets))
	var weights []Weight
	if g.Weights != nil {
		weights = make([]Weight, len(g.Weights))
	}
	next := make([]uint32, n)
	copy(next, offsets[:n])
	for u := 0; u < n; u++ {
		lo, hi := g.Offsets[u], g.Offsets[u+1]
		for i := lo; i < hi; i++ {
			t := g.Targets[i]
			pos := next[t]
			next[t]++
			targets[pos] = VertexID(u)
			if weights != nil {
				weights[pos] = g.Weights[i]
			}
		}
	}
	return &Graph{
		Offsets:  offsets,
		Targets:  targets,
		Weights:  weights,
		Directed: g.Directed,
		Name:     g.Name + "-rev",
	}
}

// Validate checks structural invariants: monotone offsets, targets in range,
// and weight slice length. It returns a descriptive error on the first
// violation.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if len(g.Offsets) == 0 {
		if len(g.Targets) != 0 {
			return errors.New("graph: targets present with empty offsets")
		}
		return nil
	}
	if g.Offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.Offsets[0])
	}
	for v := 0; v < n; v++ {
		if g.Offsets[v+1] < g.Offsets[v] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
	}
	if int(g.Offsets[n]) != len(g.Targets) {
		return fmt.Errorf("graph: offsets[n]=%d != len(targets)=%d", g.Offsets[n], len(g.Targets))
	}
	for i, t := range g.Targets {
		if int(t) >= n {
			return fmt.Errorf("graph: edge %d targets out-of-range vertex %d (n=%d)", i, t, n)
		}
	}
	if g.Weights != nil && len(g.Weights) != len(g.Targets) {
		return fmt.Errorf("graph: len(weights)=%d != len(targets)=%d", len(g.Weights), len(g.Targets))
	}
	return nil
}

// MemoryFootprintBytes returns the approximate resident size of the graph
// topology (offsets + targets + weights), used by the Table 11 footprint
// experiment.
func (g *Graph) MemoryFootprintBytes() int64 {
	b := int64(len(g.Offsets)) * 4
	b += int64(len(g.Targets)) * 4
	if g.Weights != nil {
		b += int64(len(g.Weights)) * 4
	}
	return b
}

// String summarizes the graph.
func (g *Graph) String() string {
	kind := "undirected"
	if g.Directed {
		kind = "directed"
	}
	w := "unweighted"
	if g.Weighted() {
		w = "weighted"
	}
	name := g.Name
	if name == "" {
		name = "graph"
	}
	return fmt.Sprintf("%s{%s %s |V|=%d |E|=%d avg-deg=%.2f}",
		name, kind, w, g.NumVertices(), g.NumEdges(), g.AvgDegree())
}
