package graph

import (
	"math/rand"
)

// RoadConfig parameterizes the synthetic road-network generator. Road
// networks (roadNet-CA/USA in the paper) are near-planar: tiny average
// degree (~2.4-2.8) and enormous diameter (hundreds to thousands of hops).
// Query evaluation on them never develops the "heavy iterations" that
// Glign's inter-iteration alignment exploits, which is exactly the regime
// Table 15 probes.
type RoadConfig struct {
	// Rows x Cols grid intersections.
	Rows, Cols int
	// DropProb removes each grid edge independently with this probability,
	// producing irregular city blocks (kept low enough to stay connected in
	// expectation; the generator retries dropped edges on the grid spanning
	// backbone so the graph remains connected).
	DropProb float64
	// ShortcutFraction adds this fraction of |V| long-range "highway" edges
	// between random vertices within a limited Manhattan radius.
	ShortcutFraction float64
	// MaxWeight bounds the uniform integer edge weights (>= 1).
	MaxWeight int
	Seed      int64
	Name      string
}

// DefaultRoad returns parameters resembling a mid-size road network.
func DefaultRoad(rows, cols int, seed int64) RoadConfig {
	return RoadConfig{
		Rows: rows, Cols: cols,
		DropProb:         0.08,
		ShortcutFraction: 0.01,
		MaxWeight:        16,
		Seed:             seed,
	}
}

// GenerateRoad builds a deterministic undirected weighted road network on a
// Rows x Cols grid. A spanning "backbone" (all edges of row 0 and column 0
// plus one edge linking every other vertex toward the origin) is always
// kept, so the graph is connected regardless of DropProb.
func GenerateRoad(cfg RoadConfig) *Graph {
	rows, cols := cfg.Rows, cfg.Cols
	n := rows * cols
	rng := rand.New(rand.NewSource(cfg.Seed))
	maxW := cfg.MaxWeight
	if maxW < 1 {
		maxW = 1
	}
	id := func(r, c int) VertexID { return VertexID(r*cols + c) }
	w := func() Weight { return Weight(1 + rng.Intn(maxW)) }

	// Spanning guarantee: every vertex other than the origin keeps one
	// "parent" edge toward a lower row or column, chosen at random, so the
	// graph stays connected no matter what DropProb removes.
	parentUp := make([]bool, n) // true: parent is (r-1,c); false: (r,c-1)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			switch {
			case r == 0 && c == 0:
			case r == 0:
				parentUp[id(r, c)] = false
			case c == 0:
				parentUp[id(r, c)] = true
			default:
				parentUp[id(r, c)] = rng.Intn(2) == 0
			}
		}
	}
	b := NewBuilder(n, false, true)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			// Horizontal edge (r,c)-(r,c+1): parent edge of (r,c+1) when
			// that vertex's parent points left.
			if c+1 < cols {
				keep := !parentUp[id(r, c+1)]
				if keep || rng.Float64() >= cfg.DropProb {
					b.AddEdge(id(r, c), id(r, c+1), w())
				}
			}
			// Vertical edge (r,c)-(r+1,c): parent edge of (r+1,c) when that
			// vertex's parent points up.
			if r+1 < rows {
				keep := parentUp[id(r+1, c)]
				if keep || rng.Float64() >= cfg.DropProb {
					b.AddEdge(id(r, c), id(r+1, c), w())
				}
			}
		}
	}
	// Local highway shortcuts.
	shortcuts := int(cfg.ShortcutFraction * float64(n))
	radius := cols / 8
	if radius < 2 {
		radius = 2
	}
	for i := 0; i < shortcuts; i++ {
		r := rng.Intn(rows)
		c := rng.Intn(cols)
		dr := rng.Intn(2*radius+1) - radius
		dc := rng.Intn(2*radius+1) - radius
		r2, c2 := r+dr, c+dc
		if r2 < 0 || r2 >= rows || c2 < 0 || c2 >= cols || (r2 == r && c2 == c) {
			continue
		}
		b.AddEdge(id(r, c), id(r2, c2), w())
	}
	g := b.MustBuild()
	g.Name = cfg.Name
	if g.Name == "" {
		g.Name = "road"
	}
	return g
}
