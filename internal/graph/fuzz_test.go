package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList exercises the text parser: it must never panic, and any
// input it accepts must produce a structurally valid graph that round-trips
// through the writer.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# c\n0 1 2.5\n")
	f.Add("")
	f.Add("0 0\n")
	f.Add("3 1 -2\n")
	f.Add("x y z\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input), true)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted input produced invalid graph: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		g2, err := ReadEdgeList(&buf, true)
		if err != nil {
			t.Fatalf("reparse of own output failed: %v", err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed |E|: %d -> %d", g.NumEdges(), g2.NumEdges())
		}
	})
}

// FuzzReadBinary and FuzzReadCompressed exercise the binary decoders with
// arbitrary bytes: they must reject or decode, never panic or accept an
// invalid graph.
func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, PaperExample()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("decoder accepted invalid graph: %v", err)
		}
	})
}

func FuzzReadCompressed(f *testing.F) {
	var buf bytes.Buffer
	if _, err := WriteCompressed(&buf, PaperExample()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadCompressed(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("decoder accepted invalid graph: %v", err)
		}
	})
}
