package graph

import (
	"fmt"
	"sort"
)

// Edge is a single directed, optionally weighted edge used while building a
// graph. Weight 0 is normalized to 1 at build time so that generators and
// loaders may leave it unset for unweighted inputs.
type Edge struct {
	Src, Dst VertexID
	W        Weight
}

// Builder accumulates edges and produces an immutable CSR Graph. It is not
// safe for concurrent use; build graphs up front and share the immutable
// result.
type Builder struct {
	n        int
	directed bool
	weighted bool
	edges    []Edge
	name     string
}

// NewBuilder returns a builder for a graph with n vertices.
func NewBuilder(n int, directed, weighted bool) *Builder {
	return &Builder{n: n, directed: directed, weighted: weighted}
}

// SetName sets the label of the resulting graph.
func (b *Builder) SetName(name string) *Builder { b.name = name; return b }

// AddEdge records the edge u->v with weight w. For undirected builders the
// symmetric arc is added automatically at Build time. Out-of-range endpoints
// cause Build to fail.
func (b *Builder) AddEdge(u, v VertexID, w Weight) {
	b.edges = append(b.edges, Edge{Src: u, Dst: v, W: w})
}

// NumPendingEdges returns the number of edges recorded so far (before
// symmetrization or deduplication).
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// Build finalizes the CSR graph. Duplicate arcs are collapsed (keeping the
// smallest weight, the only duplicate-resolution under which every monotone
// kernel computes the same fixed point as with multi-edges); self-loops are
// dropped. Neighbor lists are sorted by target id for deterministic
// traversal order.
func (b *Builder) Build() (*Graph, error) {
	edges := b.edges
	if !b.directed {
		sym := make([]Edge, 0, 2*len(edges))
		for _, e := range edges {
			sym = append(sym, e, Edge{Src: e.Dst, Dst: e.Src, W: e.W})
		}
		edges = sym
	}
	for i := range edges {
		e := &edges[i]
		if int(e.Src) >= b.n || int(e.Dst) >= b.n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range for n=%d", e.Src, e.Dst, b.n)
		}
		if e.W == 0 {
			e.W = 1
		}
	}
	// Drop self loops.
	filtered := edges[:0]
	for _, e := range edges {
		if e.Src != e.Dst {
			filtered = append(filtered, e)
		}
	}
	edges = filtered

	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Src != edges[j].Src {
			return edges[i].Src < edges[j].Src
		}
		if edges[i].Dst != edges[j].Dst {
			return edges[i].Dst < edges[j].Dst
		}
		return edges[i].W < edges[j].W
	})
	// Deduplicate (src,dst), keeping the first (smallest weight).
	dedup := edges[:0]
	for i, e := range edges {
		if i > 0 && e.Src == edges[i-1].Src && e.Dst == edges[i-1].Dst {
			continue
		}
		dedup = append(dedup, e)
	}
	edges = dedup

	offsets := make([]uint32, b.n+1)
	for _, e := range edges {
		offsets[e.Src+1]++
	}
	for i := 1; i <= b.n; i++ {
		offsets[i] += offsets[i-1]
	}
	targets := make([]VertexID, len(edges))
	var weights []Weight
	if b.weighted {
		weights = make([]Weight, len(edges))
	}
	for i, e := range edges {
		targets[i] = e.Dst
		if b.weighted {
			weights[i] = e.W
		}
	}
	g := &Graph{
		Offsets:  offsets,
		Targets:  targets,
		Weights:  weights,
		Directed: b.directed,
		Name:     b.name,
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// MustBuild is Build that panics on error, for tests and generators whose
// inputs are in-range by construction.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdges is a convenience constructor building a graph directly from an
// edge slice.
func FromEdges(n int, directed, weighted bool, edges []Edge) (*Graph, error) {
	b := NewBuilder(n, directed, weighted)
	b.edges = append(b.edges, edges...)
	return b.Build()
}
