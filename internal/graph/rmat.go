package graph

import (
	"math/rand"
)

// RMATConfig parameterizes the recursive-matrix (R-MAT) generator used to
// synthesize power-law graphs. R-MAT recursively subdivides the adjacency
// matrix into quadrants with probabilities A, B, C, D (A+B+C+D = 1); skewed
// probabilities yield the heavy-tailed degree distributions of real social
// and web graphs, which is the property Glign's heavy-iteration heuristic
// depends on.
type RMATConfig struct {
	// Scale gives NumVertices = 1 << Scale.
	Scale int
	// EdgeFactor gives NumEdges ~= EdgeFactor << Scale (before dedup).
	EdgeFactor int
	// A, B, C are the quadrant probabilities; D = 1-A-B-C.
	A, B, C float64
	// Directed selects a directed edge set.
	Directed bool
	// Weighted attaches uniform random weights in [1, MaxWeight].
	Weighted  bool
	MaxWeight int
	// Seed makes generation deterministic.
	Seed int64
	// Name labels the resulting graph.
	Name string
}

// DefaultRMAT returns the canonical Graph500-style parameters
// (A=0.57, B=0.19, C=0.19).
func DefaultRMAT(scale, edgeFactor int, seed int64) RMATConfig {
	return RMATConfig{
		Scale:      scale,
		EdgeFactor: edgeFactor,
		A:          0.57, B: 0.19, C: 0.19,
		Directed:  true,
		Weighted:  true,
		MaxWeight: 64,
		Seed:      seed,
	}
}

// GenerateRMAT builds a deterministic R-MAT graph from cfg. Vertex ids are
// randomly permuted so that high-degree vertices are scattered across the id
// space (as in real datasets, and required for the hop-bin workload sampler
// to be meaningful).
func GenerateRMAT(cfg RMATConfig) *Graph {
	n := 1 << cfg.Scale
	m := cfg.EdgeFactor * n
	rng := rand.New(rand.NewSource(cfg.Seed))
	perm := rng.Perm(n)

	b := NewBuilder(n, cfg.Directed, cfg.Weighted)
	maxW := cfg.MaxWeight
	if maxW < 1 {
		maxW = 1
	}
	for i := 0; i < m; i++ {
		u, v := rmatEdge(rng, cfg.Scale, cfg.A, cfg.B, cfg.C)
		w := Weight(1 + rng.Intn(maxW))
		b.AddEdge(VertexID(perm[u]), VertexID(perm[v]), w)
	}
	g := b.MustBuild()
	g.Name = cfg.Name
	if g.Name == "" {
		g.Name = "rmat"
	}
	return g
}

// rmatEdge draws one (src,dst) pair by Scale recursive quadrant choices,
// with mild parameter noise per level (the standard "smoothing" that avoids
// degenerate diagonal artifacts).
func rmatEdge(rng *rand.Rand, scale int, a, b, c float64) (int, int) {
	u, v := 0, 0
	for bit := scale - 1; bit >= 0; bit-- {
		// Jitter parameters +-10% each level, renormalizing implicitly by
		// comparing against cumulative thresholds.
		na := a * (0.9 + 0.2*rng.Float64())
		nb := b * (0.9 + 0.2*rng.Float64())
		nc := c * (0.9 + 0.2*rng.Float64())
		nd := (1 - a - b - c) * (0.9 + 0.2*rng.Float64())
		sum := na + nb + nc + nd
		r := rng.Float64() * sum
		switch {
		case r < na:
			// top-left: no bits set
		case r < na+nb:
			v |= 1 << bit
		case r < na+nb+nc:
			u |= 1 << bit
		default:
			u |= 1 << bit
			v |= 1 << bit
		}
	}
	return u, v
}
