package graph

import (
	"testing"
	"testing/quick"

	"math/rand"
)

func TestComponentsSingle(t *testing.T) {
	g := PaperExample()
	labels, count := Components(g)
	if count != 1 {
		t.Fatalf("components = %d, want 1", count)
	}
	for v, l := range labels {
		if l != 0 {
			t.Fatalf("v%d label %d", v, l)
		}
	}
	if len(LargestComponent(g)) != 9 {
		t.Fatal("largest component should cover the graph")
	}
}

func TestComponentsDisconnected(t *testing.T) {
	b := NewBuilder(7, true, false)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 2, 0)
	b.AddEdge(4, 5, 0)
	// vertices 3 and 6 are isolated
	g := b.MustBuild()
	labels, count := Components(g)
	if count != 4 {
		t.Fatalf("components = %d, want 4", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("chain not one component")
	}
	if labels[4] != labels[5] {
		t.Fatal("pair not one component")
	}
	if labels[3] == labels[0] || labels[6] == labels[4] || labels[3] == labels[6] {
		t.Fatal("isolated vertices mislabeled")
	}
	lc := LargestComponent(g)
	if len(lc) != 3 || lc[0] != 0 || lc[2] != 2 {
		t.Fatalf("largest component = %v", lc)
	}
}

func TestComponentsEmpty(t *testing.T) {
	var g Graph
	if _, count := Components(&g); count != 0 {
		t.Fatal("empty graph has components")
	}
	if LargestComponent(&g) != nil {
		t.Fatal("empty graph has a largest component")
	}
}

func TestRoadNetworksAreConnected(t *testing.T) {
	for _, d := range RoadDatasets() {
		g := MustGenerate(d, Tiny)
		if _, count := Components(g); count != 1 {
			t.Fatalf("%s: %d components, want 1 (spanning guarantee)", d, count)
		}
	}
}

// Property: labels partition the vertex set and are consistent with edges
// (endpoints of every edge share a label).
func TestQuickComponentsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		b := NewBuilder(n, rng.Intn(2) == 0, false)
		for i := 0; i < n; i++ {
			b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)), 0)
		}
		g := b.MustBuild()
		labels, count := Components(g)
		for _, l := range labels {
			if l < 0 || int(l) >= count {
				return false
			}
		}
		for v := 0; v < n; v++ {
			for _, u := range g.OutNeighbors(VertexID(v)) {
				if labels[v] != labels[u] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
