package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func graphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("size mismatch: %v vs %v", a, b)
	}
	if a.Directed != b.Directed || a.Weighted() != b.Weighted() {
		t.Fatalf("flags mismatch: %v vs %v", a, b)
	}
	for i := range a.Offsets {
		if a.Offsets[i] != b.Offsets[i] {
			t.Fatalf("offsets differ at %d", i)
		}
	}
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] {
			t.Fatalf("targets differ at %d", i)
		}
		if a.Weighted() && a.Weights[i] != b.Weights[i] {
			t.Fatalf("weights differ at %d", i)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, g := range []*Graph{PaperExample(), MustGenerate(UK2, Tiny), MustGenerate(RDCA, Tiny)} {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("%s: write: %v", g.Name, err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", g.Name, err)
		}
		if got.Name != g.Name {
			t.Fatalf("name %q != %q", got.Name, g.Name)
		}
		graphsEqual(t, g, got)
	}
}

func TestTextRoundTrip(t *testing.T) {
	for _, g := range []*Graph{PaperExample(), MustGenerate(LJ, Tiny)} {
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		got, err := ReadEdgeList(&buf, g.Directed)
		if err != nil {
			t.Fatal(err)
		}
		// Text round trip may renumber nothing but loses the name; compare CSR.
		graphsEqual(t, g, got)
	}
}

func TestTextRoundTripUndirected(t *testing.T) {
	g := MustGenerate(RDCA, Tiny)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, got)
}

func TestReadEdgeListParsing(t *testing.T) {
	in := "# comment\n% other comment\n0 1 2.5\n1 2\n\n2 0 4\n"
	g, err := ReadEdgeList(strings.NewReader(in), true)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %v", g)
	}
	if !g.Weighted() {
		t.Fatal("weight column present but graph unweighted")
	}
	// Missing weight defaults to 1.
	_, ws := g.OutEdges(1)
	if ws[0] != 1 {
		t.Fatalf("default weight = %v, want 1", ws[0])
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",                      // too few fields
		"x 1\n",                    // bad src
		"0 y\n",                    // bad dst
		"0 1 zoo\n",                // bad weight
		"0 99999999999999999999\n", // overflow
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in), true); err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
}

func TestReadBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestLoadSaveFile(t *testing.T) {
	dir := t.TempDir()
	g := PaperExample()

	binPath := filepath.Join(dir, "g.bin")
	if err := SaveFile(binPath, g); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(binPath, true)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, got)

	txtPath := filepath.Join(dir, "g.txt")
	if err := SaveFile(txtPath, g); err != nil {
		t.Fatal(err)
	}
	got, err = LoadFile(txtPath, true)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, got)

	if _, err := LoadFile(filepath.Join(dir, "missing.bin"), true); err == nil {
		t.Fatal("missing file accepted")
	}

	cbinPath := filepath.Join(dir, "g.cbin")
	if err := SaveFile(cbinPath, g); err != nil {
		t.Fatal(err)
	}
	got, err = LoadFile(cbinPath, true)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, got)
}
