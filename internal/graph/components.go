package graph

// Weakly connected components, used to sanity-check generated graphs, to
// interpret unreachable-hub sources in the workload sampler, and by the
// glign-gen statistics output.

// Components labels every vertex with its weakly-connected-component id
// (edges treated as undirected) and returns the labels plus the component
// count. Labels are dense in [0, count), assigned in order of first
// discovery.
func Components(g *Graph) ([]int32, int) {
	n := g.NumVertices()
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	rev := g.Reverse()
	next := int32(0)
	var queue []VertexID
	for s := 0; s < n; s++ {
		if labels[s] >= 0 {
			continue
		}
		labels[s] = next
		queue = append(queue[:0], VertexID(s))
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, u := range g.OutNeighbors(v) {
				if labels[u] < 0 {
					labels[u] = next
					queue = append(queue, u)
				}
			}
			for _, u := range rev.OutNeighbors(v) {
				if labels[u] < 0 {
					labels[u] = next
					queue = append(queue, u)
				}
			}
		}
		next++
	}
	return labels, int(next)
}

// LargestComponent returns the vertices of the largest weakly connected
// component, in increasing id order.
func LargestComponent(g *Graph) []VertexID {
	labels, count := Components(g)
	if count == 0 {
		return nil
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for c := 1; c < count; c++ {
		if sizes[c] > sizes[best] {
			best = c
		}
	}
	out := make([]VertexID, 0, sizes[best])
	for v, l := range labels {
		if int(l) == best {
			out = append(out, VertexID(v))
		}
	}
	return out
}
