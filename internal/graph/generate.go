package graph

import (
	"fmt"
	"sort"
)

// SizeClass selects how large the synthetic stand-ins for the paper's
// datasets are. The paper evaluates on graphs of 69M-3.6B edges on a
// 512 GB server; this reproduction scales them down while preserving the
// *relative* characteristics (density ordering, skew, diameter regime) that
// the alignment techniques depend on. The simulated LLC in
// internal/cachesim is scaled down correspondingly, so "graph much larger
// than cache" still holds.
type SizeClass int

const (
	// Tiny graphs (~1-2k vertices) for unit tests.
	Tiny SizeClass = iota
	// Small graphs (~16-32k vertices) for quick experiments and -short benches.
	Small
	// Medium graphs (~64-256k vertices, 1-4M edges) for the full benchmark
	// harness.
	Medium
)

// String implements fmt.Stringer.
func (s SizeClass) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	case Medium:
		return "medium"
	}
	return fmt.Sprintf("SizeClass(%d)", int(s))
}

// Dataset names one of the paper's seven graphs (Table 7).
type Dataset string

// The seven datasets of paper Table 7.
const (
	LJ   Dataset = "LJ"    // LiveJournal: directed social graph, avg deg ~14
	WP   Dataset = "WP"    // Wikipedia links: directed, dense, tiny diameter
	UK2  Dataset = "UK2"   // UK-2002 web crawl: undirected here, larger diameter
	TW   Dataset = "TW"    // Twitter: directed, dense, heavy skew
	FR   Dataset = "FR"    // Friendster: undirected, largest
	RDCA Dataset = "RD-CA" // roadNet-CA: planar, huge diameter
	RDUS Dataset = "RD-US" // roadNet-USA: planar, huger diameter
)

// PowerLawDatasets lists the five power-law graphs used by most experiments.
func PowerLawDatasets() []Dataset { return []Dataset{LJ, WP, UK2, TW, FR} }

// RoadDatasets lists the two road networks (Table 15).
func RoadDatasets() []Dataset { return []Dataset{RDCA, RDUS} }

// AllDatasets lists every dataset.
func AllDatasets() []Dataset {
	return append(PowerLawDatasets(), RoadDatasets()...)
}

// scalePreset describes how to synthesize one dataset at one size class.
type scalePreset struct {
	rmat *RMATConfig
	road *RoadConfig
}

func rmatPreset(scale, ef int, a, b, c float64, directed bool, seed int64, name string) scalePreset {
	return scalePreset{rmat: &RMATConfig{
		Scale: scale, EdgeFactor: ef,
		A: a, B: b, C: c,
		Directed: directed, Weighted: true, MaxWeight: 64,
		Seed: seed, Name: name,
	}}
}

func roadPreset(rows, cols int, seed int64, name string) scalePreset {
	cfg := DefaultRoad(rows, cols, seed)
	cfg.Name = name
	return scalePreset{road: &cfg}
}

// preset returns the generator configuration for (d, size). Skew and edge
// factor are tuned so the relative ordering of the real datasets holds:
// TW and WP are the densest/most skewed (small diameter), UK2 and FR are
// flatter (larger diameter), LJ sits in between.
func preset(d Dataset, size SizeClass) (scalePreset, error) {
	// Per-class base scale: Tiny=10, Small=14, Medium=16.
	var base int
	switch size {
	case Tiny:
		base = 10
	case Small:
		base = 14
	case Medium:
		base = 16
	default:
		return scalePreset{}, fmt.Errorf("graph: unknown size class %v", size)
	}
	switch d {
	case LJ:
		return rmatPreset(base, 14, 0.57, 0.19, 0.19, true, 1001, "LJ-sim"), nil
	case WP:
		return rmatPreset(base, 32, 0.60, 0.18, 0.18, true, 1002, "WP-sim"), nil
	case UK2:
		return rmatPreset(base+1, 8, 0.45, 0.22, 0.22, false, 1003, "UK2-sim"), nil
	case TW:
		return rmatPreset(base+1, 16, 0.62, 0.17, 0.17, true, 1004, "TW-sim"), nil
	case FR:
		return rmatPreset(base+2, 8, 0.48, 0.21, 0.21, false, 1005, "FR-sim"), nil
	case RDCA:
		switch size {
		case Tiny:
			return roadPreset(32, 32, 2001, "RD-CA-sim"), nil
		case Small:
			return roadPreset(100, 120, 2001, "RD-CA-sim"), nil
		default:
			return roadPreset(200, 250, 2001, "RD-CA-sim"), nil
		}
	case RDUS:
		switch size {
		case Tiny:
			return roadPreset(48, 48, 2002, "RD-US-sim"), nil
		case Small:
			return roadPreset(160, 200, 2002, "RD-US-sim"), nil
		default:
			return roadPreset(400, 500, 2002, "RD-US-sim"), nil
		}
	}
	return scalePreset{}, fmt.Errorf("graph: unknown dataset %q", d)
}

// Generate synthesizes the stand-in for dataset d at the given size class.
// Generation is deterministic: the same (d, size) always yields the same
// graph.
func Generate(d Dataset, size SizeClass) (*Graph, error) {
	p, err := preset(d, size)
	if err != nil {
		return nil, err
	}
	if p.rmat != nil {
		return GenerateRMAT(*p.rmat), nil
	}
	return GenerateRoad(*p.road), nil
}

// MustGenerate is Generate that panics on error; datasets and size classes
// are typically compile-time constants.
func MustGenerate(d Dataset, size SizeClass) *Graph {
	g, err := Generate(d, size)
	if err != nil {
		panic(err)
	}
	return g
}

// Stats summarizes structural properties of a graph; used by CLIs and by
// EXPERIMENTS.md to document the synthetic stand-ins (cf. paper Table 7).
type Stats struct {
	Name        string
	Vertices    int
	Edges       int
	Directed    bool
	AvgDegree   float64
	MaxDegree   int
	ApproxDia   int // approximate diameter: max BFS level from a hub
	DegreeP99   int // 99th-percentile out-degree
	ZeroDegrees int // vertices with no out-edges
}

// ComputeStats gathers Stats. ApproxDia runs one BFS from the highest-degree
// vertex (ignoring direction by using the union of out- and in-edges via the
// reverse graph) and reports the deepest level reached; a lower bound on the
// true diameter that is adequate for ordering graphs by diameter regime.
func ComputeStats(g *Graph) Stats {
	n := g.NumVertices()
	s := Stats{
		Name:      g.Name,
		Vertices:  n,
		Edges:     g.NumEdges(),
		Directed:  g.Directed,
		AvgDegree: g.AvgDegree(),
	}
	degs := make([]int, n)
	for v := 0; v < n; v++ {
		degs[v] = g.OutDegree(VertexID(v))
		if degs[v] == 0 {
			s.ZeroDegrees++
		}
		if degs[v] > s.MaxDegree {
			s.MaxDegree = degs[v]
		}
	}
	if n > 0 {
		sorted := append([]int(nil), degs...)
		sort.Ints(sorted)
		s.DegreeP99 = sorted[(len(sorted)*99)/100]
		hub, _ := g.MaxOutDegree()
		s.ApproxDia = eccentricity(g, g.Reverse(), hub)
	}
	return s
}

// eccentricity returns the max BFS level reachable from src treating edges
// as undirected (following both out- and in-edges).
func eccentricity(g, rev *Graph, src VertexID) int {
	n := g.NumVertices()
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	frontier := []VertexID{src}
	depth := 0
	for len(frontier) > 0 {
		var next []VertexID
		for _, v := range frontier {
			for _, u := range g.OutNeighbors(v) {
				if level[u] < 0 {
					level[u] = level[v] + 1
					next = append(next, u)
				}
			}
			for _, u := range rev.OutNeighbors(v) {
				if level[u] < 0 {
					level[u] = level[v] + 1
					next = append(next, u)
				}
			}
		}
		if len(next) > 0 {
			depth++
		}
		frontier = next
	}
	return depth
}
