package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Text format: one edge per line, "src dst [weight]", '#'-prefixed comment
// lines ignored — the SNAP edge-list convention used by the paper's
// datasets. Binary format: a compact CSR dump for fast reload.

// ReadEdgeList parses a SNAP-style edge list. n is inferred as max id + 1.
// If any line carries a third column the graph is weighted (missing weights
// default to 1).
func ReadEdgeList(r io.Reader, directed bool) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	weighted := false
	maxID := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 'src dst [w]', got %q", lineNo, line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad src: %v", lineNo, err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad dst: %v", lineNo, err)
		}
		w := Weight(1)
		if len(fields) >= 3 {
			f, err := strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %v", lineNo, err)
			}
			w = Weight(f)
			weighted = true
		}
		if int(u) > maxID {
			maxID = int(u)
		}
		if int(v) > maxID {
			maxID = int(v)
		}
		edges = append(edges, Edge{Src: VertexID(u), Dst: VertexID(v), W: w})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return FromEdges(maxID+1, directed, weighted, edges)
}

// WriteEdgeList writes g in the text edge-list format (weights included when
// present). For undirected graphs every arc is written once (u < v).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", g.String())
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		nbrs, ws := g.OutEdges(VertexID(v))
		for i, u := range nbrs {
			if !g.Directed && u < VertexID(v) {
				continue
			}
			if ws != nil {
				fmt.Fprintf(bw, "%d %d %g\n", v, u, ws[i])
			} else {
				fmt.Fprintf(bw, "%d %d\n", v, u)
			}
		}
	}
	return bw.Flush()
}

const binaryMagic = uint32(0x474c4e31) // "GLN1"

// WriteBinary writes the CSR arrays in a compact little-endian binary form.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	var flags uint32
	if g.Directed {
		flags |= 1
	}
	if g.Weighted() {
		flags |= 2
	}
	hdr := []uint32{binaryMagic, flags, uint32(g.NumVertices()), uint32(g.NumEdges())}
	for _, x := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, x); err != nil {
			return err
		}
	}
	name := []byte(g.Name)
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(name))); err != nil {
		return err
	}
	if _, err := bw.Write(name); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Targets); err != nil {
		return err
	}
	if g.Weighted() {
		if err := binary.Write(bw, binary.LittleEndian, g.Weights); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var hdr [4]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, err
		}
	}
	if hdr[0] != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", hdr[0])
	}
	flags, n, m := hdr[1], int(hdr[2]), int(hdr[3])
	var nameLen uint32
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	g := &Graph{
		Offsets:  make([]uint32, n+1),
		Targets:  make([]VertexID, m),
		Directed: flags&1 != 0,
		Name:     string(name),
	}
	if err := binary.Read(br, binary.LittleEndian, g.Offsets); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, g.Targets); err != nil {
		return nil, err
	}
	if flags&2 != 0 {
		g.Weights = make([]Weight, m)
		if err := binary.Read(br, binary.LittleEndian, g.Weights); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// LoadFile loads a graph from path, dispatching on extension: ".bin" uses
// the plain binary CSR format, ".cbin" the delta-compressed format, and
// anything else is parsed as a text edge list.
func LoadFile(path string, directed bool) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".cbin"):
		return ReadCompressed(f)
	case strings.HasSuffix(path, ".bin"):
		return ReadBinary(f)
	}
	return ReadEdgeList(f, directed)
}

// SaveFile writes a graph to path, dispatching on extension like LoadFile.
func SaveFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".cbin"):
		_, err := WriteCompressed(f, g)
		return err
	case strings.HasSuffix(path, ".bin"):
		return WriteBinary(f, g)
	}
	return WriteEdgeList(f, g)
}
