package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderDedupKeepsSmallestWeight(t *testing.T) {
	b := NewBuilder(3, true, true)
	b.AddEdge(0, 1, 7)
	b.AddEdge(0, 1, 3)
	b.AddEdge(0, 1, 9)
	g := b.MustBuild()
	if g.NumEdges() != 1 {
		t.Fatalf("|E| = %d, want 1 after dedup", g.NumEdges())
	}
	if _, ws := g.OutEdges(0); ws[0] != 3 {
		t.Fatalf("kept weight %v, want 3 (smallest)", ws[0])
	}
}

func TestBuilderDropsSelfLoops(t *testing.T) {
	b := NewBuilder(2, true, false)
	b.AddEdge(0, 0, 0)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 1, 0)
	g := b.MustBuild()
	if g.NumEdges() != 1 {
		t.Fatalf("|E| = %d, want 1 after self-loop removal", g.NumEdges())
	}
}

func TestBuilderUndirectedSymmetry(t *testing.T) {
	b := NewBuilder(4, false, true)
	b.AddEdge(0, 1, 2)
	b.AddEdge(1, 2, 3)
	b.AddEdge(2, 3, 4)
	g := b.MustBuild()
	if g.NumEdges() != 6 {
		t.Fatalf("|E| = %d, want 6 (symmetrized)", g.NumEdges())
	}
	// Every arc must have its mirror with equal weight.
	for v := 0; v < g.NumVertices(); v++ {
		nbrs, ws := g.OutEdges(VertexID(v))
		for i, u := range nbrs {
			back, bws := g.OutEdges(u)
			found := false
			for j, x := range back {
				if x == VertexID(v) && bws[j] == ws[i] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d->%d w=%v has no mirror", v, u, ws[i])
			}
		}
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(2, true, false)
	b.AddEdge(0, 5, 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("out-of-range edge not rejected")
	}
}

func TestBuilderZeroWeightNormalizedToOne(t *testing.T) {
	b := NewBuilder(2, true, true)
	b.AddEdge(0, 1, 0)
	g := b.MustBuild()
	if _, ws := g.OutEdges(0); ws[0] != 1 {
		t.Fatalf("weight = %v, want 1", ws[0])
	}
}

func TestUnweightedGraphReportsWeightOne(t *testing.T) {
	b := NewBuilder(2, true, false)
	b.AddEdge(0, 1, 0)
	g := b.MustBuild()
	if g.Weighted() {
		t.Fatal("unweighted graph reports Weighted()")
	}
	if g.EdgeWeight(0) != 1 {
		t.Fatalf("EdgeWeight = %v, want 1", g.EdgeWeight(0))
	}
}

func TestNeighborListsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder(50, true, true)
	for i := 0; i < 500; i++ {
		b.AddEdge(VertexID(rng.Intn(50)), VertexID(rng.Intn(50)), Weight(1+rng.Intn(9)))
	}
	g := b.MustBuild()
	for v := 0; v < g.NumVertices(); v++ {
		nbrs := g.OutNeighbors(VertexID(v))
		for i := 1; i < len(nbrs); i++ {
			if nbrs[i] <= nbrs[i-1] {
				t.Fatalf("v%d neighbors not strictly sorted: %v", v, nbrs)
			}
		}
	}
}

// Property: any random directed edge set builds into a graph that validates,
// has |E| <= inputs, and round-trips through Reverse twice.
func TestQuickBuilderInvariants(t *testing.T) {
	f := func(seed int64, nEdges uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		b := NewBuilder(n, rng.Intn(2) == 0, true)
		for i := 0; i < int(nEdges); i++ {
			b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)), Weight(1+rng.Intn(16)))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		rr := g.Reverse().Reverse()
		if rr.NumEdges() != g.NumEdges() {
			return false
		}
		for v := 0; v < n; v++ {
			a, c := g.OutNeighbors(VertexID(v)), rr.OutNeighbors(VertexID(v))
			if len(a) != len(c) {
				return false
			}
			for i := range a {
				if a[i] != c[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges(3, true, true, []Edge{{0, 1, 2}, {1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("|E| = %d, want 2", g.NumEdges())
	}
}
