package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompressedRoundTrip(t *testing.T) {
	for _, g := range []*Graph{
		PaperExample(),
		MustGenerate(LJ, Tiny),
		MustGenerate(RDCA, Tiny),
		MustGenerate(UK2, Tiny),
	} {
		var buf bytes.Buffer
		if _, err := WriteCompressed(&buf, g); err != nil {
			t.Fatalf("%s: write: %v", g.Name, err)
		}
		got, err := ReadCompressed(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", g.Name, err)
		}
		if got.Name != g.Name {
			t.Fatalf("name %q != %q", got.Name, g.Name)
		}
		graphsEqual(t, g, got)
	}
}

func TestCompressedNonIntegralWeights(t *testing.T) {
	b := NewBuilder(3, true, true)
	b.AddEdge(0, 1, 2.5)
	b.AddEdge(1, 2, 3)
	b.AddEdge(0, 2, 0.125)
	g := b.MustBuild()
	var buf bytes.Buffer
	if _, err := WriteCompressed(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCompressed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, got)
}

func TestCompressedUnweighted(t *testing.T) {
	b := NewBuilder(4, false, false)
	b.AddEdge(0, 1, 0)
	b.AddEdge(2, 3, 0)
	g := b.MustBuild()
	var buf bytes.Buffer
	if _, err := WriteCompressed(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCompressed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, got)
}

func TestCompressionBeatsPlainCSR(t *testing.T) {
	g := MustGenerate(LJ, Tiny)
	ratio, err := CompressionRatio(g)
	if err != nil {
		t.Fatal(err)
	}
	if ratio >= 1 {
		t.Fatalf("compression ratio %.2f >= 1 on a power-law graph", ratio)
	}
	t.Logf("compressed adjacency is %.0f%% of plain CSR", 100*ratio)
}

func TestReadCompressedBadMagic(t *testing.T) {
	if _, err := ReadCompressed(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadCompressedTruncated(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteCompressed(&buf, PaperExample()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, 20, len(full) - 1} {
		if _, err := ReadCompressed(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestZigzag(t *testing.T) {
	for _, x := range []int64{0, 1, -1, 5, -5, 1 << 40, -(1 << 40)} {
		if unzigzag(zigzag(x)) != x {
			t.Fatalf("zigzag round trip failed for %d", x)
		}
	}
}

func TestQuickCompressedRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		b := NewBuilder(n, rng.Intn(2) == 0, rng.Intn(2) == 0)
		for i := 0; i < 4*n; i++ {
			b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)), Weight(rng.Intn(100))/4)
		}
		g := b.MustBuild()
		var buf bytes.Buffer
		if _, err := WriteCompressed(&buf, g); err != nil {
			return false
		}
		got, err := ReadCompressed(&buf)
		if err != nil {
			return false
		}
		if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
			return false
		}
		for i := range g.Targets {
			if g.Targets[i] != got.Targets[i] {
				return false
			}
			if g.Weighted() && g.Weights[i] != got.Weights[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
